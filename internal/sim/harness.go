package sim

import (
	"fmt"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/uuid"
)

// ClusterConfig shapes a simulated worker pool over one shared store.
type ClusterConfig struct {
	// Workers is the pool size; NamePrefix+index names each worker's
	// process ("w0", "w1", ...).
	Workers int
	// NamePrefix distinguishes worker generations; "" means "w". The torn-
	// write scenario reopens the store under a second generation ("r").
	NamePrefix string
	// Partitions, LeaseTTL and Config mirror beldi.ClusterOptions.
	Partitions int
	// LeaseTTL is the lease bound; pump cadences derive from it.
	LeaseTTL time.Duration
	// Config carries the protocol parameters (T, RowCap, ...).
	Config beldi.Config
	// Mode selects the protocol machinery; beldi.ModeBeldi by default.
	Mode beldi.Mode
	// DurableAsync, when non-nil, wires AsyncInvoke through durable queues.
	DurableAsync *beldi.DurableAsyncOptions
	// Faults is the storage-boundary fault schedule shared by all workers.
	Faults *StoreFaults
	// CrashProb, when positive, arms per-worker background crash injection
	// at every platform crash point, seeded from CrashSeed.
	CrashProb float64
	// CrashSeed seeds the crash plans (plus the worker index).
	CrashSeed int64
	// Skew maps a worker index to its clock skew; nil means none.
	Skew func(i int) time.Duration
	// Register installs the application on each joining worker.
	Register beldi.RegisterApp
	// Rejoin marks a later generation joining a store with earlier workers'
	// unexpired leases still on record (the torn-write restart): ownership
	// cannot settle by rebalancing alone, so the owns-something assertion is
	// skipped — the new pumps steal the dead generation's partitions once
	// its leases expire.
	Rejoin bool
}

// Worker is one simulated pool member.
type Worker struct {
	// Name is the worker's id and its scheduler process tag.
	Name string
	// CW is the underlying beldi cluster worker.
	CW *beldi.ClusterWorker
	// Clock is the worker's virtual (possibly skewed) clock.
	Clock *Clock
	// Killed reports a harness-level kill; pumps observe it and exit.
	Killed bool

	asyncN int
}

// Cluster is a simulated multi-worker deployment: every worker holds a
// fault-wrapped view of one shared store, a virtual clock, a sequential id
// source, and scheduler tasks in place of background goroutines.
type Cluster struct {
	// S is the owning scheduler.
	S *Scheduler
	// Inner is the shared store beneath every worker's fault wrapper.
	Inner storage.Backend
	// Workers lists the pool.
	Workers []*Worker

	cfg ClusterConfig
}

// NewCluster builds the pool: workers join with per-worker clocks, id
// sources and fault-wrapped stores, and partition ownership is settled
// deterministically. Call StartPumps (typically from the driver task, or
// before Run) to launch the background pumps. Setup runs before Run, where
// scheduling points are no-ops, so construction is deterministic by
// serialization.
func NewCluster(s *Scheduler, inner storage.Backend, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "w"
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 8
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 60 * time.Millisecond
	}
	bc, err := beldi.OpenCluster(beldi.ClusterOptions{
		Store:        inner,
		Partitions:   cfg.Partitions,
		LeaseTTL:     cfg.LeaseTTL,
		Mode:         cfg.Mode,
		Config:       cfg.Config,
		DurableAsync: cfg.DurableAsync,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{S: s, Inner: inner, cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("%s%d", cfg.NamePrefix, i)
		var skew time.Duration
		if cfg.Skew != nil {
			skew = cfg.Skew(i)
		}
		w := &Worker{Name: name, Clock: NewClock(s, skew)}
		popts := &platform.Options{
			// High ceiling and no timeout: admission waits and deadline
			// watchers are wall-clock goroutines the simulation must not
			// depend on.
			ConcurrencyLimit: 1 << 20,
			IDs:              &uuid.Seq{Prefix: name},
			AsyncDispatch: func(run func()) {
				w.asyncN++
				s.Go(TaskOpts{Name: fmt.Sprintf("%s.async%d", name, w.asyncN), Proc: name}, run)
			},
		}
		if cfg.CrashProb > 0 {
			popts.Faults = &platform.CrashProb{P: cfg.CrashProb, Seed: cfg.CrashSeed*31 + int64(i) + 1}
		}
		// Layering invariant: the sim wrapper is the TOP of each worker's
		// store stack. Anything with its own cross-task locking (the
		// speculation overlay above all) must sit beneath it, where its
		// operations run atomically inside one scheduling point — a lock
		// held above the wrapper would be held across parks, and a task
		// contending for it would block the baton (deadlock).
		var wstore storage.Backend = WrapBackend(inner, s, name, cfg.Faults)
		cw, err := bc.JoinClusterWith(name, cfg.Register, beldi.WorkerOptions{
			Clock:    w.Clock,
			IDs:      &uuid.Seq{Prefix: name + "c"},
			Store:    wstore,
			Platform: popts,
		})
		if err != nil {
			return nil, err
		}
		w.CW = cw
		c.Workers = append(c.Workers, w)
	}
	// Settle partition ownership deterministically before any load.
	for round := 0; round < cfg.Workers+2; round++ {
		for _, w := range c.Workers {
			if _, _, err := w.CW.Worker().RebalanceOnce(); err != nil {
				return nil, err
			}
		}
	}
	if !cfg.Rejoin {
		for _, w := range c.Workers {
			if len(w.CW.Worker().OwnedPartitions()) == 0 {
				return nil, fmt.Errorf("sim: worker %s owns no partitions after settling", w.Name)
			}
		}
	}
	return c, nil
}

// StartPumps spawns each worker's background pumps as scheduler tasks,
// mirroring the cadence structure of cluster.Worker.Start: a heartbeat pump
// (renewal and post-fence rejoin), a work pump (detection, rebalancing,
// collection, GC), and a poll pump (owned durable queues). Cadences derive
// from LeaseTTL exactly like the real loops'.
func (c *Cluster) StartPumps() {
	for _, w := range c.Workers {
		c.startPumpsFor(w)
	}
}

func (c *Cluster) startPumpsFor(w *Worker) {
	s := c.S
	tick := c.cfg.LeaseTTL / 4
	wk := w.CW.Worker()
	s.Go(TaskOpts{Name: w.Name + ".hb", Proc: w.Name, Pump: true}, func() {
		for {
			s.Sleep(tick)
			if w.Killed {
				return
			}
			if wk.Fenced() {
				wk.Rejoin() //nolint:errcheck // retried next tick, like the real loop
				continue
			}
			wk.HeartbeatOnce() //nolint:errcheck // fencing handled next tick
		}
	})
	s.Go(TaskOpts{Name: w.Name + ".work", Proc: w.Name, Pump: true}, func() {
		for n := 1; ; n++ {
			s.Sleep(tick)
			if w.Killed {
				return
			}
			if wk.Fenced() {
				continue // the heartbeat pump rejoins
			}
			if n%2 == 0 {
				if _, stolen, err := wk.DetectOnce(); err == nil && stolen > 0 {
					wk.CollectOnce() //nolint:errcheck // next tick retries
				}
			}
			if n%4 == 0 {
				wk.RebalanceOnce() //nolint:errcheck // next tick retries
			}
			if n%2 == 1 {
				wk.CollectOnce() //nolint:errcheck // next tick retries
			}
			if n%4 == 2 {
				wk.GCOnce() //nolint:errcheck // next tick retries
			}
		}
	})
	s.Go(TaskOpts{Name: w.Name + ".poll", Proc: w.Name, Pump: true}, func() {
		for {
			if w.Killed {
				return
			}
			if wk.Fenced() {
				s.Sleep(tick)
				continue
			}
			n, _, _ := wk.PollOnce()
			if n == 0 {
				s.Sleep(tick)
			} else {
				s.Yield()
			}
		}
	})
}

// Kill drops worker i dead: its pump tasks and spawned handler tasks are
// never scheduled again, and every instance still entering code on its
// platform (synchronous calls from clients) crashes at its next operation
// boundary. The lease is left to expire — peers must detect, steal, and
// finish its work.
func (c *Cluster) Kill(i int) {
	w := c.Workers[i]
	w.Killed = true
	w.CW.Platform().SetFaults(CrashAll{})
	c.S.KillProc(w.Name)
}

// Pause freezes worker i entirely (pumps and in-flight handler tasks) — the
// stop-the-world stall. Keep the pause under the protocol's T: a straggler
// paused past the GC horizon violates the paper's synchrony assumption and
// even correct code may fail audits.
func (c *Cluster) Pause(i int) { c.S.PauseProc(c.Workers[i].Name) }

// Resume unfreezes a paused worker.
func (c *Cluster) Resume(i int) { c.S.ResumeProc(c.Workers[i].Name) }

// Partition cuts worker i's pumps off (no heartbeats, no collection, no
// polling — the lease expires and peers steal) while its in-flight handler
// tasks keep running: the fenced-zombie stressor. Heal with Unpartition;
// the heartbeat pump then rejoins at a higher epoch.
func (c *Cluster) Partition(i int) { c.S.PartitionProc(c.Workers[i].Name, true) }

// Unpartition heals a partitioned worker.
func (c *Cluster) Unpartition(i int) { c.S.PartitionProc(c.Workers[i].Name, false) }

// Live returns a live (non-killed) worker, preferring index i.
func (c *Cluster) Live(i int) *Worker {
	n := len(c.Workers)
	for k := 0; k < n; k++ {
		if w := c.Workers[(i+k)%n]; !w.Killed {
			return w
		}
	}
	return c.Workers[i%n]
}

// PendingIntents counts unfinished intents across the named functions,
// probing the shared store directly.
func (c *Cluster) PendingIntents(fns []string) (int, error) {
	pending := 0
	for _, fn := range fns {
		items, err := c.Inner.QueryIndex(fn+".intent", "pending", beldi.Str("1"), storage.QueryOpts{})
		if err != nil {
			return 0, err
		}
		pending += len(items)
	}
	return pending, nil
}

// QueueDepth sums the durable invocation queues' depths through a live
// worker, or 0 when durable async is not enabled.
func (c *Cluster) QueueDepth() (int, error) {
	if c.cfg.DurableAsync == nil {
		return 0, nil
	}
	da := c.Live(0).CW.Deployment().DurableAsync()
	if da == nil {
		return 0, nil
	}
	return da.Depth()
}

// Quiesce polls until no intent is pending on the named functions and the
// durable queues are empty, failing once the virtual budget is spent. Call
// it from the driver task.
func (c *Cluster) Quiesce(fns []string, budget time.Duration) error {
	deadline := c.S.Now().Add(budget)
	for {
		pending, err := c.PendingIntents(fns)
		if err != nil {
			return err
		}
		depth, err := c.QueueDepth()
		if err != nil {
			return err
		}
		if pending == 0 && depth == 0 {
			return nil
		}
		if c.S.Now().After(deadline) {
			return fmt.Errorf("sim: not quiesced within %v: %d intents pending, %d messages queued\n%s",
				budget, pending, depth, c.S.dump())
		}
		c.S.Sleep(c.cfg.LeaseTTL / 2)
	}
}

// FsckAll audits every function's durable state through a live worker, in
// sorted function order so replays issue identical operation sequences.
func (c *Cluster) FsckAll() error {
	d := c.Live(0).CW.Deployment()
	for _, fn := range d.Functions() {
		rt := d.Runtime(fn)
		if rt.Mode() == beldi.ModeBaseline {
			continue
		}
		if err := beldi.Fsck(rt); err != nil {
			return err
		}
	}
	return nil
}

// SettleAndCheck advances virtual time through the GC horizon in rounds,
// running a full Fsck after each step — the window where a late
// completion's zombie row is visible before the collector reaps it. rounds
// of LeaseTTL-and-a-half steps; 16 rounds cover several GC generations.
func (c *Cluster) SettleAndCheck(rounds int) error {
	step := c.cfg.LeaseTTL + c.cfg.LeaseTTL/2
	for r := 0; r < rounds; r++ {
		c.S.Sleep(step)
		if err := c.FsckAll(); err != nil {
			return fmt.Errorf("sim: fsck (settle round %d): %w", r, err)
		}
	}
	return nil
}
