// Package sim is a deterministic whole-cluster simulator in the
// FoundationDB style: every concurrent actor of a Beldi deployment — client
// requests, asynchronous invocations, each worker's heartbeat / detection /
// collection / GC / queue-polling pumps — runs as a cooperative task under a
// single seeded Scheduler that owns virtual time. Exactly one task runs at
// any instant; tasks yield at storage-operation boundaries (the Backend
// wrapper) and at clock sleeps (the Clock), and a pluggable seeded Policy
// picks which runnable task goes next. The same seed therefore reproduces
// the same interleaving, the same fault schedule, and the same trace hash —
// a failing sweep seed replays bit-identically with
//
//	go test ./internal/sim -run 'TestSimReplaySeed' -sim.seed=N
//
// On top of the scheduler, the package composes the codebase's fault seams
// (platform crash points, walstore write/sync hooks, lease clock skew) with
// simulator-native ones (storage-op delays, late intent completions, torn
// WAL writes, worker kill / pause / partition) into seed-derived fault
// schedules, and Sweep drives the full worker+queue+WAL stack over the
// travel, orders and fan-out workloads across those schedules, auditing
// exactly-once totals, transactional invariants and Fsck cleanliness after
// every run. See ARCHITECTURE.md ("Deterministic simulation") and
// OPERATIONS.md ("Reproducing a failure from a seed").
package sim

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"
	"time"
)

// taskState is a Task's scheduling state.
type taskState int

const (
	stateRunnable taskState = iota
	stateRunning
	stateSleeping
	stateBlocked
	stateDone
)

func (st taskState) String() string {
	switch st {
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateSleeping:
		return "sleeping"
	case stateBlocked:
		return "blocked"
	default:
		return "done"
	}
}

// Task is one cooperative unit of execution under a Scheduler: a goroutine
// that runs only while it holds the scheduler's baton and parks at every
// yield point. Tasks are created with Scheduler.Go and carry a process tag
// so process-scoped faults (kill, pause, partition) can find them.
type Task struct {
	// ID is the task's spawn-ordered identity, unique within its scheduler.
	ID int
	// Name labels the task in traces and dumps.
	Name string
	// Proc tags the process (worker) the task belongs to; "" for clients
	// and drivers.
	Proc string
	// Pump marks background protocol pumps (heartbeat, collection,
	// polling) — the tasks a network partition freezes while in-flight
	// handlers keep running.
	Pump bool

	s        *Scheduler
	state    taskState
	frozen   bool
	killed   bool
	deadline time.Time
	waitOn   map[int]bool
	resume   chan struct{}
}

// Done reports whether the task has finished.
func (t *Task) Done() bool { return t.state == stateDone }

// taskKilled unwinds a killed task's stack at its next yield point.
type taskKilled struct{}

// Options configure a Scheduler.
type Options struct {
	// Seed drives every scheduling and fault decision; the same seed over
	// the same task program yields the same interleaving.
	Seed int64
	// Policy names the interleaving policy ("random", "lifo", "sticky",
	// "starve"); "" means "random". See PolicyByName.
	Policy string
	// MaxSteps bounds the number of scheduling decisions before Run fails
	// (a livelock backstop). 0 means 4,000,000.
	MaxSteps int
	// Epoch is the virtual clock's start; the zero value means a fixed
	// constant so traces never depend on wall time.
	Epoch time.Time
}

// Scheduler runs tasks one at a time under a seeded interleaving policy and
// owns virtual time: when no task is runnable it advances the clock to the
// earliest sleeper's deadline. It is not safe for use from goroutines it
// does not manage; during Run, only the currently scheduled task may touch
// the scheduler (the single-baton discipline makes that race-free by
// construction).
type Scheduler struct {
	opts     Options
	rng      *rand.Rand
	policy   Policy
	tasks    []*Task
	now      time.Time
	steps    int
	maxSteps int
	current  *Task
	parked   chan struct{}
	hash     uint64
	recent   []string
	fail     error
	reaping  bool
}

// New builds a Scheduler.
func New(opts Options) *Scheduler {
	if opts.Epoch.IsZero() {
		opts.Epoch = time.Unix(1_700_000_000, 0).UTC()
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 4_000_000
	}
	pol, err := PolicyByName(opts.Policy)
	if err != nil {
		panic(err) // programmer error: names come from the scenario table
	}
	return &Scheduler{
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed ^ 0x5eed51)),
		policy:   pol,
		now:      opts.Epoch,
		maxSteps: opts.MaxSteps,
		parked:   make(chan struct{}),
	}
}

// TaskOpts name and tag a task at spawn.
type TaskOpts struct {
	// Name labels the task in traces and dumps.
	Name string
	// Proc tags the owning process; see Task.Proc.
	Proc string
	// Pump marks a background protocol pump; see Task.Pump.
	Pump bool
}

// Go spawns fn as a new task. The task does not run until the scheduler
// picks it. Safe to call before Run and from running tasks.
func (s *Scheduler) Go(opts TaskOpts, fn func()) *Task {
	t := &Task{
		ID:     len(s.tasks) + 1,
		Name:   opts.Name,
		Proc:   opts.Proc,
		Pump:   opts.Pump,
		s:      s,
		state:  stateRunnable,
		killed: s.reaping,
		resume: make(chan struct{}),
	}
	s.tasks = append(s.tasks, t)
	go func() {
		<-t.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(taskKilled); !ok && s.fail == nil {
					s.fail = fmt.Errorf("sim: task %d %q panicked: %v\n%s", t.ID, t.Name, r, debug.Stack())
				}
			}
			t.state = stateDone
			s.parked <- struct{}{}
		}()
		if !t.killed {
			fn()
		}
	}()
	return t
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Steps returns the number of scheduling decisions made so far.
func (s *Scheduler) Steps() int { return s.steps }

// TraceHash digests every scheduling decision and every note (storage
// operations, fault firings) made so far — two runs of the same program
// from the same seed must produce equal hashes, which is what the replay
// meta-test asserts.
func (s *Scheduler) TraceHash() uint64 { return s.hash }

// Note folds an event into the trace hash and the recent-decision ring;
// the Backend wrapper notes every storage operation through it.
func (s *Scheduler) Note(ev string) {
	const prime = 1099511628211
	for i := 0; i < len(ev); i++ {
		s.hash = (s.hash ^ uint64(ev[i])) * prime
	}
	s.hash = (s.hash ^ 0x1f) * prime
	if len(s.recent) >= 48 {
		copy(s.recent, s.recent[1:])
		s.recent = s.recent[:47]
	}
	s.recent = append(s.recent, ev)
}

// Yield parks the calling task and hands the baton back to the scheduler;
// the task becomes runnable again immediately (some other task may run in
// between). Outside Run it is a no-op, so setup code can share the code
// paths that yield.
func (s *Scheduler) Yield() {
	t := s.current
	if t == nil {
		return
	}
	t.state = stateRunnable
	s.park(t)
}

// Sleep parks the calling task until virtual time passes d. Outside Run it
// returns immediately (virtual time does not pass during setup).
func (s *Scheduler) Sleep(d time.Duration) {
	t := s.current
	if t == nil {
		return
	}
	if d <= 0 {
		t.state = stateRunnable
	} else {
		t.deadline = s.now.Add(d)
		t.state = stateSleeping
	}
	s.park(t)
}

// Await parks the calling task until every given task has finished. It must
// be called from a running task.
func (s *Scheduler) Await(ts ...*Task) {
	t := s.current
	if t == nil {
		panic("sim: Await called outside a running task")
	}
	t.waitOn = make(map[int]bool)
	for _, w := range ts {
		if w.state != stateDone {
			t.waitOn[w.ID] = true
		}
	}
	if len(t.waitOn) == 0 {
		return
	}
	t.state = stateBlocked
	s.park(t)
}

func (s *Scheduler) park(t *Task) {
	s.parked <- struct{}{}
	<-t.resume
	if t.killed {
		panic(taskKilled{})
	}
}

// Run schedules tasks until root finishes, virtual time advancing whenever
// nothing is runnable. It returns an error on deadlock (nothing runnable,
// nothing sleeping, root unfinished), on step-budget exhaustion, or when a
// task panicked. Call it from the goroutine that owns the scheduler (the
// test), never from a task.
func (s *Scheduler) Run(root *Task) error {
	if s.current != nil {
		panic("sim: Run called from inside a task")
	}
	for {
		if root.state == stateDone {
			return s.fail
		}
		if s.fail != nil {
			return s.fail
		}
		if s.steps >= s.maxSteps {
			return fmt.Errorf("sim: step budget %d exhausted (livelock?)\n%s", s.maxSteps, s.dump())
		}
		t := s.pickNext()
		if t == nil {
			deadline, ok := s.earliestDeadline()
			if !ok {
				return fmt.Errorf("sim: deadlock: no runnable or sleeping task while root %q unfinished\n%s", root.Name, s.dump())
			}
			if deadline.After(s.now) {
				s.now = deadline
			}
			s.wakeSleepers()
			continue
		}
		s.steps++
		s.Note(fmt.Sprintf("@%d", t.ID))
		s.runOne(t)
	}
}

func (s *Scheduler) runOne(t *Task) {
	t.state = stateRunning
	s.current = t
	t.resume <- struct{}{}
	<-s.parked
	s.current = nil
	if t.state == stateDone {
		s.finish(t)
	}
}

func (s *Scheduler) pickNext() *Task {
	var runnable []*Task
	for _, t := range s.tasks {
		if t.state == stateRunnable && !t.frozen && !t.killed {
			runnable = append(runnable, t)
		}
	}
	if len(runnable) == 0 {
		return nil
	}
	return runnable[s.policy.Pick(s.rng, runnable)]
}

func (s *Scheduler) earliestDeadline() (time.Time, bool) {
	var best time.Time
	found := false
	for _, t := range s.tasks {
		if t.state != stateSleeping || t.frozen || t.killed {
			continue
		}
		if !found || t.deadline.Before(best) {
			best = t.deadline
			found = true
		}
	}
	return best, found
}

func (s *Scheduler) wakeSleepers() {
	for _, t := range s.tasks {
		if t.state == stateSleeping && !t.frozen && !t.killed && !t.deadline.After(s.now) {
			t.state = stateRunnable
		}
	}
}

func (s *Scheduler) finish(done *Task) {
	for _, t := range s.tasks {
		if t.state != stateBlocked {
			continue
		}
		delete(t.waitOn, done.ID)
		if len(t.waitOn) == 0 {
			t.state = stateRunnable
		}
	}
}

// KillProc marks every task of proc as killed: they are never scheduled
// again and are reaped by Shutdown. The harness uses platform fault plans
// for protocol-faithful worker kills (instances die at their next operation
// boundary); KillProc is the harder, scheduler-level variant.
func (s *Scheduler) KillProc(proc string) {
	for _, t := range s.tasks {
		if t.Proc == proc {
			t.killed = true
		}
	}
}

// PauseProc freezes every task of proc — the whole-process stall (GC pause,
// VM freeze): nothing of the process runs, its sleepers do not wake, and
// virtual time does not wait for them.
func (s *Scheduler) PauseProc(proc string) { s.setFrozen(proc, false, true) }

// ResumeProc unfreezes a paused process; sleepers whose deadlines passed
// while frozen become runnable immediately.
func (s *Scheduler) ResumeProc(proc string) { s.setFrozen(proc, false, false) }

// PartitionProc freezes (on=true) or heals (on=false) only the pump tasks
// of proc: the worker stops heartbeating, collecting and polling — so its
// lease expires and peers steal its work — while its in-flight handler
// tasks keep running, which is exactly the stale-epoch zombie the fencing
// protocol must stop.
func (s *Scheduler) PartitionProc(proc string, on bool) { s.setFrozen(proc, true, on) }

func (s *Scheduler) setFrozen(proc string, pumpsOnly, frozen bool) {
	for _, t := range s.tasks {
		if t.Proc != proc || (pumpsOnly && !t.Pump) {
			continue
		}
		t.frozen = frozen
		if !frozen && t.state == stateSleeping && !t.deadline.After(s.now) {
			t.state = stateRunnable
		}
	}
}

// Shutdown reaps every unfinished task: each is resumed with the kill flag
// set and unwinds at its next yield point. Call it after Run (including
// after Run returned an error) so task goroutines do not outlive the test.
func (s *Scheduler) Shutdown() {
	if s.current != nil {
		panic("sim: Shutdown called from inside a task")
	}
	s.reaping = true
	for _, t := range s.tasks {
		t.killed = true
	}
	for rounds := 0; rounds < 1_000_000; rounds++ {
		var next *Task
		for _, t := range s.tasks {
			if t.state != stateDone {
				next = t
				break
			}
		}
		if next == nil {
			return
		}
		s.runOne(next)
	}
}

func (s *Scheduler) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  virtual now: %s, steps: %d\n  tasks:\n", s.now.Format(time.RFC3339Nano), s.steps)
	for _, t := range s.tasks {
		if t.state == stateDone {
			continue
		}
		fmt.Fprintf(&b, "    #%d %-28s proc=%-8s %s", t.ID, t.Name, t.Proc, t.state)
		if t.frozen {
			b.WriteString(" frozen")
		}
		if t.killed {
			b.WriteString(" killed")
		}
		if t.state == stateSleeping {
			fmt.Fprintf(&b, " until %s", t.deadline.Format("15:04:05.000000"))
		}
		b.WriteString("\n")
	}
	b.WriteString("  recent decisions: " + strings.Join(s.recent, " "))
	return b.String()
}
