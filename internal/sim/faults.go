package sim

import "repro/internal/walstore"

// CrashAll is a platform fault plan that kills every instance at its next
// crash point — the sudden-death model a worker kill uses: in-flight
// handlers die at their next operation boundary, which preserves the
// at-entry contract (an instance's intent lands before its first crash
// point can fire).
type CrashAll struct{}

// ShouldCrash implements platform.FaultPlan.
func (CrashAll) ShouldCrash(string, string, int) bool { return true }

// TornWrite arms a single torn WAL append: the Nth framed record written
// through the hooks is cut or corrupted at a chosen byte, and the store
// poisons itself — the simulator's model of a process dying mid-write. The
// recovery scan must truncate the tail at the tear and the reopened store
// must carry every fully synced record before it.
type TornWrite struct {
	// AppendN is the 1-based index of the framed append to tear; 0 never
	// fires.
	AppendN int
	// CutAt is the byte offset within the frame where the tear lands; it
	// is clamped to [1, len(frame)-1].
	CutAt int
	// Flip corrupts the byte at CutAt instead of truncating the frame —
	// the bit-rot variant the CRC must catch.
	Flip bool
}

// Hooks builds the walstore hooks that implement the tear. Each call
// returns an independently armed instance.
func (tw TornWrite) Hooks() *walstore.Hooks {
	n := 0
	return &walstore.Hooks{
		BeforeAppend: func(_ uint64, _ int64, frame []byte) []byte {
			n++
			if tw.AppendN == 0 || n != tw.AppendN || len(frame) < 2 {
				return nil
			}
			cut := tw.CutAt
			if cut < 1 {
				cut = 1
			}
			if cut > len(frame)-1 {
				cut = len(frame) - 1
			}
			if tw.Flip {
				torn := append([]byte(nil), frame...)
				torn[cut] ^= 0x40
				return torn
			}
			return frame[:cut]
		},
	}
}
