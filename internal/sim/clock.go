package sim

import (
	"time"

	"repro/internal/clock"
)

// Clock implements clock.Clock over a Scheduler's virtual time, subsuming
// clock.Manual for simulated components: Now reads the scheduler's clock
// (plus a fixed per-process skew), and Sleep parks the calling task until
// the scheduler advances past the deadline.
//
// After sleeps first and then returns an already-fired channel, rather than
// returning a pending channel that fires later: under a cooperative
// scheduler a task that selects on a pending channel would block while
// holding the baton and deadlock the run. The visible difference from a
// real clock is that a select racing After against another channel always
// waits the full duration — acceptable for the protocol loops this codebase
// selects in (retry waits and loop timers), which treat the timer case as a
// pure delay.
type Clock struct {
	s    *Scheduler
	skew time.Duration
}

// NewClock returns a Clock over s whose Now reads skewed by skew — the
// lease-protocol stressor: workers whose wall clocks disagree. Skew must
// stay well under the lease TTL for the cluster protocol's own documented
// bound to hold.
func NewClock(s *Scheduler, skew time.Duration) *Clock {
	return &Clock{s: s, skew: skew}
}

// Now implements clock.Clock.
func (c *Clock) Now() time.Time { return c.s.Now().Add(c.skew) }

// Sleep implements clock.Clock.
func (c *Clock) Sleep(d time.Duration) { c.s.Sleep(d) }

// After implements clock.Clock; see the type comment for its
// sleep-then-fire semantics.
func (c *Clock) After(d time.Duration) <-chan time.Time {
	c.s.Sleep(d)
	ch := make(chan time.Time, 1)
	ch <- c.Now()
	return ch
}

var _ clock.Clock = (*Clock)(nil)
