package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// runProgram executes a fixed four-task interleaving program and returns
// the observed execution order and the trace hash.
func runProgram(t *testing.T, seed int64, policy string) (string, uint64) {
	t.Helper()
	s := New(Options{Seed: seed, Policy: policy})
	var log []string
	for i := 0; i < 4; i++ {
		i := i
		s.Go(TaskOpts{Name: fmt.Sprintf("t%d", i)}, func() {
			for j := 0; j < 3; j++ {
				log = append(log, fmt.Sprintf("%d.%d", i, j))
				s.Note(log[len(log)-1])
				if j == 1 {
					s.Sleep(time.Duration(i+1) * time.Millisecond)
				} else {
					s.Yield()
				}
			}
		})
	}
	root := s.Go(TaskOpts{Name: "root"}, func() { s.Sleep(time.Second) })
	if err := s.Run(root); err != nil {
		t.Fatalf("run: %v", err)
	}
	s.Shutdown()
	return strings.Join(log, " "), s.TraceHash()
}

func TestSchedulerSameSeedSameTrace(t *testing.T) {
	for _, policy := range Policies() {
		order1, hash1 := runProgram(t, 42, policy)
		order2, hash2 := runProgram(t, 42, policy)
		if order1 != order2 {
			t.Errorf("%s: same seed, different order:\n  %s\n  %s", policy, order1, order2)
		}
		if hash1 != hash2 {
			t.Errorf("%s: same seed, different trace hash: %016x vs %016x", policy, hash1, hash2)
		}
	}
}

func TestSchedulerDifferentSeedDifferentTrace(t *testing.T) {
	// Different seeds must explore different interleavings; equal hashes
	// for every probed pair would mean the seed is ignored.
	_, h1 := runProgram(t, 1, "random")
	_, h2 := runProgram(t, 2, "random")
	_, h3 := runProgram(t, 3, "random")
	if h1 == h2 && h2 == h3 {
		t.Errorf("seeds 1..3 all produced trace %016x; scheduling ignores the seed", h1)
	}
}

func TestSchedulerVirtualTime(t *testing.T) {
	s := New(Options{Seed: 7})
	start := s.Now()
	var slept time.Duration
	root := s.Go(TaskOpts{Name: "root"}, func() {
		s.Sleep(5 * time.Second)
		slept = s.Now().Sub(start)
	})
	if err := s.Run(root); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if slept != 5*time.Second {
		t.Errorf("virtual sleep advanced %v, want exactly 5s", slept)
	}
}

func TestSchedulerKilledTaskNeverRuns(t *testing.T) {
	s := New(Options{Seed: 7})
	ran := false
	root := s.Go(TaskOpts{Name: "root"}, func() {
		s.Go(TaskOpts{Name: "victim", Proc: "p"}, func() {
			s.Sleep(time.Minute)
			ran = true
		})
		s.Sleep(time.Millisecond)
		s.KillProc("p")
		s.Sleep(2 * time.Minute) // past the victim's wake-up
	})
	if err := s.Run(root); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if ran {
		t.Error("killed task resumed past its kill")
	}
}

func TestSchedulerPauseFreezesAndResumeReleases(t *testing.T) {
	s := New(Options{Seed: 7})
	var events []string
	root := s.Go(TaskOpts{Name: "root"}, func() {
		s.Go(TaskOpts{Name: "worker", Proc: "p"}, func() {
			for i := 0; i < 2; i++ {
				s.Sleep(time.Millisecond)
				events = append(events, fmt.Sprintf("work@%dms", s.Now().Sub(s.opts.Epoch)/time.Millisecond))
			}
		})
		s.Sleep(500 * time.Microsecond)
		s.PauseProc("p")
		s.Sleep(10 * time.Millisecond)
		events = append(events, "resume")
		s.ResumeProc("p")
		s.Sleep(10 * time.Millisecond)
	})
	if err := s.Run(root); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	want := "resume work@10ms work@11ms"
	if got := strings.Join(events, " "); got != want {
		t.Errorf("pause/resume schedule: got %q, want %q", got, want)
	}
}

func TestSchedulerAwait(t *testing.T) {
	s := New(Options{Seed: 7})
	var order []string
	root := s.Go(TaskOpts{Name: "root"}, func() {
		var children []*Task
		for i := 0; i < 3; i++ {
			i := i
			children = append(children, s.Go(TaskOpts{Name: fmt.Sprintf("c%d", i)}, func() {
				s.Sleep(time.Duration(3-i) * time.Millisecond)
				order = append(order, fmt.Sprintf("c%d", i))
			}))
		}
		s.Await(children...)
		order = append(order, "root")
	})
	if err := s.Run(root); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if got := strings.Join(order, " "); got != "c2 c1 c0 root" {
		t.Errorf("await order: got %q, want children (by deadline) then root", got)
	}
}

func TestSchedulerDeadlockDetected(t *testing.T) {
	s := New(Options{Seed: 7})
	root := s.Go(TaskOpts{Name: "root"}, func() {
		child := s.Go(TaskOpts{Name: "frozen", Proc: "p"}, func() { s.Sleep(time.Hour) })
		s.Sleep(time.Millisecond)
		s.PauseProc("p")
		s.Await(child) // child can never finish: deadlock
	})
	err := s.Run(root)
	s.Shutdown()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected a deadlock error, got %v", err)
	}
}

func TestSchedulerTaskPanicSurfaces(t *testing.T) {
	s := New(Options{Seed: 7})
	root := s.Go(TaskOpts{Name: "root"}, func() {
		s.Go(TaskOpts{Name: "bomb"}, func() { panic("boom") })
		s.Sleep(time.Millisecond)
	})
	err := s.Run(root)
	s.Shutdown()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("expected the task panic to surface, got %v", err)
	}
}

func TestClockSkewAndAfter(t *testing.T) {
	s := New(Options{Seed: 7})
	skewed := NewClock(s, 10*time.Millisecond)
	plain := NewClock(s, 0)
	var gap time.Duration
	var fired bool
	root := s.Go(TaskOpts{Name: "root"}, func() {
		gap = skewed.Now().Sub(plain.Now())
		select {
		case <-skewed.After(time.Millisecond):
			fired = true
		default:
		}
	})
	if err := s.Run(root); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if gap != 10*time.Millisecond {
		t.Errorf("skew = %v, want 10ms", gap)
	}
	if !fired {
		t.Error("After's channel must be fired on return (sleep-then-fire semantics)")
	}
}

func TestPolicyRegistry(t *testing.T) {
	for _, name := range Policies() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy name must error")
	}
}

func TestScenarioDerivationCoversMatrix(t *testing.T) {
	kinds := map[string]bool{}
	workloads := map[string]bool{}
	policies := map[string]bool{}
	for seed := int64(0); seed < int64(len(Kinds())*len(WorkloadNames())*len(Policies())); seed++ {
		sc := ScenarioFor(seed)
		kinds[sc.Kind] = true
		workloads[sc.Workload] = true
		policies[sc.Policy] = true
	}
	if len(kinds) != len(Kinds()) {
		t.Errorf("seed range covered %d kinds, want %d", len(kinds), len(Kinds()))
	}
	// torn forces the counter workload, so the counter joins the three
	// derivable workloads.
	if len(workloads) != len(WorkloadNames())+1 {
		t.Errorf("seed range covered %d workloads, want %d", len(workloads), len(WorkloadNames())+1)
	}
	if len(policies) != len(Policies()) {
		t.Errorf("seed range covered %d policies, want %d", len(policies), len(Policies()))
	}
}
