package sim

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

// StoreFaults is a fault schedule for the storage boundary, shared by every
// Backend wrapper of one simulation. Delays are virtual-time sleeps taken
// before the operation applies, so a delayed operation from one task lands
// after operations other tasks issued later — seeded reordering without
// breaking per-task program order (which real linearizable stores preserve
// too: one client's operations are issued one at a time).
//
// Generic delays must stay well under the protocol's synchrony bound T:
// an operation delayed past the GC horizon breaks Beldi's own §5
// assumption, and even correct code then fails exactly-once audits — that
// is a genuine limitation of the protocol, not a bug the sweep should
// report. LateDone deliberately crosses the horizon, but only for intent
// completions, whose existence guard makes late arrival safe.
type StoreFaults struct {
	// DelayProb is the per-operation probability of a delay.
	DelayProb float64
	// MaxDelay bounds each injected delay; keep it under T/2.
	MaxDelay time.Duration
	// LateDone, when non-nil, turns intent-completion updates (an Update on
	// a ".intent" table that sets Done=true) into in-flight writes: the
	// issuer is acked immediately and the update applies on a detached task
	// far past the GC horizon — the zombie write whose late arrival the
	// markIntentDone existence guard must neutralize. The issuer must NOT
	// stall, because an instance stalled past the synchrony bound T may
	// legally re-execute its remaining steps under fresh identities (§5);
	// only the write itself is late, exactly like a network-delayed RPC
	// from a worker that may already be dead.
	LateDone *LateDone
	// Wake, when non-nil, arms commit-stream push for every wrapper sharing
	// this schedule — the wrappers become storage.Watchers — and perturbs
	// the wakeups with seeded drops, delays and duplicates; see wake.go.
	// When nil, Watch reports no push support and consumers poll, exactly
	// as before push existed.
	Wake *WakeFaults
}

// LateDone configures intent-completion delays; see StoreFaults.LateDone.
type LateDone struct {
	// MinDelay and MaxDelay bound the injected delay; set them to a few
	// multiples of the protocol's T so the completion lands after the
	// intent has been garbage-collected.
	MinDelay, MaxDelay time.Duration
}

// Backend wraps a storage.Backend for one simulated process: every data
// operation is a scheduling point (the wrapper yields or sleeps before
// applying it), is noted into the scheduler's trace hash, and is subject to
// the shared StoreFaults. Wrap each worker's view of the shared store so
// process-tagged traces make failures readable.
type Backend struct {
	inner  storage.Backend
	s      *Scheduler
	proc   string
	faults *StoreFaults
}

// WrapBackend returns proc's fault-injected view of inner under s. faults
// may be nil for pure interleaving without delays.
func WrapBackend(inner storage.Backend, s *Scheduler, proc string, faults *StoreFaults) *Backend {
	return &Backend{inner: inner, s: s, proc: proc, faults: faults}
}

// step is the scheduling point every data operation passes through.
func (b *Backend) step(op, table string, updates []storage.Update) {
	b.s.Note(op + " " + table + " @" + b.proc)
	if d := b.delayFor(table, updates); d > 0 {
		b.s.Note(fmt.Sprintf("delay %s %s", table, d))
		b.s.Sleep(d)
		return
	}
	b.s.Yield()
}

func (b *Backend) delayFor(table string, updates []storage.Update) time.Duration {
	f := b.faults
	if f == nil {
		return 0
	}
	if f.DelayProb > 0 && f.MaxDelay > 0 && b.s.rng.Float64() < f.DelayProb {
		return time.Duration(b.s.rng.Int63n(int64(f.MaxDelay))) + time.Microsecond
	}
	return 0
}

// isIntentDone reports whether the operation is an intent-completion
// update: an Update against an intent table that sets Done=true.
func isIntentDone(table string, updates []storage.Update) bool {
	if !strings.HasSuffix(table, ".intent") {
		return false
	}
	for _, u := range updates {
		d, ok := dynamo.DescribeUpdate(u)
		if ok && d.Kind == dynamo.UpdateSet && d.Path.Attr == "Done" && d.Path.MapKey == "" && d.Value.BoolVal() {
			return true
		}
	}
	return false
}

// CreateTable implements storage.Backend.
func (b *Backend) CreateTable(schema storage.Schema) error {
	b.step("CreateTable", schema.Name, nil)
	return b.inner.CreateTable(schema)
}

// DeleteTable implements storage.Backend.
func (b *Backend) DeleteTable(name string) error {
	b.step("DeleteTable", name, nil)
	return b.inner.DeleteTable(name)
}

// TableNames implements storage.Backend (no scheduling point: metadata).
func (b *Backend) TableNames() []string { return b.inner.TableNames() }

// TableShards implements storage.Backend (no scheduling point: metadata).
func (b *Backend) TableShards(name string) (int, error) { return b.inner.TableShards(name) }

// TableSchema implements storage.Backend (no scheduling point: metadata).
func (b *Backend) TableSchema(name string) (storage.Schema, error) { return b.inner.TableSchema(name) }

// TableBytes implements storage.Backend (no scheduling point: metadata).
func (b *Backend) TableBytes(name string) (int, error) { return b.inner.TableBytes(name) }

// TableItemCount implements storage.Backend (no scheduling point: metadata).
func (b *Backend) TableItemCount(name string) (int, error) { return b.inner.TableItemCount(name) }

// Get implements storage.Backend.
func (b *Backend) Get(table string, key storage.Key) (storage.Item, bool, error) {
	b.step("Get", table, nil)
	return b.inner.Get(table, key)
}

// GetProj implements storage.Backend.
func (b *Backend) GetProj(table string, key storage.Key, proj []storage.Path) (storage.Item, bool, error) {
	b.step("GetProj", table, nil)
	return b.inner.GetProj(table, key, proj)
}

// Put implements storage.Backend.
func (b *Backend) Put(table string, item storage.Item, cond storage.Cond) error {
	b.step("Put", table, nil)
	err := b.inner.Put(table, item, cond)
	if err == nil {
		b.wakeForItem(table, item)
	}
	return err
}

// Update implements storage.Backend.
func (b *Backend) Update(table string, key storage.Key, cond storage.Cond, updates ...storage.Update) error {
	if f := b.faults; f != nil && f.LateDone != nil && isIntentDone(table, updates) {
		span := f.LateDone.MaxDelay - f.LateDone.MinDelay
		d := f.LateDone.MinDelay
		if span > 0 {
			d += time.Duration(b.s.rng.Int63n(int64(span)))
		}
		b.s.Note(fmt.Sprintf("latedone %s %s", table, d))
		// The in-flight write is deliberately NOT proc-tagged: a kill stops
		// the process, not a packet already in the network. The guard may
		// rightly refuse the apply (intent already collected) — that is the
		// scenario under test, so the error is dropped.
		b.s.Go(TaskOpts{Name: "latedone@" + b.proc}, func() {
			b.s.Sleep(d)
			b.inner.Update(table, key, cond, updates...) //nolint:errcheck
		})
		b.s.Yield()
		return nil
	}
	b.step("Update", table, updates)
	err := b.inner.Update(table, key, cond, updates...)
	b.debug("upd", table, key, err, updates)
	if err == nil {
		b.wake(table, key.Hash)
	}
	return err
}

// debug prints store traffic for tables matching the SIM_DEBUG_TABLE
// substring — the low-tech lens OPERATIONS.md's seed-replay recipe points
// at. It never touches scheduler state, so arming it cannot perturb a
// replay.
func (b *Backend) debug(op, table string, key storage.Key, err error, updates []storage.Update) {
	if debugTable == "" || !strings.Contains(table, debugTable) {
		return
	}
	name := "?"
	if b.s.current != nil {
		name = b.s.current.Name
	}
	fmt.Printf("DBG %8s %-14s %s %s key=%v err=%v", b.s.Now().Sub(b.s.opts.Epoch), name, op, table, key, err)
	for _, u := range updates {
		if d, ok := dynamo.DescribeUpdate(u); ok {
			fmt.Printf(" [%v %s.%s=%v]", d.Kind, d.Path.Attr, d.Path.MapKey, d.Value)
		}
	}
	fmt.Println()
}

var debugTable = os.Getenv("SIM_DEBUG_TABLE")

// Delete implements storage.Backend.
func (b *Backend) Delete(table string, key storage.Key, cond storage.Cond) error {
	b.step("Delete", table, nil)
	err := b.inner.Delete(table, key, cond)
	if err == nil {
		b.wake(table, key.Hash)
	}
	return err
}

// Query implements storage.Backend.
func (b *Backend) Query(table string, hash storage.Value, opts storage.QueryOpts) ([]storage.Item, error) {
	b.step("Query", table, nil)
	return b.inner.Query(table, hash, opts)
}

// QueryIndex implements storage.Backend.
func (b *Backend) QueryIndex(table, index string, hash storage.Value, opts storage.QueryOpts) ([]storage.Item, error) {
	b.step("QueryIndex", table, nil)
	return b.inner.QueryIndex(table, index, hash, opts)
}

// Scan implements storage.Backend.
func (b *Backend) Scan(table string, opts storage.QueryOpts) ([]storage.Item, error) {
	b.step("Scan", table, nil)
	return b.inner.Scan(table, opts)
}

// TransactWrite implements storage.Backend.
func (b *Backend) TransactWrite(ops []storage.TxOp) error {
	tables := make([]string, 0, len(ops))
	for _, op := range ops {
		tables = append(tables, op.Table)
	}
	b.step("Tx", strings.Join(tables, ","), nil)
	err := b.inner.TransactWrite(ops)
	if err == nil {
		for _, op := range ops {
			if op.Check {
				continue
			}
			if op.Put != nil {
				b.wakeForItem(op.Table, op.Put)
			} else {
				b.wake(op.Table, op.Key.Hash)
			}
		}
	}
	return err
}

// Fence implements storage.Fencer by delegation when the wrapped store is
// itself a Fencer (the speculation overlay sits beneath this wrapper in the
// spec scenario): the fence is one scheduling point, and the delegated
// flush runs atomically inside it. Keeping the overlay under the wrapper is
// what makes its real mutex safe here — no task can park while holding it,
// so a contending task never blocks the baton (the deadlock a wrapped-
// overlay-on-top arrangement exhibited under rare schedules). For every
// other inner store Fence is a free no-op with no scheduling point, leaving
// those scenarios' schedules untouched.
func (b *Backend) Fence() error {
	if _, ok := b.inner.(storage.Fencer); !ok {
		return nil
	}
	b.step("Fence", "fence", nil)
	return storage.Fence(b.inner)
}

// Metrics implements storage.Backend (no scheduling point: counters).
func (b *Backend) Metrics() *storage.Metrics { return b.inner.Metrics() }

var _ storage.Backend = (*Backend)(nil)
