package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/beldi"
	"repro/internal/apps/fanout"
	"repro/internal/apps/orders"
	"repro/internal/apps/travel"
	"repro/internal/dynamo"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/walstore"
)

// Protocol parameters every scenario runs under. The TTL is twice the
// synchrony bound T and pump cadences derive from it (tick = TTL/4, GC
// every TTL), so the GC horizon trails real completion closely — which is
// what gives the late-completion fault a wide window to land on a recycled
// intent.
const (
	simLeaseTTL = 60 * time.Millisecond
	simT        = 30 * time.Millisecond
)

// Kinds lists the fault-schedule kinds a seed can select, in derivation
// order: no fault at all, storage-op delays (seeded reordering), random
// crash points, a worker kill mid-load, a network partition that heals, a
// stop-the-world pause, lease clock skew, late intent completions past the
// GC horizon, a torn WAL write with restart recovery, a worker killed
// between speculative execution and batch durability under the
// commit-pipelining overlay, and commit-stream wakeups armed but perturbed
// (seeded drops, delays and duplicates of push notifications).
func Kinds() []string {
	return []string{"clean", "delay", "crash", "kill", "partition", "pause", "skew", "latedone", "torn", "spec", "wake"}
}

// WorkloadNames lists the application workloads a seed can select: the
// travel reservation app (cross-SSF transactions), the event-driven order
// pipeline (durable queues), and the fan-out word count (async promises).
// The torn and spec kinds override the selection with a counter workload on
// the WAL backend, whose audit is meaningful across a restart.
func WorkloadNames() []string { return []string{"travel", "orders", "fanout"} }

// Scenario is the seed-derived shape of one simulation run.
type Scenario struct {
	// Seed drives the scheduler, the fault schedule and the load.
	Seed int64
	// Kind names the fault schedule; see Kinds.
	Kind string
	// Workload names the application; see WorkloadNames.
	Workload string
	// Policy names the interleaving policy; see Policies.
	Policy string
	// Backend is the storage backend the run resolved to ("mem" or "wal");
	// set by RunSeed.
	Backend string
}

// ScenarioFor derives the scenario a seed selects: the kind cycles
// fastest, then the workload, then the policy, so a contiguous seed range
// covers the whole matrix.
func ScenarioFor(seed int64) Scenario {
	if seed < 0 {
		seed = -seed
	}
	kinds, wls, pols := Kinds(), WorkloadNames(), Policies()
	sc := Scenario{
		Seed:     seed,
		Kind:     kinds[seed%int64(len(kinds))],
		Workload: wls[(seed/int64(len(kinds)))%int64(len(wls))],
		Policy:   pols[(seed/int64(len(kinds)*len(wls)))%int64(len(pols))],
	}
	if sc.Kind == "torn" || sc.Kind == "spec" {
		sc.Workload = "counter"
	}
	return sc
}

// RunOpts configure one RunSeed call.
type RunOpts struct {
	// Backend selects the storage backend: "mem" (default) or "wal". The
	// torn and spec kinds always run on "wal".
	Backend string
	// Dir is the WAL directory; required whenever the run resolves to the
	// wal backend. Use a fresh directory per run.
	Dir string
}

// Result describes a completed (or failed) run.
type Result struct {
	// Scenario is the seed-derived shape the run executed.
	Scenario Scenario
	// TraceHash digests every scheduling decision and storage operation;
	// equal seeds must produce equal hashes.
	TraceHash uint64
	// Steps is the number of scheduling decisions the run took.
	Steps int
}

// ReproLine returns the command that replays a failing seed.
func ReproLine(seed int64, backend string) string {
	return fmt.Sprintf("go test ./internal/sim -run 'TestSimReplaySeed' -sim.seed=%d -sim.backend=%s", seed, backend)
}

// RunSeed executes the scenario seed selects, end to end: build the
// cluster, drive the workload while the fault schedule fires, quiesce,
// audit exactly-once totals and transactional invariants, then advance
// time through several GC generations with a full Fsck after each step. A
// nil error means every audit passed; the Result's trace hash is returned
// either way so replays can be compared.
func RunSeed(seed int64, opts RunOpts) (Result, error) {
	sc := ScenarioFor(seed)
	sc.Backend = opts.Backend
	if sc.Backend == "" {
		sc.Backend = "mem"
	}
	if sc.Kind == "torn" || sc.Kind == "spec" {
		sc.Backend = "wal"
	}
	res := Result{Scenario: sc}
	if sc.Backend == "wal" && opts.Dir == "" {
		return res, fmt.Errorf("sim: scenario %d (%s) needs the wal backend: set RunOpts.Dir", seed, sc.Kind)
	}

	s := New(Options{Seed: seed, Policy: sc.Policy})
	// Load parameters draw from their own stream so scenario shape never
	// perturbs scheduling decisions.
	prng := rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))

	var err error
	switch sc.Kind {
	case "torn":
		err = runTorn(s, sc, prng, opts.Dir)
	case "spec":
		err = runSpec(s, sc, prng, opts.Dir)
	default:
		var store storage.Backend
		var ws *walstore.Store
		if sc.Backend == "wal" {
			// SyncNone: fsync policy is irrelevant to the simulation (no
			// page-cache loss is modeled outside the torn kind) and real
			// fsyncs would dominate sweep wall time.
			ws, err = walstore.Open(opts.Dir, walstore.Options{Sync: walstore.SyncNone})
			if err != nil {
				return res, err
			}
			store = ws
		} else {
			store = dynamo.NewStore()
		}
		err = runScenario(s, sc, prng, store)
		if ws != nil {
			if cerr := ws.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("sim: closing walstore: %w", cerr)
			}
			if ferr := walstore.Fsck(opts.Dir); ferr != nil && err == nil {
				err = fmt.Errorf("sim: walstore fsck: %w", ferr)
			}
		}
	}
	res.TraceHash = s.TraceHash()
	res.Steps = s.Steps()
	return res, err
}

// simConfig is the protocol configuration every scenario shares.
func simConfig() beldi.Config {
	return beldi.Config{
		RowCap: 4,
		T:      simT,
		// Generous retry budgets: adversarial policies (starve) legally
		// stretch lock waits and promise awaits far past the defaults, and
		// a retry exhaustion there would read as a protocol bug.
		LockRetryMax:  2000,
		AwaitRetryMax: 20000,
	}
}

// runScenario drives every kind except torn: one cluster generation, fault
// at mid-load where the kind calls for one, quiesce, audit, settle.
func runScenario(s *Scheduler, sc Scenario, prng *rand.Rand, store storage.Backend) error {
	wl := newWorkload(sc, prng)
	cfg := ClusterConfig{
		Workers:    3,
		Partitions: 8,
		LeaseTTL:   simLeaseTTL,
		Config:     simConfig(),
		Register:   wl.register,
	}
	if wl.durable {
		cfg.DurableAsync = &beldi.DurableAsyncOptions{
			VisibilityTimeout: 2 * simT,
			// No dead-lettering: adversarial schedules legally starve a
			// consumer past any receive budget, and a dead-lettered message
			// would fail the exactly-once audit without any protocol bug.
			MaxReceives:  -1,
			BatchSize:    1, // one message per poll keeps delivery single-file under the baton
			PollInterval: time.Millisecond,
		}
		if sc.Kind == "latedone" {
			// Completions stall up to 8T; redelivering before that window
			// closes is legitimate but noisy, so stretch visibility past it.
			cfg.DurableAsync.VisibilityTimeout = 10 * simT
		}
	}
	switch sc.Kind {
	case "delay":
		cfg.Faults = &StoreFaults{DelayProb: 0.25, MaxDelay: simT / 4}
	case "wake":
		// Push armed, notification fabric hostile: wakeups drop (the
		// subscriber's poll-cadence timeout is the liveness floor), arrive
		// late (in-flight packets), or arrive twice (hints re-read, never
		// re-execute). Audits are unchanged: perturbed wakeups may cost
		// latency only.
		cfg.Faults = &StoreFaults{Wake: &WakeFaults{
			DropProb: 0.25, DupProb: 0.15, DelayProb: 0.25, MaxDelay: simT / 4,
		}}
	case "latedone":
		cfg.Faults = &StoreFaults{LateDone: &LateDone{MinDelay: simT, MaxDelay: 8 * simT}}
	case "skew":
		skews := []time.Duration{-simLeaseTTL / 8, 0, simLeaseTTL / 8}
		cfg.Skew = func(i int) time.Duration { return skews[i%len(skews)] }
	}
	c, err := NewCluster(s, store, cfg)
	if err != nil {
		return err
	}
	if err := wl.seed(c); err != nil {
		return fmt.Errorf("sim: seeding %s: %w", wl.name, err)
	}
	if sc.Kind == "crash" {
		// Armed after seeding so setup load cannot crash.
		for i, w := range c.Workers {
			w.CW.Platform().SetFaults(&platform.CrashProb{P: 0.03, Seed: sc.Seed*31 + int64(i) + 1})
		}
	}
	var driveErr error
	root := s.Go(TaskOpts{Name: "driver"}, func() {
		driveErr = drive(s, c, sc, prng, wl)
	})
	runErr := s.Run(root)
	s.Shutdown()
	if runErr != nil {
		return runErr
	}
	return driveErr
}

// drive is the scenario's root task: spawn one client task per request
// (staggered, routed around the faulted worker), fire the kind's fault at
// mid-load, wait, quiesce, audit, settle-and-fsck.
func drive(s *Scheduler, c *Cluster, sc Scenario, prng *rand.Rand, wl *workload) error {
	c.StartPumps()
	victim := prng.Intn(len(c.Workers))
	epochBefore := c.Workers[victim].CW.Worker().Epoch()
	avoid := -1 // clients route around this worker once a fault lands
	errs := make([]error, wl.requests)
	clients := make([]*Task, 0, wl.requests)
	for i := 0; i < wl.requests; i++ {
		if i == wl.requests/2 {
			switch sc.Kind {
			case "kill":
				c.Kill(victim)
				avoid = victim
			case "partition":
				c.Partition(victim)
				avoid = victim
			case "pause":
				c.Pause(victim)
				avoid = victim
			}
		}
		wi := i % len(c.Workers)
		if wi == avoid {
			wi = (wi + 1) % len(c.Workers)
		}
		w, i := c.Workers[wi], i
		clients = append(clients, s.Go(TaskOpts{Name: fmt.Sprintf("client%d", i)}, func() {
			errs[i] = wl.client(w, i)
		}))
		s.Sleep(2 * time.Millisecond)
	}
	if sc.Kind == "pause" {
		// The stall stays under T: past the GC horizon even correct code
		// may fail audits (the paper's §5 synchrony assumption).
		s.Sleep(simT / 2)
		c.Resume(victim)
	}
	s.Await(clients...)
	if sc.Kind == "partition" {
		// Let the pool declare the victim dead and steal, then heal; the
		// victim's own heartbeat pump must rejoin at a higher epoch.
		s.Sleep(3 * simLeaseTTL)
		c.Unpartition(victim)
		wk := c.Workers[victim].CW.Worker()
		deadline := s.Now().Add(30 * simLeaseTTL)
		for wk.Fenced() || wk.Epoch() <= epochBefore {
			if s.Now().After(deadline) {
				return fmt.Errorf("sim: partitioned worker %s never rejoined (fenced=%v, epoch %d -> %d)",
					c.Workers[victim].Name, wk.Fenced(), epochBefore, wk.Epoch())
			}
			s.Sleep(simLeaseTTL / 4)
		}
	}
	// Only kinds that kill instances may fail clients: a kill's in-flight
	// callers crash, and crash-kind clients die at random crash points.
	// Everything else must succeed end to end.
	if sc.Kind != "kill" && sc.Kind != "crash" {
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("sim: client %d failed under kind=%s: %w", i, sc.Kind, err)
			}
		}
	}
	if sc.Kind == "crash" {
		// Stop the dice before draining: the audit's own probe invocations
		// and the collector's recovery re-executions must be able to finish
		// (the chaos tests disarm their crash plan the same way).
		for _, w := range c.Workers {
			w.CW.Platform().SetFaults(nil)
		}
	}
	if err := c.Quiesce(wl.fns, 30*time.Second); err != nil {
		return err
	}
	if err := wl.audit(c, sc, errs); err != nil {
		return err
	}
	if err := c.SettleAndCheck(16); err != nil {
		return err
	}
	if sc.Kind == "kill" {
		steals := int64(0)
		for i, w := range c.Workers {
			if i != victim {
				steals += w.CW.Worker().Stats().Steals.Load()
			}
		}
		if steals == 0 {
			return fmt.Errorf("sim: no partitions stolen from the killed worker")
		}
	}
	return nil
}

// workload bundles one application's registration, load and audit.
type workload struct {
	name     string
	fns      []string // intent tables Quiesce polls
	requests int
	durable  bool // wire AsyncInvoke through durable queues
	register beldi.RegisterApp
	seed     func(c *Cluster) error
	client   func(w *Worker, i int) error
	audit    func(c *Cluster, sc Scenario, errs []error) error
}

func newWorkload(sc Scenario, prng *rand.Rand) *workload {
	switch sc.Workload {
	case "orders":
		return ordersWorkload(prng)
	case "fanout":
		return fanoutWorkload()
	default:
		return travelWorkload()
	}
}

// travelWorkload books a distinct (hotel, flight) pair per request, so
// exactly-once is auditable per workflow: both inventories must land at
// capacity-1 — a lost workflow leaves capacity, a duplicate capacity-2 —
// and the cross-SSF transaction keeps them in lockstep.
func travelWorkload() *workload {
	const capacity = 20
	wl := &workload{name: "travel", requests: 12}
	wl.fns = []string{travel.FnFrontend, travel.FnSearch, travel.FnGeo, travel.FnRate, travel.FnRecommend,
		travel.FnUser, travel.FnProfile, travel.FnReserve, travel.FnReserveHotel, travel.FnReserveFlight}
	wl.register = func(d *beldi.Deployment) {
		app := travel.Build(d)
		app.Capacity = capacity
	}
	wl.seed = func(c *Cluster) error {
		for _, fn := range []string{travel.FnGeo, travel.FnRate, travel.FnRecommend, travel.FnProfile,
			travel.FnUser, travel.FnReserveHotel, travel.FnReserveFlight} {
			if _, err := c.Workers[0].CW.Invoke(fn, beldi.Map(map[string]beldi.Value{"op": beldi.Str("seed")})); err != nil {
				return err
			}
		}
		return nil
	}
	wl.client = func(w *Worker, i int) error {
		_, err := w.CW.Invoke(travel.FnFrontend, beldi.Map(map[string]beldi.Value{
			"op":     beldi.Str("reserve"),
			"hotel":  beldi.Str(fmt.Sprintf("hotel-%03d", i)),
			"flight": beldi.Str(fmt.Sprintf("flight-%03d", i)),
		}))
		return err
	}
	wl.audit = func(c *Cluster, sc Scenario, errs []error) error {
		d := c.Live(0).CW.Deployment()
		hotelRT := d.Runtime(travel.FnReserveHotel)
		flightRT := d.Runtime(travel.FnReserveFlight)
		for i := 0; i < wl.requests; i++ {
			h, err := beldi.PeekState(hotelRT, "inventory", fmt.Sprintf("hotel-%03d", i))
			if err != nil {
				return err
			}
			f, err := beldi.PeekState(flightRT, "inventory", fmt.Sprintf("flight-%03d", i))
			if err != nil {
				return err
			}
			booked := h.Int() == capacity-1 && f.Int() == capacity-1
			untouched := h.Int() == capacity && f.Int() == capacity
			switch {
			case sc.Kind == "crash" && (booked || untouched):
				// A crash before the intent landed placed nothing; after
				// it, the collector finishes the booking. Both-or-neither
				// is the invariant.
			case sc.Kind != "crash" && booked:
				// Every other kind preserves the at-entry contract: the
				// intent lands before the first crash point can fire, so
				// each request books exactly once even when its caller
				// died.
			default:
				return fmt.Errorf("sim: request %d: hotel=%d flight=%d (capacity %d): not exactly-once",
					i, h.Int(), f.Int(), capacity)
			}
		}
		hot, err := travel.AuditInventory(d, travel.FnReserveHotel)
		if err != nil {
			return err
		}
		fl, err := travel.AuditInventory(d, travel.FnReserveFlight)
		if err != nil {
			return err
		}
		if hot != fl {
			return fmt.Errorf("sim: inventories diverged: hotel=%d flight=%d", hot, fl)
		}
		return nil
	}
	return wl
}

// ordersWorkload drives the event-driven order pipeline over durable
// queues and audits the per-order counters: every order whose frontend
// record exists is charged once, reserved once, shipped once and notified
// once.
func ordersWorkload(prng *rand.Rand) *workload {
	type placed struct {
		order       string
		qty, amount int64
	}
	wl := &workload{name: "orders", requests: 10, durable: true}
	wl.fns = []string{orders.FnFrontend, orders.FnPayment, orders.FnInventory, orders.FnShipping, orders.FnNotify}
	reqs := make([]placed, wl.requests)
	for i := range reqs {
		reqs[i] = placed{
			order:  fmt.Sprintf("o-%04d", i),
			qty:    1 + int64(prng.Intn(3)),
			amount: 10 + int64(prng.Intn(90)),
		}
	}
	var apps []*orders.App // join order; parallel to Cluster.Workers
	wl.register = func(d *beldi.Deployment) {
		apps = append(apps, orders.Build(d))
	}
	wl.seed = func(c *Cluster) error {
		_, err := c.Workers[0].CW.Invoke(orders.FnInventory, beldi.Map(map[string]beldi.Value{"op": beldi.Str("seed")}))
		return err
	}
	wl.client = func(w *Worker, i int) error {
		r := reqs[i]
		_, err := w.CW.Invoke(orders.FnFrontend,
			orders.PlaceRequest(r.order, orders.UserID(i%orders.NumUsers), orders.ItemID(i%orders.NumItems), r.qty, r.amount))
		return err
	}
	wl.audit = func(c *Cluster, sc Scenario, errs []error) error {
		live := 0
		for i, w := range c.Workers {
			if !w.Killed {
				live = i
				break
			}
		}
		frontendRT := c.Workers[live].CW.Deployment().Runtime(orders.FnFrontend)
		var inScope []placed
		for i, r := range reqs {
			rec, err := beldi.PeekState(frontendRT, "orders", r.order)
			if err != nil {
				return err
			}
			if !rec.IsNull() {
				inScope = append(inScope, r)
			} else if errs[i] == nil {
				return fmt.Errorf("sim: order %s acked but its frontend record is missing", r.order)
			}
		}
		var ids []string
		var wantRevenue, wantStock int64
		for _, r := range inScope {
			ids = append(ids, r.order)
			wantRevenue += r.amount
			wantStock += r.qty
		}
		tot, err := apps[live].Totals(ids)
		if err != nil {
			return err
		}
		n := len(inScope)
		if tot.Revenue != wantRevenue || tot.StockSold != wantStock ||
			tot.PaidOrders != n || tot.Shipments != n || tot.Notifications != int64(n) {
			return fmt.Errorf("sim: pipeline totals diverged: got %+v, want revenue=%d stock=%d paid=ship=note=%d",
				tot, wantRevenue, wantStock, n)
		}
		return nil
	}
	return wl
}

// fanoutDocs is the word-count corpus; the audit recomputes the expected
// totals with the mapper's tokenization (lower-case fields, punctuation
// trimmed).
func fanoutDocs() []fanout.Doc {
	return []fanout.Doc{
		{ID: "d0", Text: "Every workflow registers an intent before its first effect."},
		{ID: "d1", Text: "The collector finishes what a dead worker started; exactly once, not twice."},
		{ID: "d2", Text: "Leases expire, partitions move, and the epoch fence stops the zombie."},
		{ID: "d3", Text: "A torn write poisons the log; recovery truncates the tail and replays the rest."},
		{ID: "d4", Text: "Same seed, same interleaving, same trace: the failure replays on demand."},
		{ID: "d5", Text: "The garbage collector reaps a done intent only after the synchrony bound passes."},
	}
}

func expectedCounts(docs []fanout.Doc) map[string]int64 {
	want := map[string]int64{}
	for _, doc := range docs {
		for _, w := range strings.Fields(strings.ToLower(doc.Text)) {
			if w = strings.Trim(w, ".,;:!?\"'()"); w != "" {
				want[w]++
			}
		}
	}
	return want
}

// fanoutWorkload submits one fan-out word-count job (async promises:
// durable mailboxes, logged awaits) and audits the committed totals
// against locally computed counts.
func fanoutWorkload() *workload {
	wl := &workload{name: "fanout", requests: 1}
	wl.fns = []string{fanout.FnMap, fanout.FnReduce}
	wl.register = func(d *beldi.Deployment) { fanout.Build(d) }
	wl.seed = func(*Cluster) error { return nil }
	wl.client = func(w *Worker, _ int) error {
		job, err := beldi.ToValue(fanout.Job{Docs: fanoutDocs()})
		if err != nil {
			return err
		}
		_, err = w.CW.Invoke(fanout.FnReduce, job)
		return err
	}
	wl.audit = func(c *Cluster, sc Scenario, errs []error) error {
		d := c.Live(0).CW.Deployment()
		tot, err := fanout.Totals(d)
		if err != nil {
			return err
		}
		if len(tot) == 0 {
			if errs[0] != nil {
				return nil // the job died before its intent landed: no totals is correct
			}
			return fmt.Errorf("sim: fan-out job acked but no totals committed")
		}
		want := expectedCounts(fanoutDocs())
		if len(tot) != len(want) {
			return fmt.Errorf("sim: fan-out totals have %d distinct words, want %d", len(tot), len(want))
		}
		for w, n := range want {
			if tot[w] != n {
				return fmt.Errorf("sim: fan-out count for %q = %d, want %d", w, tot[w], n)
			}
		}
		return nil
	}
	return wl
}

// counterRegister registers the restart-auditable workload the torn kind
// drives: each request increments one shared locked counter and drops a
// per-request marker row, so after recovery the counter must equal the
// number of markers — a lost increment or a replayed one breaks the
// equality.
func counterRegister(d *beldi.Deployment) {
	d.Function("counter", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		key := in.Map()["key"].Str()
		if err := e.Lock("state", "total"); err != nil {
			return beldi.Null, err
		}
		v, err := e.Read("state", "total")
		if err != nil {
			return beldi.Null, err
		}
		if err := e.Write("state", "total", beldi.Int(v.Int()+1)); err != nil {
			return beldi.Null, err
		}
		if err := e.Unlock("state", "total"); err != nil {
			return beldi.Null, err
		}
		if err := e.Write("state", "mark."+key, beldi.Int(1)); err != nil {
			return beldi.Null, err
		}
		return beldi.Null, nil
	}, "state")
}

// runTorn is the two-generation scenario: generation one runs the counter
// workload on a WAL store armed with a torn append (the Nth framed record
// is cut or corrupted, poisoning the store mid-load, like a process dying
// mid-write); the harness then kills generation one, reopens the
// directory, and a fresh generation must recover — finish the surviving
// intents, take the dead generation's partitions, serve new load — with
// the counter audit and both Fscks clean at the end.
func runTorn(s *Scheduler, sc Scenario, prng *rand.Rand, dir string) error {
	tear := TornWrite{
		// Past any setup append, inside the load phase's range.
		AppendN: 150 + prng.Intn(150),
		CutAt:   1 + prng.Intn(64),
		Flip:    prng.Intn(2) == 0,
	}
	ws, err := walstore.Open(dir, walstore.Options{Sync: walstore.SyncNone, Hooks: tear.Hooks()})
	if err != nil {
		return err
	}
	cfg := ClusterConfig{
		Workers:    2,
		Partitions: 8,
		LeaseTTL:   simLeaseTTL,
		Config:     simConfig(),
		Register:   counterRegister,
	}
	c, err := NewCluster(s, ws, cfg)
	if err != nil {
		return err
	}

	const phase1, phase2, waves = 6, 6, 6
	var keys []string
	phase1Errs := map[string]error{}
	var driveErr error
	var c2 *Cluster
	root := s.Go(TaskOpts{Name: "driver"}, func() {
		driveErr = func() error {
			c.StartPumps()
			// Phase 1: drive waves of increments until the tear poisons the
			// store (a client error is the signal) or the wave budget runs
			// out — the tear's append index is seed-chosen, so the wave in
			// which it fires varies.
			torn := false
			for wave := 0; wave < waves && !torn; wave++ {
				var tasks []*Task
				waveErrs := make([]error, phase1)
				for i := 0; i < phase1; i++ {
					key := fmt.Sprintf("t-%03d", wave*phase1+i)
					keys = append(keys, key)
					w, i, key := c.Workers[(wave*phase1+i)%len(c.Workers)], i, key
					tasks = append(tasks, s.Go(TaskOpts{Name: "client." + key}, func() {
						_, err := w.CW.Invoke("counter", beldi.Map(map[string]beldi.Value{"key": beldi.Str(key)}))
						waveErrs[i] = err
					}))
					s.Sleep(2 * time.Millisecond)
				}
				s.Await(tasks...)
				for i := 0; i < phase1; i++ {
					phase1Errs[keys[wave*phase1+i]] = waveErrs[i]
					if waveErrs[i] != nil {
						torn = true
					}
				}
			}
			// Generation one dies; the directory is everything that
			// survives.
			for i := range c.Workers {
				c.Kill(i)
			}
			ws.Close() //nolint:errcheck // poisoned stores report the injected tear here
			ws2, err := walstore.Open(dir, walstore.Options{Sync: walstore.SyncNone})
			if err != nil {
				return fmt.Errorf("sim: reopening torn walstore: %w", err)
			}
			cfg2 := cfg
			cfg2.NamePrefix = "r"
			cfg2.Rejoin = true // generation one's leases are still on record
			c2, err = NewCluster(s, ws2, cfg2)
			if err != nil {
				return fmt.Errorf("sim: rejoining after torn-write restart: %w", err)
			}
			c2.StartPumps()
			// Let the dead generation's leases expire and be stolen.
			s.Sleep(3 * simLeaseTTL)
			// Phase 2: new load through the recovered pool must fully
			// succeed.
			var tasks []*Task
			phase2Errs := make([]error, phase2)
			for i := 0; i < phase2; i++ {
				key := fmt.Sprintf("u-%03d", i)
				keys = append(keys, key)
				w, i, key := c2.Workers[i%len(c2.Workers)], i, key
				tasks = append(tasks, s.Go(TaskOpts{Name: "client." + key}, func() {
					_, err := w.CW.Invoke("counter", beldi.Map(map[string]beldi.Value{"key": beldi.Str(key)}))
					phase2Errs[i] = err
				}))
				s.Sleep(2 * time.Millisecond)
			}
			s.Await(tasks...)
			for i, err := range phase2Errs {
				if err != nil {
					return fmt.Errorf("sim: post-recovery request %d failed: %w", i, err)
				}
			}
			if err := c2.Quiesce([]string{"counter"}, 30*time.Second); err != nil {
				return err
			}
			// Audit: the counter equals the number of marker rows. A
			// workflow whose intent survived the tear was finished by
			// generation two (increment and marker both land, once); one
			// whose intent was torn away never ran at all.
			rt := c2.Live(0).CW.Deployment().Runtime("counter")
			markers := 0
			for _, key := range keys {
				m, err := beldi.PeekState(rt, "state", "mark."+key)
				if err != nil {
					return err
				}
				if !m.IsNull() {
					markers++
				} else if err := phase1Errs[key]; err == nil && strings.HasPrefix(key, "t-") {
					return fmt.Errorf("sim: increment %s acked before the tear but its marker is gone", key)
				}
			}
			total, err := beldi.PeekState(rt, "state", "total")
			if err != nil {
				return err
			}
			if total.Int() != int64(markers) {
				return fmt.Errorf("sim: counter=%d but %d markers present: not exactly-once across the restart",
					total.Int(), markers)
			}
			if markers < phase2 {
				return fmt.Errorf("sim: only %d markers present, phase 2 alone placed %d", markers, phase2)
			}
			return c2.SettleAndCheck(8)
		}()
	})
	runErr := s.Run(root)
	s.Shutdown()
	if runErr == nil {
		runErr = driveErr
	}
	if c2 != nil {
		if cerr := c2.Inner.(*walstore.Store).Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("sim: closing recovered walstore: %w", cerr)
		}
	}
	if runErr == nil {
		if ferr := walstore.Fsck(dir); ferr != nil {
			runErr = fmt.Errorf("sim: walstore fsck after torn-write recovery: %w", ferr)
		}
	}
	return runErr
}

// runSpec is the speculation-crash scenario: generation one is a single
// worker running the counter workload through the commit-pipelining overlay
// (internal/pipeline in ManualFlush mode — a scheduled pump task is the
// committer, so the flush cadence is part of the explored schedule) over a
// WAL store armed with a seeded torn append. Mid-load, at a seed-chosen
// wave, the worker is killed with clients in flight and the overlay drops
// everything above the durability watermark — the crash window between
// speculative execution and batch durability. The directory then holds a
// consistent speculation-log prefix, possibly ending in a torn group-commit
// record the WAL recovery must truncate. A fresh generation reopens the base
// bare, steals the dead worker's partitions, finishes the surviving intents
// and serves new load; the audit requires counter == markers (exactly-once
// across the crash) and that every increment acked before the kill — the
// reply was fenced on the watermark — kept its marker.
func runSpec(s *Scheduler, sc Scenario, prng *rand.Rand, dir string) error {
	tear := TornWrite{
		// The overlay batches the hot path into few large appends, so the
		// append index sits lower than runTorn's; the low end lands inside
		// the load phase's flushes, the high end may never fire — then the
		// kill+drop alone is the crash.
		AppendN: 60 + prng.Intn(160),
		CutAt:   1 + prng.Intn(64),
		Flip:    prng.Intn(2) == 0,
	}
	ws, err := walstore.Open(dir, walstore.Options{Sync: walstore.SyncNone, Hooks: tear.Hooks()})
	if err != nil {
		return err
	}
	// The overlay sits UNDER the worker's sim wrapper (the wrapper's inner
	// store), not above it: every overlay operation — a speculative append,
	// a fence's inline flush — then runs atomically inside one scheduling
	// point, so the overlay's real mutex is never held across a park. The
	// inverted arrangement (overlay wrapping the sim backend) let a fence
	// park mid-flush with the mutex held while the flush pump blocked on
	// that same mutex with the baton — a schedule-dependent deadlock.
	overlay, err := pipeline.New(ws, pipeline.Options{ManualFlush: true})
	if err != nil {
		return err
	}
	cfg := ClusterConfig{
		// One worker: the overlay assumes a single writing process (see the
		// pipeline package comment), which is exactly the deployment model
		// speculation ships under.
		Workers:    1,
		Partitions: 8,
		LeaseTTL:   simLeaseTTL,
		Config:     simConfig(),
		Register:   counterRegister,
	}
	c, err := NewCluster(s, overlay, cfg)
	if err != nil {
		return err
	}

	const phase1, phase2, waves = 6, 6, 5
	killWave := 1 + prng.Intn(waves-1)
	var keys []string
	phase1Errs := map[string]error{}
	var driveErr error
	var c2 *Cluster
	root := s.Go(TaskOpts{Name: "driver"}, func() {
		driveErr = func() error {
			c.StartPumps()
			w0 := c.Workers[0]
			// The committer as a first-class scheduled task: every flush is a
			// schedule decision, and killing the worker kills it mid-cadence.
			s.Go(TaskOpts{Name: w0.Name + ".flush", Proc: w0.Name, Pump: true}, func() {
				for {
					s.Sleep(simLeaseTTL / 4)
					if w0.Killed {
						return
					}
					// The overlay is beneath the sim wrapper, so the flush's
					// base write is not a wrapped operation — note it here to
					// keep flush rounds in the trace.
					s.Note("flushstep @" + w0.Name)
					overlay.FlushStep() //nolint:errcheck // poison surfaces at fences and clients
				}
			})
			// Phase 1: waves of increments until the kill wave (clients still
			// in flight when the worker dies) or until the tear poisons the
			// store (a client error is the signal).
			down := false
			for wave := 0; wave < waves && !down; wave++ {
				var tasks []*Task
				waveKeys := make([]string, phase1)
				waveErrs := make([]error, phase1)
				for i := 0; i < phase1; i++ {
					key := fmt.Sprintf("s-%03d", wave*phase1+i)
					keys = append(keys, key)
					waveKeys[i] = key
					i, key := i, key
					tasks = append(tasks, s.Go(TaskOpts{Name: "client." + key}, func() {
						_, err := w0.CW.Invoke("counter", beldi.Map(map[string]beldi.Value{"key": beldi.Str(key)}))
						waveErrs[i] = err
					}))
					s.Sleep(2 * time.Millisecond)
				}
				if wave == killWave {
					// The crash window: this wave's workflows have steps
					// speculated above the durability watermark.
					c.Kill(0)
					down = true
				}
				s.Await(tasks...)
				for i := 0; i < phase1; i++ {
					phase1Errs[waveKeys[i]] = waveErrs[i]
					if waveErrs[i] != nil {
						down = true
					}
				}
			}
			if !w0.Killed {
				c.Kill(0)
			}
			// The worker dies with its speculation tail: the base keeps only
			// the flushed prefix.
			overlay.DropAndClose()
			if st := overlay.Snapshot(); st.Appended == 0 {
				return fmt.Errorf("sim: spec scenario speculated nothing; the overlay never saw the load")
			}
			ws.Close() //nolint:errcheck // poisoned stores report the injected tear here
			ws2, err := walstore.Open(dir, walstore.Options{Sync: walstore.SyncNone})
			if err != nil {
				return fmt.Errorf("sim: reopening walstore after speculation crash: %w", err)
			}
			cfg2 := ClusterConfig{
				Workers:    2,
				NamePrefix: "r",
				Partitions: 8,
				LeaseTTL:   simLeaseTTL,
				Config:     simConfig(),
				Register:   counterRegister,
				Rejoin:     true, // generation one's lease is still on record
			}
			c2, err = NewCluster(s, ws2, cfg2)
			if err != nil {
				return fmt.Errorf("sim: rejoining after speculation crash: %w", err)
			}
			c2.StartPumps()
			// Let the dead generation's lease expire and be stolen.
			s.Sleep(3 * simLeaseTTL)
			// Phase 2: new load through the recovered pool must fully succeed.
			var tasks []*Task
			phase2Errs := make([]error, phase2)
			for i := 0; i < phase2; i++ {
				key := fmt.Sprintf("u-%03d", i)
				keys = append(keys, key)
				w, i, key := c2.Workers[i%len(c2.Workers)], i, key
				tasks = append(tasks, s.Go(TaskOpts{Name: "client." + key}, func() {
					_, err := w.CW.Invoke("counter", beldi.Map(map[string]beldi.Value{"key": beldi.Str(key)}))
					phase2Errs[i] = err
				}))
				s.Sleep(2 * time.Millisecond)
			}
			s.Await(tasks...)
			for i, err := range phase2Errs {
				if err != nil {
					return fmt.Errorf("sim: post-recovery request %d failed: %w", i, err)
				}
			}
			if err := c2.Quiesce([]string{"counter"}, 30*time.Second); err != nil {
				return err
			}
			// Audit: the counter equals the number of marker rows, and no
			// acked increment lost its marker — the reply fence means an ack
			// implies durability, even though the worker died with unflushed
			// speculation behind it.
			rt := c2.Live(0).CW.Deployment().Runtime("counter")
			markers := 0
			for _, key := range keys {
				m, err := beldi.PeekState(rt, "state", "mark."+key)
				if err != nil {
					return err
				}
				if !m.IsNull() {
					markers++
				} else if err := phase1Errs[key]; err == nil && strings.HasPrefix(key, "s-") {
					return fmt.Errorf("sim: increment %s acked before the speculation crash but its marker is gone", key)
				}
			}
			total, err := beldi.PeekState(rt, "state", "total")
			if err != nil {
				return err
			}
			if total.Int() != int64(markers) {
				return fmt.Errorf("sim: counter=%d but %d markers present: not exactly-once across the speculation crash",
					total.Int(), markers)
			}
			if markers < phase2 {
				return fmt.Errorf("sim: only %d markers present, phase 2 alone placed %d", markers, phase2)
			}
			return c2.SettleAndCheck(8)
		}()
	})
	runErr := s.Run(root)
	s.Shutdown()
	if runErr == nil {
		runErr = driveErr
	}
	if c2 != nil {
		if cerr := c2.Inner.(*walstore.Store).Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("sim: closing recovered walstore: %w", cerr)
		}
	}
	if runErr == nil {
		if ferr := walstore.Fsck(dir); ferr != nil {
			runErr = fmt.Errorf("sim: walstore fsck after speculation-crash recovery: %w", ferr)
		}
	}
	return runErr
}

// SweepOptions configure a Sweep.
type SweepOptions struct {
	// Seeds are the scenario seeds to run, in order.
	Seeds []int64
	// Backend selects the storage backend for non-torn scenarios: "mem"
	// (default) or "wal".
	Backend string
	// TempDir returns a fresh directory for each run that needs the WAL
	// backend; required when Backend is "wal" or any seed derives the torn
	// kind.
	TempDir func() string
	// Logf receives progress and failure lines (testing.T.Logf-shaped);
	// nil discards them.
	Logf func(format string, args ...any)
}

// SeedResult is one seed's outcome within a sweep.
type SeedResult struct {
	Result
	// Err is the run's failure, nil when every audit passed.
	Err error
}

// Report is a sweep's outcome.
type Report struct {
	// Results holds every seed's outcome, in input order.
	Results []SeedResult
	// Failures holds the failing subset, in input order.
	Failures []SeedResult
	// Skipped counts seeds that could not run (no TempDir for a WAL
	// scenario).
	Skipped int
}

// Sweep runs every seed's scenario and reports the failures; each failure
// logs the exact command that replays it. CI runs a bounded sweep in
// tier-1 and a deep one nightly (see .github/workflows/ci.yml).
func Sweep(o SweepOptions) Report {
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	backend := o.Backend
	if backend == "" {
		backend = "mem"
	}
	var rep Report
	for _, seed := range o.Seeds {
		sc := ScenarioFor(seed)
		dir := ""
		if backend == "wal" || sc.Kind == "torn" || sc.Kind == "spec" {
			if o.TempDir == nil {
				logf("sim: seed %d (%s) skipped: WAL scenario but no TempDir", seed, sc.Kind)
				rep.Skipped++
				continue
			}
			dir = o.TempDir()
		}
		res, err := RunSeed(seed, RunOpts{Backend: backend, Dir: dir})
		sr := SeedResult{Result: res, Err: err}
		rep.Results = append(rep.Results, sr)
		if err != nil {
			rep.Failures = append(rep.Failures, sr)
			logf("sim: seed %d FAILED (kind=%s workload=%s policy=%s backend=%s): %v\n  reproduce: %s",
				seed, res.Scenario.Kind, res.Scenario.Workload, res.Scenario.Policy, res.Scenario.Backend,
				err, ReproLine(seed, res.Scenario.Backend))
		} else {
			logf("sim: seed %d ok (kind=%s workload=%s policy=%s): %d steps, trace %016x",
				seed, res.Scenario.Kind, res.Scenario.Workload, res.Scenario.Policy, res.Steps, res.TraceHash)
		}
	}
	return rep
}
