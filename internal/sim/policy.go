package sim

import (
	"fmt"
	"math/rand"
)

// Policy picks the next task to run from the runnable set. Implementations
// must be deterministic functions of the rng stream and the runnable slice
// (which the scheduler presents in spawn order).
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Pick returns the index into runnable of the task to run next.
	Pick(rng *rand.Rand, runnable []*Task) int
}

// PolicyByName returns a fresh policy instance: "random" (uniform),
// "lifo" (favor the most recently spawned task — drives deep chains and
// starves old work), "sticky" (keep running the same task in bursts —
// minimizes interleaving, maximizes batch effects), or "starve" (pick a
// victim process and schedule it only when forced — the slow-node
// adversary). "" means "random".
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "random":
		return policyRandom{}, nil
	case "lifo":
		return policyLIFO{}, nil
	case "sticky":
		return &policySticky{}, nil
	case "starve":
		return &policyStarve{}, nil
	}
	return nil, fmt.Errorf("sim: unknown policy %q", name)
}

// Policies lists the registered policy names, in scenario-derivation order.
func Policies() []string { return []string{"random", "lifo", "sticky", "starve"} }

type policyRandom struct{}

func (policyRandom) Name() string { return "random" }
func (policyRandom) Pick(rng *rand.Rand, runnable []*Task) int {
	return rng.Intn(len(runnable))
}

type policyLIFO struct{}

func (policyLIFO) Name() string { return "lifo" }
func (policyLIFO) Pick(rng *rand.Rand, runnable []*Task) int {
	if rng.Float64() < 0.75 {
		return len(runnable) - 1 // newest task (spawn order)
	}
	return rng.Intn(len(runnable))
}

type policySticky struct{ last int }

func (*policySticky) Name() string { return "sticky" }
func (p *policySticky) Pick(rng *rand.Rand, runnable []*Task) int {
	if p.last != 0 && rng.Float64() < 0.85 {
		for i, t := range runnable {
			if t.ID == p.last {
				return i
			}
		}
	}
	i := rng.Intn(len(runnable))
	p.last = runnable[i].ID
	return i
}

type policyStarve struct {
	victim string
	chosen bool
}

func (*policyStarve) Name() string { return "starve" }
func (p *policyStarve) Pick(rng *rand.Rand, runnable []*Task) int {
	if !p.chosen {
		// Choose the victim process from whoever shows up first; clients
		// and drivers (proc "") are never victims.
		var procs []string
		seen := map[string]bool{}
		for _, t := range runnable {
			if t.Proc != "" && !seen[t.Proc] {
				seen[t.Proc] = true
				procs = append(procs, t.Proc)
			}
		}
		if len(procs) == 0 {
			return rng.Intn(len(runnable))
		}
		p.victim = procs[rng.Intn(len(procs))]
		p.chosen = true
	}
	var other []int
	for i, t := range runnable {
		if t.Proc != p.victim {
			other = append(other, i)
		}
	}
	if len(other) == 0 {
		return rng.Intn(len(runnable)) // only the victim is runnable: forced
	}
	// Starve, don't stall: let the victim through occasionally so the run
	// terminates.
	if rng.Float64() < 0.02 && len(other) < len(runnable) {
		for i, t := range runnable {
			if t.Proc == p.victim {
				return i
			}
		}
	}
	return other[rng.Intn(len(other))]
}
