package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// This file is the simulator-backed section of storagetest's conformance
// suite: seeded adversarial interleavings and delay schedules over the
// operations the protocol leans on hardest — conditional writes racing on
// one row, and TransactWrite moving value between rows. Every backend that
// passes storagetest.Run is thereby pinned under the same reordered
// schedules the full cluster sweeps use, and every schedule must replay
// bit-identically from its seed.
//
// The section registers itself (storagetest cannot import the simulator:
// several packages' in-package tests import storagetest while the simulator
// imports those packages), so conformance callers activate it with
//
//	import _ "repro/internal/sim"

func init() { storagetest.RegisterSimSection(storageSection) }

func storageSection(t *testing.T, open storagetest.Opener) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		policy := Policies()[seed%int64(len(Policies()))]
		t.Run(fmt.Sprintf("seed=%d_%s", seed, policy), func(t *testing.T) {
			first := runStorageSchedule(t, seed, policy, open(t))
			second := runStorageSchedule(t, seed, policy, open(t))
			if first != second {
				t.Errorf("seed %d does not replay: %+v then %+v", seed, first, second)
			}
		})
	}
}

// storageOutcome is everything a schedule observably produced; replay
// equality compares two runs of the same seed field by field.
type storageOutcome struct {
	Trace   uint64
	Counter int64
	A, B    int64
	CASWins int64
	Moves   int64
}

const (
	casTasks      = 3
	casIncrements = 6
	moveTasks     = 2
	moveAttempts  = 8
	initialFunds  = int64(8)
)

func runStorageSchedule(t *testing.T, seed int64, policy string, raw storage.Backend) storageOutcome {
	t.Helper()
	s := New(Options{Seed: seed, Policy: policy})
	defer s.Shutdown()
	faults := &StoreFaults{DelayProb: 0.35, MaxDelay: 2 * time.Millisecond}
	if err := raw.CreateTable(storage.Schema{Name: "acct", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	for _, row := range []struct {
		k string
		n int64
	}{{"counter", 0}, {"a", initialFunds}, {"b", initialFunds}} {
		if err := raw.Put("acct", storage.Item{"K": dynamo.S(row.k), "N": dynamo.NInt(row.n)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	key := func(k string) storage.Key { return dynamo.HK(dynamo.S(k)) }

	// Mutated only under the scheduler's one-task-at-a-time discipline.
	var wins, moves int64
	var tasks []*Task
	root := s.Go(TaskOpts{Name: "root"}, func() {
		// CAS workers race read-modify-writes on one row: a stale
		// conditional write must fail with ErrConditionFailed and only the
		// winner's increment lands, under every delay schedule.
		for p := 0; p < casTasks; p++ {
			name := fmt.Sprintf("cas%d", p)
			b := WrapBackend(raw, s, name, faults)
			tasks = append(tasks, s.Go(TaskOpts{Name: name}, func() {
				for n := 0; n < casIncrements; n++ {
					for attempt := 0; ; attempt++ {
						if attempt > 500 {
							t.Errorf("%s: increment %d starved past 500 attempts", name, n)
							return
						}
						it, ok, err := b.Get("acct", key("counter"))
						if err != nil || !ok {
							t.Errorf("%s: read counter: ok=%v err=%v", name, ok, err)
							return
						}
						seen := it["N"].Int()
						err = b.Update("acct", key("counter"),
							dynamo.Eq(dynamo.A("N"), dynamo.NInt(seen)),
							dynamo.Set(dynamo.A("N"), dynamo.NInt(seen+1)))
						if err == nil {
							wins++
							break
						}
						if !errors.Is(err, storage.ErrConditionFailed) {
							t.Errorf("%s: CAS failed outside the condition channel: %v", name, err)
							return
						}
					}
				}
			}))
		}
		// Movers shuttle funds between two rows atomically: the guarded
		// debit and the credit commit together or not at all, so the total
		// is conserved under any interleaving.
		for p := 0; p < moveTasks; p++ {
			name := fmt.Sprintf("mover%d", p)
			b := WrapBackend(raw, s, name, faults)
			src, dst := "a", "b"
			if p%2 == 1 {
				src, dst = dst, src
			}
			tasks = append(tasks, s.Go(TaskOpts{Name: name}, func() {
				for n := 0; n < moveAttempts; n++ {
					err := b.TransactWrite([]storage.TxOp{
						{Table: "acct", Key: key(src), Cond: dynamo.Ge(dynamo.A("N"), dynamo.NInt(1)),
							Updates: []storage.Update{dynamo.Add(dynamo.A("N"), -1)}},
						{Table: "acct", Key: key(dst), Cond: dynamo.Exists(dynamo.A("K")),
							Updates: []storage.Update{dynamo.Add(dynamo.A("N"), 1)}},
					})
					if err == nil {
						moves++
						continue
					}
					var tc *storage.TxCanceledError
					if !errors.As(err, &tc) && !errors.Is(err, storage.ErrConditionFailed) {
						t.Errorf("%s: transact failed outside the condition channel: %v", name, err)
						return
					}
				}
			}))
		}
		// A reader audits monotonicity live: the counter only ever
		// increments, so no delay schedule may make a read travel backwards.
		readerB := WrapBackend(raw, s, "reader", faults)
		tasks = append(tasks, s.Go(TaskOpts{Name: "reader"}, func() {
			prev := int64(-1)
			for n := 0; n < 2*casTasks*casIncrements; n++ {
				it, ok, err := readerB.Get("acct", key("counter"))
				if err != nil || !ok {
					t.Errorf("reader: ok=%v err=%v", ok, err)
					return
				}
				if got := it["N"].Int(); got < prev {
					t.Errorf("reader: counter went backwards: %d after %d", got, prev)
					return
				} else {
					prev = got
				}
				s.Sleep(500 * time.Microsecond)
			}
		}))
		s.Await(tasks...)
	})
	if err := s.Run(root); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	out := storageOutcome{Trace: s.TraceHash(), CASWins: wins, Moves: moves}
	read := func(k string) int64 {
		it, ok, err := raw.Get("acct", key(k))
		if err != nil || !ok {
			t.Fatalf("final read %s: ok=%v err=%v", k, ok, err)
		}
		return it["N"].Int()
	}
	out.Counter, out.A, out.B = read("counter"), read("a"), read("b")
	if out.Counter != wins || wins != casTasks*casIncrements {
		t.Errorf("counter=%d with %d CAS wins (want %d): lost or duplicated increments",
			out.Counter, wins, casTasks*casIncrements)
	}
	if out.A+out.B != 2*initialFunds || out.A < 0 || out.B < 0 {
		t.Errorf("funds not conserved: a=%d b=%d (want sum %d, both ≥ 0)", out.A, out.B, 2*initialFunds)
	}
	return out
}
