package sim

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/core"
	"repro/internal/dynamo"
	"repro/internal/platform"
)

var (
	simSeed    = flag.Int64("sim.seed", -1, "replay this scenario seed (see a failing sweep's reproduce line)")
	simBackend = flag.String("sim.backend", "mem", "backend for -sim.seed replay: mem or wal")
	simDeep    = flag.Int("sim.deep", 0, "deep-sweep seed budget (nightly CI); 0 skips the deep sweep")
)

// TestSimSweepBounded is the tier-1 sweep: one contiguous seed block
// covering every fault kind and every workload at least once. Every seed
// must pass — a failure here is a protocol bug with a printed reproduction
// line.
func TestSimSweepBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short")
	}
	seeds := make([]int64, 0, 33)
	for seed := int64(0); seed < 33; seed++ {
		seeds = append(seeds, seed)
	}
	rep := Sweep(SweepOptions{Seeds: seeds, TempDir: t.TempDir, Logf: t.Logf})
	if len(rep.Failures) != 0 {
		t.Fatalf("%d/%d seeds failed; reproduction lines above", len(rep.Failures), len(rep.Results))
	}
	if rep.Skipped != 0 {
		t.Fatalf("%d seeds skipped; the bounded sweep must run everything", rep.Skipped)
	}
}

// TestSimDeepSweep is the nightly sweep: a larger seed budget under
// -sim.deep=N (see .github/workflows/ci.yml). Skipped when the flag is
// unset, so tier-1 stays bounded.
func TestSimDeepSweep(t *testing.T) {
	if *simDeep <= 0 {
		t.Skip("deep sweep runs with -sim.deep=N (nightly CI)")
	}
	seeds := make([]int64, 0, *simDeep)
	for seed := int64(0); seed < int64(*simDeep); seed++ {
		seeds = append(seeds, seed)
	}
	rep := Sweep(SweepOptions{Seeds: seeds, Backend: *simBackend, TempDir: t.TempDir, Logf: t.Logf})
	if len(rep.Failures) != 0 {
		t.Fatalf("%d/%d seeds failed; reproduction lines above", len(rep.Failures), len(rep.Results))
	}
}

// TestSimReplaySeed is the reproduction entry point a failing sweep prints:
//
//	go test ./internal/sim -run 'TestSimReplaySeed' -sim.seed=N -sim.backend=B
//
// It replays the seed's scenario twice and reports the failure along with
// both trace hashes, which must be identical — the whole point of
// replay-from-seed.
func TestSimReplaySeed(t *testing.T) {
	seed := *simSeed
	if seed < 0 {
		seed = 3 // cheap default so the entry point is exercised in tier-1
	}
	first, err1 := RunSeed(seed, RunOpts{Backend: *simBackend, Dir: t.TempDir()})
	second, err2 := RunSeed(seed, RunOpts{Backend: *simBackend, Dir: t.TempDir()})
	t.Logf("seed %d (%s/%s/%s on %s): trace %016x / %016x, %d steps",
		seed, first.Scenario.Kind, first.Scenario.Workload, first.Scenario.Policy, first.Scenario.Backend,
		first.TraceHash, second.TraceHash, first.Steps)
	if first.TraceHash != second.TraceHash {
		t.Errorf("replay diverged: trace %016x then %016x", first.TraceHash, second.TraceHash)
	}
	if (err1 == nil) != (err2 == nil) {
		t.Errorf("replay outcome diverged: %v then %v", err1, err2)
	}
	if err1 != nil {
		t.Errorf("seed %d failed: %v", seed, err1)
	}
}

// TestSimReplayIsDeterministic re-runs one seed of every kind and asserts
// bit-identical trace hashes — the property every reproduction line relies
// on.
func TestSimReplayIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation replays skipped in -short")
	}
	for seed := int64(0); seed < int64(len(Kinds())); seed++ {
		sc := ScenarioFor(seed)
		a, errA := RunSeed(seed, RunOpts{Dir: t.TempDir()})
		b, errB := RunSeed(seed, RunOpts{Dir: t.TempDir()})
		if a.TraceHash != b.TraceHash {
			t.Errorf("seed %d (%s/%s): trace %016x then %016x — not deterministic",
				seed, sc.Kind, sc.Workload, a.TraceHash, b.TraceHash)
		}
		if (errA == nil) != (errB == nil) {
			t.Errorf("seed %d (%s/%s): outcome diverged: %v then %v", seed, sc.Kind, sc.Workload, errA, errB)
		}
	}
}

// TestSimSpecCrashRecovery pins the speculation-crash scenario (the spec
// kind): a single worker running the counter workload through the
// commit-pipelining overlay is killed with clients in flight, the overlay
// drops everything above the durability watermark, and a fresh generation
// recovering from the bare WAL must show counter == markers with every
// fenced (acked) increment intact. The pinned seeds must keep deriving the
// spec kind, pass, and replay bit-identically — the regression guard for
// the overlay's crash-consistency argument.
func TestSimSpecCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation scenario skipped in -short")
	}
	// Spec seeds across both policies the tier-1 sweep reaches (kind index
	// 9 of Kinds, stride len(Kinds)).
	for _, seed := range []int64{9, 20, 42} {
		sc := ScenarioFor(seed)
		if sc.Kind != "spec" || sc.Workload != "counter" {
			t.Fatalf("seed %d derives %s/%s, this test needs spec/counter — re-pin the seed", seed, sc.Kind, sc.Workload)
		}
		a, errA := RunSeed(seed, RunOpts{Dir: t.TempDir()})
		if errA != nil {
			t.Errorf("seed %d (policy=%s) failed: %v\nreproduce: %s", seed, sc.Policy, errA, ReproLine(seed, "wal"))
			continue
		}
		b, errB := RunSeed(seed, RunOpts{Dir: t.TempDir()})
		if errB != nil || a.TraceHash != b.TraceHash {
			t.Errorf("seed %d replay diverged: trace %016x then %016x (err %v)", seed, a.TraceHash, b.TraceHash, errB)
		}
	}
}

// TestSimWakeFaultsPreserveLiveness pins the wake kind: commit-stream push
// is armed across the cluster while the notification fabric drops, delays
// and duplicates wakeups. Subscribing consumers (promise awaits above all)
// must stay live through their poll-cadence fallback, every exactly-once
// audit must hold unchanged — a wakeup is a hint, never the data — and the
// pinned seeds must replay bit-identically, fault dice included. One seed
// per workload (kind index 10 of Kinds, stride len(Kinds)); the fanout seed
// is the load-bearing one, since async promises are the heaviest
// subscription consumers.
func TestSimWakeFaultsPreserveLiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation scenario skipped in -short")
	}
	for _, seed := range []int64{10, 21, 32} {
		sc := ScenarioFor(seed)
		if sc.Kind != "wake" {
			t.Fatalf("seed %d derives %s/%s, this test needs the wake kind — re-pin the seed", seed, sc.Kind, sc.Workload)
		}
		a, errA := RunSeed(seed, RunOpts{Dir: t.TempDir()})
		if errA != nil {
			t.Errorf("seed %d (%s/%s) failed: %v\nreproduce: %s", seed, sc.Kind, sc.Workload, errA, ReproLine(seed, "mem"))
			continue
		}
		b, errB := RunSeed(seed, RunOpts{Dir: t.TempDir()})
		if errB != nil || a.TraceHash != b.TraceHash {
			t.Errorf("seed %d replay diverged: trace %016x then %016x (err %v)", seed, a.TraceHash, b.TraceHash, errB)
		}
	}
}

// TestSimCatchesUnguardedIntentDone is the sweep's proof of value: it
// reintroduces a historical protocol bug — markIntentDone without the
// existence guard, so a straggler's late completion resurrects its GC'd
// intent as a half-formed zombie row — and asserts that the late-completion
// fault schedule catches it within the CI seed budget, and that the caught
// seed replays the identical failing schedule.
func TestSimCatchesUnguardedIntentDone(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short")
	}
	core.FaultUnguardedIntentDone.Store(true)
	defer core.FaultUnguardedIntentDone.Store(false)

	// Seeds deriving the latedone kind (index 7 of Kinds), across
	// workloads and policies.
	var seeds []int64
	for seed := int64(7); len(seeds) < 8; seed += int64(len(Kinds())) {
		seeds = append(seeds, seed)
	}
	var caught *SeedResult
	rep := Sweep(SweepOptions{Seeds: seeds, TempDir: t.TempDir, Logf: t.Logf})
	for i := range rep.Failures {
		caught = &rep.Failures[i]
		break
	}
	if caught == nil {
		t.Fatalf("the sweep missed the reintroduced zombie-upsert bug across %d latedone seeds", len(seeds))
	}
	t.Logf("caught at seed %d: %v", caught.Scenario.Seed, caught.Err)

	// The printed seed must replay the identical failing schedule.
	r1, err1 := RunSeed(caught.Scenario.Seed, RunOpts{Dir: t.TempDir()})
	r2, err2 := RunSeed(caught.Scenario.Seed, RunOpts{Dir: t.TempDir()})
	if err1 == nil || err2 == nil {
		t.Fatalf("caught seed %d did not fail on replay: %v / %v", caught.Scenario.Seed, err1, err2)
	}
	if r1.TraceHash != caught.TraceHash || r2.TraceHash != caught.TraceHash {
		t.Errorf("caught seed %d replays with trace %016x / %016x, sweep saw %016x — not the same schedule",
			caught.Scenario.Seed, r1.TraceHash, r2.TraceHash, caught.TraceHash)
	}
	if err1.Error() != err2.Error() {
		t.Errorf("caught seed %d replays with different failures:\n  %v\n  %v", caught.Scenario.Seed, err1, err2)
	}
}

// TestSimEverythingAtOnce is the deterministic successor of core's
// TestIntegrationEverythingAtOnce chaos shape: contended locked
// read-modify-writes through a cross-SSF call chain while random crash
// points fire, under the simulator instead of wall-clock goroutines — no
// retry loops, no sleep margins, and a seed that replays any failure.
func TestSimEverythingAtOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short")
	}
	const seed = 1009
	const keys, requests = 3, 24
	s := New(Options{Seed: seed})
	store := dynamo.NewStore()
	prng := rand.New(rand.NewSource(seed))
	type req struct {
		key string
		amt int64
	}
	reqs := make([]req, requests)
	for i := range reqs {
		reqs[i] = req{key: fmt.Sprintf("k%d", prng.Intn(keys)), amt: int64(1 + prng.Intn(9))}
	}
	register := func(d *beldi.Deployment) {
		d.Function("ledger", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
			key := in.Map()["key"].Str()
			if err := e.Lock("acct", key); err != nil {
				return beldi.Null, err
			}
			v, err := e.Read("acct", key)
			if err != nil {
				return beldi.Null, err
			}
			if err := e.Write("acct", key, beldi.Int(v.Int()+in.Map()["amt"].Int())); err != nil {
				return beldi.Null, err
			}
			if err := e.Unlock("acct", key); err != nil {
				return beldi.Null, err
			}
			// The marker makes the request auditable: increment and marker
			// land atomically-exactly-once or not at all.
			if err := e.Write("acct", "mark."+in.Map()["id"].Str(), in); err != nil {
				return beldi.Null, err
			}
			return beldi.Str("ok"), nil
		}, "acct")
		d.Function("front", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
			if _, err := e.SyncInvoke("ledger", in); err != nil {
				return beldi.Null, err
			}
			return beldi.Str("ack"), nil
		})
	}
	c, err := NewCluster(s, store, ClusterConfig{
		Workers:  3,
		LeaseTTL: simLeaseTTL,
		Config:   simConfig(),
		Register: register,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range c.Workers {
		w.CW.Platform().SetFaults(&platform.CrashProb{P: 0.02, Seed: seed*7 + int64(i)})
	}
	var driveErr error
	root := s.Go(TaskOpts{Name: "driver"}, func() {
		driveErr = func() error {
			c.StartPumps()
			clients := make([]*Task, requests)
			for i := 0; i < requests; i++ {
				w, i := c.Workers[i%len(c.Workers)], i
				clients[i] = s.Go(TaskOpts{Name: fmt.Sprintf("client%d", i)}, func() {
					// Client errors are fine: a crashed instance's intent is
					// the collector's to finish, and the audit below counts
					// whatever landed.
					w.CW.Invoke("front", beldi.Map(map[string]beldi.Value{ //nolint:errcheck
						"key": beldi.Str(reqs[i].key),
						"amt": beldi.Int(reqs[i].amt),
						"id":  beldi.Str(fmt.Sprintf("int-%03d", i)),
					}))
				})
				s.Sleep(2 * time.Millisecond)
			}
			s.Await(clients...)
			if err := c.Quiesce([]string{"front", "ledger"}, 30*time.Second); err != nil {
				return err
			}
			rt := c.Live(0).CW.Deployment().Runtime("ledger")
			expected := make(map[string]int64, keys)
			landed := 0
			for i, r := range reqs {
				m, err := beldi.PeekState(rt, "acct", fmt.Sprintf("mark.int-%03d", i))
				if err != nil {
					return err
				}
				if !m.IsNull() {
					expected[r.key] += r.amt
					landed++
				}
			}
			if landed < requests/2 {
				return fmt.Errorf("only %d/%d requests landed; the load barely ran", landed, requests)
			}
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("k%d", k)
				got, err := beldi.PeekState(rt, "acct", key)
				if err != nil {
					return err
				}
				if got.Int() != expected[key] {
					return fmt.Errorf("%s = %d, want %d (per-marker sum): increments not exactly-once",
						key, got.Int(), expected[key])
				}
			}
			return c.SettleAndCheck(12)
		}()
	})
	runErr := s.Run(root)
	s.Shutdown()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if driveErr != nil {
		t.Fatal(driveErr)
	}
}
