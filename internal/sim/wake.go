package sim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/storage"
)

// Commit-stream wakeups under simulation: when WakeFaults are armed, every
// sim.Backend wrapper of the run becomes a storage.Watcher, so the push
// consumers above the seam (promise awaits, queue pollers) take their
// subscription path inside the deterministic scheduler — with the
// notification channel itself under seeded attack. A wakeup is only ever a
// hint, so the protocol must tolerate every perturbation a real
// notification fabric can produce: drops (the subscriber falls back to its
// poll-cadence timeout), delays (the wakeup arrives as an in-flight packet
// long after its commit), and duplicates (a re-sent hint wakes an extra
// re-read). None of these may cost more than latency; exactly-once audits
// must hold unchanged.
//
// The simulator's Subscription never blocks on Go channel operations while
// holding the scheduler baton: Wait is reimplemented as a virtual-time
// sleep loop (each slice a scheduling decision), delivery is a non-blocking
// buffered send performed on the committing task (or on a detached delay
// task, like StoreFaults.LateDone's in-flight write), and every fault
// decision is Noted into the trace hash so a seed replays bit-identically.

// WakeFaults is the seeded fault schedule for commit-stream notifications,
// shared — like the owning StoreFaults — by every Backend wrapper of one
// simulation: subscriptions registered through one worker's view are woken
// by commits from every worker, which is what makes cross-worker push
// (caller awaits, callee posts) work at all.
type WakeFaults struct {
	// DropProb is the per-subscriber probability a wakeup is dropped; the
	// subscriber's Wait times out at its poll cadence instead.
	DropProb float64
	// DupProb is the per-subscriber probability a wakeup is delivered
	// twice.
	DupProb float64
	// DelayProb is the per-subscriber probability a wakeup is detached and
	// delivered after a virtual delay; keep MaxDelay under the protocol's T.
	DelayProb float64
	// MaxDelay bounds each injected delivery delay.
	MaxDelay time.Duration

	// All fields below are guarded by mu. The scheduler's baton already
	// single-files accesses; the lock keeps the invariant local.
	mu   sync.Mutex
	seq  map[string]uint64
	subs map[string][]*wakeSub
}

// subscribe registers a subscription; registration is complete on return,
// matching the Watcher contract (no commit between Watch returning and the
// first event is missed).
func (w *WakeFaults) subscribe(s *Scheduler, table string, hash storage.Value) *wakeSub {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.subs == nil {
		w.subs = make(map[string][]*wakeSub)
		w.seq = make(map[string]uint64)
	}
	sub := &wakeSub{
		f:     w,
		s:     s,
		table: table,
		hash:  hash,
		wide:  hash.IsNull(),
		ch:    make(chan storage.CommitEvent, storage.DefaultWatchBuffer),
	}
	w.subs[table] = append(w.subs[table], sub)
	return sub
}

// active reports whether table has subscribers — the commit path's fast
// path, mirroring dynamo.WatchHub.Active.
func (w *WakeFaults) active(table string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.subs[table]) > 0
}

// notify publishes one committed write, rolling each subscriber's fault
// dice on the committing task (so the draws are part of the schedule).
func (w *WakeFaults) notify(s *Scheduler, table string, hash storage.Value) {
	w.mu.Lock()
	list := w.subs[table]
	if len(list) == 0 {
		w.mu.Unlock()
		return
	}
	list = append([]*wakeSub(nil), list...)
	w.seq[table]++
	ev := storage.CommitEvent{Table: table, Hash: hash, Seq: w.seq[table]}
	w.mu.Unlock()
	for _, sub := range list {
		if !sub.wide && !sub.hash.Equal(hash) {
			continue
		}
		switch {
		case w.DropProb > 0 && s.rng.Float64() < w.DropProb:
			s.Note("wake drop " + table)
		case w.DupProb > 0 && s.rng.Float64() < w.DupProb:
			s.Note("wake dup " + table)
			sub.deliver(ev)
			sub.deliver(ev)
		case w.DelayProb > 0 && w.MaxDelay > 0 && s.rng.Float64() < w.DelayProb:
			d := time.Duration(s.rng.Int63n(int64(w.MaxDelay))) + time.Microsecond
			s.Note(fmt.Sprintf("wake delay %s %s", table, d))
			// In flight, deliberately NOT proc-tagged: killing the
			// committing worker does not recall a packet already sent.
			sub := sub
			s.Go(TaskOpts{Name: "wake." + table}, func() {
				s.Sleep(d)
				sub.deliver(ev)
			})
		default:
			sub.deliver(ev)
		}
	}
}

// wakeSub is the simulator's storage.Subscription.
type wakeSub struct {
	f      *WakeFaults
	s      *Scheduler
	table  string
	hash   storage.Value
	wide   bool
	ch     chan storage.CommitEvent
	closed bool // guarded by f.mu
}

// deliver enqueues one wakeup; a full buffer coalesces (an undelivered
// event already guarantees a future wakeup), a closed subscription drops.
func (sub *wakeSub) deliver(ev storage.CommitEvent) {
	sub.f.mu.Lock()
	defer sub.f.mu.Unlock()
	if sub.closed {
		return
	}
	select {
	case sub.ch <- ev:
	default:
	}
}

// Events returns the delivery channel; closed by Close. Simulation tasks
// must not block on it directly (that would stall the baton) — sim-side
// consumers use Wait, which yields through the scheduler.
func (sub *wakeSub) Events() <-chan storage.CommitEvent { return sub.ch }

// Wait implements Subscription.Wait over virtual time: pending events are
// consumed without blocking; otherwise the task sleeps in bounded slices
// (each a scheduling decision) until an event lands, d elapses, or cancel
// fires. A closed subscription waits out the full duration — degrade to the
// poll cadence, never spin — matching the shared WatchSub contract.
func (sub *wakeSub) Wait(d time.Duration, cancel <-chan struct{}) bool {
	deadline := sub.s.Now().Add(d)
	// Slice granularity: fine enough that push beats a poll interval by a
	// wide margin, coarse enough not to flood the trace.
	slice := d / 16
	if slice < 250*time.Microsecond {
		slice = 250 * time.Microsecond
	}
	for {
		select {
		case <-cancel:
			return false
		default:
		}
		select {
		case _, ok := <-sub.ch:
			if ok {
				return true
			}
			// Closed: no more events can arrive; fall through to sleeping
			// out the remaining duration.
		default:
		}
		remaining := deadline.Sub(sub.s.Now())
		if remaining <= 0 {
			return false
		}
		if remaining < slice {
			sub.s.Sleep(remaining)
		} else {
			sub.s.Sleep(slice)
		}
	}
}

// Close tears the subscription down; idempotent.
func (sub *wakeSub) Close() {
	f := sub.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	list := f.subs[sub.table]
	for i, s2 := range list {
		if s2 == sub {
			f.subs[sub.table] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	close(sub.ch)
}

var _ storage.Subscription = (*wakeSub)(nil)

// Watch makes the wrapper a storage.Watcher when wake faults are armed;
// otherwise it reports no push support and the capability probe in
// storage.Watch degrades every consumer to its poll path (the pre-push
// behavior every other kind still runs under).
func (b *Backend) Watch(table string, hash storage.Value) (storage.Subscription, error) {
	f := b.faults
	if f == nil || f.Wake == nil {
		return nil, fmt.Errorf("sim: wake faults not armed; no push support")
	}
	if _, err := b.inner.TableSchema(table); err != nil {
		return nil, err
	}
	b.s.Note("watch " + table + " @" + b.proc)
	return f.Wake.subscribe(b.s, table, hash), nil
}

var _ storage.Watcher = (*Backend)(nil)

// wake publishes a committed write to the armed wake schedule; a free no-op
// for every other kind. Call only after inner reported success.
func (b *Backend) wake(table string, hash storage.Value) {
	f := b.faults
	if f == nil || f.Wake == nil || !f.Wake.active(table) {
		return
	}
	f.Wake.notify(b.s, table, hash)
}

// wakeForItem resolves a put item's hash-key value and publishes it.
func (b *Backend) wakeForItem(table string, item storage.Item) {
	f := b.faults
	if f == nil || f.Wake == nil || !f.Wake.active(table) {
		return
	}
	sch, err := b.inner.TableSchema(table)
	if err != nil {
		return
	}
	f.Wake.notify(b.s, table, item[sch.HashKey])
}
