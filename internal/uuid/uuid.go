// Package uuid generates RFC 4122 version-4 UUIDs.
//
// Beldi assigns a fresh UUID to every SSF instance: the serverless platform
// assigns one to the first SSF of a workflow (the "request id" on AWS), and
// each caller generates one for each callee (§3.3 of the paper). The package
// also provides a deterministic source so tests can replay id sequences.
package uuid

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
)

// UUID is a 128-bit RFC 4122 identifier.
type UUID [16]byte

// New returns a fresh random (version 4, variant 1) UUID. It panics only if
// the operating system's entropy source fails, which is unrecoverable.
func New() UUID {
	var u UUID
	if _, err := rand.Read(u[:]); err != nil {
		panic(fmt.Sprintf("uuid: entropy source failed: %v", err))
	}
	u[6] = (u[6] & 0x0f) | 0x40 // version 4
	u[8] = (u[8] & 0x3f) | 0x80 // variant 1
	return u
}

// NewString returns New formatted with String.
func NewString() string { return New().String() }

// String formats the UUID in the canonical 8-4-4-4-12 hex form.
func (u UUID) String() string {
	var buf [36]byte
	hex.Encode(buf[0:8], u[0:4])
	buf[8] = '-'
	hex.Encode(buf[9:13], u[4:6])
	buf[13] = '-'
	hex.Encode(buf[14:18], u[6:8])
	buf[18] = '-'
	hex.Encode(buf[19:23], u[8:10])
	buf[23] = '-'
	hex.Encode(buf[24:36], u[10:16])
	return string(buf[:])
}

// Parse decodes a canonical UUID string produced by String.
func Parse(s string) (UUID, error) {
	var u UUID
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return u, fmt.Errorf("uuid: malformed %q", s)
	}
	hexed := s[0:8] + s[9:13] + s[14:18] + s[19:23] + s[24:36]
	raw, err := hex.DecodeString(hexed)
	if err != nil {
		return u, fmt.Errorf("uuid: malformed %q: %v", s, err)
	}
	copy(u[:], raw)
	return u, nil
}

// Source produces UUIDs. The default source is the crypto/rand-backed New;
// tests substitute a Seq to obtain reproducible id streams.
type Source interface {
	NewString() string
}

// Random is the production Source backed by New.
type Random struct{}

// NewString implements Source.
func (Random) NewString() string { return NewString() }

// Seq is a deterministic Source that yields "prefix-000000000001",
// "prefix-000000000002", ... Safe for concurrent use.
type Seq struct {
	Prefix string

	mu sync.Mutex
	n  uint64
}

// NewString implements Source.
func (s *Seq) NewString() string {
	s.mu.Lock()
	s.n++
	n := s.n
	s.mu.Unlock()
	return fmt.Sprintf("%s-%012d", s.Prefix, n)
}
