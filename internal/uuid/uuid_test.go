package uuid

import (
	"strings"
	"sync"
	"testing"
)

func TestNewFormat(t *testing.T) {
	u := New()
	s := u.String()
	if len(s) != 36 {
		t.Fatalf("len = %d", len(s))
	}
	if s[14] != '4' {
		t.Errorf("version nibble = %c, want 4", s[14])
	}
	switch s[19] {
	case '8', '9', 'a', 'b':
	default:
		t.Errorf("variant nibble = %c", s[19])
	}
}

func TestParseRoundTrip(t *testing.T) {
	u := New()
	got, err := Parse(u.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Errorf("round trip: %v != %v", got, u)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"", "not-a-uuid",
		"aaaaaaaa-bbbb-cccc-dddd",                 // short
		"aaaaaaaaabbbbaccccaddddaeeeeeeeeeeee",    // no dashes
		"gggggggg-bbbb-cccc-dddd-eeeeeeeeeeee",    // non-hex
		"aaaaaaaa-bbbb-cccc-dddd-eeeeeeeeeeee-ff", // long
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		s := NewString()
		if seen[s] {
			t.Fatalf("duplicate uuid %s", s)
		}
		seen[s] = true
	}
}

func TestSeqDeterministicAndConcurrent(t *testing.T) {
	s := &Seq{Prefix: "t"}
	if got := s.NewString(); got != "t-000000000001" {
		t.Errorf("first = %q", got)
	}
	var wg sync.WaitGroup
	out := make(chan string, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out <- s.NewString()
		}()
	}
	wg.Wait()
	close(out)
	seen := make(map[string]bool)
	for id := range out {
		if seen[id] {
			t.Fatalf("duplicate %s", id)
		}
		if !strings.HasPrefix(id, "t-") {
			t.Fatalf("bad prefix %s", id)
		}
		seen[id] = true
	}
}
