// Package counterdemo is the shared application for the multi-process
// cluster demo and the SIGKILL recovery tests: an "ingest" entry SSF that
// fans each request out through durable AsyncInvoke to a "counter" SSF
// whose only effect is incrementing the request's own key — an effect that
// makes lost executions (a counter at 0) and duplicated executions (a
// counter at 2) directly countable after a crash. Every process of a pool
// registers this same app; the orchestrator enqueues through ingest, worker
// processes drain the counter queue, and the audit asserts every counter is
// exactly 1.
package counterdemo

import (
	"fmt"

	"repro/beldi"
)

// Function and table names.
const (
	FnIngest   = "ingest"
	FnCounter  = "counter"
	StateTable = "state"
)

// Register installs the demo app on a deployment. Every member of a pool
// (workers and orchestrator alike) must register the same set.
func Register(d *beldi.Deployment) {
	d.Function(FnIngest, func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		// Durable handoff: intent registration paired with a queued message,
		// so the increment survives any single process dying after this
		// call returns.
		return beldi.Null, e.AsyncInvoke(FnCounter, in)
	})
	d.Function(FnCounter, func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		key := in.Map()["key"].Str()
		v, err := e.Read(StateTable, key)
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(v.Int() + 1)
		if err := e.Write(StateTable, key, next); err != nil {
			return beldi.Null, err
		}
		return next, nil
	}, StateTable)
}

// Key formats the state key for request i.
func Key(i int) string { return fmt.Sprintf("k%02d", i) }

// Request builds the ingest/counter input for request i.
func Request(i int) beldi.Value {
	return beldi.Map(map[string]beldi.Value{"key": beldi.Str(Key(i))})
}
