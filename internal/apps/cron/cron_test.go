package cron

import (
	"fmt"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

// rig is one deployment with durable async enabled: timers, invocation
// queues, mappers. The visibility timeout is short so a crashed delivery is
// redelivered within a few drive rounds.
type rig struct {
	d  *beldi.Deployment
	da *beldi.DurableAsync
}

func newRig(t *testing.T, faults platform.FaultPlan) *rig {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{
		ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}, Faults: faults,
	})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Millisecond},
	})
	Register(d)
	da := d.EnableDurableAsync(beldi.DurableAsyncOptions{
		VisibilityTimeout: 2 * time.Millisecond,
		MaxReceives:       -1, // sweeps redeliver many times; never dead-letter
	})
	return &rig{d: d, da: da}
}

// drive advances the whole machine one round: fire due timers, deliver
// queued invocations, restart crashed intents.
func (r *rig) drive(t *testing.T) {
	t.Helper()
	if _, err := r.da.Timers().FireDue(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.da.PollAll(); err != nil {
		t.Fatal(err)
	}
	if err := r.d.RunAllCollectors(); err != nil {
		t.Fatal(err)
	}
}

// converge drives until ingest and index both report want occurrences, then
// verifies the counts are stable under further driving (no late duplicate).
func (r *rig) converge(t *testing.T, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		time.Sleep(2 * time.Millisecond) // exceed ICMinAge and the visibility timeout
		r.drive(t)
		total, err := Total(r.d)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := Indexed(r.d)
		if err != nil {
			t.Fatal(err)
		}
		if total == want && indexed == want {
			break
		}
		if total > want || indexed > want {
			t.Fatalf("overshoot: total=%d indexed=%d, want %d — a duplicate slipped through", total, indexed, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: total=%d indexed=%d, want %d", total, indexed, want)
		}
	}
	// Stability: more fires, deliveries and collection must change nothing.
	for i := 0; i < 3; i++ {
		time.Sleep(2 * time.Millisecond)
		r.drive(t)
	}
	if total, _ := Total(r.d); total != want {
		t.Fatalf("total drifted to %d after extra driving, want %d", total, want)
	}
	if indexed, _ := Indexed(r.d); indexed != want {
		t.Fatalf("indexed drifted to %d after extra driving, want %d", indexed, want)
	}
	if err := r.d.FsckAll(); err != nil {
		t.Error(err)
	}
}

func TestCronOneShotExactlyOnce(t *testing.T) {
	r := newRig(t, nil)
	if err := r.da.ScheduleInvoke("tick", FnIngest, beldi.Str("payload"), 0, 0); err != nil {
		t.Fatal(err)
	}
	r.converge(t, 1)
}

func TestCronPeriodicOccurrences(t *testing.T) {
	r := newRig(t, nil)
	// Period 1ms on the real clock: converge waits 2ms between rounds, so
	// occurrences accrue as the drive loop runs; stop the timer once three
	// distinct occurrences have been ingested, then assert stability.
	if err := r.da.ScheduleInvoke("tick", FnIngest, beldi.Str("payload"), 0, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		time.Sleep(2 * time.Millisecond)
		r.drive(t)
		total, err := Total(r.d)
		if err != nil {
			t.Fatal(err)
		}
		if total >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("periodic timer produced only %d occurrences", total)
		}
	}
	if err := r.da.Timers().Cancel("tick"); err != nil {
		t.Fatal(err)
	}
	// Every occurrence indexed exactly once: drive until index catches up.
	deadline = time.Now().Add(10 * time.Second)
	for {
		time.Sleep(2 * time.Millisecond)
		r.drive(t)
		total, _ := Total(r.d)
		indexed, err := Indexed(r.d)
		if err != nil {
			t.Fatal(err)
		}
		if indexed == total {
			break
		}
		if indexed > total {
			t.Fatalf("indexed %d > ingested %d: CDC duplicated an event", indexed, total)
		}
		if time.Now().After(deadline) {
			t.Fatalf("index never caught up: indexed=%d total=%d", indexed, total)
		}
	}
	if err := r.d.FsckAll(); err != nil {
		t.Error(err)
	}
}

// TestCronFirerRestartDoesNotDuplicate simulates the pump dying and a fresh
// one taking over mid-stream: FireDue from a second service over the same
// table must not re-fire an occurrence the first already committed (the
// fire transaction is the only commit point — there is no half-fired state
// to recover).
func TestCronFirerRestartDoesNotDuplicate(t *testing.T) {
	r := newRig(t, nil)
	if err := r.da.ScheduleInvoke("tick", FnIngest, beldi.Str("x"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if n, err := r.da.Timers().FireDue(); err != nil || n != 1 {
		t.Fatalf("first firer: (%d, %v), want (1, nil)", n, err)
	}
	// "Restart": a second FireDue pass (same durable state, fresh pass)
	// must find nothing to do.
	if n, err := r.da.Timers().FireDue(); err != nil || n != 0 {
		t.Fatalf("restarted firer: (%d, %v), want (0, nil)", n, err)
	}
	r.converge(t, 1)
}

// TestCronCrashSweepExactlyOnce is the kill-mid-fire sweep: for every
// operation boundary of the ingest SSF and of the CDC handler, a worker is
// killed there mid-delivery; the queue redelivers, the collectors restart,
// and the final counts must equal the crash-free run — one ingested
// occurrence, one indexed change — on whatever backend the matrix selects
// (BELDI_BACKEND=wal runs this against the durable walstore).
func TestCronCrashSweepExactlyOnce(t *testing.T) {
	// Discovery: count each function's crash points in a clean run.
	counter := &platform.OpCounter{}
	probe := newRig(t, counter)
	if err := probe.da.ScheduleInvoke("tick", FnIngest, beldi.Str("x"), 0, 0); err != nil {
		t.Fatal(err)
	}
	probe.converge(t, 1)

	for _, fn := range []string{FnIngest, FnIndex} {
		max := counter.Max(fn)
		if max == 0 {
			t.Fatalf("%s hit no crash points; sweep is vacuous", fn)
		}
		for n := 1; n <= max; n++ {
			t.Run(fmt.Sprintf("%s@op%d", fn, n), func(t *testing.T) {
				plan := &platform.CrashNthOp{Function: fn, N: n}
				r := newRig(t, plan)
				if err := r.da.ScheduleInvoke("tick", FnIngest, beldi.Str("x"), 0, 0); err != nil {
					t.Fatal(err)
				}
				r.converge(t, 1)
				if !plan.Fired() {
					t.Fatal("plan never fired; sweep position unreachable")
				}
			})
		}
	}
}
