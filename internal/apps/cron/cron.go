// Package cron is the push-trigger demo app: a durable timer drives an
// "ingest" SSF (DurableAsync.ScheduleInvoke), and a table-change (CDC)
// handler — "index", subscribed to ingest's events table — maintains a
// derived count. Every edge in the chain is the at-least-once/exactly-once
// pairing under test: the timer fire is transactional (one message per
// occurrence, ever), the queue redelivers the occurrence until it is acked,
// the stamped instance id makes redeliveries collapse in the intent table,
// and the CDC fire is a logged step of the ingest instance. The crash-sweep
// test kills both SSFs at every operation boundary and asserts the counts
// come out as if nothing had crashed.
package cron

import (
	"repro/beldi"
)

// Function and table names.
const (
	FnIngest = "cron.ingest"
	FnIndex  = "cron.index"

	// EventsTable (on ingest) holds one row per timer occurrence, keyed by
	// the occurrence's instance id. StateTable (on ingest) holds the running
	// total. IndexTable (on index) holds the CDC-derived count.
	EventsTable = "events"
	StateTable  = "state"
	IndexTable  = "index"
)

// Register installs the app on a deployment: ingest records each occurrence
// and bumps the total; index counts the change events the events table
// emits. Call before EnableDurableAsync.
func Register(d *beldi.Deployment) {
	d.Function(FnIngest, func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		// One row per occurrence: the instance id IS the occurrence id
		// (stamped by the timer fire), so a redelivered occurrence replays
		// this write instead of adding a row.
		if err := e.Write(EventsTable, e.InstanceID(), in); err != nil {
			return beldi.Null, err
		}
		// The classic exactly-once victim: a non-atomic read-increment-write.
		v, err := e.Read(StateTable, "total")
		if err != nil {
			return beldi.Null, err
		}
		if err := e.Write(StateTable, "total", beldi.Int(v.Int()+1)); err != nil {
			return beldi.Null, err
		}
		return beldi.Str("ingested"), nil
	}, EventsTable, StateTable)

	d.Function(FnIndex, func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		key, _ := in.MapGet(beldi.ChangeEvKey)
		if key.Str() == "" {
			return beldi.Null, nil // not a change event; ignore
		}
		n, err := e.Read(IndexTable, "count")
		if err != nil {
			return beldi.Null, err
		}
		if err := e.Write(IndexTable, "count", beldi.Int(n.Int()+1)); err != nil {
			return beldi.Null, err
		}
		return beldi.Null, nil
	}, IndexTable)

	if err := d.OnTableChange(FnIngest, EventsTable, FnIndex); err != nil {
		panic(err)
	}
}

// Total reads the committed occurrence total from ingest's state.
func Total(d *beldi.Deployment) (int64, error) {
	v, err := beldi.PeekState(d.Runtime(FnIngest), StateTable, "total")
	if err != nil {
		return 0, err
	}
	return v.Int(), nil
}

// Indexed reads the committed CDC-derived count from index's state.
func Indexed(d *beldi.Deployment) (int64, error) {
	v, err := beldi.PeekState(d.Runtime(FnIndex), IndexTable, "count")
	if err != nil {
		return 0, err
	}
	return v.Int(), nil
}
