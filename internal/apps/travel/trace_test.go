package travel

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
	"repro/internal/telemetry"
	"repro/internal/uuid"
)

// TestTraceContinuityAcrossCrash is the telemetry layer's core promise: a
// reservation driver killed mid-workflow and finished by the intent
// collector must read as ONE trace — the crashed attempt, the restarted
// attempt, and every replayed step all under the same root — with no orphan
// spans. Runs against both backends via BELDI_BACKEND.
func TestTraceContinuityAcrossCrash(t *testing.T) {
	store := storagetest.Open(t)
	tel := beldi.NewTelemetry()
	plan := &platform.CrashOnce{Function: FnFrontend, Label: "body:done"}
	plat := platform.New(platform.Options{ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}, Faults: plan})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: beldi.ModeBeldi,
		Config:    beldi.Config{RowCap: 8, T: 50 * time.Millisecond, LockRetryMax: 300},
		Telemetry: tel,
	})
	app := Build(d)
	app.Capacity = 50
	if err := app.Seed(); err != nil {
		t.Fatal(err)
	}
	// Seeding runs workflows of its own; start the trace window clean so
	// the buffer holds exactly the reservation under test.
	tel.Tracer.Reset()

	_, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op":     beldi.Str("reserve"),
		"hotel":  beldi.Str(hotelID(3)),
		"flight": beldi.Str(flightID(4)),
	}))
	if err == nil {
		t.Fatal("frontend survived the injected crash")
	}
	if !errors.Is(err, platform.ErrCrashed) {
		t.Fatalf("unexpected error: %v", err)
	}
	if !plan.Fired() {
		t.Fatal("fault never fired")
	}
	plat.Drain()

	// The collector finishes the workflow; wait for a clean root attempt.
	recovered := func() bool {
		for _, s := range tel.Tracer.Spans() {
			if s.Kind == telemetry.KindExec && s.Fn == FnFrontend && s.ParentIntent == "" && s.Err == "" {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(10 * time.Second)
	for !recovered() {
		if time.Now().After(deadline) {
			t.Fatal("collector never finished the crashed workflow")
		}
		time.Sleep(2 * time.Millisecond)
		if err := d.RunAllCollectors(); err != nil {
			t.Fatal(err)
		}
		plat.Drain()
	}
	d.Stop()

	spans := tel.Tracer.Spans()
	roots := telemetry.Roots(spans)
	if len(roots) != 1 {
		t.Fatalf("roots = %v, want exactly one — the pre-crash and recovered executions split", roots)
	}
	tr := telemetry.Assemble(spans, roots[0])
	if len(tr.Spans) != len(spans) {
		t.Fatalf("trace covers %d of %d spans — orphans outside the root's causal closure", len(tr.Spans), len(spans))
	}

	var crashed, clean, restartAttempts, replaySteps int
	for _, s := range tr.Spans {
		if s.Kind == telemetry.KindExec && s.Intent == tr.Root {
			switch {
			case s.Err == "crashed":
				crashed++
			case s.Err == "":
				clean++
			}
			if s.Replay {
				restartAttempts++
			}
		}
		if s.Kind != telemetry.KindExec && s.Replay {
			replaySteps++
		}
	}
	if crashed == 0 {
		t.Error("pre-crash attempt left no crashed exec span")
	}
	if clean == 0 {
		t.Error("recovered attempt left no clean exec span")
	}
	if restartAttempts == 0 {
		t.Error("no exec attempt is marked as a collector restart")
	}
	if replaySteps == 0 {
		t.Error("recovered execution marked no step as replayed — replays are indistinguishable from fresh work")
	}

	var b strings.Builder
	tr.Render(&b)
	out := b.String()
	if strings.Contains(out, "orphan intent") {
		t.Errorf("rendered trace has orphans:\n%s", out)
	}
	if !strings.Contains(out, "(restart)") || !strings.Contains(out, "(replay)") {
		t.Errorf("rendered trace does not distinguish restart/replay:\n%s", out)
	}
}
