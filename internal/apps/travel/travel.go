// Package travel is the paper's travel-reservation case study (§7.1,
// Appendix B Figure 22): a serverless port of DeathStarBench's hotel
// reservation application, extended — as the paper extends it — with flight
// reservations and a cross-SSF transaction that books a hotel room and a
// flight seat atomically.
//
// The workflow (10 SSFs):
//
//	client → frontend → search → {geo, rate}
//	                  → recommend
//	                  → user → profile
//	                  → reserve → txn{reserve-hotel, reserve-flight}
//
// Each SSF owns its tables. In Beldi mode the reservation runs with opacity;
// in baseline mode it exhibits exactly the inconsistency (overselling /
// partial bookings) the paper's §7.2 calls out.
package travel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/beldi"
)

// Inventory sizes (§7.4: "randomly pick a hotel and a flight out of 100
// choices each following a normal distribution").
const (
	NumHotels  = 100
	NumFlights = 100
	NumUsers   = 500
	// InitialCapacity is each hotel's room count and flight's seat count.
	InitialCapacity = 1 << 30 // effectively unlimited for latency runs
)

// Function names.
const (
	FnFrontend      = "travel-frontend"
	FnSearch        = "travel-search"
	FnGeo           = "travel-geo"
	FnRate          = "travel-rate"
	FnRecommend     = "travel-recommend"
	FnUser          = "travel-user"
	FnProfile       = "travel-profile"
	FnReserve       = "travel-reserve"
	FnReserveHotel  = "travel-reserve-hotel"
	FnReserveFlight = "travel-reserve-flight"
)

// App wires the workflow into a deployment.
type App struct {
	d *beldi.Deployment
	// Capacity seeds hotels/flights; tests set small values to observe
	// sell-outs.
	Capacity int64
	// DisableTxn books the hotel and flight outside any transaction — the
	// §7.4 configuration "that uses Beldi for fault-tolerance but without
	// transactions" (16% lower median, 20% lower p99 at saturation in the
	// paper, at the cost of consistency).
	DisableTxn bool
}

// Build registers all ten SSFs on the deployment.
func Build(d *beldi.Deployment) *App {
	a := &App{d: d, Capacity: InitialCapacity}
	d.Function(FnGeo, a.geo, "geo")
	d.Function(FnRate, a.rate, "rates")
	d.Function(FnSearch, a.search)
	d.Function(FnRecommend, a.recommend, "recs")
	d.Function(FnProfile, a.profile, "profiles")
	d.Function(FnUser, a.user, "users")
	d.Function(FnReserveHotel, a.reserveHotel, "inventory")
	d.Function(FnReserveFlight, a.reserveFlight, "inventory")
	d.Function(FnReserve, a.reserve)
	d.Function(FnFrontend, a.frontend)
	return a
}

// Seed populates every SSF's tables through a one-shot seeding workflow so
// the data goes through the same write path the apps use.
func (a *App) Seed() error {
	for _, fn := range []string{FnGeo, FnRate, FnRecommend, FnProfile, FnUser, FnReserveHotel, FnReserveFlight} {
		if _, err := a.d.Invoke(fn, beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("seed"),
		})); err != nil {
			return fmt.Errorf("travel: seeding %s: %w", fn, err)
		}
	}
	return nil
}

func hotelID(i int) string  { return fmt.Sprintf("hotel-%03d", i) }
func flightID(i int) string { return fmt.Sprintf("flight-%03d", i) }
func userID(i int) string   { return fmt.Sprintf("user-%03d", i) }

// --- leaf SSFs -----------------------------------------------------------

// geo returns hotels near a location. State: per-hotel coordinates.
func (a *App) geo(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if op, _ := m["op"]; op.Str() == "seed" {
		for i := 0; i < NumHotels; i++ {
			pos := beldi.Map(map[string]beldi.Value{
				"lat": beldi.Num(float64(i%10) * 0.3),
				"lon": beldi.Num(float64(i/10) * 0.3),
			})
			if err := e.Write("geo", hotelID(i), pos); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	lat, lon := m["lat"].Num(), m["lon"].Num()
	// Distance check against a deterministic candidate subset (a real geo
	// index would shard; the read pattern is what matters here).
	var nearby []beldi.Value
	for i := 0; i < 8; i++ {
		id := hotelID((int(lat*10) + i*13) % NumHotels)
		pos, err := e.Read("geo", id)
		if err != nil {
			return beldi.Null, err
		}
		if pos.IsNull() {
			continue
		}
		dlat := pos.Map()["lat"].Num() - lat
		dlon := pos.Map()["lon"].Num() - lon
		dist := math.Sqrt(dlat*dlat + dlon*dlon)
		nearby = append(nearby, beldi.Map(map[string]beldi.Value{
			"hotel": beldi.Str(id), "distance": beldi.Num(dist),
		}))
	}
	return beldi.List(nearby...), nil
}

// rate returns room rates for the requested hotels.
func (a *App) rate(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if op, _ := m["op"]; op.Str() == "seed" {
		for i := 0; i < NumHotels; i++ {
			rate := beldi.Map(map[string]beldi.Value{
				"price": beldi.Num(80 + float64((i*37)%200)),
				"stars": beldi.Num(float64(1 + i%5)),
			})
			if err := e.Write("rates", hotelID(i), rate); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	var out []beldi.Value
	for _, hv := range m["hotels"].List() {
		id := hv.Map()["hotel"].Str()
		r, err := e.Read("rates", id)
		if err != nil {
			return beldi.Null, err
		}
		entry := map[string]beldi.Value{"hotel": beldi.Str(id)}
		for k, v := range hv.Map() {
			entry[k] = v
		}
		if !r.IsNull() {
			entry["price"] = r.Map()["price"]
			entry["stars"] = r.Map()["stars"]
		}
		out = append(out, beldi.Map(entry))
	}
	return beldi.List(out...), nil
}

// search fans out to geo then rate and ranks results.
func (a *App) search(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	nearby, err := e.SyncInvoke(FnGeo, in)
	if err != nil {
		return beldi.Null, err
	}
	rated, err := e.SyncInvoke(FnRate, beldi.Map(map[string]beldi.Value{
		"hotels": nearby,
	}))
	if err != nil {
		return beldi.Null, err
	}
	return rated, nil
}

// recommend returns hotels ranked by the requested criterion
// (price/distance/rate), reading a per-criterion precomputed list.
func (a *App) recommend(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if op, _ := m["op"]; op.Str() == "seed" {
		for _, crit := range []string{"price", "distance", "rate"} {
			var ids []beldi.Value
			for i := 0; i < 5; i++ {
				ids = append(ids, beldi.Str(hotelID((i*29+len(crit))%NumHotels)))
			}
			if err := e.Write("recs", crit, beldi.List(ids...)); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	crit := m["require"].Str()
	if crit == "" {
		crit = "price"
	}
	return e.Read("recs", crit)
}

// profile returns hotel profiles.
func (a *App) profile(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if op, _ := m["op"]; op.Str() == "seed" {
		for i := 0; i < NumHotels; i++ {
			p := beldi.Map(map[string]beldi.Value{
				"name":  beldi.Str(fmt.Sprintf("Hotel %03d", i)),
				"phone": beldi.Str(fmt.Sprintf("+1-555-%04d", i)),
			})
			if err := e.Write("profiles", hotelID(i), p); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	return e.Read("profiles", m["hotel"].Str())
}

// user validates credentials.
func (a *App) user(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if op, _ := m["op"]; op.Str() == "seed" {
		for i := 0; i < NumUsers; i++ {
			cred := beldi.Map(map[string]beldi.Value{
				"password": beldi.Str(fmt.Sprintf("pw-%03d", i)),
			})
			if err := e.Write("users", userID(i), cred); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	cred, err := e.Read("users", m["user"].Str())
	if err != nil {
		return beldi.Null, err
	}
	ok := !cred.IsNull() && cred.Map()["password"].Str() == m["password"].Str()
	if ok {
		// Fetch the hotel profile as the post-login landing data.
		if _, err := e.SyncInvoke(FnProfile, beldi.Map(map[string]beldi.Value{
			"hotel": beldi.Str(hotelID(0)),
		})); err != nil {
			return beldi.Null, err
		}
	}
	return beldi.BoolVal(ok), nil
}

// --- reservation (the transactional subgraph) ----------------------------

// reserveInventory holds the common reserve logic for hotels and flights:
// check capacity, decrement, and append the booking — three operations that
// must be atomic with the *other* SSF's reservation.
func (a *App) reserveInventory(e *beldi.Env, table string, in beldi.Value, seedID func(int) string) (beldi.Value, error) {
	m := in.Map()
	if op, _ := m["op"]; op.Str() == "seed" {
		for i := 0; i < NumHotels; i++ {
			if err := e.Write("inventory", seedID(i), beldi.Int(a.Capacity)); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	if op, _ := m["op"]; op.Str() == "audit" {
		// Sum remaining capacity — the §7.2 consistency probe. Read through
		// the SSF's own API so sovereignty holds even for audits.
		var total int64
		for i := 0; i < NumHotels; i++ {
			v, err := e.Read("inventory", seedID(i))
			if err != nil {
				return beldi.Null, err
			}
			total += v.Int()
		}
		return beldi.Int(total), nil
	}
	id := m[table].Str()
	cap, err := e.Read("inventory", id)
	if err != nil {
		return beldi.Null, err
	}
	if cap.Int() < 1 {
		return beldi.Null, beldi.ErrTxnAborted // sold out: abort the booking
	}
	if err := e.Write("inventory", id, beldi.Int(cap.Int()-1)); err != nil {
		return beldi.Null, err
	}
	return beldi.Str("reserved:" + id), nil
}

func (a *App) reserveHotel(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	return a.reserveInventory(e, "hotel", in, hotelID)
}

func (a *App) reserveFlight(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	return a.reserveInventory(e, "flight", in, flightID)
}

// reserve books the hotel and flight inside one cross-SSF transaction —
// the paper's marquee use of workflow transactions (§6.2, Figure 22). With
// DisableTxn the same invocations run bare (fault-tolerant but not
// isolated), the §7.4 ablation configuration.
func (a *App) reserve(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	book := func() error {
		if _, err := e.SyncInvoke(FnReserveHotel, in); err != nil {
			return err
		}
		_, err := e.SyncInvoke(FnReserveFlight, in)
		return err
	}
	var err error
	if a.DisableTxn {
		err = book()
	} else {
		err = e.Transaction(book)
	}
	if errors.Is(err, beldi.ErrTxnAborted) {
		return beldi.Str("aborted"), nil
	}
	if err != nil {
		return beldi.Null, err
	}
	return beldi.Str("booked"), nil
}

// frontend routes client requests into the workflow.
func (a *App) frontend(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	switch in.Map()["op"].Str() {
	case "search":
		return e.SyncInvoke(FnSearch, in)
	case "recommend":
		return e.SyncInvoke(FnRecommend, in)
	case "login":
		return e.SyncInvoke(FnUser, in)
	case "reserve":
		return e.SyncInvoke(FnReserve, in)
	default:
		return beldi.Null, fmt.Errorf("travel: unknown op %q", in.Map()["op"].Str())
	}
}

// --- workload ------------------------------------------------------------

// Entry returns the workflow's entry function.
func (a *App) Entry() string { return FnFrontend }

// Request draws the next client request from the DeathStarBench-derived mix
// (§7.4): mostly searches and recommendations, some logins, and occasional
// reservations whose hotel/flight choices follow a clipped normal
// distribution over the 100 options.
func (a *App) Request(r *rand.Rand) beldi.Value {
	p := r.Float64()
	switch {
	case p < 0.60:
		return beldi.Map(map[string]beldi.Value{
			"op":  beldi.Str("search"),
			"lat": beldi.Num(r.Float64() * 3),
			"lon": beldi.Num(r.Float64() * 3),
		})
	case p < 0.78:
		criteria := []string{"price", "distance", "rate"}
		return beldi.Map(map[string]beldi.Value{
			"op":      beldi.Str("recommend"),
			"require": beldi.Str(criteria[r.Intn(len(criteria))]),
		})
	case p < 0.93:
		u := r.Intn(NumUsers)
		return beldi.Map(map[string]beldi.Value{
			"op":       beldi.Str("login"),
			"user":     beldi.Str(userID(u)),
			"password": beldi.Str(fmt.Sprintf("pw-%03d", u)),
		})
	default:
		return beldi.Map(map[string]beldi.Value{
			"op":     beldi.Str("reserve"),
			"hotel":  beldi.Str(hotelID(normalChoice(r, NumHotels))),
			"flight": beldi.Str(flightID(normalChoice(r, NumFlights))),
		})
	}
}

// normalChoice picks an index from a normal distribution centred on the
// middle of [0, n), clipped to the valid range.
func normalChoice(r *rand.Rand, n int) int {
	v := int(r.NormFloat64()*float64(n)/6 + float64(n)/2)
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// AuditInventory sums the remaining capacity held by a reservation SSF
// (FnReserveHotel or FnReserveFlight) — the invariant probe for the §7.2
// consistency comparison: under Beldi, (initial - total) hotel rooms must
// equal (initial - total) flight seats exactly; under the baseline they
// drift apart.
func AuditInventory(d *beldi.Deployment, fn string) (int64, error) {
	out, err := d.Invoke(fn, beldi.Map(map[string]beldi.Value{"op": beldi.Str("audit")}))
	if err != nil {
		return 0, err
	}
	return out.Int(), nil
}
