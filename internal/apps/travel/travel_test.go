package travel

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

func newDeployment(t *testing.T, mode beldi.Mode) (*beldi.Deployment, *App) {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: mode,
		Config: beldi.Config{RowCap: 8, T: 100 * time.Millisecond, LockRetryMax: 300},
	})
	app := Build(d)
	app.Capacity = 50
	if err := app.Seed(); err != nil {
		t.Fatal(err)
	}
	return d, app
}

func TestSearchReturnsRatedHotels(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi)
	out, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("search"), "lat": beldi.Num(0.5), "lon": beldi.Num(0.5),
	}))
	if err != nil {
		t.Fatal(err)
	}
	hotels := out.List()
	if len(hotels) == 0 {
		t.Fatal("no hotels returned")
	}
	for _, h := range hotels {
		m := h.Map()
		if m["hotel"].Str() == "" || m["price"].IsNull() {
			t.Errorf("hotel entry incomplete: %v", h)
		}
	}
}

func TestRecommendPerCriterion(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi)
	for _, crit := range []string{"price", "distance", "rate"} {
		out, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("recommend"), "require": beldi.Str(crit),
		}))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.List()) != 5 {
			t.Errorf("%s: %d recommendations", crit, len(out.List()))
		}
	}
}

func TestLoginPaths(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi)
	ok, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("login"), "user": beldi.Str("user-007"), "password": beldi.Str("pw-007"),
	}))
	if err != nil || !ok.BoolVal() {
		t.Errorf("good login: %v %v", ok, err)
	}
	bad, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("login"), "user": beldi.Str("user-007"), "password": beldi.Str("wrong"),
	}))
	if err != nil || bad.BoolVal() {
		t.Errorf("bad login: %v %v", bad, err)
	}
}

func TestReserveDecrementsBothInventories(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi)
	out, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op":     beldi.Str("reserve"),
		"hotel":  beldi.Str(hotelID(3)),
		"flight": beldi.Str(flightID(4)),
	}))
	if err != nil || out.Str() != "booked" {
		t.Fatalf("reserve: %v %v", out, err)
	}
	hot, err := AuditInventory(d, FnReserveHotel)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := AuditInventory(d, FnReserveFlight)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(50*NumHotels - 1)
	if hot != want || fl != want {
		t.Errorf("inventories hotel=%d flight=%d, want %d", hot, fl, want)
	}
}

func TestReserveSoldOutAborts(t *testing.T) {
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{RowCap: 8, T: 100 * time.Millisecond, LockRetryMax: 300},
	})
	app := Build(d)
	app.Capacity = 1
	if err := app.Seed(); err != nil {
		t.Fatal(err)
	}
	req := beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("reserve"), "hotel": beldi.Str(hotelID(0)), "flight": beldi.Str(flightID(0)),
	})
	if out, err := d.Invoke(FnFrontend, req); err != nil || out.Str() != "booked" {
		t.Fatalf("first: %v %v", out, err)
	}
	out, err := d.Invoke(FnFrontend, req)
	if err != nil || out.Str() != "aborted" {
		t.Fatalf("second: %v %v", out, err)
	}
	// The abort must not have leaked a partial decrement anywhere.
	hot, _ := AuditInventory(d, FnReserveHotel)
	fl, _ := AuditInventory(d, FnReserveFlight)
	if hot != int64(NumHotels-1) || fl != int64(NumFlights-1) {
		t.Errorf("inventories hotel=%d flight=%d after abort", hot, fl)
	}
}

func TestConcurrentReservationsStayConsistentUnderBeldi(t *testing.T) {
	// The §7.2 claim, positive half: with Beldi's transactions, hotel and
	// flight bookings always move in lockstep.
	d, _ := newDeployment(t, beldi.ModeBeldi)
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(1))
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		h, fl := normalChoice(rng, NumHotels), normalChoice(rng, NumFlights)
		wg.Add(1)
		go func(h, fl int) {
			defer wg.Done()
			mu.Lock()
			req := beldi.Map(map[string]beldi.Value{
				"op": beldi.Str("reserve"), "hotel": beldi.Str(hotelID(h)), "flight": beldi.Str(flightID(fl)),
			})
			mu.Unlock()
			d.Invoke(FnFrontend, req) //nolint:errcheck // aborts acceptable
		}(h, fl)
	}
	wg.Wait()
	hot, _ := AuditInventory(d, FnReserveHotel)
	fl, _ := AuditInventory(d, FnReserveFlight)
	if hot != fl {
		t.Errorf("hotel bookings %d != flight bookings %d (consistency violated)",
			int64(50*NumHotels)-hot, int64(50*NumFlights)-fl)
	}
}

func TestWorkloadGeneratorCoversMix(t *testing.T) {
	app := &App{}
	rng := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		req := app.Request(rng)
		counts[req.Map()["op"].Str()]++
	}
	for _, op := range []string{"search", "recommend", "login", "reserve"} {
		if counts[op] == 0 {
			t.Errorf("mix never produced %s", op)
		}
	}
	if counts["search"] < counts["reserve"] {
		t.Errorf("mix shape off: %v", counts)
	}
}

func TestNormalChoiceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mid := 0
	for i := 0; i < 5000; i++ {
		v := normalChoice(rng, 100)
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		if v >= 30 && v < 70 {
			mid++
		}
	}
	// A normal centred at 50 should put most mass in the middle band.
	if mid < 3000 {
		t.Errorf("distribution not centred: %d/5000 in middle band", mid)
	}
}

func TestEndToEndRequestMixAllModes(t *testing.T) {
	for _, mode := range []beldi.Mode{beldi.ModeBeldi, beldi.ModeCrossTable, beldi.ModeBaseline} {
		t.Run(mode.String(), func(t *testing.T) {
			d, app := newDeployment(t, mode)
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 25; i++ {
				if _, err := d.Invoke(app.Entry(), app.Request(rng)); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
			}
		})
	}
}
