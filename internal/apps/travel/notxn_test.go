package travel

import (
	"sync"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

// The §7.4 ablation configuration: Beldi fault tolerance without the
// reservation transaction. Bookings stay exactly-once but lose isolation.

func newNoTxnDeployment(t *testing.T) (*beldi.Deployment, *App) {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{RowCap: 8, T: 100 * time.Millisecond, LockRetryMax: 300},
	})
	app := Build(d)
	app.DisableTxn = true
	app.Capacity = 50
	if err := app.Seed(); err != nil {
		t.Fatal(err)
	}
	return d, app
}

func TestNoTxnReservationStillBooks(t *testing.T) {
	d, _ := newNoTxnDeployment(t)
	out, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("reserve"), "hotel": beldi.Str(hotelID(1)), "flight": beldi.Str(flightID(1)),
	}))
	if err != nil || out.Str() != "booked" {
		t.Fatalf("reserve: %v %v", out, err)
	}
	hot, _ := AuditInventory(d, FnReserveHotel)
	fl, _ := AuditInventory(d, FnReserveFlight)
	want := int64(50*NumHotels - 1)
	if hot != want || fl != want {
		t.Errorf("inventories %d/%d, want %d", hot, fl, want)
	}
}

func TestNoTxnUsesNoLocksOrTransactions(t *testing.T) {
	// Structurally: the no-txn configuration performs zero transactional
	// work (no txn registries, no shadow rows).
	d, _ := newNoTxnDeployment(t)
	if _, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("reserve"), "hotel": beldi.Str(hotelID(2)), "flight": beldi.Str(flightID(2)),
	})); err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{FnReserve, FnReserveHotel, FnReserveFlight} {
		v := d.Runtime(fn).StatsSnapshot()
		if v.TxnBegun != 0 || v.Locks != 0 {
			t.Errorf("%s: txns=%d locks=%d in no-txn mode", fn, v.TxnBegun, v.Locks)
		}
	}
	// The transactional configuration, by contrast, locks on both sides.
	d2, _ := newDeployment(t, beldi.ModeBeldi)
	if _, err := d2.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("reserve"), "hotel": beldi.Str(hotelID(2)), "flight": beldi.Str(flightID(2)),
	})); err != nil {
		t.Fatal(err)
	}
	if v := d2.Runtime(FnReserve).StatsSnapshot(); v.TxnBegun != 1 {
		t.Errorf("txn mode began %d transactions", v.TxnBegun)
	}
	if v := d2.Runtime(FnReserveHotel).StatsSnapshot(); v.Locks == 0 {
		t.Error("txn mode acquired no locks in the hotel SSF")
	}
}

func TestNoTxnCanOversellUnderConcurrency(t *testing.T) {
	// The price of skipping the transaction: concurrent bookings of the
	// last seat can both "succeed" (read-check-write races in the two
	// reservation SSFs are no longer isolated). This is why the paper's
	// travel app needs §6.2. With capacity 1 and many concurrent attempts,
	// the number of successful bookings can exceed capacity; we assert only
	// that the exactly-once machinery still worked (no request lost or
	// doubled at the instance level) and surface the anomaly when it shows.
	store := dynamo.NewStore(dynamo.WithLatency(dynamo.NewCloudLatency(0.02, 3)))
	plat := platform.New(platform.Options{ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{RowCap: 8, T: 500 * time.Millisecond},
	})
	app := Build(d)
	app.DisableTxn = true
	app.Capacity = 1
	if err := app.Seed(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	booked := make(chan struct{}, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
				"op": beldi.Str("reserve"), "hotel": beldi.Str(hotelID(0)), "flight": beldi.Str(flightID(0)),
			}))
			if err == nil && out.Str() == "booked" {
				booked <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(booked)
	n := 0
	for range booked {
		n++
	}
	if n == 0 {
		t.Error("nobody booked the available seat")
	}
	t.Logf("no-txn concurrent bookings of 1 seat: %d clients succeeded (isolation anomaly visible when > 1)", n)
}
