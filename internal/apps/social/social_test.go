package social

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

func newDeployment(t *testing.T, mode beldi.Mode, faults platform.FaultPlan) (*beldi.Deployment, *App) {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{
		ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}, Faults: faults,
	})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: mode,
		Config: beldi.Config{RowCap: 8, T: 100 * time.Millisecond, ICMinAge: time.Millisecond},
	})
	app := Build(d)
	if err := app.Seed(); err != nil {
		t.Fatal(err)
	}
	return d, app
}

func composeReq(user, text string) beldi.Value {
	return beldi.Map(map[string]beldi.Value{
		"op":   beldi.Str("compose"),
		"user": beldi.Str(user),
		"text": beldi.Str(text),
		"media": beldi.List(
			beldi.Str("https://img.example.com/cat.png"),
		),
	})
}

func TestComposeAppearsOnUserTimeline(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi, nil)
	postID, err := d.Invoke(FnFrontend, composeReq("user-005", "hello world"))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("user"), "user": beldi.Str("user-005"),
	}))
	if err != nil {
		t.Fatal(err)
	}
	posts := tl.List()
	if len(posts) != 1 {
		t.Fatalf("%d posts on user timeline", len(posts))
	}
	post := posts[0].Map()
	if post["id"].Str() != postID.Str() {
		t.Errorf("post id %v != %v", post["id"], postID)
	}
	if post["body"].Map()["text"].Str() != "hello world" {
		t.Errorf("body = %v", post["body"])
	}
	if len(post["media"].List()) != 1 {
		t.Errorf("media = %v", post["media"])
	}
}

func TestComposeFansOutToFollowers(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi, nil)
	// user-000's followers per the seeded graph: 1 + 0%8 = 1 follower:
	// user-017.
	if _, err := d.Invoke(FnFrontend, composeReq("user-000", "fan out!")); err != nil {
		t.Fatal(err)
	}
	home, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("home"), "user": beldi.Str("user-017"),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(home.List()) != 1 {
		t.Fatalf("follower home timeline has %d posts", len(home.List()))
	}
	if got := home.List()[0].Map()["user"].Str(); got != "user-000" {
		t.Errorf("post author = %s", got)
	}
	// A non-follower's home timeline stays empty.
	other, _ := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("home"), "user": beldi.Str("user-123"),
	}))
	if len(other.List()) != 0 {
		t.Errorf("non-follower got %d posts", len(other.List()))
	}
}

func TestURLShorteningAndMentions(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi, nil)
	if _, err := d.Invoke(FnFrontend,
		composeReq("user-001", "hey @user-002 read https://example.com/a")); err != nil {
		t.Fatal(err)
	}
	tl, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("user"), "user": beldi.Str("user-001"),
	}))
	if err != nil {
		t.Fatal(err)
	}
	body := tl.List()[0].Map()["body"].Map()
	urls := body["urls"].List()
	if len(urls) != 1 || !strings.HasPrefix(urls[0].Str(), "s.ly/") {
		t.Errorf("urls = %v", body["urls"])
	}
	mentions := body["mentions"].List()
	if len(mentions) != 1 || mentions[0].Str() != "user-002" {
		t.Errorf("mentions = %v", body["mentions"])
	}
}

func TestLogin(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi, nil)
	ok, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("login"), "user": beldi.Str("user-009"), "password": beldi.Str("pw-009"),
	}))
	if err != nil || !ok.BoolVal() {
		t.Errorf("login: %v %v", ok, err)
	}
}

func TestTimelineCapBounded(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi, nil)
	for i := 0; i < TimelineCap+5; i++ {
		if _, err := d.Invoke(FnFrontend, composeReq("user-003", "post")); err != nil {
			t.Fatal(err)
		}
	}
	tl, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("user"), "user": beldi.Str("user-003"),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.List()) != TimelineCap {
		t.Errorf("timeline = %d posts, want cap %d", len(tl.List()), TimelineCap)
	}
}

func TestComposeCrashRecoveryNoDuplicateFanOut(t *testing.T) {
	// Kill compose-post mid fan-out; after recovery the post must appear
	// exactly once on each follower's home timeline.
	for _, n := range []int{3, 8, 15, 25} {
		plan := &platform.CrashNthOp{Function: FnComposePost, N: n}
		d, _ := newDeployment(t, beldi.ModeBeldi, plan)
		_, err := d.Invoke(FnFrontend, composeReq("user-000", "crashy post"))
		if err != nil && !errors.Is(err, platform.ErrCrashed) && !errors.Is(err, platform.ErrTimeout) {
			t.Fatalf("n=%d: %v", n, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := d.RunAllCollectors(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
			home, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
				"op": beldi.Str("home"), "user": beldi.Str("user-017"),
			}))
			if err == nil && len(home.List()) >= 1 {
				if got := len(home.List()); got != 1 {
					t.Fatalf("n=%d: follower saw %d copies", n, got)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("n=%d: post never reached the follower", n)
			}
		}
	}
}

func TestWorkloadMixAllModes(t *testing.T) {
	for _, mode := range []beldi.Mode{beldi.ModeBeldi, beldi.ModeCrossTable, beldi.ModeBaseline} {
		t.Run(mode.String(), func(t *testing.T) {
			d, app := newDeployment(t, mode, nil)
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 20; i++ {
				if _, err := d.Invoke(app.Entry(), app.Request(rng)); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
			}
		})
	}
}
