// Package social is the paper's social media site case study (§7.1,
// Appendix B Figure 24): a serverless port of DeathStarBench's social
// network. Users log in, follow each other, compose posts that mention
// users, shorten URLs and attach media, and read home/user timelines.
//
// The workflow (13 SSFs):
//
//	client → frontend → compose-post → {unique-id, media, text → {url-shorten,
//	                                    user-mention}, user} → post-storage
//	                                  → social-graph → timeline-storage
//	        frontend → home-timeline → timeline-storage → post-storage
//	        frontend → user-timeline → timeline-storage → post-storage
package social

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/beldi"
)

// Graph sizes.
const (
	NumUsers     = 300
	MaxFollowers = 8
	TimelineCap  = 20
)

// Function names.
const (
	FnFrontend     = "social-frontend"
	FnComposePost  = "social-compose-post"
	FnUniqueID     = "social-unique-id"
	FnMedia        = "social-media"
	FnText         = "social-text"
	FnURLShorten   = "social-url-shorten"
	FnUserMention  = "social-user-mention"
	FnUser         = "social-user"
	FnPostStorage  = "social-post-storage"
	FnSocialGraph  = "social-graph"
	FnTimeline     = "social-timeline-storage"
	FnUserTimeline = "social-user-timeline"
	FnHomeTimeline = "social-home-timeline"
)

// App wires the workflow.
type App struct {
	d *beldi.Deployment
}

// Build registers the thirteen SSFs.
func Build(d *beldi.Deployment) *App {
	a := &App{d: d}
	d.Function(FnUniqueID, a.uniqueID, "seq")
	d.Function(FnMedia, a.media, "media")
	d.Function(FnURLShorten, a.urlShorten, "urls")
	d.Function(FnUserMention, a.userMention, "mentions")
	d.Function(FnText, a.text)
	d.Function(FnUser, a.user, "users")
	d.Function(FnPostStorage, a.postStorage, "posts")
	d.Function(FnSocialGraph, a.socialGraph, "graph")
	d.Function(FnTimeline, a.timeline, "timelines")
	d.Function(FnUserTimeline, a.userTimeline)
	d.Function(FnHomeTimeline, a.homeTimeline)
	d.Function(FnComposePost, a.composePost)
	d.Function(FnFrontend, a.frontend)
	return a
}

// Seed populates users and the follower graph.
func (a *App) Seed() error {
	for _, fn := range []string{FnUser, FnSocialGraph} {
		if _, err := a.d.Invoke(fn, beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("seed"),
		})); err != nil {
			return fmt.Errorf("social: seeding %s: %w", fn, err)
		}
	}
	return nil
}

func userID(i int) string { return fmt.Sprintf("user-%03d", i) }

// --- leaf SSFs --------------------------------------------------------------

func (a *App) uniqueID(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	n, err := e.Read("seq", "post")
	if err != nil {
		return beldi.Null, err
	}
	next := n.Int() + 1
	if err := e.Write("seq", "post", beldi.Int(next)); err != nil {
		return beldi.Null, err
	}
	return beldi.Str(fmt.Sprintf("post-%010d", next)), nil
}

func (a *App) media(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	urls := in.Map()["media"]
	if urls.IsNull() {
		return beldi.List(), nil
	}
	var stored []beldi.Value
	for i, u := range urls.List() {
		key := fmt.Sprintf("%s-m%d", e.InstanceID(), i)
		if err := e.Write("media", key, u); err != nil {
			return beldi.Null, err
		}
		stored = append(stored, beldi.Str(key))
	}
	return beldi.List(stored...), nil
}

func (a *App) urlShorten(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	var out []beldi.Value
	for _, u := range in.Map()["urls"].List() {
		short := fmt.Sprintf("s.ly/%08x", hash32(u.Str()))
		if err := e.Write("urls", short, u); err != nil {
			return beldi.Null, err
		}
		out = append(out, beldi.Str(short))
	}
	return beldi.List(out...), nil
}

func hash32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (a *App) userMention(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	var out []beldi.Value
	for _, m := range in.Map()["mentions"].List() {
		// Record the mention against the mentioned user.
		if err := appendCapped(e, "mentions", m.Str(), in.Map()["postId"], TimelineCap); err != nil {
			return beldi.Null, err
		}
		out = append(out, m)
	}
	return beldi.List(out...), nil
}

// text extracts URLs and @mentions and fans out to the shortener and the
// mention service (Figure 24's Text → {UrlShorten, UserMention} edges).
func (a *App) text(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	body := in.Map()["text"].Str()
	var urls, mentions []beldi.Value
	for _, tok := range strings.Fields(body) {
		switch {
		case strings.HasPrefix(tok, "http://"), strings.HasPrefix(tok, "https://"):
			urls = append(urls, beldi.Str(tok))
		case strings.HasPrefix(tok, "@"):
			mentions = append(mentions, beldi.Str(strings.TrimPrefix(tok, "@")))
		}
	}
	var shortened, mentioned beldi.Value
	err := e.Parallel(
		func(sub *beldi.Env) error {
			var err error
			shortened, err = sub.SyncInvoke(FnURLShorten, beldi.Map(map[string]beldi.Value{
				"urls": beldi.List(urls...),
			}))
			return err
		},
		func(sub *beldi.Env) error {
			var err error
			mentioned, err = sub.SyncInvoke(FnUserMention, beldi.Map(map[string]beldi.Value{
				"mentions": beldi.List(mentions...),
				"postId":   in.Map()["postId"],
			}))
			return err
		},
	)
	if err != nil {
		return beldi.Null, err
	}
	return beldi.Map(map[string]beldi.Value{
		"text": beldi.Str(body), "urls": shortened, "mentions": mentioned,
	}), nil
}

func (a *App) user(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	switch m["op"].Str() {
	case "seed":
		for i := 0; i < NumUsers; i++ {
			u := beldi.Map(map[string]beldi.Value{
				"name":     beldi.Str(fmt.Sprintf("user %d", i)),
				"password": beldi.Str(fmt.Sprintf("pw-%03d", i)),
			})
			if err := e.Write("users", userID(i), u); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	case "login":
		u, err := e.Read("users", m["user"].Str())
		if err != nil {
			return beldi.Null, err
		}
		ok := !u.IsNull() && u.Map()["password"].Str() == m["password"].Str()
		return beldi.BoolVal(ok), nil
	default: // resolve
		return e.Read("users", m["user"].Str())
	}
}

func (a *App) postStorage(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	switch m["op"].Str() {
	case "store":
		post := m["post"]
		return beldi.Str("stored"), e.Write("posts", post.Map()["id"].Str(), post)
	default: // fetch
		var out []beldi.Value
		for _, idv := range m["ids"].List() {
			p, err := e.Read("posts", idv.Str())
			if err != nil {
				return beldi.Null, err
			}
			if !p.IsNull() {
				out = append(out, p)
			}
		}
		return beldi.List(out...), nil
	}
}

// socialGraph stores follower lists; followers of u receive u's posts on
// their home timelines.
func (a *App) socialGraph(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	switch m["op"].Str() {
	case "seed":
		for i := 0; i < NumUsers; i++ {
			var followers []beldi.Value
			n := 1 + i%MaxFollowers
			for j := 1; j <= n; j++ {
				followers = append(followers, beldi.Str(userID((i+j*17)%NumUsers)))
			}
			if err := e.Write("graph", userID(i), beldi.List(followers...)); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	case "follow":
		return beldi.Str("ok"), appendCapped(e, "graph", m["followee"].Str(), m["follower"], NumUsers)
	default: // followers
		return e.Read("graph", m["user"].Str())
	}
}

// timeline stores per-user timelines: "h|user" home, "u|user" own posts.
func (a *App) timeline(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	key := m["kind"].Str() + "|" + m["user"].Str()
	switch m["op"].Str() {
	case "append":
		return beldi.Str("ok"), appendCapped(e, "timelines", key, m["postId"], TimelineCap)
	default: // read
		return e.Read("timelines", key)
	}
}

func (a *App) userTimeline(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	ids, err := e.SyncInvoke(FnTimeline, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("read"), "kind": beldi.Str("u"), "user": in.Map()["user"],
	}))
	if err != nil {
		return beldi.Null, err
	}
	return e.SyncInvoke(FnPostStorage, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("fetch"), "ids": ids,
	}))
}

func (a *App) homeTimeline(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	ids, err := e.SyncInvoke(FnTimeline, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("read"), "kind": beldi.Str("h"), "user": in.Map()["user"],
	}))
	if err != nil {
		return beldi.Null, err
	}
	return e.SyncInvoke(FnPostStorage, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("fetch"), "ids": ids,
	}))
}

// composePost is Figure 24's hub: mint an id, process text/media/user in
// parallel, store the post, then fan the post id out to the author's user
// timeline and every follower's home timeline.
func (a *App) composePost(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	postID, err := e.SyncInvoke(FnUniqueID, beldi.Null)
	if err != nil {
		return beldi.Null, err
	}
	var textOut, mediaOut, author beldi.Value
	err = e.Parallel(
		func(sub *beldi.Env) error {
			var err error
			textOut, err = sub.SyncInvoke(FnText, beldi.Map(map[string]beldi.Value{
				"text": m["text"], "postId": postID,
			}))
			return err
		},
		func(sub *beldi.Env) error {
			var err error
			mediaOut, err = sub.SyncInvoke(FnMedia, beldi.Map(map[string]beldi.Value{
				"media": m["media"],
			}))
			return err
		},
		func(sub *beldi.Env) error {
			var err error
			author, err = sub.SyncInvoke(FnUser, beldi.Map(map[string]beldi.Value{
				"op": beldi.Str("resolve"), "user": m["user"],
			}))
			return err
		},
	)
	if err != nil {
		return beldi.Null, err
	}
	post := beldi.Map(map[string]beldi.Value{
		"id":     postID,
		"user":   m["user"],
		"author": author,
		"body":   textOut,
		"media":  mediaOut,
	})
	if _, err := e.SyncInvoke(FnPostStorage, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("store"), "post": post,
	})); err != nil {
		return beldi.Null, err
	}
	// Own timeline.
	if _, err := e.SyncInvoke(FnTimeline, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("append"), "kind": beldi.Str("u"), "user": m["user"], "postId": postID,
	})); err != nil {
		return beldi.Null, err
	}
	// Followers' home timelines.
	followers, err := e.SyncInvoke(FnSocialGraph, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("followers"), "user": m["user"],
	}))
	if err != nil {
		return beldi.Null, err
	}
	for _, fv := range followers.List() {
		if _, err := e.SyncInvoke(FnTimeline, beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("append"), "kind": beldi.Str("h"), "user": fv, "postId": postID,
		})); err != nil {
			return beldi.Null, err
		}
	}
	return postID, nil
}

// frontend routes client requests.
func (a *App) frontend(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	switch m["op"].Str() {
	case "compose":
		return e.SyncInvoke(FnComposePost, in)
	case "home":
		return e.SyncInvoke(FnHomeTimeline, in)
	case "user":
		return e.SyncInvoke(FnUserTimeline, in)
	case "login":
		return e.SyncInvoke(FnUser, beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("login"), "user": m["user"], "password": m["password"],
		}))
	case "follow":
		return e.SyncInvoke(FnSocialGraph, in)
	default:
		return beldi.Null, fmt.Errorf("social: unknown op %q", m["op"].Str())
	}
}

// appendCapped appends v to the list at key, keeping the newest limit
// entries.
func appendCapped(e *beldi.Env, table, key string, v beldi.Value, limit int) error {
	cur, err := e.Read(table, key)
	if err != nil {
		return err
	}
	ids := append([]beldi.Value{}, cur.List()...)
	ids = append(ids, v)
	if len(ids) > limit {
		ids = ids[len(ids)-limit:]
	}
	return e.Write(table, key, beldi.List(ids...))
}

// --- workload ---------------------------------------------------------------

// Entry returns the workflow's entry function.
func (a *App) Entry() string { return FnFrontend }

// Request draws from the social mix: mostly timeline reads with a compose
// and login tail.
func (a *App) Request(r *rand.Rand) beldi.Value {
	p := r.Float64()
	u := userID(r.Intn(NumUsers))
	switch {
	case p < 0.55:
		return beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("home"), "user": beldi.Str(u),
		})
	case p < 0.80:
		return beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("user"), "user": beldi.Str(u),
		})
	case p < 0.90:
		mention := userID(r.Intn(NumUsers))
		return beldi.Map(map[string]beldi.Value{
			"op":   beldi.Str("compose"),
			"user": beldi.Str(u),
			"text": beldi.Str("hello @" + mention + " see https://example.com/" + u),
			"media": beldi.List(
				beldi.Str("https://img.example.com/" + u + ".png"),
			),
		})
	default:
		i := r.Intn(NumUsers)
		return beldi.Map(map[string]beldi.Value{
			"op":       beldi.Str("login"),
			"user":     beldi.Str(userID(i)),
			"password": beldi.Str(fmt.Sprintf("pw-%03d", i)),
		})
	}
}
