package fanout

import (
	"fmt"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

func newDeployment(t *testing.T, faults platform.FaultPlan) *beldi.Deployment {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{
		ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}, Faults: faults,
	})
	return beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Millisecond},
	})
}

func corpus() Job {
	return Job{Docs: []Doc{
		{ID: "d0", Text: "the quick brown fox"},
		{ID: "d1", Text: "the lazy dog and the quick cat"},
		{ID: "d2", Text: "fox and dog, dog and fox!"},
		{ID: "d3", Text: "a cat. A CAT!"},
		{ID: "d4", Text: "quick quick quick"},
		{ID: "d5", Text: "the end"},
		{ID: "d6", Text: "brown bears and brown foxes"},
		{ID: "d7", Text: "dog days"},
	}}
}

func TestWordCountFanOut(t *testing.T) {
	d := newDeployment(t, nil)
	app := Build(d)
	sum, err := app.Reduce.Invoke(corpus())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Docs != 8 {
		t.Errorf("docs = %d", sum.Docs)
	}
	m, err := Totals(d)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range map[string]int64{"the": 4, "quick": 5, "dog": 4, "cat": 3, "brown": 3} {
		if m[w] != want {
			t.Errorf("count[%s] = %d, want %d", w, m[w], want)
		}
	}
	var total int64
	for _, n := range m {
		total += n
	}
	if total != sum.Words {
		t.Errorf("summary words %d != committed total %d", sum.Words, total)
	}
	if err := d.FsckAll(); err != nil {
		t.Fatal(err)
	}
}

// TestWordCountCrashSweep kills the reduce driver at a sweep of operation
// boundaries — through the fan-out, mid-fan-in, and after the merge — and
// checks the collector-finished totals are identical to an undisturbed
// run: no lost mapper, no double-counted document.
func TestWordCountCrashSweep(t *testing.T) {
	clean := newDeployment(t, nil)
	Build(clean)
	if _, err := clean.Invoke(FnReduce, mustValue(t, corpus())); err != nil {
		t.Fatal(err)
	}
	want, err := Totals(clean)
	if err != nil {
		t.Fatal(err)
	}

	// The driver's crash points: 8 async registrations (3 ops each), 8
	// awaits, the totals write. Sweep positions across all phases.
	for _, n := range []int{1, 5, 12, 24, 26, 30, 33, 35} {
		t.Run(fmt.Sprintf("crashOp%d", n), func(t *testing.T) {
			d := newDeployment(t, &platform.CrashNthOp{Function: FnReduce, N: n})
			Build(d)
			_, invokeErr := d.Invoke(FnReduce, mustValue(t, corpus()))
			// Drive collection until the reduce intent completes.
			deadline := time.Now().Add(5 * time.Second)
			for {
				time.Sleep(2 * time.Millisecond)
				if err := d.RunAllCollectors(); err != nil {
					t.Fatal(err)
				}
				got, err := Totals(d)
				if err != nil {
					t.Fatal(err)
				}
				if mapsEqual(got, want) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("crash op %d (invoke err %v): totals never converged: got %v want %v",
						n, invokeErr, got, want)
				}
			}
			// Converged totals must also be stable: another collector round
			// must not double anything.
			if err := d.RunAllCollectors(); err != nil {
				t.Fatal(err)
			}
			got, err := Totals(d)
			if err != nil {
				t.Fatal(err)
			}
			if !mapsEqual(got, want) {
				t.Errorf("totals drifted after extra collection: got %v want %v", got, want)
			}
			if err := d.FsckAll(); err != nil {
				t.Error(err)
			}
		})
	}
}

func mustValue(t *testing.T, v any) beldi.Value {
	t.Helper()
	out, err := beldi.ToValue(v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mapsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
