// Package fanout is a map-reduce-style word-count workload built entirely
// on the typed public API and durable promises: a driver SSF fans one
// mapper invocation per document out with Func.Async, awaits all of them
// (each await a logged step), merges the counts, and commits the totals —
// the fan-out/fan-in orchestration shape that Durable Functions/Netherite
// treat as serverless workflows' bread and butter, here with Beldi's
// exactly-once guarantee end to end. The driver can crash at any operation
// boundary: the intent collector re-executes it, the replayed awaits
// observe the identical mailbox results, and the totals commit once.
package fanout

import (
	"sort"
	"strings"

	"repro/beldi"
)

// Function names.
const (
	FnMap    = "wc-map"
	FnReduce = "wc-reduce"
)

// Doc is one mapper's input: a document shard to count.
type Doc struct {
	ID   string
	Text string
}

// Counts is a mapper's output: per-word occurrences in one document.
type Counts struct {
	DocID string
	Words map[string]int64
}

// Job is the driver's input: the documents to count in one round.
type Job struct {
	Docs []Doc
}

// Summary is the driver's output.
type Summary struct {
	Docs     int64
	Words    int64 // total word occurrences
	Distinct int64 // distinct words
}

// Typed table handles. perDoc keeps each mapper's own result (written by
// the mapper — data sovereignty: only wc-map touches it); totals holds the
// merged counts the driver commits.
var (
	perDoc = beldi.NewTable[Counts]("perdoc")
	totals = beldi.NewTable[map[string]int64]("totals")
)

// App bundles the typed handles of the registered workflow.
type App struct {
	Map    beldi.Func[Doc, Counts]
	Reduce beldi.Func[Job, Summary]
}

// Build registers the mapper and the fan-out driver on d.
func Build(d *beldi.Deployment) *App {
	a := &App{}
	a.Map = beldi.RegisterFunc(d, FnMap, func(e *beldi.Env, doc Doc) (Counts, error) {
		c := Counts{DocID: doc.ID, Words: map[string]int64{}}
		for _, w := range strings.Fields(strings.ToLower(doc.Text)) {
			w = strings.Trim(w, ".,;:!?\"'()")
			if w != "" {
				c.Words[w]++
			}
		}
		if err := perDoc.Put(e, doc.ID, c); err != nil {
			return Counts{}, err
		}
		return c, nil
	}, "perdoc")
	mapFn := a.Map
	a.Reduce = beldi.RegisterFunc(d, FnReduce, func(e *beldi.Env, job Job) (Summary, error) {
		// Fan out: one durable promise per document.
		ps := make([]*beldi.PromiseOf[Counts], len(job.Docs))
		for i, doc := range job.Docs {
			p, err := mapFn.Async(e, doc)
			if err != nil {
				return Summary{}, err
			}
			ps[i] = p
		}
		// Fan in: every await is a logged step, so a crashed-and-replayed
		// reduce observes the identical mapper results.
		results, err := beldi.AwaitAllOf(e, ps...)
		if err != nil {
			return Summary{}, err
		}
		merged := map[string]int64{}
		var s Summary
		for _, c := range results {
			s.Docs++
			for w, n := range c.Words {
				merged[w] += n
				s.Words += n
			}
		}
		s.Distinct = int64(len(merged))
		if err := totals.Put(e, "all", merged); err != nil {
			return Summary{}, err
		}
		return s, nil
	}, "totals")
	return a
}

// Totals reads the committed merged counts (inspection aid for tests and
// examples).
func Totals(d *beldi.Deployment) (map[string]int64, error) {
	v, err := beldi.PeekState(d.Runtime(FnReduce), "totals", "all")
	if err != nil {
		return nil, err
	}
	var out map[string]int64
	if err := beldi.FromValue(v, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// TopWords returns the n most frequent words from the committed totals,
// ties broken alphabetically.
func TopWords(d *beldi.Deployment, n int) ([]string, error) {
	m, err := Totals(d)
	if err != nil {
		return nil, err
	}
	words := make([]string, 0, len(m))
	for w := range m {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if m[words[i]] != m[words[j]] {
			return m[words[i]] > m[words[j]]
		}
		return words[i] < words[j]
	})
	if n > len(words) {
		n = len(words)
	}
	return words[:n], nil
}
