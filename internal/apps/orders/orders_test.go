package orders

import (
	"fmt"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/queue"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// rig builds the pipeline on a fresh store/platform with queue-backed async
// edges. Mappers are not started: tests drive delivery deterministically
// with da.Drain / da.PollAll unless they opt into background polling.
type rig struct {
	store storage.Backend
	plat  *platform.Platform
	d     *beldi.Deployment
	app   *App
	da    *beldi.DurableAsync
}

func newRig(t *testing.T, opts beldi.DurableAsyncOptions) *rig {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Nanosecond},
	})
	app := Build(d)
	da := d.EnableDurableAsync(opts)
	if err := app.Seed(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return &rig{store: store, plat: plat, d: d, app: app, da: da}
}

// place submits n orders with deterministic amounts/quantities and returns
// the ids plus the expected revenue and units sold.
func (r *rig) place(t *testing.T, n int) (ids []string, revenue, units int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("order-%04d", i)
		qty := int64(1 + i%3)
		amount := int64(10 + i)
		if _, err := r.d.Invoke(FnFrontend, PlaceRequest(id, UserID(i%NumUsers), ItemID(i%NumItems), qty, amount)); err != nil {
			t.Fatalf("place %s: %v", id, err)
		}
		ids = append(ids, id)
		revenue += amount
		units += qty
	}
	return ids, revenue, units
}

func (r *rig) assertTotals(t *testing.T, ids []string, revenue, units int64) {
	t.Helper()
	tot, err := r.app.Totals(ids)
	if err != nil {
		t.Fatal(err)
	}
	if tot.Revenue != revenue {
		t.Errorf("revenue = %d, want %d", tot.Revenue, revenue)
	}
	if tot.StockSold != units {
		t.Errorf("stock sold = %d, want %d", tot.StockSold, units)
	}
	if tot.PaidOrders != len(ids) {
		t.Errorf("paid orders = %d, want %d", tot.PaidOrders, len(ids))
	}
	if tot.Shipments != len(ids) {
		t.Errorf("shipments = %d, want %d", tot.Shipments, len(ids))
	}
	if tot.Notifications != int64(len(ids)) {
		t.Errorf("notifications = %d, want %d", tot.Notifications, len(ids))
	}
	if err := r.d.FsckAll(); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

func TestPipelineCompletesExactlyOnce(t *testing.T) {
	r := newRig(t, DefaultEventOptions())
	ids, revenue, units := r.place(t, 12)
	if _, err := r.da.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	r.assertTotals(t, ids, revenue, units)

	// Order status is readable through the synchronous entry.
	st, err := r.d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("status"), "order": beldi.Str(ids[0]),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := st.MapGet("status"); got.Str() != "placed" {
		t.Fatalf("status = %v", st)
	}
}

// TestCrashedConsumerIsRedeliveredExactlyOnce is the acceptance scenario: a
// CrashOnce fault kills the payment consumer mid-handler — after it has
// already accrued revenue — so the queue message stays in flight, reappears
// after the visibility timeout, and the re-execution replays to completion
// without double-charging.
func TestCrashedConsumerIsRedeliveredExactlyOnce(t *testing.T) {
	r := newRig(t, DefaultEventOptions())
	// payment's step 2 is the charge write; crashing right after it is the
	// worst spot — the non-idempotent effect is already durable when the
	// consumer dies.
	fault := &platform.CrashOnce{Function: FnPayment, Label: "write:post:0.000002"}
	r.plat.SetFaults(fault)

	ids, revenue, units := r.place(t, 5)
	if _, err := r.da.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fault.Fired() {
		t.Fatal("fault never fired; the scenario did not run")
	}
	if r.da.Broker().Metrics().Redelivered.Load() == 0 {
		t.Fatal("no redelivery observed: the crashed consumer's message should have come back")
	}
	r.assertTotals(t, ids, revenue, units)
}

// TestCrashSweepAcrossPaymentSteps kills the payment consumer at every
// operation boundary in turn (the paper's step-level fault coverage) and
// checks the pipeline converges to the same exactly-once totals every time.
func TestCrashSweepAcrossPaymentSteps(t *testing.T) {
	counter := &platform.OpCounter{}
	probe := newRig(t, DefaultEventOptions())
	probe.plat.SetFaults(counter)
	ids, revenue, units := probe.place(t, 1)
	if _, err := probe.da.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	probe.assertTotals(t, ids, revenue, units)
	n := counter.Max(FnPayment)
	if n == 0 {
		t.Fatal("probe run saw no payment crash points")
	}
	for op := 1; op <= n; op++ {
		t.Run(fmt.Sprintf("op%02d", op), func(t *testing.T) {
			r := newRig(t, DefaultEventOptions())
			r.plat.SetFaults(&platform.CrashNthOp{Function: FnPayment, N: op})
			id := "order-0000"
			if _, err := r.d.Invoke(FnFrontend, PlaceRequest(id, UserID(0), ItemID(0), 1, 10)); err != nil {
				// The crash landed before the entry returned (e.g. inside
				// the synchronous async-registration call): the client saw
				// an error and the pending intents are the durable record.
				// Recovery belongs to the intent collectors.
				for i := 0; i < 3; i++ {
					if err := r.d.RunAllCollectors(); err != nil {
						t.Fatal(err)
					}
					r.plat.Drain()
				}
			}
			if _, err := r.da.Drain(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			r.assertTotals(t, []string{id}, 10, 1)
		})
	}
}

// TestPoisonMessageDeadLettersThenRedrives drives a message whose consumer
// crash-loops into the DLQ after its redelivery budget, confirms the rest of
// the pipeline was unaffected, then "fixes the consumer", redrives, and sees
// the notification land exactly once.
func TestPoisonMessageDeadLettersThenRedrives(t *testing.T) {
	opts := DefaultEventOptions()
	opts.MaxReceives = 3
	r := newRig(t, opts)
	r.app.ArmPoison(true)

	id := "order-poison"
	if _, err := r.d.Invoke(FnFrontend, PlaceRequest(id, PoisonUser, ItemID(0), 2, 42)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.da.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Payment, inventory and shipping completed; only the notification is
	// poisoned.
	tot, err := r.app.Totals([]string{id})
	if err != nil {
		t.Fatal(err)
	}
	if tot.Revenue != 42 || tot.StockSold != 2 || tot.PaidOrders != 1 || tot.Shipments != 1 {
		t.Fatalf("upstream pipeline disturbed by poison: %+v", tot)
	}
	notifyQ := queue.QueueFor(FnNotify)
	dead, err := r.da.Broker().DeadLetters(notifyQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 {
		t.Fatalf("DLQ has %d messages, want 1", len(dead))
	}
	if dead[0].ReceiveCount != opts.MaxReceives {
		t.Fatalf("poison message received %d times, want the budget %d", dead[0].ReceiveCount, opts.MaxReceives)
	}
	note, err := beldi.PeekState(r.d.Runtime(FnNotify), "inbox", "note."+id)
	if err != nil {
		t.Fatal(err)
	}
	if note.Int() != 0 {
		t.Fatalf("poisoned notification partially applied: %v", note)
	}

	// Fix the consumer and redrive: the same message (same intent) now
	// completes, exactly once.
	r.app.ArmPoison(false)
	n, err := r.da.Broker().Redrive(notifyQ)
	if err != nil || n != 1 {
		t.Fatalf("Redrive = %d, %v", n, err)
	}
	if _, err := r.da.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	note, err = beldi.PeekState(r.d.Runtime(FnNotify), "inbox", "note."+id)
	if err != nil {
		t.Fatal(err)
	}
	if note.Int() != 1 {
		t.Fatalf("note count after redrive = %d, want exactly 1", note.Int())
	}
	if dead, _ := r.da.Broker().DeadLetters(notifyQ); len(dead) != 0 {
		t.Fatalf("DLQ not emptied by redrive: %v", dead)
	}
	if err := r.d.FsckAll(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineUnderChaosWithBackgroundMappers runs the full rig the way a
// deployment would — background event-source mappers — while a probabilistic
// fault plan keeps killing inventory consumers. Redelivery plus replay must
// still converge to exact totals. Dead-lettering is disabled so no amount of
// bad luck can strand a message.
func TestPipelineUnderChaosWithBackgroundMappers(t *testing.T) {
	opts := DefaultEventOptions()
	opts.MaxReceives = -1
	r := newRig(t, opts)
	r.plat.SetFaults(&platform.CrashProb{Function: FnInventory, P: 0.1, Seed: 11})
	r.da.Start()

	ids, revenue, units := r.place(t, 30)
	deadline := time.Now().Add(15 * time.Second)
	for {
		depth, err := r.da.Depth()
		if err != nil {
			t.Fatal(err)
		}
		if depth == 0 {
			tot, err := r.app.Totals(ids)
			if err != nil {
				t.Fatal(err)
			}
			if tot.Revenue == revenue && tot.StockSold == units &&
				tot.Shipments == len(ids) && tot.Notifications == int64(len(ids)) {
				break
			}
		}
		if time.Now().After(deadline) {
			tot, _ := r.app.Totals(ids)
			t.Fatalf("pipeline did not converge: depth=%d totals=%+v want revenue=%d units=%d n=%d",
				depth, tot, revenue, units, len(ids))
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.plat.SetFaults(nil)
	r.assertTotals(t, ids, revenue, units)
}
