// Package orders is an event-driven order-processing pipeline: the fan-out
// scenario the durable event-queue subsystem exists for. Unlike the paper's
// case studies (media, travel, social), which compose SSFs with synchronous
// calls, every edge after the client request here is an asynchronous event
// delivered through a durable per-function invocation queue and drained by a
// platform event-source mapper — Triggerflow-style composition on Beldi
// semantics.
//
// The workflow (5 SSFs, queue edges marked ⇒):
//
//	client → frontend ⇒ payment ⇒ inventory
//	                            ⇒ shipping ⇒ notify
//
// Every stage's effect is a per-order read-modify-write counter — a
// non-idempotent operation whose final value exposes any duplicated or
// dropped event — and Totals() aggregates them into the app-level
// exactly-once assertion the fault-injection tests check.
//
// Design note: consumers deliberately avoid cross-message locks on hot keys
// (a global revenue counter, a shared stock cell). Under at-least-once
// redelivery, an instance that exhausts its logged lock-retry budget replays
// those failed attempts deterministically forever — the message turns to
// poison. Keying every effect by order id removes the contention instead;
// aggregates are derived at read time. Beldi's per-instance step replay then
// yields exactly-once with no cross-consumer coordination at all.
package orders

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/beldi"
)

// Function names.
const (
	FnFrontend  = "orders-frontend"
	FnPayment   = "orders-payment"
	FnInventory = "orders-inventory"
	FnShipping  = "orders-shipping"
	FnNotify    = "orders-notify"
)

// Catalogue sizes.
const (
	NumItems = 20
	NumUsers = 50
	// SeedStock is each item's catalogued inventory.
	SeedStock = 1_000_000
)

// PoisonUser marks orders whose notification consumer crash-loops while the
// poison is armed — the poison-message scenario for dead-letter tests.
const PoisonUser = "user-poison"

// App wires the pipeline.
type App struct {
	d  *beldi.Deployment
	da *beldi.DurableAsync

	// poisonArmed makes notify crash on PoisonUser orders: a consumer-side
	// bug that redelivery alone cannot fix (until "deployed away" by
	// disarming), which is what drives messages to the DLQ.
	poisonArmed atomic.Bool
}

// ArmPoison toggles the notify consumer's injected bug.
func (a *App) ArmPoison(on bool) { a.poisonArmed.Store(on) }

// Build registers the five SSFs. Call EnableEvents (or the deployment's own
// EnableDurableAsync) afterwards to put queues under the async edges.
func Build(d *beldi.Deployment) *App {
	a := &App{d: d}
	d.Function(FnFrontend, a.frontend, "orders")
	d.Function(FnPayment, a.payment, "ledger")
	d.Function(FnInventory, a.inventory, "stock")
	d.Function(FnShipping, a.shipping, "shipments")
	d.Function(FnNotify, a.notify, "inbox")
	return a
}

// EnableEvents wires the durable event-queue subsystem under the pipeline's
// async edges and starts the background event-source mappers. Returns the
// wiring for inspection (queue depths, DLQs, mapper metrics).
func (a *App) EnableEvents(opts beldi.DurableAsyncOptions) *beldi.DurableAsync {
	a.da = a.d.EnableDurableAsync(opts)
	a.da.Start()
	return a.da
}

// Close stops the background mappers (io.Closer so harnesses can clean up).
func (a *App) Close() error {
	if a.da != nil {
		a.da.Stop()
	}
	return nil
}

var _ io.Closer = (*App)(nil)

// Seed catalogues the inventory.
func (a *App) Seed() error {
	if _, err := a.d.Invoke(FnInventory, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("seed"),
	})); err != nil {
		return fmt.Errorf("orders: seeding %s: %w", FnInventory, err)
	}
	return nil
}

// ItemID names a catalogue item.
func ItemID(i int) string { return fmt.Sprintf("item-%03d", i) }

// UserID names a customer.
func UserID(i int) string { return fmt.Sprintf("user-%03d", i) }

// --- SSF bodies -------------------------------------------------------------

// frontend accepts client requests: "place" appends the order record and
// emits the payment event; "status" reads the order record back.
func (a *App) frontend(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	switch m["op"].Str() {
	case "place":
		order := m["order"].Str()
		rec := beldi.Map(map[string]beldi.Value{
			"status": beldi.Str("placed"),
			"user":   m["user"],
			"item":   m["item"],
			"qty":    m["qty"],
			"amount": m["amount"],
		})
		if err := e.Write("orders", order, rec); err != nil {
			return beldi.Null, err
		}
		// The durable handoff: intent registration + queue message. From
		// here the pipeline advances by events alone.
		if err := e.AsyncInvoke(FnPayment, in); err != nil {
			return beldi.Null, err
		}
		return beldi.Map(map[string]beldi.Value{
			"order": m["order"], "status": beldi.Str("placed"),
		}), nil
	case "status":
		return e.Read("orders", m["order"].Str())
	default:
		return beldi.Null, fmt.Errorf("orders: unknown op %q", m["op"].Str())
	}
}

// payment accrues the order's charge — the canonical must-not-double
// read-modify-write; a duplicated event would leave charge = 2×amount — and
// fans out to inventory and shipping.
func (a *App) payment(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	chargeKey := "charge." + m["order"].Str()
	cur, err := e.Read("ledger", chargeKey)
	if err != nil {
		return beldi.Null, err
	}
	if err := e.Write("ledger", chargeKey, beldi.Int(cur.Int()+m["amount"].Int())); err != nil {
		return beldi.Null, err
	}
	if err := e.AsyncInvoke(FnInventory, in); err != nil {
		return beldi.Null, err
	}
	if err := e.AsyncInvoke(FnShipping, in); err != nil {
		return beldi.Null, err
	}
	return beldi.Str("paid"), nil
}

// inventory validates the item against the catalogue and accrues the order's
// reservation.
func (a *App) inventory(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if m["op"].Str() == "seed" {
		for i := 0; i < NumItems; i++ {
			if err := e.Write("stock", ItemID(i), beldi.Int(SeedStock)); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	stock, err := e.Read("stock", m["item"].Str())
	if err != nil {
		return beldi.Null, err
	}
	if stock.IsNull() {
		return beldi.Null, fmt.Errorf("orders: unknown item %q", m["item"].Str())
	}
	resvKey := "resv." + m["order"].Str()
	cur, err := e.Read("stock", resvKey)
	if err != nil {
		return beldi.Null, err
	}
	if err := e.Write("stock", resvKey, beldi.Int(cur.Int()+m["qty"].Int())); err != nil {
		return beldi.Null, err
	}
	return beldi.Str("reserved"), nil
}

// shipping records the shipment and emits the notification event.
func (a *App) shipping(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	rec := beldi.Map(map[string]beldi.Value{
		"status": beldi.Str("shipped"),
		"item":   m["item"],
		"qty":    m["qty"],
	})
	if err := e.Write("shipments", m["order"].Str(), rec); err != nil {
		return beldi.Null, err
	}
	if err := e.AsyncInvoke(FnNotify, in); err != nil {
		return beldi.Null, err
	}
	return beldi.Str("shipped"), nil
}

// notify accrues the order's notification count — one more per-order
// counter, so a duplicated notification event is directly visible.
func (a *App) notify(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if m["user"].Str() == PoisonUser && a.poisonArmed.Load() {
		// A deterministic consumer bug: the worker dies on every delivery of
		// this message until the fix ships (ArmPoison(false)).
		panic("orders: poison notification")
	}
	noteKey := "note." + m["order"].Str()
	cur, err := e.Read("inbox", noteKey)
	if err != nil {
		return beldi.Null, err
	}
	if err := e.Write("inbox", noteKey, beldi.Int(cur.Int()+1)); err != nil {
		return beldi.Null, err
	}
	return beldi.Str("notified"), nil
}

// --- test / harness helpers -------------------------------------------------

// Totals is the pipeline's app-level end state, aggregated from the
// per-order counters across every SSF's tables: the exactly-once assertion
// surface. Any duplicated event inflates a sum; any dropped event deflates a
// count.
type Totals struct {
	Revenue       int64 // Σ charge.<order>
	StockSold     int64 // Σ resv.<order>
	PaidOrders    int   // orders with a charge
	Shipments     int   // orders with a shipment record
	Notifications int64 // Σ note.<order>
}

// Totals audits the deployment's state for the given order ids.
func (a *App) Totals(orders []string) (Totals, error) {
	var tot Totals
	for _, o := range orders {
		charge, err := beldi.PeekState(a.d.Runtime(FnPayment), "ledger", "charge."+o)
		if err != nil {
			return tot, err
		}
		tot.Revenue += charge.Int()
		if charge.Int() > 0 {
			tot.PaidOrders++
		}
		resv, err := beldi.PeekState(a.d.Runtime(FnInventory), "stock", "resv."+o)
		if err != nil {
			return tot, err
		}
		tot.StockSold += resv.Int()
		ship, err := beldi.PeekState(a.d.Runtime(FnShipping), "shipments", o)
		if err != nil {
			return tot, err
		}
		if !ship.IsNull() {
			tot.Shipments++
		}
		note, err := beldi.PeekState(a.d.Runtime(FnNotify), "inbox", "note."+o)
		if err != nil {
			return tot, err
		}
		tot.Notifications += note.Int()
	}
	return tot, nil
}

// PlaceRequest builds a "place" payload.
func PlaceRequest(order, user, item string, qty, amount int64) beldi.Value {
	return beldi.Map(map[string]beldi.Value{
		"op":     beldi.Str("place"),
		"order":  beldi.Str(order),
		"user":   beldi.Str(user),
		"item":   beldi.Str(item),
		"qty":    beldi.Int(qty),
		"amount": beldi.Int(amount),
	})
}

// --- workload ---------------------------------------------------------------

// Entry returns the workflow's entry function.
func (a *App) Entry() string { return FnFrontend }

// Request draws from the order mix: mostly placements, some status checks.
// Order ids are minted from the workload RNG, which seeds each request
// deterministically.
func (a *App) Request(r *rand.Rand) beldi.Value {
	if r.Float64() < 0.85 {
		return PlaceRequest(
			fmt.Sprintf("o-%016x", r.Int63()),
			UserID(r.Intn(NumUsers)),
			ItemID(r.Intn(NumItems)),
			1+int64(r.Intn(3)),
			10+int64(r.Intn(90)),
		)
	}
	return beldi.Map(map[string]beldi.Value{
		"op":    beldi.Str("status"),
		"order": beldi.Str(fmt.Sprintf("o-%016x", r.Int63())),
	})
}

// DefaultEventOptions are the queue parameters harnesses use for this app:
// quick redelivery so fault-injection runs converge fast.
func DefaultEventOptions() beldi.DurableAsyncOptions {
	return beldi.DurableAsyncOptions{
		VisibilityTimeout: 25 * time.Millisecond,
		MaxReceives:       5,
		BatchSize:         8,
		PollInterval:      time.Millisecond,
	}
}
