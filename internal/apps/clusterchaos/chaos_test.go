// Package clusterchaos kills and partitions workers of a multi-worker pool
// under the travel and orders workloads, then audits the shared state for
// exactly-once: every workflow that registered an intent completes exactly
// once on some live worker, transactional invariants hold across the kill,
// and a recovered zombie's late writes land nowhere.
//
// These tests run entirely under internal/sim's deterministic scheduler:
// each one pins the scenario seed whose derived (kind, workload) matches
// the chaos shape it guards, so there are no wall-clock sleeps, no timing
// margins, and any failure reproduces bit-identically from the seed (the
// earlier wall-clock versions of these tests raced real goroutines against
// real lease TTLs and needed multi-second settle loops). The audits —
// exactly-once inventory moves, drained pipelines, rejoin at a higher
// epoch, Fsck cleanliness — live in the sim workloads themselves; see
// internal/sim/sweep.go.
package clusterchaos

import (
	"testing"

	"repro/internal/sim"
)

// requireScenario pins the seed→scenario derivation: if ScenarioFor ever
// changes shape, these tests must move to seeds that still exercise the
// chaos they were written for, not silently test something else.
func requireScenario(t *testing.T, seed int64, kind, workload string) {
	t.Helper()
	sc := sim.ScenarioFor(seed)
	if sc.Kind != kind || sc.Workload != workload {
		t.Fatalf("seed %d derives %s/%s, this test needs %s/%s — re-pin the seed",
			seed, sc.Kind, sc.Workload, kind, workload)
	}
}

// TestTravelWorkerKillKeepsReservationsExactlyOnce runs the paper's travel
// reservation workload across a three-worker pool and kills a worker
// mid-load. Each request books a distinct (hotel, flight) pair, so
// exactly-once is auditable per workflow: every booked hotel and flight
// ends at capacity-1 — a lost workflow leaves capacity, a duplicated one
// capacity-2 — and the cross-SSF transaction's invariant (hotel and flight
// move in lockstep) must survive the kill. The scenario also asserts that
// survivors actually stole the victim's partitions.
func TestTravelWorkerKillKeepsReservationsExactlyOnce(t *testing.T) {
	const seed = 3 // kill/travel under the random policy
	requireScenario(t, seed, "kill", "travel")
	if _, err := sim.RunSeed(seed, sim.RunOpts{Dir: t.TempDir()}); err != nil {
		t.Fatalf("%v\nreproduce: %s", err, sim.ReproLine(seed, "mem"))
	}
}

// TestOrdersWorkerKillDrainsPipelineExactlyOnce runs the event-driven order
// pipeline across a three-worker pool with queue-partition ownership
// following leases, kills a worker mid-load, and audits the pipeline's
// per-order counters: every order whose frontend intent landed is charged
// once, reserved once, shipped once and notified once — the killed worker's
// in-flight consumers and unacked messages included.
func TestOrdersWorkerKillDrainsPipelineExactlyOnce(t *testing.T) {
	const seed = 14 // kill/orders under the random policy
	requireScenario(t, seed, "kill", "orders")
	if _, err := sim.RunSeed(seed, sim.RunOpts{Dir: t.TempDir()}); err != nil {
		t.Fatalf("%v\nreproduce: %s", err, sim.ReproLine(seed, "mem"))
	}
}

// TestZombiePartitionHealsAndRejoins partitions a worker away (it stalls:
// no heartbeats, no collection, no polling), lets the pool declare it dead
// and steal its work, then heals the partition. The zombie must rejoin at a
// higher epoch via its own heartbeat pump, and the audit must show no lost
// or duplicated executions from the handover — in either direction. Runs on
// the WAL backend so the handover is also exercised over durable storage.
func TestZombiePartitionHealsAndRejoins(t *testing.T) {
	const seed = 4 // partition/travel under the random policy
	requireScenario(t, seed, "partition", "travel")
	if _, err := sim.RunSeed(seed, sim.RunOpts{Backend: "wal", Dir: t.TempDir()}); err != nil {
		t.Fatalf("%v\nreproduce: %s", err, sim.ReproLine(seed, "wal"))
	}
}
