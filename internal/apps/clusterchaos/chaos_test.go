// Package clusterchaos kills and partitions workers of a multi-worker pool
// under the travel and orders workloads, then audits the shared state for
// exactly-once: every workflow that registered an intent completes exactly
// once on some live worker, transactional invariants hold across the kill,
// and a recovered zombie's late writes land nowhere. These are the
// cluster-runtime analogues of the per-app crash sweeps: the failure unit
// is a whole worker (its platform, its collectors, its queue pollers), not
// one instance.
package clusterchaos

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/apps/orders"
	"repro/internal/apps/travel"
	"repro/internal/dynamo"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// waitQuiesced polls the shared intent tables until no workflow is pending
// on any of the given functions (or fails at the deadline).
func waitQuiesced(t *testing.T, store storage.Backend, fns []string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		pending := 0
		for _, fn := range fns {
			items, err := store.QueryIndex(fn+".intent", "pending", dynamo.S("1"), dynamo.QueryOpts{})
			if err != nil {
				t.Fatalf("pending probe %s: %v", fn, err)
			}
			pending += len(items)
		}
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d workflows still pending at deadline", pending)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// settleAndStart converges partition ownership deterministically, then
// launches every worker's background loops.
func settleAndStart(t *testing.T, pool []*beldi.ClusterWorker) {
	t.Helper()
	for round := 0; round < len(pool)+2; round++ {
		for _, w := range pool {
			if _, _, err := w.Worker().RebalanceOnce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, w := range pool {
		if len(w.Worker().OwnedPartitions()) == 0 {
			t.Fatalf("worker %d owns nothing after settling", i)
		}
		w.Start()
	}
}

// TestTravelWorkerKillKeepsReservationsExactlyOnce runs the paper's travel
// reservation workload across a three-worker pool and kills a random worker
// mid-load. Each request books a distinct (hotel, flight) pair, so
// exactly-once is auditable per workflow: every targeted hotel and flight
// must end at capacity-1 — a lost workflow leaves capacity, a duplicated
// one leaves capacity-2 — and the cross-SSF transaction's invariant (hotel
// and flight move in lockstep) must survive the kill.
func TestTravelWorkerKillKeepsReservationsExactlyOnce(t *testing.T) {
	store := storagetest.Open(t)
	c := beldi.MustOpenCluster(beldi.ClusterOptions{
		Store:      store,
		Partitions: 8,
		LeaseTTL:   100 * time.Millisecond,
		Config:     beldi.Config{RowCap: 8, T: 50 * time.Millisecond, LockRetryMax: 300},
	})
	const capacity = 50
	var pool []*beldi.ClusterWorker
	for i := 0; i < 3; i++ {
		w, err := c.JoinCluster(fmt.Sprintf("w%d", i), func(d *beldi.Deployment) {
			app := travel.Build(d)
			app.Capacity = capacity
		})
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, w)
	}
	defer func() {
		for _, w := range pool {
			w.Stop()
		}
	}()
	if _, err := pool[0].Invoke(travel.FnGeo, beldi.Map(map[string]beldi.Value{"op": beldi.Str("seed")})); err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{travel.FnRate, travel.FnRecommend, travel.FnProfile, travel.FnUser,
		travel.FnReserveHotel, travel.FnReserveFlight} {
		if _, err := pool[0].Invoke(fn, beldi.Map(map[string]beldi.Value{"op": beldi.Str("seed")})); err != nil {
			t.Fatal(err)
		}
	}
	settleAndStart(t, pool)

	rng := rand.New(rand.NewSource(7))
	victim := rng.Intn(3)
	const requests = 24
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := pool[i%3]
			req := beldi.Map(map[string]beldi.Value{
				"op":     beldi.Str("reserve"),
				"hotel":  beldi.Str(fmt.Sprintf("hotel-%03d", i)),
				"flight": beldi.Str(fmt.Sprintf("flight-%03d", i)),
			})
			w.Invoke(travel.FnFrontend, req) //nolint:errcheck // the killed worker's callers crash
		}(i)
		if i == requests/2 {
			pool[victim].Kill()
		}
	}
	wg.Wait()

	fns := []string{travel.FnFrontend, travel.FnSearch, travel.FnGeo, travel.FnRate, travel.FnRecommend,
		travel.FnUser, travel.FnProfile, travel.FnReserve, travel.FnReserveHotel, travel.FnReserveFlight}
	waitQuiesced(t, store, fns, 30*time.Second)

	// Audit through a survivor.
	auditor := pool[(victim+1)%3].Deployment()
	hotelRT := auditor.Runtime(travel.FnReserveHotel)
	flightRT := auditor.Runtime(travel.FnReserveFlight)
	for i := 0; i < requests; i++ {
		h, err := beldi.PeekState(hotelRT, "inventory", fmt.Sprintf("hotel-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		f, err := beldi.PeekState(flightRT, "inventory", fmt.Sprintf("flight-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if h.Int() != capacity-1 || f.Int() != capacity-1 {
			t.Errorf("request %d: hotel=%d flight=%d, want both %d (exactly one booking)",
				i, h.Int(), f.Int(), capacity-1)
		}
	}
	hot, err := travel.AuditInventory(auditor, travel.FnReserveHotel)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := travel.AuditInventory(auditor, travel.FnReserveFlight)
	if err != nil {
		t.Fatal(err)
	}
	if hot != fl {
		t.Errorf("inventories diverged across the kill: hotel=%d flight=%d", hot, fl)
	}
	if err := auditor.FsckAll(); err != nil {
		t.Errorf("fsck after kill recovery: %v", err)
	}
	steals := int64(0)
	for i, w := range pool {
		if i == victim {
			continue
		}
		steals += w.Worker().Stats().Steals.Load()
	}
	if steals == 0 {
		t.Error("no partitions stolen from the killed worker")
	}
}

// TestOrdersWorkerKillDrainsPipelineExactlyOnce runs the event-driven order
// pipeline across a three-worker pool with queue-partition ownership
// following leases, kills a random worker mid-load, and audits the
// pipeline's per-order counters: every order whose frontend intent landed
// is charged once, reserved once, shipped once and notified once — the
// killed worker's in-flight consumers and unacked messages included.
func TestOrdersWorkerKillDrainsPipelineExactlyOnce(t *testing.T) {
	store := storagetest.Open(t)
	evt := orders.DefaultEventOptions()
	c := beldi.MustOpenCluster(beldi.ClusterOptions{
		Store:        store,
		Partitions:   8,
		LeaseTTL:     100 * time.Millisecond,
		Config:       beldi.Config{RowCap: 8, T: 50 * time.Millisecond},
		DurableAsync: &evt,
	})
	var pool []*beldi.ClusterWorker
	var apps []*orders.App
	for i := 0; i < 3; i++ {
		var app *orders.App
		w, err := c.JoinCluster(fmt.Sprintf("w%d", i), func(d *beldi.Deployment) {
			app = orders.Build(d)
		})
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, w)
		apps = append(apps, app)
	}
	defer func() {
		for _, w := range pool {
			w.Stop()
		}
	}()
	if _, err := pool[0].Invoke(orders.FnInventory, beldi.Map(map[string]beldi.Value{"op": beldi.Str("seed")})); err != nil {
		t.Fatal(err)
	}
	settleAndStart(t, pool)

	rng := rand.New(rand.NewSource(11))
	victim := rng.Intn(3)
	const requests = 18
	type placed struct {
		order       string
		qty, amount int64
	}
	var reqs []placed
	for i := 0; i < requests; i++ {
		reqs = append(reqs, placed{
			order:  fmt.Sprintf("o-%04d", i),
			qty:    1 + int64(rng.Intn(3)),
			amount: 10 + int64(rng.Intn(90)),
		})
	}
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r placed) {
			defer wg.Done()
			w := pool[i%3]
			req := orders.PlaceRequest(r.order, orders.UserID(i%orders.NumUsers), orders.ItemID(i%orders.NumItems), r.qty, r.amount)
			w.Invoke(orders.FnFrontend, req) //nolint:errcheck // killed worker's callers crash
		}(i, r)
		if i == requests/2 {
			pool[victim].Kill()
		}
	}
	wg.Wait()

	// Quiesce: entry intents finish (via steal where needed), then the
	// queues drain through whichever workers own the consumer partitions,
	// then the consumers' own intents finish. Poll all three conditions.
	fns := []string{orders.FnFrontend, orders.FnPayment, orders.FnInventory, orders.FnShipping, orders.FnNotify}
	auditorIdx := (victim + 1) % 3
	deadline := time.Now().Add(30 * time.Second)
	for {
		pending := 0
		for _, fn := range fns {
			items, err := store.QueryIndex(fn+".intent", "pending", dynamo.S("1"), dynamo.QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			pending += len(items)
		}
		depth, err := pool[auditorIdx].Deployment().DurableAsync().Depth()
		if err != nil {
			t.Fatal(err)
		}
		if pending == 0 && depth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline not drained: %d intents pending, %d messages queued", pending, depth)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Audit: an order is in scope iff its frontend record exists (a client
	// call that died before the intent landed placed nothing — that is the
	// at-entry contract; everything past the intent is the pool's job).
	app := apps[auditorIdx]
	frontendRT := pool[auditorIdx].Deployment().Runtime(orders.FnFrontend)
	var inScope []placed
	for _, r := range reqs {
		rec, err := beldi.PeekState(frontendRT, "orders", r.order)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.IsNull() {
			inScope = append(inScope, r)
		}
	}
	if len(inScope) < requests/2 {
		t.Fatalf("only %d/%d orders placed; load generator broken", len(inScope), requests)
	}
	var ids []string
	var wantRevenue, wantStock int64
	for _, r := range inScope {
		ids = append(ids, r.order)
		wantRevenue += r.amount
		wantStock += r.qty
	}
	tot, err := app.Totals(ids)
	if err != nil {
		t.Fatal(err)
	}
	if tot.Revenue != wantRevenue || tot.StockSold != wantStock ||
		tot.PaidOrders != len(inScope) || tot.Shipments != len(inScope) ||
		tot.Notifications != int64(len(inScope)) {
		t.Errorf("pipeline totals diverged: got %+v, want revenue=%d stock=%d paid=ship=note=%d",
			tot, wantRevenue, wantStock, len(inScope))
	}
	if err := pool[auditorIdx].Deployment().FsckAll(); err != nil {
		t.Errorf("fsck after kill recovery: %v", err)
	}
}

// TestZombiePartitionHealsAndRejoins partitions a random worker away (it
// stalls: no heartbeats, no collection, no polling), lets the pool steal
// its work, then heals the partition. The zombie must rejoin at a higher
// epoch via its own heartbeat loop, earn partitions back, and the counters
// must show no lost or duplicated executions from the handover — in either
// direction.
func TestZombiePartitionHealsAndRejoins(t *testing.T) {
	store := storagetest.Open(t)
	c := beldi.MustOpenCluster(beldi.ClusterOptions{
		Store:      store,
		Partitions: 8,
		LeaseTTL:   80 * time.Millisecond,
		Config:     beldi.Config{T: 30 * time.Millisecond},
	})
	register := func(d *beldi.Deployment) {
		d.Function("counter", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
			key := in.Map()["key"].Str()
			v, err := e.Read("state", key)
			if err != nil {
				return beldi.Null, err
			}
			if err := e.Write("state", key, beldi.Int(v.Int()+1)); err != nil {
				return beldi.Null, err
			}
			return beldi.Null, nil
		}, "state")
	}
	var pool []*beldi.ClusterWorker
	for i := 0; i < 3; i++ {
		w, err := c.JoinCluster(fmt.Sprintf("w%d", i), register)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, w)
	}
	defer func() {
		for _, w := range pool {
			w.Stop()
		}
	}()
	settleAndStart(t, pool)

	rng := rand.New(rand.NewSource(3))
	zombie := rng.Intn(3)
	epochBefore := pool[zombie].Worker().Epoch()

	// Phase 1: load with the zombie partitioned away mid-stream.
	const requests = 20
	for i := 0; i < requests; i++ {
		if i == requests/2 {
			pool[zombie].Worker().Pause()
		}
		w := pool[(i+1)%3]
		if (i+1)%3 == zombie {
			w = pool[(i+2)%3] // clients route around the partitioned node
		}
		req := beldi.Map(map[string]beldi.Value{"key": beldi.Str(fmt.Sprintf("k%03d", i))})
		if _, err := w.Invoke("counter", req); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// The pool takes the zombie's lease and partitions.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ws, err := pool[(zombie+1)%3].Worker().Workers()
		if err != nil {
			t.Fatal(err)
		}
		dead := false
		for _, wi := range ws {
			if wi.ID == pool[zombie].Worker().ID() && wi.State == "dead" {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partitioned worker never declared dead")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: heal. The zombie's own loops discover the fencing and
	// rejoin at a higher epoch.
	pool[zombie].Worker().Resume()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if !pool[zombie].Worker().Fenced() && pool[zombie].Worker().Epoch() > epochBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("zombie did not rejoin (fenced=%v epoch=%d→%d)",
				pool[zombie].Worker().Fenced(), epochBefore, pool[zombie].Worker().Epoch())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 3: more load, through every worker including the healed one.
	for i := requests; i < 2*requests; i++ {
		req := beldi.Map(map[string]beldi.Value{"key": beldi.Str(fmt.Sprintf("k%03d", i))})
		if _, err := pool[i%3].Invoke("counter", req); err != nil {
			t.Fatalf("post-heal request %d: %v", i, err)
		}
	}
	waitQuiesced(t, store, []string{"counter"}, 10*time.Second)

	probe := pool[0].Deployment().Runtime("counter")
	for i := 0; i < 2*requests; i++ {
		v, err := beldi.PeekState(probe, "state", fmt.Sprintf("k%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if v.Int() != 1 {
			t.Errorf("key k%03d = %d, want exactly 1", i, v.Int())
		}
	}
	if err := pool[0].Deployment().FsckAll(); err != nil {
		t.Errorf("fsck after heal: %v", err)
	}
}
