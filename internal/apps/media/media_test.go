package media

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

func newDeployment(t *testing.T, mode beldi.Mode, faults platform.FaultPlan) (*beldi.Deployment, *App) {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{
		ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}, Faults: faults,
	})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: mode,
		Config: beldi.Config{RowCap: 8, T: 100 * time.Millisecond, ICMinAge: time.Millisecond},
	})
	app := Build(d)
	if err := app.Seed(); err != nil {
		t.Fatal(err)
	}
	return d, app
}

func composeReq(user, title string) beldi.Value {
	return beldi.Map(map[string]beldi.Value{
		"op":     beldi.Str("compose"),
		"user":   beldi.Str(user),
		"title":  beldi.Str(title),
		"text":   beldi.Str("  a fine film  "),
		"rating": beldi.Int(8),
	})
}

func TestComposeReviewPipeline(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi, nil)
	out, err := d.Invoke(FnFrontend, composeReq("user-001", MovieTitle(5)))
	if err != nil {
		t.Fatal(err)
	}
	reviewID := out.Str()
	if reviewID == "" {
		t.Fatalf("no review id: %v", out)
	}
	// The review is visible on the movie page, with sanitized text and the
	// resolved movie id.
	page, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("page"), "movie": beldi.Str(movieID(5)),
	}))
	if err != nil {
		t.Fatal(err)
	}
	reviews := page.Map()["reviews"].List()
	if len(reviews) != 1 {
		t.Fatalf("%d reviews on page", len(reviews))
	}
	rev := reviews[0].Map()
	if rev["id"].Str() != reviewID {
		t.Errorf("review id %v", rev["id"])
	}
	if rev["text"].Str() != "a fine film" {
		t.Errorf("text not sanitized: %q", rev["text"].Str())
	}
	if rev["movie"].Str() != movieID(5) {
		t.Errorf("movie id %v", rev["movie"])
	}
	// And on the user's review list.
	mine, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("userReviews"), "user": beldi.Str("user-001"),
	}))
	if err != nil || len(mine.List()) != 1 {
		t.Errorf("user reviews: %v %v", mine, err)
	}
}

func TestComposeRejectsUnknownUser(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi, nil)
	out, err := d.Invoke(FnFrontend, composeReq("nobody", MovieTitle(1)))
	if err != nil || out.Str() != "invalid-user" {
		t.Errorf("unknown user: %v %v", out, err)
	}
}

func TestMoviePageAssemblesAllParts(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi, nil)
	page, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("page"), "movie": beldi.Str(movieID(42)),
	}))
	if err != nil {
		t.Fatal(err)
	}
	m := page.Map()
	if m["info"].Map()["title"].Str() != MovieTitle(42) {
		t.Errorf("info = %v", m["info"])
	}
	if m["plot"].IsNull() || len(m["cast"].List()) != 2 {
		t.Errorf("plot/cast missing: %v / %v", m["plot"], m["cast"])
	}
}

func TestUniqueIDsSurviveCrashSweep(t *testing.T) {
	// The review counter is the paper's motivating "incrementing a counter
	// twice" hazard (§2.1): crash compose at several points; after
	// recovery exactly one review exists and the sequence advanced once.
	for _, n := range []int{2, 5, 9, 14} {
		plan := &platform.CrashNthOp{Function: FnFrontend, N: n}
		d, _ := newDeployment(t, beldi.ModeBeldi, plan)
		_, err := d.Invoke(FnFrontend, composeReq("user-002", MovieTitle(7)))
		if err != nil && !errors.Is(err, platform.ErrCrashed) && !errors.Is(err, platform.ErrTimeout) {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Drive recovery until the review shows on both reads (the page
		// update is a later step of the same workflow, so checking the
		// user's reviews alone can observe a restart that is still in
		// flight — slower backends in the matrix make that window real).
		deadline := time.Now().Add(5 * time.Second)
		var page beldi.Value
		for {
			if err := d.RunAllCollectors(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
			out, err := d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
				"op": beldi.Str("userReviews"), "user": beldi.Str("user-002"),
			}))
			if err == nil && len(out.List()) == 1 {
				page, err = d.Invoke(FnFrontend, beldi.Map(map[string]beldi.Value{
					"op": beldi.Str("page"), "movie": beldi.Str(movieID(7)),
				}))
				if err == nil && len(page.Map()["reviews"].List()) == 1 {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("n=%d: review never materialized on both reads (reviews=%v page=%v err=%v)", n, out, page, err)
			}
		}
		if got := len(page.Map()["reviews"].List()); got != 1 {
			t.Errorf("n=%d: %d reviews, want exactly 1", n, got)
		}
	}
}

func TestRegisterIsExactlyOnceClaim(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi, nil)
	req := beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("register"), "user": beldi.Str("newbie"),
		"name": beldi.Str("New User"), "password": beldi.Str("s3cret"),
	})
	out, err := d.Invoke(FnUser, req)
	if err != nil || !out.BoolVal() {
		t.Fatalf("first register: %v %v", out, err)
	}
	out, err = d.Invoke(FnUser, req)
	if err != nil || out.BoolVal() {
		t.Errorf("second register should fail: %v %v", out, err)
	}
}

func TestWorkloadMixAllModes(t *testing.T) {
	for _, mode := range []beldi.Mode{beldi.ModeBeldi, beldi.ModeCrossTable, beldi.ModeBaseline} {
		t.Run(mode.String(), func(t *testing.T) {
			d, app := newDeployment(t, mode, nil)
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 20; i++ {
				if _, err := d.Invoke(app.Entry(), app.Request(rng)); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
			}
		})
	}
}
