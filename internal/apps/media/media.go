// Package media is the paper's movie review service case study (§7.1,
// Appendix B Figure 23): a serverless port of DeathStarBench's media
// microservices. Users create accounts, read reviews, view movie pages
// (plot, cast, info) and write reviews and articles.
//
// The workflow (13 SSFs):
//
//	client → frontend → user ─┐
//	                  → text ─┤
//	                  → movie-id ─┼→ compose-review → review-storage
//	                  → unique-id ┘                 → user-review
//	                                                → movie-review
//	        frontend → page → {movie-info, plot, cast-info, movie-review → review-storage}
package media

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/beldi"
)

// Catalogue sizes.
const (
	NumMovies = 200
	NumUsers  = 500
)

// Function names.
const (
	FnFrontend      = "media-frontend"
	FnUser          = "media-user"
	FnText          = "media-text"
	FnMovieID       = "media-movie-id"
	FnUniqueID      = "media-unique-id"
	FnComposeReview = "media-compose-review"
	FnReviewStorage = "media-review-storage"
	FnUserReview    = "media-user-review"
	FnMovieReview   = "media-movie-review"
	FnPage          = "media-page"
	FnMovieInfo     = "media-movie-info"
	FnPlot          = "media-plot"
	FnCastInfo      = "media-cast-info"
)

// App wires the workflow.
type App struct {
	d *beldi.Deployment
}

// Build registers the thirteen SSFs.
func Build(d *beldi.Deployment) *App {
	a := &App{d: d}
	d.Function(FnUser, a.user, "users")
	d.Function(FnText, a.text)
	d.Function(FnMovieID, a.movieID, "titles")
	d.Function(FnUniqueID, a.uniqueID, "seq")
	d.Function(FnReviewStorage, a.reviewStorage, "reviews")
	d.Function(FnUserReview, a.userReview, "byuser")
	d.Function(FnMovieReview, a.movieReview, "bymovie")
	d.Function(FnComposeReview, a.composeReview)
	d.Function(FnMovieInfo, a.movieInfo, "info")
	d.Function(FnPlot, a.plot, "plots")
	d.Function(FnCastInfo, a.castInfo, "casts")
	d.Function(FnPage, a.page)
	d.Function(FnFrontend, a.frontend)
	return a
}

// Seed populates catalogue data.
func (a *App) Seed() error {
	for _, fn := range []string{FnUser, FnMovieID, FnMovieInfo, FnPlot, FnCastInfo} {
		if _, err := a.d.Invoke(fn, beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("seed"),
		})); err != nil {
			return fmt.Errorf("media: seeding %s: %w", fn, err)
		}
	}
	return nil
}

func movieID(i int) string { return fmt.Sprintf("movie-%04d", i) }
func userID(i int) string  { return fmt.Sprintf("user-%03d", i) }

// MovieTitle is the human title resolved by the movie-id SSF.
func MovieTitle(i int) string { return fmt.Sprintf("The Example Movie %d", i) }

// --- account / text / id SSFs ---------------------------------------------

func (a *App) user(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	switch m["op"].Str() {
	case "seed":
		for i := 0; i < NumUsers; i++ {
			u := beldi.Map(map[string]beldi.Value{
				"name":     beldi.Str(fmt.Sprintf("User %03d", i)),
				"password": beldi.Str(fmt.Sprintf("pw-%03d", i)),
			})
			if err := e.Write("users", userID(i), u); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	case "register":
		ok, err := e.CondWrite("users", m["user"].Str(),
			beldi.Map(map[string]beldi.Value{
				"name": m["name"], "password": m["password"],
			}),
			beldi.ValueAbsent())
		if err != nil {
			return beldi.Null, err
		}
		return beldi.BoolVal(ok), nil
	default: // validate
		u, err := e.Read("users", m["user"].Str())
		if err != nil {
			return beldi.Null, err
		}
		if u.IsNull() {
			return beldi.BoolVal(false), nil
		}
		return beldi.Map(map[string]beldi.Value{
			"valid": beldi.BoolVal(true),
			"user":  m["user"],
		}), nil
	}
}

// text sanitizes review text (pure compute: no state, still exactly-once by
// construction).
func (a *App) text(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	t := in.Map()["text"].Str()
	t = strings.TrimSpace(t)
	if len(t) > 512 {
		t = t[:512]
	}
	return beldi.Str(t), nil
}

// movieID resolves a title to the canonical id.
func (a *App) movieID(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if m["op"].Str() == "seed" {
		for i := 0; i < NumMovies; i++ {
			if err := e.Write("titles", MovieTitle(i), beldi.Str(movieID(i))); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	return e.Read("titles", m["title"].Str())
}

// uniqueID mints review ids from a persisted counter — the classic
// increment that must not double under re-execution.
func (a *App) uniqueID(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	n, err := e.Read("seq", "review")
	if err != nil {
		return beldi.Null, err
	}
	next := n.Int() + 1
	if err := e.Write("seq", "review", beldi.Int(next)); err != nil {
		return beldi.Null, err
	}
	return beldi.Str(fmt.Sprintf("review-%08d", next)), nil
}

// --- review pipeline -------------------------------------------------------

func (a *App) composeReview(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	review := beldi.Map(map[string]beldi.Value{
		"id":     m["reviewId"],
		"user":   m["user"],
		"movie":  m["movie"],
		"text":   m["text"],
		"rating": m["rating"],
	})
	if _, err := e.SyncInvoke(FnReviewStorage, beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("store"), "review": review,
	})); err != nil {
		return beldi.Null, err
	}
	// Index maintenance in both directions.
	if _, err := e.SyncInvoke(FnUserReview, beldi.Map(map[string]beldi.Value{
		"user": m["user"], "reviewId": m["reviewId"],
	})); err != nil {
		return beldi.Null, err
	}
	if _, err := e.SyncInvoke(FnMovieReview, beldi.Map(map[string]beldi.Value{
		"movie": m["movie"], "reviewId": m["reviewId"],
	})); err != nil {
		return beldi.Null, err
	}
	return m["reviewId"], nil
}

func (a *App) reviewStorage(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	switch m["op"].Str() {
	case "store":
		rev := m["review"]
		return beldi.Str("stored"), e.Write("reviews", rev.Map()["id"].Str(), rev)
	default: // fetch
		var out []beldi.Value
		for _, idv := range m["ids"].List() {
			r, err := e.Read("reviews", idv.Str())
			if err != nil {
				return beldi.Null, err
			}
			if !r.IsNull() {
				out = append(out, r)
			}
		}
		return beldi.List(out...), nil
	}
}

// appendCapped appends id to the list at key, keeping the newest limit ids.
func appendCapped(e *beldi.Env, table, key string, id beldi.Value, limit int) error {
	cur, err := e.Read(table, key)
	if err != nil {
		return err
	}
	ids := append([]beldi.Value{}, cur.List()...)
	ids = append(ids, id)
	if len(ids) > limit {
		ids = ids[len(ids)-limit:]
	}
	return e.Write(table, key, beldi.List(ids...))
}

func (a *App) userReview(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if m["op"].Str() == "list" {
		return e.Read("byuser", m["user"].Str())
	}
	return beldi.Str("ok"), appendCapped(e, "byuser", m["user"].Str(), m["reviewId"], 20)
}

func (a *App) movieReview(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if m["op"].Str() == "list" {
		ids, err := e.Read("bymovie", m["movie"].Str())
		if err != nil {
			return beldi.Null, err
		}
		return e.SyncInvoke(FnReviewStorage, beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("fetch"), "ids": ids,
		}))
	}
	return beldi.Str("ok"), appendCapped(e, "bymovie", m["movie"].Str(), m["reviewId"], 20)
}

// --- movie page ------------------------------------------------------------

func (a *App) movieInfo(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if m["op"].Str() == "seed" {
		for i := 0; i < NumMovies; i++ {
			info := beldi.Map(map[string]beldi.Value{
				"title": beldi.Str(MovieTitle(i)),
				"year":  beldi.Int(int64(1970 + i%55)),
			})
			if err := e.Write("info", movieID(i), info); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	return e.Read("info", m["movie"].Str())
}

func (a *App) plot(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if m["op"].Str() == "seed" {
		for i := 0; i < NumMovies; i++ {
			if err := e.Write("plots", movieID(i),
				beldi.Str(fmt.Sprintf("A thrilling plot for movie %d.", i))); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	return e.Read("plots", m["movie"].Str())
}

func (a *App) castInfo(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	if m["op"].Str() == "seed" {
		for i := 0; i < NumMovies; i++ {
			cast := beldi.List(
				beldi.Str(fmt.Sprintf("Actor %d", i%50)),
				beldi.Str(fmt.Sprintf("Actor %d", (i+7)%50)),
			)
			if err := e.Write("casts", movieID(i), cast); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Str("seeded"), nil
	}
	return e.Read("casts", m["movie"].Str())
}

// page assembles a movie page from four SSFs in parallel — the read path of
// Figure 23.
func (a *App) page(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	var info, plot, cast, reviews beldi.Value
	req := in
	err := e.Parallel(
		func(sub *beldi.Env) error {
			var err error
			info, err = sub.SyncInvoke(FnMovieInfo, req)
			return err
		},
		func(sub *beldi.Env) error {
			var err error
			plot, err = sub.SyncInvoke(FnPlot, req)
			return err
		},
		func(sub *beldi.Env) error {
			var err error
			cast, err = sub.SyncInvoke(FnCastInfo, req)
			return err
		},
		func(sub *beldi.Env) error {
			var err error
			reviews, err = sub.SyncInvoke(FnMovieReview, beldi.Map(map[string]beldi.Value{
				"op": beldi.Str("list"), "movie": req.Map()["movie"],
			}))
			return err
		},
	)
	if err != nil {
		return beldi.Null, err
	}
	return beldi.Map(map[string]beldi.Value{
		"info": info, "plot": plot, "cast": cast, "reviews": reviews,
	}), nil
}

// frontend routes client requests.
func (a *App) frontend(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	m := in.Map()
	switch m["op"].Str() {
	case "compose":
		// Validate the user, sanitize text, resolve the movie id and mint
		// the review id, then run the compose pipeline (Figure 23's write
		// path).
		valid, err := e.SyncInvoke(FnUser, beldi.Map(map[string]beldi.Value{
			"user": m["user"],
		}))
		if err != nil {
			return beldi.Null, err
		}
		if valid.Map() == nil { // the user SSF returns false for unknown users
			return beldi.Str("invalid-user"), nil
		}
		var text, movie, reviewID beldi.Value
		err = e.Parallel(
			func(sub *beldi.Env) error {
				var err error
				text, err = sub.SyncInvoke(FnText, in)
				return err
			},
			func(sub *beldi.Env) error {
				var err error
				movie, err = sub.SyncInvoke(FnMovieID, in)
				return err
			},
			func(sub *beldi.Env) error {
				var err error
				reviewID, err = sub.SyncInvoke(FnUniqueID, beldi.Null)
				return err
			},
		)
		if err != nil {
			return beldi.Null, err
		}
		return e.SyncInvoke(FnComposeReview, beldi.Map(map[string]beldi.Value{
			"reviewId": reviewID,
			"user":     m["user"],
			"movie":    movie,
			"text":     text,
			"rating":   m["rating"],
		}))
	case "page":
		return e.SyncInvoke(FnPage, in)
	case "userReviews":
		return e.SyncInvoke(FnUserReview, beldi.Map(map[string]beldi.Value{
			"op": beldi.Str("list"), "user": m["user"],
		}))
	default:
		return beldi.Null, fmt.Errorf("media: unknown op %q", m["op"].Str())
	}
}

// --- workload ---------------------------------------------------------------

// Entry returns the workflow's entry function.
func (a *App) Entry() string { return FnFrontend }

// Request draws from the media mix: mostly page views, some review
// composition and user-review listings.
func (a *App) Request(r *rand.Rand) beldi.Value {
	p := r.Float64()
	movie := r.Intn(NumMovies)
	switch {
	case p < 0.65:
		return beldi.Map(map[string]beldi.Value{
			"op":    beldi.Str("page"),
			"movie": beldi.Str(movieID(movie)),
		})
	case p < 0.80:
		return beldi.Map(map[string]beldi.Value{
			"op":   beldi.Str("userReviews"),
			"user": beldi.Str(userID(r.Intn(NumUsers))),
		})
	default:
		return beldi.Map(map[string]beldi.Value{
			"op":     beldi.Str("compose"),
			"user":   beldi.Str(userID(r.Intn(NumUsers))),
			"title":  beldi.Str(MovieTitle(movie)),
			"text":   beldi.Str("  An insightful review with trailing spaces.  "),
			"rating": beldi.Int(int64(1 + r.Intn(10))),
		})
	}
}
