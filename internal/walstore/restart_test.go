package walstore_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/apps/fanout"
	"repro/internal/apps/orders"
	"repro/internal/apps/travel"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/uuid"
	"repro/internal/walstore"
)

// These are the true restart-recovery tests the WAL backend exists for:
// each one runs a real application workflow on a walstore, kills an
// instance mid-flight with the fault injector, then DISCARDS every live
// object — store, platform, deployment, runtimes — without closing
// anything (a hard process exit leaves exactly the fsynced bytes). A brand
// new deployment reopens the directory cold, adopts the recovered tables,
// and the intent collectors finish every in-flight workflow exactly once.

// reopen discards nothing explicitly (the abandoned store stays
// unreferenced, as after a crash) and opens the directory cold.
func reopen(t *testing.T, dir string) *walstore.Store {
	t.Helper()
	s, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		t.Fatalf("reopen %s: %v", dir, err)
	}
	return s
}

// fsckDir closes the store and audits its directory.
func fsckDir(t *testing.T, s *walstore.Store, dir string) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := walstore.Fsck(dir); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

func newPlat(faults platform.FaultPlan, prefix string) *platform.Platform {
	return platform.New(platform.Options{
		ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: prefix}, Faults: faults,
	})
}

var restartCfg = beldi.Config{RowCap: 8, T: 50 * time.Millisecond, ICMinAge: time.Millisecond, LockRetryMax: 300}

// TestRestartRecoveryTravel: the reserve transaction is killed mid-flight;
// the reopened deployment's collectors finish it, and both inventories
// show exactly one booking, in lockstep.
func TestRestartRecoveryTravel(t *testing.T) {
	dir := t.TempDir()
	const capacity = 40

	// Phase 1: seed, then kill the entry SSF mid-workflow. (A crashed
	// callee would be retried synchronously by its live caller — §4.5 —
	// so the way to strand a workflow is to kill the instance the client
	// is talking to, leaving its intent pending with no live caller.)
	store1 := reopen(t, dir)
	fault := &platform.CrashNthOp{Function: travel.FnFrontend, N: 2}
	plat1 := newPlat(fault, "p1")
	d1 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store1, Platform: plat1, Config: restartCfg})
	app1 := travel.Build(d1)
	app1.Capacity = capacity
	if err := app1.Seed(); err != nil {
		t.Fatal(err)
	}
	req := beldi.Map(map[string]beldi.Value{
		"op": beldi.Str("reserve"), "hotel": beldi.Str("hotel-007"), "flight": beldi.Str("flight-003"),
	})
	if _, err := d1.Invoke(travel.FnFrontend, req); err == nil {
		t.Fatal("reservation survived the injected crash")
	}
	if !fault.Fired() {
		t.Fatal("fault never fired")
	}
	plat1.Drain() // quiesce in-flight instances; then hard-abandon everything

	// Phase 2: cold restart from the directory alone.
	store2 := reopen(t, dir)
	plat2 := newPlat(nil, "p2")
	d2 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store2, Platform: plat2, Config: restartCfg})
	travel.Build(d2) // no re-seed: the recovered tables are the state

	wantHotels := int64(travel.NumHotels*capacity) - 1
	wantFlights := int64(travel.NumFlights*capacity) - 1
	deadline := time.Now().Add(15 * time.Second)
	for {
		time.Sleep(2 * time.Millisecond)
		if err := d2.RunAllCollectors(); err != nil {
			t.Fatal(err)
		}
		plat2.Drain()
		hot, err := travel.AuditInventory(d2, travel.FnReserveHotel)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := travel.AuditInventory(d2, travel.FnReserveFlight)
		if err != nil {
			t.Fatal(err)
		}
		if hot == wantHotels && fl == wantFlights {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery never converged: hotels=%d (want %d) flights=%d (want %d)", hot, wantHotels, fl, wantFlights)
		}
	}
	// Converged state must be stable across further collection, and clean.
	if err := d2.RunAllCollectors(); err != nil {
		t.Fatal(err)
	}
	plat2.Drain()
	hot, _ := travel.AuditInventory(d2, travel.FnReserveHotel)
	fl, _ := travel.AuditInventory(d2, travel.FnReserveFlight)
	if hot != wantHotels || fl != wantFlights {
		t.Errorf("post-convergence drift: hotels=%d flights=%d", hot, fl)
	}
	if err := d2.FsckAll(); err != nil {
		t.Errorf("beldi fsck: %v", err)
	}
	fsckDir(t, store2, dir)
}

// TestRestartRecoveryOrders: the payment consumer dies right after its
// non-idempotent charge write; the broker's queue tables — backlog and
// in-flight claims included — come back from the WAL, and redelivery plus
// intent dedup finish the pipeline without double-charging.
func TestRestartRecoveryOrders(t *testing.T) {
	dir := t.TempDir()

	store1 := reopen(t, dir)
	plat1 := newPlat(nil, "p1")
	d1 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store1, Platform: plat1, Config: restartCfg})
	app1 := orders.Build(d1)
	da1 := d1.EnableDurableAsync(orders.DefaultEventOptions())
	if err := app1.Seed(); err != nil {
		t.Fatal(err)
	}
	fault := &platform.CrashOnce{Function: orders.FnPayment, Label: "write:post:0.000002"}
	plat1.SetFaults(fault)
	const id = "order-0000"
	if _, err := d1.Invoke(orders.FnFrontend, orders.PlaceRequest(id, orders.UserID(0), orders.ItemID(0), 2, 10)); err != nil {
		t.Fatal(err)
	}
	// Deliver until the payment consumer has crashed mid-handler, leaving
	// its message claimed but unacked. Then abandon the world.
	deadline := time.Now().Add(5 * time.Second)
	for !fault.Fired() {
		if _, _, err := da1.PollAll(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("payment crash never fired")
		}
	}
	plat1.Drain()

	store2 := reopen(t, dir)
	plat2 := newPlat(nil, "p2")
	d2 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store2, Platform: plat2, Config: restartCfg})
	app2 := orders.Build(d2)
	da2 := d2.EnableDurableAsync(orders.DefaultEventOptions())

	want := orders.Totals{Revenue: 10, StockSold: 2, PaidOrders: 1, Shipments: 1, Notifications: 1}
	deadline = time.Now().Add(15 * time.Second)
	for {
		if _, err := da2.Drain(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := d2.RunAllCollectors(); err != nil {
			t.Fatal(err)
		}
		plat2.Drain()
		got, err := app2.Totals([]string{id})
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never converged: %+v, want %+v", got, want)
		}
	}
	if err := d2.FsckAll(); err != nil {
		t.Errorf("beldi fsck: %v", err)
	}
	fsckDir(t, store2, dir)
}

// TestRestartRecoveryFanout: the map-reduce driver is killed mid-fan-in
// (awaiting durable promises); after the cold restart the collector replays
// the driver, whose promises resolve from the recovered mailbox cells or
// re-fired children, and the totals equal an undisturbed run's.
func TestRestartRecoveryFanout(t *testing.T) {
	job := fanout.Job{Docs: []fanout.Doc{
		{ID: "d0", Text: "the quick brown fox"},
		{ID: "d1", Text: "the lazy dog and the quick cat"},
		{ID: "d2", Text: "fox and dog, dog and fox!"},
		{ID: "d3", Text: "quick quick quick"},
	}}

	// The reference run on a throwaway in-memory deployment.
	dClean := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: dynamo.NewStore(), Platform: newPlat(nil, "clean"), Config: restartCfg,
	})
	cleanApp := fanout.Build(dClean)
	if _, err := cleanApp.Reduce.Invoke(job); err != nil {
		t.Fatal(err)
	}
	want, err := fanout.Totals(dClean)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store1 := reopen(t, dir)
	plat1 := newPlat(&platform.CrashNthOp{Function: fanout.FnReduce, N: 14}, "p1")
	d1 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store1, Platform: plat1, Config: restartCfg})
	app1 := fanout.Build(d1)
	if _, err := app1.Reduce.Invoke(job); err == nil {
		t.Fatal("reduce survived the injected crash")
	}
	plat1.Drain()

	store2 := reopen(t, dir)
	plat2 := newPlat(nil, "p2")
	d2 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store2, Platform: plat2, Config: restartCfg})
	fanout.Build(d2)

	deadline := time.Now().Add(15 * time.Second)
	for {
		time.Sleep(2 * time.Millisecond)
		if err := d2.RunAllCollectors(); err != nil {
			t.Fatal(err)
		}
		plat2.Drain()
		got, err := fanout.Totals(d2)
		if err != nil {
			t.Fatal(err)
		}
		if mapsEqual(got, want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("totals never converged: got %v want %v", got, want)
		}
	}
	if err := d2.RunAllCollectors(); err != nil {
		t.Fatal(err)
	}
	plat2.Drain()
	got, err := fanout.Totals(d2)
	if err != nil || !mapsEqual(got, want) {
		t.Errorf("post-convergence drift: %v (%v), want %v", got, err, want)
	}
	if err := d2.FsckAll(); err != nil {
		t.Errorf("beldi fsck: %v", err)
	}
	fsckDir(t, store2, dir)
}

func mapsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestRestartAdoptionIsIdempotent: reopening and rebuilding the same
// deployment twice with no work in between must not disturb state (table
// adoption, not re-creation).
func TestRestartAdoptionIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	store1 := reopen(t, dir)
	d1 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store1, Platform: newPlat(nil, "p1"), Config: restartCfg})
	d1.Function("counter", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		v, err := e.Read("state", "n")
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(v.Int() + 1)
		return next, e.Write("state", "n", next)
	}, "state")
	if out, err := d1.Invoke("counter", beldi.Null); err != nil || out.Int() != 1 {
		t.Fatalf("first run: %v %v", out, err)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 2; round <= 4; round++ {
		s := reopen(t, dir)
		d := beldi.NewDeployment(beldi.DeploymentOptions{Store: s, Platform: newPlat(nil, fmt.Sprintf("p%d", round)), Config: restartCfg})
		d.Function("counter", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
			v, err := e.Read("state", "n")
			if err != nil {
				return beldi.Null, err
			}
			next := beldi.Int(v.Int() + 1)
			return next, e.Write("state", "n", next)
		}, "state")
		out, err := d.Invoke("counter", beldi.Null)
		if err != nil || out.Int() != int64(round) {
			t.Fatalf("round %d: %v %v", round, out, err)
		}
		if err := d.FsckAll(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := walstore.Fsck(dir); err != nil {
		t.Error(err)
	}
}

// TestRestartRejectsMismatchedAdoption: reopening a directory written by
// one runtime mode with a deployment in another must fail loudly at
// registration — the surviving tables have the wrong layout for the new
// mode's protocol — rather than silently running on them.
func TestRestartRejectsMismatchedAdoption(t *testing.T) {
	dir := t.TempDir()
	store1 := reopen(t, dir)
	d1 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store1, Platform: newPlat(nil, "p1"), Config: restartCfg, Mode: beldi.ModeBeldi})
	body := func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return beldi.Int(1), e.Write("state", "k", beldi.Int(1))
	}
	d1.Function("fn", body, "state")
	if _, err := d1.Invoke("fn", beldi.Null); err != nil {
		t.Fatal(err)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := reopen(t, dir)
	defer store2.Close()
	d2 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store2, Platform: newPlat(nil, "p2"), Config: restartCfg, Mode: beldi.ModeCrossTable})
	defer func() {
		if recover() == nil {
			t.Error("cross-table deployment adopted Beldi-mode DAAL tables without complaint")
		}
	}()
	d2.Function("fn", body, "state")
}

// TestRestartWithPendingIntentOnly: the narrowest slice of the story — a
// crashed two-step workflow whose only trace is the WAL directory must be
// finished exactly once by a collector that never saw the first process.
func TestRestartWithPendingIntentOnly(t *testing.T) {
	dir := t.TempDir()
	store1 := reopen(t, dir)
	plan := &platform.CrashOnce{Function: "front", Label: "body:done"}
	plat1 := newPlat(plan, "p1")
	d1 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store1, Platform: plat1, Config: restartCfg})
	register := func(d *beldi.Deployment) {
		d.Function("charge", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
			v, err := e.Read("ledger", "total")
			if err != nil {
				return beldi.Null, err
			}
			next := beldi.Int(v.Int() + in.Int())
			return next, e.Write("ledger", "total", next)
		}, "ledger")
		d.Function("front", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
			total, err := e.SyncInvoke("charge", beldi.Int(42))
			if err != nil {
				return beldi.Null, err
			}
			return total, e.Write("orders", "last", total)
		}, "orders")
	}
	register(d1)
	if _, err := d1.Invoke("front", beldi.Null); err == nil {
		t.Fatal("front survived the injected crash")
	} else if !errors.Is(err, platform.ErrCrashed) {
		t.Fatalf("unexpected error: %v", err)
	}
	if !plan.Fired() {
		t.Fatal("fault never fired")
	}
	plat1.Drain()
	// The money moved before the crash; the caller's write did not.
	if v, err := beldi.PeekState(d1.Runtime("charge"), "ledger", "total"); err != nil || v.Int() != 42 {
		t.Fatalf("pre-crash ledger = %v (%v)", v, err)
	}

	store2 := reopen(t, dir)
	plat2 := newPlat(nil, "p2")
	d2 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store2, Platform: plat2, Config: restartCfg})
	register(d2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		time.Sleep(2 * time.Millisecond)
		if err := d2.RunAllCollectors(); err != nil {
			t.Fatal(err)
		}
		plat2.Drain()
		last, err := beldi.PeekState(d2.Runtime("front"), "orders", "last")
		if err != nil {
			t.Fatal(err)
		}
		if !last.IsNull() {
			if last.Int() != 42 {
				t.Fatalf("last = %v, want 42", last)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("collector never finished the recovered intent")
		}
	}
	if v, _ := beldi.PeekState(d2.Runtime("charge"), "ledger", "total"); v.Int() != 42 {
		t.Errorf("ledger = %v after recovery, want 42 (exactly once)", v)
	}
	if err := d2.FsckAll(); err != nil {
		t.Errorf("beldi fsck: %v", err)
	}
	fsckDir(t, store2, dir)
}
