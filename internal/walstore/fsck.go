package walstore

import (
	"fmt"
	"os"
	"path/filepath"
)

// Fsck audits a store directory offline: every snapshot present must decode
// (CRC included), every WAL segment must contain only whole, CRC-valid,
// sequence-continuous records, and replaying the tail over the newest
// snapshot must succeed. A nil error means the directory recovers
// losslessly — the state Open leaves behind after repairing a torn tail.
// Run it on a closed (or quiescent) directory.
func Fsck(dir string) error {
	snapNames, _, err := listSeqFiles(dir, snapPrefix, snapSuffix)
	if err != nil {
		return fmt.Errorf("walstore: fsck %s: %w", dir, err)
	}
	// Snapshots are written via fsync+rename, so every one that made it to
	// its final name must be readable; a corrupt one is a durability bug.
	for _, name := range snapNames {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("walstore: fsck %s: %w", dir, err)
		}
		if _, _, _, err := decodeSnapshot(data, 0); err != nil {
			return fmt.Errorf("walstore: fsck %s: snapshot %s: %w", dir, name, err)
		}
	}

	snapSeq, schemas, mem, _, err := loadNewestSnapshot(dir, 0)
	if err != nil {
		return fmt.Errorf("walstore: fsck %s: %w", dir, err)
	}
	replayer := &Store{mem: mem, schemas: schemas}

	segNames, segSeqs, err := listSeqFiles(dir, segPrefix, segSuffix)
	if err != nil {
		return fmt.Errorf("walstore: fsck %s: %w", dir, err)
	}
	lastSeq := snapSeq
	for i, name := range segNames {
		first := segSeqs[i]
		covered := i+1 < len(segNames) && segSeqs[i+1] <= snapSeq+1
		if !covered && first > lastSeq+1 && first > snapSeq+1 {
			return fmt.Errorf("walstore: fsck %s: missing segment before %s (have seq %d)", dir, name, lastSeq)
		}
		apply := func(r record) error { return replayer.applyRecord(r) }
		if covered {
			apply = nil // validated, but predates the snapshot
		}
		_, segLast, corrupt, err := scanSegment(filepath.Join(dir, name), first, snapSeq, apply)
		if err != nil {
			return fmt.Errorf("walstore: fsck %s: %w", dir, err)
		}
		if corrupt != nil {
			return fmt.Errorf("walstore: fsck %s: segment %s: %v", dir, name, corrupt)
		}
		if !covered && segLast > lastSeq {
			lastSeq = segLast
		}
	}
	return nil
}
