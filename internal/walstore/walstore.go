// Package walstore is the durable storage backend: the same linearizable,
// conditional-write NoSQL surface as internal/dynamo (it implements
// storage.Backend), with every committed mutation journaled to a segmented,
// CRC-checked write-ahead log on disk before the operation returns.
//
// The design is log-structured state-machine replication onto the local
// filesystem, the shape Netherite ("Serverless Workflows with Durable
// Functions and Netherite") uses per partition:
//
//   - Reads are served from an in-memory materialized store (an
//     internal/dynamo.Store used as the memtable).
//   - Conditional mutations evaluate their condition against the memtable
//     under a single commit mutex, and — only when they actually commit —
//     append a logical record (post-image puts, deletes, update
//     expressions; conditions are never journaled, they were already
//     decided) to the WAL in exactly commit order.
//   - Durability waits are group-committed: the first waiter fsyncs once
//     for every record appended so far and later waiters batch behind it
//     (Options.Sync selects batched, per-record, or no fsync), amortizing
//     the dominant cost of the write path the way the in-memory store's
//     group-commit batcher amortizes its latch-and-flush.
//   - Snapshots compact the log: a full image of the store is durably
//     written, the log rotates, and older segments are deleted.
//   - Open replays newest-snapshot + WAL tail, truncating at the first
//     torn or corrupt record — recovery to the last durable prefix — so a
//     Beldi deployment reopened over the directory finds its intent
//     tables, logs and DAAL chains exactly as they committed, and the
//     intent collector finishes every in-flight workflow exactly once.
//
// Fsck audits a (closed) directory: snapshot integrity, per-record CRCs,
// and sequence continuity.
package walstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/dynamo"
	"repro/internal/hist"
	"repro/internal/storage"
)

// SyncPolicy selects when committed records are fsynced.
type SyncPolicy int

const (
	// SyncBatched (the default) group-commits fsyncs: one flush covers
	// every record appended since the previous flush.
	SyncBatched SyncPolicy = iota
	// SyncEach fsyncs once per committed record — batching off, the
	// unamortized baseline.
	SyncEach
	// SyncNone never fsyncs on commit (the OS page cache is the only
	// durability); Close still flushes. For tests and benchmarks.
	SyncNone
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatched:
		return "batched"
	case SyncEach:
		return "each"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configure Open.
type Options struct {
	// SegmentBytes caps a WAL segment before rotation. 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// AutoCompactBytes triggers a snapshot + log compaction after this many
	// WAL bytes accumulate past the last snapshot. 0 means
	// DefaultAutoCompactBytes; negative disables auto-compaction (Compact
	// still works).
	AutoCompactBytes int64
	// Sync selects the fsync policy for committed records.
	Sync SyncPolicy
	// Shards is the memtable's default per-table shard count (the same
	// knob as dynamo.WithShards). 0 means 1.
	Shards int
	// Hooks inject deterministic write/sync failures; tests only.
	Hooks *Hooks
}

// Defaults for Options zero values.
const (
	DefaultSegmentBytes     = 4 << 20
	DefaultAutoCompactBytes = 64 << 20
)

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.AutoCompactBytes == 0 {
		o.AutoCompactBytes = DefaultAutoCompactBytes
	}
	return o
}

// Hooks inject deterministic faults into the WAL write path, for the
// crash-matrix tests.
type Hooks struct {
	// BeforeAppend inspects every record about to be appended (seq, current
	// file offset, full frame). Returning nil writes the frame unchanged; a
	// non-nil result is written in its place — truncated or bit-flipped —
	// and the store is poisoned, simulating a process killed mid-write.
	BeforeAppend func(seq uint64, off int64, frame []byte) []byte
	// SyncErr, when non-nil, can fail an fsync; a non-nil error poisons the
	// store.
	SyncErr func() error
}

// Stats count WAL activity. All fields are updated atomically and may be
// read while the store is live.
type Stats struct {
	// Records and BytesAppended count framed records appended to the log.
	Records       atomic.Int64
	BytesAppended atomic.Int64
	// Fsyncs counts file syncs (commit path, rotation, close). SyncBatches
	// counts commit-path fsyncs that advanced the durable watermark, and
	// BatchedRecords the records they made durable; their ratio is the
	// group-commit amortization factor.
	Fsyncs         atomic.Int64
	SyncBatches    atomic.Int64
	BatchedRecords atomic.Int64
	// Segments counts rotations; Snapshots counts completed compactions.
	Segments  atomic.Int64
	Snapshots atomic.Int64
	// RecoveredRecords is the number of log records replayed by Open;
	// TruncatedBytes the tail bytes discarded as torn or corrupt.
	RecoveredRecords atomic.Int64
	TruncatedBytes   atomic.Int64
}

// StatsView is a point-in-time copy for reporting — the common snapshot
// shape shared with core.Stats, dynamo.Metrics, and the other subsystems.
type StatsView struct {
	Records, BytesAppended              int64
	Fsyncs, SyncBatches, BatchedRecords int64
	Segments, Snapshots                 int64
	RecoveredRecords, TruncatedBytes    int64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsView {
	return StatsView{
		Records:          s.Records.Load(),
		BytesAppended:    s.BytesAppended.Load(),
		Fsyncs:           s.Fsyncs.Load(),
		SyncBatches:      s.SyncBatches.Load(),
		BatchedRecords:   s.BatchedRecords.Load(),
		Segments:         s.Segments.Load(),
		Snapshots:        s.Snapshots.Load(),
		RecoveredRecords: s.RecoveredRecords.Load(),
		TruncatedBytes:   s.TruncatedBytes.Load(),
	}
}

// Store is the WAL-backed storage backend. It is safe for concurrent use.
// Reads go straight to the in-memory materialized state; mutations are
// serialized by a commit mutex (condition evaluation, memtable apply, and
// log append form one atomic step, so log order equals commit order) and
// return once their record is durable per the sync policy.
type Store struct {
	dir  string
	opts Options

	logMu     sync.Mutex // serializes mutations: apply + append + (auto)compact
	mem       *dynamo.Store
	schemas   map[string]dynamo.Schema
	seq       uint64 // last assigned record sequence
	sinceSnap int64  // WAL bytes appended since the last snapshot
	closed    bool

	w     *walWriter
	stats Stats

	// watch is this backend's commit-stream hub. Notifications fire after
	// waitDurable returns — the post-fsync point — never at memtable apply:
	// a subscriber of a durable backend must not wake for a write that a
	// crash could still erase. (The memtable's own hub has no subscribers;
	// consumers hold the walstore Backend and Watch through it.)
	watch *dynamo.WatchHub
}

var _ storage.Backend = (*Store)(nil)
var _ storage.Watcher = (*Store)(nil)

// Open opens (creating if needed) the store rooted at dir, recovering the
// newest snapshot plus the WAL tail. Torn or corrupt tail records — a
// process killed mid-write — are discarded and the log is repaired to the
// last durable prefix.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}
	s.w = newWALWriter(dir, opts, &s.stats)
	s.watch = dynamo.NewWatchHub(nil)

	snapSeq, schemas, mem, _, err := loadNewestSnapshot(dir, opts.Shards)
	if err != nil {
		return nil, fmt.Errorf("walstore: open %s: %w", dir, err)
	}
	s.mem = mem
	s.schemas = schemas
	s.seq = snapSeq

	segNames, segSeqs, err := listSeqFiles(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, fmt.Errorf("walstore: open %s: %w", dir, err)
	}
	// Replay every segment holding records past the snapshot, in order.
	// The first torn/corrupt record ends the durable prefix: the segment is
	// truncated there and any later segments (which could only hold records
	// past the damage) are deleted.
	var tailFirst uint64
	var tailSize int64
	for i, name := range segNames {
		first := segSeqs[i]
		if i+1 < len(segNames) && segSeqs[i+1] <= snapSeq+1 {
			continue // entirely covered by the snapshot; compaction leftovers
		}
		if first != 0 && first > s.seq+1 {
			return nil, fmt.Errorf("walstore: open %s: missing segment before %s (have seq %d)", dir, name, s.seq)
		}
		path := filepath.Join(dir, name)
		validEnd, lastSeq, corrupt, err := scanSegment(path, first, snapSeq, func(r record) error {
			s.stats.RecoveredRecords.Add(1)
			return s.applyRecord(r)
		})
		if err != nil {
			return nil, fmt.Errorf("walstore: open %s: replay %s: %w", dir, name, err)
		}
		if lastSeq > s.seq {
			s.seq = lastSeq
		}
		tailFirst, tailSize = first, validEnd
		if corrupt != nil {
			fi, _ := os.Stat(path)
			if fi != nil {
				s.stats.TruncatedBytes.Add(fi.Size() - validEnd)
			}
			if err := os.Truncate(path, validEnd); err != nil {
				return nil, fmt.Errorf("walstore: open %s: repair %s: %w", dir, name, err)
			}
			for _, later := range segNames[i+1:] {
				if err := os.Remove(filepath.Join(dir, later)); err != nil {
					return nil, fmt.Errorf("walstore: open %s: discard %s: %w", dir, later, err)
				}
			}
			syncDir(dir)
			break
		}
	}
	if err := s.w.openTail(tailFirst, s.seq, tailSize); err != nil {
		return nil, fmt.Errorf("walstore: open %s: %w", dir, err)
	}
	return s, nil
}

// MustOpen is Open, panicking on error; for setup code.
func MustOpen(dir string, opts Options) *Store {
	s, err := Open(dir, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// applyRecord applies one replayed record to the memtable.
func (s *Store) applyRecord(r record) error {
	switch r.typ {
	case recCreateTable:
		if err := s.mem.CreateTable(r.schema); err != nil {
			return err
		}
		s.schemas[r.schema.Name] = r.schema
		return nil
	case recDeleteTable:
		if err := s.mem.DeleteTable(r.name); err != nil {
			return err
		}
		delete(s.schemas, r.name)
		return nil
	case recCommit:
		for _, o := range r.ops {
			var err error
			switch o.kind {
			case opPut:
				err = s.mem.Put(o.table, o.item, nil)
			case opDelete:
				err = s.mem.Delete(o.table, o.key, nil)
			case opUpdate:
				ups := make([]dynamo.Update, len(o.updates))
				for i, d := range o.updates {
					if ups[i], err = dynamo.UpdateFromDesc(d); err != nil {
						return err
					}
				}
				err = s.mem.Update(o.table, o.key, nil, ups...)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("walstore: unknown record type %d", r.typ)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// WAL exposes the store's WAL activity counters.
func (s *Store) WAL() *Stats { return &s.stats }

// SetFsyncHistogram observes every tail-segment fsync's duration in h —
// telemetry's "wal.fsync" latency distribution. Pass nil to detach.
func (s *Store) SetFsyncHistogram(h *hist.Histogram) { s.w.fsyncHist.Store(h) }

// DynamoStore returns the in-memory materialized state, which is where the
// backend's traffic metrics live (storage.AsDynamo unwraps through this).
func (s *Store) DynamoStore() *dynamo.Store { return s.mem }

// Metrics exposes the backend's traffic counters. Recovery replay and
// snapshot scans count here too (they are real work the backend performs).
func (s *Store) Metrics() *dynamo.Metrics { return s.mem.Metrics() }

// Close flushes and closes the log. The store must not be used afterwards.
func (s *Store) Close() error {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.watch.CloseAll()
	return s.w.close()
}

// errClosed reports use-after-Close.
var errClosed = fmt.Errorf("walstore: store is closed")

// logAndWait appends rec under logMu (already held), releases it, and waits
// for durability. It also triggers auto-compaction at the configured
// threshold. Callers must not hold logMu after this returns.
func (s *Store) logAndWait(rec record) error {
	frame := encodeFrame(rec)
	if err := s.w.append(rec.seq, frame); err != nil {
		s.logMu.Unlock()
		return err
	}
	s.sinceSnap += int64(len(frame))
	if s.opts.AutoCompactBytes > 0 && s.sinceSnap > s.opts.AutoCompactBytes {
		if err := s.compactLocked(); err != nil {
			s.logMu.Unlock()
			return err
		}
	}
	seq := rec.seq
	s.logMu.Unlock()
	return s.w.waitDurable(seq)
}

// mutate runs apply (a memtable mutation) and, when it commits, journals
// rec and waits for durability. Condition failures and validation errors
// surface without touching the log.
func (s *Store) mutate(apply func() error, mkRec func(seq uint64) record) error {
	s.logMu.Lock()
	if s.closed {
		s.logMu.Unlock()
		return errClosed
	}
	if err := s.w.sticky(); err != nil {
		s.logMu.Unlock()
		return err
	}
	if err := apply(); err != nil {
		s.logMu.Unlock()
		return err
	}
	s.seq++
	rec := mkRec(s.seq)
	notes := s.watchNotesLocked(rec)
	if err := s.logAndWait(rec); err != nil {
		return err
	}
	for _, n := range notes {
		s.watch.Notify(n.table, n.hash)
	}
	return nil
}

// watchNote is one pending commit notification, resolved under logMu (the
// schema map is needed to find a put's hash-key value) and fired after the
// record's fsync.
type watchNote struct {
	table string
	hash  dynamo.Value
}

// watchNotesLocked extracts the commit notifications a record will owe once
// durable. Caller holds logMu. Returns nil (no allocation) when nobody
// watches.
func (s *Store) watchNotesLocked(rec record) []watchNote {
	if !s.watch.Active() || rec.typ != recCommit {
		return nil
	}
	notes := make([]watchNote, 0, len(rec.ops))
	for _, o := range rec.ops {
		switch o.kind {
		case opPut:
			sch, ok := s.schemas[o.table]
			if !ok {
				continue
			}
			notes = append(notes, watchNote{table: o.table, hash: o.item[sch.HashKey]})
		default:
			notes = append(notes, watchNote{table: o.table, hash: o.key.Hash})
		}
	}
	return notes
}

// Watch subscribes to table's commit stream; events fire only after the
// write that caused them is durable on disk (post-fsync), so a wakeup never
// precedes the durability the backend's write return promises.
func (s *Store) Watch(table string, hash dynamo.Value) (dynamo.Subscription, error) {
	if _, err := s.mem.TableSchema(table); err != nil {
		return nil, err
	}
	return s.watch.Subscribe(table, hash), nil
}

// CreateTable registers a new table.
func (s *Store) CreateTable(schema dynamo.Schema) error {
	return s.mutate(
		func() error { return s.mem.CreateTable(schema) },
		func(seq uint64) record {
			s.schemas[schema.Name] = schema
			return record{seq: seq, typ: recCreateTable, schema: schema}
		},
	)
}

// MustCreateTable is CreateTable, panicking on error; for setup code.
func (s *Store) MustCreateTable(schema dynamo.Schema) {
	if err := s.CreateTable(schema); err != nil {
		panic(err)
	}
}

// DeleteTable drops a table and its data.
func (s *Store) DeleteTable(name string) error {
	return s.mutate(
		func() error { return s.mem.DeleteTable(name) },
		func(seq uint64) record {
			delete(s.schemas, name)
			return record{seq: seq, typ: recDeleteTable, name: name}
		},
	)
}

// Put installs item if cond holds, journaling the post-image.
func (s *Store) Put(table string, item dynamo.Item, cond dynamo.Cond) error {
	return s.mutate(
		func() error { return s.mem.Put(table, item, cond) },
		func(seq uint64) record {
			return record{seq: seq, typ: recCommit, ops: []walOp{{kind: opPut, table: table, item: item}}}
		},
	)
}

// Update applies update actions if cond holds, journaling the update
// expression (replayed deterministically against the same base state).
func (s *Store) Update(table string, key dynamo.Key, cond dynamo.Cond, updates ...dynamo.Update) error {
	descs := make([]dynamo.UpdateDesc, len(updates))
	for i, u := range updates {
		d, ok := dynamo.DescribeUpdate(u)
		if !ok {
			return fmt.Errorf("walstore: Update: non-serializable update %s", u)
		}
		descs[i] = d
	}
	return s.mutate(
		func() error { return s.mem.Update(table, key, cond, updates...) },
		func(seq uint64) record {
			return record{seq: seq, typ: recCommit, ops: []walOp{{kind: opUpdate, table: table, key: key, updates: descs}}}
		},
	)
}

// Delete removes the row at key if cond holds.
func (s *Store) Delete(table string, key dynamo.Key, cond dynamo.Cond) error {
	return s.mutate(
		func() error { return s.mem.Delete(table, key, cond) },
		func(seq uint64) record {
			return record{seq: seq, typ: recCommit, ops: []walOp{{kind: opDelete, table: table, key: key}}}
		},
	)
}

// TransactWrite applies all ops atomically or none. A committed transaction
// is journaled as one record, so recovery replays it all-or-nothing too.
func (s *Store) TransactWrite(ops []dynamo.TxOp) error {
	if len(ops) == 0 {
		return nil
	}
	walOps := make([]walOp, 0, len(ops))
	for _, op := range ops {
		switch {
		case op.Check:
			// Condition checks write nothing, so recovery has nothing to
			// replay for them; only the mutating ops are journaled.
			continue
		case op.Put != nil:
			walOps = append(walOps, walOp{kind: opPut, table: op.Table, item: op.Put})
		case op.Delete:
			walOps = append(walOps, walOp{kind: opDelete, table: op.Table, key: op.Key})
		default:
			descs := make([]dynamo.UpdateDesc, len(op.Updates))
			for j, u := range op.Updates {
				d, ok := dynamo.DescribeUpdate(u)
				if !ok {
					return fmt.Errorf("walstore: TransactWrite: non-serializable update %s", u)
				}
				descs[j] = d
			}
			walOps = append(walOps, walOp{kind: opUpdate, table: op.Table, key: op.Key, updates: descs})
		}
	}
	return s.mutate(
		func() error { return s.mem.TransactWrite(ops) },
		func(seq uint64) record { return record{seq: seq, typ: recCommit, ops: walOps} },
	)
}

// Compact writes a durable snapshot of the whole store, rotates the log,
// and deletes every older segment and snapshot.
func (s *Store) Compact() error {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		return errClosed
	}
	if err := s.w.sticky(); err != nil {
		return err
	}
	return s.compactLocked()
}

// compactLocked is Compact under an already-held logMu.
func (s *Store) compactLocked() error {
	data, err := encodeSnapshot(s.seq, s.schemas, s.mem)
	if err != nil {
		return err
	}
	if err := writeSnapshotFile(s.dir, s.seq, data); err != nil {
		return s.w.fail(err)
	}
	// Rotate so the tail segment starts past the snapshot; then every other
	// segment is fully covered and can go. When the tail already starts
	// there — a repeated Compact with no commits in between, or a
	// reopened directory compacted just before close — the segment to
	// rotate to is the (empty) tail itself, so rotation is skipped.
	if s.w.firstSeq != s.seq+1 {
		if err := s.w.rotate(s.seq + 1); err != nil {
			return s.w.fail(err)
		}
	}
	segNames, _, err := listSeqFiles(s.dir, segPrefix, segSuffix)
	if err != nil {
		return err
	}
	for _, name := range segNames {
		if name != segName(s.seq+1) {
			_ = os.Remove(filepath.Join(s.dir, name))
		}
	}
	snapNames, _, err := listSeqFiles(s.dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	for _, name := range snapNames {
		if name != snapName(s.seq) {
			_ = os.Remove(filepath.Join(s.dir, name))
		}
	}
	syncDir(s.dir)
	s.sinceSnap = 0
	s.stats.Snapshots.Add(1)
	return nil
}

// --- read path: straight to the materialized state ---

// readGuard fails reads on a poisoned store. A mutation whose memtable
// apply succeeded but whose log append or fsync failed has left the
// in-memory state ahead of the durable log; serving such state would hand
// callers rows that were reported as errors and will vanish at the next
// Open, so once the WAL is broken the whole store is.
func (s *Store) readGuard() error { return s.w.sticky() }

// Get returns a deep copy of the item at key.
func (s *Store) Get(table string, key dynamo.Key) (dynamo.Item, bool, error) {
	if err := s.readGuard(); err != nil {
		return nil, false, err
	}
	return s.mem.Get(table, key)
}

// GetProj is Get with a server-side projection.
func (s *Store) GetProj(table string, key dynamo.Key, proj []dynamo.Path) (dynamo.Item, bool, error) {
	if err := s.readGuard(); err != nil {
		return nil, false, err
	}
	return s.mem.GetProj(table, key, proj)
}

// Query returns one partition's rows in sort-key order.
func (s *Store) Query(table string, hash dynamo.Value, opts dynamo.QueryOpts) ([]dynamo.Item, error) {
	if err := s.readGuard(); err != nil {
		return nil, err
	}
	return s.mem.Query(table, hash, opts)
}

// QueryIndex queries a secondary index by its hash attribute.
func (s *Store) QueryIndex(table, index string, hash dynamo.Value, opts dynamo.QueryOpts) ([]dynamo.Item, error) {
	if err := s.readGuard(); err != nil {
		return nil, err
	}
	return s.mem.QueryIndex(table, index, hash, opts)
}

// Scan walks the whole table in deterministic partition order.
func (s *Store) Scan(table string, opts dynamo.QueryOpts) ([]dynamo.Item, error) {
	if err := s.readGuard(); err != nil {
		return nil, err
	}
	return s.mem.Scan(table, opts)
}

// TableNames lists tables in sorted order.
func (s *Store) TableNames() []string { return s.mem.TableNames() }

// TableShards reports the shard count of an existing table.
func (s *Store) TableShards(name string) (int, error) { return s.mem.TableShards(name) }

// TableSchema returns an existing table's schema.
func (s *Store) TableSchema(name string) (dynamo.Schema, error) { return s.mem.TableSchema(name) }

// TableBytes reports the table's current storage footprint.
func (s *Store) TableBytes(name string) (int, error) { return s.mem.TableBytes(name) }

// TableItemCount reports the number of live rows.
func (s *Store) TableItemCount(name string) (int, error) { return s.mem.TableItemCount(name) }
