package walstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dynamo"
)

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

func usersSchema() dynamo.Schema {
	return dynamo.Schema{
		Name: "users", HashKey: "Id", SortKey: "Rev",
		Indexes: []dynamo.IndexSchema{{Name: "by-team", HashKey: "Team", SortKey: "Rank"}},
	}
}

func putUser(t *testing.T, s *Store, id string, rev, n int64) {
	t.Helper()
	err := s.Put("users", dynamo.Item{
		"Id": dynamo.S(id), "Rev": dynamo.NInt(rev), "N": dynamo.NInt(n),
	}, nil)
	if err != nil {
		t.Fatalf("put %s/%d: %v", id, rev, err)
	}
}

// TestRestartRecoversEverything drops all in-memory state and reopens the
// directory: every committed mutation — puts, conditional updates, deletes,
// a transaction, a table deletion — must come back.
func TestRestartRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.CreateTable(usersSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(dynamo.Schema{Name: "tmp", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	putUser(t, s, "alice", 1, 10)
	putUser(t, s, "alice", 2, 20)
	putUser(t, s, "bob", 1, 1)
	if err := s.Update("users", dynamo.HSK(dynamo.S("bob"), dynamo.NInt(1)), nil,
		dynamo.Add(dynamo.A("N"), 5), dynamo.Set(dynamo.A("Team"), dynamo.S("blue")), dynamo.Set(dynamo.A("Rank"), dynamo.NInt(3))); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("users", dynamo.HSK(dynamo.S("alice"), dynamo.NInt(1)), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.TransactWrite([]dynamo.TxOp{
		{Table: "users", Put: dynamo.Item{"Id": dynamo.S("carol"), "Rev": dynamo.NInt(1), "Team": dynamo.S("blue"), "Rank": dynamo.NInt(1)}},
		{Table: "users", Key: dynamo.HSK(dynamo.S("bob"), dynamo.NInt(1)), Updates: []dynamo.Update{dynamo.Add(dynamo.A("N"), 100)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteTable("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, Options{})
	defer r.Close()
	if got := r.TableNames(); len(got) != 1 || got[0] != "users" {
		t.Fatalf("tables after restart: %v", got)
	}
	it, ok, err := r.Get("users", dynamo.HSK(dynamo.S("bob"), dynamo.NInt(1)))
	if err != nil || !ok {
		t.Fatalf("bob: %v %v", ok, err)
	}
	if n := it["N"].Int(); n != 106 {
		t.Errorf("bob N = %d, want 106", n)
	}
	if _, ok, _ := r.Get("users", dynamo.HSK(dynamo.S("alice"), dynamo.NInt(1))); ok {
		t.Error("deleted alice/1 resurfaced")
	}
	if it, ok, _ := r.Get("users", dynamo.HSK(dynamo.S("alice"), dynamo.NInt(2))); !ok || it["N"].Int() != 20 {
		t.Errorf("alice/2 = %v (ok=%v)", it, ok)
	}
	// The secondary index survives with its ordering.
	rows, err := r.QueryIndex("users", "by-team", dynamo.S("blue"), dynamo.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0]["Id"].Str() != "carol" || rows[1]["Id"].Str() != "bob" {
		t.Errorf("by-team query after restart: %v", rows)
	}
	if n := r.WAL().RecoveredRecords.Load(); n == 0 {
		t.Error("no records replayed on reopen")
	}
	if err := Fsck(dir); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

// TestConditionFailuresAreNotJournaled: a failed conditional write must
// leave no WAL record, and recovery must not replay it.
func TestConditionFailuresAreNotJournaled(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.CreateTable(dynamo.Schema{Name: "t", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("t", dynamo.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)}, nil); err != nil {
		t.Fatal(err)
	}
	before := s.WAL().Records.Load()
	err := s.Put("t", dynamo.Item{"K": dynamo.S("a"), "V": dynamo.NInt(2)},
		dynamo.Eq(dynamo.A("V"), dynamo.NInt(99)))
	if !errors.Is(err, dynamo.ErrConditionFailed) {
		t.Fatalf("want ErrConditionFailed, got %v", err)
	}
	if got := s.WAL().Records.Load(); got != before {
		t.Errorf("condition failure appended %d records", got-before)
	}
	s.Close()

	r := openT(t, dir, Options{})
	defer r.Close()
	it, _, _ := r.Get("t", dynamo.HK(dynamo.S("a")))
	if it["V"].Int() != 1 {
		t.Errorf("V = %v after restart, want 1", it["V"])
	}
}

// TestSnapshotCompaction: compaction must shrink the log to one segment and
// one snapshot, and a store reopened from the compacted directory (and from
// a snapshot plus later tail records) must be identical.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SegmentBytes: 512})
	if err := s.CreateTable(dynamo.Schema{Name: "t", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put("t", dynamo.Item{"K": dynamo.S(fmt.Sprintf("k%02d", i)), "V": dynamo.NInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.WAL().Segments.Load() == 0 {
		t.Fatal("expected segment rotations with 512-byte segments")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := listSeqFiles(dir, segPrefix, segSuffix)
	snaps, _, _ := listSeqFiles(dir, snapPrefix, snapSuffix)
	if len(segs) != 1 || len(snaps) != 1 {
		t.Fatalf("after compaction: %d segments, %d snapshots", len(segs), len(snaps))
	}
	// Tail records after the snapshot.
	for i := 0; i < 5; i++ {
		if err := s.Put("t", dynamo.Item{"K": dynamo.S(fmt.Sprintf("post%d", i)), "V": dynamo.NInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	if err := Fsck(dir); err != nil {
		t.Fatalf("fsck: %v", err)
	}
	r := openT(t, dir, Options{})
	defer r.Close()
	n, err := r.TableItemCount("t")
	if err != nil || n != 55 {
		t.Fatalf("items after snapshot+tail restart = %d (%v), want 55", n, err)
	}
	if got := r.WAL().RecoveredRecords.Load(); got != 5 {
		t.Errorf("replayed %d records, want 5 (snapshot should cover the rest)", got)
	}
}

// TestAutoCompaction: crossing the byte threshold must snapshot + truncate
// the log without an explicit Compact call.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{AutoCompactBytes: 2048})
	defer s.Close()
	if err := s.CreateTable(dynamo.Schema{Name: "t", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.Put("t", dynamo.Item{"K": dynamo.S(fmt.Sprintf("k%03d", i%10)), "V": dynamo.NInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.WAL().Snapshots.Load() == 0 {
		t.Error("no auto-compaction despite 2 KiB threshold")
	}
}

// TestGroupCommitBatchesFsyncs: concurrent committers must share fsyncs on
// the batched path; with SyncEach every record pays its own.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	const writers, rounds = 16, 8
	run := func(t *testing.T, policy SyncPolicy) *Store {
		t.Helper()
		s := openT(t, t.TempDir(), Options{Sync: policy})
		t.Cleanup(func() { s.Close() })
		if err := s.CreateTable(dynamo.Schema{Name: "t", HashKey: "K"}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					key := fmt.Sprintf("k%02d", w)
					if err := s.Update("t", dynamo.HK(dynamo.S(key)), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < writers; w++ {
			it, ok, err := s.Get("t", dynamo.HK(dynamo.S(fmt.Sprintf("k%02d", w))))
			if err != nil || !ok || it["N"].Int() != rounds {
				t.Errorf("k%02d = %v (ok=%v err=%v), want %d", w, it, ok, err, rounds)
			}
		}
		return s
	}

	batched := run(t, SyncBatched)
	each := run(t, SyncEach)
	// writers*rounds records committed in each store (+1 create table).
	if f := each.WAL().Fsyncs.Load(); f < writers*rounds {
		t.Errorf("SyncEach fsyncs = %d, want ≥ %d", f, writers*rounds)
	}
	bf, br := batched.WAL().SyncBatches.Load(), batched.WAL().BatchedRecords.Load()
	if bf == 0 || br == 0 {
		t.Fatalf("batched path unused: batches=%d records=%d", bf, br)
	}
	if mean := float64(br) / float64(bf); mean <= 1.0 && bf >= writers*rounds {
		t.Errorf("no fsync amortization: %d batches for %d records", bf, br)
	}
}

// TestWriteFailurePoisonsStore: an injected fsync failure must surface and
// every later mutation must fail fast.
func TestWriteFailurePoisonsStore(t *testing.T) {
	boom := errors.New("disk on fire")
	armed := false
	s := openT(t, t.TempDir(), Options{Hooks: &Hooks{SyncErr: func() error {
		if armed {
			return boom
		}
		return nil
	}}})
	defer s.Close()
	if err := s.CreateTable(dynamo.Schema{Name: "t", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	armed = true
	if err := s.Put("t", dynamo.Item{"K": dynamo.S("a")}, nil); !errors.Is(err, boom) {
		t.Fatalf("want injected sync error, got %v", err)
	}
	armed = false
	if err := s.Put("t", dynamo.Item{"K": dynamo.S("b")}, nil); !errors.Is(err, boom) {
		t.Fatalf("store not poisoned: %v", err)
	}
	// Reads fail too: the memtable applied the "failed" write, so serving
	// it would hand out rows that are lost on the next Open.
	if _, _, err := s.Get("t", dynamo.HK(dynamo.S("a"))); !errors.Is(err, boom) {
		t.Fatalf("poisoned store served a read: %v", err)
	}
	if _, err := s.Scan("t", dynamo.QueryOpts{}); !errors.Is(err, boom) {
		t.Fatalf("poisoned store served a scan: %v", err)
	}
}

// TestCodecRoundTrip pins the record codec: every op and value kind must
// survive encode/decode byte-identically.
func TestCodecRoundTrip(t *testing.T) {
	recs := []record{
		{seq: 1, typ: recCreateTable, schema: usersSchema()},
		{seq: 2, typ: recDeleteTable, name: "users"},
		{seq: 3, typ: recCommit, ops: []walOp{
			{kind: opPut, table: "t", item: dynamo.Item{
				"S": dynamo.S("str"), "N": dynamo.N(3.25), "B": dynamo.Bool(true),
				"Y": dynamo.Bytes([]byte{0, 1, 2}), "L": dynamo.L(dynamo.S("a"), dynamo.NInt(1)),
				"M": dynamo.M(map[string]dynamo.Value{"x": dynamo.Null, "y": dynamo.S("z")}),
			}},
			{kind: opDelete, table: "t", key: dynamo.HSK(dynamo.S("h"), dynamo.NInt(7))},
			{kind: opUpdate, table: "t", key: dynamo.HK(dynamo.S("k")), updates: []dynamo.UpdateDesc{
				{Kind: dynamo.UpdateSet, Path: dynamo.Path{Attr: "A", MapKey: "m"}, Value: dynamo.S("v")},
				{Kind: dynamo.UpdateAdd, Path: dynamo.Path{Attr: "C"}, Delta: -2.5},
				{Kind: dynamo.UpdateRemove, Path: dynamo.Path{Attr: "R"}},
			}},
		}},
	}
	for _, want := range recs {
		frame := encodeFrame(want)
		got, err := decodeBody(frame[frameHeaderLen:])
		if err != nil {
			t.Fatalf("decode seq %d: %v", want.seq, err)
		}
		// Re-encoding the decoded record must reproduce the frame exactly
		// (deterministic encoding).
		if re := encodeFrame(got); string(re) != string(frame) {
			t.Errorf("seq %d: re-encoded frame differs", want.seq)
		}
	}
}

// TestReopenAppendsToTail: reopening must continue the sequence in the same
// tail segment rather than starting a new log.
func TestReopenAppendsToTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.CreateTable(dynamo.Schema{Name: "t", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	putN := func(s *Store, k string) {
		if err := s.Put("t", dynamo.Item{"K": dynamo.S(k)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	putN(s, "a")
	s.Close()
	s = openT(t, dir, Options{})
	putN(s, "b")
	s.Close()
	s = openT(t, dir, Options{})
	defer s.Close()
	if n, _ := s.TableItemCount("t"); n != 2 {
		t.Fatalf("items = %d, want 2", n)
	}
	segs, _, _ := listSeqFiles(dir, segPrefix, segSuffix)
	if len(segs) != 1 {
		t.Errorf("segments = %v, want a single tail", segs)
	}
	if err := Fsck(dir); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

// TestFsckDetectsCorruption: Fsck must flag a flipped byte that Open would
// repair away.
func TestFsckDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.CreateTable(dynamo.Schema{Name: "t", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put("t", dynamo.Item{"K": dynamo.S(fmt.Sprintf("k%d", i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _, _ := listSeqFiles(dir, segPrefix, segSuffix)
	if len(segs) != 1 {
		t.Fatal("want one segment")
	}
	path := filepath.Join(dir, segs[0])
	flipByteAt(t, path, -10) // inside the last record's body
	if err := Fsck(dir); err == nil {
		t.Fatal("fsck passed on a corrupt segment")
	}
}

// TestRotationUnderConcurrentCommit: segment rotation must not race the
// durability fsync path. With tiny segments and concurrent committers,
// rotation constantly closes and swaps the tail handle while waiters
// flush it; every commit must still succeed and the log must recover.
// (Regression: rotate used to close the file a concurrent waiter was
// fsyncing, poisoning the store with "file already closed".)
func TestRotationUnderConcurrentCommit(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncBatched, SyncEach} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir, Options{SegmentBytes: 256, Sync: policy})
			if err := s.CreateTable(dynamo.Schema{Name: "t", HashKey: "K"}); err != nil {
				t.Fatal(err)
			}
			const writers, rounds = 8, 25
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					key := fmt.Sprintf("k%02d", w)
					for i := 0; i < rounds; i++ {
						if err := s.Update("t", dynamo.HK(dynamo.S(key)), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
							t.Errorf("writer %d round %d: %v", w, i, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if s.WAL().Segments.Load() == 0 {
				t.Fatal("no rotations; the test exercised nothing")
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := Fsck(dir); err != nil {
				t.Fatalf("fsck: %v", err)
			}
			r := openT(t, dir, Options{})
			defer r.Close()
			for w := 0; w < writers; w++ {
				it, ok, err := r.Get("t", dynamo.HK(dynamo.S(fmt.Sprintf("k%02d", w))))
				if err != nil || !ok || it["N"].Int() != rounds {
					t.Errorf("recovered k%02d = %v (ok=%v err=%v), want %d", w, it, ok, err, rounds)
				}
			}
		})
	}
}

// TestCompactIsIdempotent: repeated Compact calls with no commits in
// between — and a Compact right after reopening an already-compacted
// directory — must be no-ops, not collide with the existing tail segment.
func TestCompactIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.CreateTable(dynamo.Schema{Name: "t", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("t", dynamo.Item{"K": dynamo.S("a")}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Compact(); err != nil {
			t.Fatalf("compact #%d: %v", i+1, err)
		}
	}
	// The store must still accept writes after back-to-back compactions.
	if err := s.Put("t", dynamo.Item{"K": dynamo.S("b")}, nil); err != nil {
		t.Fatalf("write after repeated compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the compacted directory and compact again before any write.
	s = openT(t, dir, Options{})
	if err := s.Compact(); err != nil {
		t.Fatalf("compact after reopen: %v", err)
	}
	if err := s.Put("t", dynamo.Item{"K": dynamo.S("c")}, nil); err != nil {
		t.Fatalf("write after reopen-compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Fsck(dir); err != nil {
		t.Fatalf("fsck: %v", err)
	}
	r := openT(t, dir, Options{})
	defer r.Close()
	if n, _ := r.TableItemCount("t"); n != 3 {
		t.Errorf("items = %d, want 3", n)
	}
}
