package walstore

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dynamo"
)

// Fuzz targets for the two decode boundaries a crash hands arbitrary bytes
// to: the record codec (decodeBody parses whatever survived inside a
// CRC-valid frame) and the segment scanner (scanSegment walks whatever the
// filesystem kept of a segment file). The seed corpus is real store
// traffic plus the crash matrix's damage shapes — torn tails at the header
// and body boundaries, and a flipped byte. CI runs a short -fuzz smoke on
// both (see .github/workflows/ci.yml); locally:
//
//	go test ./internal/walstore -run '^$' -fuzz FuzzSegmentRecovery -fuzztime 30s

// fuzzSegmentBytes produces genuine on-disk segment bytes covering every
// record type and op kind: table creates, puts, conditional updates, a
// delete, and a table drop.
func fuzzSegmentBytes(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := s.CreateTable(usersSchema()); err != nil {
		f.Fatal(err)
	}
	if err := s.CreateTable(dynamo.Schema{Name: "tmp", HashKey: "K"}); err != nil {
		f.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := s.Put("users", dynamo.Item{
			"Id": dynamo.S("u1"), "Rev": dynamo.NInt(i), "N": dynamo.NInt(10 * i),
			"Team": dynamo.S("t"), "Rank": dynamo.NInt(i),
		}, nil); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Update("users", dynamo.HSK(dynamo.S("u1"), dynamo.NInt(0)), nil,
		dynamo.Set(dynamo.A("N"), dynamo.NInt(99)), dynamo.Add(dynamo.A("Rank"), 2)); err != nil {
		f.Fatal(err)
	}
	if err := s.Delete("users", dynamo.HSK(dynamo.S("u1"), dynamo.NInt(1)), nil); err != nil {
		f.Fatal(err)
	}
	if err := s.DeleteTable("tmp"); err != nil {
		f.Fatal(err)
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzRecordFraming throws arbitrary bytes at the record codec. decodeBody
// must never panic, and any body it accepts must canonicalize: re-encoding
// the decoded record yields a frame that decodes back to the byte-identical
// frame (one round normalizes non-minimal varints and map key order; after
// that the encoding is a fixed point — the property that makes a replayed
// log byte-comparable across runs).
func FuzzRecordFraming(f *testing.F) {
	seg := fuzzSegmentBytes(f)
	for off := 0; off+frameHeaderLen <= len(seg); {
		n := int(binary.LittleEndian.Uint32(seg[off:]))
		if n < 0 || off+frameHeaderLen+n > len(seg) {
			break
		}
		f.Add(append([]byte(nil), seg[off+frameHeaderLen:off+frameHeaderLen+n]...))
		off += frameHeaderLen + n
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, recCommit})
	f.Fuzz(func(t *testing.T, body []byte) {
		rec, err := decodeBody(body)
		if err != nil {
			return // rejected input; the only obligation is not panicking
		}
		frame := encodeFrame(rec)
		canon := frame[frameHeaderLen:]
		rec2, err := decodeBody(canon)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v\nbody: %x", err, canon)
		}
		if frame2 := encodeFrame(rec2); !bytes.Equal(frame, frame2) {
			t.Fatalf("encoding is not a fixed point:\n first: %x\nsecond: %x", frame, frame2)
		}
	})
}

// FuzzSegmentRecovery throws arbitrary segment files at the recovery
// scanner. scanSegment must never panic, must apply records in exact
// sequence order from the expected start, must report a valid end offset
// within the file, and its durable prefix must be stable: truncating the
// file at the reported tear and rescanning yields the same records with no
// corruption — the invariant Open's crash repair relies on.
func FuzzSegmentRecovery(f *testing.F) {
	seg := fuzzSegmentBytes(f)
	f.Add(seg)
	for _, cut := range []int{1, frameHeaderLen - 1, frameHeaderLen, frameHeaderLen + 3, len(seg) - 1} {
		if cut > 0 && cut < len(seg) {
			f.Add(append([]byte(nil), seg[:cut]...))
		}
	}
	flipped := append([]byte(nil), seg...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var seqs []uint64
		validEnd, lastSeq, corrupt, err := scanSegment(path, 1, 0, func(r record) error {
			seqs = append(seqs, r.seq)
			return nil
		})
		if err != nil {
			t.Fatalf("scan failed outside the corruption channel: %v", err)
		}
		if validEnd < 0 || validEnd > int64(len(data)) {
			t.Fatalf("valid end %d outside file of %d bytes", validEnd, len(data))
		}
		for i, s := range seqs {
			if s != uint64(i)+1 {
				t.Fatalf("applied sequence %d at position %d; records must apply in order", s, i)
			}
		}
		if lastSeq != uint64(len(seqs)) {
			t.Fatalf("last sequence %d after %d applied records", lastSeq, len(seqs))
		}
		if err := os.WriteFile(path, data[:validEnd], 0o644); err != nil {
			t.Fatal(err)
		}
		end2, last2, corrupt2, err2 := scanSegment(path, 1, 0, nil)
		if err2 != nil || corrupt2 != nil || end2 != validEnd || last2 != lastSeq {
			t.Fatalf("durable prefix not stable after truncation at %d: end=%d seq=%d→%d corrupt=%v err=%v (first scan corrupt=%v)",
				validEnd, end2, lastSeq, last2, corrupt2, err2, corrupt)
		}
	})
}
