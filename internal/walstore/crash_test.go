package walstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dynamo"
)

// This file is the crash matrix: deterministic damage — torn tails,
// truncated segments, flipped bytes, injected mid-write deaths — at chosen
// WAL offsets, each followed by the same assertion: Open recovers exactly
// the durable prefix, the directory repairs to a state Fsck accepts, and
// the store keeps working.

// flipByteAt XORs one byte of the file; negative offsets count from the end.
func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(data))
	}
	if off < 0 || off >= int64(len(data)) {
		t.Fatalf("flip offset %d out of range (%d bytes)", off, len(data))
	}
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// truncateTo shortens the file; negative n trims from the end.
func truncateTo(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if n < 0 {
		n += fi.Size()
	}
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

// seedCounters opens a store in dir and commits n counter increments on
// key "k" (plus the table create), returning the per-record frame size so
// tests can aim damage at exact record boundaries.
func seedCounters(t *testing.T, dir string, n int) (frameLen int64) {
	t.Helper()
	s := openT(t, dir, Options{})
	if err := s.CreateTable(dynamo.Schema{Name: "c", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	before := s.WAL().BytesAppended.Load()
	if err := s.Update("c", dynamo.HK(dynamo.S("k")), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
		t.Fatal(err)
	}
	frameLen = s.WAL().BytesAppended.Load() - before
	for i := 1; i < n; i++ {
		if err := s.Update("c", dynamo.HK(dynamo.S("k")), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return frameLen
}

// counterValue reads back the counter in a freshly opened store.
func counterValue(t *testing.T, s *Store) int64 {
	t.Helper()
	it, ok, err := s.Get("c", dynamo.HK(dynamo.S("k")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return 0
	}
	return it["N"].Int()
}

// tailSegment returns the single segment file of dir.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, _, err := listSeqFiles(dir, segPrefix, segSuffix)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%v)", segs, err)
	}
	return filepath.Join(dir, segs[len(segs)-1])
}

// assertRecovered reopens dir, asserting the counter holds want and that the
// repaired directory is Fsck-clean and still writable.
func assertRecovered(t *testing.T, dir string, want int64) {
	t.Helper()
	s := openT(t, dir, Options{})
	if got := counterValue(t, s); got != want {
		t.Errorf("recovered counter = %d, want %d", got, want)
	}
	// The repaired log must accept new commits and stay consistent.
	if err := s.Update("c", dynamo.HK(dynamo.S("k")), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Fsck(dir); err != nil {
		t.Errorf("fsck after repair: %v", err)
	}
	s = openT(t, dir, Options{})
	if got := counterValue(t, s); got != want+1 {
		t.Errorf("counter after post-recovery write = %d, want %d", got, want+1)
	}
	s.Close()
}

// TestCrashMatrixTornTail cuts the last record at every possible byte
// boundary: mid-header, mid-body, one byte short. Each cut loses exactly
// the torn record and nothing else.
func TestCrashMatrixTornTail(t *testing.T) {
	for _, cut := range []int64{1, frameHeaderLen - 1, frameHeaderLen, frameHeaderLen + 3, -1} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			frameLen := seedCounters(t, dir, 10)
			seg := tailSegment(t, dir)
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			lastStart := fi.Size() - frameLen
			off := lastStart + cut
			if cut < 0 {
				off = fi.Size() + cut
			}
			truncateTo(t, seg, off)
			assertRecovered(t, dir, 9) // the 10th increment is torn off
		})
	}
}

// TestCrashMatrixTruncatedSegment chops whole records off the tail: the
// durable prefix shrinks by exactly that many commits.
func TestCrashMatrixTruncatedSegment(t *testing.T) {
	for _, lost := range []int64{1, 3, 7} {
		t.Run(fmt.Sprintf("lost=%d", lost), func(t *testing.T) {
			dir := t.TempDir()
			frameLen := seedCounters(t, dir, 10)
			truncateTo(t, tailSegment(t, dir), -lost*frameLen)
			assertRecovered(t, dir, 10-lost)
		})
	}
}

// TestCrashMatrixBadCRC flips one byte inside a record body at a chosen
// depth from the tail: replay stops at the flipped record.
func TestCrashMatrixBadCRC(t *testing.T) {
	for _, depth := range []int64{1, 4} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			dir := t.TempDir()
			frameLen := seedCounters(t, dir, 10)
			// Flip a byte in the body of the record `depth` from the end.
			flipByteAt(t, tailSegment(t, dir), -(depth-1)*frameLen-frameLen+frameHeaderLen+2)
			assertRecovered(t, dir, 10-depth)
		})
	}
}

// TestCrashMatrixHeaderCorruption flips a length byte: the frame no longer
// parses and everything from it on is discarded.
func TestCrashMatrixHeaderCorruption(t *testing.T) {
	dir := t.TempDir()
	frameLen := seedCounters(t, dir, 6)
	flipByteAt(t, tailSegment(t, dir), -3*frameLen) // length field of the 3rd-from-last record
	assertRecovered(t, dir, 3)
}

// TestCrashMatrixInjectedTornWrite uses the write-fault hook to kill the
// store mid-append at a deterministic sequence, writing only half the
// frame — the in-process version of a process dying inside write(2).
func TestCrashMatrixInjectedTornWrite(t *testing.T) {
	dir := t.TempDir()
	var tornSeq uint64 = 8
	s := openT(t, dir, Options{Hooks: &Hooks{
		BeforeAppend: func(seq uint64, off int64, frame []byte) []byte {
			if seq == tornSeq {
				return frame[:len(frame)/2]
			}
			return nil
		},
	}})
	if err := s.CreateTable(dynamo.Schema{Name: "c", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	var lastErr error
	commits := int64(0)
	for i := 0; i < 10; i++ {
		if err := s.Update("c", dynamo.HK(dynamo.S("k")), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
			lastErr = err
			break
		}
		commits++
	}
	if lastErr == nil {
		t.Fatal("torn write did not surface")
	}
	// The store is poisoned; later writes fail fast without touching disk.
	if err := s.Update("c", dynamo.HK(dynamo.S("k")), nil, dynamo.Add(dynamo.A("N"), 1)); err == nil {
		t.Fatal("poisoned store accepted a write")
	}
	s.Close()
	// seq 1 is the table create, so increments 1..commits are durable.
	assertRecovered(t, dir, commits)
	if commits != int64(tornSeq)-2 {
		t.Errorf("commits before torn write = %d, want %d", commits, tornSeq-2)
	}
}

// TestCrashMatrixSnapshotSurvivesTornTail: damage behind a snapshot is
// irrelevant; damage after it loses only the tail.
func TestCrashMatrixSnapshotSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.CreateTable(dynamo.Schema{Name: "c", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Update("c", dynamo.HK(dynamo.S("k")), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Update("c", dynamo.HK(dynamo.S("k")), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	truncateTo(t, tailSegment(t, dir), -1) // tear the last tail record
	assertRecovered(t, dir, 13)
}

// TestCrashMatrixCorruptSnapshotFallsBack: a snapshot damaged on disk must
// not brick recovery — Open falls back to replaying the full log.
func TestCrashMatrixCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.CreateTable(dynamo.Schema{Name: "c", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Update("c", dynamo.HK(dynamo.S("k")), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Build a snapshot, then corrupt it. The pre-compaction segments are
	// gone, so this also exercises the "snapshot is the only copy" guard:
	// recovery uses the older (deleted) nothing and must fall back to the
	// surviving tail — which compaction started fresh, so the fallback is
	// an empty store plus the tail. To keep the full history, re-commit
	// after compaction instead.
	s = openT(t, dir, Options{})
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Update("c", dynamo.HK(dynamo.S("k")), nil, dynamo.Add(dynamo.A("N"), 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	snaps, _, _ := listSeqFiles(dir, snapPrefix, snapSuffix)
	if len(snaps) != 1 {
		t.Fatal("want one snapshot")
	}
	flipByteAt(t, filepath.Join(dir, snaps[0]), -1)
	// With the snapshot gone and the pre-snapshot segments compacted away,
	// the tail alone cannot rebuild state: Open must refuse rather than
	// silently lose data (the tail's first record is past seq 1 with no
	// base to apply it to).
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open silently recovered from a compacted log with a corrupt snapshot")
	}
	if err := Fsck(dir); err == nil {
		t.Error("fsck passed with a corrupt snapshot")
	}
}
