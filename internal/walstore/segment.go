package walstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
)

// Segment files are named wal-<firstseq>.seg, where <firstseq> is the
// zero-padded sequence number of the first record the segment holds (so a
// directory listing is also the log's seq-order). Snapshots are
// snap-<seq>.snap, covering every record with sequence ≤ <seq>.
const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	seqDigits  = 20
)

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%0*d%s", segPrefix, seqDigits, firstSeq, segSuffix)
}

func snapName(seq uint64) string {
	return fmt.Sprintf("%s%0*d%s", snapPrefix, seqDigits, seq, snapSuffix)
}

// parseSeq extracts the sequence number from a segment or snapshot name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != seqDigits {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSeqFiles returns the directory's segment (or snapshot) files sorted by
// their embedded sequence number.
func listSeqFiles(dir, prefix, suffix string) ([]string, []uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type nf struct {
		name string
		seq  uint64
	}
	var out []nf
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, nf{e.Name(), seq})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	names := make([]string, len(out))
	seqs := make([]uint64, len(out))
	for i, f := range out {
		names[i] = f.name
		seqs[i] = f.seq
	}
	return names, seqs, nil
}

// syncDir fsyncs the directory so renames and creations are durable.
// Best-effort: some filesystems refuse directory syncs.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// walWriter owns the tail segment file and the group-commit fsync path.
// Appends are serialized by the store's log mutex; durability waits run
// leader/follower — the first waiter to find no sync in flight fsyncs once
// for every record appended so far, and waiters arriving during that flush
// form the next batch (the same committer shape as the in-memory store's
// group-commit batcher, with the disk flush in place of the latch).
type walWriter struct {
	dir   string
	opts  Options
	stats *Stats

	// Tail segment state. size and firstSeq are touched only under the
	// store's log mutex; f is additionally swapped by rotation and closed
	// by close while durability waiters fsync it concurrently, so every
	// Sync/Close/swap of the handle serializes on fileMu. appended is
	// written under the log mutex but read by durability leaders outside
	// it, hence atomic.
	f        *os.File
	size     int64
	firstSeq uint64        // first sequence in the tail segment
	appended atomic.Uint64 // last sequence appended (any segment)
	fileMu   sync.Mutex    // guards f.Sync / f.Close / handle swaps

	// Durability state.
	mu      sync.Mutex
	cond    *sync.Cond
	durable uint64 // last sequence known fsynced
	syncing bool
	err     error // sticky write/sync failure: the store is poisoned

	// fsyncHist, when set (Store.SetFsyncHistogram), observes the duration
	// of every tail-segment fsync — the dominant term in a durable write's
	// latency under SyncAlways.
	fsyncHist atomic.Pointer[hist.Histogram]
}

func newWALWriter(dir string, opts Options, stats *Stats) *walWriter {
	w := &walWriter{dir: dir, opts: opts, stats: stats}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// openTail opens (or creates) the tail segment for appending. lastSeq is the
// last sequence recovered; firstSeq names an existing tail segment to reuse,
// or 0 to create a fresh segment starting at lastSeq+1.
func (w *walWriter) openTail(firstSeq, lastSeq uint64, size int64) error {
	if firstSeq == 0 {
		firstSeq = lastSeq + 1
		size = 0
	}
	path := filepath.Join(w.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.size = size
	w.firstSeq = firstSeq
	w.appended.Store(lastSeq)
	w.durable = lastSeq
	syncDir(w.dir)
	return nil
}

// fail records a sticky failure and wakes every durability waiter.
func (w *walWriter) fail(err error) error {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	err = w.err
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// sticky returns the writer's sticky failure, if any.
func (w *walWriter) sticky() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// append writes one framed record to the tail segment, rotating first when
// the segment is full. Called under the store's log mutex, so appends hit
// the file in sequence order. The record is not durable until waitDurable.
func (w *walWriter) append(seq uint64, frame []byte) error {
	if err := w.sticky(); err != nil {
		return err
	}
	if w.size > 0 && w.size+int64(len(frame)) > w.opts.SegmentBytes {
		if err := w.rotate(seq); err != nil {
			return w.fail(err)
		}
	}
	if h := w.opts.Hooks; h != nil && h.BeforeAppend != nil {
		// Fault injection: a non-nil result replaces the bytes that hit the
		// disk — shortened or bit-flipped — simulating a torn or corrupted
		// write at this exact offset. The damaged append then poisons the
		// store, like a process dying mid-write.
		if mangled := h.BeforeAppend(seq, w.size, frame); mangled != nil {
			if _, err := w.f.Write(mangled); err != nil {
				return w.fail(err)
			}
			w.size += int64(len(mangled))
			return w.fail(fmt.Errorf("walstore: injected torn write at seq %d", seq))
		}
	}
	n, err := w.f.Write(frame)
	w.size += int64(n)
	if err != nil {
		return w.fail(err)
	}
	w.appended.Store(seq)
	w.stats.Records.Add(1)
	w.stats.BytesAppended.Add(int64(len(frame)))
	return nil
}

// rotate fsyncs and closes the tail segment and starts a new one whose
// first record will be seq. After rotation every record in older segments
// is durable, so a single fsync of the tail covers the whole log. Called
// under the store's log mutex; the handle swap holds fileMu so an
// in-flight durability fsync never sees a closed file (the old file is
// fsynced here first, so a waiter that flushes the new handle instead
// still ends up with its records durable).
func (w *walWriter) rotate(seq uint64) error {
	if err := w.syncFile(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segName(seq)), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w.fileMu.Lock()
	cerr := w.f.Close()
	w.f = f
	w.fileMu.Unlock()
	if cerr != nil {
		return cerr
	}
	w.size = 0
	w.firstSeq = seq
	w.stats.Segments.Add(1)
	syncDir(w.dir)
	return nil
}

// syncFile fsyncs the tail segment (with fault injection), serialized
// against rotation's and close's handle swaps.
func (w *walWriter) syncFile() error {
	if h := w.opts.Hooks; h != nil && h.SyncErr != nil {
		if err := h.SyncErr(); err != nil {
			return err
		}
	}
	w.fileMu.Lock()
	defer w.fileMu.Unlock()
	if w.f == nil {
		return fmt.Errorf("walstore: WAL is closed")
	}
	w.stats.Fsyncs.Add(1)
	if h := w.fsyncHist.Load(); h != nil {
		t0 := time.Now()
		err := w.f.Sync()
		h.Record(time.Since(t0))
		return err
	}
	return w.f.Sync()
}

// waitDurable blocks until every record with sequence ≤ seq is on disk
// (per the configured SyncPolicy), fsyncing as needed.
func (w *walWriter) waitDurable(seq uint64) error {
	switch w.opts.Sync {
	case SyncNone:
		return w.sticky()
	case SyncEach:
		// Batching off: every committer pays its own fsync, even when a
		// concurrent flush already covered its record — the unamortized
		// baseline the backend sweep measures.
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.err != nil {
			return w.err
		}
		if err := w.syncFile(); err != nil {
			w.err = err
			w.cond.Broadcast()
			return err
		}
		if seq > w.durable {
			w.durable = seq
		}
		return nil
	}
	// SyncBatched: leader/follower group commit.
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.err != nil {
			return w.err
		}
		if w.durable >= seq {
			return nil
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		w.mu.Unlock()
		// Everything appended before this fsync lands with it: any append
		// that completed before the Sync() call is covered (rotation
		// fsyncs the old file before swapping, so records are only ever
		// un-durable in the current tail); a concurrently appending
		// writer waits for the next batch either way.
		target := w.appended.Load()
		err := w.syncFile()
		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.err = err
		} else {
			if target > w.durable {
				w.stats.SyncBatches.Add(1)
				w.stats.BatchedRecords.Add(int64(target - w.durable))
				w.durable = target
			}
		}
		w.cond.Broadcast()
	}
}

// close fsyncs and closes the tail segment. Late durability waiters find
// a nil handle under fileMu and fail cleanly instead of racing the close.
func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	if err := w.sticky(); err != nil {
		w.fileMu.Lock()
		w.f.Close()
		w.f = nil
		w.fileMu.Unlock()
		return err
	}
	err := w.syncFile()
	w.fileMu.Lock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	w.fileMu.Unlock()
	return err
}

// scanSegment reads one segment file, calling apply for every valid record.
// It returns the byte offset just past the last valid record and a non-nil
// corruption description when the scan stopped early (torn frame, CRC
// mismatch, undecodable body, or out-of-order sequence). expect is the
// sequence the first record must carry; records with sequence ≤ skipTo are
// validated but not applied (they predate the snapshot).
func scanSegment(path string, expect, skipTo uint64, apply func(record) error) (validEnd int64, lastSeq uint64, corrupt error, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	off := 0
	lastSeq = expect - 1
	for {
		if off == len(data) {
			return int64(off), lastSeq, nil, nil
		}
		if len(data)-off < frameHeaderLen {
			return int64(off), lastSeq, fmt.Errorf("torn frame header at offset %d", off), nil
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if len(data)-off-frameHeaderLen < bodyLen {
			return int64(off), lastSeq, fmt.Errorf("torn record at offset %d (%d body bytes missing)", off, bodyLen-(len(data)-off-frameHeaderLen)), nil
		}
		body := data[off+frameHeaderLen : off+frameHeaderLen+bodyLen]
		if crc32.Checksum(body, castagnoli) != wantCRC {
			return int64(off), lastSeq, fmt.Errorf("CRC mismatch at offset %d", off), nil
		}
		rec, derr := decodeBody(body)
		if derr != nil {
			return int64(off), lastSeq, fmt.Errorf("undecodable record at offset %d: %v", off, derr), nil
		}
		if rec.seq != lastSeq+1 {
			return int64(off), lastSeq, fmt.Errorf("sequence gap at offset %d: have %d, want %d", off, rec.seq, lastSeq+1), nil
		}
		if rec.seq > skipTo && apply != nil {
			if aerr := apply(rec); aerr != nil {
				return int64(off), lastSeq, nil, aerr
			}
		}
		lastSeq = rec.seq
		off += frameHeaderLen + bodyLen
	}
}
