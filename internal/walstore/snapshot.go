package walstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/dynamo"
)

// A snapshot is a compacted image of the whole store at one log position:
//
//	[u64 covered seq][uvarint ntables][table…][u32 crc32c of everything above]
//
// where each table is its schema followed by a uvarint row count and the
// rows as items (in the store's deterministic scan order). Snapshots are
// written to a temp file, fsynced, and renamed into place, so a crash
// mid-snapshot leaves the previous snapshot authoritative; after a
// successful snapshot the log is rotated and every older segment and
// snapshot is deleted (compaction).

// encodeSnapshot serializes the snapshot image of mem at seq.
func encodeSnapshot(seq uint64, schemas map[string]dynamo.Schema, mem *dynamo.Store) ([]byte, error) {
	e := &encoder{b: make([]byte, 0, 4096)}
	e.u64(seq)
	names := mem.TableNames()
	e.uvarint(uint64(len(names)))
	for _, name := range names {
		sch, ok := schemas[name]
		if !ok {
			return nil, fmt.Errorf("walstore: snapshot: no recorded schema for table %s", name)
		}
		e.schema(sch)
		rows, err := mem.Scan(name, dynamo.QueryOpts{})
		if err != nil {
			return nil, err
		}
		e.uvarint(uint64(len(rows)))
		for _, it := range rows {
			e.item(it)
		}
	}
	sum := crc32.Checksum(e.b, castagnoli)
	e.b = binary.LittleEndian.AppendUint32(e.b, sum)
	return e.b, nil
}

// decodeSnapshot parses a snapshot image, returning the covered sequence,
// the table schemas, and a freshly loaded in-memory store.
func decodeSnapshot(data []byte, defaultShards int) (uint64, map[string]dynamo.Schema, *dynamo.Store, error) {
	if len(data) < 4 {
		return 0, nil, nil, fmt.Errorf("walstore: snapshot too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, nil, fmt.Errorf("walstore: snapshot CRC mismatch")
	}
	d := &decoder{b: body}
	seq, err := d.u64()
	if err != nil {
		return 0, nil, nil, err
	}
	ntables, err := d.uvarint()
	if err != nil {
		return 0, nil, nil, err
	}
	mem := dynamo.NewStore(dynamo.WithShards(defaultShards))
	schemas := make(map[string]dynamo.Schema, ntables)
	for i := uint64(0); i < ntables; i++ {
		sch, err := d.schema()
		if err != nil {
			return 0, nil, nil, err
		}
		if err := mem.CreateTable(sch); err != nil {
			return 0, nil, nil, err
		}
		schemas[sch.Name] = sch
		nrows, err := d.uvarint()
		if err != nil {
			return 0, nil, nil, err
		}
		if nrows > uint64(len(d.b)-d.off) {
			return 0, nil, nil, errTruncated
		}
		for r := uint64(0); r < nrows; r++ {
			it, err := d.item()
			if err != nil {
				return 0, nil, nil, err
			}
			if err := mem.Put(sch.Name, it, nil); err != nil {
				return 0, nil, nil, err
			}
		}
	}
	if d.off != len(d.b) {
		return 0, nil, nil, fmt.Errorf("walstore: %d trailing snapshot bytes", len(d.b)-d.off)
	}
	return seq, schemas, mem, nil
}

// writeSnapshotFile durably writes the snapshot image for seq into dir.
func writeSnapshotFile(dir string, seq uint64, data []byte) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapName(seq))); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}

// loadNewestSnapshot finds the newest decodable snapshot in dir. A corrupt
// snapshot (crash mid-write that still got renamed, bit rot) falls back to
// the next-older one; with none valid, recovery starts from an empty store.
// It returns the covered seq (0 when none), schemas, store, and the name of
// the snapshot used ("" when none).
func loadNewestSnapshot(dir string, defaultShards int) (uint64, map[string]dynamo.Schema, *dynamo.Store, string, error) {
	names, _, err := listSeqFiles(dir, snapPrefix, snapSuffix)
	if err != nil {
		return 0, nil, nil, "", err
	}
	for i := len(names) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, names[i]))
		if err != nil {
			return 0, nil, nil, "", err
		}
		seq, schemas, mem, err := decodeSnapshot(data, defaultShards)
		if err != nil {
			continue // fall back to an older snapshot
		}
		return seq, schemas, mem, names[i], nil
	}
	return 0, make(map[string]dynamo.Schema), dynamo.NewStore(dynamo.WithShards(defaultShards)), "", nil
}
