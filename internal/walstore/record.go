package walstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/dynamo"
)

// This file is the WAL's binary codec. Every record is framed as
//
//	[u32 length][u32 crc32c][body]
//
// where length counts the body bytes, crc32c covers the body (Castagnoli
// polynomial), and the body is
//
//	[u64 seq][u8 record type][payload]
//
// All integers are little-endian; variable-length fields use uvarint
// prefixes. Values serialize by kind tag; map attributes are written in
// sorted key order so the encoding is deterministic (a replayed log is
// byte-comparable across runs).

// Record types.
const (
	recCreateTable byte = 1
	recDeleteTable byte = 2
	recCommit      byte = 3
)

// Mutation kinds inside a commit record.
const (
	opPut    byte = 1
	opDelete byte = 2
	opUpdate byte = 3
)

// frameHeaderLen is the fixed per-record framing overhead.
const frameHeaderLen = 8

// castagnoli is the CRC-32C table used for every checksum in the store.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walOp is one logical mutation inside a commit record: exactly one of a
// row put (post-image), a row delete, or an update-expression application.
// Conditions are evaluated before logging, so records carry none: replay
// applies the ops unconditionally, in log order, onto the same base state.
type walOp struct {
	kind    byte
	table   string
	item    dynamo.Item         // opPut
	key     dynamo.Key          // opDelete, opUpdate
	updates []dynamo.UpdateDesc // opUpdate
}

// record is one decoded WAL record.
type record struct {
	seq    uint64
	typ    byte
	schema dynamo.Schema // recCreateTable
	name   string        // recDeleteTable
	ops    []walOp       // recCommit
}

// --- encoding ---

type encoder struct{ b []byte }

func (e *encoder) u8(v byte)        { e.b = append(e.b, v) }
func (e *encoder) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *encoder) f64(f float64) { e.u64(math.Float64bits(f)) }

func (e *encoder) value(v dynamo.Value) {
	e.u8(byte(v.Kind()))
	switch v.Kind() {
	case dynamo.KindNull:
	case dynamo.KindString:
		e.str(v.Str())
	case dynamo.KindNumber:
		e.f64(v.Num())
	case dynamo.KindBool:
		if v.BoolVal() {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case dynamo.KindBytes:
		b := v.BytesVal()
		e.uvarint(uint64(len(b)))
		e.b = append(e.b, b...)
	case dynamo.KindList:
		l := v.List()
		e.uvarint(uint64(len(l)))
		for _, el := range l {
			e.value(el)
		}
	case dynamo.KindMap:
		m := v.Map()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.str(k)
			e.value(m[k])
		}
	}
}

func (e *encoder) item(it dynamo.Item) {
	keys := make([]string, 0, len(it))
	for k := range it {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.value(it[k])
	}
}

func (e *encoder) key(k dynamo.Key) {
	e.value(k.Hash)
	e.value(k.Sort)
}

func (e *encoder) schema(s dynamo.Schema) {
	e.str(s.Name)
	e.str(s.HashKey)
	e.str(s.SortKey)
	e.uvarint(uint64(s.MaxItemSize))
	e.uvarint(uint64(s.Shards))
	e.uvarint(uint64(len(s.Indexes)))
	for _, ix := range s.Indexes {
		e.str(ix.Name)
		e.str(ix.HashKey)
		e.str(ix.SortKey)
	}
}

func (e *encoder) op(o walOp) {
	e.u8(o.kind)
	e.str(o.table)
	switch o.kind {
	case opPut:
		e.item(o.item)
	case opDelete:
		e.key(o.key)
	case opUpdate:
		e.key(o.key)
		e.uvarint(uint64(len(o.updates)))
		for _, u := range o.updates {
			e.u8(byte(u.Kind))
			e.str(u.Path.Attr)
			e.str(u.Path.MapKey)
			switch u.Kind {
			case dynamo.UpdateSet:
				e.value(u.Value)
			case dynamo.UpdateAdd:
				e.f64(u.Delta)
			}
		}
	}
}

// encodeFrame serializes a record into its on-disk frame.
func encodeFrame(r record) []byte {
	e := &encoder{b: make([]byte, 0, 128)}
	e.u64(r.seq)
	e.u8(r.typ)
	switch r.typ {
	case recCreateTable:
		e.schema(r.schema)
	case recDeleteTable:
		e.str(r.name)
	case recCommit:
		e.uvarint(uint64(len(r.ops)))
		for _, o := range r.ops {
			e.op(o)
		}
	}
	body := e.b
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
	return append(frame, body...)
}

// --- decoding ---

type decoder struct {
	b   []byte
	off int
}

var errTruncated = fmt.Errorf("walstore: truncated record body")

func (d *decoder) u8() (byte, error) {
	if d.off >= len(d.b) {
		return 0, errTruncated
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.b)-d.off) < n {
		return "", errTruncated
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) value() (dynamo.Value, error) {
	kb, err := d.u8()
	if err != nil {
		return dynamo.Null, err
	}
	switch dynamo.Kind(kb) {
	case dynamo.KindNull:
		return dynamo.Null, nil
	case dynamo.KindString:
		s, err := d.str()
		return dynamo.S(s), err
	case dynamo.KindNumber:
		f, err := d.f64()
		return dynamo.N(f), err
	case dynamo.KindBool:
		b, err := d.u8()
		return dynamo.Bool(b != 0), err
	case dynamo.KindBytes:
		n, err := d.uvarint()
		if err != nil {
			return dynamo.Null, err
		}
		if uint64(len(d.b)-d.off) < n {
			return dynamo.Null, errTruncated
		}
		b := make([]byte, n)
		copy(b, d.b[d.off:])
		d.off += int(n)
		return dynamo.Bytes(b), nil
	case dynamo.KindList:
		n, err := d.uvarint()
		if err != nil {
			return dynamo.Null, err
		}
		if n > uint64(len(d.b)-d.off) { // each element costs ≥1 byte
			return dynamo.Null, errTruncated
		}
		l := make([]dynamo.Value, n)
		for i := range l {
			if l[i], err = d.value(); err != nil {
				return dynamo.Null, err
			}
		}
		return dynamo.L(l...), nil
	case dynamo.KindMap:
		n, err := d.uvarint()
		if err != nil {
			return dynamo.Null, err
		}
		if n > uint64(len(d.b)-d.off) {
			return dynamo.Null, errTruncated
		}
		m := make(map[string]dynamo.Value, n)
		for i := uint64(0); i < n; i++ {
			k, err := d.str()
			if err != nil {
				return dynamo.Null, err
			}
			if m[k], err = d.value(); err != nil {
				return dynamo.Null, err
			}
		}
		return dynamo.M(m), nil
	}
	return dynamo.Null, fmt.Errorf("walstore: unknown value kind %d", kb)
}

func (d *decoder) item() (dynamo.Item, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)-d.off) {
		return nil, errTruncated
	}
	it := make(dynamo.Item, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		if it[k], err = d.value(); err != nil {
			return nil, err
		}
	}
	return it, nil
}

func (d *decoder) key() (dynamo.Key, error) {
	h, err := d.value()
	if err != nil {
		return dynamo.Key{}, err
	}
	s, err := d.value()
	return dynamo.Key{Hash: h, Sort: s}, err
}

func (d *decoder) schema() (dynamo.Schema, error) {
	var s dynamo.Schema
	var err error
	if s.Name, err = d.str(); err != nil {
		return s, err
	}
	if s.HashKey, err = d.str(); err != nil {
		return s, err
	}
	if s.SortKey, err = d.str(); err != nil {
		return s, err
	}
	maxSize, err := d.uvarint()
	if err != nil {
		return s, err
	}
	s.MaxItemSize = int(maxSize)
	shards, err := d.uvarint()
	if err != nil {
		return s, err
	}
	s.Shards = int(shards)
	n, err := d.uvarint()
	if err != nil {
		return s, err
	}
	if n > uint64(len(d.b)-d.off) {
		return s, errTruncated
	}
	s.Indexes = make([]dynamo.IndexSchema, n)
	for i := range s.Indexes {
		if s.Indexes[i].Name, err = d.str(); err != nil {
			return s, err
		}
		if s.Indexes[i].HashKey, err = d.str(); err != nil {
			return s, err
		}
		if s.Indexes[i].SortKey, err = d.str(); err != nil {
			return s, err
		}
	}
	return s, nil
}

func (d *decoder) op() (walOp, error) {
	var o walOp
	var err error
	if o.kind, err = d.u8(); err != nil {
		return o, err
	}
	if o.table, err = d.str(); err != nil {
		return o, err
	}
	switch o.kind {
	case opPut:
		o.item, err = d.item()
	case opDelete:
		o.key, err = d.key()
	case opUpdate:
		if o.key, err = d.key(); err != nil {
			return o, err
		}
		var n uint64
		if n, err = d.uvarint(); err != nil {
			return o, err
		}
		if n > uint64(len(d.b)-d.off) {
			return o, errTruncated
		}
		o.updates = make([]dynamo.UpdateDesc, n)
		for i := range o.updates {
			var kb byte
			if kb, err = d.u8(); err != nil {
				return o, err
			}
			o.updates[i].Kind = dynamo.UpdateKind(kb)
			if o.updates[i].Path.Attr, err = d.str(); err != nil {
				return o, err
			}
			if o.updates[i].Path.MapKey, err = d.str(); err != nil {
				return o, err
			}
			switch o.updates[i].Kind {
			case dynamo.UpdateSet:
				o.updates[i].Value, err = d.value()
			case dynamo.UpdateAdd:
				o.updates[i].Delta, err = d.f64()
			case dynamo.UpdateRemove:
			default:
				return o, fmt.Errorf("walstore: unknown update kind %d", kb)
			}
			if err != nil {
				return o, err
			}
		}
	default:
		return o, fmt.Errorf("walstore: unknown op kind %d", o.kind)
	}
	return o, err
}

// decodeBody parses a record body (the bytes the frame's CRC covers).
func decodeBody(body []byte) (record, error) {
	d := &decoder{b: body}
	var r record
	var err error
	if r.seq, err = d.u64(); err != nil {
		return r, err
	}
	if r.typ, err = d.u8(); err != nil {
		return r, err
	}
	switch r.typ {
	case recCreateTable:
		r.schema, err = d.schema()
	case recDeleteTable:
		r.name, err = d.str()
	case recCommit:
		var n uint64
		if n, err = d.uvarint(); err != nil {
			return r, err
		}
		if n > uint64(len(d.b)-d.off) {
			return r, errTruncated
		}
		r.ops = make([]walOp, n)
		for i := range r.ops {
			if r.ops[i], err = d.op(); err != nil {
				return r, err
			}
		}
	default:
		return r, fmt.Errorf("walstore: unknown record type %d", r.typ)
	}
	if err != nil {
		return r, err
	}
	if d.off != len(d.b) {
		return r, fmt.Errorf("walstore: %d trailing bytes in record body", len(d.b)-d.off)
	}
	return r, nil
}
