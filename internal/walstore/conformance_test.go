package walstore_test

import (
	"testing"

	_ "repro/internal/sim" // activates the simulator-backed conformance section
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
	"repro/internal/walstore"
)

// The durable backend must pass the same conformance suite as the
// in-memory store, under each sync policy. Every store is closed and its
// directory Fsck-audited at cleanup (storagetest.OpenWAL); the batched
// policy additionally reopens each directory cold to prove the suite's
// final state recovers.
func TestConformanceBatchedSync(t *testing.T) {
	storagetest.Run(t, func(tb testing.TB) storage.Backend {
		return storagetest.OpenWAL(tb)
	})
}

func TestConformanceSyncEach(t *testing.T) {
	storagetest.Run(t, openWith(walstore.Options{Sync: walstore.SyncEach}))
}

func TestConformanceSyncNone(t *testing.T) {
	storagetest.Run(t, openWith(walstore.Options{Sync: walstore.SyncNone}))
}

// TestConformanceTinySegments forces constant rotation and auto-compaction
// under the conformance workload.
func TestConformanceTinySegments(t *testing.T) {
	storagetest.Run(t, openWith(walstore.Options{SegmentBytes: 256, AutoCompactBytes: 4096}))
}

func openWith(opts walstore.Options) storagetest.Opener {
	return func(tb testing.TB) storage.Backend {
		dir := tb.TempDir()
		s, err := walstore.Open(dir, opts)
		if err != nil {
			tb.Fatalf("open: %v", err)
		}
		tb.Cleanup(func() {
			if err := s.Close(); err != nil {
				tb.Errorf("close: %v", err)
			}
			if err := walstore.Fsck(dir); err != nil {
				tb.Errorf("fsck: %v", err)
			}
		})
		return s
	}
}
