package cluster_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

// testTTL is the lease TTL every deterministic test runs with; clocks are
// manual, so the absolute value only matters relative to Advance calls.
const testTTL = 100 * time.Millisecond

var t0 = time.Unix(1_700_000_000, 0)

// newSharedStore opens the matrix-selected shared backend.
func newSharedStore(t *testing.T) storage.Backend { return storagetest.Open(t) }

// join creates a worker on the shared store with its own manual clock.
func join(t *testing.T, store storage.Backend, clk clock.Clock, id string, partitions int) *cluster.Worker {
	t.Helper()
	w, err := cluster.Join(cluster.Options{
		Cluster:    "test",
		ID:         id,
		Store:      store,
		LeaseTTL:   testTTL,
		Partitions: partitions,
		Clock:      clk,
	})
	if err != nil {
		t.Fatalf("join %s: %v", id, err)
	}
	return w
}

// newRuntime builds one worker's view of the shared SSF "counter": its own
// platform, the shared tables adopted, the body registered. The body
// increments state key "n" — the exactly-once probe.
func newRuntime(t *testing.T, store storage.Backend, clk clock.Clock, name string) (*core.Runtime, *platform.Platform) {
	t.Helper()
	plat := platform.New(platform.Options{ConcurrencyLimit: 1000, IDs: &uuid.Seq{Prefix: "req-" + name}})
	rt, err := core.NewRuntime(core.RuntimeOptions{
		Function: "counter",
		Store:    store,
		Platform: plat,
		Config:   core.Config{T: 10 * time.Millisecond, ICMinAge: time.Microsecond},
		Clock:    clk,
	})
	if err != nil {
		t.Fatalf("runtime %s: %v", name, err)
	}
	if err := rt.CreateDataTable("state"); err != nil {
		t.Fatalf("data table %s: %v", name, err)
	}
	core.Register(rt, func(e *core.Env, _ core.Value) (core.Value, error) {
		v, err := e.Read("state", "n")
		if err != nil {
			return dynamo.Null, err
		}
		next := dynamo.NInt(v.Int() + 1)
		if err := e.Write("state", "n", next); err != nil {
			return dynamo.Null, err
		}
		return next, nil
	})
	return rt, plat
}

func TestJoinOwnsAllPartitionsAlone(t *testing.T) {
	store := storagetest.Open(t)
	clk := clock.NewManual(t0)
	w := join(t, store, clk, "w1", 8)
	if got := len(w.OwnedPartitions()); got != 8 {
		t.Fatalf("solo worker owns %d/8 partitions", got)
	}
	if w.Epoch() != 1 {
		t.Errorf("first join epoch = %d, want 1", w.Epoch())
	}
	if err := w.HeartbeatOnce(); err != nil {
		t.Errorf("heartbeat: %v", err)
	}
}

// TestJoinDefaultPartitions pins the documented zero-value behavior: a
// first joiner that never sets Partitions creates the cluster at
// DefaultPartitions (not a bricked zero-partition layout), owns all of
// them, and hashing works; an adopting joiner with zero inherits the
// count, even when the cluster was created at a non-default one.
func TestJoinDefaultPartitions(t *testing.T) {
	store := newSharedStore(t)
	clk := clock.NewManual(t0)
	w := join(t, store, clk, "w1", 0) // all defaults
	if w.Partitions() != cluster.DefaultPartitions {
		t.Fatalf("Partitions = %d, want DefaultPartitions (%d)", w.Partitions(), cluster.DefaultPartitions)
	}
	if got := len(w.OwnedPartitions()); got != cluster.DefaultPartitions {
		t.Fatalf("solo worker owns %d/%d", got, cluster.DefaultPartitions)
	}
	if !w.OwnsIntent("any-instance-id") {
		t.Error("solo default-config worker does not own an arbitrary intent")
	}

	// Adopting zero never conflicts with a non-default cluster.
	store2 := newSharedStore(t)
	if _, err := cluster.Join(cluster.Options{
		Cluster: "odd", Store: store2, LeaseTTL: testTTL, Partitions: 5, Clock: clk, ID: "a",
	}); err != nil {
		t.Fatal(err)
	}
	b, err := cluster.Join(cluster.Options{
		Cluster: "odd", Store: store2, LeaseTTL: testTTL, Clock: clk, ID: "b",
	})
	if err != nil {
		t.Fatalf("adopting join: %v", err)
	}
	if b.Partitions() != 5 {
		t.Fatalf("adopted partitions = %d, want 5", b.Partitions())
	}
}

func TestJoinLiveIDRejected(t *testing.T) {
	store := storagetest.Open(t)
	clk := clock.NewManual(t0)
	join(t, store, clk, "w1", 4)
	_, err := cluster.Join(cluster.Options{
		Cluster: "test", ID: "w1", Store: store, LeaseTTL: testTTL, Clock: clk,
	})
	if !errors.Is(err, cluster.ErrWorkerExists) {
		t.Fatalf("rejoining a live id: err = %v, want ErrWorkerExists", err)
	}
}

func TestJoinPartitionMismatchRejected(t *testing.T) {
	store := storagetest.Open(t)
	clk := clock.NewManual(t0)
	join(t, store, clk, "w1", 4)
	_, err := cluster.Join(cluster.Options{
		Cluster: "test", ID: "w2", Store: store, LeaseTTL: testTTL, Partitions: 8, Clock: clk,
	})
	if !errors.Is(err, cluster.ErrConfigMismatch) {
		t.Fatalf("mismatched partitions: err = %v, want ErrConfigMismatch", err)
	}
}

func TestRebalanceConvergesToFairShare(t *testing.T) {
	store := storagetest.Open(t)
	clk := clock.NewManual(t0)
	a := join(t, store, clk, "a", 16)
	b := join(t, store, clk, "b", 0) // adopts the persisted partition count

	// a holds everything until it notices b; two alternating passes converge.
	for i := 0; i < 3; i++ {
		if _, _, err := a.RebalanceOnce(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.RebalanceOnce(); err != nil {
			t.Fatal(err)
		}
	}
	na, nb := len(a.OwnedPartitions()), len(b.OwnedPartitions())
	if na != 8 || nb != 8 {
		t.Fatalf("shares after rebalance: a=%d b=%d, want 8/8", na, nb)
	}
	seen := map[int]bool{}
	for _, p := range append(a.OwnedPartitions(), b.OwnedPartitions()...) {
		if seen[p] {
			t.Fatalf("partition %d owned twice", p)
		}
		seen[p] = true
	}
}

func TestDetectMarksDeadAndStealsPartitions(t *testing.T) {
	store := storagetest.Open(t)
	clkA, clkB := clock.NewManual(t0), clock.NewManual(t0)
	a := join(t, store, clkA, "a", 8)
	b := join(t, store, clkB, "b", 0)
	for i := 0; i < 3; i++ {
		a.RebalanceOnce() //nolint:errcheck
		b.RebalanceOnce() //nolint:errcheck
	}

	// a falls silent; its lease runs out on b's clock.
	clkB.Advance(2 * testTTL)
	dead, stolen, err := b.DetectOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != "a" {
		t.Fatalf("dead = %v, want [a]", dead)
	}
	if stolen != 4 {
		t.Fatalf("stole %d partitions, want 4", stolen)
	}
	if got := len(b.OwnedPartitions()); got != 8 {
		t.Fatalf("b owns %d/8 after steal", got)
	}
	// The dead worker notices at its next heartbeat.
	if err := a.HeartbeatOnce(); !errors.Is(err, cluster.ErrFenced) {
		t.Fatalf("dead worker heartbeat: %v, want ErrFenced", err)
	}
	if !a.Fenced() {
		t.Error("a not fenced after failed heartbeat")
	}
}

func TestRejoinAfterDeathBumpsEpoch(t *testing.T) {
	store := storagetest.Open(t)
	clkA, clkB := clock.NewManual(t0), clock.NewManual(t0)
	a := join(t, store, clkA, "a", 4)
	b := join(t, store, clkB, "b", 0)

	clkB.Advance(2 * testTTL)
	if _, _, err := b.DetectOnce(); err != nil {
		t.Fatal(err)
	}
	clkA.Advance(2 * testTTL)
	a2 := join(t, store, clkA, "a", 0)
	if a2.Epoch() != 2 {
		t.Fatalf("rejoined epoch = %d, want 2", a2.Epoch())
	}
	if a.Epoch() == a2.Epoch() {
		t.Error("old and new incarnation share an epoch")
	}
}

func TestGracefulLeaveReleasesPartitions(t *testing.T) {
	store := storagetest.Open(t)
	clk := clock.NewManual(t0)
	a := join(t, store, clk, "a", 6)
	b := join(t, store, clk, "b", 0)
	for i := 0; i < 3; i++ {
		a.RebalanceOnce() //nolint:errcheck
		b.RebalanceOnce() //nolint:errcheck
	}
	if err := a.Leave(); err != nil {
		t.Fatal(err)
	}
	// No TTL wait: the partitions are immediately claimable.
	if _, _, err := b.RebalanceOnce(); err != nil {
		t.Fatal(err)
	}
	if got := len(b.OwnedPartitions()); got != 6 {
		t.Fatalf("b owns %d/6 after a left", got)
	}
	ws, err := b.Workers()
	if err != nil {
		t.Fatal(err)
	}
	for _, wi := range ws {
		if wi.ID == "a" && wi.State != "dead" {
			t.Errorf("left worker state = %q, want dead", wi.State)
		}
	}
}

// TestZombieCollectorClaimFenced is the fencing regression the cluster
// runtime exists for: a worker that stalls past its lease, is marked dead
// and robbed, and then wakes and tries to restart an in-flight intent must
// have that claim rejected by the store — not by its own (stale) view of the
// world — and the intent must complete exactly once on the thief.
func TestZombieCollectorClaimFenced(t *testing.T) {
	store := storagetest.Open(t)
	clkA, clkB := clock.NewManual(t0), clock.NewManual(t0)
	a := join(t, store, clkA, "a", 4)
	b := join(t, store, clkB, "b", 0)
	rtA, platA := newRuntime(t, store, clkA, "a")
	rtB, platB := newRuntime(t, store, clkB, "b")
	a.Attach(rtA)
	b.Attach(rtB)

	// a owns every partition (it joined first and b never rebalanced), so
	// the crashing workflow below is a's to recover — until it stalls.
	if got := len(a.OwnedPartitions()); got != 4 {
		t.Fatalf("a owns %d/4", got)
	}

	// A workflow crashes on a's platform right after registering its
	// intent: a pending intent with no steps logged.
	platA.SetFaults(&platform.CrashNthOp{Function: "counter", N: 1})
	_, err := platA.Invoke("counter", core.ClientEnvelope(dynamo.Null))
	if !errors.Is(err, platform.ErrCrashed) {
		t.Fatalf("seeded crash: %v", err)
	}
	platA.SetFaults(nil)

	// a stalls (zombie); its lease expires; b detects and steals everything.
	clkA.Advance(2 * testTTL)
	clkB.Advance(2 * testTTL)
	dead, stolen, err := b.DetectOnce()
	if err != nil || len(dead) != 1 || stolen != 4 {
		t.Fatalf("detect: dead=%v stolen=%d err=%v", dead, stolen, err)
	}

	// The zombie wakes and runs its collector with its stale tokens. Its
	// view still says it owns the intent's partition, so it attempts the
	// claim — and the store's fence check rejects it.
	restarted, err := a.CollectOnce()
	if err != nil {
		t.Fatalf("zombie collect: %v", err)
	}
	if restarted != 0 {
		t.Fatalf("zombie restarted %d intents; fencing failed", restarted)
	}
	if got := rtA.Stats().FencedClaims.Load(); got < 1 {
		t.Fatalf("FencedClaims = %d, want ≥ 1 (the rejected zombie write)", got)
	}

	// The thief recovers the workflow.
	restarted, err = b.CollectOnce()
	if err != nil {
		t.Fatal(err)
	}
	if restarted != 1 {
		t.Fatalf("b restarted %d intents, want 1", restarted)
	}
	platB.Drain()
	v, err := rtB.PeekState("state", "n")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 1 {
		t.Fatalf("counter = %d after recovery, want exactly 1", v.Int())
	}
	if err := core.Fsck(rtB); err != nil {
		t.Errorf("fsck after recovery: %v", err)
	}
}

// TestStolenPartitionEpochMonotonic pins the fencing-token invariant every
// ownership transition relies on: claim, steal, release each bump the
// partition epoch by exactly one, so no two owners can ever hold the same
// (owner, epoch) authority.
func TestStolenPartitionEpochMonotonic(t *testing.T) {
	store := storagetest.Open(t)
	clkA, clkB := clock.NewManual(t0), clock.NewManual(t0)
	a := join(t, store, clkA, "a", 3)
	b := join(t, store, clkB, "b", 0)

	before, err := b.PartitionTable()
	if err != nil {
		t.Fatal(err)
	}
	clkB.Advance(2 * testTTL)
	if _, _, err := b.DetectOnce(); err != nil {
		t.Fatal(err)
	}
	after, err := b.PartitionTable()
	if err != nil {
		t.Fatal(err)
	}
	for i := range after {
		if after[i].Owner != "b" {
			t.Errorf("partition %d owner = %q, want b", after[i].Partition, after[i].Owner)
		}
		if after[i].Epoch != before[i].Epoch+1 {
			t.Errorf("partition %d epoch %d → %d, want one bump",
				after[i].Partition, before[i].Epoch, after[i].Epoch)
		}
	}
	_ = a
}

// TestRejoinAfterFencingRestoresWorker pins the liveness half of fencing: a
// worker fenced by a stall is not gone for good — Rejoin brings the same
// identity back at a higher epoch with a clean slate, and rebalancing earns
// its share of partitions back.
func TestRejoinAfterFencingRestoresWorker(t *testing.T) {
	store := newSharedStore(t)
	clkA, clkB := clock.NewManual(t0), clock.NewManual(t0)
	a := join(t, store, clkA, "a", 4)
	b := join(t, store, clkB, "b", 0)

	// a stalls; b takes over the pool.
	clkA.Advance(2 * testTTL)
	clkB.Advance(2 * testTTL)
	if _, _, err := b.DetectOnce(); err != nil {
		t.Fatal(err)
	}
	if err := a.HeartbeatOnce(); !errors.Is(err, cluster.ErrFenced) {
		t.Fatalf("stalled heartbeat: %v", err)
	}

	// Rejoin: same identity, higher epoch, nothing owned yet.
	oldEpoch := a.Epoch()
	if err := a.Rejoin(); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if a.Fenced() {
		t.Fatal("still fenced after rejoin")
	}
	if a.Epoch() <= oldEpoch {
		t.Fatalf("rejoin epoch %d not above %d", a.Epoch(), oldEpoch)
	}
	if n := len(a.OwnedPartitions()); n != 0 {
		t.Fatalf("rejoined worker owns %d partitions before rebalancing", n)
	}
	if err := a.HeartbeatOnce(); err != nil {
		t.Fatalf("heartbeat after rejoin: %v", err)
	}
	// Rebalancing splits the pool again.
	for i := 0; i < 3; i++ {
		b.RebalanceOnce() //nolint:errcheck
		a.RebalanceOnce() //nolint:errcheck
	}
	na, nb := len(a.OwnedPartitions()), len(b.OwnedPartitions())
	if na != 2 || nb != 2 {
		t.Fatalf("shares after rejoin rebalance: a=%d b=%d, want 2/2", na, nb)
	}
	// Rejoin while live is a no-op.
	if err := a.Rejoin(); err != nil {
		t.Fatalf("live rejoin: %v", err)
	}
}

func TestPartitionOfStableAndInRange(t *testing.T) {
	ids := []string{"", "a", "req-0001", "instance-uuid-1234", "counter"}
	for _, id := range ids {
		p := cluster.PartitionOf(id, 16)
		if p < 0 || p >= 16 {
			t.Fatalf("PartitionOf(%q) = %d out of range", id, p)
		}
		if p != cluster.PartitionOf(id, 16) {
			t.Fatalf("PartitionOf(%q) unstable", id)
		}
	}
}
