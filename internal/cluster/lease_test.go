package cluster_test

// Lease-protocol edge cases: the heartbeat/expiry boundary, detectors racing
// each other for one expired lease, clock skew between workers, and the
// lease and partition tables surviving a durable-backend restart.

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/dynamo"
	"repro/internal/walstore"
)

// TestHeartbeatExactlyAtExpiry pins the boundary semantics: a lease is dead
// exactly at its deadline (ExpiresAt ≤ now), and whichever of heartbeat and
// verdict commits first wins atomically — there is no interleaving where
// both succeed.
func TestHeartbeatExactlyAtExpiry(t *testing.T) {
	t.Run("heartbeat first survives", func(t *testing.T) {
		store := newSharedStore(t)
		clkA, clkB := clock.NewManual(t0), clock.NewManual(t0)
		a := join(t, store, clkA, "a", 4)
		b := join(t, store, clkB, "b", 0)
		clkA.Advance(testTTL) // now == ExpiresAt on a's clock
		clkB.Advance(testTTL)
		if err := a.HeartbeatOnce(); err != nil {
			t.Fatalf("heartbeat at the deadline: %v", err)
		}
		dead, _, err := b.DetectOnce()
		if err != nil {
			t.Fatal(err)
		}
		if len(dead) != 0 {
			t.Fatalf("renewed lease marked dead: %v", dead)
		}
	})
	t.Run("verdict first fences", func(t *testing.T) {
		store := newSharedStore(t)
		clkA, clkB := clock.NewManual(t0), clock.NewManual(t0)
		a := join(t, store, clkA, "a", 4)
		b := join(t, store, clkB, "b", 0)
		clkA.Advance(testTTL)
		clkB.Advance(testTTL) // now == ExpiresAt: already expired, by ≤
		dead, stolen, err := b.DetectOnce()
		if err != nil {
			t.Fatal(err)
		}
		if len(dead) != 1 || stolen != 4 {
			t.Fatalf("detect at the deadline: dead=%v stolen=%d", dead, stolen)
		}
		if err := a.HeartbeatOnce(); !errors.Is(err, cluster.ErrFenced) {
			t.Fatalf("late heartbeat: %v, want ErrFenced", err)
		}
	})
}

// TestTwoWorkersRaceOneExpiredLease runs two detectors concurrently against
// one dead worker: exactly one marks it dead, every partition lands with
// exactly one thief, and each stolen partition's epoch advances exactly once
// — so the loser of each per-partition race holds no authority at all.
func TestTwoWorkersRaceOneExpiredLease(t *testing.T) {
	store := newSharedStore(t)
	clkC := clock.NewManual(t0)
	clkB, clkD := clock.NewManual(t0), clock.NewManual(t0)
	_ = join(t, store, clkC, "c", 8) // owns everything, then dies
	b := join(t, store, clkB, "b", 0)
	d := join(t, store, clkD, "d", 0)

	before, err := b.PartitionTable()
	if err != nil {
		t.Fatal(err)
	}

	clkB.Advance(2 * testTTL)
	clkD.Advance(2 * testTTL)
	// b and d renew their own leases first; only c's is left expired.
	if err := b.HeartbeatOnce(); err != nil {
		t.Fatal(err)
	}
	if err := d.HeartbeatOnce(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]string, 2)
	for i, w := range []*cluster.Worker{b, d} {
		wg.Add(1)
		go func(i int, w *cluster.Worker) {
			defer wg.Done()
			dead, _, err := w.DetectOnce()
			if err != nil {
				t.Errorf("detector %d: %v", i, err)
			}
			results[i] = dead
		}(i, w)
	}
	wg.Wait()

	if marks := len(results[0]) + len(results[1]); marks != 1 {
		t.Fatalf("dead verdicts = %d (%v, %v), want exactly 1", marks, results[0], results[1])
	}
	owned := map[int]string{}
	for _, p := range b.OwnedPartitions() {
		owned[p] = "b"
	}
	for _, p := range d.OwnedPartitions() {
		if prev, dup := owned[p]; dup {
			t.Fatalf("partition %d owned by both %s and d", p, prev)
		}
		owned[p] = "d"
	}
	after, err := b.PartitionTable()
	if err != nil {
		t.Fatal(err)
	}
	for i, pi := range after {
		if pi.Owner != "b" && pi.Owner != "d" {
			t.Errorf("partition %d owner = %q after steal", pi.Partition, pi.Owner)
		}
		if pi.Epoch != before[i].Epoch+1 {
			t.Errorf("partition %d epoch %d → %d, want exactly one bump",
				pi.Partition, before[i].Epoch, pi.Epoch)
		}
		if owner, ok := owned[pi.Partition]; !ok || owner != pi.Owner {
			t.Errorf("partition %d: table says %q, caches say %q", pi.Partition, pi.Owner, owner)
		}
	}
}

// TestClockSkewedHeartbeats documents the skew contract (OPERATIONS.md):
// skew well under the TTL is harmless, and a worker whose clock lags by more
// than the TTL is treated as dead — safely, because fencing stops it rather
// than letting two workers own one partition.
func TestClockSkewedHeartbeats(t *testing.T) {
	t.Run("small skew is harmless", func(t *testing.T) {
		store := newSharedStore(t)
		clkA := clock.NewManual(t0)
		clkB := clock.NewManual(t0.Add(testTTL / 4)) // b runs ahead
		a := join(t, store, clkA, "a", 4)
		b := join(t, store, clkB, "b", 0)
		for i := 0; i < 8; i++ {
			clkA.Advance(testTTL / 4)
			clkB.Advance(testTTL / 4)
			if err := a.HeartbeatOnce(); err != nil {
				t.Fatalf("tick %d: %v", i, err)
			}
			dead, _, err := b.DetectOnce()
			if err != nil {
				t.Fatal(err)
			}
			if len(dead) != 0 {
				t.Fatalf("tick %d: skewed detector killed a live worker: %v", i, dead)
			}
		}
	})
	t.Run("skew beyond TTL fences the laggard", func(t *testing.T) {
		store := newSharedStore(t)
		clkA := clock.NewManual(t0)
		clkB := clock.NewManual(t0.Add(2 * testTTL)) // b far ahead: a's lease looks ancient
		a := join(t, store, clkA, "a", 4)
		// To b, a is already expired at join time — but expiry alone never
		// moves partitions: only the detector's dead verdict does, because
		// the verdict is what guarantees the victim gets fenced.
		b := join(t, store, clkB, "b", 0)
		if got := len(b.OwnedPartitions()); got != 0 {
			t.Fatalf("skewed joiner claimed %d partitions without a verdict", got)
		}
		// The laggard renews happily — by its own clock nothing is wrong.
		if err := a.HeartbeatOnce(); err != nil {
			t.Fatal(err)
		}
		// b's detector declares a dead (its renewal is still in b's past)
		// and takes everything over.
		dead, stolen, err := b.DetectOnce()
		if err != nil {
			t.Fatal(err)
		}
		if len(dead) != 1 || dead[0] != "a" || stolen != 4 {
			t.Fatalf("skewed detect: dead=%v stolen=%d, want [a], 4", dead, stolen)
		}
		// The victim is fenced, not split-brained: its next heartbeat fails
		// and it owns nothing.
		if err := a.HeartbeatOnce(); !errors.Is(err, cluster.ErrFenced) {
			t.Fatalf("laggard heartbeat: %v, want ErrFenced", err)
		}
		if n := len(a.OwnedPartitions()); n != 0 {
			t.Errorf("fenced laggard still owns %d partitions", n)
		}
	})
}

// TestRebalanceNeverStealsFromUnmarkedOwner pins the steal-requires-verdict
// rule: a worker whose lease looks expired but was never marked dead keeps
// its partitions through any number of peer rebalances — only DetectOnce's
// dead verdict (which guarantees the victim's next heartbeat fences it) may
// move them. Without the rule, a slow-but-alive worker could be robbed
// silently: never fenced, its ownership cache stays inflated, it stops
// claiming its fair share, and unowned partitions can go permanently
// unclaimed while every worker believes it is at fair share.
func TestRebalanceNeverStealsFromUnmarkedOwner(t *testing.T) {
	store := newSharedStore(t)
	clkA, clkB := clock.NewManual(t0), clock.NewManual(t0)
	a := join(t, store, clkA, "a", 4) // owns all 4
	b := join(t, store, clkB, "b", 0)

	// a goes silent past its TTL on b's clock — but no verdict yet.
	clkB.Advance(2 * testTTL)
	if err := b.HeartbeatOnce(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := b.RebalanceOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(b.OwnedPartitions()); got != 0 {
		t.Fatalf("rebalance stole %d partitions from an unmarked owner", got)
	}
	// a is in fact alive (just slow); it renews and keeps working.
	clkA.Advance(2 * testTTL)
	if err := a.HeartbeatOnce(); err != nil {
		t.Fatalf("slow-but-alive worker was robbed: %v", err)
	}
	if got := len(a.OwnedPartitions()); got != 4 {
		t.Fatalf("slow-but-alive worker owns %d/4", got)
	}
}

// TestRejoinAdoptsStaleTableRowsBeyondFairShare is the orphaned-partition
// regression: a detector can mark a worker dead and crash before stealing
// anything, leaving the partition table naming a worker whose own cache was
// wiped by the fencing. When that worker rejoins, it MUST adopt every
// partition still recorded under its name — even beyond its fair share —
// because no peer may claim a live worker's partitions; adopt-then-release
// is the only path that frees them. Before the fix, the fair-share cap
// stopped adoption early and the excess partitions (and every pending
// intent hashed into them) were orphaned forever.
func TestRejoinAdoptsStaleTableRowsBeyondFairShare(t *testing.T) {
	store := newSharedStore(t)
	clk := clock.NewManual(t0)
	a := join(t, store, clk, "a", 4) // owns all 4

	// A detector marks a dead... and dies before stealing (simulated by
	// writing the verdict directly). The partition table still says a owns
	// everything.
	if err := store.Update("cluster.test.leases", dynamo.HK(dynamo.S("a")), nil,
		dynamo.Set(dynamo.A("State"), dynamo.S("dead"))); err != nil {
		t.Fatal(err)
	}
	if err := a.HeartbeatOnce(); !errors.Is(err, cluster.ErrFenced) {
		t.Fatalf("heartbeat after verdict: %v, want ErrFenced", err)
	}
	if err := a.Rejoin(); err != nil {
		t.Fatal(err)
	}
	b := join(t, store, clk, "b", 0) // fair share is now 2 each

	// a adopts all 4 stale rows (beyond fair share) and trims down; b picks
	// the released ones up.
	for i := 0; i < 3; i++ {
		if _, _, err := a.RebalanceOnce(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.RebalanceOnce(); err != nil {
			t.Fatal(err)
		}
	}
	na, nb := len(a.OwnedPartitions()), len(b.OwnedPartitions())
	if na != 2 || nb != 2 {
		t.Fatalf("shares after rejoin: a=%d b=%d, want 2/2", na, nb)
	}
	// The invariant that kills the orphan bug: every partition the table
	// attributes to a live worker is in that worker's cache.
	parts, err := a.PartitionTable()
	if err != nil {
		t.Fatal(err)
	}
	cached := map[string]map[int]bool{"a": {}, "b": {}}
	for _, p := range a.OwnedPartitions() {
		cached["a"][p] = true
	}
	for _, p := range b.OwnedPartitions() {
		cached["b"][p] = true
	}
	for _, pi := range parts {
		if pi.Owner == "" {
			t.Errorf("partition %d unowned after convergence", pi.Partition)
			continue
		}
		if !cached[pi.Owner][pi.Partition] {
			t.Errorf("partition %d: table says %q owns it, but its cache disagrees (orphaned)",
				pi.Partition, pi.Owner)
		}
	}
}

// TestLeaseTableSurvivesWALRestart reopens a durable store and checks the
// cluster's authority records — lease epochs, partition owners and fencing
// epochs, the partition-count config — recovered exactly, so fencing tokens
// stay monotonic across a full restart of every process.
func TestLeaseTableSurvivesWALRestart(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewManual(t0)

	s1, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w1 := join(t, s1, clk, "w1", 4)
	if got := len(w1.OwnedPartitions()); got != 4 {
		t.Fatalf("w1 owns %d/4", got)
	}
	epoch1 := w1.Epoch()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything restarts later: same directory, fresh processes.
	clk.Advance(3 * testTTL)
	s2, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	w2 := join(t, s2, clk, "w2", 0)
	if w2.Partitions() != 4 {
		t.Fatalf("partition count after restart = %d, want 4 (persisted config)", w2.Partitions())
	}
	// w1's lease survived, expired; the detector declares it dead and the
	// partitions move with bumped epochs.
	dead, _, err := w2.DetectOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != "w1" {
		t.Fatalf("dead after restart = %v, want [w1]", dead)
	}
	if _, _, err := w2.RebalanceOnce(); err != nil {
		t.Fatal(err)
	}
	if got := len(w2.OwnedPartitions()); got != 4 {
		t.Fatalf("w2 owns %d/4 after restart recovery", got)
	}
	parts, err := w2.PartitionTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range parts {
		if pi.Owner != "w2" {
			t.Errorf("partition %d owner = %q", pi.Partition, pi.Owner)
		}
		if pi.Epoch != 2 { // 1 from w1's claim, +1 from the steal
			t.Errorf("partition %d epoch = %d, want 2", pi.Partition, pi.Epoch)
		}
	}
	// The identity itself can rejoin — at an epoch above its durable one.
	w1b := join(t, s2, clk, "w1", 0)
	if w1b.Epoch() <= epoch1 {
		t.Errorf("rejoined epoch %d not above pre-restart %d", w1b.Epoch(), epoch1)
	}
}
