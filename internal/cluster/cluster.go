// Package cluster is the multi-worker distributed runtime: it lets N
// independent worker processes — each hosting its own platform, function
// registry, collectors, and event-source mappers — cooperate over one shared
// storage.Backend with crash tolerance, the deployment shape the paper's
// fault-tolerance story assumes (§2.1: a fleet of stateless workers
// re-invoking timed-out SSFs over shared logs) and the one Netherite treats
// as the defining serverless workload (partition ownership moving between
// compute nodes).
//
// The design is peer-to-peer: there is no coordinator process, only shared
// tables.
//
//   - A lease table records one row per worker: a monotonically increasing
//     Epoch (the worker-identity fencing token), an ExpiresAt heartbeat
//     deadline, and a live/dead State. Workers renew their lease with a
//     conditional write guarded on their epoch; a renewal that fails means
//     the worker has been fenced and must stop claiming work.
//
//   - A partition table divides the intent space (and the per-function
//     invocation queues) into a fixed number of partitions, each owned by at
//     most one worker. Every ownership transition — claim, steal, release —
//     bumps the partition's Epoch, so an ownership record doubles as a
//     fencing token: a worker that lost a partition holds a stale epoch and
//     every claim it fences with it is rejected by the store.
//
//   - Each worker runs a failure detector: a scan that marks workers whose
//     lease expired as dead (guarded on the observed epoch and deadline, so
//     a heartbeat landing at the same instant wins or loses atomically) and
//     then steals the dead worker's partitions. The next collection pass on
//     the thief re-executes the dead worker's in-flight intents — work
//     stealing with exactly-once preserved, because intent claims ride in
//     one store transaction with a condition check on the thief's partition
//     epoch (core.CollectorGate).
//
// Safety never rests on the failure detector being right: marking a live
// worker dead (clock skew, a long GC pause) only fences it — the victim
// discovers the fencing at its next heartbeat and stops, and until then the
// store rejects its claims. Liveness rests on leases: as long as some worker
// heartbeats and detects, every pending intent is eventually owned by a live
// worker's collector. See OPERATIONS.md for tuning and failure modes.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

// Cluster errors.
var (
	// ErrFenced reports that this worker's lease was revoked (its epoch no
	// longer matches, or it was marked dead): the worker must stop claiming
	// work. Rejoin with a fresh Join to resume under a new epoch.
	ErrFenced = errors.New("cluster: worker fenced (lease revoked)")
	// ErrWorkerExists reports a Join with a worker id that is still live and
	// unexpired in the lease table.
	ErrWorkerExists = errors.New("cluster: worker id already live")
	// ErrConfigMismatch reports a Join whose options disagree with the
	// cluster's persisted configuration (partition count).
	ErrConfigMismatch = errors.New("cluster: options disagree with persisted cluster config")
)

// Defaults for Options zero values.
const (
	DefaultLeaseTTL   = time.Second
	DefaultPartitions = 16
)

// Lease and partition table attributes.
const (
	attrWorkerID   = "WorkerId"
	attrPartID     = "PartId"
	attrEpoch      = "Epoch"
	attrExpiresAt  = "ExpiresAt"
	attrState      = "State"
	attrJoinedAt   = "JoinedAt"
	attrOwner      = "Owner"
	attrPartitions = "Partitions"
)

// Lease states.
const (
	stateLive = "live"
	stateDead = "dead"
)

// configRowID keys the cluster's persisted configuration inside the lease
// table ("~" cannot collide with worker ids, which Join rejects).
const configRowID = "~config"

// leaseTableOf and partTableOf name the cluster's shared tables.
func leaseTableOf(cluster string) string { return "cluster." + cluster + ".leases" }
func partTableOf(cluster string) string  { return "cluster." + cluster + ".parts" }

// PartitionOf maps an instance id (or any string key) to its partition in an
// n-partition cluster — FNV-1a, the stable assignment every worker agrees
// on.
func PartitionOf(id string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(id)) //nolint:errcheck // fnv never fails
	return int(h.Sum32() % uint32(n))
}

// partID renders a partition's row key.
func partID(p int) string { return fmt.Sprintf("p%04d", p) }

// ensureTables creates (or adopts) the cluster's lease and partition tables
// and seeds the partition rows. Concurrent joiners race benignly: creation
// collisions adopt, row seeds are guarded on absence.
func ensureTables(store storage.Backend, cluster string, partitions int) (gotPartitions int, err error) {
	for _, s := range []dynamo.Schema{
		{Name: leaseTableOf(cluster), HashKey: attrWorkerID},
		{Name: partTableOf(cluster), HashKey: attrPartID},
	} {
		if err := store.CreateTable(s); err != nil && !errors.Is(err, dynamo.ErrTableExists) {
			return 0, err
		}
	}
	// Persist the partition count with the first joiner; later joiners adopt
	// it (a partition layout, like a table layout, is fixed at creation).
	// A zero request means "adopt, or the default when creating" — resolve
	// it BEFORE persisting, or a fresh cluster would durably record a
	// zero-partition layout nothing can join or hash into. The mismatch
	// check compares the caller's *request*, so an adopting zero never
	// conflicts with a cluster created at a non-default count.
	requested := partitions
	if partitions == 0 {
		partitions = DefaultPartitions
	}
	cfg := dynamo.Item{
		attrWorkerID:   dynamo.S(configRowID),
		attrPartitions: dynamo.NInt(int64(partitions)),
	}
	err = store.Put(leaseTableOf(cluster), cfg, dynamo.NotExists(dynamo.A(attrWorkerID)))
	switch {
	case err == nil:
	case errors.Is(err, dynamo.ErrConditionFailed):
		row, ok, gerr := store.Get(leaseTableOf(cluster), dynamo.HK(dynamo.S(configRowID)))
		if gerr != nil || !ok {
			return 0, fmt.Errorf("cluster: read config row: %v", gerr)
		}
		stored := int(row[attrPartitions].Int())
		if requested != 0 && requested != stored {
			return 0, fmt.Errorf("%w: Partitions=%d but cluster has %d", ErrConfigMismatch, requested, stored)
		}
		partitions = stored
	default:
		return 0, err
	}
	for p := 0; p < partitions; p++ {
		row := dynamo.Item{
			attrPartID: dynamo.S(partID(p)),
			attrOwner:  dynamo.S(""),
			attrEpoch:  dynamo.NInt(0),
		}
		err := store.Put(partTableOf(cluster), row, dynamo.NotExists(dynamo.A(attrPartID)))
		if err != nil && !errors.Is(err, dynamo.ErrConditionFailed) {
			return 0, err
		}
	}
	return partitions, nil
}

// WorkerInfo is one lease-table row, decoded for inspection.
type WorkerInfo struct {
	ID        string
	Epoch     int64
	State     string // "live" or "dead"
	ExpiresAt int64  // microseconds since the epoch
	JoinedAt  int64
}

// PartitionInfo is one partition-table row, decoded for inspection.
type PartitionInfo struct {
	Partition int
	Owner     string // "" when unowned
	Epoch     int64  // fencing token; bumps on every ownership transition
}
