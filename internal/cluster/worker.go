package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/uuid"
)

// Options configure a Worker's Join.
type Options struct {
	// Cluster names the cluster (the shared-table prefix); workers with the
	// same name on the same Store form one pool. Default "main".
	Cluster string
	// ID is the worker's identity in the lease table; generated when empty.
	// Rejoining a dead or expired id resumes that identity at a higher
	// epoch.
	ID string
	// Store is the shared backend every worker of the cluster coordinates
	// over. Required.
	Store storage.Backend
	// LeaseTTL is how long a heartbeat keeps the worker's lease alive; a
	// worker silent for longer is marked dead and its work stolen. 0 means
	// DefaultLeaseTTL. Worker clock skew must stay well under this bound
	// (see OPERATIONS.md).
	LeaseTTL time.Duration
	// HeartbeatEvery is the Start loop's renewal period. 0 means LeaseTTL/4.
	HeartbeatEvery time.Duration
	// DetectEvery is the Start loop's failure-detection period. 0 means
	// LeaseTTL/2.
	DetectEvery time.Duration
	// RebalanceEvery is the Start loop's partition-rebalance period. 0 means
	// LeaseTTL.
	RebalanceEvery time.Duration
	// CollectEvery is the Start loop's intent-collection period. 0 means
	// LeaseTTL.
	CollectEvery time.Duration
	// PollEvery is the Start loop's idle delay between polls of the owned
	// event-source mappers. 0 means 2ms.
	PollEvery time.Duration
	// Partitions is the cluster's partition count; only the first joiner's
	// value matters (later joiners adopt the persisted count, and error if
	// they ask for a different one). 0 adopts, or DefaultPartitions when
	// creating.
	Partitions int
	// Clock defaults to the wall clock (tests inject clock.Manual to expire
	// leases deterministically).
	Clock clock.Clock
	// IDs mints worker ids when ID is empty; defaults to random UUIDs.
	IDs uuid.Source
}

func (o Options) withDefaults() Options {
	if o.Cluster == "" {
		o.Cluster = "main"
	}
	if o.LeaseTTL == 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = o.LeaseTTL / 4
	}
	if o.DetectEvery == 0 {
		o.DetectEvery = o.LeaseTTL / 2
	}
	if o.RebalanceEvery == 0 {
		o.RebalanceEvery = o.LeaseTTL
	}
	if o.CollectEvery == 0 {
		o.CollectEvery = o.LeaseTTL
	}
	if o.PollEvery == 0 {
		o.PollEvery = 2 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	if o.IDs == nil {
		o.IDs = uuid.Random{}
	}
	return o
}

// Stats counts a worker's cluster-protocol activity.
type Stats struct {
	// Heartbeats renewed and failure-detector passes run.
	Heartbeats atomic.Int64
	Detects    atomic.Int64
	// DeadMarked counts workers this worker's detector declared dead;
	// Steals, Claims and Releases count partition ownership transitions this
	// worker performed (steals from dead workers, claims of unowned
	// partitions, voluntary releases while over fair share).
	DeadMarked atomic.Int64
	Steals     atomic.Int64
	Claims     atomic.Int64
	Releases   atomic.Int64
	// Restarts counts intents this worker's collection passes re-launched.
	Restarts atomic.Int64
}

// StatsView is a point-in-time copy for reporting — the common snapshot
// shape shared with core.Stats, dynamo.Metrics, and the other subsystems.
type StatsView struct {
	Heartbeats, Detects, DeadMarked int64
	Steals, Claims, Releases        int64
	Restarts                        int64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsView {
	return StatsView{
		Heartbeats: s.Heartbeats.Load(),
		Detects:    s.Detects.Load(),
		DeadMarked: s.DeadMarked.Load(),
		Steals:     s.Steals.Load(),
		Claims:     s.Claims.Load(),
		Releases:   s.Releases.Load(),
		Restarts:   s.Restarts.Load(),
	}
}

// Worker is one member of a cluster: a lease it heartbeats, the partitions
// it owns, and the runtimes and event-source mappers whose work it drives.
// Create with Join; drive deterministically with the *Once methods or start
// the background loops with Start.
type Worker struct {
	id      string
	cluster string
	store   storage.Backend
	clk     clock.Clock
	opts    Options

	partitions int
	leases     string
	parts      string

	mu     sync.Mutex
	epoch  int64
	owned  map[int]int64 // partition → fencing epoch under which we own it
	fenced bool

	rtMu     sync.Mutex
	runtimes []*core.Runtime
	mappers  []ownedMapper

	loopMu  sync.Mutex
	stopCh  chan struct{}
	started bool
	wg      sync.WaitGroup
	paused  atomic.Bool

	stats Stats
}

// ownedMapper is one queue→function mapping the worker polls while it owns
// the mapping's partition.
type ownedMapper struct {
	part int
	fn   string
	m    *platform.Mapper
}

// Join registers a worker in the cluster: it creates or adopts the shared
// tables, acquires an epoch-fenced lease, and claims an initial fair share
// of partitions. The returned worker owns no background goroutines until
// Start.
func Join(opts Options) (*Worker, error) {
	opts = opts.withDefaults()
	if opts.Store == nil {
		return nil, fmt.Errorf("cluster: Join: Store is required")
	}
	if opts.ID == "" {
		opts.ID = "w-" + opts.IDs.NewString()
	}
	if opts.ID == configRowID {
		return nil, fmt.Errorf("cluster: Join: reserved worker id %q", opts.ID)
	}
	partitions, err := ensureTables(opts.Store, opts.Cluster, opts.Partitions)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		id:         opts.ID,
		cluster:    opts.Cluster,
		store:      opts.Store,
		clk:        opts.Clock,
		opts:       opts,
		partitions: partitions,
		leases:     leaseTableOf(opts.Cluster),
		parts:      partTableOf(opts.Cluster),
		owned:      make(map[int]int64),
	}
	if err := w.acquireLease(); err != nil {
		return nil, err
	}
	if _, _, err := w.RebalanceOnce(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustJoin is Join, panicking on error; for setup code.
func MustJoin(opts Options) *Worker {
	w, err := Join(opts)
	if err != nil {
		panic(err)
	}
	return w
}

// acquireLease installs (or takes over) this worker's lease row.
func (w *Worker) acquireLease() error {
	now := w.now()
	exp := now + w.opts.LeaseTTL.Microseconds()
	row, ok, err := w.store.Get(w.leases, dynamo.HK(dynamo.S(w.id)))
	if err != nil {
		return err
	}
	if !ok {
		item := dynamo.Item{
			attrWorkerID:  dynamo.S(w.id),
			attrEpoch:     dynamo.NInt(1),
			attrState:     dynamo.S(stateLive),
			attrExpiresAt: dynamo.NInt(exp),
			attrJoinedAt:  dynamo.NInt(now),
		}
		err := w.store.Put(w.leases, item, dynamo.NotExists(dynamo.A(attrWorkerID)))
		if errors.Is(err, dynamo.ErrConditionFailed) {
			return fmt.Errorf("%w: %s (lost the join race)", ErrWorkerExists, w.id)
		}
		if err != nil {
			return err
		}
		w.setEpoch(1)
		return nil
	}
	obsEpoch := row[attrEpoch].Int()
	if row[attrState].Str() == stateLive && row[attrExpiresAt].Int() > now {
		return fmt.Errorf("%w: %s", ErrWorkerExists, w.id)
	}
	// Dead or expired: take the identity over at the next epoch. Guarding on
	// the observed epoch keeps two simultaneous rejoins from sharing one.
	err = w.store.Update(w.leases, dynamo.HK(dynamo.S(w.id)),
		dynamo.Eq(dynamo.A(attrEpoch), dynamo.NInt(obsEpoch)),
		dynamo.Set(dynamo.A(attrEpoch), dynamo.NInt(obsEpoch+1)),
		dynamo.Set(dynamo.A(attrState), dynamo.S(stateLive)),
		dynamo.Set(dynamo.A(attrExpiresAt), dynamo.NInt(exp)),
		dynamo.Set(dynamo.A(attrJoinedAt), dynamo.NInt(now)),
	)
	if errors.Is(err, dynamo.ErrConditionFailed) {
		return fmt.Errorf("%w: %s (lost the rejoin race)", ErrWorkerExists, w.id)
	}
	if err != nil {
		return err
	}
	w.setEpoch(obsEpoch + 1)
	return nil
}

// setEpoch records the lease epoch under the ownership lock.
func (w *Worker) setEpoch(e int64) {
	w.mu.Lock()
	w.epoch = e
	w.mu.Unlock()
}

// Rejoin re-acquires this worker's lease after fencing: the identity comes
// back at a higher epoch with no partitions (rebalancing earns a fair share
// back), exactly like a process restart under the same name. The background
// heartbeat loop calls it automatically, so a worker fenced by a transient
// stall (CPU starvation, a long pause — the zombie scenarios) returns to
// the pool instead of leaving it short-handed forever. No-op while the
// worker is not fenced; ErrWorkerExists while its old lease is still live
// and unexpired (another holder has the identity).
func (w *Worker) Rejoin() error {
	w.mu.Lock()
	if !w.fenced {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	if err := w.acquireLease(); err != nil {
		return err
	}
	w.mu.Lock()
	w.fenced = false
	w.owned = make(map[int]int64)
	w.mu.Unlock()
	return nil
}

// ID returns the worker's lease identity.
func (w *Worker) ID() string { return w.id }

// Epoch returns the worker's lease epoch.
func (w *Worker) Epoch() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Partitions returns the cluster's partition count.
func (w *Worker) Partitions() int { return w.partitions }

// Fenced reports whether the worker has observed the loss of its lease (a
// heartbeat or cluster operation failed its epoch guard). A fenced worker
// claims nothing; rejoin to resume.
func (w *Worker) Fenced() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fenced
}

// Stats exposes the worker's cluster-protocol counters.
func (w *Worker) Stats() *Stats { return &w.stats }

// OwnedPartitions lists the partitions this worker currently believes it
// owns, sorted.
func (w *Worker) OwnedPartitions() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, 0, len(w.owned))
	for p := range w.owned {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// now returns the worker's clock reading in microseconds since the epoch —
// the unit of every lease timestamp.
func (w *Worker) now() int64 { return w.clk.Now().UnixMicro() }

// fence records that this worker's authority is gone: it stops owning
// partitions and every later cluster operation fails fast with ErrFenced.
// The in-store partition epochs already exclude it; this is the local
// acknowledgment.
func (w *Worker) fence() {
	w.mu.Lock()
	w.fenced = true
	w.owned = make(map[int]int64)
	w.mu.Unlock()
}

// checkFenced returns ErrFenced once the worker has observed fencing.
func (w *Worker) checkFenced() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fenced {
		return ErrFenced
	}
	return nil
}

// HeartbeatOnce renews the worker's lease, guarded on its epoch and live
// state. A failed guard means the worker was fenced (marked dead, or its
// identity rejoined at a higher epoch): the worker transitions to the
// fenced state and returns ErrFenced.
func (w *Worker) HeartbeatOnce() error {
	if err := w.checkFenced(); err != nil {
		return err
	}
	w.mu.Lock()
	epoch := w.epoch
	w.mu.Unlock()
	err := w.store.Update(w.leases, dynamo.HK(dynamo.S(w.id)),
		dynamo.And(
			dynamo.Eq(dynamo.A(attrEpoch), dynamo.NInt(epoch)),
			dynamo.Eq(dynamo.A(attrState), dynamo.S(stateLive)),
		),
		dynamo.Set(dynamo.A(attrExpiresAt), dynamo.NInt(w.now()+w.opts.LeaseTTL.Microseconds())),
	)
	if errors.Is(err, dynamo.ErrConditionFailed) {
		w.fence()
		return ErrFenced
	}
	if err != nil {
		return err
	}
	w.stats.Heartbeats.Add(1)
	return nil
}

// DetectOnce runs one failure-detection pass: every live lease whose
// deadline has passed (ExpiresAt ≤ now, so a lease is dead exactly at its
// deadline) is marked dead — guarded on the observed epoch and deadline, so
// a heartbeat racing the verdict wins or loses atomically — and the dead
// worker's partitions are stolen by this worker at bumped epochs. It
// returns the ids marked dead and the number of partitions stolen; run a
// collection pass afterwards to restart the stolen in-flight intents.
func (w *Worker) DetectOnce() (dead []string, stolen int, err error) {
	if err := w.checkFenced(); err != nil {
		return nil, 0, err
	}
	w.stats.Detects.Add(1)
	now := w.now()
	rows, err := w.store.Scan(w.leases, dynamo.QueryOpts{})
	if err != nil {
		return nil, 0, err
	}
	for _, row := range rows {
		id := row[attrWorkerID].Str()
		if id == configRowID || id == w.id {
			continue
		}
		if row[attrState].Str() != stateLive || row[attrExpiresAt].Int() > now {
			continue
		}
		err := w.store.Update(w.leases, dynamo.HK(dynamo.S(id)),
			dynamo.And(
				dynamo.Eq(dynamo.A(attrEpoch), row[attrEpoch]),
				dynamo.Eq(dynamo.A(attrExpiresAt), row[attrExpiresAt]),
				dynamo.Eq(dynamo.A(attrState), dynamo.S(stateLive)),
			),
			dynamo.Set(dynamo.A(attrState), dynamo.S(stateDead)),
		)
		if errors.Is(err, dynamo.ErrConditionFailed) {
			continue // it heartbeated in time, or another detector won
		}
		if err != nil {
			return dead, stolen, err
		}
		w.stats.DeadMarked.Add(1)
		dead = append(dead, id)
		n, err := w.stealFrom(id)
		stolen += n
		if err != nil {
			return dead, stolen, err
		}
	}
	return dead, stolen, nil
}

// stealFrom re-claims every partition owned by a (now dead) worker for this
// worker, bumping each partition's epoch so the dead worker's cached fencing
// tokens go stale.
func (w *Worker) stealFrom(deadID string) (int, error) {
	rows, err := w.store.Scan(w.parts, dynamo.QueryOpts{
		Filter: dynamo.Eq(dynamo.A(attrOwner), dynamo.S(deadID)),
	})
	if err != nil {
		return 0, err
	}
	stolen := 0
	for _, row := range rows {
		p, ok := parsePartID(row[attrPartID].Str())
		if !ok {
			continue
		}
		if w.claimPartition(p, deadID, row[attrEpoch].Int()) {
			w.stats.Steals.Add(1)
			stolen++
		}
	}
	return stolen, nil
}

// claimPartition transfers one partition to this worker, guarded on the
// observed owner and epoch; it records the new fencing epoch on success.
func (w *Worker) claimPartition(p int, fromOwner string, obsEpoch int64) bool {
	err := w.store.Update(w.parts, dynamo.HK(dynamo.S(partID(p))),
		dynamo.And(
			dynamo.Eq(dynamo.A(attrOwner), dynamo.S(fromOwner)),
			dynamo.Eq(dynamo.A(attrEpoch), dynamo.NInt(obsEpoch)),
		),
		dynamo.Set(dynamo.A(attrOwner), dynamo.S(w.id)),
		dynamo.Set(dynamo.A(attrEpoch), dynamo.NInt(obsEpoch+1)),
	)
	if err != nil {
		return false // lost the race (or a store error; the next pass retries)
	}
	w.mu.Lock()
	if !w.fenced {
		w.owned[p] = obsEpoch + 1
	}
	w.mu.Unlock()
	return true
}

// RebalanceOnce converges partition ownership toward a fair share: it
// re-claims partitions still recorded for this worker's id but absent from
// its cache, claims unowned partitions and partitions of dead-marked
// workers while under its share, and releases its highest partitions while
// over. With a stable live set, repeated passes across the workers converge
// to every partition owned and no worker above ⌈P/N⌉.
//
// Rebalancing never takes a partition from a worker that merely *looks*
// expired — that is the failure detector's job, because marking the owner
// dead first is what guarantees the owner's next heartbeat fences it (and
// clears its ownership cache). A steal without the verdict would leave a
// live owner convinced it still holds the partition: its share count stays
// inflated, it stops claiming, and an unowned partition can go permanently
// unclaimed while every worker believes it is at fair share.
func (w *Worker) RebalanceOnce() (claimed, released int, err error) {
	if err := w.checkFenced(); err != nil {
		return 0, 0, err
	}
	now := w.now()
	leaseRows, err := w.store.Scan(w.leases, dynamo.QueryOpts{})
	if err != nil {
		return 0, 0, err
	}
	live := make(map[string]bool) // renewing: counts toward fair share
	dead := make(map[string]bool) // dead-marked: partitions claimable
	for _, row := range leaseRows {
		id := row[attrWorkerID].Str()
		if id == configRowID {
			continue
		}
		switch {
		case row[attrState].Str() == stateDead:
			dead[id] = true
		case row[attrExpiresAt].Int() > now:
			live[id] = true
		}
	}
	if !live[w.id] {
		// Our own lease looks expired to our own clock: heartbeat before
		// claiming anything (an expired claimant must not grab partitions a
		// detector is about to steal).
		if err := w.HeartbeatOnce(); err != nil {
			return 0, 0, err
		}
		live[w.id] = true
	}
	fair := (w.partitions + len(live) - 1) / len(live)

	partRows, err := w.store.Scan(w.parts, dynamo.QueryOpts{})
	if err != nil {
		return 0, 0, err
	}
	sort.Slice(partRows, func(i, j int) bool {
		return partRows[i][attrPartID].Str() < partRows[j][attrPartID].Str()
	})

	// Pass 1 — adopt every partition the table still records for this id
	// but the cache has forgotten: a previous incarnation's rows, or rows
	// orphaned when fencing cleared the cache before a rejoin. These must
	// be re-claimed UNCONDITIONALLY (the fair-share cap does not apply):
	// the table says a live worker owns them, so no peer may touch them —
	// leaving them uncached would orphan their intents forever. Re-claiming
	// bumps the epoch, fencing off the old incarnation's tokens; the
	// release pass below trims any excess.
	for _, row := range partRows {
		p, ok := parsePartID(row[attrPartID].Str())
		if !ok || row[attrOwner].Str() != w.id {
			continue
		}
		w.mu.Lock()
		_, cached := w.owned[p]
		w.mu.Unlock()
		if cached {
			continue
		}
		if w.claimPartition(p, w.id, row[attrEpoch].Int()) {
			w.stats.Claims.Add(1)
			claimed++
		}
	}
	w.mu.Lock()
	mine := len(w.owned)
	w.mu.Unlock()

	// Pass 2 — claim unowned partitions and partitions of dead-marked
	// workers while under the fair share. Owners that are expired but not
	// yet marked dead are left for the detector.
	for _, row := range partRows {
		if mine >= fair {
			break
		}
		p, ok := parsePartID(row[attrPartID].Str())
		if !ok {
			continue
		}
		owner := row[attrOwner].Str()
		w.mu.Lock()
		_, cached := w.owned[p]
		w.mu.Unlock()
		if cached {
			continue
		}
		if owner != "" && !dead[owner] {
			continue // a worker with standing (or an undetected corpse) holds it
		}
		if w.claimPartition(p, owner, row[attrEpoch].Int()) {
			w.stats.Claims.Add(1)
			claimed++
			mine++
		}
	}

	// Release the excess, highest partitions first, so under-share workers
	// can pick them up.
	for mine > fair {
		w.mu.Lock()
		var victim, maxP = -1, -1
		var fenceEpoch int64
		for p, e := range w.owned {
			if p > maxP {
				victim, maxP, fenceEpoch = p, p, e
			}
		}
		w.mu.Unlock()
		if victim < 0 {
			break
		}
		err := w.store.Update(w.parts, dynamo.HK(dynamo.S(partID(victim))),
			dynamo.And(
				dynamo.Eq(dynamo.A(attrOwner), dynamo.S(w.id)),
				dynamo.Eq(dynamo.A(attrEpoch), dynamo.NInt(fenceEpoch)),
			),
			dynamo.Set(dynamo.A(attrOwner), dynamo.S("")),
			dynamo.Set(dynamo.A(attrEpoch), dynamo.NInt(fenceEpoch+1)),
		)
		w.mu.Lock()
		delete(w.owned, victim)
		mine = len(w.owned)
		w.mu.Unlock()
		if err == nil {
			w.stats.Releases.Add(1)
			released++
		}
	}
	return claimed, released, nil
}

// parsePartID decodes a partition row key.
func parsePartID(s string) (int, bool) {
	var p int
	if _, err := fmt.Sscanf(s, "p%04d", &p); err != nil {
		return 0, false
	}
	return p, true
}

// --- work attachment -------------------------------------------------------

// Attach puts a runtime's intent collector under this worker's ownership
// scope: the collector restarts only intents in partitions the worker owns,
// and every claim is fenced on the owning partition's epoch.
func (w *Worker) Attach(rt *core.Runtime) {
	rt.SetCollectorGate(w)
	w.rtMu.Lock()
	w.runtimes = append(w.runtimes, rt)
	w.rtMu.Unlock()
}

// AttachMapper puts a queue→function event-source mapping under this
// worker's ownership scope: the worker polls it only while it owns the
// function's partition, so exactly one live worker drains each invocation
// queue (redundant polling would be safe — queue claims and intent dedup
// still hold — just wasted round trips).
func (w *Worker) AttachMapper(fn string, m *platform.Mapper) {
	w.rtMu.Lock()
	w.mappers = append(w.mappers, ownedMapper{part: PartitionOf(fn, w.partitions), fn: fn, m: m})
	w.rtMu.Unlock()
}

// OwnsIntent implements core.CollectorGate: the worker owns an intent when
// it owns the intent id's partition (and is not fenced).
func (w *Worker) OwnsIntent(id string) bool {
	p := PartitionOf(id, w.partitions)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fenced {
		return false
	}
	_, ok := w.owned[p]
	return ok
}

// ClaimFence implements core.CollectorGate: a condition check asserting, in
// the same transaction as the claim, that this worker still owns the
// intent's partition at the epoch it cached when it claimed the partition.
// A zombie whose partition was stolen holds a stale epoch, so the store
// rejects its claim.
func (w *Worker) ClaimFence(id string) []dynamo.TxOp {
	p := PartitionOf(id, w.partitions)
	w.mu.Lock()
	epoch, ok := w.owned[p]
	w.mu.Unlock()
	if !ok {
		epoch = -1 // lost between OwnsIntent and here: fence can never pass
	}
	return []dynamo.TxOp{{
		Table: w.parts,
		Key:   dynamo.HK(dynamo.S(partID(p))),
		Cond: dynamo.And(
			dynamo.Eq(dynamo.A(attrOwner), dynamo.S(w.id)),
			dynamo.Eq(dynamo.A(attrEpoch), dynamo.NInt(epoch)),
		),
		Check: true,
	}}
}

// CollectOnce runs one intent-collection pass over every attached runtime —
// scoped and fenced by this worker's ownership — returning the number of
// instances restarted.
func (w *Worker) CollectOnce() (int, error) {
	w.rtMu.Lock()
	rts := append([]*core.Runtime(nil), w.runtimes...)
	w.rtMu.Unlock()
	restarted := 0
	for _, rt := range rts {
		n, err := rt.RunIntentCollector()
		restarted += n
		if err != nil {
			return restarted, err
		}
	}
	w.stats.Restarts.Add(int64(restarted))
	return restarted, nil
}

// GCOnce runs one garbage-collection pass over every attached runtime. GC
// needs no ownership scope — its phases tolerate concurrent collectors by
// construction (§5) — but routing it through the worker keeps one pass per
// pool instead of one per process per timer.
func (w *Worker) GCOnce() error {
	w.rtMu.Lock()
	rts := append([]*core.Runtime(nil), w.runtimes...)
	w.rtMu.Unlock()
	for _, rt := range rts {
		if rt.Mode() == core.ModeBaseline {
			continue
		}
		if _, err := rt.RunGarbageCollector(); err != nil {
			return err
		}
	}
	return nil
}

// PollOnce polls every attached event-source mapping whose partition this
// worker owns, returning messages processed and failed across them.
func (w *Worker) PollOnce() (processed, failed int, err error) {
	w.rtMu.Lock()
	ms := append([]ownedMapper(nil), w.mappers...)
	w.rtMu.Unlock()
	for _, om := range ms {
		w.mu.Lock()
		_, ok := w.owned[om.part]
		fenced := w.fenced
		w.mu.Unlock()
		if fenced || !ok {
			continue
		}
		p, f, perr := om.m.PollOnce()
		processed += p
		failed += f
		if perr != nil && err == nil {
			err = perr
		}
	}
	return processed, failed, err
}

// --- lifecycle -------------------------------------------------------------

// Start launches the worker's background loops: a dedicated heartbeat loop
// (lease renewal must never wait behind heavy work — a worker whose own GC
// pass starved its heartbeats would zombie itself), a work loop for failure
// detection (followed by an immediate collection pass when work was
// stolen), rebalancing, collection and garbage collection, and a mapper
// poll loop. Stop (or fencing) halts them.
func (w *Worker) Start() {
	w.loopMu.Lock()
	defer w.loopMu.Unlock()
	if w.started {
		return
	}
	w.started = true
	w.stopCh = make(chan struct{})
	w.wg.Add(3)
	go w.heartbeatLoop(w.stopCh)
	go w.workLoop(w.stopCh)
	go w.pollLoop(w.stopCh)
}

// heartbeatLoop renews the lease and nothing else, so renewal latency is
// bounded by one conditional write regardless of how long collection or GC
// runs. A fenced worker attempts Rejoin on subsequent ticks — a stall that
// cost the lease costs the partitions, never the worker's life.
func (w *Worker) heartbeatLoop(stopCh chan struct{}) {
	defer w.wg.Done()
	for {
		select {
		case <-stopCh:
			return
		case <-w.clk.After(w.opts.HeartbeatEvery):
		}
		if w.paused.Load() {
			continue // zombie simulation: the process is stalled
		}
		if w.Fenced() {
			w.Rejoin() //nolint:errcheck // old lease may still run; retry next tick
			continue
		}
		w.HeartbeatOnce() //nolint:errcheck // fencing handled next tick; store errors retry
	}
}

// workLoop drives detection, rebalancing, collection and GC on the worker's
// clock. Periods are multiples of the heartbeat period, so one timer drives
// every cadence. It exits once the worker is fenced.
func (w *Worker) workLoop(stopCh chan struct{}) {
	defer w.wg.Done()
	period := w.opts.HeartbeatEvery
	every := func(d time.Duration) int64 {
		n := int64(d / period)
		if n < 1 {
			n = 1
		}
		return n
	}
	detectN := every(w.opts.DetectEvery)
	rebalN := every(w.opts.RebalanceEvery)
	collectN := every(w.opts.CollectEvery)
	gcN := 4 * collectN
	for tick := int64(1); ; tick++ {
		select {
		case <-stopCh:
			return
		case <-w.clk.After(period):
		}
		if w.paused.Load() {
			continue // zombie simulation: the process is stalled
		}
		if w.Fenced() {
			continue // wait for the heartbeat loop's Rejoin
		}
		if tick%detectN == 0 {
			if _, stolen, err := w.DetectOnce(); err == nil && stolen > 0 {
				w.CollectOnce() //nolint:errcheck // next tick retries
			}
		}
		if tick%rebalN == 0 {
			w.RebalanceOnce() //nolint:errcheck // next tick retries
		}
		if tick%collectN == 0 {
			w.CollectOnce() //nolint:errcheck // next tick retries
		}
		if tick%gcN == 0 {
			w.GCOnce() //nolint:errcheck // next tick retries
		}
	}
}

// pollLoop drains the owned event-source mappings continuously.
func (w *Worker) pollLoop(stopCh chan struct{}) {
	defer w.wg.Done()
	for {
		select {
		case <-stopCh:
			return
		default:
		}
		if w.paused.Load() {
			select {
			case <-stopCh:
				return
			case <-w.clk.After(w.opts.PollEvery):
			}
			continue
		}
		n, _, _ := w.PollOnce()
		if n == 0 {
			select {
			case <-stopCh:
				return
			case <-w.clk.After(w.opts.PollEvery):
			}
		}
	}
}

// Stop halts the background loops without touching the lease — the
// crash-shaped stop: the lease runs out, a peer marks the worker dead and
// steals its work. Use Leave for a graceful exit.
func (w *Worker) Stop() {
	w.loopMu.Lock()
	if !w.started {
		w.loopMu.Unlock()
		return
	}
	w.started = false
	close(w.stopCh)
	w.loopMu.Unlock()
	w.wg.Wait()
}

// Pause suspends the worker's background activity without stopping the
// loops — the zombie simulation: the process stalls (GC pause, partition),
// its lease expires, and whatever it does after Resume runs against fenced
// tokens until it notices.
func (w *Worker) Pause() { w.paused.Store(true) }

// Resume ends a Pause.
func (w *Worker) Resume() { w.paused.Store(false) }

// Leave exits gracefully: it releases every owned partition, marks its own
// lease dead, and stops the loops. Peers rebalance the released partitions
// without waiting out the lease TTL.
func (w *Worker) Leave() error {
	w.Stop()
	if err := w.checkFenced(); err != nil {
		return err
	}
	w.mu.Lock()
	owned := make(map[int]int64, len(w.owned))
	for p, e := range w.owned {
		owned[p] = e
	}
	epoch := w.epoch
	w.mu.Unlock()
	for p, e := range owned {
		err := w.store.Update(w.parts, dynamo.HK(dynamo.S(partID(p))),
			dynamo.And(
				dynamo.Eq(dynamo.A(attrOwner), dynamo.S(w.id)),
				dynamo.Eq(dynamo.A(attrEpoch), dynamo.NInt(e)),
			),
			dynamo.Set(dynamo.A(attrOwner), dynamo.S("")),
			dynamo.Set(dynamo.A(attrEpoch), dynamo.NInt(e+1)),
		)
		if err != nil && !errors.Is(err, dynamo.ErrConditionFailed) {
			return err
		}
	}
	err := w.store.Update(w.leases, dynamo.HK(dynamo.S(w.id)),
		dynamo.And(
			dynamo.Eq(dynamo.A(attrEpoch), dynamo.NInt(epoch)),
			dynamo.Eq(dynamo.A(attrState), dynamo.S(stateLive)),
		),
		dynamo.Set(dynamo.A(attrState), dynamo.S(stateDead)),
	)
	w.fence()
	if err != nil && !errors.Is(err, dynamo.ErrConditionFailed) {
		return err
	}
	return nil
}

// --- inspection ------------------------------------------------------------

// Workers decodes the cluster's lease table.
func (w *Worker) Workers() ([]WorkerInfo, error) {
	rows, err := w.store.Scan(w.leases, dynamo.QueryOpts{})
	if err != nil {
		return nil, err
	}
	out := make([]WorkerInfo, 0, len(rows))
	for _, row := range rows {
		if row[attrWorkerID].Str() == configRowID {
			continue
		}
		out = append(out, WorkerInfo{
			ID:        row[attrWorkerID].Str(),
			Epoch:     row[attrEpoch].Int(),
			State:     row[attrState].Str(),
			ExpiresAt: row[attrExpiresAt].Int(),
			JoinedAt:  row[attrJoinedAt].Int(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// PartitionTable decodes the cluster's partition-ownership table.
func (w *Worker) PartitionTable() ([]PartitionInfo, error) {
	rows, err := w.store.Scan(w.parts, dynamo.QueryOpts{})
	if err != nil {
		return nil, err
	}
	out := make([]PartitionInfo, 0, len(rows))
	for _, row := range rows {
		p, ok := parsePartID(row[attrPartID].Str())
		if !ok {
			continue
		}
		out = append(out, PartitionInfo{
			Partition: p,
			Owner:     row[attrOwner].Str(),
			Epoch:     row[attrEpoch].Int(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Partition < out[j].Partition })
	return out, nil
}

// Compile-time check: Worker is a core.CollectorGate.
var _ core.CollectorGate = (*Worker)(nil)
