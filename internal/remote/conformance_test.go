package remote_test

import (
	"testing"

	_ "repro/internal/sim" // activates the simulator-backed conformance section

	"repro/internal/storage/storagetest"
)

// TestRemoteConformance runs the full storage conformance suite (including
// the simulator section) through the whole remote stack: client → wire →
// storaged server → walstore. Every semantic the in-process backends pin —
// condition evaluation, error identities, transaction atomicity, snapshot
// scans — must survive the network seam unchanged.
func TestRemoteConformance(t *testing.T) {
	storagetest.Run(t, storagetest.OpenRemote)
}
