package remote

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamo"
	"repro/internal/hist"
	"repro/internal/storage"
)

// Options tune a Client. The zero value is usable: Dial fills in the
// defaults below.
type Options struct {
	// PoolSize is the number of TCP connections requests round-robin over
	// (default 4). Each connection pipelines, so the pool is for bandwidth
	// and head-of-line isolation, not one-conn-per-request.
	PoolSize int
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds one RPC attempt end to end (default 5s). A timed-out
	// attempt counts against the retry budget if the operation is safe to
	// retry.
	OpTimeout time.Duration
	// Retries is how many times an idempotence-safe operation is retried
	// after its first failed attempt (default 3).
	Retries int
	// RetryBackoff is the base sleep between attempts, growing linearly
	// (default 10ms).
	RetryBackoff time.Duration
	// ClientID prefixes TransactWrite request ids so retries from this
	// client deduplicate server-side. Random when empty.
	ClientID string
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 5 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.ClientID == "" {
		var b [8]byte
		rand.Read(b[:])
		o.ClientID = hex.EncodeToString(b[:])
	}
	return o
}

// ClientStats counts a client's wire behavior; read a point-in-time copy
// with Snapshot.
type ClientStats struct {
	// RPCs counts attempts put on the wire; Retries the ones beyond an
	// operation's first.
	RPCs    atomic.Int64
	Retries atomic.Int64
	// Reconnects counts re-dials after a pooled connection broke.
	Reconnects atomic.Int64
	// Timeouts counts attempts abandoned at OpTimeout.
	Timeouts atomic.Int64
	// Unavailable counts operations that surfaced ErrUnavailable after the
	// retry budget (or fail-fast rule) gave up.
	Unavailable atomic.Int64
	// BytesRead and BytesWritten count frame bodies in each direction.
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
}

// ClientStatsSnapshot is a point-in-time copy of ClientStats.
type ClientStatsSnapshot struct {
	RPCs         int64
	Retries      int64
	Reconnects   int64
	Timeouts     int64
	Unavailable  int64
	BytesRead    int64
	BytesWritten int64
}

// Snapshot copies the counters.
func (s *ClientStats) Snapshot() ClientStatsSnapshot {
	return ClientStatsSnapshot{
		RPCs:         s.RPCs.Load(),
		Retries:      s.Retries.Load(),
		Reconnects:   s.Reconnects.Load(),
		Timeouts:     s.Timeouts.Load(),
		Unavailable:  s.Unavailable.Load(),
		BytesRead:    s.BytesRead.Load(),
		BytesWritten: s.BytesWritten.Load(),
	}
}

// Client is a storage.Backend whose every call is an RPC to a storaged
// server. Safe for concurrent use; Close releases the pool.
type Client struct {
	addr string
	opts Options

	reqSeq   atomic.Uint64 // request ids, per client
	txSeq    atomic.Uint64 // TransactWrite dedup id suffix
	rr       atomic.Uint64 // round-robin pool cursor
	watchSeq atomic.Uint64 // watch ids, per client (its own id space)

	pool []*poolConn

	// metrics mirrors the op/failure counters an in-process backend keeps,
	// counted client-side so metric-delta checks (and the harnesses built
	// on them) see the same shape either way. ServerMetrics fetches the
	// server's own counters.
	metrics dynamo.Metrics
	latency hist.Histogram
	extHist atomic.Pointer[hist.Histogram]
	stats   ClientStats

	mu     sync.Mutex
	closed bool
}

// Dial connects to a storaged server at addr and returns the client. The
// pool dials lazily; Dial itself verifies the address with one connection
// and handshake so a bad address or version skew fails here, not on first
// use.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	c.pool = make([]*poolConn, c.opts.PoolSize)
	for i := range c.pool {
		c.pool[i] = &poolConn{client: c}
	}
	// Probe: a Ping over the pool exercises dial + handshake.
	if err := c.ping(); err != nil {
		return nil, err
	}
	return c, nil
}

// Addr reports the server address this client dials.
func (c *Client) Addr() string { return c.addr }

// Stats exposes the client's live wire counters.
func (c *Client) Stats() *ClientStats { return &c.stats }

// RPCLatency is the per-attempt round-trip latency histogram.
func (c *Client) RPCLatency() *hist.Histogram { return &c.latency }

// SetRPCHistogram mirrors per-attempt latency recordings into h (the
// telemetry registry's "remote.rpc_latency" histogram) in addition to the
// client's own.
func (c *Client) SetRPCHistogram(h *hist.Histogram) { c.extHist.Store(h) }

// Close hangs up every pooled connection. In-flight RPCs fail with
// ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	for _, pc := range c.pool {
		pc.close(ErrClosed)
	}
	return nil
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Client) ping() error {
	_, err := c.call(opPing, func(e *encoder) error { return nil })
	return err
}

// --- RPC core ---

// rpcResult is what a connection's read loop delivers for one request.
type rpcResult struct {
	body []byte // response payload after the id, including the code byte
	err  error  // connection-level failure
}

// poolConn is one pooled connection: a lazily-dialed TCP conn, a write
// lock, and a demultiplexing read loop that routes responses to waiters by
// request id.
type poolConn struct {
	client *Client

	mu      sync.Mutex
	conn    net.Conn
	pending map[uint64]chan rpcResult
	watches map[uint64]*clientSub // live watch subscriptions, by watch id
	dialed  bool                  // a connection has succeeded before (re-dials count as reconnects)

	// wmu serializes writers: each frame goes out in one Write call under
	// this lock, and the write deadline is scoped to it.
	wmu sync.Mutex
}

// get returns the live connection, dialing and handshaking if needed.
func (p *poolConn) get() (net.Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p.conn, nil
	}
	if p.client.isClosed() {
		return nil, ErrClosed
	}
	conn, err := net.DialTimeout("tcp", p.client.addr, p.client.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, p.client.addr, err)
	}
	if err := clientHandshake(conn, p.client.opts.DialTimeout); err != nil {
		conn.Close()
		return nil, err
	}
	if p.dialed {
		p.client.stats.Reconnects.Add(1)
	}
	p.dialed = true
	p.conn = conn
	p.pending = make(map[uint64]chan rpcResult)
	go p.readLoop(conn)
	return conn, nil
}

// clientHandshake sends the hello and validates the server's answer.
func clientHandshake(conn net.Conn, timeout time.Duration) error {
	conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	e := &encoder{}
	e.b = append(e.b, Magic...)
	e.u16(Version)
	if err := writeFrame(conn, e.b); err != nil {
		return fmt.Errorf("%w: handshake write: %v", ErrUnavailable, err)
	}
	body, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("%w: handshake read: %v", ErrUnavailable, err)
	}
	d := &decoder{b: body}
	magic := make([]byte, len(Magic))
	for i := range magic {
		if magic[i], err = d.u8(); err != nil {
			return err
		}
	}
	if string(magic) != Magic {
		return fmt.Errorf("%w: bad magic %q in handshake", ErrProtocol, magic)
	}
	ver, err := d.u16()
	if err != nil {
		return err
	}
	ok, err := d.bool()
	if err != nil {
		return err
	}
	reason, err := d.str()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: server version %d: %s", ErrVersionMismatch, ver, reason)
	}
	return nil
}

// readLoop demultiplexes responses until the connection dies, then fails
// every waiter. Responses for abandoned (timed-out) requests are dropped.
// Frames whose code byte is codeEvent are server pushes, routed to the watch
// subscription the id names instead of a pending request.
func (p *poolConn) readLoop(conn net.Conn) {
	for {
		body, err := readFrame(conn)
		if err != nil {
			p.fail(conn, err)
			return
		}
		p.client.stats.BytesRead.Add(int64(len(body)))
		d := &decoder{b: body}
		id, err := d.u64()
		if err != nil {
			p.fail(conn, err)
			return
		}
		off := d.off
		code, err := d.u8()
		if err != nil {
			p.fail(conn, err)
			return
		}
		if code == codeEvent {
			p.deliverEvent(id, d)
			continue
		}
		p.mu.Lock()
		ch := p.pending[id]
		delete(p.pending, id)
		p.mu.Unlock()
		if ch != nil {
			ch <- rpcResult{body: body[off:]}
		}
	}
}

// deliverEvent decodes one pushed commit event and hands it to the watch
// subscription registered under id; events for unknown (already closed)
// watches are dropped, and a full subscription buffer coalesces the event
// like the in-process hub does.
func (p *poolConn) deliverEvent(id uint64, d *decoder) {
	table, err := d.str()
	if err != nil {
		return
	}
	hash, err := d.value()
	if err != nil {
		return
	}
	seq, err := d.u64()
	if err != nil {
		return
	}
	ev := storage.CommitEvent{Table: table, Hash: hash, Seq: seq}
	// The send happens under p.mu so it can never race the close(ch) in
	// dropWatch/fail; it is non-blocking, so holding the lock is cheap.
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.watches[id]
	if w == nil || w.closed {
		return
	}
	select {
	case w.ch <- ev:
		p.client.metrics.WatchNotifies.Add(1)
	default:
		p.client.metrics.WatchDrops.Add(1)
	}
}

// fail tears down conn (if it is still the live one) and delivers err to
// every pending waiter.
func (p *poolConn) fail(conn net.Conn, err error) {
	p.mu.Lock()
	if p.conn != conn {
		p.mu.Unlock()
		return
	}
	p.conn = nil
	pending := p.pending
	p.pending = nil
	// Watch subscriptions die with their connection: closing the event
	// channel tells the consumer to resubscribe (or fall back to polling).
	for id, w := range p.watches {
		delete(p.watches, id)
		w.closed = true
		close(w.ch)
		p.client.metrics.WatchSubs.Add(-1)
	}
	p.mu.Unlock()
	conn.Close()
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	for _, ch := range pending {
		ch <- rpcResult{err: err}
	}
}

// close hangs up the connection and fails waiters with err.
func (p *poolConn) close(err error) {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn != nil {
		p.fail(conn, err)
	}
}

// attemptErr classifies one failed RPC attempt.
type attemptErr struct {
	err     error
	written bool // the request may have reached the server
}

func (a attemptErr) Error() string { return a.err.Error() }

// attempt runs one RPC attempt on this connection: write the request frame,
// wait for the matching response or the deadline.
func (p *poolConn) attempt(id uint64, frame []byte, timeout time.Duration) ([]byte, error) {
	conn, err := p.get()
	if err != nil {
		return nil, attemptErr{err: err, written: false}
	}
	ch := make(chan rpcResult, 1)
	p.mu.Lock()
	if p.conn != conn || p.pending == nil {
		p.mu.Unlock()
		return nil, attemptErr{err: io.ErrUnexpectedEOF, written: false}
	}
	p.pending[id] = ch
	p.mu.Unlock()

	// The frame is pre-encoded; serialize writers so records never
	// interleave. A write deadline keeps a wedged kernel buffer from
	// blocking past the attempt budget.
	p.client.stats.RPCs.Add(1)
	p.wmu.Lock()
	conn.SetWriteDeadline(time.Now().Add(timeout))
	_, werr := conn.Write(frame)
	conn.SetWriteDeadline(time.Time{})
	p.wmu.Unlock()
	if werr != nil {
		p.mu.Lock()
		if p.pending != nil {
			delete(p.pending, id)
		}
		p.mu.Unlock()
		p.fail(conn, werr)
		// A failed Write may still have delivered bytes the server acted
		// on; classify as possibly-written.
		return nil, attemptErr{err: werr, written: true}
	}
	p.client.stats.BytesWritten.Add(int64(len(frame) - frameHeaderLen))

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, attemptErr{err: res.err, written: true}
		}
		return res.body, nil
	case <-timer.C:
		p.mu.Lock()
		if p.pending != nil {
			delete(p.pending, id)
		}
		p.mu.Unlock()
		p.client.stats.Timeouts.Add(1)
		return nil, attemptErr{err: fmt.Errorf("attempt timed out after %v", timeout), written: true}
	}
}

// idempotent reports whether op can be blindly retried after it may have
// executed. Reads and table-metadata calls always can; TransactWrite can
// because its request id deduplicates server-side; bare conditional writes
// cannot — a retry could observe its own first application and double-fire.
func idempotent(op byte) bool {
	switch op {
	case opPing, opGet, opGetProj, opQuery, opQueryIndex, opScan,
		opTableNames, opTableShards, opTableSchema, opTableBytes,
		opTableItemCount, opMetrics, opTransactWrite:
		return true
	}
	return false
}

// call runs one RPC with retries: encode once, then attempt across the pool
// with linear backoff. Non-idempotent ops retry only while no attempt may
// have reached the server; exhausting the budget surfaces ErrUnavailable.
// A decoded server-side error (condition failure, missing table, …) is a
// result, not a failure — it returns immediately, never retried.
func (c *Client) call(op byte, enc func(*encoder) error) (*decoder, error) {
	id := c.reqSeq.Add(1)
	e := &encoder{b: make([]byte, frameHeaderLen, 128)} // room for framing prefix
	e.u64(id)
	e.u8(op)
	if err := enc(e); err != nil {
		return nil, err
	}
	frame := frameInPlace(e.b)

	var last attemptErr
	for try := 0; ; try++ {
		if c.isClosed() {
			return nil, ErrClosed
		}
		if try > 0 {
			c.stats.Retries.Add(1)
			time.Sleep(time.Duration(try) * c.opts.RetryBackoff)
		}
		pc := c.pool[c.rr.Add(1)%uint64(len(c.pool))]
		start := time.Now()
		body, err := pc.attempt(id, frame, c.opts.OpTimeout)
		elapsed := time.Since(start)
		c.latency.Record(elapsed)
		if ext := c.extHist.Load(); ext != nil {
			ext.Record(elapsed)
		}
		if err == nil {
			d := &decoder{b: body}
			code, cerr := d.u8()
			if cerr != nil {
				return nil, cerr
			}
			if code != codeOK {
				return nil, decodeError(code, d)
			}
			return d, nil
		}
		last = err.(attemptErr)
		if errors.Is(last.err, ErrClosed) || errors.Is(last.err, ErrVersionMismatch) {
			return nil, last.err
		}
		retriable := !last.written || idempotent(op)
		if !retriable || try >= c.opts.Retries {
			c.stats.Unavailable.Add(1)
			if errors.Is(last.err, ErrUnavailable) {
				return nil, last.err
			}
			return nil, fmt.Errorf("%w: %s after %d attempt(s): %v", ErrUnavailable, opName(op), try+1, last.err)
		}
	}
}

// frameInPlace frames a body that was encoded with frameHeaderLen bytes of
// headroom, avoiding a copy of the payload.
func frameInPlace(b []byte) []byte {
	body := b[frameHeaderLen:]
	putFrameHeader(b[:frameHeaderLen], body)
	return b
}

// --- storage.Backend surface ---

var _ storage.Backend = (*Client)(nil)

// CreateTable implements storage.Backend.
func (c *Client) CreateTable(schema storage.Schema) error {
	_, err := c.call(opCreateTable, func(e *encoder) error {
		e.schema(schema)
		return nil
	})
	return err
}

// DeleteTable implements storage.Backend.
func (c *Client) DeleteTable(name string) error {
	_, err := c.call(opDeleteTable, func(e *encoder) error {
		e.str(name)
		return nil
	})
	return err
}

// TableNames implements storage.Backend; an unreachable server reads as no
// tables, matching the signature's no-error contract.
func (c *Client) TableNames() []string {
	d, err := c.call(opTableNames, func(e *encoder) error { return nil })
	if err != nil {
		return nil
	}
	n, err := d.count()
	if err != nil {
		return nil
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s, err := d.str()
		if err != nil {
			return nil
		}
		names = append(names, s)
	}
	return names
}

// TableShards implements storage.Backend.
func (c *Client) TableShards(name string) (int, error) {
	return c.intRPC(opTableShards, name)
}

// TableBytes implements storage.Backend.
func (c *Client) TableBytes(name string) (int, error) {
	return c.intRPC(opTableBytes, name)
}

// TableItemCount implements storage.Backend.
func (c *Client) TableItemCount(name string) (int, error) {
	return c.intRPC(opTableItemCount, name)
}

func (c *Client) intRPC(op byte, name string) (int, error) {
	d, err := c.call(op, func(e *encoder) error {
		e.str(name)
		return nil
	})
	if err != nil {
		return 0, err
	}
	n, err := d.uvarint()
	return int(n), err
}

// TableSchema implements storage.Backend.
func (c *Client) TableSchema(name string) (storage.Schema, error) {
	d, err := c.call(opTableSchema, func(e *encoder) error {
		e.str(name)
		return nil
	})
	if err != nil {
		return storage.Schema{}, err
	}
	return d.schema()
}

// Get implements storage.Backend.
func (c *Client) Get(table string, key storage.Key) (storage.Item, bool, error) {
	return c.get(opGet, table, key, nil)
}

// GetProj implements storage.Backend.
func (c *Client) GetProj(table string, key storage.Key, proj []storage.Path) (storage.Item, bool, error) {
	return c.get(opGetProj, table, key, proj)
}

func (c *Client) get(op byte, table string, key storage.Key, proj []storage.Path) (storage.Item, bool, error) {
	c.metrics.Ops[dynamo.OpGet].Add(1)
	d, err := c.call(op, func(e *encoder) error {
		e.str(table)
		e.key(key)
		if op == opGetProj {
			e.paths(proj)
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	ok, err := d.bool()
	if err != nil || !ok {
		return nil, false, err
	}
	it, err := d.item()
	if err != nil {
		return nil, false, err
	}
	return it, true, nil
}

// Put implements storage.Backend.
func (c *Client) Put(table string, item storage.Item, cond storage.Cond) error {
	c.metrics.Ops[dynamo.OpPut].Add(1)
	_, err := c.call(opPut, func(e *encoder) error {
		e.str(table)
		e.item(item)
		return e.cond(cond)
	})
	return c.noteCond(err)
}

// Update implements storage.Backend.
func (c *Client) Update(table string, key storage.Key, cond storage.Cond, updates ...storage.Update) error {
	c.metrics.Ops[dynamo.OpUpdate].Add(1)
	_, err := c.call(opUpdate, func(e *encoder) error {
		e.str(table)
		e.key(key)
		if err := e.cond(cond); err != nil {
			return err
		}
		return e.updates(updates)
	})
	return c.noteCond(err)
}

// Delete implements storage.Backend.
func (c *Client) Delete(table string, key storage.Key, cond storage.Cond) error {
	c.metrics.Ops[dynamo.OpDelete].Add(1)
	_, err := c.call(opDelete, func(e *encoder) error {
		e.str(table)
		e.key(key)
		return e.cond(cond)
	})
	return c.noteCond(err)
}

// noteCond mirrors condition failures into the client-side metrics.
func (c *Client) noteCond(err error) error {
	if err != nil && errors.Is(err, storage.ErrConditionFailed) {
		c.metrics.CondFailures.Add(1)
	}
	return err
}

// Query implements storage.Backend.
func (c *Client) Query(table string, hash storage.Value, opts storage.QueryOpts) ([]storage.Item, error) {
	c.metrics.Ops[dynamo.OpQuery].Add(1)
	d, err := c.call(opQuery, func(e *encoder) error {
		e.str(table)
		e.value(hash)
		return e.queryOpts(opts)
	})
	if err != nil {
		return nil, err
	}
	return d.items()
}

// QueryIndex implements storage.Backend.
func (c *Client) QueryIndex(table, index string, hash storage.Value, opts storage.QueryOpts) ([]storage.Item, error) {
	c.metrics.Ops[dynamo.OpQuery].Add(1)
	d, err := c.call(opQueryIndex, func(e *encoder) error {
		e.str(table)
		e.str(index)
		e.value(hash)
		return e.queryOpts(opts)
	})
	if err != nil {
		return nil, err
	}
	return d.items()
}

// Scan implements storage.Backend.
func (c *Client) Scan(table string, opts storage.QueryOpts) ([]storage.Item, error) {
	c.metrics.Ops[dynamo.OpScan].Add(1)
	d, err := c.call(opScan, func(e *encoder) error {
		e.str(table)
		return e.queryOpts(opts)
	})
	if err != nil {
		return nil, err
	}
	return d.items()
}

// TransactWrite implements storage.Backend. Every transaction carries a
// unique request id; the server's dedup window makes retry-after-ambiguity
// safe, so TransactWrite retries like a read even though it writes.
func (c *Client) TransactWrite(ops []storage.TxOp) error {
	c.metrics.Ops[dynamo.OpTxWrite].Add(1)
	reqID := fmt.Sprintf("%s-%d", c.opts.ClientID, c.txSeq.Add(1))
	_, err := c.call(opTransactWrite, func(e *encoder) error {
		e.str(reqID)
		return e.txOps(ops)
	})
	return c.noteCond(err)
}

// Metrics implements storage.Backend with the client-side mirror counters
// (ops issued, condition failures observed). ServerMetrics fetches the
// server's authoritative counters.
func (c *Client) Metrics() *storage.Metrics { return &c.metrics }

// ServerMetrics fetches the server backend's own metrics snapshot.
func (c *Client) ServerMetrics() (dynamo.Snapshot, error) {
	d, err := c.call(opMetrics, func(e *encoder) error { return nil })
	if err != nil {
		return dynamo.Snapshot{}, err
	}
	return decodeMetrics(d)
}
