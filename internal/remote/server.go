package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// DefaultDedupWindow is how many TransactWrite request ids the server
// remembers for retry deduplication. The window only needs to outlive a
// client's retry budget (a few seconds), so a few thousand entries cover
// even a hot cluster.
const DefaultDedupWindow = 4096

// ServeOptions configure a Server.
type ServeOptions struct {
	// DedupWindow caps remembered TransactWrite request ids; oldest entries
	// evict first. 0 means DefaultDedupWindow.
	DedupWindow int
	// Delay artificially delays every request before execution — the
	// simulated network RTT knob bench.RemoteSweep turns to place the
	// storage plane at cloud distances.
	Delay time.Duration
	// Logf, when set, receives connection-level diagnostics (handshake
	// refusals, protocol errors). Nil means silent.
	Logf func(format string, args ...any)
}

// ServerStats counts a server's wire traffic; fields are atomic and may be
// read live (register Snapshot with the telemetry registry).
type ServerStats struct {
	// Conns counts accepted connections; Handshakes counts the ones that
	// completed version negotiation.
	Conns      atomic.Int64
	Handshakes atomic.Int64
	// RPCs counts requests executed; Errors the ones that returned an error
	// to the client (condition failures included).
	RPCs   atomic.Int64
	Errors atomic.Int64
	// DedupHits counts TransactWrite retries answered from the dedup
	// window without re-applying.
	DedupHits atomic.Int64
	// ProtocolErrors counts connections killed by framing violations.
	ProtocolErrors atomic.Int64
	// BytesRead and BytesWritten count frame bodies in each direction.
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
}

// ServerStatsSnapshot is a point-in-time copy of ServerStats, in the plain
// shape the telemetry registry flattens.
type ServerStatsSnapshot struct {
	Conns          int64
	Handshakes     int64
	RPCs           int64
	Errors         int64
	DedupHits      int64
	ProtocolErrors int64
	BytesRead      int64
	BytesWritten   int64
}

// Snapshot copies the counters.
func (s *ServerStats) Snapshot() ServerStatsSnapshot {
	return ServerStatsSnapshot{
		Conns:          s.Conns.Load(),
		Handshakes:     s.Handshakes.Load(),
		RPCs:           s.RPCs.Load(),
		Errors:         s.Errors.Load(),
		DedupHits:      s.DedupHits.Load(),
		ProtocolErrors: s.ProtocolErrors.Load(),
		BytesRead:      s.BytesRead.Load(),
		BytesWritten:   s.BytesWritten.Load(),
	}
}

// Server exposes one storage.Backend over the wire protocol. Create with
// NewServer, then Serve one or more listeners; Close stops them all and
// hangs up every connection.
type Server struct {
	backend storage.Backend
	opts    ServeOptions
	dedup   *dedupWindow
	stats   ServerStats

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer wraps backend in a wire-protocol server.
func NewServer(backend storage.Backend, opts ServeOptions) *Server {
	if opts.DedupWindow <= 0 {
		opts.DedupWindow = DefaultDedupWindow
	}
	return &Server{
		backend:   backend,
		opts:      opts,
		dedup:     newDedupWindow(opts.DedupWindow),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Serve exposes backend on lis with default options, blocking until the
// listener fails or is closed — the one-call server the storaged binary and
// in-test fixtures build on.
func Serve(backend storage.Backend, lis net.Listener) error {
	return NewServer(backend, ServeOptions{}).Serve(lis)
}

// Stats exposes the server's live wire counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// Serve accepts connections on lis until the listener errors or the server
// closes. It returns nil after Close, the accept error otherwise. Multiple
// listeners may be served concurrently.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return ErrClosed
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lis)
		s.mu.Unlock()
		lis.Close()
	}()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.stats.Conns.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops every listener, hangs up every connection, and waits for
// in-flight handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for lis := range s.listeners {
		lis.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// serveConn handshakes, then reads pipelined requests and dispatches each
// in its own goroutine; responses interleave in completion order, matched
// by request id.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	if err := s.handshake(conn); err != nil {
		s.stats.ProtocolErrors.Add(1)
		s.logf("remote: handshake with %s: %v", conn.RemoteAddr(), err)
		return
	}
	s.stats.Handshakes.Add(1)

	pctx := &pushCtx{conn: conn, watches: make(map[uint64]storage.Subscription)}
	// LIFO defers: closing the watches first unblocks the pusher goroutines
	// that handlers.Wait then drains.
	defer pctx.handlers.Wait()
	defer pctx.closeAll()
	for {
		body, err := readFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.stats.ProtocolErrors.Add(1)
				s.logf("remote: conn %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.stats.BytesRead.Add(int64(len(body)))
		d := &decoder{b: body}
		id, err := d.u64()
		if err != nil {
			s.stats.ProtocolErrors.Add(1)
			return
		}
		op, err := d.u8()
		if err != nil {
			s.stats.ProtocolErrors.Add(1)
			return
		}
		pctx.handlers.Add(1)
		go func() {
			defer pctx.handlers.Done()
			if s.opts.Delay > 0 {
				time.Sleep(s.opts.Delay)
			}
			resp := s.dispatch(pctx, id, op, d)
			pctx.writeMu.Lock()
			err := writeFrame(conn, resp)
			pctx.writeMu.Unlock()
			if err == nil {
				s.stats.BytesWritten.Add(int64(len(resp)))
			}
		}()
	}
}

// pushCtx is one connection's server-push state: the write lock every frame
// (response or event) goes out under, and the live watch subscriptions keyed
// by the client-chosen watch id.
type pushCtx struct {
	conn     net.Conn
	writeMu  sync.Mutex
	handlers sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	watches map[uint64]storage.Subscription
}

// add registers sub under id; false when the connection is shutting down or
// the id is already taken (the caller closes sub).
func (p *pushCtx) add(id uint64, sub storage.Subscription) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	if _, dup := p.watches[id]; dup {
		return false
	}
	p.watches[id] = sub
	return true
}

// remove unregisters and returns the subscription at id, nil if absent.
func (p *pushCtx) remove(id uint64) storage.Subscription {
	p.mu.Lock()
	defer p.mu.Unlock()
	sub := p.watches[id]
	delete(p.watches, id)
	return sub
}

// closeAll tears down every live subscription on connection shutdown,
// unblocking the pusher goroutines.
func (p *pushCtx) closeAll() {
	p.mu.Lock()
	p.closed = true
	subs := make([]storage.Subscription, 0, len(p.watches))
	for _, sub := range p.watches {
		subs = append(subs, sub)
	}
	p.watches = nil
	p.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

// pushEvents streams one subscription's commit events to the client as
// codeEvent frames until the subscription closes (unwatch, connection
// teardown, or backend shutdown) or the connection stops accepting writes.
func (s *Server) pushEvents(pctx *pushCtx, watchID uint64, sub storage.Subscription) {
	defer pctx.handlers.Done()
	for ev := range sub.Events() {
		e := &encoder{}
		e.u64(watchID)
		e.u8(codeEvent)
		e.str(ev.Table)
		e.value(ev.Hash)
		e.u64(ev.Seq)
		pctx.writeMu.Lock()
		err := writeFrame(pctx.conn, e.b)
		pctx.writeMu.Unlock()
		if err != nil {
			pctx.remove(watchID)
			sub.Close()
			return
		}
		s.stats.BytesWritten.Add(int64(len(e.b)))
	}
}

// handshake validates the client hello and answers with the server's
// version; a mismatch is answered (so the client can report it) and the
// connection dropped.
func (s *Server) handshake(conn net.Conn) error {
	body, err := readFrame(conn)
	if err != nil {
		return err
	}
	d := &decoder{b: body}
	magic := make([]byte, len(Magic))
	for i := range magic {
		if magic[i], err = d.u8(); err != nil {
			return err
		}
	}
	if string(magic) != Magic {
		return fmt.Errorf("%w: bad magic %q", ErrProtocol, magic)
	}
	ver, err := d.u16()
	if err != nil {
		return err
	}
	e := &encoder{}
	e.b = append(e.b, Magic...)
	e.u16(Version)
	if ver != Version {
		e.u8(0)
		e.str(fmt.Sprintf("server speaks version %d, client sent %d", Version, ver))
		writeFrame(conn, e.b)
		return fmt.Errorf("%w: client version %d", ErrVersionMismatch, ver)
	}
	e.u8(1)
	e.str("")
	return writeFrame(conn, e.b)
}

// dispatch executes one request and returns the encoded response body.
func (s *Server) dispatch(pctx *pushCtx, id uint64, op byte, d *decoder) []byte {
	s.stats.RPCs.Add(1)
	e := &encoder{b: make([]byte, 0, 64)}
	e.u64(id)
	payload, err := s.handle(pctx, op, d)
	if err != nil {
		s.stats.Errors.Add(1)
		if errors.Is(err, ErrProtocol) {
			s.stats.ProtocolErrors.Add(1)
			e.u8(codeBadRequest)
			e.str(err.Error())
			return e.b
		}
		encodeError(e, err)
		return e.b
	}
	e.u8(codeOK)
	e.b = append(e.b, payload...)
	return e.b
}

// handle decodes one request payload, runs it against the backend, and
// encodes the result payload.
func (s *Server) handle(pctx *pushCtx, op byte, d *decoder) ([]byte, error) {
	e := &encoder{}
	switch op {
	case opPing:
		return nil, nil

	case opCreateTable:
		sch, err := d.schema()
		if err != nil {
			return nil, err
		}
		return nil, s.backend.CreateTable(sch)

	case opDeleteTable:
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		return nil, s.backend.DeleteTable(name)

	case opTableNames:
		names := s.backend.TableNames()
		e.uvarint(uint64(len(names)))
		for _, n := range names {
			e.str(n)
		}
		return e.b, nil

	case opTableShards:
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		n, err := s.backend.TableShards(name)
		if err != nil {
			return nil, err
		}
		e.uvarint(uint64(n))
		return e.b, nil

	case opTableSchema:
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		sch, err := s.backend.TableSchema(name)
		if err != nil {
			return nil, err
		}
		e.schema(sch)
		return e.b, nil

	case opTableBytes:
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		n, err := s.backend.TableBytes(name)
		if err != nil {
			return nil, err
		}
		e.uvarint(uint64(n))
		return e.b, nil

	case opTableItemCount:
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		n, err := s.backend.TableItemCount(name)
		if err != nil {
			return nil, err
		}
		e.uvarint(uint64(n))
		return e.b, nil

	case opGet, opGetProj:
		table, err := d.str()
		if err != nil {
			return nil, err
		}
		key, err := d.key()
		if err != nil {
			return nil, err
		}
		var it storage.Item
		var ok bool
		if op == opGetProj {
			proj, perr := d.paths()
			if perr != nil {
				return nil, perr
			}
			it, ok, err = s.backend.GetProj(table, key, proj)
		} else {
			it, ok, err = s.backend.Get(table, key)
		}
		if err != nil {
			return nil, err
		}
		e.bool(ok)
		if ok {
			e.item(it)
		}
		return e.b, nil

	case opPut:
		table, err := d.str()
		if err != nil {
			return nil, err
		}
		it, err := d.item()
		if err != nil {
			return nil, err
		}
		cond, err := d.cond()
		if err != nil {
			return nil, err
		}
		return nil, s.backend.Put(table, it, cond)

	case opUpdate:
		table, err := d.str()
		if err != nil {
			return nil, err
		}
		key, err := d.key()
		if err != nil {
			return nil, err
		}
		cond, err := d.cond()
		if err != nil {
			return nil, err
		}
		ups, err := d.updates()
		if err != nil {
			return nil, err
		}
		return nil, s.backend.Update(table, key, cond, ups...)

	case opDelete:
		table, err := d.str()
		if err != nil {
			return nil, err
		}
		key, err := d.key()
		if err != nil {
			return nil, err
		}
		cond, err := d.cond()
		if err != nil {
			return nil, err
		}
		return nil, s.backend.Delete(table, key, cond)

	case opQuery:
		table, err := d.str()
		if err != nil {
			return nil, err
		}
		hash, err := d.value()
		if err != nil {
			return nil, err
		}
		opts, err := d.queryOpts()
		if err != nil {
			return nil, err
		}
		rows, err := s.backend.Query(table, hash, opts)
		if err != nil {
			return nil, err
		}
		e.items(rows)
		return e.b, nil

	case opQueryIndex:
		table, err := d.str()
		if err != nil {
			return nil, err
		}
		index, err := d.str()
		if err != nil {
			return nil, err
		}
		hash, err := d.value()
		if err != nil {
			return nil, err
		}
		opts, err := d.queryOpts()
		if err != nil {
			return nil, err
		}
		rows, err := s.backend.QueryIndex(table, index, hash, opts)
		if err != nil {
			return nil, err
		}
		e.items(rows)
		return e.b, nil

	case opScan:
		table, err := d.str()
		if err != nil {
			return nil, err
		}
		opts, err := d.queryOpts()
		if err != nil {
			return nil, err
		}
		rows, err := s.backend.Scan(table, opts)
		if err != nil {
			return nil, err
		}
		e.items(rows)
		return e.b, nil

	case opTransactWrite:
		reqID, err := d.str()
		if err != nil {
			return nil, err
		}
		ops, err := d.txOps()
		if err != nil {
			return nil, err
		}
		if reqID == "" {
			return nil, s.backend.TransactWrite(ops)
		}
		txErr, hit := s.dedup.do(reqID, func() error { return s.backend.TransactWrite(ops) })
		if hit {
			s.stats.DedupHits.Add(1)
		}
		return nil, txErr

	case opMetrics:
		encodeMetrics(e, s.backend.Metrics().Snapshot())
		return e.b, nil

	case opWatch:
		watchID, err := d.u64()
		if err != nil {
			return nil, err
		}
		table, err := d.str()
		if err != nil {
			return nil, err
		}
		hash, err := d.value()
		if err != nil {
			return nil, err
		}
		w, ok := s.backend.(storage.Watcher)
		if !ok {
			return nil, fmt.Errorf("remote: backend %T does not support watch", s.backend)
		}
		sub, err := w.Watch(table, hash)
		if err != nil {
			return nil, err
		}
		if !pctx.add(watchID, sub) {
			sub.Close()
			return nil, fmt.Errorf("%w: watch id %d rejected (duplicate or connection closing)", ErrProtocol, watchID)
		}
		pctx.handlers.Add(1)
		go s.pushEvents(pctx, watchID, sub)
		return nil, nil

	case opUnwatch:
		watchID, err := d.u64()
		if err != nil {
			return nil, err
		}
		if sub := pctx.remove(watchID); sub != nil {
			sub.Close()
		}
		return nil, nil
	}
	return nil, fmt.Errorf("%w: unknown opcode %d", ErrProtocol, op)
}

// dedupWindow remembers recent TransactWrite request ids and their
// outcomes. A retried id returns the recorded outcome without re-applying;
// a retry racing the original execution waits for it — the property that
// makes "retry after ambiguous timeout" safe for the conditional
// transactions every fencing guarantee rides on.
type dedupWindow struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*dedupEntry
	order   []string // insertion order, for FIFO eviction
}

type dedupEntry struct {
	done chan struct{}
	err  error
}

func newDedupWindow(capacity int) *dedupWindow {
	return &dedupWindow{cap: capacity, entries: make(map[string]*dedupEntry, capacity)}
}

// do executes fn exactly once per id within the window, returning fn's
// recorded outcome and whether this call was answered by deduplication.
func (w *dedupWindow) do(id string, fn func() error) (error, bool) {
	w.mu.Lock()
	if ent, ok := w.entries[id]; ok {
		w.mu.Unlock()
		<-ent.done
		return ent.err, true
	}
	ent := &dedupEntry{done: make(chan struct{})}
	w.entries[id] = ent
	w.order = append(w.order, id)
	if len(w.order) > w.cap {
		evict := w.order[0]
		w.order = w.order[1:]
		delete(w.entries, evict)
	}
	w.mu.Unlock()

	ent.err = fn()
	close(ent.done)
	return ent.err, false
}
