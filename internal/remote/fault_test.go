package remote

// Fault-injection tests for the wire: torn and corrupt frames, handshake
// version skew, mid-RPC server kill and restart, ambiguous TransactWrite
// retries resolved by request-id dedup, and retry-budget exhaustion
// surfacing ErrUnavailable. Everything runs over real loopback TCP.

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

// hookBackend wraps a backend with per-op interception hooks.
type hookBackend struct {
	storage.Backend
	txCalls   atomic.Int64
	beforeTx  func(n int64) // called with the 1-based call number
	beforeGet func()
}

func (h *hookBackend) TransactWrite(ops []storage.TxOp) error {
	n := h.txCalls.Add(1)
	if h.beforeTx != nil {
		h.beforeTx(n)
	}
	return h.Backend.TransactWrite(ops)
}

func (h *hookBackend) Get(table string, key storage.Key) (storage.Item, bool, error) {
	if h.beforeGet != nil {
		h.beforeGet()
	}
	return h.Backend.Get(table, key)
}

func (h *hookBackend) Put(table string, item storage.Item, cond storage.Cond) error {
	if h.beforeGet != nil {
		h.beforeGet()
	}
	return h.Backend.Put(table, item, cond)
}

// startServer serves backend on a fresh loopback listener and returns the
// server and its address. Cleanup closes the server.
func startServer(t *testing.T, b storage.Backend, opts ServeOptions) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(b, opts)
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

func mustDial(t *testing.T, addr string, opts Options) *Client {
	t.Helper()
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func seedTable(t *testing.T, b storage.Backend) {
	t.Helper()
	if err := b.CreateTable(storage.Schema{Name: "t", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("t", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestServerSurvivesGarbage: raw garbage, torn frames, and corrupt CRCs
// kill only the offending connection; the server keeps serving well-formed
// clients.
func TestServerSurvivesGarbage(t *testing.T) {
	store := dynamo.NewStore()
	srv, addr := startServer(t, store, ServeOptions{})
	seedTable(t, store)

	poison := []func(c net.Conn){
		// Garbage instead of a handshake.
		func(c net.Conn) { c.Write([]byte("GET / HTTP/1.1\r\n\r\n")) },
		// A frame with an absurd length prefix.
		func(c net.Conn) { c.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}) },
		// A well-formed header whose body never arrives (torn frame).
		func(c net.Conn) {
			var b []byte
			e := &encoder{}
			e.b = append(e.b, Magic...)
			e.u16(Version)
			hdr := make([]byte, frameHeaderLen)
			putFrameHeader(hdr, e.b)
			b = append(append(b, hdr...), e.b[:len(e.b)-2]...)
			c.Write(b)
		},
		// A valid handshake, then a frame whose CRC lies.
		func(c net.Conn) {
			e := &encoder{}
			e.b = append(e.b, Magic...)
			e.u16(Version)
			writeFrame(c, e.b)
			readFrame(c) // server hello
			body := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
			hdr := make([]byte, frameHeaderLen)
			putFrameHeader(hdr, body)
			body[3] ^= 0x80 // corrupt after checksumming
			c.Write(append(hdr, body...))
		},
	}
	for i, p := range poison {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("poison %d: %v", i, err)
		}
		p(conn)
		conn.Close()
	}

	// The server must still answer a well-formed client.
	client := mustDial(t, addr, Options{})
	it, ok, err := client.Get("t", dynamo.HK(dynamo.S("a")))
	if err != nil || !ok || it["V"].Int() != 1 {
		t.Fatalf("Get after poison = %v %v %v", it, ok, err)
	}
	if got := srv.Stats().ProtocolErrors.Load(); got < 3 {
		t.Errorf("ProtocolErrors = %d, want >= 3", got)
	}
}

// TestHandshakeVersionMismatch: skewed peers refuse each other with
// ErrVersionMismatch, in both directions.
func TestHandshakeVersionMismatch(t *testing.T) {
	_, addr := startServer(t, dynamo.NewStore(), ServeOptions{})

	// Client from the future: server answers refusal, closes.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	e := &encoder{}
	e.b = append(e.b, Magic...)
	e.u16(Version + 7)
	if err := writeFrame(conn, e.b); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(conn)
	if err != nil {
		t.Fatalf("refusal frame: %v", err)
	}
	d := &decoder{b: body[len(Magic):]}
	if _, err := d.u16(); err != nil {
		t.Fatal(err)
	}
	ok, _ := d.bool()
	if ok {
		t.Error("server accepted a future protocol version")
	}

	// Server from the future: Dial fails with ErrVersionMismatch.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		readFrame(c)
		e := &encoder{}
		e.b = append(e.b, Magic...)
		e.u16(Version + 7)
		e.u8(0)
		e.str("too new")
		writeFrame(c, e.b)
	}()
	if _, err := Dial(lis.Addr().String(), Options{Retries: -1}); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("dial future server: %v", err)
	}
}

// TestClientReconnectAfterServerRestart: killing the server mid-session
// breaks every pooled connection; a restarted server on the same address is
// picked up transparently by retryable ops.
func TestClientReconnectAfterServerRestart(t *testing.T) {
	store := dynamo.NewStore()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	srv1 := NewServer(store, ServeOptions{})
	go srv1.Serve(lis)
	seedTable(t, store)

	// One pooled connection so the restart demonstrably breaks and re-dials
	// the same slot.
	client := mustDial(t, addr, Options{PoolSize: 1, Retries: 5, RetryBackoff: 20 * time.Millisecond})
	if _, ok, err := client.Get("t", dynamo.HK(dynamo.S("a"))); !ok || err != nil {
		t.Fatalf("pre-restart Get: %v %v", ok, err)
	}

	// Kill the server (listener and all conns), then restart on the same
	// address over the same backend — the store surviving is exactly the
	// independent-failure assumption the paper makes of DynamoDB.
	srv1.Close()
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen %s: %v", addr, err)
	}
	srv2 := NewServer(store, ServeOptions{})
	go srv2.Serve(lis2)
	defer srv2.Close()

	it, ok, err := client.Get("t", dynamo.HK(dynamo.S("a")))
	if err != nil || !ok || it["V"].Int() != 1 {
		t.Fatalf("post-restart Get = %v %v %v", it, ok, err)
	}
	if client.Stats().Reconnects.Load() == 0 {
		t.Error("no reconnects recorded across a server restart")
	}
	// Conditional writes work again too (fresh connection, not ambiguous).
	if err := client.Put("t", storage.Item{"K": dynamo.S("b")}, dynamo.NotExists(dynamo.A("K"))); err != nil {
		t.Errorf("post-restart conditional put: %v", err)
	}
}

// TestAmbiguousTransactWriteDedup: a TransactWrite whose response is lost
// to a timeout is retried under the same request id, and the server's
// dedup window coalesces the retry onto the original execution — applied
// exactly once, which is what makes fenced claims safe to retry.
func TestAmbiguousTransactWriteDedup(t *testing.T) {
	inner := dynamo.NewStore()
	hb := &hookBackend{Backend: inner}
	hb.beforeTx = func(n int64) {
		if n == 1 {
			// Outlive the client's attempt budget so the first response is
			// abandoned; the retry arrives while this is still running.
			time.Sleep(300 * time.Millisecond)
		}
	}
	srv, addr := startServer(t, hb, ServeOptions{})
	seedTable(t, inner)

	client := mustDial(t, addr, Options{
		OpTimeout:    200 * time.Millisecond,
		Retries:      3,
		RetryBackoff: 10 * time.Millisecond,
	})
	err := client.TransactWrite([]storage.TxOp{{
		Table: "t", Key: dynamo.HK(dynamo.S("a")),
		Cond:    dynamo.Eq(dynamo.A("V"), dynamo.NInt(1)),
		Updates: []storage.Update{dynamo.Add(dynamo.A("V"), 1)},
	}})
	if err != nil {
		t.Fatalf("retried TransactWrite: %v", err)
	}
	if got := hb.txCalls.Load(); got != 1 {
		t.Errorf("backend applied the transaction %d times, want 1", got)
	}
	if client.Stats().Retries.Load() == 0 {
		t.Error("no retry recorded for the ambiguous transaction")
	}
	if srv.Stats().DedupHits.Load() == 0 {
		t.Error("no dedup hit recorded server-side")
	}
	// The increment landed exactly once.
	it, _, err := client.Get("t", dynamo.HK(dynamo.S("a")))
	if err != nil || it["V"].Int() != 2 {
		t.Errorf("V = %v (%v), want 2", it["V"], err)
	}
}

// TestRetryBudgetExhausted: a server that never answers drains the retry
// budget and surfaces typed ErrUnavailable on reads; a bare conditional
// write fails fast on its first ambiguous attempt instead of retrying.
func TestRetryBudgetExhausted(t *testing.T) {
	inner := dynamo.NewStore()
	unblock := make(chan struct{})
	hb := &hookBackend{Backend: inner, beforeGet: func() { <-unblock }}
	srv, addr := startServer(t, hb, ServeOptions{})
	seedTable(t, inner)
	t.Cleanup(func() { close(unblock); srv.Close() })

	client := mustDial(t, addr, Options{
		OpTimeout:    50 * time.Millisecond,
		Retries:      2,
		RetryBackoff: 5 * time.Millisecond,
	})

	_, _, err := client.Get("t", dynamo.HK(dynamo.S("a")))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get against a hung server: %v, want ErrUnavailable", err)
	}
	if got := client.Stats().Timeouts.Load(); got != 3 {
		t.Errorf("Timeouts = %d, want 3 (initial + 2 retries)", got)
	}

	// Put is not idempotent: one ambiguous attempt, no blind retry.
	before := client.Stats().RPCs.Load()
	err = client.Put("t", storage.Item{"K": dynamo.S("x")}, dynamo.NotExists(dynamo.A("K")))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put against a hung server: %v, want ErrUnavailable", err)
	}
	if attempts := client.Stats().RPCs.Load() - before; attempts != 1 {
		t.Errorf("conditional Put made %d attempts, want 1 (fail fast)", attempts)
	}
}

// TestDialUnreachable: dialing a dead address is typed ErrUnavailable.
func TestDialUnreachable(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	if _, err := Dial(addr, Options{Retries: -1, RetryBackoff: time.Millisecond, DialTimeout: 200 * time.Millisecond}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("dial dead address: %v, want ErrUnavailable", err)
	}
}

// TestClosedClient: operations after Close return ErrClosed, not a retry
// loop.
func TestClosedClient(t *testing.T) {
	store := dynamo.NewStore()
	_, addr := startServer(t, store, ServeOptions{})
	seedTable(t, store)
	client, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, _, err := client.Get("t", dynamo.HK(dynamo.S("a"))); !errors.Is(err, ErrClosed) {
		t.Errorf("Get on closed client: %v", err)
	}
}
