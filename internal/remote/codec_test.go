package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("beldi"), 1000)}
	for _, b := range bodies {
		if err := writeFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range bodies {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("EOF at boundary: %v", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	// Truncated body.
	var buf bytes.Buffer
	writeFrame(&buf, []byte("hello world"))
	torn := buf.Bytes()[:buf.Len()-3]
	if _, err := readFrame(bytes.NewReader(torn)); !errors.Is(err, ErrProtocol) {
		t.Errorf("torn frame: %v", err)
	}
	// Flipped body bit fails the CRC.
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[frameHeaderLen+2] ^= 0x40
	if _, err := readFrame(bytes.NewReader(flipped)); !errors.Is(err, ErrProtocol) {
		t.Errorf("corrupt frame: %v", err)
	}
	// Absurd length prefix is rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := readFrame(bytes.NewReader(huge)); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized frame: %v", err)
	}
}

func TestValueItemRoundTrip(t *testing.T) {
	vals := []dynamo.Value{
		dynamo.Null,
		dynamo.S(""),
		dynamo.S("héllo"),
		dynamo.N(0),
		dynamo.N(-3.25),
		dynamo.NInt(1 << 50),
		dynamo.Bool(true),
		dynamo.Bool(false),
		dynamo.Bytes([]byte{0, 1, 2, 255}),
		dynamo.L(dynamo.S("a"), dynamo.NInt(2), dynamo.L()),
		dynamo.M(map[string]dynamo.Value{"z": dynamo.NInt(1), "a": dynamo.M(map[string]dynamo.Value{"x": dynamo.Null})}),
	}
	for i, v := range vals {
		e := &encoder{}
		e.value(v)
		d := &decoder{b: e.b}
		got, err := d.value()
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if !got.Equal(v) {
			t.Fatalf("value %d: got %v want %v", i, got, v)
		}
		if d.off != len(d.b) {
			t.Fatalf("value %d: %d trailing bytes", i, len(d.b)-d.off)
		}
	}

	it := dynamo.Item{"K": dynamo.S("k"), "V": dynamo.NInt(7), "M": vals[10]}
	e := &encoder{}
	e.item(it)
	got, err := (&decoder{b: e.b}).item()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(it) {
		t.Fatalf("item: got %v want %v", got, it)
	}
	for k, v := range it {
		if !got[k].Equal(v) {
			t.Fatalf("item[%s]: got %v want %v", k, got[k], v)
		}
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := dynamo.Schema{
		Name: "t", HashKey: "K", SortKey: "S", MaxItemSize: 4096, Shards: 8,
		Indexes: []dynamo.IndexSchema{{Name: "by-g", HashKey: "G", SortKey: "R"}},
	}
	e := &encoder{}
	e.schema(s)
	got, err := (&decoder{b: e.b}).schema()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("schema: got %+v want %+v", got, s)
	}
}

// TestCondRoundTrip re-evaluates decoded conditions against items to prove
// the rebuilt tree is semantically the original.
func TestCondRoundTrip(t *testing.T) {
	row := dynamo.Item{"V": dynamo.NInt(5), "Tag": dynamo.S("x")}
	conds := []dynamo.Cond{
		nil,
		dynamo.True(),
		dynamo.Exists(dynamo.A("V")),
		dynamo.NotExists(dynamo.A("Absent")),
		dynamo.Eq(dynamo.A("V"), dynamo.NInt(5)),
		dynamo.Ne(dynamo.A("Tag"), dynamo.S("y")),
		dynamo.Lt(dynamo.A("V"), dynamo.NInt(9)),
		dynamo.And(dynamo.Exists(dynamo.A("V")), dynamo.Gt(dynamo.A("V"), dynamo.NInt(1))),
		dynamo.Or(dynamo.Eq(dynamo.A("V"), dynamo.NInt(0)), dynamo.Eq(dynamo.A("Tag"), dynamo.S("x"))),
		dynamo.Not(dynamo.Exists(dynamo.A("Absent"))),
		dynamo.IsNullOr(dynamo.A("Absent"), dynamo.Eq(dynamo.A("Absent"), dynamo.S("z"))),
	}
	for i, c := range conds {
		e := &encoder{}
		if err := e.cond(c); err != nil {
			t.Fatalf("cond %d encode: %v", i, err)
		}
		got, err := (&decoder{b: e.b}).cond()
		if err != nil {
			t.Fatalf("cond %d decode: %v", i, err)
		}
		if (c == nil) != (got == nil) {
			t.Fatalf("cond %d: nil mismatch (%v vs %v)", i, c, got)
		}
		if c == nil {
			continue
		}
		for _, item := range []dynamo.Item{row, {}} {
			if want, have := c.Eval(item), got.Eval(item); want != have {
				t.Fatalf("cond %d (%v) on %v: want %v got %v", i, c, item, want, have)
			}
		}
	}
}

func TestTxOpsRoundTrip(t *testing.T) {
	ops := []dynamo.TxOp{
		{Table: "a", Put: dynamo.Item{"K": dynamo.S("x")}},
		{Table: "b", Key: dynamo.HSK(dynamo.S("h"), dynamo.NInt(2)),
			Cond:    dynamo.Eq(dynamo.A("V"), dynamo.NInt(1)),
			Updates: []dynamo.Update{dynamo.Set(dynamo.A("V"), dynamo.NInt(9)), dynamo.Add(dynamo.A("N"), 2), dynamo.Remove(dynamo.A("T"))}},
		{Table: "c", Key: dynamo.HK(dynamo.S("k")), Delete: true},
		{Table: "d", Key: dynamo.HK(dynamo.S("k")), Cond: dynamo.Exists(dynamo.A("K")), Check: true},
	}
	e := &encoder{}
	if err := e.txOps(ops); err != nil {
		t.Fatal(err)
	}
	got, err := (&decoder{b: e.b}).txOps()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i].Table != ops[i].Table || got[i].Delete != ops[i].Delete || got[i].Check != ops[i].Check {
			t.Errorf("op %d flags: %+v vs %+v", i, got[i], ops[i])
		}
		if len(got[i].Updates) != len(ops[i].Updates) {
			t.Errorf("op %d updates: %d vs %d", i, len(got[i].Updates), len(ops[i].Updates))
		}
		if (got[i].Put == nil) != (ops[i].Put == nil) {
			t.Errorf("op %d put presence mismatch", i)
		}
	}
}

// TestErrorRoundTrip pins the property every fencing guarantee rides on:
// the exact errors.Is/errors.As identities survive encode → decode.
func TestErrorRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		is   error
		name string
	}{
		{fmt.Errorf("wrapped: %w", dynamo.ErrConditionFailed), storage.ErrConditionFailed, "cond"},
		{dynamo.ErrItemTooLarge, storage.ErrItemTooLarge, "toolarge"},
		{dynamo.ErrNoSuchTable, storage.ErrNoSuchTable, "notable"},
		{dynamo.ErrTableExists, storage.ErrTableExists, "exists"},
		{dynamo.ErrNoSuchIndex, storage.ErrNoSuchIndex, "noindex"},
	}
	for _, c := range cases {
		e := &encoder{}
		encodeError(e, c.err)
		d := &decoder{b: e.b}
		code, _ := d.u8()
		got := decodeError(code, d)
		if !errors.Is(got, c.is) {
			t.Errorf("%s: decoded %v does not match sentinel", c.name, got)
		}
		if got.Error() != c.err.Error() {
			t.Errorf("%s: message %q != %q", c.name, got.Error(), c.err.Error())
		}
	}

	// Canceled transactions keep their positional reasons.
	tce := &dynamo.TxCanceledError{Reasons: []error{nil, dynamo.ErrConditionFailed, errors.New("boom")}}
	e := &encoder{}
	encodeError(e, tce)
	d := &decoder{b: e.b}
	code, _ := d.u8()
	got := decodeError(code, d)
	var gotTce *dynamo.TxCanceledError
	if !errors.As(got, &gotTce) {
		t.Fatalf("decoded %T, want TxCanceledError", got)
	}
	if !errors.Is(got, storage.ErrConditionFailed) {
		t.Error("decoded TxCanceledError lost its ErrConditionFailed identity")
	}
	if len(gotTce.Reasons) != 3 || gotTce.Reasons[0] != nil ||
		!errors.Is(gotTce.Reasons[1], storage.ErrConditionFailed) || gotTce.Reasons[2] == nil {
		t.Errorf("reasons = %v", gotTce.Reasons)
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	var m dynamo.Metrics
	m.Ops[dynamo.OpGet].Add(3)
	m.Ops[dynamo.OpTxWrite].Add(2)
	m.CondFailures.Add(1)
	m.BytesWritten.Add(77)
	want := m.Snapshot()
	e := &encoder{}
	encodeMetrics(e, want)
	got, err := decodeMetrics(&decoder{b: e.b})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("metrics: got %+v want %+v", got, want)
	}
}

// TestDecoderTruncation: every decoder entry point fails cleanly (no panic,
// no giant allocation) on arbitrary prefixes of a valid encoding.
func TestDecoderTruncation(t *testing.T) {
	e := &encoder{}
	e.item(dynamo.Item{"K": dynamo.S("key"), "L": dynamo.L(dynamo.NInt(1), dynamo.S("two"))})
	full := e.b
	for n := 0; n < len(full); n++ {
		if _, err := (&decoder{b: full[:n]}).item(); err == nil {
			t.Fatalf("truncated item at %d decoded successfully", n)
		}
	}
}
