package remote

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
)

// Client-side commit-stream watch: Watch registers a subscription on the
// server over one pooled connection, and the server pushes codeEvent frames
// that connection's readLoop routes back to the subscription. Subscriptions
// are connection-scoped — when the connection breaks, the event channel
// closes and the consumer resubscribes or falls back to polling, the same
// degradation path storage.Watch gives backends without push at all.

// clientSub is a live watch subscription carried by one pooled connection.
type clientSub struct {
	client *Client
	pc     *poolConn
	id     uint64
	ch     chan storage.CommitEvent
	closed bool // guarded by pc.mu
}

// Events returns the delivery channel; it closes when the subscription is
// closed or its connection is lost. Events may coalesce under load — treat
// them as wakeup hints and re-read the table.
func (w *clientSub) Events() <-chan storage.CommitEvent { return w.ch }

// Wait blocks until an event arrives (consuming it, true), d elapses, or
// cancel fires (false). A nil cancel never fires. A closed subscription
// (lost connection) waits out the full duration like a backend without push,
// so retry loops keep their poll cadence instead of spinning.
func (w *clientSub) Wait(d time.Duration, cancel <-chan struct{}) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	ch := w.ch
	for {
		select {
		case _, ok := <-ch:
			if ok {
				return true
			}
			ch = nil
		case <-timer.C:
			return false
		case <-cancel:
			return false
		}
	}
}

// Close unregisters the subscription locally and tells the server to stop
// pushing (best effort — on a dead connection the server already reaped it).
// Idempotent.
func (w *clientSub) Close() {
	if !w.pc.dropWatch(w) {
		return
	}
	w.pc.mu.Lock()
	live := w.pc.conn != nil
	w.pc.mu.Unlock()
	if !live {
		return
	}
	w.client.callOn(w.pc, opUnwatch, func(e *encoder) error {
		e.u64(w.id)
		return nil
	})
}

func (w *clientSub) String() string { return fmt.Sprintf("remote-watch(%d)", w.id) }

// addWatch registers sub for event delivery; must happen before the opWatch
// RPC is sent so a push racing the RPC response is not dropped.
func (p *poolConn) addWatch(w *clientSub) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.watches == nil {
		p.watches = make(map[uint64]*clientSub)
	}
	p.watches[w.id] = w
	p.client.metrics.WatchSubs.Add(1)
}

// dropWatch unregisters sub and closes its channel; false when it was
// already torn down (by Close or a connection failure).
func (p *poolConn) dropWatch(w *clientSub) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.closed {
		return false
	}
	w.closed = true
	delete(p.watches, w.id)
	close(w.ch)
	p.client.metrics.WatchSubs.Add(-1)
	return true
}

// callOn runs one RPC on a specific pooled connection, with no cross-
// connection retries — watch registration must land on the connection whose
// readLoop will carry the events.
func (c *Client) callOn(pc *poolConn, op byte, enc func(*encoder) error) (*decoder, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	id := c.reqSeq.Add(1)
	e := &encoder{b: make([]byte, frameHeaderLen, 128)}
	e.u64(id)
	e.u8(op)
	if err := enc(e); err != nil {
		return nil, err
	}
	body, err := pc.attempt(id, frameInPlace(e.b), c.opts.OpTimeout)
	if err != nil {
		ae := err.(attemptErr)
		if errors.Is(ae.err, ErrClosed) || errors.Is(ae.err, ErrUnavailable) {
			return nil, ae.err
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, opName(op), ae.err)
	}
	d := &decoder{b: body}
	code, cerr := d.u8()
	if cerr != nil {
		return nil, cerr
	}
	if code != codeOK {
		return nil, decodeError(code, d)
	}
	return d, nil
}

// Watch implements storage.Watcher over the wire: the subscription is
// registered on the server before Watch returns, so every commit after the
// call produces a push (subject to buffer coalescing). The subscription is
// pinned to one pooled connection; if that connection later fails, the event
// channel closes and the caller resubscribes or falls back to polling.
func (c *Client) Watch(table string, hash storage.Value) (storage.Subscription, error) {
	pc := c.pool[c.rr.Add(1)%uint64(len(c.pool))]
	if _, err := pc.get(); err != nil {
		return nil, err
	}
	w := &clientSub{
		client: c,
		pc:     pc,
		id:     c.watchSeq.Add(1),
		ch:     make(chan storage.CommitEvent, storage.DefaultWatchBuffer),
	}
	pc.addWatch(w)
	_, err := c.callOn(pc, opWatch, func(e *encoder) error {
		e.u64(w.id)
		e.str(table)
		e.value(hash)
		return nil
	})
	if err != nil {
		pc.dropWatch(w)
		return nil, err
	}
	return w, nil
}

var _ storage.Watcher = (*Client)(nil)
