package remote_test

// Process-level recovery test: real worker OS processes against an in-test
// storage server, with a real SIGKILL mid-load. This is the acceptance test
// for the paper's core claim carried across the network seam — workers and
// the store fail independently, and exactly-once survives a worker dying
// without cleanup because every guarantee rides on conditional writes that
// round-trip the wire exactly.
//
// The test binary re-execs itself as the workers (TestMain checks
// BELDI_REMOTE_PROC_WORKER), so the workers run the same compiled code but
// share nothing with the test process except the TCP connection to the
// storage server.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/apps/counterdemo"
	"repro/internal/platform"
	"repro/internal/remote"
	"repro/internal/walstore"
)

var procConfig = beldi.Config{T: 300 * time.Millisecond, ICMinAge: 10 * time.Millisecond}

var procDurable = beldi.DurableAsyncOptions{
	VisibilityTimeout: time.Second,
	PollInterval:      20 * time.Millisecond,
}

func TestMain(m *testing.M) {
	if os.Getenv("BELDI_REMOTE_PROC_WORKER") == "1" {
		procWorkerMain()
		return
	}
	os.Exit(m.Run())
}

// procWorkerMain is the re-exec'd worker process: dial the store, join the
// pool, announce readiness, serve until killed. It also exits if its stdin
// closes, so workers never outlive a crashed test run.
func procWorkerMain() {
	addr := os.Getenv("BELDI_REMOTE_STORE_ADDR")
	id := os.Getenv("BELDI_REMOTE_WORKER_ID")
	client, err := remote.Dial(addr, remote.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: %v\n", id, err)
		os.Exit(1)
	}
	c := beldi.MustOpenCluster(beldi.ClusterOptions{
		Store:        client,
		LeaseTTL:     500 * time.Millisecond,
		Config:       procConfig,
		DurableAsync: &procDurable,
	})
	w, err := c.JoinCluster(id, counterdemo.Register)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: %v\n", id, err)
		os.Exit(1)
	}
	w.Start()
	fmt.Printf("READY %s\n", id)
	buf := make([]byte, 1)
	os.Stdin.Read(buf) // EOF when the test process dies
	os.Exit(0)
}

// startWorkerProc re-execs the test binary as a worker and waits for its
// READY line.
func startWorkerProc(t *testing.T, addr, id string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"BELDI_REMOTE_PROC_WORKER=1",
		"BELDI_REMOTE_STORE_ADDR="+addr,
		"BELDI_REMOTE_WORKER_ID="+id,
	)
	stdin, err := cmd.StdinPipe() // held open; closes if the test dies
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		stdin.Close()
		cmd.Process.Kill()
		cmd.Wait()
	})
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			t.Logf("[%s] %s", id, sc.Text())
		}
	}()
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "READY ") {
				ready <- sc.Text()
				break
			}
		}
		close(ready)
		for sc.Scan() {
		}
	}()
	select {
	case line, ok := <-ready:
		if !ok {
			t.Fatalf("worker %s exited before READY", id)
		}
		t.Logf("%s (pid %d)", line, cmd.Process.Pid)
	case <-time.After(30 * time.Second):
		t.Fatalf("worker %s did not become ready", id)
	}
	return cmd
}

// TestWorkerSIGKILLRecovery: two worker processes drain durable counter
// workflows from a shared remote store; one is SIGKILLed mid-load; the
// survivor detects the silent lease, steals the dead worker's partitions,
// finishes its in-flight intents, and the queue redelivers its unacked
// messages — every counter lands at exactly 1.
func TestWorkerSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}

	// Storage plane: walstore behind a wire server, in this process.
	dir := t.TempDir()
	ws, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(ws, remote.ServeOptions{})
	go srv.Serve(lis)
	t.Cleanup(func() {
		srv.Close()
		ws.Close()
	})
	addr := lis.Addr().String()

	// Gateway deployment: enqueues through ingest, executes nothing (no
	// mappers, no collectors — the worker processes own all execution).
	client, err := remote.Dial(addr, remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store:    client,
		Platform: platform.New(platform.Options{}),
		Config:   procConfig,
	})
	counterdemo.Register(d)
	d.EnableDurableAsync(procDurable)

	// Compute plane: two real worker OS processes.
	w0 := startWorkerProc(t, addr, "w0")
	w1 := startWorkerProc(t, addr, "w1")
	_ = w0

	const requests = 12
	for i := 0; i < requests; i++ {
		if i == requests/2 {
			// SIGKILL w1 while the queue still holds work: no deferred
			// cleanup, no lease release — the failure mode the pool exists
			// to absorb.
			if err := w1.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			go w1.Wait()
			t.Logf("SIGKILL sent to w1 (pid %d) mid-load", w1.Process.Pid)
		}
		if _, err := d.Invoke(counterdemo.FnIngest, counterdemo.Request(i)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}

	deadline := time.Now().Add(60 * time.Second)
	probe := d.Runtime(counterdemo.FnCounter)
	for {
		exact, dup := 0, 0
		for i := 0; i < requests; i++ {
			v, err := beldi.PeekState(probe, counterdemo.StateTable, counterdemo.Key(i))
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case v.Int() == 1:
				exact++
			case v.Int() > 1:
				dup++
			}
		}
		if dup > 0 {
			t.Fatalf("duplicated executions: %d counters above 1", dup)
		}
		if exact == requests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery did not converge: %d/%d counters at exactly 1", exact, requests)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("all %d counters at exactly 1 after SIGKILL; orchestrator stats: %+v",
		requests, client.Stats().Snapshot())
}
