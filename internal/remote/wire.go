// Package remote puts the storage plane behind a real network seam: Serve
// exposes a storage.Backend over length-prefixed, CRC-framed request/
// response records on TCP, and Dial returns a storage.Backend client that
// speaks the same protocol — so N worker OS processes (each a compute-plane
// member of the cluster runtime) share one out-of-process, independently
// failing store, the deployment shape the paper assumes of DynamoDB and
// Netherite assumes of its partition/storage split.
//
// The protocol is stdlib-only and deliberately small:
//
//   - Every record is framed [u32 length][u32 crc32c][body] (the walstore
//     framing idiom), bodies are a deterministic binary encoding of the
//     storage data model, and a torn or corrupt frame kills only the one
//     connection — the client reconnects and retries what is safe to retry.
//   - Connections open with a versioned handshake, then carry pipelined
//     request/response pairs matched by request id; the server executes
//     requests concurrently, so one slow Scan never queues behind a Put.
//   - Errors round-trip exactly: condition failures, canceled transactions
//     (with per-op reasons), unknown tables/indexes, and size-cap
//     violations arrive as the same errors.Is/errors.As identities the
//     in-process backends return, because every fencing and exactly-once
//     guarantee above the seam branches on them.
//   - The client retries idempotence-safe operations with bounded backoff
//     and fails conditional writes fast; TransactWrite carries a
//     client-supplied request id the server deduplicates in a bounded
//     window, so a retry after an ambiguous timeout can never double-apply
//     a fenced claim.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Protocol constants.
const (
	// Magic opens every handshake frame.
	Magic = "BLDR"
	// Version is the protocol version this build speaks. Handshakes with a
	// different version are refused with a structured error.
	Version uint16 = 1
)

// maxFrameBody bounds a frame's body; larger length prefixes are treated as
// protocol corruption (a torn stream read as garbage) and kill the
// connection rather than the process.
const maxFrameBody = 64 << 20

// frameHeaderLen is the fixed per-record framing overhead.
const frameHeaderLen = 8

// castagnoli is the CRC-32C table covering every frame body.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed errors the client surfaces. ErrUnavailable wraps every failure to
// reach or keep a server (dial refused, retry budget exhausted, ambiguous
// loss of an in-flight conditional write); callers test with errors.Is.
var (
	// ErrUnavailable reports that the storage server could not be reached,
	// or that an operation's retry budget ran out before a response landed.
	ErrUnavailable = errors.New("remote: storage server unavailable")
	// ErrProtocol reports a framing or encoding violation on the wire — a
	// torn frame, a CRC mismatch, an unknown opcode.
	ErrProtocol = errors.New("remote: protocol error")
	// ErrVersionMismatch reports a handshake with an incompatible peer.
	ErrVersionMismatch = errors.New("remote: protocol version mismatch")
	// ErrClosed reports an operation on a closed client or server.
	ErrClosed = errors.New("remote: closed")
)

// Opcodes. The request body is [u64 id][u8 opcode][payload]; the response
// body is [u64 id][u8 code][payload], where code 0 carries a result payload
// and anything else carries a structured error.
const (
	opPing byte = iota + 1
	opCreateTable
	opDeleteTable
	opTableNames
	opTableShards
	opTableSchema
	opTableBytes
	opTableItemCount
	opGet
	opGetProj
	opPut
	opUpdate
	opDelete
	opQuery
	opQueryIndex
	opScan
	opTransactWrite
	opMetrics
	opWatch
	opUnwatch
)

// opName names an opcode for diagnostics and metrics.
func opName(op byte) string {
	switch op {
	case opPing:
		return "ping"
	case opCreateTable:
		return "create_table"
	case opDeleteTable:
		return "delete_table"
	case opTableNames:
		return "table_names"
	case opTableShards:
		return "table_shards"
	case opTableSchema:
		return "table_schema"
	case opTableBytes:
		return "table_bytes"
	case opTableItemCount:
		return "table_item_count"
	case opGet:
		return "get"
	case opGetProj:
		return "get_proj"
	case opPut:
		return "put"
	case opUpdate:
		return "update"
	case opDelete:
		return "delete"
	case opQuery:
		return "query"
	case opQueryIndex:
		return "query_index"
	case opScan:
		return "scan"
	case opTransactWrite:
		return "transact_write"
	case opMetrics:
		return "metrics"
	case opWatch:
		return "watch"
	case opUnwatch:
		return "unwatch"
	}
	return fmt.Sprintf("op%d", op)
}

// putFrameHeader fills an 8-byte header for body.
func putFrameHeader(hdr, body []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
}

// writeFrame frames body and writes it to w in one Write call (so a
// concurrent writer holding the connection's write lock emits whole
// records).
func writeFrame(w io.Writer, body []byte) error {
	frame := make([]byte, frameHeaderLen+len(body))
	putFrameHeader(frame[:frameHeaderLen], body)
	copy(frame[frameHeaderLen:], body)
	_, err := w.Write(frame)
	return err
}

// readFrame reads one framed body from r, verifying the length bound and
// CRC. Errors other than a clean EOF at a frame boundary wrap ErrProtocol
// or the underlying I/O failure.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrameBody {
		return nil, fmt.Errorf("%w: frame length %d exceeds %d", ErrProtocol, n, maxFrameBody)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: truncated frame: %v", ErrProtocol, err)
	}
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("%w: frame CRC mismatch", ErrProtocol)
	}
	return body, nil
}
