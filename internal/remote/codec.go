package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

// This file is the wire codec for the storage data model: a deterministic
// binary encoding (uvarint-prefixed strings, kind-tagged values, map
// attributes in sorted key order) shared by requests and responses, plus
// the structured error encoding that lets condition failures and canceled
// transactions round-trip with their errors.Is/errors.As identities intact.

type encoder struct{ b []byte }

func (e *encoder) u8(v byte)        { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16)     { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *encoder) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encoder) f64(f float64)    { e.u64(math.Float64bits(f)) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *encoder) value(v dynamo.Value) {
	e.u8(byte(v.Kind()))
	switch v.Kind() {
	case dynamo.KindNull:
	case dynamo.KindString:
		e.str(v.Str())
	case dynamo.KindNumber:
		e.f64(v.Num())
	case dynamo.KindBool:
		e.bool(v.BoolVal())
	case dynamo.KindBytes:
		b := v.BytesVal()
		e.uvarint(uint64(len(b)))
		e.b = append(e.b, b...)
	case dynamo.KindList:
		l := v.List()
		e.uvarint(uint64(len(l)))
		for _, el := range l {
			e.value(el)
		}
	case dynamo.KindMap:
		m := v.Map()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.str(k)
			e.value(m[k])
		}
	}
}

func (e *encoder) item(it dynamo.Item) {
	keys := make([]string, 0, len(it))
	for k := range it {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.value(it[k])
	}
}

func (e *encoder) items(its []dynamo.Item) {
	e.uvarint(uint64(len(its)))
	for _, it := range its {
		e.item(it)
	}
}

func (e *encoder) key(k dynamo.Key) {
	e.value(k.Hash)
	e.value(k.Sort)
}

func (e *encoder) path(p dynamo.Path) {
	e.str(p.Attr)
	e.str(p.MapKey)
}

func (e *encoder) paths(ps []dynamo.Path) {
	e.uvarint(uint64(len(ps)))
	for _, p := range ps {
		e.path(p)
	}
}

func (e *encoder) schema(s dynamo.Schema) {
	e.str(s.Name)
	e.str(s.HashKey)
	e.str(s.SortKey)
	e.uvarint(uint64(s.MaxItemSize))
	e.uvarint(uint64(s.Shards))
	e.uvarint(uint64(len(s.Indexes)))
	for _, ix := range s.Indexes {
		e.str(ix.Name)
		e.str(ix.HashKey)
		e.str(ix.SortKey)
	}
}

func (e *encoder) condDesc(d dynamo.CondDesc) {
	e.u8(byte(d.Kind))
	switch d.Kind {
	case dynamo.CondExists, dynamo.CondNotExists:
		e.path(d.Path)
	case dynamo.CondCmp:
		e.path(d.Path)
		e.str(d.Op)
		e.value(d.Value)
	case dynamo.CondAnd, dynamo.CondOr, dynamo.CondNot:
		e.uvarint(uint64(len(d.Subs)))
		for _, sub := range d.Subs {
			e.condDesc(sub)
		}
	}
}

// cond encodes an optional condition: a presence byte, then the CondDesc
// tree. Foreign Cond implementations cannot cross the wire.
func (e *encoder) cond(c dynamo.Cond) error {
	if c == nil {
		e.u8(0)
		return nil
	}
	d, ok := dynamo.DescribeCond(c)
	if !ok {
		return fmt.Errorf("%w: condition %s is not serializable (foreign Cond implementation)", ErrProtocol, c)
	}
	e.u8(1)
	e.condDesc(d)
	return nil
}

func (e *encoder) updates(us []dynamo.Update) error {
	e.uvarint(uint64(len(us)))
	for _, u := range us {
		d, ok := dynamo.DescribeUpdate(u)
		if !ok {
			return fmt.Errorf("%w: update %s is not serializable (foreign Update implementation)", ErrProtocol, u)
		}
		e.u8(byte(d.Kind))
		e.path(d.Path)
		switch d.Kind {
		case dynamo.UpdateSet:
			e.value(d.Value)
		case dynamo.UpdateAdd:
			e.f64(d.Delta)
		}
	}
	return nil
}

func (e *encoder) queryOpts(o dynamo.QueryOpts) error {
	if err := e.cond(o.Filter); err != nil {
		return err
	}
	e.paths(o.Projection)
	e.uvarint(uint64(o.Limit))
	e.bool(o.Descending)
	return nil
}

func (e *encoder) txOps(ops []dynamo.TxOp) error {
	e.uvarint(uint64(len(ops)))
	for _, op := range ops {
		e.str(op.Table)
		e.key(op.Key)
		if err := e.cond(op.Cond); err != nil {
			return err
		}
		if op.Put != nil {
			e.u8(1)
			e.item(op.Put)
		} else {
			e.u8(0)
		}
		if err := e.updates(op.Updates); err != nil {
			return err
		}
		e.bool(op.Delete)
		e.bool(op.Check)
	}
	return nil
}

// --- decoding ---

type decoder struct {
	b   []byte
	off int
}

var errTruncated = fmt.Errorf("%w: truncated body", ErrProtocol)

func (d *decoder) u8() (byte, error) {
	if d.off >= len(d.b) {
		return 0, errTruncated
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.off+2 > len(d.b) {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return v, nil
}

// count reads a collection length and bounds it by the remaining bytes
// (each element costs at least one byte), so a corrupt prefix cannot force
// a huge allocation.
func (d *decoder) count() (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(d.b)-d.off) {
		return 0, errTruncated
	}
	return int(n), nil
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) bool() (bool, error) {
	v, err := d.u8()
	return v != 0, err
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.b)-d.off) < n {
		return "", errTruncated
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) value() (dynamo.Value, error) {
	kb, err := d.u8()
	if err != nil {
		return dynamo.Null, err
	}
	switch dynamo.Kind(kb) {
	case dynamo.KindNull:
		return dynamo.Null, nil
	case dynamo.KindString:
		s, err := d.str()
		return dynamo.S(s), err
	case dynamo.KindNumber:
		f, err := d.f64()
		return dynamo.N(f), err
	case dynamo.KindBool:
		b, err := d.bool()
		return dynamo.Bool(b), err
	case dynamo.KindBytes:
		n, err := d.uvarint()
		if err != nil {
			return dynamo.Null, err
		}
		if uint64(len(d.b)-d.off) < n {
			return dynamo.Null, errTruncated
		}
		b := make([]byte, n)
		copy(b, d.b[d.off:])
		d.off += int(n)
		return dynamo.Bytes(b), nil
	case dynamo.KindList:
		n, err := d.count()
		if err != nil {
			return dynamo.Null, err
		}
		l := make([]dynamo.Value, n)
		for i := range l {
			if l[i], err = d.value(); err != nil {
				return dynamo.Null, err
			}
		}
		return dynamo.L(l...), nil
	case dynamo.KindMap:
		n, err := d.count()
		if err != nil {
			return dynamo.Null, err
		}
		m := make(map[string]dynamo.Value, n)
		for i := 0; i < n; i++ {
			k, err := d.str()
			if err != nil {
				return dynamo.Null, err
			}
			if m[k], err = d.value(); err != nil {
				return dynamo.Null, err
			}
		}
		return dynamo.M(m), nil
	}
	return dynamo.Null, fmt.Errorf("%w: unknown value kind %d", ErrProtocol, kb)
}

func (d *decoder) item() (dynamo.Item, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	it := make(dynamo.Item, n)
	for i := 0; i < n; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		if it[k], err = d.value(); err != nil {
			return nil, err
		}
	}
	return it, nil
}

func (d *decoder) items() ([]dynamo.Item, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	its := make([]dynamo.Item, n)
	for i := range its {
		if its[i], err = d.item(); err != nil {
			return nil, err
		}
	}
	return its, nil
}

func (d *decoder) key() (dynamo.Key, error) {
	h, err := d.value()
	if err != nil {
		return dynamo.Key{}, err
	}
	s, err := d.value()
	return dynamo.Key{Hash: h, Sort: s}, err
}

func (d *decoder) path() (dynamo.Path, error) {
	var p dynamo.Path
	var err error
	if p.Attr, err = d.str(); err != nil {
		return p, err
	}
	p.MapKey, err = d.str()
	return p, err
}

func (d *decoder) paths() ([]dynamo.Path, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	ps := make([]dynamo.Path, n)
	for i := range ps {
		if ps[i], err = d.path(); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

func (d *decoder) schema() (dynamo.Schema, error) {
	var s dynamo.Schema
	var err error
	if s.Name, err = d.str(); err != nil {
		return s, err
	}
	if s.HashKey, err = d.str(); err != nil {
		return s, err
	}
	if s.SortKey, err = d.str(); err != nil {
		return s, err
	}
	maxSize, err := d.uvarint()
	if err != nil {
		return s, err
	}
	s.MaxItemSize = int(maxSize)
	shards, err := d.uvarint()
	if err != nil {
		return s, err
	}
	s.Shards = int(shards)
	n, err := d.count()
	if err != nil {
		return s, err
	}
	if n > 0 {
		s.Indexes = make([]dynamo.IndexSchema, n)
		for i := range s.Indexes {
			if s.Indexes[i].Name, err = d.str(); err != nil {
				return s, err
			}
			if s.Indexes[i].HashKey, err = d.str(); err != nil {
				return s, err
			}
			if s.Indexes[i].SortKey, err = d.str(); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func (d *decoder) condDesc() (dynamo.CondDesc, error) {
	var cd dynamo.CondDesc
	kb, err := d.u8()
	if err != nil {
		return cd, err
	}
	cd.Kind = dynamo.CondKind(kb)
	switch cd.Kind {
	case dynamo.CondTrue:
	case dynamo.CondExists, dynamo.CondNotExists:
		cd.Path, err = d.path()
	case dynamo.CondCmp:
		if cd.Path, err = d.path(); err != nil {
			return cd, err
		}
		if cd.Op, err = d.str(); err != nil {
			return cd, err
		}
		cd.Value, err = d.value()
	case dynamo.CondAnd, dynamo.CondOr, dynamo.CondNot:
		var n int
		if n, err = d.count(); err != nil {
			return cd, err
		}
		cd.Subs = make([]dynamo.CondDesc, n)
		for i := range cd.Subs {
			if cd.Subs[i], err = d.condDesc(); err != nil {
				return cd, err
			}
		}
	default:
		return cd, fmt.Errorf("%w: unknown condition kind %d", ErrProtocol, kb)
	}
	return cd, err
}

func (d *decoder) cond() (dynamo.Cond, error) {
	present, err := d.u8()
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	cd, err := d.condDesc()
	if err != nil {
		return nil, err
	}
	c, err := dynamo.CondFromDesc(cd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	return c, nil
}

func (d *decoder) updates() ([]dynamo.Update, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	us := make([]dynamo.Update, n)
	for i := range us {
		var ud dynamo.UpdateDesc
		kb, err := d.u8()
		if err != nil {
			return nil, err
		}
		ud.Kind = dynamo.UpdateKind(kb)
		if ud.Path, err = d.path(); err != nil {
			return nil, err
		}
		switch ud.Kind {
		case dynamo.UpdateSet:
			if ud.Value, err = d.value(); err != nil {
				return nil, err
			}
		case dynamo.UpdateAdd:
			if ud.Delta, err = d.f64(); err != nil {
				return nil, err
			}
		}
		if us[i], err = dynamo.UpdateFromDesc(ud); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
	}
	return us, nil
}

func (d *decoder) queryOpts() (dynamo.QueryOpts, error) {
	var o dynamo.QueryOpts
	var err error
	if o.Filter, err = d.cond(); err != nil {
		return o, err
	}
	if o.Projection, err = d.paths(); err != nil {
		return o, err
	}
	limit, err := d.uvarint()
	if err != nil {
		return o, err
	}
	o.Limit = int(limit)
	o.Descending, err = d.bool()
	return o, err
}

func (d *decoder) txOps() ([]dynamo.TxOp, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	ops := make([]dynamo.TxOp, n)
	for i := range ops {
		op := &ops[i]
		if op.Table, err = d.str(); err != nil {
			return nil, err
		}
		if op.Key, err = d.key(); err != nil {
			return nil, err
		}
		if op.Cond, err = d.cond(); err != nil {
			return nil, err
		}
		hasPut, err := d.u8()
		if err != nil {
			return nil, err
		}
		if hasPut != 0 {
			if op.Put, err = d.item(); err != nil {
				return nil, err
			}
		}
		if op.Updates, err = d.updates(); err != nil {
			return nil, err
		}
		if op.Delete, err = d.bool(); err != nil {
			return nil, err
		}
		if op.Check, err = d.bool(); err != nil {
			return nil, err
		}
	}
	return ops, nil
}

// --- structured errors ---

// Wire error codes. Code 0 in a response means success.
const (
	codeOK byte = iota
	codeCondFailed
	codeItemTooLarge
	codeNoSuchTable
	codeTableExists
	codeNoSuchIndex
	codeTxCanceled
	codeBadRequest
	codeInternal
)

// codeEvent marks an unsolicited server-push frame (a watch commit event)
// rather than a response: the id field carries the client-chosen watch id,
// and the payload is [str table][value hash][u64 seq]. It lives far from the
// error codes so a response can never be mistaken for a push.
const codeEvent byte = 0x80

// encodeError maps a backend error onto the wire: a code, the message, and
// for canceled transactions the per-op reason list.
func encodeError(e *encoder, err error) {
	var tce *dynamo.TxCanceledError
	switch {
	case errors.As(err, &tce):
		e.u8(codeTxCanceled)
		e.str(err.Error())
		e.uvarint(uint64(len(tce.Reasons)))
		for _, r := range tce.Reasons {
			switch {
			case r == nil:
				e.u8(codeOK)
				e.str("")
			case errors.Is(r, dynamo.ErrConditionFailed):
				e.u8(codeCondFailed)
				e.str(r.Error())
			default:
				e.u8(codeInternal)
				e.str(r.Error())
			}
		}
	case errors.Is(err, dynamo.ErrConditionFailed):
		e.u8(codeCondFailed)
		e.str(err.Error())
	case errors.Is(err, dynamo.ErrItemTooLarge):
		e.u8(codeItemTooLarge)
		e.str(err.Error())
	case errors.Is(err, dynamo.ErrNoSuchTable):
		e.u8(codeNoSuchTable)
		e.str(err.Error())
	case errors.Is(err, dynamo.ErrTableExists):
		e.u8(codeTableExists)
		e.str(err.Error())
	case errors.Is(err, dynamo.ErrNoSuchIndex):
		e.u8(codeNoSuchIndex)
		e.str(err.Error())
	default:
		e.u8(codeInternal)
		e.str(err.Error())
	}
}

// wireErr carries a server-side message while unwrapping to the shared
// sentinel, so errors.Is works across the network exactly as in-process.
type wireErr struct {
	msg      string
	sentinel error
}

func (e *wireErr) Error() string { return e.msg }
func (e *wireErr) Unwrap() error { return e.sentinel }

// decodeError rebuilds the error a non-zero response code describes.
func decodeError(code byte, d *decoder) error {
	msg, err := d.str()
	if err != nil {
		return err
	}
	switch code {
	case codeCondFailed:
		return &wireErr{msg, storage.ErrConditionFailed}
	case codeItemTooLarge:
		return &wireErr{msg, storage.ErrItemTooLarge}
	case codeNoSuchTable:
		return &wireErr{msg, storage.ErrNoSuchTable}
	case codeTableExists:
		return &wireErr{msg, storage.ErrTableExists}
	case codeNoSuchIndex:
		return &wireErr{msg, storage.ErrNoSuchIndex}
	case codeTxCanceled:
		n, cerr := d.count()
		if cerr != nil {
			return cerr
		}
		tce := &dynamo.TxCanceledError{Reasons: make([]error, n)}
		for i := 0; i < n; i++ {
			rc, rerr := d.u8()
			if rerr != nil {
				return rerr
			}
			rmsg, rerr := d.str()
			if rerr != nil {
				return rerr
			}
			switch rc {
			case codeOK:
				tce.Reasons[i] = nil
			case codeCondFailed:
				tce.Reasons[i] = &wireErr{rmsg, storage.ErrConditionFailed}
			default:
				tce.Reasons[i] = errors.New(rmsg)
			}
		}
		return tce
	case codeBadRequest:
		return &wireErr{msg, ErrProtocol}
	default:
		return errors.New(msg)
	}
}

// encodeMetrics flattens a metrics snapshot for the Metrics RPC.
func encodeMetrics(e *encoder, s dynamo.Snapshot) {
	names := make([]string, 0, len(s.Ops))
	for k := range s.Ops {
		names = append(names, k)
	}
	sort.Strings(names)
	e.uvarint(uint64(len(names)))
	for _, k := range names {
		e.str(k)
		e.u64(uint64(s.Ops[k]))
	}
	e.u64(uint64(s.CondFailures))
	e.u64(uint64(s.ItemsScanned))
	e.u64(uint64(s.BytesRead))
	e.u64(uint64(s.BytesWritten))
	e.u64(uint64(s.GroupCommits))
	e.u64(uint64(s.GroupCommitOps))
}

// decodeMetrics parses a Metrics RPC response.
func decodeMetrics(d *decoder) (dynamo.Snapshot, error) {
	var s dynamo.Snapshot
	n, err := d.count()
	if err != nil {
		return s, err
	}
	s.Ops = make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k, err := d.str()
		if err != nil {
			return s, err
		}
		v, err := d.u64()
		if err != nil {
			return s, err
		}
		s.Ops[k] = int64(v)
	}
	read := func(dst *int64) {
		if err != nil {
			return
		}
		var v uint64
		if v, err = d.u64(); err == nil {
			*dst = int64(v)
		}
	}
	read(&s.CondFailures)
	read(&s.ItemsScanned)
	read(&s.BytesRead)
	read(&s.BytesWritten)
	read(&s.GroupCommits)
	read(&s.GroupCommitOps)
	return s, err
}
