// Package pipeline is the speculation and commit-pipelining layer above the
// storage seam: the Netherite-style optimization that lets a worker's
// workflows execute ahead of durability while a background committer folds
// their log mutations into large group-committed batches.
//
// Store wraps any storage.Backend. Every write lands immediately in an
// in-memory shadow (a zero-latency dynamo store holding base ∪ speculative
// state), so reads are read-your-own-writes and cost no round trip; the
// mutation only marks its row dirty and advances the append watermark. A
// committer — background goroutine by default, explicit FlushStep calls
// under ManualFlush (the simulator's mode) — captures the dirty rows'
// post-images and installs them on the base backend with ONE TransactWrite
// per batch: one commit-latch charge on the in-memory store, one journaled
// record and fsync on the walstore, one RPC on the remote plane. That single
// atomic batch is what turns N per-step round trips into one, and it is
// also the crash-safety argument: the durable state only ever moves from
// one consistent speculation-log prefix to a later one, so a crash loses a
// suffix of whole steps, never a torn interleaving of them.
//
// Durability is a watermark pair: appendLSN counts speculated write
// operations, durableLSN the flushed prefix. Fence blocks until everything
// appended so far is durable — the runtime calls it before any externally
// visible effect (a workflow's reply to its client; see core's entry-reply
// fence via storage.Fence). Effects that are themselves store writes
// (mailbox posts, queue acks, transaction commit records, cross-SSF async
// intents) need no fence at all: they ride the same ordered speculation log
// and flush atomically with the steps they depend on, so recovery replays
// only the durable prefix and no effect can outrun its cause.
//
// The overlay assumes a single writing process: the shadow is warmed from
// the base once and thereafter trusts that nobody else mutates the flushed
// rows underneath it. That is the deployment-per-worker model —
// beldi.DeploymentOptions.Speculation enables it for exactly that case and
// multi-writer clusters leave it off.
package pipeline

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/dynamo"
	"repro/internal/hist"
	"repro/internal/storage"
)

// Defaults for Options fields left zero.
const (
	// DefaultDepth is the default bound on speculated-but-unflushed write
	// operations.
	DefaultDepth = 4096
	// DefaultBatch is the default dirty-row count that triggers a flush
	// without waiting for Linger (also a soft cap keeping one batch inside
	// sane TransactWrite/wire-frame sizes).
	DefaultBatch = 128
	// DefaultLinger is the default time the committer waits for a batch to
	// fill when nobody is fencing.
	DefaultLinger = 200 * time.Microsecond
)

// Options tune a Store. The zero value gives the defaults above with a
// background committer.
type Options struct {
	// Depth bounds how many write operations may sit above the durability
	// watermark before writers block on the committer. Depth 1 is the
	// synchronous regime: every write waits for its own flush. 0 means
	// DefaultDepth.
	Depth int
	// Batch is the dirty-row count that triggers an immediate flush; the
	// committer also flushes whatever accumulated when Linger expires or a
	// Fence is waiting. 0 means DefaultBatch.
	Batch int
	// Linger is how long the committer lets a batch fill when no fence is
	// waiting and Batch has not been reached. 0 means DefaultLinger.
	Linger time.Duration
	// ManualFlush disables the background committer: flushes happen only
	// inside Fence, FlushStep, and depth-bound writes. The deterministic
	// simulator schedules FlushStep as a first-class task; wall-clock
	// deployments leave this false.
	ManualFlush bool
}

// Stats counts the overlay's traffic; snapshot with Snapshot.
type Stats struct {
	// Appended counts speculated write operations.
	Appended int64
	// Flushes counts committed batches; FlushedRows the post-image rows they
	// carried (MeanBatch = FlushedRows/Flushes is the amortization factor).
	Flushes     int64
	FlushedRows int64
	// MaxBatch is the largest single batch.
	MaxBatch int64
	// Fences counts Fence calls; FenceWaits those that actually had to wait
	// for a flush.
	Fences     int64
	FenceWaits int64
	// ModeledFlushTime accumulates the base store's modeled per-batch commit
	// latency (dynamo.Store.ModelCommitLatency) across flushes — what the
	// simulated substrate says the durability rounds cost, for comparing
	// batch-size amortization between simulated and wall-clock sweeps.
	ModeledFlushTime time.Duration
}

// dirtyKey addresses one speculated row awaiting flush.
type dirtyKey struct {
	table string
	hash  string // encoded scalar
	sort  string
}

// keySpec caches a table's primary-key attribute names.
type keySpec struct {
	hash, sort string
}

// Store is the speculation overlay; it implements storage.Backend. See the
// package comment for the model. Create with New, enable per deployment with
// beldi.DeploymentOptions.Speculation.
type Store struct {
	base   storage.Backend
	shadow *dynamo.Store
	opts   Options

	mu          sync.Mutex
	condWork    *sync.Cond // committer waits for dirty rows / close
	condDurable *sync.Cond // writers and fences wait for the watermark
	appendLSN   uint64
	durableLSN  uint64
	flushedLSN  uint64 // highest LSN handed to an in-flight or completed flush
	dirty       map[dirtyKey]dynamo.Key
	keys        map[string]keySpec
	fenceWaits  int   // fences currently waiting (skips linger)
	flushErr    error // sticky: a failed flush poisons the overlay
	closed      bool
	flushing    bool
	stats       Stats

	histDepth *hist.Histogram // unflushed ops observed at each append
	histBatch *hist.Histogram // rows per flushed batch (as a duration in ns units)
	histLag   *hist.Histogram // append→durable latency of the oldest row per batch
	oldestAt  time.Time       // when the oldest currently-dirty row was appended

	done chan struct{} // background committer exit
}

// New builds an overlay over base and warms the shadow with every existing
// base table (schemas and rows), so a reopened deployment's adoption checks
// and DAAL scans see the durable state. The caller must be the only writer
// of base for the overlay's lifetime.
func New(base storage.Backend, opts Options) (*Store, error) {
	if opts.Depth <= 0 {
		opts.Depth = DefaultDepth
	}
	if opts.Batch <= 0 {
		opts.Batch = DefaultBatch
	}
	if opts.Linger <= 0 {
		opts.Linger = DefaultLinger
	}
	p := &Store{
		base:   base,
		shadow: dynamo.NewStore(),
		opts:   opts,
		dirty:  make(map[dirtyKey]dynamo.Key),
		keys:   make(map[string]keySpec),
		done:   make(chan struct{}),
	}
	p.condWork = sync.NewCond(&p.mu)
	p.condDurable = sync.NewCond(&p.mu)
	for _, name := range base.TableNames() {
		if err := p.warm(name); err != nil {
			return nil, fmt.Errorf("pipeline: warming %s: %w", name, err)
		}
	}
	if !opts.ManualFlush {
		go p.committer()
	} else {
		close(p.done)
	}
	return p, nil
}

// MustNew is New, panicking on error — for setup code.
func MustNew(base storage.Backend, opts Options) *Store {
	p, err := New(base, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// warm mirrors one base table (schema + rows) into the shadow. Idempotent.
func (p *Store) warm(name string) error {
	if _, err := p.shadow.TableSchema(name); err == nil {
		return nil
	}
	schema, err := p.base.TableSchema(name)
	if err != nil {
		return err
	}
	if err := p.shadow.CreateTable(schema); err != nil {
		return err
	}
	p.keys[name] = keySpec{hash: schema.HashKey, sort: schema.SortKey}
	items, err := p.base.Scan(name, storage.QueryOpts{})
	if err != nil {
		return err
	}
	for _, it := range items {
		if err := p.shadow.Put(name, it, nil); err != nil {
			return err
		}
	}
	return nil
}

// SetHistograms installs telemetry histograms: depth is the unflushed-op
// count observed at each append (recorded as nanoseconds-shaped integers),
// batch the rows per flushed batch, lag the append→durable latency of each
// batch's oldest row. Any may be nil.
func (p *Store) SetHistograms(depth, batch, lag *hist.Histogram) {
	p.mu.Lock()
	p.histDepth, p.histBatch, p.histLag = depth, batch, lag
	p.mu.Unlock()
}

// Snapshot returns the current counters.
func (p *Store) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Lag reports the current watermark lag: speculated write operations not yet
// durable.
func (p *Store) Lag() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.appendLSN - p.durableLSN)
}

// Base returns the wrapped backend (tests audit durable state through it).
func (p *Store) Base() storage.Backend { return p.base }

// DynamoStore unwraps to the base's in-memory store when it is one, so
// storage.AsDynamo keeps working through the overlay (benches reach shard
// and batching knobs this way).
func (p *Store) DynamoStore() *dynamo.Store {
	if s, ok := storage.AsDynamo(p.base); ok {
		return s
	}
	return nil
}

// encodeScalar renders a key attribute for the dirty map (kind-prefixed so
// distinct values cannot collide).
func encodeScalar(v dynamo.Value) string {
	switch v.Kind() {
	case dynamo.KindString:
		return "s:" + v.Str()
	case dynamo.KindNumber:
		return "n:" + strconv.FormatFloat(v.Num(), 'g', -1, 64)
	case dynamo.KindBytes:
		return "b:" + string(v.BytesVal())
	case dynamo.KindBool:
		return "t:" + strconv.FormatBool(v.BoolVal())
	default:
		return ""
	}
}

// spec returns table's key attribute names, resolving through the shadow on
// first use. Callers hold mu.
func (p *Store) spec(table string) (keySpec, error) {
	if ks, ok := p.keys[table]; ok {
		return ks, nil
	}
	schema, err := p.shadow.TableSchema(table)
	if err != nil {
		return keySpec{}, err
	}
	ks := keySpec{hash: schema.HashKey, sort: schema.SortKey}
	p.keys[table] = ks
	return ks, nil
}

// keyOf derives an item's primary key. Callers hold mu.
func (p *Store) keyOf(table string, it dynamo.Item) (dynamo.Key, error) {
	ks, err := p.spec(table)
	if err != nil {
		return dynamo.Key{}, err
	}
	k := dynamo.Key{Hash: it[ks.hash]}
	if ks.sort != "" {
		k.Sort = it[ks.sort]
	}
	return k, nil
}

// markDirty records a speculated row. Callers hold mu.
func (p *Store) markDirty(table string, key dynamo.Key) {
	if len(p.dirty) == 0 {
		p.oldestAt = time.Now()
	}
	p.dirty[dirtyKey{table: table, hash: encodeScalar(key.Hash), sort: encodeScalar(key.Sort)}] = key
}

// append runs one speculated write: apply against the shadow (which
// evaluates conditions with exact store semantics), mark the touched rows
// dirty, advance the append watermark, and hold the writer to the Depth
// bound. The condition-failure path charges nothing and dirties nothing —
// a failed conditional write has no durable effect to pipeline.
func (p *Store) append(apply func() error, touched func() ([]dirtyRow, error)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.stuck(); err != nil {
		return err
	}
	if err := apply(); err != nil {
		return err
	}
	rows, err := touched()
	if err != nil {
		// The shadow applied the write but the rows cannot be addressed —
		// unreachable for well-formed schemas; poison rather than silently
		// lose a mutation.
		p.flushErr = fmt.Errorf("pipeline: untrackable write: %w", err)
		p.condDurable.Broadcast()
		return p.flushErr
	}
	for _, r := range rows {
		p.markDirty(r.table, r.key)
	}
	p.appendLSN++
	p.stats.Appended++
	if h := p.histDepth; h != nil {
		h.Record(time.Duration(p.appendLSN - p.durableLSN))
	}
	if len(p.dirty) >= p.opts.Batch {
		p.condWork.Signal()
	}
	for p.appendLSN-p.durableLSN >= uint64(p.opts.Depth) && p.flushErr == nil && !p.closed {
		if p.opts.ManualFlush {
			if err := p.flushLocked(); err != nil {
				return err
			}
			continue
		}
		p.condWork.Signal()
		p.condDurable.Wait()
	}
	return p.stuck()
}

// dirtyRow pairs a table with one touched key.
type dirtyRow struct {
	table string
	key   dynamo.Key
}

// stuck reports the sticky failure state. Callers hold mu.
func (p *Store) stuck() error {
	if p.flushErr != nil {
		return p.flushErr
	}
	if p.closed {
		return fmt.Errorf("pipeline: store is closed")
	}
	return nil
}

// captureLocked drains the dirty set into a deterministic batch of
// unconditional post-image installs. Callers hold mu.
func (p *Store) captureLocked() ([]dynamo.TxOp, uint64, time.Time, error) {
	target := p.appendLSN
	if len(p.dirty) == 0 {
		return nil, target, time.Time{}, nil
	}
	type entry struct {
		dk  dirtyKey
		key dynamo.Key
	}
	entries := make([]entry, 0, len(p.dirty))
	for dk, key := range p.dirty {
		entries = append(entries, entry{dk, key})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].dk, entries[j].dk
		if a.table != b.table {
			return a.table < b.table
		}
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.sort < b.sort
	})
	ops := make([]dynamo.TxOp, 0, len(entries))
	for _, e := range entries {
		it, ok, err := p.shadow.Get(e.dk.table, e.key)
		if err != nil {
			return nil, 0, time.Time{}, err
		}
		if ok {
			ops = append(ops, dynamo.TxOp{Table: e.dk.table, Put: it})
		} else {
			ops = append(ops, dynamo.TxOp{Table: e.dk.table, Key: e.key, Delete: true})
		}
	}
	oldest := p.oldestAt
	p.dirty = make(map[dirtyKey]dynamo.Key)
	return ops, target, oldest, nil
}

// flushLocked performs one capture+install round while holding mu (the
// ManualFlush path: deterministic, no goroutine handoff). The base write
// happens under the overlay mutex, which is acceptable for the simulator's
// one-task-at-a-time world and for fenced single-writer tests.
func (p *Store) flushLocked() error {
	// Never overlap the background committer's in-flight install: a batch
	// captured here would carry newer post-images of rows the in-flight
	// batch also holds, and whichever base write lands last would win —
	// letting a stale image overwrite a newer one.
	for p.flushing && p.flushErr == nil {
		p.condDurable.Wait()
	}
	ops, target, oldest, err := p.captureLocked()
	if err == nil && len(ops) > 0 {
		err = p.base.TransactWrite(ops)
	}
	p.finishFlush(ops, target, oldest, err)
	return p.flushErr
}

// finishFlush records one flush round's outcome. Callers hold mu.
func (p *Store) finishFlush(ops []dynamo.TxOp, target uint64, oldest time.Time, err error) {
	if err != nil {
		if p.flushErr == nil {
			p.flushErr = fmt.Errorf("pipeline: flush failed, overlay poisoned: %w", err)
		}
	} else {
		if target > p.durableLSN {
			p.durableLSN = target
		}
		if len(ops) > 0 {
			p.stats.Flushes++
			p.stats.FlushedRows += int64(len(ops))
			if int64(len(ops)) > p.stats.MaxBatch {
				p.stats.MaxBatch = int64(len(ops))
			}
			if ds, ok := storage.AsDynamo(p.base); ok {
				p.stats.ModeledFlushTime += ds.ModelCommitLatency(len(ops))
			}
			if h := p.histBatch; h != nil {
				h.Record(time.Duration(len(ops)))
			}
			if h := p.histLag; h != nil && !oldest.IsZero() {
				h.Record(time.Since(oldest))
			}
		}
	}
	p.condDurable.Broadcast()
}

// committer is the background flush loop: wait for dirty rows, linger to
// let a batch fill (skipped when a fence is waiting or Batch is reached),
// capture under the mutex, install on the base outside it.
func (p *Store) committer() {
	defer close(p.done)
	for {
		p.mu.Lock()
		for len(p.dirty) == 0 && !p.closed && p.flushErr == nil {
			p.condWork.Wait()
		}
		if p.flushErr != nil || (p.closed && len(p.dirty) == 0) {
			p.mu.Unlock()
			return
		}
		linger := p.opts.Linger
		if p.fenceWaits > 0 || len(p.dirty) >= p.opts.Batch ||
			p.appendLSN-p.durableLSN >= uint64(p.opts.Depth) || p.closed {
			linger = 0
		}
		p.mu.Unlock()
		if linger > 0 {
			time.Sleep(linger)
		}
		p.mu.Lock()
		ops, target, oldest, err := p.captureLocked()
		p.flushing = true
		p.mu.Unlock()
		if err == nil && len(ops) > 0 {
			err = p.base.TransactWrite(ops)
		}
		p.mu.Lock()
		p.flushing = false
		p.finishFlush(ops, target, oldest, err)
		p.mu.Unlock()
	}
}

// Fence blocks until every write appended before the call is durable on the
// base backend — the externally-visible-effect barrier. It implements the
// optional storage.Fencer seam the runtime probes before replying to a
// client.
func (p *Store) Fence() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Fences++
	target := p.appendLSN
	waited := false
	for p.durableLSN < target && p.flushErr == nil {
		if !waited {
			waited = true
			p.stats.FenceWaits++
		}
		if p.opts.ManualFlush {
			if err := p.flushLocked(); err != nil {
				return err
			}
			continue
		}
		p.fenceWaits++
		p.condWork.Signal()
		p.condDurable.Wait()
		p.fenceWaits--
	}
	return p.flushErr
}

// FlushStep performs one synchronous flush round if anything is dirty and
// reports whether a batch was written. Under ManualFlush this is the
// committer: the simulator schedules it as a first-class task, making the
// speculation layer's reorderings part of the explored schedule.
func (p *Store) FlushStep() (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.stuck(); err != nil {
		return false, err
	}
	if len(p.dirty) == 0 {
		return false, nil
	}
	before := p.stats.Flushes
	if err := p.flushLocked(); err != nil {
		return false, err
	}
	return p.stats.Flushes > before, nil
}

// Close fences the remaining speculation and stops the committer. The
// overlay is unusable afterwards.
func (p *Store) Close() error {
	err := p.Fence()
	p.mu.Lock()
	p.closed = true
	p.condWork.Broadcast()
	p.condDurable.Broadcast()
	p.mu.Unlock()
	<-p.done
	return err
}

// DropAndClose discards every unflushed write and stops the committer
// without touching the base — the crash model: a worker dying loses exactly
// the speculation above the durability watermark, never a torn interleaving
// of it. Tests reopen the base afterwards and must observe a consistent
// log prefix.
func (p *Store) DropAndClose() {
	p.mu.Lock()
	p.dirty = make(map[dirtyKey]dynamo.Key)
	p.durableLSN = p.appendLSN // nothing left to flush
	p.closed = true
	p.condWork.Broadcast()
	p.condDurable.Broadcast()
	p.mu.Unlock()
	<-p.done
}

// --- storage.Backend: table management ---

// CreateTable registers the table on the base synchronously (table creation
// is setup-path, not hot-path) and mirrors it into the shadow. On
// ErrTableExists the shadow is warmed from the durable rows and the error
// is returned unchanged, so the runtime's adoption logic proceeds exactly
// as it would against the base.
func (p *Store) CreateTable(schema storage.Schema) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.stuck(); err != nil {
		return err
	}
	err := p.base.CreateTable(schema)
	switch {
	case err == nil:
		if serr := p.shadow.CreateTable(schema); serr != nil {
			p.flushErr = fmt.Errorf("pipeline: shadow diverged on CreateTable(%s): %w", schema.Name, serr)
			return p.flushErr
		}
		p.keys[schema.Name] = keySpec{hash: schema.HashKey, sort: schema.SortKey}
		return nil
	case errors.Is(err, storage.ErrTableExists):
		if werr := p.warm(schema.Name); werr != nil {
			return fmt.Errorf("pipeline: warming existing table %s: %w", schema.Name, werr)
		}
		return err
	default:
		return err
	}
}

// DeleteTable fences the overlay (dirty rows of other tables flush), then
// drops the table from both stores.
func (p *Store) DeleteTable(name string) error {
	if err := p.Fence(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.base.DeleteTable(name); err != nil {
		return err
	}
	delete(p.keys, name)
	return p.shadow.DeleteTable(name)
}

// TableNames lists tables (shadow view; identical to the base by
// construction).
func (p *Store) TableNames() []string { return p.shadow.TableNames() }

// TableShards reports the shard count of an existing table.
func (p *Store) TableShards(name string) (int, error) { return p.shadow.TableShards(name) }

// TableSchema returns an existing table's schema.
func (p *Store) TableSchema(name string) (storage.Schema, error) { return p.shadow.TableSchema(name) }

// TableBytes reports the table's speculative (read-your-own-writes)
// footprint.
func (p *Store) TableBytes(name string) (int, error) { return p.shadow.TableBytes(name) }

// TableItemCount reports the number of live rows in the speculative view.
func (p *Store) TableItemCount(name string) (int, error) { return p.shadow.TableItemCount(name) }

// --- storage.Backend: reads (all from the shadow: read-your-own-writes,
// no round trip) ---

// Get returns the speculative row at key.
func (p *Store) Get(table string, key storage.Key) (storage.Item, bool, error) {
	return p.shadow.Get(table, key)
}

// GetProj is Get with a projection.
func (p *Store) GetProj(table string, key storage.Key, proj []storage.Path) (storage.Item, bool, error) {
	return p.shadow.GetProj(table, key, proj)
}

// Query returns one partition's speculative rows in sort order.
func (p *Store) Query(table string, hash storage.Value, opts storage.QueryOpts) ([]storage.Item, error) {
	return p.shadow.Query(table, hash, opts)
}

// QueryIndex queries a secondary index of the speculative view.
func (p *Store) QueryIndex(table, index string, hash storage.Value, opts storage.QueryOpts) ([]storage.Item, error) {
	return p.shadow.QueryIndex(table, index, hash, opts)
}

// Scan walks the whole speculative table.
func (p *Store) Scan(table string, opts storage.QueryOpts) ([]storage.Item, error) {
	return p.shadow.Scan(table, opts)
}

// --- storage.Backend: writes (speculated) ---

// Put speculates a conditional put.
func (p *Store) Put(table string, item storage.Item, cond storage.Cond) error {
	return p.append(
		func() error { return p.shadow.Put(table, item, cond) },
		func() ([]dirtyRow, error) {
			k, err := p.keyOf(table, item)
			if err != nil {
				return nil, err
			}
			return []dirtyRow{{table, k}}, nil
		},
	)
}

// Update speculates a conditional update.
func (p *Store) Update(table string, key storage.Key, cond storage.Cond, updates ...storage.Update) error {
	return p.append(
		func() error { return p.shadow.Update(table, key, cond, updates...) },
		func() ([]dirtyRow, error) { return []dirtyRow{{table, key}}, nil },
	)
}

// Delete speculates a conditional delete.
func (p *Store) Delete(table string, key storage.Key, cond storage.Cond) error {
	return p.append(
		func() error { return p.shadow.Delete(table, key, cond) },
		func() ([]dirtyRow, error) { return []dirtyRow{{table, key}}, nil },
	)
}

// TransactWrite speculates a multi-row transaction: conditions evaluate
// against the speculative state with exact store semantics (per-op reasons
// included), and on success every mutated row joins the current batch — the
// transaction flushes atomically with everything before it.
func (p *Store) TransactWrite(ops []storage.TxOp) error {
	return p.append(
		func() error { return p.shadow.TransactWrite(ops) },
		func() ([]dirtyRow, error) {
			rows := make([]dirtyRow, 0, len(ops))
			for _, op := range ops {
				if op.Check {
					continue
				}
				key := op.Key
				if op.Put != nil {
					k, err := p.keyOf(op.Table, op.Put)
					if err != nil {
						return nil, err
					}
					key = k
				}
				rows = append(rows, dirtyRow{op.Table, key})
			}
			return rows, nil
		},
	)
}

// Metrics exposes the BASE backend's counters: the durable traffic is what
// benchmarks and operators account for (the shadow's zero-latency ops are
// free by design). The overlay's own accounting lives in Snapshot.
func (p *Store) Metrics() *storage.Metrics { return p.base.Metrics() }

// Watch subscribes to the BASE backend's commit stream — the durability
// watermark's event source. Speculative writes live only in the shadow and
// land on the base when their batch flushes, so subscribers wake exactly
// when a write becomes durable, never while it is still speculative: the
// overlay gets durable-only watch semantics by delegation. Returns an error
// when the base backend has no watch support (the capability probe in
// storage.Watch turns that into a poll fallback).
func (p *Store) Watch(table string, hash storage.Value) (storage.Subscription, error) {
	w, ok := p.base.(storage.Watcher)
	if !ok {
		return nil, fmt.Errorf("pipeline: base backend %T does not support Watch", p.base)
	}
	return w.Watch(table, hash)
}

// Compile-time seam checks.
var (
	_ storage.Backend = (*Store)(nil)
	_ storage.Watcher = (*Store)(nil)
)
