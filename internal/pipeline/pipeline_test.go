package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

func newBase(t *testing.T) *dynamo.Store {
	t.Helper()
	s := dynamo.NewStore()
	s.MustCreateTable(dynamo.Schema{Name: "kv", HashKey: "K"})
	s.MustCreateTable(dynamo.Schema{Name: "log", HashKey: "Key", SortKey: "RowId"})
	return s
}

func manual(t *testing.T, base storage.Backend) *Store {
	t.Helper()
	p, err := New(base, Options{ManualFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadYourOwnWritesAndWatermark(t *testing.T) {
	base := newBase(t)
	p := manual(t, base)

	for i := 0; i < 5; i++ {
		item := dynamo.Item{"K": dynamo.S(fmt.Sprintf("k%d", i)), "V": dynamo.NInt(int64(i))}
		if err := p.Put("kv", item, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Speculative view sees everything immediately.
	for i := 0; i < 5; i++ {
		it, ok, err := p.Get("kv", dynamo.HK(dynamo.S(fmt.Sprintf("k%d", i))))
		if err != nil || !ok {
			t.Fatalf("overlay Get k%d: ok=%v err=%v", i, ok, err)
		}
		if it["V"].Num() != float64(i) {
			t.Fatalf("overlay k%d = %v", i, it["V"])
		}
	}
	// The base has nothing yet: the writes sit above the watermark.
	if _, ok, _ := base.Get("kv", dynamo.HK(dynamo.S("k0"))); ok {
		t.Fatal("base saw a speculated write before flush")
	}
	if lag := p.Lag(); lag != 5 {
		t.Fatalf("Lag = %d, want 5", lag)
	}
	wrote, err := p.FlushStep()
	if err != nil || !wrote {
		t.Fatalf("FlushStep: wrote=%v err=%v", wrote, err)
	}
	for i := 0; i < 5; i++ {
		it, ok, _ := base.Get("kv", dynamo.HK(dynamo.S(fmt.Sprintf("k%d", i))))
		if !ok || it["V"].Num() != float64(i) {
			t.Fatalf("base k%d after flush: ok=%v item=%v", i, ok, it)
		}
	}
	if lag := p.Lag(); lag != 0 {
		t.Fatalf("Lag after flush = %d, want 0", lag)
	}
	st := p.Snapshot()
	if st.Appended != 5 || st.Flushes != 1 || st.FlushedRows != 5 || st.MaxBatch != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBatchCarriesPostImagesNotRedoRecords(t *testing.T) {
	base := newBase(t)
	p := manual(t, base)

	// Many writes to ONE row must flush as one post-image install, or
	// dynamo.TransactWrite would reject the duplicate row target.
	for i := 0; i < 50; i++ {
		if err := p.Put("kv", dynamo.Item{"K": dynamo.S("hot"), "V": dynamo.NInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.FlushStep(); err != nil {
		t.Fatal(err)
	}
	it, ok, _ := base.Get("kv", dynamo.HK(dynamo.S("hot")))
	if !ok || it["V"].Num() != 49 {
		t.Fatalf("base hot = %v (ok=%v), want 49", it, ok)
	}
	st := p.Snapshot()
	if st.Appended != 50 || st.FlushedRows != 1 {
		t.Fatalf("stats = %+v: want 50 appends collapsing to 1 flushed row", st)
	}
}

func TestConditionalSemanticsMatchBase(t *testing.T) {
	base := newBase(t)
	p := manual(t, base)

	if err := p.Put("kv", dynamo.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)}, nil); err != nil {
		t.Fatal(err)
	}
	// A failing conditional put must fail exactly as the base would, dirty
	// nothing, and advance no watermark.
	before := p.Lag()
	err := p.Put("kv", dynamo.Item{"K": dynamo.S("a"), "V": dynamo.NInt(9)},
		dynamo.Eq(dynamo.A("V"), dynamo.NInt(42)))
	if !errors.Is(err, dynamo.ErrConditionFailed) {
		t.Fatalf("conditional put: %v, want ErrConditionFailed", err)
	}
	if p.Lag() != before {
		t.Fatal("failed conditional advanced the append watermark")
	}
	// A succeeding conditional sees the speculative (not durable) state.
	err = p.Update("kv", dynamo.HK(dynamo.S("a")),
		dynamo.Eq(dynamo.A("V"), dynamo.NInt(1)),
		dynamo.Set(dynamo.A("V"), dynamo.NInt(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.FlushStep(); err != nil {
		t.Fatal(err)
	}
	it, _, _ := base.Get("kv", dynamo.HK(dynamo.S("a")))
	if it["V"].Num() != 2 {
		t.Fatalf("base a = %v, want 2", it["V"])
	}
}

func TestDeleteFlushesAsDelete(t *testing.T) {
	base := newBase(t)
	if err := base.Put("kv", dynamo.Item{"K": dynamo.S("gone"), "V": dynamo.NInt(7)}, nil); err != nil {
		t.Fatal(err)
	}
	p := manual(t, base)
	// Warm overlay sees the durable row.
	if _, ok, _ := p.Get("kv", dynamo.HK(dynamo.S("gone"))); !ok {
		t.Fatal("warmed overlay missing durable row")
	}
	if err := p.Delete("kv", dynamo.HK(dynamo.S("gone")), nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := p.Get("kv", dynamo.HK(dynamo.S("gone"))); ok {
		t.Fatal("overlay still sees deleted row")
	}
	if _, err := p.FlushStep(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := base.Get("kv", dynamo.HK(dynamo.S("gone"))); ok {
		t.Fatal("base still has the row after a flushed delete")
	}
}

func TestTransactWriteSpeculatesAtomically(t *testing.T) {
	base := newBase(t)
	p := manual(t, base)
	if err := p.Put("kv", dynamo.Item{"K": dynamo.S("x"), "V": dynamo.NInt(0)}, nil); err != nil {
		t.Fatal(err)
	}
	// Check op guards, Puts mutate; the Check row must not be dirtied.
	err := p.TransactWrite([]dynamo.TxOp{
		{Table: "kv", Key: dynamo.HK(dynamo.S("x")), Check: true, Cond: dynamo.Eq(dynamo.A("V"), dynamo.NInt(0))},
		{Table: "kv", Put: dynamo.Item{"K": dynamo.S("y"), "V": dynamo.NInt(1)}},
		{Table: "kv", Put: dynamo.Item{"K": dynamo.S("w"), "V": dynamo.NInt(5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A failing transaction leaves no speculative trace.
	err = p.TransactWrite([]dynamo.TxOp{
		{Table: "kv", Key: dynamo.HK(dynamo.S("x")), Check: true, Cond: dynamo.Eq(dynamo.A("V"), dynamo.NInt(99))},
		{Table: "kv", Put: dynamo.Item{"K": dynamo.S("z"), "V": dynamo.NInt(1)}},
	})
	var tc *dynamo.TxCanceledError
	if !errors.As(err, &tc) {
		t.Fatalf("failing txn: %v, want TxCanceledError", err)
	}
	if _, ok, _ := p.Get("kv", dynamo.HK(dynamo.S("z"))); ok {
		t.Fatal("aborted txn leaked a speculative write")
	}
	if _, err := p.FlushStep(); err != nil {
		t.Fatal(err)
	}
	// x flushes with its original Put image — the Check left it untouched.
	itX, okX, _ := base.Get("kv", dynamo.HK(dynamo.S("x")))
	if !okX || itX["V"].Num() != 0 {
		t.Fatalf("base x = %v (ok=%v), want the original 0", itX, okX)
	}
	itW, okW, _ := base.Get("kv", dynamo.HK(dynamo.S("w")))
	itY, okY, _ := base.Get("kv", dynamo.HK(dynamo.S("y")))
	if !okW || itW["V"].Num() != 5 || !okY || itY["V"].Num() != 1 {
		t.Fatalf("base after txn flush: w=%v(ok=%v) y=%v(ok=%v)", itW, okW, itY, okY)
	}
}

func TestDropAndCloseLosesOnlyTheTail(t *testing.T) {
	base := newBase(t)
	p := manual(t, base)
	if err := p.Put("kv", dynamo.Item{"K": dynamo.S("durable"), "V": dynamo.NInt(1)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FlushStep(); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("kv", dynamo.Item{"K": dynamo.S("speculated"), "V": dynamo.NInt(2)}, nil); err != nil {
		t.Fatal(err)
	}
	p.DropAndClose() // the crash

	if _, ok, _ := base.Get("kv", dynamo.HK(dynamo.S("durable"))); !ok {
		t.Fatal("durable prefix lost")
	}
	if _, ok, _ := base.Get("kv", dynamo.HK(dynamo.S("speculated"))); ok {
		t.Fatal("speculated tail escaped to the base")
	}
	if err := p.Put("kv", dynamo.Item{"K": dynamo.S("late"), "V": dynamo.NInt(3)}, nil); err == nil {
		t.Fatal("write accepted after close")
	}

	// Recovery: a fresh overlay warms from the durable prefix only.
	p2 := manual(t, base)
	if _, ok, _ := p2.Get("kv", dynamo.HK(dynamo.S("durable"))); !ok {
		t.Fatal("reopened overlay missing durable row")
	}
	if _, ok, _ := p2.Get("kv", dynamo.HK(dynamo.S("speculated"))); ok {
		t.Fatal("reopened overlay resurrected the dropped tail")
	}
}

func TestDepthOneIsSynchronous(t *testing.T) {
	base := newBase(t)
	p, err := New(base, Options{Depth: 1, ManualFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := p.Put("kv", dynamo.Item{"K": dynamo.S(k), "V": dynamo.NInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
		// Depth 1: the write is durable before Put returns.
		if _, ok, _ := base.Get("kv", dynamo.HK(dynamo.S(k))); !ok {
			t.Fatalf("depth-1 write %s not durable at return", k)
		}
	}
	if st := p.Snapshot(); st.Flushes != 3 {
		t.Fatalf("Flushes = %d, want 3 (one per write)", st.Flushes)
	}
}

func TestFenceWaitsForCommitter(t *testing.T) {
	base := newBase(t)
	p, err := New(base, Options{Linger: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 20; i++ {
		if err := p.Put("kv", dynamo.Item{"K": dynamo.S(fmt.Sprintf("k%d", i)), "V": dynamo.NInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Fence(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, ok, _ := base.Get("kv", dynamo.HK(dynamo.S(fmt.Sprintf("k%d", i)))); !ok {
			t.Fatalf("k%d not durable after Fence", i)
		}
	}
	if st := p.Snapshot(); st.Fences == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentWritersUnderRace(t *testing.T) {
	base := newBase(t)
	p, err := New(base, Options{Batch: 16, Linger: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				item := dynamo.Item{"K": dynamo.S(fmt.Sprintf("w%d-%d", w, i)), "V": dynamo.NInt(int64(i))}
				if err := p.Put("kv", item, nil); err != nil {
					t.Error(err)
					return
				}
			}
			if err := p.Fence(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	n, _ := base.TableItemCount("kv")
	if n != workers*per {
		t.Fatalf("base rows = %d, want %d", n, workers*per)
	}
}

// failingBase wraps a backend and fails TransactWrite on demand.
type failingBase struct {
	storage.Backend
	fail atomic.Bool
}

func (f *failingBase) TransactWrite(ops []storage.TxOp) error {
	if f.fail.Load() {
		return errors.New("injected flush failure")
	}
	return f.Backend.TransactWrite(ops)
}

func TestFlushFailurePoisonsOverlay(t *testing.T) {
	fb := &failingBase{Backend: newBase(t)}
	p := manual(t, fb)
	if err := p.Put("kv", dynamo.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)}, nil); err != nil {
		t.Fatal(err)
	}
	fb.fail.Store(true)
	if _, err := p.FlushStep(); err == nil {
		t.Fatal("flush against failing base succeeded")
	}
	// The overlay is now poisoned: every subsequent write and fence fails
	// rather than silently diverging from the base.
	if err := p.Put("kv", dynamo.Item{"K": dynamo.S("b"), "V": dynamo.NInt(2)}, nil); err == nil {
		t.Fatal("write accepted on a poisoned overlay")
	}
	if err := p.Fence(); err == nil {
		t.Fatal("fence succeeded on a poisoned overlay")
	}
}

func TestCreateTableFlowsAndWarmAdoption(t *testing.T) {
	base := newBase(t)
	p := manual(t, base)
	schema := storage.Schema{Name: "new", HashKey: "K"}
	if err := p.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("new", dynamo.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)}, nil); err != nil {
		t.Fatal(err)
	}
	// Re-creating reports ErrTableExists exactly like the base (runtime
	// adoption logic depends on the identity).
	if err := p.CreateTable(schema); !errors.Is(err, storage.ErrTableExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := p.FlushStep(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := base.Get("new", dynamo.HK(dynamo.S("a"))); !ok {
		t.Fatal("row missing from created table after flush")
	}
}

func TestModeledFlushTimeTracksBaseModel(t *testing.T) {
	base := dynamo.NewStore(dynamo.WithLatency(dynamo.CommitCost{
		Flush: 10 * time.Millisecond,
		PerOp: time.Millisecond,
	}))
	base.MustCreateTable(dynamo.Schema{Name: "kv", HashKey: "K"})
	p := manual(t, base)
	for i := 0; i < 4; i++ {
		if err := p.Put("kv", dynamo.Item{"K": dynamo.S(fmt.Sprintf("k%d", i)), "V": dynamo.NInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.FlushStep(); err != nil {
		t.Fatal(err)
	}
	// One 4-row batch: the overlay's modeled flush time must equal what the
	// base charged inside its latch — Flush + 4*PerOp.
	want := 14 * time.Millisecond
	if got := p.Snapshot().ModeledFlushTime; got != want {
		t.Fatalf("ModeledFlushTime = %v, want %v", got, want)
	}
}

// TestWatchDeliversOnlyDurableCommits pins the overlay's durable-only watch
// semantics: a subscription opened through the pipeline must stay silent
// while a write is merely speculative (visible in the shadow, above the
// durability watermark) and wake exactly when the flush lands the write on
// the base — so a consumer woken by the event can re-read durable state and
// find what woke it.
func TestWatchDeliversOnlyDurableCommits(t *testing.T) {
	base := newBase(t)
	p := manual(t, base)

	sub, ok := storage.Watch(p, "kv", dynamo.Null)
	if !ok {
		t.Fatal("pipeline over a watchable base reported no push support")
	}
	defer sub.Close()

	if err := p.Put("kv", dynamo.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)}, nil); err != nil {
		t.Fatal(err)
	}
	// Speculative: readable through the overlay, but no wakeup yet.
	if _, ok, _ := p.Get("kv", dynamo.HK(dynamo.S("a"))); !ok {
		t.Fatal("overlay lost its own write")
	}
	if sub.Wait(50*time.Millisecond, nil) {
		t.Fatal("watch woke for a speculative write before its flush")
	}

	if _, err := p.FlushStep(); err != nil {
		t.Fatal(err)
	}
	if !sub.Wait(5*time.Second, nil) {
		t.Fatal("flush landed the write on the base but produced no wakeup")
	}
	// The event's promise: the durable view now holds the write.
	if it, ok, _ := base.Get("kv", dynamo.HK(dynamo.S("a"))); !ok || it["V"].Int() != 1 {
		t.Fatalf("woken reader found base row %v (ok=%v)", it, ok)
	}
}

// TestWatchOverPushlessBaseDegradesToPolling: the overlay refuses Watch when
// its base cannot push, and the capability probe converts that refusal into
// the poll fallback.
func TestWatchOverPushlessBaseDegradesToPolling(t *testing.T) {
	p := manual(t, pushless{newBase(t)})
	if _, err := p.Watch("kv", dynamo.Null); err == nil {
		t.Error("Watch over a push-less base succeeded")
	}
	if _, ok := storage.Watch(p, "kv", dynamo.Null); ok {
		t.Error("capability probe reported push support over a push-less base")
	}
}

// pushless hides the dynamo store's Watcher so only the Backend surface
// remains.
type pushless struct{ *dynamo.Store }

func (pushless) Watch() {} // shadow the method with a different shape
