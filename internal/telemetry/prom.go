package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4). Counter names gain a "beldi_" prefix with dots
// and dashes mapped to underscores; histograms become summary families
// with quantile labels plus _count and _sum-free mean/max gauges:
//
//	beldi_core_front_replays 3
//	beldi_core_front_step_commit{quantile="0.99"} 0.004012
//	beldi_core_front_step_commit_count 128
//
// Quantile values are seconds, per Prometheus convention.
func (s RegistrySnapshot) WritePrometheus(w io.Writer) error {
	for _, name := range s.SortedCounterNames() {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			promName(name), promName(name), s.Counters[name]); err != nil {
			return err
		}
	}
	lats := make([]string, 0, len(s.Latencies))
	for n := range s.Latencies {
		lats = append(lats, n)
	}
	sort.Strings(lats)
	for _, name := range lats {
		h := s.Latencies[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n"+
				"%s{quantile=\"0.5\"} %g\n"+
				"%s{quantile=\"0.9\"} %g\n"+
				"%s{quantile=\"0.99\"} %g\n"+
				"%s_count %d\n",
			pn, pn, seconds(h.P50), pn, seconds(h.P90), pn, seconds(h.P99),
			pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func seconds(ns int64) float64 { return float64(ns) / 1e9 }

// promName sanitizes a hierarchical metric name into the Prometheus
// identifier alphabet under the beldi_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("beldi_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
