package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Reads":                "reads",
		"GCRuns":               "gc_runs",
		"BytesRead":            "bytes_read",
		"TxnID":                "txn_id",
		"ConcurrencyHighWater": "concurrency_high_water",
		"P99":                  "p99",
		"already_snake":        "already_snake",
		"StaleDeliveries":      "stale_deliveries",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryFlatten(t *testing.T) {
	type inner struct {
		GCRuns int64
		Hidden string // strings are skipped
	}
	type view struct {
		Reads      int64
		Cold       bool
		Ops        map[string]int64
		Sub        inner
		unexported int64
	}
	r := NewRegistry()
	r.Register("core.front", func() any {
		return view{Reads: 7, Cold: true, Ops: map[string]int64{"Get": 3}, Sub: inner{GCRuns: 2}, unexported: 9}
	})
	snap := r.Snapshot()
	want := map[string]int64{
		"core.front.reads":       7,
		"core.front.cold":        1,
		"core.front.ops.get":     3,
		"core.front.sub.gc_runs": 2,
	}
	for k, v := range want {
		if snap.Counters[k] != v {
			t.Errorf("counter %q = %d, want %d (have %v)", k, snap.Counters[k], v, snap.Counters)
		}
	}
	if len(snap.Counters) != len(want) {
		t.Errorf("flattened %d counters, want %d: %v", len(snap.Counters), len(want), snap.Counters)
	}
}

func TestRegistryRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	r.Register("x", func() any { return struct{ N int64 }{1} })
	r.Register("x", func() any { return struct{ N int64 }{2} })
	if got := r.Snapshot().Counters["x.n"]; got != 2 {
		t.Fatalf("x.n = %d after re-register, want 2", got)
	}
}

func TestRegistryHistogramSharedAndSnapshotted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("core.front.step_commit")
	if r.Histogram("core.front.step_commit") != h {
		t.Fatal("same name returned a different histogram")
	}
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	snap := r.Snapshot()
	st, ok := snap.Latencies["core.front.step_commit"]
	if !ok {
		t.Fatalf("histogram missing from snapshot: %v", snap.Latencies)
	}
	if st.Count != 100 {
		t.Errorf("count = %d, want 100", st.Count)
	}
	if st.P50 < int64(time.Millisecond) || st.P50 > int64(2*time.Millisecond) {
		t.Errorf("p50 = %s, want ~1ms", time.Duration(st.P50))
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(Span{Intent: "i", Start: int64(i)})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("len = %d, want 4", len(spans))
	}
	for i, s := range spans {
		if want := int64(i + 2); s.Start != want {
			t.Errorf("spans[%d].Start = %d, want %d (oldest-first)", i, s.Start, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Error("Reset left spans behind")
	}
}

// syntheticWorkflow is a two-intent trace: root "wf-1" crashed mid-attempt,
// was restarted by the collector, replayed its first write, and called
// "charge-1" which completed. One queue hop carried the async leg.
func syntheticWorkflow() []Span {
	return []Span{
		{Intent: "wf-1", Kind: KindExec, Fn: "front", Start: 100, End: 200, Err: "crashed"},
		{Intent: "wf-1", Kind: KindWrite, Step: "0.000001", Name: "state/k", Start: 110, End: 120},
		{Intent: "wf-1", Kind: KindExec, Fn: "front", Start: 300, End: 500, Replay: true},
		{Intent: "wf-1", Kind: KindWrite, Step: "0.000001", Name: "state/k", Start: 310, End: 311, Replay: true},
		{Intent: "wf-1", Kind: KindCall, Step: "0.000002", Name: "charge", Child: "charge-1", Start: 320, End: 450},
		{Intent: "charge-1", Kind: KindExec, Fn: "charge", ParentIntent: "wf-1", ParentStep: "0.000002", Start: 330, End: 440},
		{Intent: "charge-1", Kind: KindWrite, Step: "0.000001", Name: "ledger/total", Start: 340, End: 350},
		{Intent: "wf-1", Kind: KindQueueHop, Fn: "q-front", Name: "msg-1", Start: 90, End: 100},
	}
}

func TestRootsAndAssemble(t *testing.T) {
	spans := syntheticWorkflow()
	roots := Roots(spans)
	if len(roots) != 1 || roots[0] != "wf-1" {
		t.Fatalf("roots = %v, want [wf-1]", roots)
	}
	tr := Assemble(spans, "wf-1")
	if len(tr.Spans) != len(spans) {
		t.Fatalf("assembled %d of %d spans — child intent not reached", len(tr.Spans), len(spans))
	}

	// The child edge works from either side alone: drop the callee's exec
	// span (lost to a crash) and the call span still pulls the child in;
	// drop the call span instead and the callee's parent pointer still
	// links it.
	noExec := append([]Span(nil), spans[:5]...)
	noExec = append(noExec, spans[6], spans[7])
	if tr := Assemble(noExec, "wf-1"); len(tr.Spans) != len(noExec) {
		t.Errorf("call-edge only: assembled %d of %d", len(tr.Spans), len(noExec))
	}
	noCall := append([]Span(nil), spans[:4]...)
	noCall = append(noCall, spans[5], spans[6], spans[7])
	if tr := Assemble(noCall, "wf-1"); len(tr.Spans) != len(noCall) {
		t.Errorf("parent-edge only: assembled %d of %d", len(tr.Spans), len(noCall))
	}
}

func TestRenderMarksRestartsAndReplays(t *testing.T) {
	tr := Assemble(syntheticWorkflow(), "wf-1")
	var b strings.Builder
	tr.Render(&b)
	out := b.String()
	for _, want := range []string{
		"attempt 1", "CRASHED",
		"attempt 2 (restart)",
		"(replay)",
		"charge charge-1",
		"queue.hop q-front",
		"2 root attempts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "orphan intent") {
		t.Errorf("well-formed trace rendered orphans:\n%s", out)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+$`)

func newTestHub() *Hub {
	h := New()
	h.Registry.Register("core.front", func() any { return struct{ Reads, GCRuns int64 }{3, 1} })
	h.Registry.Histogram("core.front.step_commit").Record(2 * time.Millisecond)
	for _, s := range syntheticWorkflow() {
		h.Tracer.Record(s)
	}
	return h
}

func TestHandlerMetricsIsParseablePrometheus(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestHub()))
	defer srv.Close()
	body := get(t, srv.URL+"/metrics", http.StatusOK)
	samples := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatalf("no samples in exposition:\n%s", body)
	}
	for _, want := range []string{"beldi_core_front_reads 3", `quantile="0.99"`, "beldi_core_front_step_commit_count 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerSnapshotJSON(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestHub()))
	defer srv.Close()
	var snap RegistrySnapshot
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/snapshot", http.StatusOK)), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["core.front.reads"] != 3 {
		t.Errorf("core.front.reads = %d, want 3", snap.Counters["core.front.reads"])
	}
	if snap.Latencies["core.front.step_commit"].Count != 1 {
		t.Errorf("step_commit count = %d, want 1", snap.Latencies["core.front.step_commit"].Count)
	}
}

func TestHandlerTraces(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestHub()))
	defer srv.Close()
	var roots []string
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/traces", http.StatusOK)), &roots); err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0] != "wf-1" {
		t.Fatalf("roots = %v", roots)
	}
	var tr Trace
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/trace?root=wf-1", http.StatusOK)), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 8 {
		t.Errorf("trace has %d spans, want 8", len(tr.Spans))
	}
	if text := get(t, srv.URL+"/trace?root=wf-1&format=text", http.StatusOK); !strings.Contains(text, "attempt 2 (restart)") {
		t.Errorf("text render missing restart marker:\n%s", text)
	}
	get(t, srv.URL+"/trace?root=nope", http.StatusNotFound)
	get(t, srv.URL+"/trace", http.StatusBadRequest)
}

func get(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantStatus, b)
	}
	return string(b)
}
