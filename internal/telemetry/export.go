package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns the hub's HTTP surface:
//
//	GET /metrics            Prometheus text exposition
//	GET /snapshot           JSON RegistrySnapshot
//	GET /traces             JSON list of root intent ids
//	GET /trace?root=ID      JSON Trace assembled from the live tracer
//	GET /trace?root=ID&format=text   rendered tree instead of JSON
//	GET /debug/vars         expvar (stdlib metrics + published hubs)
//	GET /debug/pprof/...    stdlib profiling endpoints
//
// Mount it on a mux of your own or pass it to Serve.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.Registry.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h.Registry.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		roots := Roots(h.Tracer.Spans())
		if roots == nil {
			roots = []string{}
		}
		_ = json.NewEncoder(w).Encode(roots)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		root := r.URL.Query().Get("root")
		if root == "" {
			http.Error(w, "missing root parameter", http.StatusBadRequest)
			return
		}
		tr := Assemble(h.Tracer.Spans(), root)
		if len(tr.Spans) == 0 {
			http.Error(w, "no spans for root "+root, http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			tr.Render(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(tr)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// expvarPublished guards against double-publishing a name, which expvar
// treats as a panic.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the hub's registry snapshot as an expvar variable
// under the given name (shown by /debug/vars). Publishing a name twice
// returns an error instead of expvar's panic; republishing after a
// restart should reuse the same hub.
func PublishExpvar(name string, h *Hub) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return fmt.Errorf("telemetry: expvar name %q already published", name)
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return h.Registry.Snapshot() }))
	return nil
}

// Server is a started telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the hub's Handler on addr (e.g. "127.0.0.1:0") and returns
// the listening server. Close it to stop.
func Serve(addr string, h *Hub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(h)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the server's listen address ("127.0.0.1:43210").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
