// Package telemetry is the observability substrate for the Beldi
// reproduction: crash-surviving causal traces plus a metrics registry that
// unifies every subsystem's counters under stable hierarchical names.
//
// The trace model leans on an observation from the protocol itself: Beldi
// already persists every causal identifier a tracer needs. Intent ids name
// executions, invoke-log rows carry (caller instance, caller step, callee
// id) across SSF boundaries, and the collector re-invokes a crashed
// instance with its *original* envelope — so a span keyed by intent id and
// step number survives the death of the process that opened it. The
// Tracer records those spans in a ring buffer; Assemble stitches the
// pre-crash execution and its collector-restarted successor into one
// trace, with replayed steps tagged, because both executions share the
// intent id. DurableTrace goes one step further and reconstructs the call
// tree from the intent and invoke-log tables alone, with no tracer
// attached — that is what `beldi-trace -wal` renders from a WAL dir.
//
// The Registry side is deliberately mechanical: subsystems expose a
// Snapshot() view struct of plain int64 fields, Register flattens it by
// reflection into dot-separated snake_case names (core.front.replays,
// wal.fsyncs, queue.redelivered, …), and hot paths attach hist.Histogram
// latency distributions (step commit, lock acquire, enqueue→receive, txn
// commit, WAL fsync). Exporters in this package serve the result as a
// Prometheus text endpoint, a JSON snapshot, and expvar, with pprof wired
// onto the same mux; see Handler and Serve.
//
// A nil *Hub disables everything: every producer guards with a nil check,
// so a deployment without telemetry pays only an untaken branch.
package telemetry

// Hub bundles the two halves of the telemetry layer — one per deployment
// (or one shared across a cluster's workers, since every structure is
// concurrency-safe).
type Hub struct {
	// Registry holds the deployment's counters and latency histograms.
	Registry *Registry
	// Tracer records causal spans from every subsystem.
	Tracer *Tracer
}

// New returns a Hub with a default-capacity Tracer (65536 spans).
func New() *Hub {
	return &Hub{Registry: NewRegistry(), Tracer: NewTracer(0)}
}
