package telemetry_test

import (
	"strings"
	"testing"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/telemetry"
	"repro/internal/uuid"
)

// TestDurableSpansRoundTrip reconstructs a trace from nothing but the
// durable state a real workflow left behind — the beldi-trace -wal path: no
// hub attached, just the intent and invoke-log tables.
func TestDurableSpansRoundTrip(t *testing.T) {
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{ConcurrencyLimit: 64, IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{Store: store, Platform: plat})
	d.Function("charge", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		v, err := e.Read("ledger", "total")
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(v.Int() + in.Int())
		return next, e.Write("ledger", "total", next)
	}, "ledger")
	d.Function("front", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return e.SyncInvoke("charge", beldi.Int(42))
	}, "orders")
	if _, err := d.Invoke("front", beldi.Null); err != nil {
		t.Fatal(err)
	}
	d.Stop()

	spans, err := telemetry.DurableSpans(store)
	if err != nil {
		t.Fatal(err)
	}
	roots := telemetry.Roots(spans)
	if len(roots) != 1 {
		t.Fatalf("roots = %v, want exactly the front request", roots)
	}
	tr := telemetry.Assemble(spans, roots[0])
	intents := map[string]bool{}
	calls := 0
	for _, s := range tr.Spans {
		intents[s.Intent] = true
		if s.Err == "pending" {
			t.Errorf("completed workflow reconstructed as pending: %+v", s)
		}
		if s.Kind == telemetry.KindCall {
			calls++
			if s.Child == "" {
				t.Errorf("call span lost its callee edge: %+v", s)
			}
			if s.Name != "charge" {
				t.Errorf("call span callee = %q, want charge", s.Name)
			}
		}
	}
	if len(intents) != 2 {
		t.Errorf("trace covers %d intents, want 2 (front + charge): %v", len(intents), intents)
	}
	if calls != 1 {
		t.Errorf("reconstructed %d call spans, want 1", calls)
	}
	var b strings.Builder
	tr.Render(&b)
	if out := b.String(); strings.Contains(out, "orphan intent") {
		t.Errorf("durable trace rendered orphans:\n%s", out)
	}
}
