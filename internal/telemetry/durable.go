package telemetry

import (
	"sort"
	"strings"

	"repro/internal/storage"
)

// This file reconstructs traces from the durable tables alone — no live
// tracer required. Beldi's intent table keeps every instance's invocation
// envelope (with the caller's instance and step), and the invoke log keeps
// every (caller instance, step) → callee-id edge, so the causal structure
// of a workflow survives in the store and can be rendered after the fact,
// from a reopened WAL dir included. The attribute names below mirror
// core's table schema (see internal/core/runtime.go); the round-trip is
// pinned by a test that drives a real deployment and reconstructs it.

const (
	durIntentSuffix = ".intent"
	durInvokeSuffix = ".invokelog"

	durAttrInstanceID = "InstanceId"
	durAttrID         = "Id"
	durAttrDone       = "Done"
	durAttrArgs       = "Args"
	durAttrStartTime  = "StartTime"
	durAttrLastLaunch = "LastLaunch"
	durAttrStep       = "Step"
	durAttrCalleeID   = "CalleeId"
	durAttrResult     = "Result"
)

// DurableSpans synthesizes spans for every intent and invoke-log row in
// the backend: one exec span per intent (timestamps from StartTime and
// LastLaunch, microsecond precision; Replay marks an intent whose
// LastLaunch advanced past its StartTime, i.e. a collector restart) and
// one call span per invoke-log row. Feed the result to Roots/Assemble/
// Render — that is what `beldi-trace -wal` does.
func DurableSpans(b storage.Backend) ([]Span, error) {
	var spans []Span
	calleeFn := make(map[string]string) // callee intent id → function name
	type pendingCall struct {
		caller, step, callee string
		done                 bool
		fn                   string
	}
	var calls []pendingCall
	intentStart := make(map[string]int64)

	for _, table := range b.TableNames() {
		switch {
		case strings.HasSuffix(table, durIntentSuffix):
			fn := strings.TrimSuffix(table, durIntentSuffix)
			rows, err := b.Scan(table, storage.QueryOpts{})
			if err != nil {
				return nil, err
			}
			for _, it := range rows {
				id := it[durAttrInstanceID].Str()
				calleeFn[id] = fn
				start := it[durAttrStartTime].Int() * 1000 // µs → ns
				last := it[durAttrLastLaunch].Int() * 1000
				intentStart[id] = start
				sp := Span{
					Intent: id,
					Kind:   KindExec,
					Fn:     fn,
					Start:  start,
					End:    last,
					Replay: last > start,
				}
				if !it[durAttrDone].BoolVal() {
					sp.Err = "pending"
				}
				if args, ok := it[durAttrArgs]; ok {
					if m := args.Map(); m != nil {
						if v, ok := m["CallerInstance"]; ok {
							sp.ParentIntent = v.Str()
							sp.ParentStep = m["CallerStep"].Str()
						}
					}
				}
				spans = append(spans, sp)
			}
		case strings.HasSuffix(table, durInvokeSuffix):
			fn := strings.TrimSuffix(table, durInvokeSuffix)
			rows, err := b.Scan(table, storage.QueryOpts{})
			if err != nil {
				return nil, err
			}
			for _, it := range rows {
				callee, ok := it[durAttrCalleeID]
				if !ok {
					continue // a result-only callback row or read-log shape
				}
				_, done := it[durAttrResult]
				calls = append(calls, pendingCall{
					caller: it[durAttrID].Str(),
					step:   it[durAttrStep].Str(),
					callee: callee.Str(),
					done:   done,
					fn:     fn,
				})
			}
		}
	}

	for _, c := range calls {
		sp := Span{
			Intent: c.caller,
			Step:   c.step,
			Kind:   KindCall,
			Fn:     c.fn,
			Name:   calleeFn[c.callee],
			Child:  c.callee,
			Start:  intentStart[c.callee],
			End:    intentStart[c.callee],
		}
		if !c.done {
			sp.Err = "no result"
		}
		spans = append(spans, sp)
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Intent < spans[j].Intent
	})
	return spans, nil
}
