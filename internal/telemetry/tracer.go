package telemetry

import "sync"

// Kind classifies a span.
type Kind string

// Span kinds. Exec spans cover one execution attempt of one intent; step
// kinds cover one logged operation inside an attempt; call/async/await
// spans carry the causal edge to a child intent; txn and queue kinds cover
// the transaction phases and the enqueue→receive hop.
const (
	KindExec      Kind = "exec"
	KindRead      Kind = "read"
	KindWrite     Kind = "write"
	KindCondWrite Kind = "condwrite"
	KindLock      Kind = "lock"
	KindUnlock    Kind = "unlock"
	KindCall      Kind = "call"
	KindAsync     Kind = "async"
	KindAwait     Kind = "await"
	KindTxnCommit Kind = "txn.commit"
	KindTxnAbort  Kind = "txn.abort"
	KindQueueHop  Kind = "queue.hop"
)

// Span is one observed interval, keyed by the intent id (Beldi's durable
// instance id) plus the branch-qualified step key — exactly the
// identifiers the protocol already persists, which is what lets spans from
// a pre-crash execution and its collector-restarted successor land in the
// same trace.
type Span struct {
	// Intent is the instance id of the execution this span belongs to.
	Intent string `json:"intent"`
	// Step is the branch-qualified step key ("0.000002"), empty for exec
	// and queue-hop spans.
	Step string `json:"step,omitempty"`
	// Kind classifies the span.
	Kind Kind `json:"kind"`
	// Fn is the SSF name (queue name for hop spans).
	Fn string `json:"fn,omitempty"`
	// Name is the operand: "table/key" for state ops, the callee function
	// for calls, the transaction id for txn spans.
	Name string `json:"name,omitempty"`
	// Start and End are UnixNano timestamps from the runtime's clock.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Replay marks a step whose effect was found already logged (DAAL or
	// invoke/read-log hit), or an exec attempt of an already-created
	// intent — i.e. work the protocol deduplicated rather than redid.
	Replay bool `json:"replay,omitempty"`
	// Child is the callee intent id on call/async/await spans: the causal
	// edge the trace assembler follows across SSF boundaries.
	Child string `json:"child,omitempty"`
	// ParentIntent/ParentStep on exec spans name the caller coordinates
	// from the invocation envelope (empty for root invocations).
	ParentIntent string `json:"parent_intent,omitempty"`
	ParentStep   string `json:"parent_step,omitempty"`
	// Err carries the failure, "crashed" when the attempt died mid-flight.
	Err string `json:"err,omitempty"`
}

// Tracer collects spans into a fixed-capacity ring buffer; when full, the
// oldest spans are overwritten. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	cap     int
	next    int // write cursor once the ring has wrapped
	wrapped bool
	dropped int64
}

// DefaultTracerCap is the span capacity used when NewTracer gets n <= 0.
const DefaultTracerCap = 65536

// NewTracer returns a Tracer holding up to n spans (DefaultTracerCap when
// n <= 0).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTracerCap
	}
	return &Tracer{cap: n}
}

// Record appends one span.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, s)
		return
	}
	t.spans[t.next] = s
	t.next = (t.next + 1) % t.cap
	t.wrapped = true
	t.dropped++
}

// Spans returns the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Span(nil), t.spans...)
	}
	out := make([]Span, 0, len(t.spans))
	out = append(out, t.spans[t.next:]...)
	out = append(out, t.spans[:t.next]...)
	return out
}

// Dropped reports how many spans the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all buffered spans.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = t.spans[:0]
	t.next = 0
	t.wrapped = false
}
