package telemetry

import (
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/hist"
)

// Registry unifies the repo's per-subsystem counter structs (core.Stats,
// dynamo.Metrics, walstore.Stats, cluster.Stats, queue and platform
// counters) under stable hierarchical names, and hands out named latency
// histograms for hot paths. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	sources []source
	hists   map[string]*hist.Histogram
	order   []string // histogram names in registration order
}

type source struct {
	prefix   string
	snapshot func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*hist.Histogram)}
}

// Register attaches a counter source under a name prefix. The snapshot
// function is called at collection time and must return a plain view
// struct — exported int/int64 fields, map[string]int64 sub-groups, and
// nested structs, exactly the shape of the subsystems' Snapshot() views
// (atomic originals won't flatten; snapshot first). Field names become
// snake_case segments under the prefix: Register("core.front", ...) with a
// field GCRuns yields "core.front.gc_runs". Registering the same prefix
// again replaces the source, so re-wiring after a restart is idempotent.
func (r *Registry) Register(prefix string, snapshot func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.sources {
		if s.prefix == prefix {
			r.sources[i].snapshot = snapshot
			return
		}
	}
	r.sources = append(r.sources, source{prefix, snapshot})
}

// Histogram returns the named latency histogram, creating it on first use.
// Names share the counter namespace ("core.front.step_commit", …).
func (r *Registry) Histogram(name string) *hist.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &hist.Histogram{}
		r.hists[name] = h
		r.order = append(r.order, name)
	}
	return h
}

// Histograms returns the registered histograms keyed by name, in
// registration order alongside the name slice. Callers must treat the
// histograms as live (still being recorded into).
func (r *Registry) Histograms() (names []string, byName map[string]*hist.Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names = append([]string(nil), r.order...)
	byName = make(map[string]*hist.Histogram, len(r.hists))
	for k, v := range r.hists {
		byName[k] = v
	}
	return names, byName
}

// HistStat is the serialized summary of one latency histogram, durations
// in nanoseconds.
type HistStat struct {
	Count int64 `json:"count"`
	Mean  int64 `json:"mean_ns"`
	P50   int64 `json:"p50_ns"`
	P90   int64 `json:"p90_ns"`
	P99   int64 `json:"p99_ns"`
	Max   int64 `json:"max_ns"`
}

// RegistrySnapshot is a point-in-time view of every registered counter and
// histogram, ready for JSON.
type RegistrySnapshot struct {
	Counters  map[string]int64    `json:"counters"`
	Latencies map[string]HistStat `json:"latencies"`
}

// Snapshot collects all sources and histograms. Counter names are fully
// flattened ("prefix.field", "prefix.map_field.key"); histogram summaries
// keep their registered names.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	sources := append([]source(nil), r.sources...)
	type nh struct {
		name string
		h    *hist.Histogram
	}
	hs := make([]nh, 0, len(r.hists))
	for _, name := range r.order {
		hs = append(hs, nh{name, r.hists[name]})
	}
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Counters:  make(map[string]int64),
		Latencies: make(map[string]HistStat, len(hs)),
	}
	for _, s := range sources {
		flatten(s.prefix, reflect.ValueOf(s.snapshot()), snap.Counters)
	}
	for _, e := range hs {
		s := e.h.Snapshot()
		snap.Latencies[e.name] = HistStat{
			Count: s.Count(),
			Mean:  int64(s.Mean()),
			P50:   int64(s.Median()),
			P90:   int64(s.Quantile(0.9)),
			P99:   int64(s.P99()),
			Max:   int64(s.Max()),
		}
	}
	return snap
}

// SortedCounterNames returns the snapshot's counter names sorted, for
// stable rendering.
func (s RegistrySnapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// flatten walks a snapshot view and emits prefix.snake_case counter names.
// Supported shapes: integer kinds (time.Duration flattens as nanoseconds),
// bool (as 0/1), map[string]int64, structs (recursively), and pointers to
// any of those. Anything else — strings, floats, slices — is skipped:
// counter sources count, they don't label.
func flatten(prefix string, v reflect.Value, out map[string]int64) {
	for v.Kind() == reflect.Pointer || v.Kind() == reflect.Interface {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		out[prefix] = v.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		out[prefix] = int64(v.Uint())
	case reflect.Bool:
		if v.Bool() {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	case reflect.Map:
		if v.Type().Key().Kind() != reflect.String {
			return
		}
		for _, k := range v.MapKeys() {
			flatten(prefix+"."+snakeCase(k.String()), v.MapIndex(k), out)
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			flatten(prefix+"."+snakeCase(f.Name), v.Field(i), out)
		}
	}
}

// snakeCase converts CamelCase (with acronym runs: GCRuns, TxnID) to
// snake_case: "GCRuns" → "gc_runs", "BytesRead" → "bytes_read". Already-
// lowercase names pass through unchanged.
func snakeCase(name string) string {
	var b strings.Builder
	rs := []rune(name)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			// Break before an upper that follows a lower, or that starts a
			// new word after an acronym run (upper followed by lower).
			if i > 0 && (isLowerOrDigit(rs[i-1]) ||
				(i+1 < len(rs) && isLower(rs[i+1]))) {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func isLower(r rune) bool        { return r >= 'a' && r <= 'z' }
func isLowerOrDigit(r rune) bool { return isLower(r) || (r >= '0' && r <= '9') }

// fmtDur renders a duration for the text exporters.
func fmtDur(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }
