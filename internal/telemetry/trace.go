package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Trace is the set of spans causally reachable from one root intent — one
// workflow, across every SSF it invoked, every queue hop that carried it,
// and every execution attempt (pre-crash and collector-restarted alike).
type Trace struct {
	Root  string `json:"root"`
	Spans []Span `json:"spans"`
}

// Assemble extracts the trace rooted at the given intent from a span pool.
// Causal edges come from two places the protocol already records: exec
// spans carry their caller's coordinates (child→parent), and
// call/async/await spans carry the minted callee id (parent→child).
// Following both directions from the root closes over the workflow even
// when one side's span was lost to a crash.
func Assemble(spans []Span, root string) Trace {
	children := make(map[string][]string)
	link := func(parent, child string) {
		if parent == "" || child == "" || parent == child {
			return
		}
		children[parent] = append(children[parent], child)
	}
	for _, s := range spans {
		if s.Kind == KindExec {
			link(s.ParentIntent, s.Intent)
		}
		if s.Child != "" {
			link(s.Intent, s.Child)
		}
	}
	in := map[string]bool{root: true}
	queue := []string{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range children[cur] {
			if !in[c] {
				in[c] = true
				queue = append(queue, c)
			}
		}
	}
	tr := Trace{Root: root}
	for _, s := range spans {
		if in[s.Intent] {
			tr.Spans = append(tr.Spans, s)
		}
	}
	return tr
}

// Roots lists the root intents present in a span pool: intents that have
// an exec span and no caller (or whose caller's spans are not in the
// pool), oldest first.
func Roots(spans []Span) []string {
	intents := make(map[string]*info)
	for _, s := range spans {
		if s.Kind != KindExec {
			continue
		}
		cur, ok := intents[s.Intent]
		if !ok {
			cur = &info{parent: s.ParentIntent, start: s.Start, seen: true}
			intents[s.Intent] = cur
		}
		if s.Start < cur.start {
			cur.start = s.Start
		}
		if s.ParentIntent != "" {
			cur.parent = s.ParentIntent
		}
	}
	var roots []string
	for id, inf := range intents {
		if inf.parent == "" || !intents[inf.parent].isKnown() {
			roots = append(roots, id)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if intents[roots[i]].start != intents[roots[j]].start {
			return intents[roots[i]].start < intents[roots[j]].start
		}
		return roots[i] < roots[j]
	})
	return roots
}

func (i *info) isKnown() bool { return i != nil && i.seen }

type info struct {
	parent string
	start  int64
	seen   bool
}

// Summary describes the trace on one line: intent count, span count,
// attempts of the root, replayed spans.
func (tr Trace) Summary() string {
	intents := make(map[string]bool)
	rootAttempts, replays := 0, 0
	for _, s := range tr.Spans {
		intents[s.Intent] = true
		if s.Kind == KindExec && s.Intent == tr.Root {
			rootAttempts++
		}
		if s.Replay {
			replays++
		}
	}
	return fmt.Sprintf("trace %s — %d intents, %d spans, %d root attempts, %d replayed",
		tr.Root, len(intents), len(tr.Spans), rootAttempts, replays)
}

// Render writes the trace as an indented tree: one block per intent, one
// line per execution attempt with its duration and outcome, one line per
// step with duration and a (replay) marker, and child intents nested under
// the call span that minted them.
func (tr Trace) Render(w io.Writer) {
	byIntent := make(map[string][]Span)
	for _, s := range tr.Spans {
		byIntent[s.Intent] = append(byIntent[s.Intent], s)
	}
	fmt.Fprintln(w, tr.Summary())
	rendered := make(map[string]bool)
	renderIntent(w, byIntent, tr.Root, "", rendered)
	// Spans whose intent is unreachable from the rendered tree (should not
	// happen for a well-formed trace; surfaced rather than hidden).
	var orphans []string
	for id := range byIntent {
		if !rendered[id] {
			orphans = append(orphans, id)
		}
	}
	sort.Strings(orphans)
	for _, id := range orphans {
		fmt.Fprintf(w, "orphan intent %s (%d spans)\n", id, len(byIntent[id]))
	}
}

func renderIntent(w io.Writer, byIntent map[string][]Span, id, indent string, rendered map[string]bool) {
	if rendered[id] {
		fmt.Fprintf(w, "%s^ %s (already rendered)\n", indent, id)
		return
	}
	rendered[id] = true
	spans := byIntent[id]
	var execs, steps, hops []Span
	for _, s := range spans {
		switch s.Kind {
		case KindExec:
			execs = append(execs, s)
		case KindQueueHop:
			hops = append(hops, s)
		default:
			steps = append(steps, s)
		}
	}
	sortSpans(execs)
	sortSpans(steps)
	fn := id
	if len(execs) > 0 && execs[0].Fn != "" {
		fn = execs[0].Fn + " " + id
	}
	fmt.Fprintf(w, "%s%s\n", indent, fn)
	for _, h := range hops {
		fmt.Fprintf(w, "%s  queue.hop %s (%s)\n", indent, h.Fn, dur(h))
	}
	if len(execs) == 0 {
		// No execution observed (e.g. durable trace of a collected
		// intent); render the bare steps.
		for _, s := range steps {
			renderStep(w, byIntent, s, indent+"  ", rendered)
		}
		return
	}
	for i, ex := range execs {
		outcome := "ok"
		if ex.Err != "" {
			outcome = strings.ToUpper(ex.Err)
		}
		replayNote := ""
		if ex.Replay {
			replayNote = " (restart)"
		}
		fmt.Fprintf(w, "%s  attempt %d%s [%s] %s\n", indent, i+1, replayNote, dur(ex), outcome)
		for _, s := range steps {
			if !within(s, ex) {
				continue
			}
			renderStep(w, byIntent, s, indent+"    ", rendered)
		}
	}
	// Steps outside every attempt window (clock skew, lost exec span).
	for _, s := range steps {
		covered := false
		for _, ex := range execs {
			if within(s, ex) {
				covered = true
				break
			}
		}
		if !covered {
			renderStep(w, byIntent, s, indent+"  ", rendered)
		}
	}
}

func renderStep(w io.Writer, byIntent map[string][]Span, s Span, indent string, rendered map[string]bool) {
	mark := ""
	if s.Replay {
		mark = " (replay)"
	}
	errNote := ""
	if s.Err != "" {
		errNote = " err=" + s.Err
	}
	target := s.Name
	if s.Child != "" {
		target += " → " + s.Child
	}
	fmt.Fprintf(w, "%s%-9s %s (%s)%s%s\n", indent, s.Kind, target, dur(s), mark, errNote)
	if s.Child != "" && len(byIntent[s.Child]) > 0 && s.Kind != KindAwait {
		renderIntent(w, byIntent, s.Child, indent+"  ", rendered)
	}
}

func within(s, ex Span) bool { return s.Start >= ex.Start && s.Start <= ex.End }

func sortSpans(ss []Span) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Start != ss[j].Start {
			return ss[i].Start < ss[j].Start
		}
		return ss[i].Step < ss[j].Step
	})
}

func dur(s Span) string {
	d := time.Duration(s.End - s.Start)
	if d < 0 {
		d = 0
	}
	return d.Round(time.Microsecond).String()
}
