package bench

import (
	"testing"
	"time"
)

// Smoke tests for the commit-pipelining sweeps: the speculation overlay must
// actually buy throughput over the synchronous baseline at smoke scale, and
// the amortization counters must show real batching. The full series live in
// cmd/figures -fig pipeline and BenchmarkPipelineSweep.

// TestPipelineSweepSmoke pins the pipeline figure's shape on the memory
// substrate: the deep-pipeline cell must beat the synchronous depth-1
// baseline by a wide margin (the measured gap is ~10× at 16 steps per
// invoke, so asserting 3× leaves room for a noisy runner), the committer
// must report real batches, and the baseline must never touch the overlay.
func TestPipelineSweepSmoke(t *testing.T) {
	// Throughput assertions on wall-clock measurements can flake on a badly
	// oversubscribed CI runner, so the sweep gets one retry: a scheduling
	// hiccup essentially never erases a ~10× gap twice in a row.
	var pts []PipelineSweepPoint
	for attempt := 0; ; attempt++ {
		var err error
		pts, err = PipelineSweep(PipelineSweepOptions{
			Depths:   []int{1, 1024},
			Duration: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 2 && pts[1].Throughput > 3*pts[0].Throughput || attempt == 1 {
			break
		}
		t.Log("deep pipeline did not clear 3x the synchronous baseline; retrying once")
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	base, deep := pts[0], pts[1]
	for _, p := range pts {
		if p.Invokes <= 0 || p.Steps != p.Invokes*16 || p.Throughput <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
		if p.P50 <= 0 || p.P99 < p.P50 {
			t.Errorf("latency stats broken: %+v", p)
		}
	}
	// Depth 1 runs without the overlay: no committer, no flushes.
	if base.Flushes != 0 || base.ModeledFlushTime != 0 {
		t.Errorf("baseline touched the overlay: %+v", base)
	}
	// The tentpole claim: speculation overlaps every per-step round trip
	// and pays one group commit per fence window instead.
	if deep.Throughput <= 3*base.Throughput {
		t.Errorf("speculation tput %.1f steps/s <= 3x synchronous %.1f",
			deep.Throughput, base.Throughput)
	}
	// The win must come from amortization, not from skipping durability:
	// real group commits carrying many post-image rows each.
	if deep.Flushes <= 0 || deep.MeanBatch <= 1.5 {
		t.Errorf("no real batching: %d flushes, mean %.2f", deep.Flushes, deep.MeanBatch)
	}
	// The memory substrate models its commit cost, and the overlay accounts
	// for it per batch.
	if deep.ModeledFlushTime <= 0 {
		t.Errorf("modeled flush time not accounted: %+v", deep)
	}
}

// TestShardSweepSpecSmoke pins the spec axis added to the shard sweep: on
// one flush-bound shard with group commit on, the speculation cell must beat
// the synchronous cell (measured ~9× at 16 steps per invoke) and report the
// overlay's amortization counters; the synchronous cell must report zeros.
func TestShardSweepSpecSmoke(t *testing.T) {
	var pts []ShardSweepPoint
	for attempt := 0; ; attempt++ {
		var err error
		pts, err = ShardSweep(ShardSweepOptions{
			Shards:         []int{1},
			Commit:         []bool{true},
			Spec:           []bool{false, true},
			StepsPerInvoke: 16,
			Duration:       300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 2 && pts[1].Throughput > 2*pts[0].Throughput || attempt == 1 {
			break
		}
		t.Log("spec cell did not clear 2x the synchronous cell; retrying once")
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	sync, spec := pts[0], pts[1]
	if sync.Spec || !spec.Spec {
		t.Fatalf("cells out of order: %+v", pts)
	}
	for _, p := range pts {
		if p.Steps <= 0 || p.Throughput <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
	}
	if sync.PipeFlushes != 0 || sync.PipeBatch != 0 {
		t.Errorf("synchronous cell touched the overlay: %+v", sync)
	}
	if spec.Throughput <= 2*sync.Throughput {
		t.Errorf("spec tput %.1f steps/s <= 2x synchronous %.1f",
			spec.Throughput, sync.Throughput)
	}
	if spec.PipeFlushes <= 0 || spec.PipeBatch <= 1.5 {
		t.Errorf("no real batching: %d flushes, mean %.2f", spec.PipeFlushes, spec.PipeBatch)
	}
}
