package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/uuid"
)

// FanoutSweep measures the durable-promise fan-out/fan-in path: committed
// worker results per second (and completed fan-ins per second) versus the
// fan-out width, under a fixed population of closed-loop drivers. Each
// driver invocation fans out `width` AsyncInvokePromise calls and awaits
// them all; every await is a logged step and every result a durable
// mailbox post, so the sweep prices exactly what Durable Functions-style
// orchestrations (Burckhardt et al.) pay for crash-safe fan-in on Beldi's
// substrate. Baseline mode runs the same shape on in-memory futures with
// no durability — the gap is the cost of the guarantee.

// FanoutSweepOptions configure a fan-out sweep.
type FanoutSweepOptions struct {
	// Widths are the fan-out widths to sweep. nil means 1, 2, 4, 8, 16.
	Widths []int
	// Modes are the machinery modes per width. nil means Beldi then
	// baseline.
	Modes []beldi.Mode
	// Drivers is the fixed offered load: closed-loop orchestrators. 0
	// means 8.
	Drivers int
	// Duration is the measurement window per point. 0 means 400ms.
	Duration time.Duration
	// Scale compresses the per-op cloud latency; 0 means 0.02.
	Scale float64
	Seed  int64
}

func (o FanoutSweepOptions) withDefaults() FanoutSweepOptions {
	if o.Widths == nil {
		o.Widths = []int{1, 2, 4, 8, 16}
	}
	if o.Modes == nil {
		o.Modes = []beldi.Mode{beldi.ModeBeldi, beldi.ModeBaseline}
	}
	if o.Drivers == 0 {
		o.Drivers = 8
	}
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Scale == 0 {
		o.Scale = 0.02
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// FanoutSweepPoint is one (width, mode) cell of the sweep.
type FanoutSweepPoint struct {
	Width int
	Mode  string
	// FanIns is the number of completed fan-out/fan-in rounds in the
	// window; Results is FanIns×Width (awaited worker results).
	FanIns  int64
	Results int64
	// Throughput is Results per second — the figure's y-value.
	Throughput float64
	// FanInsPerSec is completed rounds per second.
	FanInsPerSec float64
	// P50 / P99 are round latencies (fan-out through last await).
	P50, P99 time.Duration
	Elapsed  time.Duration
}

// FanoutSweep runs the full grid: every width, every mode, each against a
// fresh system under the same offered load.
func FanoutSweep(opts FanoutSweepOptions) ([]FanoutSweepPoint, error) {
	opts = opts.withDefaults()
	var out []FanoutSweepPoint
	for _, width := range opts.Widths {
		if width < 1 {
			return nil, fmt.Errorf("bench: fanout sweep: invalid width %d", width)
		}
		for _, mode := range opts.Modes {
			pt, err := fanoutSweepPoint(opts, width, mode)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// fanoutSweepPoint measures one cell: Drivers closed-loop orchestrators,
// each fanning width promise invocations per round, for Duration.
func fanoutSweepPoint(opts FanoutSweepOptions, width int, mode beldi.Mode) (FanoutSweepPoint, error) {
	store := dynamo.NewStore(dynamo.WithLatency(dynamo.NewCloudLatency(opts.Scale, opts.Seed)))
	plat := platform.New(platform.Options{
		ConcurrencyLimit: opts.Drivers * (width + 2),
		Seed:             opts.Seed,
		IDs:              &uuid.Seq{Prefix: "req"},
	})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: mode,
		Config: beldi.Config{RowCap: 16},
	})
	d.Function("work", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		return beldi.Int(input.Int() * 2), nil
	})
	d.Function("fan", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		ps := make([]*beldi.Promise, width)
		for i := 0; i < width; i++ {
			p, err := e.AsyncInvokePromise("work", beldi.Int(int64(i)))
			if err != nil {
				return beldi.Null, err
			}
			ps[i] = p
		}
		outs, err := e.AwaitAll(ps...)
		if err != nil {
			return beldi.Null, err
		}
		return beldi.Int(int64(len(outs))), nil
	})

	var fanIns atomic.Int64
	var mu sync.Mutex
	var lats []time.Duration
	var firstErr error
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Drivers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				out, err := d.Invoke("fan", beldi.Null)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				lats = append(lats, lat)
				mu.Unlock()
				if out.Int() != int64(width) {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("fan-in returned %d results, want %d", out.Int(), width)
					}
					mu.Unlock()
					return
				}
				fanIns.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	plat.Drain()
	d.Stop()
	if firstErr != nil {
		return FanoutSweepPoint{}, fmt.Errorf("bench: fanout sweep (width %d, %s): %w", width, ModeLabel(mode), firstErr)
	}
	n := fanIns.Load()
	pt := FanoutSweepPoint{
		Width:        width,
		Mode:         ModeLabel(mode),
		FanIns:       n,
		Results:      n * int64(width),
		Throughput:   float64(n*int64(width)) / elapsed.Seconds(),
		FanInsPerSec: float64(n) / elapsed.Seconds(),
		Elapsed:      elapsed,
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		pt.P50 = lats[len(lats)/2]
		pt.P99 = lats[len(lats)*99/100]
	}
	return pt, nil
}
