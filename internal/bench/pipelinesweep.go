package bench

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/hist"
	"repro/internal/platform"
	"repro/internal/remote"
	"repro/internal/storage"
	"repro/internal/uuid"
	"repro/internal/walstore"
)

// PipelineSweep measures what commit pipelining buys Beldi's hot logging
// path: committed steps per second and per-step latency versus pipeline
// depth, on each storage substrate. Depth 1 is today's synchronous behavior
// (no overlay: every logged write pays its own store round trip before the
// workflow advances); deeper pipelines execute speculatively against the
// read-your-own-writes overlay while the background committer group-commits
// batches of post-images, and each workflow's entry reply fences on the
// durability watermark. The depth axis is Netherite's speculation figure
// transplanted onto Beldi: throughput climbs until one group commit per
// fence window carries every concurrent workflow's writes.

// PipelineBackend names one substrate of the pipeline sweep.
type PipelineBackend string

// The swept substrates.
const (
	// PipelineMemory is the in-memory store under the cloud latency model
	// (per-op RTTs plus a per-batch commit flush) — the paper's DynamoDB
	// stand-in.
	PipelineMemory PipelineBackend = "memory"
	// PipelineWAL is the walstore with group-committed fsyncs on real disk.
	PipelineWAL PipelineBackend = "wal"
	// PipelineRemote is the walstore behind the framed TCP wire with a
	// simulated network delay — the out-of-process storage plane.
	PipelineRemote PipelineBackend = "remote"
)

// PipelineSweepOptions configure a pipeline-depth sweep.
type PipelineSweepOptions struct {
	// Depths are the pipeline depths to sweep; 1 runs without the overlay
	// (the synchronous baseline). nil means 1, 32, 256, 1024. Depth bounds
	// the unflushed write ops across ALL workers, so useful depths sit
	// well above Workers × StepsPerInvoke — shallower pipelines throttle
	// every writer to the group-commit cadence.
	Depths []int
	// Backends are the substrates to sweep. nil means memory only (the
	// others pay real disk and wire time; CI's figure job adds them
	// explicitly).
	Backends []PipelineBackend
	// Workers is the fixed offered load of closed-loop invokers. 0 means 32.
	Workers int
	// Duration is the measurement window per point. 0 means 400ms.
	Duration time.Duration
	// Keys is the number of distinct item keys written. 0 means 256.
	Keys int
	// StepsPerInvoke is the number of logged write steps each workflow
	// performs before replying — the lever speculation amortizes: a
	// synchronous workflow pays one store round trip per step, a pipelined
	// one overlaps them all and fences once at the reply. 0 means 16.
	StepsPerInvoke int
	// Scale compresses the cloud latency model on the memory substrate;
	// 0 means 0.02.
	Scale float64
	// Flush is the per-batch commit-latch cost on the memory substrate.
	// 0 means 300µs.
	Flush time.Duration
	// RTT is the simulated wire delay per request on the remote substrate.
	// 0 means 500µs.
	RTT  time.Duration
	Seed int64
}

func (o PipelineSweepOptions) withDefaults() PipelineSweepOptions {
	if o.Depths == nil {
		o.Depths = []int{1, 32, 256, 1024}
	}
	if o.Backends == nil {
		o.Backends = []PipelineBackend{PipelineMemory}
	}
	if o.Workers == 0 {
		o.Workers = 32
	}
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Keys == 0 {
		o.Keys = 256
	}
	if o.StepsPerInvoke == 0 {
		o.StepsPerInvoke = 16
	}
	if o.Scale == 0 {
		o.Scale = 0.02
	}
	if o.Flush == 0 {
		o.Flush = 300 * time.Microsecond
	}
	if o.RTT == 0 {
		o.RTT = 500 * time.Microsecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// PipelineSweepPoint is one (backend, depth) cell of the sweep.
type PipelineSweepPoint struct {
	Backend PipelineBackend
	// Depth is the pipeline depth; 1 is the synchronous no-overlay baseline.
	Depth int
	// Invokes is the number of workflow invocations committed in the
	// window; Steps the logged write steps they carried
	// (Invokes × StepsPerInvoke); Throughput is Steps per second.
	Invokes    int64
	Steps      int64
	Throughput float64
	// P50 and P99 are per-invocation latency quantiles (client call to
	// durable reply).
	P50, P99 time.Duration
	// Flushes / MeanBatch describe the committer's amortization: group
	// commits and post-image rows per batch (0 when the overlay is off).
	Flushes   int64
	MeanBatch float64
	// ModeledFlushTime is the substrate's modeled per-batch commit cost
	// summed over the window (memory substrate only) — the simulated cost
	// the wall-clock amortization is compared against.
	ModeledFlushTime time.Duration
	Elapsed          time.Duration
}

// PipelineSweep runs the full grid: every substrate, every depth, each cell
// a fresh system under the same closed-loop offered load.
func PipelineSweep(opts PipelineSweepOptions) ([]PipelineSweepPoint, error) {
	opts = opts.withDefaults()
	var out []PipelineSweepPoint
	for _, backend := range opts.Backends {
		for _, depth := range opts.Depths {
			if depth < 1 {
				return nil, fmt.Errorf("bench: pipeline sweep: invalid depth %d", depth)
			}
			pt, err := pipelineSweepPoint(opts, backend, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// pipelineBase builds one substrate instance; the cleanup func tears down
// whatever it opened.
func pipelineBase(opts PipelineSweepOptions, kind PipelineBackend) (storage.Backend, func(), error) {
	switch kind {
	case PipelineMemory:
		store := dynamo.NewStore(
			dynamo.WithGroupCommit(true),
			dynamo.WithLatency(dynamo.CommitCost{
				Inner: dynamo.NewCloudLatency(opts.Scale, opts.Seed),
				Flush: opts.Flush,
			}),
		)
		return store, func() {}, nil
	case PipelineWAL:
		dir, err := os.MkdirTemp("", "beldi-pipeline-sweep-*")
		if err != nil {
			return nil, nil, err
		}
		wal, err := walstore.Open(dir, walstore.Options{Sync: walstore.SyncBatched})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return wal, func() { wal.Close(); os.RemoveAll(dir) }, nil
	case PipelineRemote:
		dir, err := os.MkdirTemp("", "beldi-pipeline-sweep-*")
		if err != nil {
			return nil, nil, err
		}
		wal, err := walstore.Open(dir, walstore.Options{Sync: walstore.SyncBatched})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			wal.Close()
			os.RemoveAll(dir)
			return nil, nil, err
		}
		srv := remote.NewServer(wal, remote.ServeOptions{Delay: opts.RTT})
		go srv.Serve(lis)
		client, err := remote.Dial(lis.Addr().String(), remote.Options{})
		if err != nil {
			srv.Close()
			wal.Close()
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return client, func() {
			client.Close()
			srv.Close()
			wal.Close()
			os.RemoveAll(dir)
		}, nil
	default:
		return nil, nil, fmt.Errorf("bench: pipeline sweep: unknown backend %q", kind)
	}
}

// pipelineSweepPoint measures one cell: a fresh deployment whose single SSF
// logs StepsPerInvoke write steps per invocation, hammered by closed-loop
// invokers, with the speculation overlay at the given depth (absent at
// depth 1).
func pipelineSweepPoint(opts PipelineSweepOptions, kind PipelineBackend, depth int) (PipelineSweepPoint, error) {
	base, cleanup, err := pipelineBase(opts, kind)
	if err != nil {
		return PipelineSweepPoint{}, err
	}
	defer cleanup()

	plat := platform.New(platform.Options{
		ConcurrencyLimit: opts.Workers * 2,
		Seed:             opts.Seed,
		IDs:              &uuid.Seq{Prefix: "req"},
	})
	dopts := beldi.DeploymentOptions{
		Store: base, Platform: plat, Mode: beldi.ModeBeldi,
		Config: beldi.Config{RowCap: 16},
	}
	if depth > 1 {
		dopts.Speculation = &beldi.SpeculationOptions{Depth: depth}
	}
	d := beldi.NewDeployment(dopts)
	steps := opts.StepsPerInvoke
	d.Function("step", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		m := input.Map()
		key := m["Key"].Str()
		for j := 0; j < steps; j++ {
			if err := e.Write("state", fmt.Sprintf("%s-%d", key, j), m["Val"]); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Null, nil
	}, "state")

	lat := new(hist.Histogram)
	var invokes atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				key := fmt.Sprintf("k%04d", (w*31+i)%opts.Keys)
				t0 := time.Now()
				_, err := d.Invoke("step", beldi.Map(map[string]beldi.Value{
					"Key": beldi.Str(key),
					"Val": beldi.Int(int64(i)),
				}))
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				lat.Record(time.Since(t0))
				invokes.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	d.Stop()
	if firstErr != nil {
		return PipelineSweepPoint{}, fmt.Errorf("bench: pipeline sweep (%s, depth %d): %w", kind, depth, firstErr)
	}
	pt := PipelineSweepPoint{
		Backend:    kind,
		Depth:      depth,
		Invokes:    invokes.Load(),
		Steps:      invokes.Load() * int64(steps),
		Throughput: float64(invokes.Load()*int64(steps)) / elapsed.Seconds(),
		P50:        lat.Quantile(0.5),
		P99:        lat.Quantile(0.99),
		Elapsed:    elapsed,
	}
	if p := d.Pipeline(); p != nil {
		st := p.Snapshot()
		pt.Flushes = st.Flushes
		pt.ModeledFlushTime = st.ModeledFlushTime
		if st.Flushes > 0 {
			pt.MeanBatch = float64(st.FlushedRows) / float64(st.Flushes)
		}
	}
	return pt, nil
}
