package bench

import (
	"io"
	"testing"
	"time"

	"repro/beldi"
)

// Smoke tests: each experiment entry point runs end to end at tiny scale
// and produces structurally sane output. The real measurements live in
// cmd/figures and bench_test.go.

func TestFig13Smoke(t *testing.T) {
	rows, err := Fig13(Fig13Options{DAALRows: 3, Ops: 5, RowCap: 8, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 4 ops × 3 modes
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Median <= 0 || r.P99 < r.Median {
			t.Errorf("%s/%s: median=%v p99=%v", r.Op, ModeLabel(r.Mode), r.Median, r.P99)
		}
	}
	// Beldi reads must cost more than baseline reads (the paper's 2–4×).
	get := func(op string, m beldi.Mode) time.Duration {
		for _, r := range rows {
			if r.Op == op && r.Mode == m {
				return r.Median
			}
		}
		t.Fatalf("missing %s/%v", op, m)
		return 0
	}
	if get("Read", beldi.ModeBeldi) <= get("Read", beldi.ModeBaseline) {
		t.Error("Beldi read not more expensive than baseline")
	}
}

func TestSweepSmoke(t *testing.T) {
	pts, err := Sweep(SweepOptions{
		App: "media", Mode: beldi.ModeBaseline,
		Rates:    []float64{50},
		Duration: 300 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Scale:    0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Throughput <= 0 || pts[0].P50 <= 0 {
		t.Fatalf("point: %+v", pts)
	}
	if pts[0].Errors != 0 {
		t.Errorf("%d errors at trivial load", pts[0].Errors)
	}
}

func TestSweepAllAppsBuild(t *testing.T) {
	for _, app := range []string{"media", "travel", "social", "orders"} {
		sys := NewSystem(SystemOptions{Mode: beldi.ModeBeldi, Scale: 0.0001, Concurrency: 10000})
		a, err := BuildApp(sys, app)
		if err != nil {
			t.Errorf("%s: %v", app, err)
		}
		if c, ok := a.(io.Closer); ok {
			c.Close() //nolint:errcheck
		}
	}
	sys := NewSystem(SystemOptions{Scale: 0.0001})
	if _, err := BuildApp(sys, "nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestOrdersSweepSmoke(t *testing.T) {
	pts, err := Sweep(SweepOptions{
		App: "orders", Mode: beldi.ModeBeldi,
		Rates:    []float64{40},
		Duration: 300 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Scale:    0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Throughput <= 0 || pts[0].P50 <= 0 {
		t.Fatalf("point: %+v", pts)
	}
	if pts[0].Errors != 0 {
		t.Errorf("%d errors at trivial load", pts[0].Errors)
	}
}

func TestQueueSweepSmoke(t *testing.T) {
	pts, err := QueueSweep(QueueSweepOptions{
		Messages:   40,
		BatchSizes: []int{1, 8},
		Scale:      0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Throughput <= 0 || p.Polls <= 0 {
			t.Errorf("batch %d: %+v", p.Batch, p)
		}
	}
	// Batching must amortize the poll round trip: batch 8 strictly beats
	// batch 1, and uses fewer polls.
	if pts[1].Throughput <= pts[0].Throughput {
		t.Errorf("batch 8 tput %.1f <= batch 1 tput %.1f", pts[1].Throughput, pts[0].Throughput)
	}
	if pts[1].Polls >= pts[0].Polls {
		t.Errorf("batch 8 polls %d >= batch 1 polls %d", pts[1].Polls, pts[0].Polls)
	}
}

func TestFig16Smoke(t *testing.T) {
	series, err := Fig16(Fig16Options{
		Minutes: 4, MinuteDuration: 80 * time.Millisecond,
		Rate: 300, RowCap: 2, Scale: 0.0005, TsMinutes: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 { // no-GC, GC(1min), cross-table
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Median) != 4 || len(s.Rows) != 4 {
			t.Errorf("%s: %d medians %d rows", s.Label, len(s.Median), len(s.Rows))
		}
	}
	// Without GC the DAAL must end deeper than with GC (tiny row capacity
	// and hundreds of writes force visible growth even at smoke scale).
	if series[0].Rows[3] <= series[1].Rows[3] {
		t.Errorf("no-GC depth %d <= GC depth %d", series[0].Rows[3], series[1].Rows[3])
	}
}

func TestCostsSmoke(t *testing.T) {
	rep, err := Costs(5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StoreOpsPerReadBeldi <= rep.StoreOpsPerReadBaseline {
		t.Errorf("beldi reads %f ops <= baseline %f", rep.StoreOpsPerReadBeldi, rep.StoreOpsPerReadBaseline)
	}
	if rep.ReadBytesBeldi <= rep.ReadBytesBaseline {
		t.Errorf("beldi read bytes %d <= baseline %d", rep.ReadBytesBeldi, rep.ReadBytesBaseline)
	}
	if rep.DAALBytes20Rows <= 0 {
		t.Error("no DAAL footprint measured")
	}
	if rep.StoredBytesPerOpBeldi <= 0 {
		t.Errorf("beldi stored bytes per op = %f", rep.StoredBytesPerOpBeldi)
	}
}

func TestShardSweepSmoke(t *testing.T) {
	// Throughput assertions on wall-clock measurements can flake on a badly
	// oversubscribed CI runner, so the sweep gets one retry: the expected
	// gap between adjacent shard counts is ~2×, which a scheduling hiccup
	// essentially never erases twice in a row.
	var pts []ShardSweepPoint
	for attempt := 0; ; attempt++ {
		var err error
		pts, err = ShardSweep(ShardSweepOptions{
			Duration: 250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if shardSweepMonotone(pts) || attempt == 1 {
			break
		}
		t.Log("plain-commit curve not monotone; retrying once")
	}
	if len(pts) != 8 { // 4 shard counts × {plain, batched}
		t.Fatalf("%d points", len(pts))
	}
	byMode := map[bool][]ShardSweepPoint{}
	for _, p := range pts {
		if p.Steps <= 0 || p.Throughput <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
		byMode[p.Batched] = append(byMode[p.Batched], p)
	}
	// The tentpole claim: with the store flush-bound, committed-steps/sec
	// rises monotonically with the shard count at fixed offered load (each
	// doubling roughly doubles the number of independent commit streams, so
	// the margins are wide).
	plain := byMode[false]
	for i := 1; i < len(plain); i++ {
		if plain[i].Throughput <= plain[i-1].Throughput {
			t.Errorf("plain commit: tput not increasing %d→%d shards: %.1f <= %.1f",
				plain[i-1].Shards, plain[i].Shards, plain[i].Throughput, plain[i-1].Throughput)
		}
	}
	// Group commit amortizes the flush across queued writers: on one shard
	// (maximum contention) it must beat the plain path by a wide margin and
	// report real batching.
	batched := byMode[true]
	if batched[0].Throughput <= 2*plain[0].Throughput {
		t.Errorf("group commit on 1 shard: %.1f steps/s <= 2x plain %.1f",
			batched[0].Throughput, plain[0].Throughput)
	}
	if batched[0].GroupCommits <= 0 || batched[0].MeanBatch <= 1.5 {
		t.Errorf("no real batching: %d batches, mean %.2f",
			batched[0].GroupCommits, batched[0].MeanBatch)
	}
	// Plain points must not have touched the batcher.
	for _, p := range plain {
		if p.GroupCommits != 0 {
			t.Errorf("plain point at %d shards recorded %d group commits", p.Shards, p.GroupCommits)
		}
	}
}

func TestFanoutSweepSmoke(t *testing.T) {
	// Like the shard smoke test, wall-clock throughput gets one retry
	// against scheduling hiccups; the expected amortization gap between
	// width 1 and width 8 is ~2×.
	var pts []FanoutSweepPoint
	for attempt := 0; ; attempt++ {
		var err error
		pts, err = FanoutSweep(FanoutSweepOptions{
			Widths:   []int{1, 8},
			Modes:    []beldi.Mode{beldi.ModeBeldi},
			Duration: 250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 2 && pts[1].Throughput > pts[0].Throughput || attempt == 1 {
			break
		}
		t.Log("width-8 results/s did not beat width-1; retrying once")
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.FanIns <= 0 || p.Results != p.FanIns*int64(p.Width) {
			t.Fatalf("inconsistent point: %+v", p)
		}
		if p.P50 <= 0 || p.P99 < p.P50 {
			t.Errorf("latency stats broken: %+v", p)
		}
	}
	// Wider fan-out amortizes the per-round driver overhead across more
	// awaited results: results/s must grow with width.
	if pts[1].Throughput <= pts[0].Throughput {
		t.Errorf("results/s did not grow with width: %.1f (w=1) vs %.1f (w=8)",
			pts[0].Throughput, pts[1].Throughput)
	}
}

// TestTriggerLatencySweepSmoke pins the push primitive's headline number:
// with the commit-stream watch on, the p50 enqueue→receive latency of an
// idle queue is at least 5× better than the PollInterval-bound polling
// path, and the mapper's Wakeups counter proves which path each cell took.
func TestTriggerLatencySweepSmoke(t *testing.T) {
	// Wall-clock latency assertions get one retry against scheduling
	// hiccups; the expected gap is ~50× (sub-ms push vs a 20ms poll
	// cadence), which a hiccup essentially never erases twice in a row.
	var pts []TriggerLatencyPoint
	for attempt := 0; ; attempt++ {
		var err error
		pts, err = TriggerLatencySweep(TriggerLatencySweepOptions{
			Backends:     []BackendKind{BackendMemory},
			PollInterval: 20 * time.Millisecond,
			Messages:     16,
			Warmup:       4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 2 && pts[0].P50*5 <= pts[1].P50 || attempt == 1 {
			break
		}
		t.Log("push p50 not 5x better than poll; retrying once")
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	push, poll := pts[0], pts[1]
	if push.Mode != TriggerPush || poll.Mode != TriggerPoll {
		t.Fatalf("unexpected cell order: %+v", pts)
	}
	for _, p := range pts {
		if p.Messages != 16 || p.P50 <= 0 || p.P99 < p.P50 {
			t.Fatalf("malformed cell: %+v", p)
		}
	}
	// The headline claim: push drops idle-queue p50 by ≥5× against the
	// same store, same mapper, same messages.
	if push.P50*5 > poll.P50 {
		t.Errorf("push p50 %v not 5x better than poll p50 %v",
			time.Duration(push.P50), time.Duration(poll.P50))
	}
	// The mapper's own evidence of the path taken: push cells end idle
	// waits via subscription events; poll cells never can (the Watcher
	// capability is stripped, so there is no subscription to fire).
	if push.Wakeups == 0 {
		t.Error("push cell recorded no wakeups")
	}
	if poll.Wakeups != 0 {
		t.Errorf("poll cell recorded %d wakeups through a stripped Watcher", poll.Wakeups)
	}
}

// shardSweepMonotone reports whether the sweep's plain-commit throughput
// column rises strictly with the shard count.
func shardSweepMonotone(pts []ShardSweepPoint) bool {
	var prev float64
	for _, p := range pts {
		if p.Batched {
			continue
		}
		if p.Throughput <= prev {
			return false
		}
		prev = p.Throughput
	}
	return true
}

// TestBackendSweepSmoke pins the backend figure's shape: every cell
// commits work; the WAL cells actually journal; batching amortizes fsyncs
// (several records per flush) while the unbatched cell pays at least one
// fsync per committed step.
func TestBackendSweepSmoke(t *testing.T) {
	pts, err := BackendSweep(BackendSweepOptions{Duration: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	byKind := map[BackendKind]BackendSweepPoint{}
	for _, p := range pts {
		if p.Steps <= 0 || p.Throughput <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
		byKind[p.Backend] = p
	}
	for _, k := range []BackendKind{BackendWALNoSync, BackendWALBatched, BackendWALEach} {
		if byKind[k].WALBytes == 0 {
			t.Errorf("%s journaled nothing", k)
		}
	}
	if byKind[BackendMemory].Fsyncs != 0 {
		t.Errorf("memory backend fsynced %d times", byKind[BackendMemory].Fsyncs)
	}
	// The nosync cell never flushes on the commit path, but segment
	// rotation still fsyncs the old file; on a fast machine the window can
	// cross the segment cap, so allow a handful, not per-commit flushing.
	if ns := byKind[BackendWALNoSync]; ns.Fsyncs*10 > ns.Steps {
		t.Errorf("wal-nosync fsyncs=%d for %d steps (should be rotation-only)", ns.Fsyncs, ns.Steps)
	}
	each := byKind[BackendWALEach]
	if each.Fsyncs < each.Steps {
		t.Errorf("wal-each fsyncs=%d < steps=%d", each.Fsyncs, each.Steps)
	}
	batched := byKind[BackendWALBatched]
	if batched.Fsyncs == 0 || batched.MeanBatch < 2 {
		t.Errorf("wal-batched shows no amortization: fsyncs=%d mean batch=%.1f",
			batched.Fsyncs, batched.MeanBatch)
	}
	// Batching must beat per-record fsyncs under concurrent load. The gap
	// is ~5× here; a CI scheduling hiccup does not erase it.
	if batched.Throughput <= each.Throughput {
		t.Errorf("batched (%0.1f steps/s) not faster than fsync-each (%0.1f)",
			batched.Throughput, each.Throughput)
	}
}

// TestRemoteSweepSmoke pins the remote figure's shape: every cell commits
// work, the baseline is local, remote cells carry wire-level RPC counts
// (several round trips per committed step), and adding simulated RTT can
// only slow the remote path down.
func TestRemoteSweepSmoke(t *testing.T) {
	pts, err := RemoteSweep(RemoteSweepOptions{
		RTTs:     []time.Duration{0, 2 * time.Millisecond},
		Duration: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // inproc, remote/0, remote/2ms
		t.Fatalf("%d points: %+v", len(pts), pts)
	}
	for _, p := range pts {
		if p.Steps <= 0 || p.Throughput <= 0 || p.P99 <= 0 {
			t.Fatalf("empty cell: %+v", p)
		}
		if !p.Remote {
			if p.RPCs != 0 {
				t.Errorf("in-process cell reports %d RPCs", p.RPCs)
			}
			continue
		}
		// Each committed step costs multiple store round trips (intent,
		// log, value); the wire counter must see them.
		if p.RPCs < p.Steps {
			t.Errorf("remote cell rtt=%v: %d RPCs for %d steps", p.RTT, p.RPCs, p.Steps)
		}
	}
	// 2ms of injected RTT per op dwarfs loopback framing costs; the delayed
	// cell cannot out-throughput the zero-delay cell.
	if pts[2].Throughput >= pts[1].Throughput {
		t.Errorf("rtt=2ms (%.1f steps/s) not slower than rtt=0 (%.1f)",
			pts[2].Throughput, pts[1].Throughput)
	}
}

// TestClusterSweepSmoke pins the cluster figure's shape: the pool scales —
// four workers strictly outthroughput one over the same shared store — and
// the kill cell both commits work and proves recovery (the cell blocks on
// pending-intent drain, and the survivors' steals are visible).
func TestClusterSweepSmoke(t *testing.T) {
	pts, err := ClusterSweep(ClusterSweepOptions{
		Workers:  []int{1, 4},
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // 1/no-kill, 4/no-kill, 4/kill
		t.Fatalf("%d points: %+v", len(pts), pts)
	}
	var one, four, killed ClusterSweepPoint
	for _, p := range pts {
		if p.Steps <= 0 || p.Throughput <= 0 {
			t.Fatalf("empty cell: %+v", p)
		}
		switch {
		case p.Workers == 1:
			one = p
		case p.Workers == 4 && !p.Killed:
			four = p
		case p.Workers == 4 && p.Killed:
			killed = p
		}
	}
	// Horizontal scaling: the latency-bound load quadruples with the pool;
	// the 1→4 gap is ~3.5× here, so a scheduling hiccup does not erase it.
	if four.Throughput <= one.Throughput {
		t.Errorf("4 workers (%.1f steps/s) no faster than 1 (%.1f)", four.Throughput, one.Throughput)
	}
	// The kill cell only returns after every in-flight workflow completed
	// exactly once on a survivor; a successful steal is the mechanism.
	if killed.Stolen == 0 {
		t.Errorf("kill cell stole no partitions: %+v", killed)
	}
}
