package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/beldi"
	"repro/internal/apps/media"
	"repro/internal/apps/orders"
	"repro/internal/apps/social"
	"repro/internal/apps/travel"
	"repro/internal/workload"
)

// Figures 14 (movie review), 15 (travel reservation) and 26 (social media):
// median and 99th-percentile response time versus offered throughput, Beldi
// against the baseline, under the DeathStarBench-derived request mixes. The
// paper sweeps 100→800 req/s on AWS, saturating at the 1,000-concurrent-
// Lambda account limit; the harness recreates the same knee by scaling the
// platform's concurrency ceiling along with its latency model.

// workloadApp is the slice of an application the sweep needs.
type workloadApp interface {
	Entry() string
	Request(r *rand.Rand) beldi.Value
}

// BuildApp wires the named app ("media", "travel", "travel-notxn", "social"
// or "orders") onto a system and seeds it. "travel-notxn" is the §7.4
// ablation: Beldi fault tolerance without the reservation transaction.
// "orders" is the event-driven pipeline: its workflow edges run over durable
// queues drained by background event-source mappers (apps implementing
// io.Closer are closed by Sweep when the run ends).
func BuildApp(sys *System, name string) (workloadApp, error) {
	switch name {
	case "media":
		app := media.Build(sys.D)
		return app, app.Seed()
	case "travel":
		app := travel.Build(sys.D)
		return app, app.Seed()
	case "travel-notxn":
		app := travel.Build(sys.D)
		app.DisableTxn = true
		return app, app.Seed()
	case "social":
		app := social.Build(sys.D)
		return app, app.Seed()
	case "orders":
		app := orders.Build(sys.D)
		if err := app.Seed(); err != nil {
			return nil, err
		}
		eo := orders.DefaultEventOptions()
		// Queue parameters scale with the system's latency compression the
		// same way the platform's dispatch costs do.
		eo.VisibilityTimeout = time.Duration(float64(500*time.Millisecond) * sys.Scale)
		app.EnableEvents(eo)
		return app, nil
	default:
		return nil, fmt.Errorf("bench: unknown app %q", name)
	}
}

// SweepPoint is one x-position of a latency-throughput figure.
type SweepPoint struct {
	Rate       float64
	Throughput float64
	P50, P99   time.Duration
	Errors     int64
	Dropped    int64
}

// SweepOptions configure a latency-throughput sweep.
type SweepOptions struct {
	App  string
	Mode beldi.Mode
	// Rates are the offered loads (req/s). nil means 100..800 step 100,
	// matching the paper's x-axis.
	Rates []float64
	// Duration per point (the paper uses 5 minutes; scaled runs use
	// seconds). 0 means 3s.
	Duration time.Duration
	// Warmup per point. 0 means Duration/4.
	Warmup time.Duration
	// Scale compresses simulated latency; 0 means 0.1.
	Scale float64
	// Concurrency is the platform limit; 0 derives a knee near the top of
	// the rate range.
	Concurrency int
	Seed        int64
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.Rates == nil {
		o.Rates = []float64{100, 200, 300, 400, 500, 600, 700, 800}
	}
	if o.Duration == 0 {
		o.Duration = 3 * time.Second
	}
	if o.Warmup == 0 {
		o.Warmup = o.Duration / 4
	}
	if o.Scale == 0 {
		o.Scale = 0.1
	}
	if o.Concurrency == 0 {
		// The paper's 1,000-Lambda ceiling produces a knee around 800 req/s
		// for these apps; with latencies compressed by Scale each instance
		// holds its slot for ~Scale× as long, so the equivalent ceiling
		// scales accordingly. The constant is calibrated so the Beldi curve
		// saturates near the top of the default 100–800 req/s range, like
		// the paper's.
		o.Concurrency = int(3300 * o.Scale)
		if o.Concurrency < 8 {
			o.Concurrency = 8
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Sweep runs one latency-throughput curve.
func Sweep(opts SweepOptions) ([]SweepPoint, error) {
	opts = opts.withDefaults()
	sys := NewSystem(SystemOptions{
		Mode: opts.Mode, Scale: opts.Scale, Seed: opts.Seed,
		Concurrency: opts.Concurrency,
		Config: beldi.Config{
			RowCap: 16,
			T:      2 * time.Second,
		},
	})
	app, err := BuildApp(sys, opts.App)
	if err != nil {
		return nil, err
	}
	if c, ok := app.(io.Closer); ok {
		defer c.Close() //nolint:errcheck // background mappers; nothing to report
	}
	var out []SweepPoint
	for _, rate := range opts.Rates {
		res := workload.Run(workload.Options{
			Rate:     rate,
			Duration: opts.Duration,
			Warmup:   opts.Warmup,
			Seed:     opts.Seed,
		}, func(r *rand.Rand) error {
			_, err := sys.D.Invoke(app.Entry(), app.Request(r))
			return err
		})
		out = append(out, SweepPoint{
			Rate:       rate,
			Throughput: res.Throughput(),
			P50:        res.Latency.Median(),
			P99:        res.Latency.P99(),
			Errors:     res.Errors,
			Dropped:    res.Dropped,
		})
		// Collect between points so log growth from one point does not
		// bleed into the next (the paper's collectors run on 1-minute
		// timers throughout).
		if err := sys.D.RunAllCollectors(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
