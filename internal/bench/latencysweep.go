package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/hist"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/uuid"
	"repro/internal/walstore"
)

// LatencySweep measures the tail of Beldi's per-request latency — the
// figure the paper reports with wrk2 against real Lambda (§7.2, Figures
// 14/15 show median and 99th percentile) and the evaluation so far has not:
// client-observed p50/p90/p99 of a logged-write workflow, across storage
// backends and closed-loop worker counts. Three distributions are reported
// per cell: end-to-end request latency (what a client sees), the runtime's
// step-commit latency from the telemetry registry (what one logged write
// costs), and — on durable backends — WAL fsync latency (the floor under
// durability). The gap between the step and request tails is the protocol's
// overhead; the gap between fsync and step tails on the WAL cells is what
// group commit amortizes.

// LatencySweepOptions configure a latency sweep.
type LatencySweepOptions struct {
	// Backends are the storage configurations to sweep. nil means memory,
	// wal-batched, and wal-each.
	Backends []BackendKind
	// Workers are the closed-loop worker counts swept per backend. nil
	// means 1, 8, 32.
	Workers []int
	// Duration is the measurement window per cell (after warmup). 0 means
	// 400ms.
	Duration time.Duration
	// Warmup runs the workload before measurement and discards its samples
	// (cold-start and first-touch costs would otherwise dominate p99 on
	// short windows). 0 means Duration/4.
	Warmup time.Duration
	// Keys is the number of distinct item keys written. 0 means 256.
	Keys int
	Seed int64
}

func (o LatencySweepOptions) withDefaults() LatencySweepOptions {
	if o.Backends == nil {
		o.Backends = []BackendKind{BackendMemory, BackendWALBatched, BackendWALEach}
	}
	if o.Workers == nil {
		o.Workers = []int{1, 8, 32}
	}
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Warmup == 0 {
		o.Warmup = o.Duration / 4
	}
	if o.Keys == 0 {
		o.Keys = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// LatencySweepPoint is one (backend, workers) cell. Latencies are
// nanoseconds; zero step/fsync quantiles mean the cell has no such samples
// (memory backend never fsyncs).
type LatencySweepPoint struct {
	Backend BackendKind
	Workers int
	// Requests completed in the measurement window and their rate.
	Requests   int64
	Throughput float64
	// End-to-end request latency, client-observed.
	P50, P90, P99, Max, Mean int64
	// Step-commit latency from the runtime's telemetry histogram.
	StepP50, StepP99 int64
	// WAL fsync latency, durable backends only.
	FsyncP50, FsyncP99 int64
	Elapsed            time.Duration
}

// LatencySweep runs every (backend, workers) cell against a fresh store and
// a fresh deployment with telemetry attached.
func LatencySweep(opts LatencySweepOptions) ([]LatencySweepPoint, error) {
	opts = opts.withDefaults()
	var out []LatencySweepPoint
	for _, kind := range opts.Backends {
		for _, workers := range opts.Workers {
			pt, err := latencySweepPoint(opts, kind, workers)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// latencySweepPoint measures one cell: warmup, reset the telemetry
// histograms (SnapshotReset starts the measurement window clean), measure,
// then merge the per-worker request histograms into the reported
// distribution.
func latencySweepPoint(opts LatencySweepOptions, kind BackendKind, workers int) (LatencySweepPoint, error) {
	var store storage.Backend
	var wal *walstore.Store
	switch kind {
	case BackendMemory:
		store = dynamo.NewStore()
	case BackendWALBatched, BackendWALEach, BackendWALNoSync:
		dir, err := os.MkdirTemp("", "beldi-latency-sweep-*")
		if err != nil {
			return LatencySweepPoint{}, err
		}
		defer os.RemoveAll(dir)
		policy := walstore.SyncBatched
		switch kind {
		case BackendWALEach:
			policy = walstore.SyncEach
		case BackendWALNoSync:
			policy = walstore.SyncNone
		}
		wal, err = walstore.Open(dir, walstore.Options{Sync: policy})
		if err != nil {
			return LatencySweepPoint{}, err
		}
		defer wal.Close()
		store = wal
	default:
		return LatencySweepPoint{}, fmt.Errorf("bench: latency sweep: unknown backend %q", kind)
	}

	tel := beldi.NewTelemetry()
	plat := platform.New(platform.Options{
		ConcurrencyLimit: workers * 2,
		Seed:             opts.Seed,
		IDs:              &uuid.Seq{Prefix: "req"},
	})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: beldi.ModeBeldi,
		Config: beldi.Config{RowCap: 16}, Telemetry: tel,
	})
	d.Function("step", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		m := input.Map()
		if err := e.Write("state", m["Key"].Str(), m["Val"]); err != nil {
			return beldi.Null, err
		}
		return beldi.Null, nil
	}, "state")
	defer d.Stop()

	stepHist := tel.Registry.Histogram("core.step.step_commit")
	fsyncHist := tel.Registry.Histogram("wal.fsync")

	// Each worker records into its own histogram — no cross-worker
	// contention on the measurement itself — merged after the run.
	locals := make([]*hist.Histogram, workers)
	for i := range locals {
		locals[i] = &hist.Histogram{}
	}
	run := func(deadline time.Time) error {
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var firstErr error
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; time.Now().Before(deadline); i++ {
					key := fmt.Sprintf("k%04d", (w*31+i)%opts.Keys)
					t0 := time.Now()
					_, err := d.Invoke("step", beldi.Map(map[string]beldi.Value{
						"Key": beldi.Str(key),
						"Val": beldi.Int(int64(i)),
					}))
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					locals[w].Record(time.Since(t0))
				}
			}(w)
		}
		wg.Wait()
		return firstErr
	}

	if err := run(time.Now().Add(opts.Warmup)); err != nil {
		return LatencySweepPoint{}, fmt.Errorf("bench: latency sweep (%s/%d, warmup): %w", kind, workers, err)
	}
	// Drop the warmup samples everywhere: the registry histograms via
	// SnapshotReset (the interval-window primitive), the locals via Reset.
	stepHist.SnapshotReset()
	fsyncHist.SnapshotReset()
	for _, h := range locals {
		h.Reset()
	}

	start := time.Now()
	if err := run(start.Add(opts.Duration)); err != nil {
		return LatencySweepPoint{}, fmt.Errorf("bench: latency sweep (%s/%d): %w", kind, workers, err)
	}
	elapsed := time.Since(start)

	var reqs hist.Histogram
	for _, h := range locals {
		reqs.Merge(h)
	}
	step := stepHist.Snapshot()
	fsync := fsyncHist.Snapshot()
	pt := LatencySweepPoint{
		Backend:    kind,
		Workers:    workers,
		Requests:   reqs.Count(),
		Throughput: float64(reqs.Count()) / elapsed.Seconds(),
		P50:        int64(reqs.Quantile(0.5)),
		P90:        int64(reqs.Quantile(0.9)),
		P99:        int64(reqs.P99()),
		Max:        int64(reqs.Max()),
		Mean:       int64(reqs.Mean()),
		StepP50:    int64(step.Median()),
		StepP99:    int64(step.P99()),
		Elapsed:    elapsed,
	}
	if fsync.Count() > 0 {
		pt.FsyncP50 = int64(fsync.Median())
		pt.FsyncP99 = int64(fsync.P99())
	}
	return pt, nil
}
