package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/hist"
	"repro/internal/platform"
	"repro/internal/queue"
	"repro/internal/storage"
	"repro/internal/uuid"
	"repro/internal/walstore"
)

// LatencySweep measures the tail of Beldi's per-request latency — the
// figure the paper reports with wrk2 against real Lambda (§7.2, Figures
// 14/15 show median and 99th percentile) and the evaluation so far has not:
// client-observed p50/p90/p99 of a logged-write workflow, across storage
// backends and closed-loop worker counts. Three distributions are reported
// per cell: end-to-end request latency (what a client sees), the runtime's
// step-commit latency from the telemetry registry (what one logged write
// costs), and — on durable backends — WAL fsync latency (the floor under
// durability). The gap between the step and request tails is the protocol's
// overhead; the gap between fsync and step tails on the WAL cells is what
// group commit amortizes.

// LatencySweepOptions configure a latency sweep.
type LatencySweepOptions struct {
	// Backends are the storage configurations to sweep. nil means memory,
	// wal-batched, and wal-each.
	Backends []BackendKind
	// Workers are the closed-loop worker counts swept per backend. nil
	// means 1, 8, 32.
	Workers []int
	// Duration is the measurement window per cell (after warmup). 0 means
	// 400ms.
	Duration time.Duration
	// Warmup runs the workload before measurement and discards its samples
	// (cold-start and first-touch costs would otherwise dominate p99 on
	// short windows). 0 means Duration/4.
	Warmup time.Duration
	// Keys is the number of distinct item keys written. 0 means 256.
	Keys int
	Seed int64
}

func (o LatencySweepOptions) withDefaults() LatencySweepOptions {
	if o.Backends == nil {
		o.Backends = []BackendKind{BackendMemory, BackendWALBatched, BackendWALEach}
	}
	if o.Workers == nil {
		o.Workers = []int{1, 8, 32}
	}
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Warmup == 0 {
		o.Warmup = o.Duration / 4
	}
	if o.Keys == 0 {
		o.Keys = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// LatencySweepPoint is one (backend, workers) cell. Latencies are
// nanoseconds; zero step/fsync quantiles mean the cell has no such samples
// (memory backend never fsyncs).
type LatencySweepPoint struct {
	Backend BackendKind
	Workers int
	// Requests completed in the measurement window and their rate.
	Requests   int64
	Throughput float64
	// End-to-end request latency, client-observed.
	P50, P90, P99, Max, Mean int64
	// Step-commit latency from the runtime's telemetry histogram.
	StepP50, StepP99 int64
	// WAL fsync latency, durable backends only.
	FsyncP50, FsyncP99 int64
	Elapsed            time.Duration
}

// LatencySweep runs every (backend, workers) cell against a fresh store and
// a fresh deployment with telemetry attached.
func LatencySweep(opts LatencySweepOptions) ([]LatencySweepPoint, error) {
	opts = opts.withDefaults()
	var out []LatencySweepPoint
	for _, kind := range opts.Backends {
		for _, workers := range opts.Workers {
			pt, err := latencySweepPoint(opts, kind, workers)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// latencySweepPoint measures one cell: warmup, reset the telemetry
// histograms (SnapshotReset starts the measurement window clean), measure,
// then merge the per-worker request histograms into the reported
// distribution.
func latencySweepPoint(opts LatencySweepOptions, kind BackendKind, workers int) (LatencySweepPoint, error) {
	var store storage.Backend
	var wal *walstore.Store
	switch kind {
	case BackendMemory:
		store = dynamo.NewStore()
	case BackendWALBatched, BackendWALEach, BackendWALNoSync:
		dir, err := os.MkdirTemp("", "beldi-latency-sweep-*")
		if err != nil {
			return LatencySweepPoint{}, err
		}
		defer os.RemoveAll(dir)
		policy := walstore.SyncBatched
		switch kind {
		case BackendWALEach:
			policy = walstore.SyncEach
		case BackendWALNoSync:
			policy = walstore.SyncNone
		}
		wal, err = walstore.Open(dir, walstore.Options{Sync: policy})
		if err != nil {
			return LatencySweepPoint{}, err
		}
		defer wal.Close()
		store = wal
	default:
		return LatencySweepPoint{}, fmt.Errorf("bench: latency sweep: unknown backend %q", kind)
	}

	tel := beldi.NewTelemetry()
	plat := platform.New(platform.Options{
		ConcurrencyLimit: workers * 2,
		Seed:             opts.Seed,
		IDs:              &uuid.Seq{Prefix: "req"},
	})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: beldi.ModeBeldi,
		Config: beldi.Config{RowCap: 16}, Telemetry: tel,
	})
	d.Function("step", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		m := input.Map()
		if err := e.Write("state", m["Key"].Str(), m["Val"]); err != nil {
			return beldi.Null, err
		}
		return beldi.Null, nil
	}, "state")
	defer d.Stop()

	stepHist := tel.Registry.Histogram("core.step.step_commit")
	fsyncHist := tel.Registry.Histogram("wal.fsync")

	// Each worker records into its own histogram — no cross-worker
	// contention on the measurement itself — merged after the run.
	locals := make([]*hist.Histogram, workers)
	for i := range locals {
		locals[i] = &hist.Histogram{}
	}
	run := func(deadline time.Time) error {
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var firstErr error
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; time.Now().Before(deadline); i++ {
					key := fmt.Sprintf("k%04d", (w*31+i)%opts.Keys)
					t0 := time.Now()
					_, err := d.Invoke("step", beldi.Map(map[string]beldi.Value{
						"Key": beldi.Str(key),
						"Val": beldi.Int(int64(i)),
					}))
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					locals[w].Record(time.Since(t0))
				}
			}(w)
		}
		wg.Wait()
		return firstErr
	}

	if err := run(time.Now().Add(opts.Warmup)); err != nil {
		return LatencySweepPoint{}, fmt.Errorf("bench: latency sweep (%s/%d, warmup): %w", kind, workers, err)
	}
	// Drop the warmup samples everywhere: the registry histograms via
	// SnapshotReset (the interval-window primitive), the locals via Reset.
	stepHist.SnapshotReset()
	fsyncHist.SnapshotReset()
	for _, h := range locals {
		h.Reset()
	}

	start := time.Now()
	if err := run(start.Add(opts.Duration)); err != nil {
		return LatencySweepPoint{}, fmt.Errorf("bench: latency sweep (%s/%d): %w", kind, workers, err)
	}
	elapsed := time.Since(start)

	var reqs hist.Histogram
	for _, h := range locals {
		reqs.Merge(h)
	}
	step := stepHist.Snapshot()
	fsync := fsyncHist.Snapshot()
	pt := LatencySweepPoint{
		Backend:    kind,
		Workers:    workers,
		Requests:   reqs.Count(),
		Throughput: float64(reqs.Count()) / elapsed.Seconds(),
		P50:        int64(reqs.Quantile(0.5)),
		P90:        int64(reqs.Quantile(0.9)),
		P99:        int64(reqs.P99()),
		Max:        int64(reqs.Max()),
		Mean:       int64(reqs.Mean()),
		StepP50:    int64(step.Median()),
		StepP99:    int64(step.P99()),
		Elapsed:    elapsed,
	}
	if fsync.Count() > 0 {
		pt.FsyncP50 = int64(fsync.Median())
		pt.FsyncP99 = int64(fsync.P99())
	}
	return pt, nil
}

// --- push vs poll trigger latency -----------------------------------------

// TriggerLatencySweep measures enqueue→receive latency through the durable
// queue and its event-source mapper, with the commit-stream push path on
// ("push": an idle mapper blocks on the queue table's watch subscription and
// an enqueue wakes it immediately) and off ("poll": the Watcher capability
// is stripped from the store, so the idle mapper sleeps out PollInterval —
// the pre-push behavior, whose p50 is bounded below by the poll cadence).
// The gap between the two cells is what the push primitive buys; the smoke
// test pins it at ≥5× on the p50.

// Trigger modes.
const (
	TriggerPush = "push"
	TriggerPoll = "poll"
)

// TriggerLatencySweepOptions configure a push-vs-poll trigger sweep.
type TriggerLatencySweepOptions struct {
	// Backends are the storage configurations swept. nil means memory and
	// wal-batched.
	Backends []BackendKind
	// Modes are the trigger modes per backend. nil means push then poll.
	Modes []string
	// PollInterval is the mapper's idle poll delay — the latency floor the
	// poll cells are bounded by. 0 means platform.DefaultPollInterval.
	PollInterval time.Duration
	// Messages is the closed-loop message count measured per cell. 0 means
	// 48.
	Messages int
	// Warmup messages run and are discarded before measurement. 0 means
	// Messages/4.
	Warmup int
	Seed   int64
}

func (o TriggerLatencySweepOptions) withDefaults() TriggerLatencySweepOptions {
	if o.Backends == nil {
		o.Backends = []BackendKind{BackendMemory, BackendWALBatched}
	}
	if o.Modes == nil {
		o.Modes = []string{TriggerPush, TriggerPoll}
	}
	if o.PollInterval == 0 {
		o.PollInterval = platform.DefaultPollInterval
	}
	if o.Messages == 0 {
		o.Messages = 48
	}
	if o.Warmup == 0 {
		o.Warmup = o.Messages / 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// TriggerLatencyPoint is one (backend, mode) cell. Latencies are
// nanoseconds from just before Enqueue to the triggered handler running.
type TriggerLatencyPoint struct {
	Backend      BackendKind
	Mode         string
	PollInterval time.Duration
	Messages     int64
	// Enqueue→receive latency distribution.
	P50, P90, P99, Max, Mean int64
	// Wakeups counts idle waits ended by a push event (0 in poll mode) —
	// the mapper's own evidence of which path it took.
	Wakeups int64
	Elapsed time.Duration
}

// pushless strips every optional capability from a Backend — in particular
// storage.Watcher — pinning consumers to their poll fallback. Interface
// embedding promotes only Backend's own methods, so the wrapped store's
// Watch never reaches the capability probe.
type pushless struct{ storage.Backend }

// TriggerLatencySweep runs every (backend, mode) cell against a fresh
// store, queue and mapper.
func TriggerLatencySweep(opts TriggerLatencySweepOptions) ([]TriggerLatencyPoint, error) {
	opts = opts.withDefaults()
	var out []TriggerLatencyPoint
	for _, kind := range opts.Backends {
		for _, mode := range opts.Modes {
			pt, err := triggerLatencyPoint(opts, kind, mode)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// triggerLatencyPoint measures one cell closed-loop: enqueue one message
// carrying its send time, wait for the triggered handler to report the
// enqueue→receive gap, repeat. Between messages the mapper is idle — parked
// on its push subscription or its poll timer — which is exactly the state
// whose wake latency the cell measures.
func triggerLatencyPoint(opts TriggerLatencySweepOptions, kind BackendKind, mode string) (TriggerLatencyPoint, error) {
	var store storage.Backend
	switch kind {
	case BackendMemory:
		store = dynamo.NewStore()
	case BackendWALBatched, BackendWALEach, BackendWALNoSync:
		dir, err := os.MkdirTemp("", "beldi-trigger-sweep-*")
		if err != nil {
			return TriggerLatencyPoint{}, err
		}
		defer os.RemoveAll(dir)
		policy := walstore.SyncBatched
		switch kind {
		case BackendWALEach:
			policy = walstore.SyncEach
		case BackendWALNoSync:
			policy = walstore.SyncNone
		}
		wal, err := walstore.Open(dir, walstore.Options{Sync: policy})
		if err != nil {
			return TriggerLatencyPoint{}, err
		}
		defer wal.Close()
		store = wal
	default:
		return TriggerLatencyPoint{}, fmt.Errorf("bench: trigger sweep: unknown backend %q", kind)
	}
	switch mode {
	case TriggerPush:
	case TriggerPoll:
		store = pushless{store}
	default:
		return TriggerLatencyPoint{}, fmt.Errorf("bench: trigger sweep: unknown mode %q", mode)
	}

	broker := queue.NewBroker(queue.BrokerOptions{Store: store, IDs: &uuid.Seq{Prefix: "m"}})
	broker.MustCreate("lat", queue.Options{VisibilityTimeout: time.Minute})
	plat := platform.New(platform.Options{Seed: opts.Seed, IDs: &uuid.Seq{Prefix: "req"}})
	recv := make(chan time.Duration, 16)
	plat.Register("recv", func(inv *platform.Invocation, input platform.Value) (platform.Value, error) {
		recv <- time.Since(time.Unix(0, input.Int()))
		return dynamo.Null, nil
	}, 0)
	mapper := platform.MustNewMapper(broker, plat, platform.EventSourceOptions{
		Queue: "lat", Function: "recv", BatchSize: 1, PollInterval: opts.PollInterval,
	})
	mapper.Start()
	defer mapper.Stop()

	var h hist.Histogram
	start := time.Now()
	total := opts.Warmup + opts.Messages
	for i := 0; i < total; i++ {
		if _, err := broker.Enqueue("lat", dynamo.NInt(time.Now().UnixNano())); err != nil {
			return TriggerLatencyPoint{}, err
		}
		select {
		case d := <-recv:
			if i >= opts.Warmup {
				h.Record(d)
			}
		case <-time.After(10 * time.Second):
			return TriggerLatencyPoint{}, fmt.Errorf("bench: trigger sweep (%s/%s): message %d never delivered", kind, mode, i)
		}
	}
	return TriggerLatencyPoint{
		Backend:      kind,
		Mode:         mode,
		PollInterval: opts.PollInterval,
		Messages:     h.Count(),
		P50:          int64(h.Quantile(0.5)),
		P90:          int64(h.Quantile(0.9)),
		P99:          int64(h.P99()),
		Max:          int64(h.Max()),
		Mean:         int64(h.Mean()),
		Wakeups:      mapper.Metrics().Wakeups.Load(),
		Elapsed:      time.Since(start),
	}, nil
}
