package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/uuid"
)

// ShardSweep measures the substrate-level scaling the sharded store buys
// Beldi's hot logging path: committed steps per second versus the store's
// shard count, at a fixed offered load of closed-loop workers, with the
// group-commit path on and off. The store runs flush-bound (CommitCost holds
// each shard's write latch for a per-batch flush window, the way a real
// partition holds its latch across the persistence round), so one shard
// serializes every logged write behind one latch — the seed's behavior —
// while N shards give N independent commit streams and group commit
// amortizes the flush across every write queued behind it. This is the
// partition-scaling experiment of Netherite ("Serverless Workflows with
// Durable Functions and Netherite"), transplanted onto Beldi's substrate.

// ShardSweepOptions configure a shard-scaling sweep.
type ShardSweepOptions struct {
	// Shards are the shard counts to sweep. nil means 1, 2, 4, 8.
	Shards []int
	// Commit selects the commit modes per shard count: false = plain,
	// true = group commit. nil means both, plain first.
	Commit []bool
	// Spec selects speculation modes per cell: false = synchronous (the
	// seed's behavior), true = the commit-pipelining overlay
	// (DeploymentOptions.Speculation) with the entry reply fenced on the
	// durability watermark. nil means synchronous only, keeping the
	// figure's historical series unchanged.
	Spec []bool
	// StepsPerInvoke is the number of logged write steps per workflow
	// invocation. 0 means 1 (the historical single-step shape). Speculation
	// amortizes per-step round trips across one group commit, so its
	// advantage grows with this knob — the ≥10× demonstration runs 16.
	StepsPerInvoke int
	// Workers is the fixed offered load: closed-loop invokers running for
	// the whole point. 0 means 32.
	Workers int
	// Duration is the measurement window per point. 0 means 400ms.
	Duration time.Duration
	// Keys is the number of distinct item keys the workers write, spread
	// uniformly (more keys than shards, so striping has partitions to
	// distribute). 0 means 256.
	Keys int
	// Flush is the per-batch commit-latch cost charged inside the shard
	// critical section. 0 means 300µs.
	Flush time.Duration
	// Scale compresses the per-op cloud latency; 0 means 0.02.
	Scale float64
	Seed  int64
}

func (o ShardSweepOptions) withDefaults() ShardSweepOptions {
	if o.Shards == nil {
		o.Shards = []int{1, 2, 4, 8}
	}
	if o.Commit == nil {
		o.Commit = []bool{false, true}
	}
	if o.Spec == nil {
		o.Spec = []bool{false}
	}
	if o.StepsPerInvoke == 0 {
		o.StepsPerInvoke = 1
	}
	if o.Workers == 0 {
		o.Workers = 32
	}
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Keys == 0 {
		o.Keys = 256
	}
	if o.Flush == 0 {
		o.Flush = 300 * time.Microsecond
	}
	if o.Scale == 0 {
		o.Scale = 0.02
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ShardSweepPoint is one (shard count, commit mode) cell of the sweep.
type ShardSweepPoint struct {
	Shards  int
	Batched bool // group-commit path on
	Spec    bool // commit-pipelining overlay on
	// Steps is the number of logged write steps committed in the window;
	// Throughput is Steps per second.
	Steps      int64
	Throughput float64
	// GroupCommits / MeanBatch describe the batcher's amortization:
	// committed batches and average writes per batch (1.0 when unbatched).
	GroupCommits int64
	MeanBatch    float64
	// PipeFlushes / PipeBatch describe the speculation overlay's
	// amortization on spec cells: committer group commits and post-image
	// rows per batch (0 when Spec is off).
	PipeFlushes int64
	PipeBatch   float64
	Elapsed     time.Duration
}

// ShardSweep runs the full grid: every shard count, group commit off then
// on, each against a fresh flush-bound system under the same offered load.
func ShardSweep(opts ShardSweepOptions) ([]ShardSweepPoint, error) {
	opts = opts.withDefaults()
	var out []ShardSweepPoint
	for _, shards := range opts.Shards {
		if shards < 1 {
			return nil, fmt.Errorf("bench: shard sweep: invalid shard count %d", shards)
		}
		for _, batched := range opts.Commit {
			for _, spec := range opts.Spec {
				pt, err := shardSweepPoint(opts, shards, batched, spec)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// shardSweepPoint measures one cell: a fresh deployment whose single SSF
// logs one write step per invocation, hammered by Workers closed-loop
// invokers for Duration.
func shardSweepPoint(opts ShardSweepOptions, shards int, batched, spec bool) (ShardSweepPoint, error) {
	store := dynamo.NewStore(
		dynamo.WithShards(shards),
		dynamo.WithGroupCommit(batched),
		dynamo.WithLatency(dynamo.CommitCost{
			Inner: dynamo.NewCloudLatency(opts.Scale, opts.Seed),
			Flush: opts.Flush,
		}),
	)
	plat := platform.New(platform.Options{
		ConcurrencyLimit: opts.Workers * 2,
		Seed:             opts.Seed,
		IDs:              &uuid.Seq{Prefix: "req"},
	})
	dopts := beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: beldi.ModeBeldi,
		Config: beldi.Config{RowCap: 16},
	}
	if spec {
		dopts.Speculation = &beldi.SpeculationOptions{}
	}
	d := beldi.NewDeployment(dopts)
	stepsPer := opts.StepsPerInvoke
	d.Function("step", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		m := input.Map()
		key := m["Key"].Str()
		for j := 0; j < stepsPer; j++ {
			k := key
			if stepsPer > 1 {
				k = fmt.Sprintf("%s-%d", key, j)
			}
			if err := e.Write("state", k, m["Val"]); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Null, nil
	}, "state")

	var steps atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	before := store.Metrics().Snapshot()
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				key := fmt.Sprintf("k%04d", (w*31+i)%opts.Keys)
				_, err := d.Invoke("step", beldi.Map(map[string]beldi.Value{
					"Key": beldi.Str(key),
					"Val": beldi.Int(int64(i)),
				}))
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				steps.Add(int64(stepsPer))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	d.Stop()
	if firstErr != nil {
		return ShardSweepPoint{}, fmt.Errorf("bench: shard sweep (%d shards, batched=%v, spec=%v): %w", shards, batched, spec, firstErr)
	}
	delta := store.Metrics().Snapshot().Sub(before)
	pt := ShardSweepPoint{
		Shards:       shards,
		Batched:      batched,
		Spec:         spec,
		Steps:        steps.Load(),
		Throughput:   float64(steps.Load()) / elapsed.Seconds(),
		GroupCommits: delta.GroupCommits,
		MeanBatch:    1,
		Elapsed:      elapsed,
	}
	if delta.GroupCommits > 0 {
		pt.MeanBatch = float64(delta.GroupCommitOps) / float64(delta.GroupCommits)
	}
	if p := d.Pipeline(); p != nil {
		st := p.Snapshot()
		pt.PipeFlushes = st.Flushes
		if st.Flushes > 0 {
			pt.PipeBatch = float64(st.FlushedRows) / float64(st.Flushes)
		}
	}
	return pt, nil
}
