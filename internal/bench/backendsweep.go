package bench

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/uuid"
	"repro/internal/walstore"
)

// BackendSweep measures what durability costs on Beldi's hot logging path:
// committed steps per second for the same closed-loop workload on the
// in-memory backend versus the WAL-backed store, with fsync group-commit
// batching on and off. The memory backend runs with zero simulated latency
// (the raw substrate ceiling); the walstore points pay real disk writes and
// real fsyncs, so the batched-vs-each gap is the measured amortization of
// the group-commit flush — the same lever Netherite pulls by batching a
// partition's speculative commits into one persistence round.

// BackendKind names one backend configuration of the sweep.
type BackendKind string

// The swept backend configurations.
const (
	// BackendMemory is the in-memory dynamo store, zero latency.
	BackendMemory BackendKind = "memory"
	// BackendWALBatched is the walstore with group-committed fsyncs.
	BackendWALBatched BackendKind = "wal-batched"
	// BackendWALEach is the walstore fsyncing every record individually.
	BackendWALEach BackendKind = "wal-each"
	// BackendWALNoSync is the walstore journaling without fsync — isolates
	// the write-path cost from the flush cost.
	BackendWALNoSync BackendKind = "wal-nosync"
)

// BackendSweepOptions configure a backend sweep.
type BackendSweepOptions struct {
	// Backends are the configurations to sweep. nil means all four.
	Backends []BackendKind
	// Workers is the fixed offered load of closed-loop invokers. 0 means 32.
	Workers int
	// Duration is the measurement window per point. 0 means 400ms.
	Duration time.Duration
	// Keys is the number of distinct item keys written. 0 means 256.
	Keys int
	// Spec selects speculation modes per cell: false = synchronous, true =
	// the commit-pipelining overlay. nil means synchronous only (the
	// historical series).
	Spec []bool
	// StepsPerInvoke is the number of logged write steps per workflow
	// invocation. 0 means 1. See ShardSweepOptions.StepsPerInvoke.
	StepsPerInvoke int
	Seed           int64
}

func (o BackendSweepOptions) withDefaults() BackendSweepOptions {
	if o.Backends == nil {
		o.Backends = []BackendKind{BackendMemory, BackendWALNoSync, BackendWALBatched, BackendWALEach}
	}
	if o.Spec == nil {
		o.Spec = []bool{false}
	}
	if o.StepsPerInvoke == 0 {
		o.StepsPerInvoke = 1
	}
	if o.Workers == 0 {
		o.Workers = 32
	}
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Keys == 0 {
		o.Keys = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// BackendSweepPoint is one backend cell of the sweep.
type BackendSweepPoint struct {
	Backend BackendKind
	// Spec reports whether the commit-pipelining overlay was on.
	Spec bool
	// Steps is the number of logged write steps committed in the window;
	// Throughput is Steps per second.
	Steps      int64
	Throughput float64
	// Fsyncs counts disk flushes in the window and MeanBatch the records
	// per commit-path flush (0 for backends that never flush); their
	// relation is the group-commit amortization the figure shows.
	Fsyncs    int64
	MeanBatch float64
	// WALBytes is the log volume appended during the window.
	WALBytes int64
	// PipeFlushes / PipeBatch describe the speculation overlay's
	// amortization on spec cells (0 when Spec is off).
	PipeFlushes int64
	PipeBatch   float64
	Elapsed     time.Duration
}

// BackendSweep runs every configured backend cell under the same offered
// load, each against a fresh store (walstore cells journal into a fresh
// temp directory, removed afterwards).
func BackendSweep(opts BackendSweepOptions) ([]BackendSweepPoint, error) {
	opts = opts.withDefaults()
	var out []BackendSweepPoint
	for _, kind := range opts.Backends {
		for _, spec := range opts.Spec {
			pt, err := backendSweepPoint(opts, kind, spec)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// backendSweepPoint measures one cell: a fresh deployment whose single SSF
// logs one write step per invocation, hammered by closed-loop invokers.
func backendSweepPoint(opts BackendSweepOptions, kind BackendKind, spec bool) (BackendSweepPoint, error) {
	var store storage.Backend
	var wal *walstore.Store
	switch kind {
	case BackendMemory:
		store = dynamo.NewStore()
	case BackendWALBatched, BackendWALEach, BackendWALNoSync:
		dir, err := os.MkdirTemp("", "beldi-backend-sweep-*")
		if err != nil {
			return BackendSweepPoint{}, err
		}
		defer os.RemoveAll(dir)
		policy := walstore.SyncBatched
		switch kind {
		case BackendWALEach:
			policy = walstore.SyncEach
		case BackendWALNoSync:
			policy = walstore.SyncNone
		}
		wal, err = walstore.Open(dir, walstore.Options{Sync: policy})
		if err != nil {
			return BackendSweepPoint{}, err
		}
		defer wal.Close()
		store = wal
	default:
		return BackendSweepPoint{}, fmt.Errorf("bench: backend sweep: unknown backend %q", kind)
	}

	plat := platform.New(platform.Options{
		ConcurrencyLimit: opts.Workers * 2,
		Seed:             opts.Seed,
		IDs:              &uuid.Seq{Prefix: "req"},
	})
	dopts := beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: beldi.ModeBeldi,
		Config: beldi.Config{RowCap: 16},
	}
	if spec {
		dopts.Speculation = &beldi.SpeculationOptions{}
	}
	d := beldi.NewDeployment(dopts)
	stepsPer := opts.StepsPerInvoke
	d.Function("step", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		m := input.Map()
		key := m["Key"].Str()
		for j := 0; j < stepsPer; j++ {
			k := key
			if stepsPer > 1 {
				k = fmt.Sprintf("%s-%d", key, j)
			}
			if err := e.Write("state", k, m["Val"]); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Null, nil
	}, "state")

	var baseFsyncs, baseBatches, baseBatched, baseBytes int64
	if wal != nil {
		baseFsyncs = wal.WAL().Fsyncs.Load()
		baseBatches = wal.WAL().SyncBatches.Load()
		baseBatched = wal.WAL().BatchedRecords.Load()
		baseBytes = wal.WAL().BytesAppended.Load()
	}
	var steps atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				key := fmt.Sprintf("k%04d", (w*31+i)%opts.Keys)
				_, err := d.Invoke("step", beldi.Map(map[string]beldi.Value{
					"Key": beldi.Str(key),
					"Val": beldi.Int(int64(i)),
				}))
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				steps.Add(int64(stepsPer))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	d.Stop()
	if firstErr != nil {
		return BackendSweepPoint{}, fmt.Errorf("bench: backend sweep (%s, spec=%v): %w", kind, spec, firstErr)
	}
	pt := BackendSweepPoint{
		Backend:    kind,
		Spec:       spec,
		Steps:      steps.Load(),
		Throughput: float64(steps.Load()) / elapsed.Seconds(),
		Elapsed:    elapsed,
	}
	if p := d.Pipeline(); p != nil {
		st := p.Snapshot()
		pt.PipeFlushes = st.Flushes
		if st.Flushes > 0 {
			pt.PipeBatch = float64(st.FlushedRows) / float64(st.Flushes)
		}
	}
	if wal != nil {
		pt.Fsyncs = wal.WAL().Fsyncs.Load() - baseFsyncs
		pt.WALBytes = wal.WAL().BytesAppended.Load() - baseBytes
		if batches := wal.WAL().SyncBatches.Load() - baseBatches; batches > 0 {
			pt.MeanBatch = float64(wal.WAL().BatchedRecords.Load()-baseBatched) / float64(batches)
		} else if pt.Fsyncs > 0 {
			pt.MeanBatch = 1
		}
	}
	return pt, nil
}
