package bench

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/beldi"
	"repro/internal/hist"
	"repro/internal/platform"
	"repro/internal/remote"
	"repro/internal/storage"
	"repro/internal/uuid"
	"repro/internal/walstore"
)

// RemoteSweep measures what the network seam costs on Beldi's hot logging
// path: committed steps per second and request p99 for the same closed-loop
// workload with the walstore in-process versus behind the internal/remote
// wire protocol, at several simulated server-side RTTs. The zero-RTT remote
// cell isolates the framing/pipelining overhead itself; the delayed cells
// show how the protocol's per-step round trips compound with distance — the
// regime the paper's DynamoDB deployment actually runs in, where each store
// op costs single-digit milliseconds of network before any work happens.

// RemoteSweepOptions configure a remote sweep.
type RemoteSweepOptions struct {
	// RTTs are the simulated server-side delays for the remote cells.
	// nil means {0, 500µs, 2ms}.
	RTTs []time.Duration
	// Workers is the fixed offered load of closed-loop invokers. 0 means 32.
	Workers int
	// Duration is the measurement window per point. 0 means 400ms.
	Duration time.Duration
	// Keys is the number of distinct item keys written. 0 means 256.
	Keys int
	Seed int64
}

func (o RemoteSweepOptions) withDefaults() RemoteSweepOptions {
	if o.RTTs == nil {
		o.RTTs = []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond}
	}
	if o.Workers == 0 {
		o.Workers = 32
	}
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Keys == 0 {
		o.Keys = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RemoteSweepPoint is one cell of the sweep: the in-process baseline
// (Remote=false) or the wire protocol at one simulated RTT.
type RemoteSweepPoint struct {
	// Remote is false for the in-process walstore baseline.
	Remote bool
	// RTT is the simulated server-side delay per request (remote cells).
	RTT time.Duration
	// Steps is the number of committed write steps in the window;
	// Throughput is Steps per second.
	Steps      int64
	Throughput float64
	// P50/P99 are client-observed request latencies.
	P50, P99 time.Duration
	// RPCs and RPCP99 are the wire-level op count and per-RPC p99 for
	// remote cells (zero for the baseline) — the per-request store-op
	// multiplier is RPCs/Steps.
	RPCs    int64
	RPCP99  time.Duration
	Elapsed time.Duration
}

// RemoteSweep runs the in-process baseline and one remote cell per RTT,
// each against a fresh walstore in a fresh temp directory.
func RemoteSweep(opts RemoteSweepOptions) ([]RemoteSweepPoint, error) {
	opts = opts.withDefaults()
	out := make([]RemoteSweepPoint, 0, len(opts.RTTs)+1)
	pt, err := remoteSweepPoint(opts, false, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, pt)
	for _, rtt := range opts.RTTs {
		pt, err := remoteSweepPoint(opts, true, rtt)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// remoteSweepPoint measures one cell: a fresh walstore (optionally behind a
// wire server with a simulated delay), a deployment whose single SSF logs
// one write step per invocation, and closed-loop invokers.
func remoteSweepPoint(opts RemoteSweepOptions, viaWire bool, rtt time.Duration) (RemoteSweepPoint, error) {
	dir, err := os.MkdirTemp("", "beldi-remote-sweep-*")
	if err != nil {
		return RemoteSweepPoint{}, err
	}
	defer os.RemoveAll(dir)
	wal, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		return RemoteSweepPoint{}, err
	}
	defer wal.Close()

	var store storage.Backend = wal
	var client *remote.Client
	if viaWire {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return RemoteSweepPoint{}, err
		}
		srv := remote.NewServer(wal, remote.ServeOptions{Delay: rtt})
		go srv.Serve(lis)
		defer srv.Close()
		client, err = remote.Dial(lis.Addr().String(), remote.Options{})
		if err != nil {
			return RemoteSweepPoint{}, err
		}
		defer client.Close()
		store = client
	}

	plat := platform.New(platform.Options{
		ConcurrencyLimit: opts.Workers * 2,
		Seed:             opts.Seed,
		IDs:              &uuid.Seq{Prefix: "req"},
	})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: beldi.ModeBeldi,
		Config: beldi.Config{RowCap: 16},
	})
	d.Function("step", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		m := input.Map()
		if err := e.Write("state", m["Key"].Str(), m["Val"]); err != nil {
			return beldi.Null, err
		}
		return beldi.Null, nil
	}, "state")

	var lat hist.Histogram
	var steps atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				key := fmt.Sprintf("k%04d", (w*31+i)%opts.Keys)
				t0 := time.Now()
				_, err := d.Invoke("step", beldi.Map(map[string]beldi.Value{
					"Key": beldi.Str(key),
					"Val": beldi.Int(int64(i)),
				}))
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				lat.Record(time.Since(t0))
				steps.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	d.Stop()
	if firstErr != nil {
		return RemoteSweepPoint{}, fmt.Errorf("bench: remote sweep (remote=%v rtt=%v): %w", viaWire, rtt, firstErr)
	}
	pt := RemoteSweepPoint{
		Remote:     viaWire,
		RTT:        rtt,
		Steps:      steps.Load(),
		Throughput: float64(steps.Load()) / elapsed.Seconds(),
		P50:        lat.Median(),
		P99:        lat.P99(),
		Elapsed:    elapsed,
	}
	if client != nil {
		pt.RPCs = client.Stats().Snapshot().RPCs
		pt.RPCP99 = client.RPCLatency().P99()
	}
	return pt, nil
}
