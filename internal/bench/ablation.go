package bench

import (
	"fmt"
	"time"

	"repro/beldi"
	"repro/internal/core"
	"repro/internal/hist"
)

// Traversal ablation (§4.1): Beldi finds a linked DAAL's tail with one
// scan+projection round trip; the naive alternative chases NextRow pointers
// with one read per row. The paper credits DynamoDB's scan/filter/
// projection efficiency for keeping deep DAALs cheap (§7.5) — this ablation
// quantifies that design choice as depth grows.

// AblationRow is one (depth, strategy) measurement.
type AblationRow struct {
	Depth    int
	Strategy string // "scan" or "pointer-chase"
	Median   time.Duration
	StoreOps float64 // store round trips per traversal
}

// AblationOptions configure the traversal ablation.
type AblationOptions struct {
	// Depths are the DAAL depths to measure. nil means {1, 5, 10, 20, 40}.
	Depths []int
	// Ops per cell. 0 means 40.
	Ops int
	// Scale compresses simulated latency. 0 means 0.2.
	Scale float64
	Seed  int64
}

// TraversalAblation measures both strategies at each depth.
func TraversalAblation(opts AblationOptions) ([]AblationRow, error) {
	if opts.Depths == nil {
		opts.Depths = []int{1, 5, 10, 20, 40}
	}
	if opts.Ops == 0 {
		opts.Ops = 40
	}
	if opts.Scale == 0 {
		opts.Scale = 0.2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var out []AblationRow
	for _, depth := range opts.Depths {
		for _, strategy := range []string{"scan", "pointer-chase"} {
			row, err := ablationCell(depth, strategy, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: ablation depth=%d %s: %w", depth, strategy, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func ablationCell(depth int, strategy string, opts AblationOptions) (AblationRow, error) {
	const rowCap = 16
	sys := NewSystem(SystemOptions{
		Mode: beldi.ModeBeldi, Scale: opts.Scale, Seed: opts.Seed,
		Concurrency: 10000,
		Config:      beldi.Config{RowCap: rowCap, T: time.Hour},
	})
	sys.D.Function("fill", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		for i := int64(0); i < in.Int(); i++ {
			if err := e.Write("data", "k", beldi.Str(value16)); err != nil {
				return beldi.Null, err
			}
		}
		return beldi.Null, nil
	}, "data")
	fillWrites := (depth-1)*rowCap + 1
	if _, err := sys.D.Invoke("fill", beldi.Int(int64(fillWrites))); err != nil {
		return AblationRow{}, err
	}

	rt := sys.D.Runtime("fill")
	h := &hist.Histogram{}
	before := sys.Store.Metrics().Snapshot()
	for i := 0; i < opts.Ops; i++ {
		t0 := time.Now()
		var err error
		if strategy == "scan" {
			_, err = core.TailValueByScan(rt, "data", "k")
		} else {
			_, err = core.TailValueByPointerChase(rt, "data", "k")
		}
		if err != nil {
			return AblationRow{}, err
		}
		h.Record(time.Since(t0))
	}
	diff := sys.Store.Metrics().Snapshot().Sub(before)
	return AblationRow{
		Depth:    depth,
		Strategy: strategy,
		Median:   h.Median(),
		StoreOps: float64(diff.TotalOps()) / float64(opts.Ops),
	}, nil
}
