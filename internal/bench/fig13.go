package bench

import (
	"fmt"
	"time"

	"repro/beldi"
	"repro/internal/hist"
)

// Figure 13 (and Figure 25 in Appendix C): median and 99th-percentile
// latency of Beldi's four primitives — read, write, condWrite, invoke —
// against the raw baseline and the cross-table-transaction comparator, at
// very low load with the target key's linked DAAL pre-populated to a fixed
// depth (20 rows in Fig 13, 5 in Fig 25). Keys are 1 byte, values 16 bytes
// (§7.3).

// Fig13Row is one bar of the figure.
type Fig13Row struct {
	Op     string
	Mode   beldi.Mode
	Median time.Duration
	P99    time.Duration
}

// Fig13Options configure the microbenchmark.
type Fig13Options struct {
	// DAALRows pre-populates the key's linked DAAL (20 for Fig 13, 5 for
	// Fig 25).
	DAALRows int
	// Ops is the number of measured operations per cell. It must stay at
	// or below RowCap so measurement itself does not grow the DAAL by more
	// than one row. 0 means 60.
	Ops int
	// RowCap is the per-row log capacity; large enough that prefill, not
	// measurement, sets the depth. 0 means 64.
	RowCap int
	// Scale compresses simulated latency.
	Scale float64
	Seed  int64
}

func (o Fig13Options) withDefaults() Fig13Options {
	if o.DAALRows == 0 {
		o.DAALRows = 20
	}
	if o.Ops == 0 {
		o.Ops = 60
	}
	if o.RowCap == 0 {
		o.RowCap = 64
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// value16 is the 16-byte value of §7.3.
const value16 = "0123456789abcdef"

// Fig13 runs the microbenchmark and returns rows grouped by operation then
// mode (Baseline, Beldi, CrossTable), matching the figure's bar order.
func Fig13(opts Fig13Options) ([]Fig13Row, error) {
	opts = opts.withDefaults()
	ops := []string{"Read", "Write", "CondWrite", "Invoke"}
	modes := []beldi.Mode{beldi.ModeBaseline, beldi.ModeBeldi, beldi.ModeCrossTable}
	var out []Fig13Row
	for _, op := range ops {
		for _, mode := range modes {
			med, p99, err := fig13Cell(op, mode, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: fig13 %s/%s: %w", op, ModeLabel(mode), err)
			}
			out = append(out, Fig13Row{Op: op, Mode: mode, Median: med, P99: p99})
		}
	}
	return out, nil
}

func fig13Cell(op string, mode beldi.Mode, opts Fig13Options) (med, p99 time.Duration, err error) {
	sys := NewSystem(SystemOptions{
		Mode: mode, Scale: opts.Scale, Seed: opts.Seed,
		Concurrency: 10000,
		Config:      beldi.Config{RowCap: opts.RowCap, T: time.Hour},
	})
	h := &hist.Histogram{}
	timed := func(f func() error) error {
		t0 := time.Now()
		if err := f(); err != nil {
			return err
		}
		h.Record(time.Since(t0))
		return nil
	}

	sys.D.Function("noop", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return beldi.Null, nil
	})
	sys.D.Function("op", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		if fill, ok := in.MapGet("fill"); ok {
			// Pre-population request: grow this SSF's own DAAL (data
			// sovereignty: only the owner can write its tables).
			for i := int64(0); i < fill.Int(); i++ {
				if err := e.Write("data", "k", beldi.Str(value16)); err != nil {
					return beldi.Null, err
				}
			}
			return beldi.Null, nil
		}
		switch op {
		case "Read":
			return beldi.Null, timed(func() error {
				_, err := e.Read("data", "k")
				return err
			})
		case "Write":
			return beldi.Null, timed(func() error {
				return e.Write("data", "k", beldi.Str(value16))
			})
		case "CondWrite":
			return beldi.Null, timed(func() error {
				_, err := e.CondWrite("data", "k", beldi.Str(value16),
					beldi.Not(beldi.ValueEq(beldi.Str("never"))))
				return err
			})
		case "Invoke":
			return beldi.Null, timed(func() error {
				_, err := e.SyncInvoke("noop", beldi.Null)
				return err
			})
		}
		return beldi.Null, fmt.Errorf("unknown op %s", op)
	}, "data")

	// Pre-populate the DAAL depth. Baseline keys are single rows, so only
	// the logged modes need depth; the single write still seeds the value
	// for all modes.
	fillWrites := 1
	if mode != beldi.ModeBaseline && opts.DAALRows > 1 {
		fillWrites = (opts.DAALRows-1)*opts.RowCap + 1
	}
	if _, err := sys.D.Invoke("op", beldi.Map(map[string]beldi.Value{
		"fill": beldi.Int(int64(fillWrites)),
	})); err != nil {
		return 0, 0, err
	}

	// Warm the op function (cold start + first-row setup), then measure
	// sequential low-load operations.
	if _, err := sys.D.Invoke("op", beldi.Null); err != nil {
		return 0, 0, err
	}
	h.Reset()
	for i := 0; i < opts.Ops; i++ {
		if _, err := sys.D.Invoke("op", beldi.Null); err != nil {
			return 0, 0, err
		}
	}
	return h.Median(), h.P99(), nil
}
