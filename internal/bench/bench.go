// Package bench is the experiment harness behind every figure in the
// paper's evaluation (§7). cmd/figures prints the same series the paper
// plots; bench_test.go wraps the same entry points as testing.B benchmarks.
//
// Absolute numbers are simulator-relative (the substrate recreates
// DynamoDB/Lambda cost *structure*, not AWS hardware), so each experiment's
// claim is the paper's shape: who wins, by what factor, and where the knees
// and crossovers sit. EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/uuid"
)

// System is a fully rigged deployment: store + platform + Beldi runtime in
// one mode, with cloud-shaped latency.
type System struct {
	Store storage.Backend
	Plat  *platform.Platform
	D     *beldi.Deployment
	Mode  beldi.Mode
	Scale float64
}

// SystemOptions configure NewSystem.
type SystemOptions struct {
	Mode beldi.Mode
	// Scale compresses all simulated latencies (1.0 = DynamoDB-like
	// milliseconds; benchmarks use ~0.1–0.3 to run quickly).
	Scale float64
	// Seed drives every stochastic component.
	Seed int64
	// Concurrency is the platform's lambda limit (the paper's 1,000-Lambda
	// bottleneck; sweeps scale it down with Scale).
	Concurrency int
	// Config tunes Beldi.
	Config beldi.Config
}

// NewSystem builds a System.
func NewSystem(opts SystemOptions) *System {
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.Concurrency == 0 {
		opts.Concurrency = platform.DefaultConcurrencyLimit
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	store := dynamo.NewStore(dynamo.WithLatency(dynamo.NewCloudLatency(opts.Scale, opts.Seed)))
	plat := platform.New(platform.Options{
		ConcurrencyLimit: opts.Concurrency,
		// Lambda dispatch costs: ~60ms cold, ~15ms warm (HTTP + SDK + scheduler),
		// scaled with everything else.
		ColdStart: time.Duration(float64(60*time.Millisecond) * opts.Scale),
		WarmStart: time.Duration(float64(15*time.Millisecond) * opts.Scale),
		// DeathStarBench handlers do real work (JSON, templating, business
		// logic) beyond storage round trips.
		HandlerCompute: time.Duration(float64(6*time.Millisecond) * opts.Scale),
		Jitter:         0.2,
		Seed:           opts.Seed,
		IDs:            &uuid.Seq{Prefix: "req"},
	})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: opts.Mode, Config: opts.Config,
	})
	return &System{Store: store, Plat: plat, D: d, Mode: opts.Mode, Scale: opts.Scale}
}

// ModeLabel names modes the way the figures do.
func ModeLabel(m beldi.Mode) string {
	switch m {
	case beldi.ModeBeldi:
		return "Beldi"
	case beldi.ModeCrossTable:
		return "Beldi (cross-table txn)"
	default:
		return "Baseline"
	}
}

// fmtMs renders a duration in fractional milliseconds, the figures' unit.
func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}
