package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/queue"
)

// QueueSweep measures the durable event-queue subsystem's consume throughput
// as a function of the event-source mapper's batch size — the Netherite
// observation that batching receives and dispatches is what amortizes
// per-message round trips. Each point drains the same backlog through one
// mapper with cloud-shaped store latency; small batches pay one poll's scan
// round trip for little work, large batches claim and trigger many handlers
// per poll.

// QueueSweepOptions configure a queue throughput sweep.
type QueueSweepOptions struct {
	// Messages is the backlog drained per point. 0 means 300.
	Messages int
	// BatchSizes are the mapper batch sizes to sweep. nil means
	// 1,2,4,8,16,32.
	BatchSizes []int
	// Scale compresses simulated latency; 0 means 0.05.
	Scale float64
	Seed  int64
}

func (o QueueSweepOptions) withDefaults() QueueSweepOptions {
	if o.Messages == 0 {
		o.Messages = 300
	}
	if o.BatchSizes == nil {
		o.BatchSizes = []int{1, 2, 4, 8, 16, 32}
	}
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// QueueSweepPoint is one batch-size position of the sweep.
type QueueSweepPoint struct {
	Batch      int
	Throughput float64 // messages consumed per second
	Polls      int64   // batches claimed
	Elapsed    time.Duration
}

// QueueSweep drains a fixed backlog at each batch size and reports consume
// throughput.
func QueueSweep(opts QueueSweepOptions) ([]QueueSweepPoint, error) {
	opts = opts.withDefaults()
	var out []QueueSweepPoint
	for _, batch := range opts.BatchSizes {
		store := dynamo.NewStore(dynamo.WithLatency(dynamo.NewCloudLatency(opts.Scale, opts.Seed)))
		broker := queue.NewBroker(queue.BrokerOptions{Store: store})
		broker.MustCreate("bench", queue.Options{VisibilityTimeout: time.Minute})
		plat := platform.New(platform.Options{
			WarmStart: time.Duration(float64(15*time.Millisecond) * opts.Scale),
			ColdStart: time.Duration(float64(60*time.Millisecond) * opts.Scale),
			Jitter:    0.2,
			Seed:      opts.Seed,
		})
		var consumed atomic.Int64
		plat.Register("consume", func(inv *platform.Invocation, input platform.Value) (platform.Value, error) {
			consumed.Add(1)
			return dynamo.Null, nil
		}, 0)
		mapper := platform.MustNewMapper(broker, plat, platform.EventSourceOptions{
			Queue: "bench", Function: "consume", BatchSize: batch,
		})
		for i := 0; i < opts.Messages; i++ {
			if _, err := broker.Enqueue("bench", dynamo.NInt(int64(i))); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for consumed.Load() < int64(opts.Messages) {
			if _, _, err := mapper.PollOnce(); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		if n := consumed.Load(); n != int64(opts.Messages) {
			return nil, fmt.Errorf("bench: queue sweep batch %d consumed %d/%d", batch, n, opts.Messages)
		}
		out = append(out, QueueSweepPoint{
			Batch:      batch,
			Throughput: float64(opts.Messages) / elapsed.Seconds(),
			Polls:      mapper.Metrics().Batches.Load(),
			Elapsed:    elapsed,
		})
	}
	return out, nil
}
