package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/beldi"
	"repro/internal/workload"
)

// Figure 16: median response time, over a long constant-load run against a
// single key, of an SSF that performs one write — under no GC, GC with
// T = 1, 10 and 30 minutes, and the cross-table-transaction layout. The GC
// trigger fires every minute regardless of T (§7.2/§7.5: the trigger timer
// decides when the collector runs; T decides what it may reclaim). Without
// GC the linked DAAL grows without bound and the scan-based traversal
// slowly pays for it; with GC the chain stays shallow for every T, which is
// the paper's point — T matters for storage, barely for latency.
//
// Wall-clock minutes are simulated: one "paper minute" maps to
// MinuteDuration of real time, preserving the write-rate : GC-period :
// row-capacity ratios that drive the figure's shape.

// Fig16Series is one line of the figure.
type Fig16Series struct {
	Label string
	// Median[i] is the median response time during simulated minute i.
	Median []time.Duration
	// Rows[i] is the target key's physical row count at the end of minute
	// i (the storage story behind §7.5's I/O remark).
	Rows []int
	// Bytes[i] is the data table's footprint at the end of minute i.
	Bytes []int
}

// Fig16Options configure the run.
type Fig16Options struct {
	// Minutes is the simulated duration (60 in the paper). 0 means 30.
	Minutes int
	// MinuteDuration is real time per simulated minute. 0 means 300ms.
	MinuteDuration time.Duration
	// Rate is the offered write load in req/s. 0 means 60.
	Rate float64
	// RowCap keeps rows small so depth grows visibly. 0 means 8.
	RowCap int
	// TsMinutes are the GC lifetimes to sweep. nil means {1, 10, 30}.
	TsMinutes []int
	// Scale compresses simulated latency. 0 means 0.05.
	Scale float64
	Seed  int64
}

func (o Fig16Options) withDefaults() Fig16Options {
	if o.Minutes == 0 {
		o.Minutes = 30
	}
	if o.MinuteDuration == 0 {
		o.MinuteDuration = 300 * time.Millisecond
	}
	if o.Rate == 0 {
		o.Rate = 60
	}
	if o.RowCap == 0 {
		o.RowCap = 8
	}
	if o.TsMinutes == nil {
		o.TsMinutes = []int{1, 10, 30}
	}
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Fig16 runs all series.
func Fig16(opts Fig16Options) ([]Fig16Series, error) {
	opts = opts.withDefaults()
	var out []Fig16Series
	s, err := fig16Series("without GC", beldi.ModeBeldi, -1, opts)
	if err != nil {
		return nil, err
	}
	out = append(out, s)
	for _, tMin := range opts.TsMinutes {
		s, err := fig16Series(fmt.Sprintf("with GC (%d min)", tMin), beldi.ModeBeldi, tMin, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	s, err = fig16Series("cross-table txn", beldi.ModeCrossTable, 1, opts)
	if err != nil {
		return nil, err
	}
	out = append(out, s)
	return out, nil
}

// fig16Series runs one line. tMinutes < 0 disables garbage collection.
func fig16Series(label string, mode beldi.Mode, tMinutes int, opts Fig16Options) (Fig16Series, error) {
	t := time.Hour // effectively never reclaim
	if tMinutes > 0 {
		t = time.Duration(tMinutes) * opts.MinuteDuration
	}
	sys := NewSystem(SystemOptions{
		Mode: mode, Scale: opts.Scale, Seed: opts.Seed,
		Concurrency: 10000,
		Config:      beldi.Config{RowCap: opts.RowCap, T: t},
	})
	sys.D.Function("w", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return beldi.Null, e.Write("data", "k", beldi.Str(value16))
	}, "data")
	if _, err := sys.D.Invoke("w", beldi.Null); err != nil { // warm
		return Fig16Series{}, err
	}

	series := Fig16Series{Label: label}
	rt := sys.D.Runtime("w")
	for min := 0; min < opts.Minutes; min++ {
		res := workload.Run(workload.Options{
			Rate:     opts.Rate,
			Duration: opts.MinuteDuration,
			Seed:     opts.Seed + int64(min),
		}, func(r *rand.Rand) error {
			_, err := sys.D.Invoke("w", beldi.Null)
			return err
		})
		series.Median = append(series.Median, res.Latency.Median())

		// Minute boundary: the 1-minute GC trigger (§7.2).
		if tMinutes > 0 {
			if _, err := rt.RunGarbageCollector(); err != nil {
				return Fig16Series{}, err
			}
		}
		rows, err := sys.Store.TableItemCount(dataTableName("w", "data"))
		if err != nil {
			return Fig16Series{}, err
		}
		bytes, err := sys.Store.TableBytes(dataTableName("w", "data"))
		if err != nil {
			return Fig16Series{}, err
		}
		series.Rows = append(series.Rows, rows)
		series.Bytes = append(series.Bytes, bytes)
	}
	return series, nil
}

// dataTableName mirrors the runtime's physical naming (fn.data.logical).
func dataTableName(fn, logical string) string { return fn + ".data." + logical }
