package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
)

// ClusterSweep measures the multi-worker runtime: committed workflow steps
// per second as the worker pool grows from one to several workers over one
// shared backend, with and without a worker being killed mid-window. The
// offered load is closed-loop and per-worker, so the no-kill series shows
// how far the pool scales (the Netherite worker-scaling experiment at
// simulation scale), while the kill series shows what a mid-run death costs
// and proves the survivors absorb the dead worker's partitions: the cell
// only ends once every workflow started in the window has committed exactly
// once.

// ClusterSweepOptions configure a cluster sweep.
type ClusterSweepOptions struct {
	// Workers are the pool sizes to sweep. nil means {1, 2, 4}.
	Workers []int
	// Kill adds, for each pool size > 1, a cell where one worker is killed
	// at half the window. nil means {false, true}.
	Kill []bool
	// Duration is the measurement window per cell. 0 means 400ms.
	Duration time.Duration
	// Drivers is the closed-loop invoker count per worker (offered load
	// scales with the pool). 0 means 8.
	Drivers int
	// Partitions is the pool's ownership-partition count. 0 means 16.
	Partitions int
	// Keys is the number of distinct counter keys written. 0 means 256.
	Keys int
	// Scale compresses the simulated per-op store latency (1.0 =
	// DynamoDB-like milliseconds). Cloud-shaped latency is what makes the
	// workload latency-bound — the regime where adding workers adds
	// throughput, as in the paper's deployment. 0 means 0.05.
	Scale float64
	Seed  int64
}

func (o ClusterSweepOptions) withDefaults() ClusterSweepOptions {
	if o.Workers == nil {
		o.Workers = []int{1, 2, 4}
	}
	if o.Kill == nil {
		o.Kill = []bool{false, true}
	}
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Drivers == 0 {
		o.Drivers = 8
	}
	if o.Partitions == 0 {
		o.Partitions = 16
	}
	if o.Keys == 0 {
		o.Keys = 256
	}
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ClusterSweepPoint is one (workers, kill) cell of the sweep.
type ClusterSweepPoint struct {
	Workers int
	Killed  bool
	// Steps is the number of workflow steps committed by client calls in
	// the window; Throughput is Steps per second.
	Steps      int64
	Throughput float64
	// Failed counts client calls that errored (the killed worker's callers
	// see the crash; the pool still finishes the workflows).
	Failed int64
	// Stolen counts partitions survivors took from the killed worker, and
	// Recovered the intents survivors' collectors restarted after the kill
	// fired (dominated by the dead worker's orphaned workflows; a
	// survivor's own transient restart in that window also counts) — both
	// 0 for no-kill cells.
	Stolen    int64
	Recovered int64
	Elapsed   time.Duration
}

// ClusterSweep runs every configured (workers, kill) cell, each against a
// fresh shared store and a fresh pool.
func ClusterSweep(opts ClusterSweepOptions) ([]ClusterSweepPoint, error) {
	opts = opts.withDefaults()
	var out []ClusterSweepPoint
	for _, workers := range opts.Workers {
		for _, kill := range opts.Kill {
			if kill && workers < 2 {
				continue // nothing can recover a one-worker pool's kill
			}
			pt, err := clusterSweepPoint(opts, workers, kill)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// registerStep installs the sweep's SSF: one logged read-modify-write per
// request, keyed so duplicates or losses would corrupt the final audit.
func registerStep(d *beldi.Deployment) {
	d.Function("step", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		key := in.Map()["key"].Str()
		v, err := e.Read("state", key)
		if err != nil {
			return beldi.Null, err
		}
		if err := e.Write("state", key, beldi.Int(v.Int()+1)); err != nil {
			return beldi.Null, err
		}
		return beldi.Null, nil
	}, "state")
}

// clusterSweepPoint measures one cell.
func clusterSweepPoint(opts ClusterSweepOptions, workers int, kill bool) (ClusterSweepPoint, error) {
	store := dynamo.NewStore(dynamo.WithLatency(dynamo.NewCloudLatency(opts.Scale, opts.Seed)))
	c, err := beldi.OpenCluster(beldi.ClusterOptions{
		Store:      store,
		Partitions: opts.Partitions,
		LeaseTTL:   150 * time.Millisecond,
		Config:     beldi.Config{RowCap: 16, T: 25 * time.Millisecond, TableShards: 8},
	})
	if err != nil {
		return ClusterSweepPoint{}, err
	}
	pool := make([]*beldi.ClusterWorker, workers)
	for i := range pool {
		w, err := c.JoinCluster(fmt.Sprintf("w%d", i), registerStep)
		if err != nil {
			return ClusterSweepPoint{}, err
		}
		pool[i] = w
	}
	// Settle ownership before measuring, then run the protocol loops.
	for round := 0; round < workers+1; round++ {
		for _, w := range pool {
			if _, _, err := w.Worker().RebalanceOnce(); err != nil {
				return ClusterSweepPoint{}, err
			}
		}
	}
	for _, w := range pool {
		w.Start()
	}
	victim := workers - 1

	var steps, failed atomic.Int64
	var keySeq atomic.Int64
	var restartsAtKill atomic.Int64 // survivors' restart count when the kill fired
	start := time.Now()
	deadline := start.Add(opts.Duration)
	killAt := start.Add(opts.Duration / 2)
	var killOnce sync.Once
	var wg sync.WaitGroup
	for wi, w := range pool {
		for dIdx := 0; dIdx < opts.Drivers; dIdx++ {
			wg.Add(1)
			go func(wi int, w *beldi.ClusterWorker) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					if kill && time.Now().After(killAt) {
						killOnce.Do(func() {
							pool[victim].Kill()
							// Baseline for the Recovered column: restarts
							// after this moment are the kill's recovery work.
							for i, w := range pool {
								if i != victim {
									restartsAtKill.Add(w.Worker().Stats().Restarts.Load())
								}
							}
						})
						if wi == victim {
							return // the dead machine drives nothing
						}
					}
					k := keySeq.Add(1)
					req := beldi.Map(map[string]beldi.Value{
						"key": beldi.Str(fmt.Sprintf("k%04d", k%int64(opts.Keys))),
					})
					if _, err := w.Invoke("step", req); err != nil {
						failed.Add(1)
						if wi == victim {
							return // its platform is dying; stop offering
						}
						continue
					}
					steps.Add(1)
				}
			}(wi, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	pt := ClusterSweepPoint{
		Workers:    workers,
		Killed:     kill,
		Steps:      steps.Load(),
		Throughput: float64(steps.Load()) / elapsed.Seconds(),
		Failed:     failed.Load(),
		Elapsed:    elapsed,
	}

	if kill {
		// The cell is only done when the survivors have finished every
		// workflow the dead worker left behind.
		probe := pool[0].Deployment().Runtime("step")
		waitUntil := time.Now().Add(10 * time.Second)
		for {
			items, err := store.QueryIndex(probe.Function()+".intent", "pending", dynamo.S("1"), dynamo.QueryOpts{})
			if err != nil {
				return pt, err
			}
			if len(items) == 0 {
				break
			}
			if time.Now().After(waitUntil) {
				return pt, fmt.Errorf("bench: cluster sweep: %d workflows still pending after kill recovery", len(items))
			}
			time.Sleep(5 * time.Millisecond)
		}
		for i, w := range pool {
			if i == victim {
				continue
			}
			pt.Stolen += w.Worker().Stats().Steals.Load()
			pt.Recovered += w.Worker().Stats().Restarts.Load()
		}
		pt.Recovered -= restartsAtKill.Load()
	}
	for i, w := range pool {
		if kill && i == victim {
			continue
		}
		w.Stop()
	}
	return pt, nil
}
