package bench

import (
	"time"

	"repro/beldi"
)

// §7.3 "Other costs": the storage and network overhead Beldi adds on top of
// the values themselves. The paper reports 20–36 bytes of log+metadata
// stored per operation, ~2 KB of extra scan traffic per read against a
// 20-row DAAL, and one extra scan+write per read / one extra scan per write
// / one read and two writes per invocation.

// CostsReport is the measured accounting.
type CostsReport struct {
	// StoredBytesPerOp is the net storage growth per operation, beyond the
	// 16-byte value, for each mode.
	StoredBytesPerOpBeldi    float64
	StoredBytesPerOpBaseline float64
	// ReadBytesBeldi/Baseline are response bytes for one read against a
	// 20-row DAAL vs a single-row table.
	ReadBytesBeldi    int64
	ReadBytesBaseline int64
	// StoreOpsPerRead/Write/Invoke are database round trips per API call.
	StoreOpsPerReadBeldi      float64
	StoreOpsPerReadBaseline   float64
	StoreOpsPerWriteBeldi     float64
	StoreOpsPerWriteBaseline  float64
	StoreOpsPerInvokeBeldi    float64
	StoreOpsPerInvokeBaseline float64
	// DAALBytes20Rows is the 20-row DAAL's storage footprint.
	DAALBytes20Rows int
}

// Costs measures the report. ops controls the sample size (0 = 50).
func Costs(ops int) (*CostsReport, error) {
	if ops == 0 {
		ops = 50
	}
	rep := &CostsReport{}

	for _, mode := range []beldi.Mode{beldi.ModeBeldi, beldi.ModeBaseline} {
		sys := NewSystem(SystemOptions{
			Mode: mode, Scale: 0.0001, Seed: 1, Concurrency: 10000,
			Config: beldi.Config{RowCap: 64, T: time.Hour},
		})
		kind := "noop"
		sys.D.Function(kind, func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
			return beldi.Null, nil
		})
		var doOp string
		sys.D.Function("op", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
			switch doOp {
			case "read":
				_, err := e.Read("data", "k")
				return beldi.Null, err
			case "write":
				return beldi.Null, e.Write("data", "k", beldi.Str(value16))
			case "invoke":
				_, err := e.SyncInvoke(kind, beldi.Null)
				return beldi.Null, err
			case "fill":
				for i := 0; i < (20-1)*64+1; i++ {
					if err := e.Write("data", "k", beldi.Str(value16)); err != nil {
						return beldi.Null, err
					}
				}
			}
			return beldi.Null, nil
		}, "data")

		if mode == beldi.ModeBeldi {
			doOp = "fill"
			if _, err := sys.D.Invoke("op", beldi.Null); err != nil {
				return nil, err
			}
			rep.DAALBytes20Rows, _ = sys.Store.TableBytes(dataTableName("op", "data"))
		} else {
			doOp = "write"
			if _, err := sys.D.Invoke("op", beldi.Null); err != nil {
				return nil, err
			}
		}

		measure := func(what string) (opsPer float64, bytesRead int64, storedPer float64, err error) {
			doOp = what
			before := sys.Store.Metrics().Snapshot()
			bytesBefore := storeBytesTotal(sys)
			for i := 0; i < ops; i++ {
				if _, err := sys.D.Invoke("op", beldi.Null); err != nil {
					return 0, 0, 0, err
				}
			}
			diff := sys.Store.Metrics().Snapshot().Sub(before)
			stored := storeBytesTotal(sys) - bytesBefore
			return float64(diff.TotalOps()) / float64(ops),
				diff.BytesRead / int64(ops),
				float64(stored) / float64(ops), nil
		}

		// Calibrate away the per-invocation envelope (intent check/log and
		// done-marking) so the figures isolate the API operations
		// themselves, like the paper's per-operation accounting.
		nopOps, _, _, err := measure("none")
		if err != nil {
			return nil, err
		}
		readOps, readBytes, _, err := measure("read")
		if err != nil {
			return nil, err
		}
		writeOps, _, writeStored, err := measure("write")
		if err != nil {
			return nil, err
		}
		invokeOps, _, _, err := measure("invoke")
		if err != nil {
			return nil, err
		}
		readOps -= nopOps
		writeOps -= nopOps
		invokeOps -= nopOps
		if mode == beldi.ModeBeldi {
			rep.StoreOpsPerReadBeldi = readOps
			rep.StoreOpsPerWriteBeldi = writeOps
			rep.StoreOpsPerInvokeBeldi = invokeOps
			rep.ReadBytesBeldi = readBytes
			rep.StoredBytesPerOpBeldi = writeStored - float64(len(value16))
		} else {
			rep.StoreOpsPerReadBaseline = readOps
			rep.StoreOpsPerWriteBaseline = writeOps
			rep.StoreOpsPerInvokeBaseline = invokeOps
			rep.ReadBytesBaseline = readBytes
			rep.StoredBytesPerOpBaseline = writeStored - float64(len(value16))
		}
	}
	return rep, nil
}

// storeBytesTotal sums every table's footprint.
func storeBytesTotal(sys *System) int {
	total := 0
	for _, name := range sys.Store.TableNames() {
		n, err := sys.Store.TableBytes(name)
		if err == nil {
			total += n
		}
	}
	return total
}
