package workload

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestConstantRateOffersExpectedLoad(t *testing.T) {
	var calls atomic.Int64
	res := Run(Options{Rate: 500, Duration: 400 * time.Millisecond}, func(*rand.Rand) error {
		calls.Add(1)
		return nil
	})
	// 500 req/s over 0.4s = 200 requests; allow scheduler slack.
	if res.Offered < 150 || res.Offered > 220 {
		t.Errorf("offered = %d, want ~200", res.Offered)
	}
	if res.Completed != res.Offered {
		t.Errorf("completed %d != offered %d", res.Completed, res.Offered)
	}
	if got := res.Throughput(); got < 300 || got > 700 {
		t.Errorf("throughput = %.0f", got)
	}
}

func TestWarmupDiscarded(t *testing.T) {
	res := Run(Options{Rate: 200, Duration: 200 * time.Millisecond, Warmup: 200 * time.Millisecond},
		func(*rand.Rand) error { return nil })
	// Only the post-warmup window is measured: ~40 requests, not ~80.
	if res.Offered > 60 {
		t.Errorf("offered = %d; warmup requests leaked into measurement", res.Offered)
	}
	if res.Latency.Count() != res.Completed {
		t.Errorf("histogram count %d != completed %d", res.Latency.Count(), res.Completed)
	}
}

func TestErrorsCounted(t *testing.T) {
	boom := errors.New("boom")
	var n atomic.Int64
	res := Run(Options{Rate: 200, Duration: 200 * time.Millisecond}, func(*rand.Rand) error {
		if n.Add(1)%2 == 0 {
			return boom
		}
		return nil
	})
	if res.Errors == 0 {
		t.Error("no errors recorded")
	}
	if res.Completed+res.Errors != res.Offered-res.Dropped {
		t.Errorf("accounting: offered=%d completed=%d errors=%d dropped=%d",
			res.Offered, res.Completed, res.Errors, res.Dropped)
	}
}

func TestCoordinatedOmissionVisible(t *testing.T) {
	// A server that stalls: open-loop latency (from intended start) must
	// grossly exceed service time, which is the whole point of wrk2-style
	// measurement.
	res := Run(Options{Rate: 400, Duration: 300 * time.Millisecond, MaxInFlight: 4},
		func(*rand.Rand) error {
			time.Sleep(30 * time.Millisecond)
			return nil
		})
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Latency.Median() < res.ServiceTime.Median() {
		t.Errorf("open-loop latency %v < service time %v",
			res.Latency.Median(), res.ServiceTime.Median())
	}
	if res.Dropped == 0 {
		t.Error("saturated run shed no load at the in-flight cap")
	}
}

func TestDeterministicSeedsPerRequest(t *testing.T) {
	// Two runs with the same seed must present identical request streams.
	collect := func() []int64 {
		var mu atomic.Pointer[[]int64]
		vals := []int64{}
		mu.Store(&vals)
		Run(Options{Rate: 100, Duration: 100 * time.Millisecond, Seed: 7},
			func(r *rand.Rand) error {
				v := r.Int63()
				for {
					cur := mu.Load()
					next := append(append([]int64{}, *cur...), v)
					if mu.CompareAndSwap(cur, &next) {
						return nil
					}
				}
			})
		return *mu.Load()
	}
	a, b := collect(), collect()
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty runs")
	}
	seen := map[int64]bool{}
	for _, v := range a {
		seen[v] = true
	}
	match := 0
	for _, v := range b {
		if seen[v] {
			match++
		}
	}
	if match < len(b)/2 {
		t.Errorf("only %d/%d request streams matched across seeded runs", match, len(b))
	}
}
