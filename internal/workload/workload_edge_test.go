package workload

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hist"
)

// Edge cases of the open-loop generator: degenerate durations and the
// in-flight backstop.

func TestZeroDurationRunIsEmptyAndSafe(t *testing.T) {
	var ran atomic.Int64
	res := Run(Options{Rate: 1000, Duration: 0}, func(r *rand.Rand) error {
		ran.Add(1)
		return nil
	})
	if res.Offered != 0 || res.Completed != 0 || res.Errors != 0 || res.Dropped != 0 {
		t.Fatalf("zero-duration counts: %+v", res)
	}
	if res.Throughput() != 0 {
		t.Fatalf("Throughput = %f, want 0", res.Throughput())
	}
	if res.Latency.Count() != 0 {
		t.Fatalf("latency recorded %d samples in an empty run", res.Latency.Count())
	}
}

func TestZeroDurationWithWarmupMeasuresNothing(t *testing.T) {
	var ran atomic.Int64
	res := Run(Options{Rate: 500, Duration: 0, Warmup: 30 * time.Millisecond}, func(r *rand.Rand) error {
		ran.Add(1)
		return nil
	})
	// Warmup requests still run — they warm the system — but none of them
	// count.
	if ran.Load() == 0 {
		t.Fatal("warmup issued no requests")
	}
	if res.Offered != 0 || res.Completed != 0 {
		t.Fatalf("warmup leaked into measurements: %+v", res)
	}
}

func TestThroughputZeroElapsedGuard(t *testing.T) {
	r := &Result{Completed: 10}
	if got := r.Throughput(); got != 0 {
		t.Fatalf("Throughput with zero elapsed = %f, want 0", got)
	}
}

func TestInFlightCapShedsInsteadOfQueueing(t *testing.T) {
	block := make(chan struct{})
	res := make(chan *Result, 1)
	go func() {
		res <- Run(Options{
			Rate:        500,
			Duration:    80 * time.Millisecond,
			MaxInFlight: 1,
		}, func(r *rand.Rand) error {
			<-block
			return nil
		})
	}()
	// Let the run finish its offered schedule, then unblock the lone
	// in-flight request.
	time.Sleep(120 * time.Millisecond)
	close(block)
	r := <-res

	if r.Dropped == 0 {
		t.Fatal("no requests shed at the in-flight cap")
	}
	if r.Completed > 1 {
		t.Fatalf("completed = %d with cap 1 and a blocked handler", r.Completed)
	}
	// Conservation: every measured request completed, errored, or was shed.
	if r.Completed+r.Errors+r.Dropped != r.Offered {
		t.Fatalf("offered %d != completed %d + errors %d + dropped %d",
			r.Offered, r.Completed, r.Errors, r.Dropped)
	}
}

func TestShedRequestsRecordNoLatency(t *testing.T) {
	block := make(chan struct{})
	done := make(chan *Result, 1)
	go func() {
		done <- Run(Options{
			Rate:        200,
			Duration:    50 * time.Millisecond,
			MaxInFlight: 1,
		}, func(r *rand.Rand) error {
			<-block
			return nil
		})
	}()
	time.Sleep(80 * time.Millisecond)
	close(block)
	r := <-done
	if got := r.Latency.Count(); got != r.Completed {
		t.Fatalf("latency has %d samples, want %d (completed only)", got, r.Completed)
	}
	var zero hist.Histogram
	if zero.Count() != 0 {
		t.Fatal("histogram zero value not empty")
	}
}
