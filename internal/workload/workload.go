// Package workload is a wrk2-style constant-throughput, open-loop load
// generator (§7.2: "Requests ... are generated and measured using wrk2").
//
// Open loop means request start times are scheduled on a fixed cadence
// independent of completions, so queueing delay under saturation shows up
// in the measured latency instead of silently throttling the offered load —
// wrk2's coordinated-omission correction. Latency is measured from each
// request's *intended* start time.
package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
)

// Request is one unit of offered load; implementations invoke the system
// under test and return an error on failure.
type Request func(r *rand.Rand) error

// Options shape a run.
type Options struct {
	// Rate is the offered load in requests/second. Required.
	Rate float64
	// Duration is how long to offer load. Required.
	Duration time.Duration
	// Warmup discards measurements for the initial portion of the run.
	Warmup time.Duration
	// MaxInFlight bounds concurrently outstanding requests (a backstop so
	// a saturated system doesn't accumulate unbounded goroutines); 0 means
	// 1024.
	MaxInFlight int
	// Seed seeds the per-run RNG; request workers derive their own.
	Seed int64
}

// Result summarizes a run.
type Result struct {
	// Latency is measured from intended start to completion (coordinated-
	// omission corrected).
	Latency *hist.Histogram
	// ServiceTime is measured from actual start to completion.
	ServiceTime *hist.Histogram
	// Offered and Completed count requests; Errors counts failures;
	// Dropped counts requests shed at the in-flight cap.
	Offered, Completed, Errors, Dropped int64
	// Elapsed is the wall-clock measurement window.
	Elapsed time.Duration
}

// Throughput returns completed requests per second over the run.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// Run offers load at a constant rate and records latency.
func Run(opts Options, req Request) *Result {
	maxInFlight := opts.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = 1024
	}
	res := &Result{Latency: &hist.Histogram{}, ServiceTime: &hist.Histogram{}}
	interval := time.Duration(float64(time.Second) / opts.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInFlight)
	var offered, completed, errs, dropped atomic.Int64

	start := time.Now()
	warmupEnd := start.Add(opts.Warmup)
	end := start.Add(opts.Warmup + opts.Duration)
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	n := int64(0)
	for {
		intended := start.Add(time.Duration(n) * interval)
		if intended.After(end) {
			break
		}
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		n++
		measured := intended.After(warmupEnd)
		if measured {
			offered.Add(1)
		}
		select {
		case sem <- struct{}{}:
		default:
			if measured {
				dropped.Add(1)
			}
			continue
		}
		wg.Add(1)
		go func(intended time.Time, seq int64, measured bool) {
			defer wg.Done()
			defer func() { <-sem }()
			r := rand.New(rand.NewSource(seed + seq))
			begun := time.Now()
			err := req(r)
			done := time.Now()
			if !measured {
				return
			}
			if err != nil {
				errs.Add(1)
				return
			}
			completed.Add(1)
			res.Latency.Record(done.Sub(intended))
			res.ServiceTime.Record(done.Sub(begun))
		}(intended, n, measured)
	}
	wg.Wait()
	res.Offered = offered.Load()
	res.Completed = completed.Load()
	res.Errors = errs.Load()
	res.Dropped = dropped.Load()
	res.Elapsed = time.Since(start) - opts.Warmup
	return res
}
