package clock

import (
	"testing"
	"time"
)

func TestRealClockMonotone(t *testing.T) {
	var c Real
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Errorf("time went backwards: %v then %v", a, b)
	}
}

func TestManualNowAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatal("wrong start")
	}
	m.Advance(5 * time.Second)
	if got := m.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Errorf("Now = %v", got)
	}
}

func TestManualAfterFires(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired at 9s")
	default:
	}
	m.Advance(time.Second)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("never fired")
	}
}

func TestManualAfterNonPositive(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	select {
	case <-m.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestManualSleepWakes(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		m.Sleep(3 * time.Second)
		close(done)
	}()
	// Give the sleeper a moment to register.
	time.Sleep(10 * time.Millisecond)
	m.Advance(3 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleeper never woke")
	}
}

func TestManualMultipleWaitersOrdering(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	early := m.After(time.Second)
	late := m.After(time.Minute)
	m.Advance(2 * time.Second)
	select {
	case <-early:
	default:
		t.Fatal("early waiter not woken")
	}
	select {
	case <-late:
		t.Fatal("late waiter woken too soon")
	default:
	}
	m.Advance(time.Hour)
	select {
	case <-late:
	default:
		t.Fatal("late waiter never woken")
	}
}
