// Package clock abstracts time so Beldi's timer-driven components (the
// intent collector and garbage collector, §3.3/§5 of the paper) can be
// driven by a manual clock in tests and by real time in benchmarks.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock supplies the current time and sleeping. Implementations must be safe
// for concurrent use.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	// After returns a channel that delivers the then-current time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Manual is a test clock that only moves when Advance is called. Sleepers
// and After-waiters wake when the clock passes their deadline.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock. It blocks until Advance moves the clock past the
// deadline.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	deadline := m.now.Add(d)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, &waiter{deadline: deadline, ch: ch})
	sort.Slice(m.waiters, func(i, j int) bool {
		return m.waiters[i].deadline.Before(m.waiters[j].deadline)
	})
	return ch
}

// Advance moves the clock forward by d, waking any waiter whose deadline has
// passed.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var rest []*waiter
	for _, w := range m.waiters {
		if !w.deadline.After(now) {
			w.ch <- now
		} else {
			rest = append(rest, w)
		}
	}
	m.waiters = rest
	m.mu.Unlock()
}
