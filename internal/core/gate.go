package core

import (
	"errors"

	"repro/internal/dynamo"
)

// This file is the core's seam to the cluster runtime (internal/cluster):
// when several worker processes share one storage.Backend, each worker's
// intent collector must restart only the slice of the intent space the
// worker currently owns, and every restart claim must be fenced so a worker
// whose lease was revoked (a "zombie": paused, partitioned, or just slow to
// notice it is dead) cannot claim work that has been handed to a survivor.
//
// The seam is deliberately tiny: a gate scopes the collector's scan and
// supplies condition-check ops that ride atomically with the claim write.
// With no gate installed, the collector behaves exactly as in the paper —
// one logical collector over the whole intent table, claims raced only
// through the LastLaunch compare-and-set.

// CollectorGate scopes a Runtime's intent collector to the intents its host
// worker owns and fences every claim against the host's authority record.
// Implementations must be safe for concurrent use; internal/cluster's Worker
// is the canonical implementation (partition ownership from an epoch-fenced
// lease table).
type CollectorGate interface {
	// OwnsIntent reports whether this collector should attempt instance id
	// at all. Returning false skips the intent: some other worker's
	// collector owns it.
	OwnsIntent(id string) bool
	// ClaimFence returns condition-check ops attached atomically to the
	// claim of instance id (dynamo.TxOp with Check set). If any check fails
	// at commit time the claim is rejected as fenced — the store-side
	// guarantee that a zombie's late claim cannot land. nil means the claim
	// needs no fence beyond the LastLaunch compare-and-set.
	ClaimFence(id string) []dynamo.TxOp
}

// SetCollectorGate installs (or clears, with nil) the collector gate. The
// cluster runtime calls it when a worker attaches the runtime; standalone
// deployments never need it.
func (rt *Runtime) SetCollectorGate(g CollectorGate) {
	rt.gateMu.Lock()
	rt.gate = g
	rt.gateMu.Unlock()
}

// collectorGate returns the currently installed gate, or nil.
func (rt *Runtime) collectorGate() CollectorGate {
	rt.gateMu.RLock()
	defer rt.gateMu.RUnlock()
	return rt.gate
}

// touchLaunchFenced is touchLaunch with fencing: the LastLaunch
// compare-and-set commits in one transaction with the gate's condition
// checks, so the claim lands only while the claimant still holds its
// authority. A claim rejected by a fence check (rather than by the
// LastLaunch race) is counted in Stats.FencedClaims — the observable
// signature of a zombie's write being refused.
func (rt *Runtime) touchLaunchFenced(id string, observed, now int64, fence []dynamo.TxOp) (bool, error) {
	if len(fence) == 0 {
		return rt.touchLaunch(id, observed, now)
	}
	ops := make([]dynamo.TxOp, 0, len(fence)+1)
	ops = append(ops, fence...)
	ops = append(ops, dynamo.TxOp{
		Table: rt.intentTable,
		Key:   dynamo.HK(dynamo.S(id)),
		Cond: dynamo.And(
			dynamo.Eq(dynamo.A(attrLastLaunch), dynamo.NInt(observed)),
			dynamo.Eq(dynamo.A(attrDone), dynamo.Bool(false)),
		),
		Updates: []dynamo.Update{dynamo.Set(dynamo.A(attrLastLaunch), dynamo.NInt(now))},
	})
	err := rt.store.TransactWrite(ops)
	if err == nil {
		return true, nil
	}
	var tc *dynamo.TxCanceledError
	if errors.As(err, &tc) {
		// Distinguish a fence rejection (zombie refused) from an ordinary
		// claim race (another collector advanced LastLaunch first): the
		// fence ops come first in the transaction.
		for i := range fence {
			if i < len(tc.Reasons) && tc.Reasons[i] != nil {
				rt.stats.FencedClaims.Add(1)
				break
			}
		}
		return false, nil
	}
	return false, err
}
