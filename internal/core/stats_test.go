package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dynamo"
)

func TestStatsCountOperations(t *testing.T) {
	f := newFixture(t)
	f.fn("ops", func(e *Env, in Value) (Value, error) {
		if _, err := e.Read("kv", "a"); err != nil {
			return dynamo.Null, err
		}
		if err := e.Write("kv", "a", dynamo.NInt(1)); err != nil {
			return dynamo.Null, err
		}
		if _, err := e.CondWrite("kv", "b", dynamo.NInt(2), dynamo.True()); err != nil {
			return dynamo.Null, err
		}
		if err := e.Lock("kv", "c"); err != nil {
			return dynamo.Null, err
		}
		if err := e.Unlock("kv", "c"); err != nil {
			return dynamo.Null, err
		}
		if _, err := e.SyncInvoke("leaf", dynamo.Null); err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("ok"), e.AsyncInvoke("leaf", dynamo.Null)
	}, "kv")
	f.fn("leaf", func(e *Env, in Value) (Value, error) { return dynamo.Null, nil })
	f.mustInvoke("ops", dynamo.Null)
	f.plat.Drain()

	v := f.rts["ops"].StatsSnapshot()
	if v.Reads != 1 || v.Writes != 1 || v.CondWrites != 1 {
		t.Errorf("ops: reads=%d writes=%d condwrites=%d", v.Reads, v.Writes, v.CondWrites)
	}
	if v.Locks != 1 || v.Unlocks != 1 {
		t.Errorf("locks=%d unlocks=%d", v.Locks, v.Unlocks)
	}
	if v.SyncCalls != 1 || v.AsyncCalls != 1 {
		t.Errorf("sync=%d async=%d", v.SyncCalls, v.AsyncCalls)
	}
	if v.IntentsStarted != 1 || v.IntentsCompleted != 1 {
		t.Errorf("intents: started=%d completed=%d", v.IntentsStarted, v.IntentsCompleted)
	}
	leaf := f.rts["leaf"].StatsSnapshot()
	if leaf.IntentsStarted != 2 { // sync call + async registration
		t.Errorf("leaf intents started = %d", leaf.IntentsStarted)
	}
}

func TestStatsCountReplaysAndRestarts(t *testing.T) {
	f := newFixture(t)
	fail := true
	f.fn("flaky", func(e *Env, in Value) (Value, error) {
		v, err := e.Read("kv", "k")
		if err != nil {
			return dynamo.Null, err
		}
		if err := e.Write("kv", "k", dynamo.NInt(v.Int()+1)); err != nil {
			return dynamo.Null, err
		}
		if fail {
			fail = false
			return dynamo.Null, errors.New("transient")
		}
		return dynamo.S("ok"), nil
	}, "kv")
	f.invoke("flaky", dynamo.Null) //nolint:errcheck
	f.recoverAll()
	v := f.rts["flaky"].StatsSnapshot()
	if v.Restarts != 1 {
		t.Errorf("restarts = %d", v.Restarts)
	}
	if v.Replays < 2 { // the read-log hit and the DAAL case A on replay
		t.Errorf("replays = %d, want >= 2", v.Replays)
	}
	if got := f.readData("flaky", "kv", "k"); got.Int() != 1 {
		t.Errorf("k = %v", got)
	}
}

func TestStatsCountTransactionsAndGC(t *testing.T) {
	f := newFixture(t, withConfig(Config{RowCap: 4, T: 2 * time.Millisecond, ICMinAge: time.Millisecond}))
	f.fn("tx", func(e *Env, in Value) (Value, error) {
		err := e.Transaction(func() error {
			if err := e.Write("kv", "a", dynamo.NInt(1)); err != nil {
				return err
			}
			if in.Str() == "abort" {
				return errors.New("nope")
			}
			return nil
		})
		if errors.Is(err, ErrTxnAborted) {
			return dynamo.S("aborted"), nil
		}
		return dynamo.S("done"), err
	}, "kv")
	f.mustInvoke("tx", dynamo.Null)
	f.mustInvoke("tx", dynamo.S("abort"))
	v := f.rts["tx"].StatsSnapshot()
	if v.TxnBegun != 2 || v.TxnCommitted != 1 || v.TxnAborted != 1 {
		t.Errorf("txns: begun=%d committed=%d aborted=%d", v.TxnBegun, v.TxnCommitted, v.TxnAborted)
	}
	time.Sleep(4 * time.Millisecond)
	f.rts["tx"].RunGarbageCollector()
	time.Sleep(4 * time.Millisecond)
	f.rts["tx"].RunGarbageCollector()
	v = f.rts["tx"].StatsSnapshot()
	if v.GCRuns != 2 || v.GCIntents == 0 {
		t.Errorf("gc: runs=%d intents=%d", v.GCRuns, v.GCIntents)
	}
}

func TestStatsSpuriousCallbackCounted(t *testing.T) {
	f := newFixture(t)
	f.fn("caller", func(e *Env, in Value) (Value, error) { return dynamo.Null, nil })
	cb := envelope{
		Kind: kindCallback, CallerInstance: "ghost", CallerStep: "0.000001",
		CalleeID: "nobody", Result: dynamo.S("x"), HasRes: true,
	}
	if _, err := f.plat.Invoke("caller", cb.encode()); err != nil {
		t.Fatal(err)
	}
	v := f.rts["caller"].StatsSnapshot()
	if v.CallbacksIn != 1 || v.SpuriousCallback != 1 {
		t.Errorf("callbacks=%d spurious=%d", v.CallbacksIn, v.SpuriousCallback)
	}
}
