package core

import (
	"fmt"
	"strings"

	"repro/internal/dynamo"
)

// Fsck validates the structural invariants of an SSF's durable state — the
// properties the §4–§6 protocols maintain. It is safe to run against a
// quiescent runtime (no instances in flight); tests run it after chaos
// workloads, and operators can run it as a consistency audit. A nil error
// means every check passed; otherwise the error enumerates every violation.
//
// Checks:
//   - every intent row is well-formed (arguments and start time present — a
//     half-formed row is the signature of a zombie's unguarded completion
//     upsert),
//   - every DAAL chain is acyclic from the head and ends at a tail without
//     NextRow,
//   - every non-tail chained row is full (rows only gain successors when
//     full) and immutable-by-capacity,
//   - LogSize equals the RecentWrites entry count in every row,
//   - Recycled marks only reference present log entries,
//   - completed intents referenced by lock owners do not exist (no lock is
//     held by a done intent — locks-with-intent release before done),
//   - read/invoke-log rows reference intents that still exist OR belong to
//     instances whose intent was collected (in which case the GC should
//     have removed them — flagged as leaks),
//   - transaction registries reference settle markers consistently.
func Fsck(rt *Runtime) error {
	if rt.mode == ModeBaseline {
		return nil // nothing to check: no protocol state
	}
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Intent ids still alive, for cross-referencing.
	intents, err := rt.store.Scan(rt.intentTable, dynamo.QueryOpts{})
	if err != nil {
		return err
	}
	live := make(map[string]bool, len(intents))
	done := make(map[string]bool)
	for _, it := range intents {
		rec := decodeIntent(it)
		live[rec.id] = true
		if rec.done {
			done[rec.id] = true
		}
		// Well-formedness: every intent row carries its arguments and start
		// time from registration. A row missing them is the signature of a
		// zombie resurrection — a straggler's unguarded completion upserting
		// after the real row was collected (the bug markIntentDone's existence
		// guard closes).
		if _, ok := it[attrArgs]; !ok {
			report("intent %s: half-formed row (no %s) — zombie resurrection?", rec.id, attrArgs)
		}
		if _, ok := it[attrStartTime]; !ok {
			report("intent %s: half-formed row (no %s) — zombie resurrection?", rec.id, attrStartTime)
		}
	}

	if rt.mode == ModeBeldi {
		for _, logical := range rt.dataTables() {
			for _, table := range []string{rt.dataTable(logical), rt.shadowTable(logical)} {
				if err := fsckDAALTable(rt, table, done, report); err != nil {
					return err
				}
			}
		}
	}

	// Log tables reference either live intents or are leaks (the GC removes
	// them together with the intent).
	for _, tbl := range []string{rt.readLog, rt.invokeLog} {
		rows, err := rt.store.Scan(tbl, dynamo.QueryOpts{Projection: []dynamo.Path{dynamo.A(attrID)}})
		if err != nil {
			return err
		}
		for _, it := range rows {
			id := it[attrID].Str()
			if !live[id] {
				report("%s: log row for collected intent %s leaked", tbl, id)
			}
		}
	}

	// Promise mailbox cells must belong to live intents: a cell whose owner
	// was collected is a leak (the GC reaps cells with their owning intent).
	cells, err := rt.mailbox.Cells()
	if err != nil {
		return err
	}
	for _, c := range cells {
		if !live[c.Owner] {
			report("mailbox: cell %s owned by collected intent %s leaked", c.ID, c.Owner)
		}
	}

	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("core: fsck %s: %d problems:\n  %s",
		rt.fn, len(problems), strings.Join(problems, "\n  "))
}

func fsckDAALTable(rt *Runtime, table string, doneIntents map[string]bool, report func(string, ...any)) error {
	items, err := rt.store.Scan(table, dynamo.QueryOpts{})
	if err != nil {
		return err
	}
	byKey := make(map[string]map[string]daalRow)
	for _, it := range items {
		r := decodeDAALRow(it)
		if byKey[r.key] == nil {
			byKey[r.key] = make(map[string]daalRow)
		}
		byKey[r.key][r.rowID] = r
	}
	for key, rows := range byKey {
		// Per-row invariants.
		for id, r := range rows {
			if r.logSize != len(r.recent) {
				report("%s/%s row %s: LogSize %d != %d entries", table, key, id, r.logSize, len(r.recent))
			}
			if r.logSize > rt.cfg.RowCap {
				report("%s/%s row %s: LogSize %d exceeds cap %d", table, key, id, r.logSize, rt.cfg.RowCap)
			}
			for mark := range r.recycled {
				if _, ok := r.recent[mark]; !ok {
					report("%s/%s row %s: recycled mark %s has no log entry", table, key, id, mark)
				}
			}
		}
		// Chain invariants.
		chain := chainOrder(rows)
		seen := make(map[string]bool)
		for _, id := range chain {
			if seen[id] {
				report("%s/%s: cycle through row %s", table, key, id)
				break
			}
			seen[id] = true
		}
		for i, id := range chain {
			if i == len(chain)-1 {
				// The chain's last element either has no successor (a true
				// tail) or points at a row missing from the table — legal
				// only transiently mid-append, damage at quiescence.
				if next := rows[id].next; next != "" {
					if _, ok := rows[next]; !ok {
						report("%s/%s: tail %s points at missing row %s", table, key, id, next)
					}
				}
				continue
			}
			if rows[id].logSize != rt.cfg.RowCap {
				report("%s/%s: non-tail row %s not full (%d/%d)", table, key, id, rows[id].logSize, rt.cfg.RowCap)
			}
		}
		// A lock held by a completed intent means release was lost. Only the
		// tail's lock is authoritative: appendRow copies a then-held lock
		// onto the new row and the filled predecessor is immutable from that
		// point, so interior rows legitimately retain stale owners.
		if len(chain) > 0 {
			if lock := rows[chain[len(chain)-1]].lock; !lock.IsNull() {
				ownerID, _ := lock.MapGet(attrID)
				owner := ownerID.Str()
				// Transaction locks are owned by txn ids ("instance#tx...");
				// resolve to the owning instance.
				if i := strings.Index(owner, "#tx"); i >= 0 {
					owner = owner[:i]
				}
				if doneIntents[owner] {
					report("%s/%s: tail %s lock held by completed intent %s", table, key, chain[len(chain)-1], owner)
				}
			}
		}
	}
	return nil
}
