package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dynamo"
)

// Property tests over the core data structures and protocols, using
// testing/quick to drive randomized schedules and inputs.

// TestDAALInvariantsUnderRandomOps drives random logged writes/condWrites
// through a DAAL and checks the structural invariants of §4.1/§4.3 after
// every batch:
//   - the chain from the head is acyclic and ends at a row without NextRow,
//   - every non-tail chained row is full (rows only gain a successor when
//     full),
//   - LogSize always equals the number of RecentWrites entries,
//   - every issued logKey appears in exactly one row,
//   - the tail's value equals the value of the last *effective* write.
func TestDAALInvariantsUnderRandomOps(t *testing.T) {
	check := func(seed int64, capSel uint8) bool {
		rowCap := 1 + int(capSel%5)
		f := newFixture(t, withConfig(Config{RowCap: rowCap, T: DefaultT}))
		rt := f.fn("d", func(e *Env, in Value) (Value, error) { return dynamo.Null, nil }, "items")
		d := &daal{rt: rt, table: rt.dataTable("items")}
		rng := rand.New(rand.NewSource(seed))

		type issued struct {
			logKey  string
			applied bool
			value   int64
		}
		var history []issued
		lastEffective := int64(-1)
		n := 10 + rng.Intn(40)
		for i := 0; i < n; i++ {
			logKey := fmt.Sprintf("i%d#0.%06d", rng.Intn(3), i)
			v := int64(i)
			val := dynamo.NInt(v)
			mut := mutation{setVal: &val}
			wantApplied := true
			if rng.Intn(3) == 0 {
				// Conditional write guarded on the current value (a fresh
				// head stores Null until the first effective write).
				cur := dynamo.Eq(dynamo.A(attrValue), dynamo.NInt(lastEffective))
				if lastEffective < 0 {
					cur = dynamo.Eq(dynamo.A(attrValue), dynamo.Null)
				}
				cond := dynamo.Or(dynamo.NotExists(dynamo.A(attrValue)), cur)
				if rng.Intn(2) == 0 {
					cond = dynamo.Eq(dynamo.A(attrValue), dynamo.NInt(-999)) // never true
					wantApplied = false
				}
				mut.cond = cond
			}
			ok, err := d.loggedWrite("k", logKey, mut)
			if err != nil {
				t.Logf("write error: %v", err)
				return false
			}
			if ok != wantApplied {
				t.Logf("op %d: applied=%v want %v", i, ok, wantApplied)
				return false
			}
			history = append(history, issued{logKey, ok, v})
			if ok {
				lastEffective = v
			}
		}

		rows, order, err := d.chain("k")
		if err != nil {
			return false
		}
		// Non-tail chained rows are full.
		for _, id := range order[:len(order)-1] {
			if rows[id].logSize != rowCap {
				t.Logf("non-tail row %s not full: %d/%d", id, rows[id].logSize, rowCap)
				return false
			}
		}
		// LogSize == len(recent); each logKey in exactly one row.
		seen := map[string]int{}
		for id, r := range rows {
			if r.logSize != len(r.recent) {
				t.Logf("row %s logSize %d != entries %d", id, r.logSize, len(r.recent))
				return false
			}
			for k := range r.recent {
				seen[k]++
			}
		}
		for _, h := range history {
			if seen[h.logKey] != 1 {
				t.Logf("logKey %s appears %d times", h.logKey, seen[h.logKey])
				return false
			}
		}
		// Tail value = last effective write.
		tail := rows[order[len(order)-1]]
		if lastEffective >= 0 && tail.value.Int() != lastEffective {
			t.Logf("tail value %v != last effective %d", tail.value, lastEffective)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestReplayedOutcomesStableQuick replays random prefixes of an op sequence
// and requires identical outcomes — the determinism that §3.1's replay
// machinery rests on.
func TestReplayedOutcomesStableQuick(t *testing.T) {
	check := func(seed int64) bool {
		f := newFixture(t, withConfig(Config{RowCap: 3, T: DefaultT}))
		rt := f.fn("d", func(e *Env, in Value) (Value, error) { return dynamo.Null, nil }, "items")
		d := &daal{rt: rt, table: rt.dataTable("items")}
		rng := rand.New(rand.NewSource(seed))

		var keys []string
		var outcomes []bool
		for i := 0; i < 20; i++ {
			logKey := fmt.Sprintf("i#0.%06d", i)
			val := dynamo.NInt(int64(rng.Intn(5)))
			cond := dynamo.Eq(dynamo.A(attrValue), dynamo.NInt(int64(rng.Intn(5))))
			ok, err := d.loggedWrite("k", logKey, mutation{cond: cond, setVal: &val})
			if err != nil {
				return false
			}
			keys = append(keys, logKey)
			outcomes = append(outcomes, ok)
		}
		// Replay every op (with a *different* value — it must not apply).
		for i, logKey := range keys {
			val := dynamo.NInt(999)
			ok, err := d.loggedWrite("k", logKey, mutation{cond: dynamo.True(), setVal: &val})
			if err != nil || ok != outcomes[i] {
				t.Logf("replay %d: ok=%v want %v err=%v", i, ok, outcomes[i], err)
				return false
			}
		}
		row, _, _ := d.currentRow("k")
		if row.value.Int() == 999 {
			t.Log("replay re-applied a value")
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestEnvelopeRoundTripQuick checks encode/decode identity over randomized
// envelopes — the wire format every workflow hop depends on.
func TestEnvelopeRoundTripQuick(t *testing.T) {
	check := func(kindSel uint8, id, callerFn, callerInst, callerStep, calleeID string,
		async, hasRes bool, txnSel uint8) bool {
		kinds := []string{kindCall, kindCallback, kindAsyncRegister, kindAsyncRun}
		ev := envelope{
			Kind:           kinds[int(kindSel)%len(kinds)],
			InstanceID:     id,
			Input:          dynamo.S("payload"),
			Async:          async,
			CallerFn:       callerFn,
			CallerInstance: callerInst,
			CalleeID:       calleeID,
		}
		if callerInst != "" {
			ev.CallerStep = callerStep
		}
		if hasRes {
			ev.Result = dynamo.NInt(42)
			ev.HasRes = true
		}
		switch txnSel % 3 {
		case 1:
			ev.Txn = &TxnContext{ID: "t1", Mode: TxExecute, Start: 123}
		case 2:
			ev.Txn = &TxnContext{ID: "t2", Mode: TxCommit, Start: 456}
		}
		got := decodeEnvelope(ev.encode())
		if got.Kind != ev.Kind || got.InstanceID != ev.InstanceID ||
			got.Async != ev.Async || got.CallerFn != ev.CallerFn ||
			got.CallerInstance != ev.CallerInstance || got.CalleeID != ev.CalleeID ||
			got.HasRes != ev.HasRes || !got.Input.Equal(ev.Input) {
			return false
		}
		if ev.CallerInstance != "" && got.CallerStep != ev.CallerStep {
			return false
		}
		if (ev.Txn == nil) != (got.Txn == nil) {
			return false
		}
		if ev.Txn != nil && (got.Txn.ID != ev.Txn.ID || got.Txn.Mode != ev.Txn.Mode || got.Txn.Start != ev.Txn.Start) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRawClientPayloadsAccepted ensures arbitrary client payloads (not
// envelopes) decode as plain calls, so Beldi SSFs remain directly invokable.
func TestRawClientPayloadsAccepted(t *testing.T) {
	check := func(s string, n float64, b bool) bool {
		for _, raw := range []Value{
			dynamo.S(s), dynamo.N(n), dynamo.Bool(b),
			dynamo.L(dynamo.S(s)),
			dynamo.M(map[string]Value{"user": dynamo.S(s)}),
		} {
			ev := decodeEnvelope(raw)
			if ev.Kind != kindCall || !ev.Input.Equal(raw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestWaitDiePriorityTotalOrderQuick: olderOrSame must be a total order
// (antisymmetric, transitive over samples) so wait-die can never cycle.
func TestWaitDiePriorityTotalOrderQuick(t *testing.T) {
	type txn struct {
		start int64
		id    string
	}
	gen := func(r *rand.Rand) txn {
		return txn{start: int64(r.Intn(4)), id: fmt.Sprintf("t%d", r.Intn(4))}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		ab := olderOrSame(a.start, a.id, b.start, b.id)
		ba := olderOrSame(b.start, b.id, a.start, a.id)
		if ab && ba && !(a.start == b.start && a.id == b.id) {
			t.Fatalf("antisymmetry violated: %v %v", a, b)
		}
		if !ab && !ba {
			t.Fatalf("totality violated: %v %v", a, b)
		}
		bc := olderOrSame(b.start, b.id, c.start, c.id)
		ac := olderOrSame(a.start, a.id, c.start, c.id)
		if ab && bc && !ac {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

// TestGCIdempotentQuick: running the GC k extra times changes nothing once
// it has converged (at-least-once safety of §5).
func TestGCIdempotentQuick(t *testing.T) {
	f := newFixture(t, withConfig(Config{RowCap: 2, T: 2 * time.Millisecond, ICMinAge: time.Millisecond}))
	f.fn("w", counterBody, "counter")
	rt := f.rts["w"]
	for i := 0; i < 12; i++ {
		f.mustInvoke("w", dynamo.S("k"))
	}
	for pass := 0; pass < 4; pass++ {
		time.Sleep(4 * time.Millisecond)
		if _, err := rt.RunGarbageCollector(); err != nil {
			t.Fatal(err)
		}
	}
	bytesBefore, _ := f.store.TableBytes(rt.dataTable("counter"))
	intentsBefore, _ := f.store.TableItemCount(rt.intentTable)
	for pass := 0; pass < 3; pass++ {
		st, err := rt.RunGarbageCollector()
		if err != nil {
			t.Fatal(err)
		}
		if st.RowsDeleted != 0 || st.IntentsDeleted != 0 {
			t.Errorf("converged GC still deleted: %+v", st)
		}
	}
	bytesAfter, _ := f.store.TableBytes(rt.dataTable("counter"))
	intentsAfter, _ := f.store.TableItemCount(rt.intentTable)
	if bytesBefore != bytesAfter || intentsBefore != intentsAfter {
		t.Errorf("idempotence violated: bytes %d→%d intents %d→%d",
			bytesBefore, bytesAfter, intentsBefore, intentsAfter)
	}
	if got := f.readData("w", "counter", "k"); got.Int() != 12 {
		t.Errorf("counter = %v", got)
	}
}
