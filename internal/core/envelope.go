package core

import (
	"fmt"

	"repro/internal/dynamo"
)

// envelope is the wire format Beldi wraps around every invocation payload.
// It carries the callee's instance id (assigned by the caller, §3.3), the
// caller coordinates a callback must be routed to (§4.5), and the
// transaction context (§6.2). It is encoded as a plain map Value so it
// survives any serverless transport.
type envelope struct {
	Kind       string // "call", "callback", "asyncRegister", "asyncRun"
	InstanceID string // callee instance id ("" = adopt the platform request id)
	Input      Value
	Async      bool

	// App names the application the request belongs to (§2.2 SSF
	// reusability: one SSF serving several applications keeps each
	// application's state in separate tables). Propagated to callees.
	App string

	// Caller coordinates, for callbacks. CallerStep is the caller's invoke
	// log key step (string, branch-qualified).
	CallerFn       string
	CallerInstance string
	CallerStep     string

	// Callback payload.
	CalleeID string
	Result   Value
	HasRes   bool

	// Durable-promise reply coordinates (§4.5 extended): a promise-returning
	// AsyncInvoke stamps the caller function and instance here so the callee,
	// on completion, posts its result back into the caller's mailbox (a
	// kindPromisePost invocation routed to ReplyFn). They ride the registered
	// run envelope, so collector-restarted runs post too.
	ReplyFn    string
	ReplyOwner string

	// Transaction context; nil when outside any transaction.
	Txn *TxnContext
}

// Envelope kinds.
const (
	kindCall          = "call"
	kindCallback      = "callback"
	kindAsyncRegister = "asyncRegister"
	kindAsyncRun      = "asyncRun"
	kindPromisePost   = "promisePost"
)

// encode marshals the envelope to a map Value.
func (ev envelope) encode() Value {
	m := map[string]Value{
		"Kind":  dynamo.S(ev.Kind),
		"Input": ev.Input,
	}
	if ev.InstanceID != "" {
		m["InstanceId"] = dynamo.S(ev.InstanceID)
	}
	if ev.Async {
		m["Async"] = dynamo.Bool(true)
	}
	if ev.App != "" {
		m["App"] = dynamo.S(ev.App)
	}
	if ev.CallerFn != "" {
		m["CallerFn"] = dynamo.S(ev.CallerFn)
	}
	if ev.CallerInstance != "" {
		m["CallerInstance"] = dynamo.S(ev.CallerInstance)
		m["CallerStep"] = dynamo.S(ev.CallerStep)
	}
	if ev.CalleeID != "" {
		m["CalleeId"] = dynamo.S(ev.CalleeID)
	}
	if ev.HasRes {
		m["Result"] = ev.Result
	}
	if ev.ReplyFn != "" {
		m["ReplyFn"] = dynamo.S(ev.ReplyFn)
		m["ReplyOwner"] = dynamo.S(ev.ReplyOwner)
	}
	if ev.Txn != nil {
		m["Txn"] = ev.Txn.encode()
	}
	return dynamo.M(m)
}

// InstanceKey is the envelope map entry carrying the callee's instance id.
// Fire sources that stamp a deterministic per-occurrence id into a client
// envelope (durable timers; see queue.TimerSpec.StampKey) name this entry,
// so every redelivery of the same occurrence runs as the same intent and
// the intent table deduplicates it.
const InstanceKey = "InstanceId"

// ClientEnvelope wraps a raw client payload as a call envelope — how
// external requests enter a workflow. (Raw payloads are also accepted;
// this just makes the intent explicit.)
func ClientEnvelope(input Value) Value {
	return envelope{Kind: kindCall, Input: input}.encode()
}

// ClientEnvelopeForApp is ClientEnvelope carrying an application name, for
// SSFs serving several applications with separated state (§2.2).
func ClientEnvelopeForApp(app string, input Value) Value {
	return envelope{Kind: kindCall, Input: input, App: app}.encode()
}

// decodeEnvelope unmarshals an invocation payload. Raw payloads that are not
// envelopes (external clients invoking the workflow directly) are treated as
// kindCall with the payload as Input, so Beldi SSFs remain directly
// invokable.
func decodeEnvelope(raw Value) envelope {
	m := raw.Map()
	if m == nil {
		return envelope{Kind: kindCall, Input: raw}
	}
	kindV, ok := m["Kind"]
	if !ok {
		return envelope{Kind: kindCall, Input: raw}
	}
	ev := envelope{Kind: kindV.Str()}
	ev.Input = m["Input"]
	if v, ok := m["InstanceId"]; ok {
		ev.InstanceID = v.Str()
	}
	if v, ok := m["Async"]; ok {
		ev.Async = v.BoolVal()
	}
	if v, ok := m["App"]; ok {
		ev.App = v.Str()
	}
	if v, ok := m["CallerFn"]; ok {
		ev.CallerFn = v.Str()
	}
	if v, ok := m["CallerInstance"]; ok {
		ev.CallerInstance = v.Str()
		ev.CallerStep = m["CallerStep"].Str()
	}
	if v, ok := m["CalleeId"]; ok {
		ev.CalleeID = v.Str()
	}
	if v, ok := m["Result"]; ok {
		ev.Result = v
		ev.HasRes = true
	}
	if v, ok := m["ReplyFn"]; ok {
		ev.ReplyFn = v.Str()
		ev.ReplyOwner = m["ReplyOwner"].Str()
	}
	if v, ok := m["Txn"]; ok {
		ev.Txn = decodeTxnContext(v)
	}
	return ev
}

// TxnMode is a transaction context's phase (§6.2).
type TxnMode string

// Transaction phases.
const (
	TxExecute TxnMode = "execute"
	TxCommit  TxnMode = "commit"
	TxAbort   TxnMode = "abort"
)

// TxnContext identifies a top-level transaction: its id, phase, and the
// intent-creation time of the SSF that began it (the wait-die priority,
// Fig 11). Contexts are passed along with every invocation made inside the
// transaction.
type TxnContext struct {
	ID    string
	Mode  TxnMode
	Start int64 // microseconds; older (smaller) wins under wait-die
}

func (tc *TxnContext) encode() Value {
	return dynamo.M(map[string]Value{
		"Id":    dynamo.S(tc.ID),
		"Mode":  dynamo.S(string(tc.Mode)),
		"Start": dynamo.NInt(tc.Start),
	})
}

func decodeTxnContext(v Value) *TxnContext {
	m := v.Map()
	if m == nil {
		return nil
	}
	return &TxnContext{
		ID:    m["Id"].Str(),
		Mode:  TxnMode(m["Mode"].Str()),
		Start: m["Start"].Int(),
	}
}

// String renders the context for diagnostics.
func (tc *TxnContext) String() string {
	return fmt.Sprintf("txn(%s,%s,%d)", tc.ID, tc.Mode, tc.Start)
}
