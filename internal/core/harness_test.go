package core

import (
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

// fixture bundles a store, platform and runtimes for core tests. The
// store comes from the backend matrix (storagetest.Open): BELDI_BACKEND=wal
// runs every core test — crash sweeps included — against the durable
// walstore backend.
type fixture struct {
	t     *testing.T
	store storage.Backend
	plat  *platform.Platform
	rts   map[string]*Runtime
	mode  Mode
	cfg   Config
	plans platform.Plans
}

type fixtureOpt func(*fixture)

func withMode(m Mode) fixtureOpt     { return func(f *fixture) { f.mode = m } }
func withConfig(c Config) fixtureOpt { return func(f *fixture) { f.cfg = c } }
func withFaults(p platform.FaultPlan) fixtureOpt {
	return func(f *fixture) { f.plans = append(f.plans, p) }
}

func newFixture(t *testing.T, opts ...fixtureOpt) *fixture {
	t.Helper()
	f := &fixture{
		t:     t,
		store: storagetest.Open(t),
		rts:   make(map[string]*Runtime),
		mode:  ModeBeldi,
		cfg:   Config{RowCap: 4, T: 50 * time.Millisecond, ICMinAge: time.Millisecond},
	}
	for _, o := range opts {
		o(f)
	}
	f.plat = platform.New(platform.Options{
		ConcurrencyLimit: 10000,
		IDs:              &uuid.Seq{Prefix: "req"},
		Faults:           f.plans,
	})
	return f
}

// fn registers an SSF with its data tables.
func (f *fixture) fn(name string, body Body, tables ...string) *Runtime {
	f.t.Helper()
	rt, err := NewRuntime(RuntimeOptions{
		Function: name,
		Store:    f.store,
		Platform: f.plat,
		Mode:     f.mode,
		Config:   f.cfg,
		IDs:      &uuid.Seq{Prefix: name},
	})
	if err != nil {
		f.t.Fatal(err)
	}
	for _, tbl := range tables {
		if err := rt.CreateDataTable(tbl); err != nil {
			f.t.Fatal(err)
		}
	}
	Register(rt, body)
	f.rts[name] = rt
	return rt
}

// invoke calls a function as an external client.
func (f *fixture) invoke(name string, input Value) (Value, error) {
	return f.plat.Invoke(name, ClientEnvelope(input))
}

// mustInvoke fails the test on error.
func (f *fixture) mustInvoke(name string, input Value) Value {
	f.t.Helper()
	out, err := f.invoke(name, input)
	if err != nil {
		f.t.Fatalf("invoke %s: %v", name, err)
	}
	return out
}

// collectAll runs every runtime's IC once (restarts go through the platform
// asynchronously; Drain waits for them).
func (f *fixture) collectAll() int {
	f.t.Helper()
	total := 0
	for _, rt := range f.rts {
		n, err := rt.RunIntentCollector()
		if err != nil {
			f.t.Fatalf("ic %s: %v", rt.fn, err)
		}
		total += n
	}
	f.plat.Drain()
	return total
}

// recoverAll drives intent collection to quiescence (no restarts issued),
// bounding the number of rounds.
func (f *fixture) recoverAll() {
	f.t.Helper()
	for round := 0; round < 50; round++ {
		time.Sleep(2 * time.Millisecond) // exceed ICMinAge
		if f.collectAll() == 0 {
			return
		}
	}
	f.t.Fatal("intent collection did not quiesce in 50 rounds")
}

// gcAll runs every runtime's GC once.
func (f *fixture) gcAll() GCStats {
	f.t.Helper()
	var total GCStats
	for _, rt := range f.rts {
		st, err := rt.RunGarbageCollector()
		if err != nil {
			f.t.Fatalf("gc %s: %v", rt.fn, err)
		}
		total.Recycled += st.Recycled
		total.LogRowsDeleted += st.LogRowsDeleted
		total.RowsMarked += st.RowsMarked
		total.RowsDisconnected += st.RowsDisconnected
		total.RowsDeleted += st.RowsDeleted
		total.IntentsDeleted += st.IntentsDeleted
		total.MailboxReaped += st.MailboxReaped
	}
	return total
}

// readData reads an item's current committed value straight from storage.
func (f *fixture) readData(fn, table, key string) Value {
	f.t.Helper()
	rt := f.rts[fn]
	if f.mode == ModeBaseline {
		it, ok, err := f.store.Get(rt.dataTable(table), dynamo.HK(dynamo.S(key)))
		if err != nil {
			f.t.Fatalf("get %s/%s/%s: %v", fn, table, key, err)
		}
		if !ok {
			return dynamo.Null
		}
		return it[attrValue]
	}
	val, _, _, err := rt.layer().stateRead(table, key)
	if err != nil {
		f.t.Fatalf("stateRead %s/%s/%s: %v", fn, table, key, err)
	}
	return val
}

// counterBody increments "counter"/key by one, non-atomically (read then
// write) — the canonical exactly-once victim.
func counterBody(e *Env, input Value) (Value, error) {
	key := input.Str()
	if key == "" {
		key = "k"
	}
	v, err := e.Read("counter", key)
	if err != nil {
		return dynamo.Null, err
	}
	next := dynamo.NInt(v.Int() + 1)
	if err := e.Write("counter", key, next); err != nil {
		return dynamo.Null, err
	}
	return next, nil
}
