package core

import (
	"fmt"
	"sync"

	"repro/internal/dynamo"
)

// Table-change (CDC) event sources: a change handler is an SSF subscribed to
// committed writes on another SSF's logical table. The subscription does not
// tail the storage commit stream — wakeup hints carry no payload and no
// exactly-once contract — it rides the write path itself: after an Env.Write
// or taken Env.CondWrite commits, the runtime fires each registered handler
// through the ordinary §4.5 asyncInvoke protocol, as a logged step of the
// writing instance. That placement buys the full Beldi guarantee chain for
// free: a crash before the step re-executes the write (a replay) and then
// fires; a crash inside the step is deduplicated by the invoke log; the
// handler's own run is an intent with at-least-once delivery and
// intent-table dedup. Net: exactly one handler intent per committed change,
// with the change event as its input.
//
// Scope: handlers fire for writes made through the Beldi API outside
// transactions. ModeBaseline has none of the logging machinery and emits
// nothing; transactional writes do not emit either (AsyncInvoke is not
// supported inside transactions, §6.2) — a workflow that needs a
// transactional change feed invokes the downstream SSF as part of the
// transaction instead. Handlers that write to tables they themselves watch
// recurse; bounding that is the application's responsibility, exactly as
// with self-invoking SSFs.

// Change-event payload keys: the input a change handler receives is a Map
// with these entries.
const (
	ChangeEvTable    = "Table"    // logical table name, as registered
	ChangeEvKey      = "Key"      // written row's key
	ChangeEvValue    = "Value"    // value as written (post-image)
	ChangeEvFn       = "Fn"       // writing SSF's function name
	ChangeEvInstance = "Instance" // writing instance's id
)

// cdcRegistry is the per-runtime table→handlers map. Registration happens at
// deployment setup, before instances execute; the read path takes the lock
// only when at least one handler is registered.
type cdcRegistry struct {
	mu   sync.RWMutex
	any  bool
	subs map[string][]string
}

// RegisterChangeHandler subscribes handler (a registered SSF's function
// name) to committed writes on this SSF's logical table. Handlers fire in
// registration order, as logged steps of the writing instance — register
// before workflows run and identically across restarts, like function
// registration itself, so re-executions replay the same step sequence.
// Duplicate registrations are dropped.
func (rt *Runtime) RegisterChangeHandler(table, handler string) {
	if table == "" || handler == "" {
		panic("core: RegisterChangeHandler: table and handler are required")
	}
	rt.cdc.mu.Lock()
	defer rt.cdc.mu.Unlock()
	if rt.cdc.subs == nil {
		rt.cdc.subs = make(map[string][]string)
	}
	for _, h := range rt.cdc.subs[table] {
		if h == handler {
			return
		}
	}
	rt.cdc.subs[table] = append(rt.cdc.subs[table], handler)
	rt.cdc.any = true
}

// changeHandlers returns the handlers registered for logical table, in
// registration order.
func (rt *Runtime) changeHandlers(table string) []string {
	if !rt.cdcActive() {
		return nil
	}
	rt.cdc.mu.RLock()
	defer rt.cdc.mu.RUnlock()
	return rt.cdc.subs[table]
}

func (rt *Runtime) cdcActive() bool {
	rt.cdc.mu.RLock()
	defer rt.cdc.mu.RUnlock()
	return rt.cdc.any
}

// emitChanges fires the change handlers registered for logical after a
// committed write of v at key — each fire is one logged asyncInvoke step of
// this instance (see the file comment for the exactly-once argument).
// Called from the non-transactional, non-baseline write paths only.
func (e *Env) emitChanges(logical, key string, v Value) error {
	handlers := e.rt.changeHandlers(logical)
	if len(handlers) == 0 {
		return nil
	}
	ev := dynamo.M(map[string]Value{
		ChangeEvTable:    dynamo.S(logical),
		ChangeEvKey:      dynamo.S(key),
		ChangeEvValue:    v,
		ChangeEvFn:       dynamo.S(e.rt.fn),
		ChangeEvInstance: dynamo.S(e.instanceID),
	})
	for _, h := range handlers {
		if _, err := e.asyncInvoke(h, ev, "", ""); err != nil {
			return fmt.Errorf("core: change handler %s for table %s: %w", h, logical, err)
		}
		e.rt.stats.ChangeEvents.Add(1)
	}
	return nil
}
