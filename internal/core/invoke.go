package core

import (
	"errors"
	"fmt"

	"repro/internal/dynamo"
	"repro/internal/telemetry"
)

// This file implements SSF invocation with exactly-once semantics (§4.5,
// Figures 8, 9, 19, 20). The caller logs each invocation in its invoke log
// keyed by (instance, step), assigning the callee a fresh instance id the
// first time and reusing it on every re-execution. The callee, before
// marking its own intent done, issues a *callback* — a second invocation,
// addressed to the caller SSF — that records the result in the caller's
// invoke log. Only then may the callee complete: this closes the Figure 9
// window in which the callee's garbage collector could prune the intent
// before the caller ever saw the result, which would cause a re-execution
// and a duplicated effect.

// SyncInvoke calls another Beldi-enabled SSF and returns its result, with
// exactly-once semantics end to end. Inside a transaction, the transaction
// context rides along and the callee is recorded for commit/abort
// propagation (§6.2).
func (e *Env) SyncInvoke(callee string, input Value) (Value, error) {
	e.rt.stats.SyncCalls.Add(1)
	if e.rt.mode == ModeBaseline {
		return e.baselineSyncInvoke(callee, input)
	}
	if e.inExecute() {
		if err := e.recordTxnCallee(callee); err != nil {
			return dynamo.Null, err
		}
	}
	return e.syncInvoke(callee, input, e.shared.txn)
}

func (e *Env) syncInvoke(callee string, input Value, txn *TxnContext) (Value, error) {
	stepKey := e.nextStepKey()
	t0 := e.rt.spanClock()
	out, calleeID, replay, err := e.syncInvokeStep(stepKey, callee, input, txn)
	e.callSpan(t0, telemetry.KindCall, stepKey, callee, calleeID, replay, err)
	return out, err
}

// callSpan records the span of one invocation step: the causal edge from
// this instance to the callee intent it minted. No-op without a hub.
func (e *Env) callSpan(t0 int64, kind telemetry.Kind, stepKey, callee, calleeID string, replay bool, err error) {
	if e.rt.tel == nil {
		return
	}
	s := telemetry.Span{
		Intent: e.instanceID, Step: stepKey, Kind: kind, Fn: e.rt.fn,
		Name: callee, Child: calleeID,
		Start: t0, End: e.rt.clk.Now().UnixNano(), Replay: replay,
	}
	if err != nil {
		s.Err = err.Error()
	}
	e.rt.tel.Tracer.Record(s)
}

func (e *Env) syncInvokeStep(stepKey, callee string, input Value, txn *TxnContext) (_ Value, calleeID string, replay bool, _ error) {
	logKey := dynamo.HSK(dynamo.S(e.instanceID), dynamo.S(stepKey))

	// Log the invocation intent, minting the callee id exactly once.
	calleeID = e.rt.ids.NewString()
	e.crash("invoke:pre:" + stepKey)
	err := e.rt.store.Update(e.rt.invokeLog, logKey,
		dynamo.NotExists(dynamo.A(attrID)),
		dynamo.Set(dynamo.A(attrCalleeID), dynamo.S(calleeID)))
	if err != nil {
		if !errors.Is(err, dynamo.ErrConditionFailed) {
			return dynamo.Null, calleeID, false, err
		}
		// Replay: reuse the recorded callee id; if the result already
		// arrived, return it without re-invoking (Fig 8).
		rec, ok, gerr := e.rt.store.Get(e.rt.invokeLog, logKey)
		if gerr != nil {
			return dynamo.Null, calleeID, true, gerr
		}
		if !ok {
			return dynamo.Null, calleeID, true, fmt.Errorf("core: invoke log row vanished: %s %s", e.instanceID, stepKey)
		}
		e.rt.stats.Replays.Add(1)
		replay = true
		calleeID = rec[attrCalleeID].Str()
		if res, has := rec[attrResult]; has {
			v, rerr := txnResult(res, txn)
			return v, calleeID, true, rerr
		}
	}
	e.crash("invoke:mid:" + stepKey)

	ev := envelope{
		Kind:           kindCall,
		InstanceID:     calleeID,
		Input:          input,
		App:            e.shared.app,
		CallerFn:       e.rt.fn,
		CallerInstance: e.instanceID,
		CallerStep:     stepKey,
		Txn:            txn,
	}
	// A callee crash is a delay, not a failure: re-invoke it with the SAME
	// callee id — its intent replays deterministically, so the retries are
	// harmless and mask transient deaths in place (the caller-side
	// equivalent of what the callee's intent collector would eventually
	// do). If the budget runs out, fail this instance and leave the rest
	// to the collectors.
	var out Value
	var callErr error
	for attempt := 0; attempt < syncInvokeRetries; attempt++ {
		out, callErr = e.rt.plat.InvokeInternalCtx(e.Context(), callee, ev.encode())
		e.crash("invoke:post:" + stepKey)
		if callErr == nil {
			// The callee completed, which means its callback already
			// deposited the result in this invoke log (Fig 9's ordering);
			// the direct response equals the durable record and is used as
			// the §4.5 optimization — no extra round trip (Fig 8 returns
			// rawSyncInvoke's value directly).
			v, rerr := txnResult(out, txn)
			return v, calleeID, replay, rerr
		}
		// The callee died mid-flight. Its callback may still have made it;
		// consult the durable record before retrying.
		rec, ok, gerr := e.rt.store.Get(e.rt.invokeLog, logKey)
		if gerr == nil && ok {
			if res, has := rec[attrResult]; has {
				v, rerr := txnResult(res, txn)
				return v, calleeID, replay, rerr
			}
		}
	}
	return dynamo.Null, calleeID, replay, fmt.Errorf("core: syncInvoke %s: %w", callee, callErr)
}

// syncInvokeRetries bounds in-place re-invocations of a crashed callee.
const syncInvokeRetries = 4

// txnResult decodes a callee result, translating the abort marker into
// ErrTxnAborted so wait-die deaths propagate up the workflow (§6.2).
func txnResult(res Value, txn *TxnContext) (Value, error) {
	if txn != nil && isAbortMarker(res) {
		return dynamo.Null, ErrTxnAborted
	}
	return res, nil
}

// abortMarker is the result value an SSF returns when its part of a
// transaction died under wait-die; the caller converts it back into
// ErrTxnAborted.
func abortMarker() Value {
	return dynamo.M(map[string]Value{"__beldi_abort": dynamo.Bool(true)})
}

func isAbortMarker(v Value) bool {
	mv, ok := v.MapGet("__beldi_abort")
	return ok && mv.BoolVal()
}

// AsyncInvoke starts another Beldi-enabled SSF without waiting for it,
// still with exactly-once semantics (§4.5, Fig 20): first a synchronous
// registration call makes the callee log the intent and confirm via
// callback; then the actual asynchronous invocation fires. Either this
// instance or the callee's own intent collector will eventually run the
// registered intent exactly once.
func (e *Env) AsyncInvoke(callee string, input Value) error {
	e.rt.stats.AsyncCalls.Add(1)
	if e.rt.mode == ModeBaseline {
		return e.baselineAsyncInvoke(callee, input)
	}
	if e.inExecute() {
		return ErrAsyncInTxn
	}
	_, err := e.asyncInvoke(callee, input, "", "")
	return err
}

// asyncInvoke is the §4.5/Fig 20 fire protocol shared by AsyncInvoke and
// AsyncInvokePromise: register the intent synchronously (minting the callee
// id exactly once), then fire the run. replyFn/replyOwner, when set, ride
// both the registered intent and the run envelope so every eventual
// execution of the callee — direct or collector-restarted — posts its result
// into the caller's mailbox. Returns the callee instance id, which doubles
// as the promise id.
func (e *Env) asyncInvoke(callee string, input Value, replyFn, replyOwner string) (string, error) {
	stepKey := e.nextStepKey()
	t0 := e.rt.spanClock()
	id, replay, err := e.asyncInvokeStep(stepKey, callee, input, replyFn, replyOwner)
	e.callSpan(t0, telemetry.KindAsync, stepKey, callee, id, replay, err)
	return id, err
}

func (e *Env) asyncInvokeStep(stepKey, callee string, input Value, replyFn, replyOwner string) (_ string, replay bool, _ error) {
	logKey := dynamo.HSK(dynamo.S(e.instanceID), dynamo.S(stepKey))

	calleeID := e.rt.ids.NewString()
	e.crash("ainvoke:pre:" + stepKey)
	registered := false
	err := e.rt.store.Update(e.rt.invokeLog, logKey,
		dynamo.NotExists(dynamo.A(attrID)),
		dynamo.Set(dynamo.A(attrCalleeID), dynamo.S(calleeID)))
	if err != nil {
		if !errors.Is(err, dynamo.ErrConditionFailed) {
			return "", false, err
		}
		rec, ok, gerr := e.rt.store.Get(e.rt.invokeLog, logKey)
		if gerr != nil {
			return "", true, gerr
		}
		if !ok {
			return "", true, fmt.Errorf("core: invoke log row vanished: %s %s", e.instanceID, stepKey)
		}
		replay = true
		calleeID = rec[attrCalleeID].Str()
		_, registered = rec[attrResult]
	}

	if !registered {
		// Step 1: synchronous registration; the callee logs the intent and
		// confirms through the callback path before we may fire the run.
		reg := envelope{
			Kind:           kindAsyncRegister,
			InstanceID:     calleeID,
			Input:          input,
			Async:          true,
			App:            e.shared.app,
			CallerFn:       e.rt.fn,
			CallerInstance: e.instanceID,
			CallerStep:     stepKey,
			ReplyFn:        replyFn,
			ReplyOwner:     replyOwner,
		}
		if _, err := e.rt.plat.InvokeInternalCtx(e.Context(), callee, reg.encode()); err != nil {
			return "", replay, fmt.Errorf("core: asyncInvoke %s: registration: %w", callee, err)
		}
		rec, ok, gerr := e.rt.store.Get(e.rt.invokeLog, logKey)
		if gerr != nil {
			return "", replay, gerr
		}
		if !ok || !func() bool { _, has := rec[attrResult]; return has }() {
			return "", replay, fmt.Errorf("core: asyncInvoke %s: registration not confirmed", callee)
		}
	}
	e.crash("ainvoke:mid:" + stepKey)

	// Step 2: the actual asynchronous invocation. At-least-once is enough:
	// the run stub skips intents that are missing (GC'd) or complete. With a
	// durable transport configured, the run envelope becomes a queue message
	// instead of an in-process handoff: the registered intent now pairs with
	// a durable record an event-source mapper will drain even if this caller
	// and the platform's async goroutine both die. A crash between the
	// enqueue and the next crash point re-enqueues on re-execution — a
	// duplicate the callee's intent dedup absorbs.
	run := envelope{Kind: kindAsyncRun, InstanceID: calleeID, Input: input, Async: true,
		App: e.shared.app, ReplyFn: replyFn, ReplyOwner: replyOwner}
	if t := e.rt.asyncTransport(); t != nil {
		if err := t.Deliver(callee, run.encode()); err != nil {
			return "", replay, fmt.Errorf("core: asyncInvoke %s: durable delivery: %w", callee, err)
		}
	} else if err := e.rt.plat.InvokeAsyncInternal(callee, run.encode()); err != nil {
		return "", replay, fmt.Errorf("core: asyncInvoke %s: run: %w", callee, err)
	}
	e.crash("ainvoke:post:" + stepKey)
	return calleeID, replay, nil
}

// issueCallback delivers result to the caller SSF's invoke log (§4.5). It
// targets "some instance" of the caller function — request routing is
// stateless — and needs only at-least-once semantics.
func (rt *Runtime) issueCallback(callerFn, callerInstance, callerStep, calleeID string, result Value) error {
	cb := envelope{
		Kind:           kindCallback,
		CallerInstance: callerInstance,
		CallerStep:     callerStep,
		CalleeID:       calleeID,
		Result:         result,
		HasRes:         true,
	}
	_, err := rt.plat.InvokeInternal(callerFn, cb.encode())
	return err
}

// handleCallback is the caller-side callback handler: record the result for
// the (instance, step) invoke-log entry, guarded by the callee id so a
// spurious callback from a zombie re-execution of an already-collected
// intent is detected and ignored (§4.5).
func (rt *Runtime) handleCallback(ev envelope) (Value, error) {
	lk := dynamo.HSK(dynamo.S(ev.CallerInstance), dynamo.S(ev.CallerStep))
	rt.stats.CallbacksIn.Add(1)
	err := rt.store.Update(rt.invokeLog, lk,
		dynamo.And(
			dynamo.Exists(dynamo.A(attrID)),
			dynamo.Eq(dynamo.A(attrCalleeID), dynamo.S(ev.CalleeID)),
		),
		dynamo.Set(dynamo.A(attrResult), ev.Result))
	if err != nil {
		if !errors.Is(err, dynamo.ErrConditionFailed) {
			return dynamo.Null, err
		}
		rt.stats.SpuriousCallback.Add(1)
	}
	// Conditional failure = the invoke-log entry no longer exists (or names
	// a different callee): a spurious callback; ignore it.
	return dynamo.Null, nil
}
