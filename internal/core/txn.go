package core

import (
	"errors"
	"fmt"

	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// Transactions (§6.2). A transaction is created by the SSF that calls
// Transaction (the paper's begin_tx/end_tx pair) and inherited by every SSF
// it invokes before the matching end. Under the hood:
//
//   - Execute mode takes a wait-die 2PL lock before every read, write and
//     condWrite (Fig 11), reads check the transaction's shadow copy first
//     (read-your-writes), and writes go only to the shadow table — so the
//     real tables never expose uncommitted state, giving opacity (§6.2,
//     Fig 12): even doomed transactions read a consistent snapshot.
//   - Commit flushes shadow values to the real linked DAALs, releases
//     locks, and recursively invokes the SSF's transactional callees with
//     the context in Commit mode — the workflow itself plays the 2PC
//     coordinator. Abort skips the flush and propagates the same way.
//
// Two durable per-SSF registries make the protocol replay- and crash-safe
// without any in-memory coordinator state: txLocks records every (table,
// key) this SSF locked under a transaction id, and txCallees records every
// callee it invoked inside the transaction. A Commit/Abort-phase instance
// re-derives all of its obligations from those tables. (The paper leaves
// "notify its own callees" abstract; see DESIGN.md.)

// Transaction runs body with ACID semantics (opacity isolation). If this
// SSF was itself invoked inside an enclosing transaction, body simply joins
// it: begin/end pairs are inherited, not nested (§6.2). The body runs in a
// fresh goroutine so runtime panics become aborts rather than instance
// crashes ("to catch any runtime exceptions"). Returning ErrTxnAborted —
// or any other error — aborts; nil commits.
func (e *Env) Transaction(body func() error) error {
	if e.rt.mode == ModeBaseline {
		// Baseline has no transactions: run the operations bare. This is the
		// configuration whose inconsistent travel reservations the paper
		// calls out (§7.2).
		return body()
	}
	if e.shared.txn != nil {
		// Inherited context: ignore the begin/end markers.
		return body()
	}
	e.rt.stats.TxnBegun.Add(1)
	ctx := &TxnContext{
		ID:    e.instanceID + "#tx" + e.nextStepKey(),
		Mode:  TxExecute,
		Start: e.intent.startTime,
	}
	e.shared.txn = ctx
	e.shared.txnOwner = true

	bodyErr := runTxnBody(body)

	if bodyErr == nil {
		ctx.Mode = TxCommit
		t0 := e.rt.spanClock()
		if err := e.finishTxnLocal(ctx); err != nil {
			e.stepSpan(t0, telemetry.KindTxnCommit, "", ctx.ID, false, nil, err)
			return err
		}
		e.stepSpan(t0, telemetry.KindTxnCommit, "", ctx.ID, false, e.rt.histTxn, nil)
		e.shared.txn = nil
		e.shared.txnOwner = false
		e.rt.stats.TxnCommitted.Add(1)
		return nil
	}
	ctx.Mode = TxAbort
	e.rt.stats.TxnAborted.Add(1)
	t0 := e.rt.spanClock()
	if err := e.finishTxnLocal(ctx); err != nil {
		e.stepSpan(t0, telemetry.KindTxnAbort, "", ctx.ID, false, nil, err)
		return err
	}
	e.stepSpan(t0, telemetry.KindTxnAbort, "", ctx.ID, false, nil, nil)
	e.shared.txn = nil
	e.shared.txnOwner = false
	if errors.Is(bodyErr, ErrTxnAborted) {
		return ErrTxnAborted
	}
	return fmt.Errorf("%w: %v", ErrTxnAborted, bodyErr)
}

// runTxnBody executes the transaction's operations under a recovery
// barrier, converting runtime exceptions into abort-causing errors (the
// §6.2 "execute in a new thread to catch any runtime exceptions" — Go's
// recover gives the same catch semantics without losing the goroutine's
// identity). A platform kill is NOT an exception: it re-raises so the
// worker actually dies and the intent collector takes over.
func runTxnBody(body func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if platform.IsInjectedCrash(r) {
				panic(r)
			}
			err = fmt.Errorf("transaction body panic: %v", r)
		}
	}()
	return body()
}

// recordTxnCallee durably notes that this SSF invoked callee inside the
// transaction, so a later Commit/Abort phase can propagate along the same
// workflow edge. Idempotent (at-least-once is enough: the set is keyed).
func (e *Env) recordTxnCallee(callee string) error {
	return e.rt.store.Update(e.rt.txCallees,
		dynamo.HSK(dynamo.S(e.shared.txn.ID), dynamo.S(callee)), nil)
}

// recordTxnLock durably notes a lock this SSF acquired for the transaction.
func (e *Env) recordTxnLock(table, key string) error {
	return e.rt.store.Update(e.rt.txLocks,
		dynamo.HSK(dynamo.S(e.shared.txn.ID), dynamo.S(table+"|"+key)), nil)
}

// txnLock acquires key's lock for the transaction with wait-die deadlock
// prevention (Fig 11): on conflict, die (abort) if the holder is older,
// otherwise wait and retry. Priority is the transaction's intent-creation
// time with the id as tiebreak, a total order, so no cycles can form.
func (e *Env) txnLock(table, key string) error {
	e.rt.stats.Locks.Add(1)
	txn := e.shared.txn
	owner := lockOwnerValue(txn.ID, txn.Start)
	// Register the lock intention BEFORE acquiring: if the instance dies
	// between the two, the abort phase releases a lock that may not be held
	// (a harmless conditional no-op); the reverse order would leak a held,
	// unregistered lock forever.
	if err := e.recordTxnLock(table, key); err != nil {
		return err
	}
	backoff := e.rt.cfg.LockRetryBase
	t0 := e.rt.spanClock() // spans the whole wait-die acquisition
	var replay bool
	for attempt := 0; attempt < e.rt.cfg.LockRetryMax; attempt++ {
		stepKey := e.nextStepKey()
		e.crash("txnlock:pre:" + stepKey)
		replay = false
		ok, err := e.rt.layer().loggedMutate(table, key, e.logKey(stepKey),
			e.stepMutation(mutation{cond: lockCond(txn.ID), setLock: &owner}, &replay))
		e.crash("txnlock:post:" + stepKey)
		if err != nil {
			e.stepSpan(t0, telemetry.KindLock, stepKey, table+"/"+key, replay, nil, err)
			return err
		}
		if ok {
			e.stepSpan(t0, telemetry.KindLock, stepKey, table+"/"+key, replay, e.rt.histLock, nil)
			return nil
		}
		// Conflict: inspect the holder for wait-die.
		_, lock, _, err := e.rt.layer().stateRead(table, key)
		if err != nil {
			return err
		}
		if !lock.IsNull() {
			holderID, _ := lock.MapGet(attrID)
			holderStart, _ := lock.MapGet("Start")
			if olderOrSame(holderStart.Int(), holderID.Str(), txn.Start, txn.ID) {
				e.stepSpan(t0, telemetry.KindLock, stepKey, table+"/"+key, false, nil, ErrTxnAborted)
				return ErrTxnAborted // die: the holder has priority
			}
		}
		if werr := e.waitRetry(backoff); werr != nil {
			// Canceled while waiting (wait-die's "wait" arm): abort the
			// transaction the same way a die would — the lock intention is
			// registered, so the abort phase releases anything actually held.
			return fmt.Errorf("%w: txn lock %s/%s: %v", ErrTxnAborted, table, key, werr)
		}
		if backoff < 128*e.rt.cfg.LockRetryBase {
			backoff *= 2
		}
	}
	return fmt.Errorf("%w: txn lock %s/%s", ErrLockUnavailable, table, key)
}

// olderOrSame reports whether (aStart, aID) has wait-die priority over
// (bStart, bID): strictly older start time, with the id breaking ties.
func olderOrSame(aStart int64, aID string, bStart int64, bID string) bool {
	if aStart != bStart {
		return aStart < bStart
	}
	return aID <= bID
}

// shadowKey namespaces a key inside the shadow table by transaction.
func shadowKey(txnID, key string) string { return txnID + "|" + key }

// txnRead: lock, then read the shadow copy first (read-your-writes), else
// the real table; the effective value is recorded in the read log so
// replays see the identical snapshot.
func (e *Env) txnRead(table, key string) (Value, error) {
	if err := e.txnLock(table, key); err != nil {
		return dynamo.Null, err
	}
	stepKey := e.nextStepKey()
	t0 := e.rt.spanClock()
	e.crash("txnread:pre:" + stepKey)
	layer := e.rt.layer()
	val, _, found, err := layer.shadow().stateRead(table, shadowKey(e.shared.txn.ID, key))
	if err != nil {
		return dynamo.Null, err
	}
	if !found {
		val, _, _, err = layer.stateRead(table, key)
		if err != nil {
			return dynamo.Null, err
		}
	}
	out, replay, err := e.logRead(stepKey, val)
	e.stepSpan(t0, telemetry.KindRead, stepKey, table+"/"+key, replay, nil, err)
	e.crash("txnread:post:" + stepKey)
	return out, err
}

// txnWrite: lock, then write to the transaction's shadow copy.
func (e *Env) txnWrite(table, key string, v Value) error {
	if err := e.txnLock(table, key); err != nil {
		return err
	}
	stepKey := e.nextStepKey()
	t0 := e.rt.spanClock()
	e.crash("txnwrite:pre:" + stepKey)
	var replay bool
	_, err := e.rt.layer().shadow().loggedMutate(table, shadowKey(e.shared.txn.ID, key),
		e.logKey(stepKey), e.stepMutation(mutation{setVal: &v}, &replay))
	e.stepSpan(t0, telemetry.KindWrite, stepKey, table+"/"+key, replay, e.rt.histStep, err)
	e.crash("txnwrite:post:" + stepKey)
	return err
}

// txnCondWrite: lock, evaluate cond against the transaction's effective
// view of the item, and apply to the shadow if it holds. Determinism on
// replay comes from the logged effective read.
func (e *Env) txnCondWrite(table, key string, v Value, cond dynamo.Cond) (bool, error) {
	if err := e.txnLock(table, key); err != nil {
		return false, err
	}
	stepKey := e.nextStepKey()
	layer := e.rt.layer()
	val, _, found, err := layer.shadow().stateRead(table, shadowKey(e.shared.txn.ID, key))
	if err != nil {
		return false, err
	}
	if !found {
		val, _, _, err = layer.stateRead(table, key)
		if err != nil {
			return false, err
		}
	}
	val, _, err = e.logRead(stepKey, val)
	if err != nil {
		return false, err
	}
	if !cond.Eval(dynamo.Item{attrValue: val}) {
		return false, nil
	}
	wStep := e.nextStepKey()
	t0 := e.rt.spanClock()
	e.crash("txncondwrite:pre:" + wStep)
	var replay bool
	_, err = layer.shadow().loggedMutate(table, shadowKey(e.shared.txn.ID, key),
		e.logKey(wStep), e.stepMutation(mutation{setVal: &v}, &replay))
	e.stepSpan(t0, telemetry.KindCondWrite, wStep, table+"/"+key, replay, e.rt.histStep, err)
	e.crash("txncondwrite:post:" + wStep)
	return err == nil, err
}

// finishTxnLocal runs the local half of commit/abort for this SSF, then
// propagates to its callees. Crash-safe: every action is a logged operation
// of this same instance, so a re-execution resumes where it left off
// (§6.2). A per-(SSF, transaction) settle claim makes the recursive
// propagation terminate on cyclic workflows: the first instance to settle
// this SSF's state for the transaction claims it; later notifications
// arriving around a cycle find the claim and stop.
func (e *Env) finishTxnLocal(ctx *TxnContext) error {
	claimed, err := e.claimTxnSettle(ctx)
	if err != nil {
		return err
	}
	if !claimed {
		return nil
	}
	if err := e.settleTxnState(ctx); err != nil {
		return err
	}
	return e.notifyTxnCallees(ctx)
}

// settleMarker is the reserved txCallees sort key recording the settle
// claim; "\x00" keeps it out of the function-name namespace.
const settleMarker = "\x00settled"

// claimTxnSettle claims the right to settle this SSF's transaction state.
// The claim is keyed to the claiming instance so the claimant's own
// re-execution (after a mid-settle crash) passes the check and resumes.
func (e *Env) claimTxnSettle(ctx *TxnContext) (bool, error) {
	err := e.rt.store.Update(e.rt.txCallees,
		dynamo.HSK(dynamo.S(ctx.ID), dynamo.S(settleMarker)),
		dynamo.Or(
			dynamo.NotExists(dynamo.A(attrInstanceID)),
			dynamo.Eq(dynamo.A(attrInstanceID), dynamo.S(e.instanceID)),
		),
		dynamo.Set(dynamo.A(attrInstanceID), dynamo.S(e.instanceID)))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, dynamo.ErrConditionFailed) {
		return false, nil
	}
	return false, err
}

// settleTxnState flushes (on commit) and unlocks everything this SSF's
// registries record for the transaction.
func (e *Env) settleTxnState(ctx *TxnContext) error {
	entries, err := e.rt.store.Query(e.rt.txLocks, dynamo.S(ctx.ID), dynamo.QueryOpts{})
	if err != nil {
		return err
	}
	layer := e.rt.layer()
	for _, it := range entries {
		table, key := splitTableKey(it[attrTableKey].Str())
		if ctx.Mode == TxCommit {
			sval, _, found, err := layer.shadow().stateRead(table, shadowKey(ctx.ID, key))
			if err != nil {
				return err
			}
			if found {
				stepKey := e.nextStepKey()
				e.crash("txnflush:pre:" + stepKey)
				if _, err := layer.loggedMutate(table, key, e.logKey(stepKey),
					mutation{setVal: &sval}); err != nil {
					return err
				}
				e.crash("txnflush:post:" + stepKey)
			}
		}
		if err := e.unlockAs(layer, table, key, ctx.ID); err != nil {
			return err
		}
	}
	return nil
}

// notifyTxnCallees invokes each recorded callee with the decided context —
// the second phase of the collaborative 2PC (§6.2).
func (e *Env) notifyTxnCallees(ctx *TxnContext) error {
	callees, err := e.rt.store.Query(e.rt.txCallees, dynamo.S(ctx.ID), dynamo.QueryOpts{})
	if err != nil {
		return err
	}
	for _, it := range callees {
		callee := it[attrCallee].Str()
		if callee == settleMarker {
			continue
		}
		if _, err := e.syncInvoke(callee, dynamo.Null, ctx); err != nil {
			return err
		}
	}
	return nil
}

func splitTableKey(s string) (table, key string) {
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

// runTxnPhase handles an incoming invocation whose context is already in
// Commit or Abort mode: skip the SSF's logic entirely, settle local state,
// and propagate (§6.2). The phase runs as a normal intent so it is itself
// exactly-once, and it returns through the usual callback path.
func (rt *Runtime) runTxnPhase(inv *platform.Invocation, id string, ev envelope) (Value, error) {
	intent, err := rt.ensureIntent(id, ev)
	if err != nil {
		return dynamo.Null, err
	}
	inv.CrashPoint("intent:logged")
	if intent.done {
		rt.dedupExec(id, ev)
		if ev.CallerFn != "" && !rt.cfg.DisableCallbacks {
			if err := rt.issueCallback(ev.CallerFn, ev.CallerInstance, ev.CallerStep, id, intent.ret); err != nil {
				return dynamo.Null, err
			}
		}
		return intent.ret, nil
	}
	obs := rt.beginExec(id, ev, !intent.fresh)
	defer obs.finish()
	env := &Env{rt: rt, inv: inv, instanceID: id, branch: "0", intent: intent, shared: &envShared{app: ev.App}}
	if err := env.finishTxnLocal(ev.Txn); err != nil {
		obs.complete(err)
		return dynamo.Null, err
	}
	inv.CrashPoint("body:done")
	ret := dynamo.S("txn:" + string(ev.Txn.Mode))
	if ev.CallerFn != "" && !rt.cfg.DisableCallbacks {
		if err := rt.issueCallback(ev.CallerFn, ev.CallerInstance, ev.CallerStep, id, ret); err != nil {
			obs.complete(err)
			return dynamo.Null, err
		}
		inv.CrashPoint("callback:sent")
	}
	if err := rt.markIntentDone(id, ret); err != nil {
		obs.complete(err)
		return dynamo.Null, err
	}
	obs.complete(nil)
	return ret, nil
}
