package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/uuid"
)

// Shard-boundary property test: a workload run against a 1-shard store and
// an 8-shard store (with group commit on) must produce identical observable
// results — every invocation outcome, every intent's recorded return, and
// the final committed KV state. Sharding and batching are substrate-level
// reorganizations; if any observable differs, a write was routed, latched,
// or batched incorrectly. CI runs this under -race.

const (
	equivKeys = 12
	equivOps  = 150
)

// equivOutcome is the observable result of one workload invocation.
type equivOutcome struct {
	ret string
	err string
}

// runShardEquivWorkload drives a deterministic op mix (writes, conditional
// writes, locked read-modify-writes, reads) through one SSF on a store with
// the given shard layout, then returns the invocation outcomes, the final
// state of every key, and the re-read intent returns.
func runShardEquivWorkload(t *testing.T, shards int, groupCommit bool) ([]equivOutcome, map[string]string) {
	t.Helper()
	store := dynamo.NewStore(
		dynamo.WithShards(shards),
		dynamo.WithGroupCommit(groupCommit),
	)
	plat := platform.New(platform.Options{
		ConcurrencyLimit: 10000,
		IDs:              &uuid.Seq{Prefix: "req"},
	})
	rt, err := NewRuntime(RuntimeOptions{
		Function: "mix",
		Store:    store,
		Platform: plat,
		Mode:     ModeBeldi,
		Config:   Config{RowCap: 4, TableShards: shards},
		IDs:      &uuid.Seq{Prefix: "mix"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.CreateDataTable("state"); err != nil {
		t.Fatal(err)
	}
	Register(rt, func(e *Env, input Value) (Value, error) {
		m := input.Map()
		key := m["Key"].Str()
		switch m["Op"].Str() {
		case "write":
			if err := e.Write("state", key, m["Val"]); err != nil {
				return dynamo.Null, err
			}
			return m["Val"], nil
		case "condwrite":
			// Monotonic max: only raise the stored value.
			ok, err := e.CondWrite("state", key, m["Val"],
				dynamo.Or(
					dynamo.NotExists(dynamo.A(attrValue)),
					dynamo.Lt(dynamo.A(attrValue), m["Val"]),
				))
			if err != nil {
				return dynamo.Null, err
			}
			return dynamo.Bool(ok), nil
		case "lockincr":
			if err := e.Lock("state", key); err != nil {
				return dynamo.Null, err
			}
			v, err := e.Read("state", key)
			if err != nil {
				return dynamo.Null, err
			}
			next := dynamo.NInt(v.Int() + 1)
			if err := e.Write("state", key, next); err != nil {
				return dynamo.Null, err
			}
			if err := e.Unlock("state", key); err != nil {
				return dynamo.Null, err
			}
			return next, nil
		default: // read
			return e.Read("state", key)
		}
	})

	rng := rand.New(rand.NewSource(7))
	ops := []string{"write", "condwrite", "lockincr", "read"}
	var outcomes []equivOutcome
	for i := 0; i < equivOps; i++ {
		in := dynamo.M(map[string]Value{
			"Op":  dynamo.S(ops[rng.Intn(len(ops))]),
			"Key": dynamo.S(fmt.Sprintf("k%02d", rng.Intn(equivKeys))),
			"Val": dynamo.NInt(int64(rng.Intn(40))),
		})
		out, err := plat.Invoke("mix", ClientEnvelope(in))
		o := equivOutcome{ret: out.String()}
		if err != nil {
			o.err = err.Error()
		}
		outcomes = append(outcomes, o)
	}

	// Concurrent phase: parallel locked increments actually exercise the
	// group-commit batcher with multi-op batches (the sequential phase
	// above, one blocking invoke at a time, produces only size-1 batches).
	// Per-invocation outcomes are interleaving-dependent here, but the
	// final counters are not: each key ends at exactly the number of
	// increments aimed at it, on any shard layout.
	const (
		equivConcWorkers = 8
		equivConcOps     = 20
	)
	var wg sync.WaitGroup
	errs := make([]error, equivConcWorkers)
	for w := 0; w < equivConcWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < equivConcOps; i++ {
				in := dynamo.M(map[string]Value{
					"Op":  dynamo.S("lockincr"),
					"Key": dynamo.S(fmt.Sprintf("c%d", (w+i)%4)),
				})
				if _, err := plat.Invoke("mix", ClientEnvelope(in)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Collectors and fsck must behave identically too: the GC walks every
	// DAAL chain, so a mis-sharded row would surface here.
	if _, err := rt.RunIntentCollector(); err != nil {
		t.Fatal(err)
	}
	plat.Drain()
	if _, err := rt.RunGarbageCollector(); err != nil {
		t.Fatal(err)
	}
	if err := Fsck(rt); err != nil {
		t.Fatalf("fsck (%d shards): %v", shards, err)
	}

	state := make(map[string]string, equivKeys+4)
	keys := make([]string, 0, equivKeys+4)
	for k := 0; k < equivKeys; k++ {
		keys = append(keys, fmt.Sprintf("k%02d", k))
	}
	for c := 0; c < 4; c++ {
		keys = append(keys, fmt.Sprintf("c%d", c))
	}
	for _, key := range keys {
		v, err := rt.PeekState("state", key)
		if err != nil {
			t.Fatal(err)
		}
		state[key] = v.String()
	}
	return outcomes, state
}

func TestShardEquivalenceProperty(t *testing.T) {
	out1, state1 := runShardEquivWorkload(t, 1, false)
	out8, state8 := runShardEquivWorkload(t, 8, true)
	if len(out1) != len(out8) {
		t.Fatalf("outcome counts differ: %d vs %d", len(out1), len(out8))
	}
	for i := range out1 {
		if out1[i] != out8[i] {
			t.Errorf("op %d outcome differs:\n 1 shard:  %+v\n 8 shards: %+v", i, out1[i], out8[i])
		}
	}
	for k, v1 := range state1 {
		if v8 := state8[k]; v1 != v8 {
			t.Errorf("final state %s differs: %q vs %q", k, v1, v8)
		}
	}
	// The concurrent locked increments are exactly-once on both layouts:
	// 8 workers × 20 ops spread evenly over 4 keys = 40 per key.
	for c := 0; c < 4; c++ {
		key := fmt.Sprintf("c%d", c)
		if state1[key] != "40" || state8[key] != "40" {
			t.Errorf("concurrent counter %s: 1 shard %s, 8 shards %s, want 40",
				key, state1[key], state8[key])
		}
	}
}
