package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/uuid"
)

// These tests establish the paper's headline guarantee (§2.2): for a crash
// injected at EVERY operation boundary of every SSF in a workflow, after
// the intent collector finishes the job, observable state equals that of a
// crash-free execution. The sweep first runs the workflow under an
// OpCounter to learn how many crash points exist, then re-runs it once per
// (function, op-index) with a CrashNthOp plan.

// crashSweep runs workload once per crash point of function fn; after each
// crashed run it drives recovery and calls check.
func crashSweep(t *testing.T, fns []string, build func(f *fixture), workload func(f *fixture) error, check func(f *fixture, label string)) {
	t.Helper()
	// Discovery run: count crash points per function.
	counter := &platform.OpCounter{}
	probe := newFixture(t, withFaults(counter))
	build(probe)
	if err := workload(probe); err != nil {
		t.Fatalf("crash-free run failed: %v", err)
	}
	probe.plat.Drain()
	check(probe, "crash-free")

	for _, fn := range fns {
		max := counter.Max(fn)
		if max == 0 {
			t.Fatalf("function %s hit no crash points; sweep is vacuous", fn)
		}
		for n := 1; n <= max; n++ {
			label := fmt.Sprintf("%s@op%d", fn, n)
			plan := &CrashNthOpOnce{Function: fn, N: n}
			f := newFixture(t, withFaults(plan))
			build(f)
			err := workload(f)
			f.plat.Drain()
			if err == nil && !plan.Fired() {
				t.Fatalf("%s: plan never fired", label)
			}
			f.recoverAll()
			check(f, label)
		}
	}
}

// CrashNthOpOnce wraps platform.CrashNthOp (avoids importing the name at
// call sites).
type CrashNthOpOnce = platform.CrashNthOp

func TestExactlyOnceSingleSSFCrashSweep(t *testing.T) {
	// One SSF: read-increment-write plus a conditional write and a second
	// counter — multiple external ops, crashed at every boundary.
	build := func(f *fixture) {
		f.fn("w", func(e *Env, in Value) (Value, error) {
			v, err := e.Read("counter", "a")
			if err != nil {
				return dynamo.Null, err
			}
			if err := e.Write("counter", "a", dynamo.NInt(v.Int()+1)); err != nil {
				return dynamo.Null, err
			}
			// Conditional write: claim a slot only once.
			if _, err := e.CondWrite("counter", "slot", dynamo.S("claimed"),
				dynamo.Or(dynamo.NotExists(dynamo.A(attrValue)), dynamo.Eq(dynamo.A(attrValue), dynamo.Null))); err != nil {
				return dynamo.Null, err
			}
			b, err := e.Read("counter", "b")
			if err != nil {
				return dynamo.Null, err
			}
			if err := e.Write("counter", "b", dynamo.NInt(b.Int()+10)); err != nil {
				return dynamo.Null, err
			}
			return dynamo.S("done"), nil
		}, "counter")
	}
	workload := func(f *fixture) error {
		_, err := f.invoke("w", dynamo.Null)
		if err != nil && !errors.Is(err, platform.ErrCrashed) {
			return err
		}
		return nil
	}
	check := func(f *fixture, label string) {
		if got := f.readData("w", "counter", "a"); got.Int() != 1 {
			t.Errorf("%s: a = %v, want 1", label, got)
		}
		if got := f.readData("w", "counter", "b"); got.Int() != 10 {
			t.Errorf("%s: b = %v, want 10", label, got)
		}
		if got := f.readData("w", "counter", "slot"); got.Str() != "claimed" {
			t.Errorf("%s: slot = %v", label, got)
		}
	}
	crashSweep(t, []string{"w"}, build, workload, check)
}

func TestExactlyOnceWorkflowCrashSweep(t *testing.T) {
	// Two-SSF workflow: front reads+writes its own state and sync-invokes
	// a backend that increments its own counter. Crash every op boundary of
	// BOTH functions, including the callback window of Figure 9.
	build := func(f *fixture) {
		f.fn("back", counterBody, "counter")
		f.fn("front", func(e *Env, in Value) (Value, error) {
			v, err := e.Read("state", "seq")
			if err != nil {
				return dynamo.Null, err
			}
			out, err := e.SyncInvoke("back", dynamo.S("k"))
			if err != nil {
				return dynamo.Null, err
			}
			if err := e.Write("state", "seq", dynamo.NInt(v.Int()+out.Int())); err != nil {
				return dynamo.Null, err
			}
			return out, nil
		}, "state")
	}
	workload := func(f *fixture) error {
		_, err := f.invoke("front", dynamo.Null)
		if err != nil && !errors.Is(err, platform.ErrCrashed) && !errors.Is(err, platform.ErrTimeout) {
			return err
		}
		return nil
	}
	check := func(f *fixture, label string) {
		if got := f.readData("back", "counter", "k"); got.Int() != 1 {
			t.Errorf("%s: backend counter = %v, want 1 (exactly-once violated)", label, got)
		}
		if got := f.readData("front", "state", "seq"); got.Int() != 1 {
			t.Errorf("%s: front seq = %v, want 1", label, got)
		}
	}
	crashSweep(t, []string{"front", "back"}, build, workload, check)
}

func TestExactlyOnceAsyncCrashSweep(t *testing.T) {
	// Async invocation: front registers + fires an async increment; sweep
	// both sides.
	build := func(f *fixture) {
		f.fn("bg", counterBody, "counter")
		f.fn("front", func(e *Env, in Value) (Value, error) {
			if err := e.AsyncInvoke("bg", dynamo.S("k")); err != nil {
				return dynamo.Null, err
			}
			return dynamo.S("ok"), nil
		})
	}
	workload := func(f *fixture) error {
		_, err := f.invoke("front", dynamo.Null)
		if err != nil && !errors.Is(err, platform.ErrCrashed) && !errors.Is(err, platform.ErrTimeout) {
			return err
		}
		return nil
	}
	check := func(f *fixture, label string) {
		if got := f.readData("bg", "counter", "k"); got.Int() != 1 {
			t.Errorf("%s: counter = %v, want 1", label, got)
		}
	}
	crashSweep(t, []string{"front", "bg"}, build, workload, check)
}

func TestBaselineDoubleExecutesUnderCrashRetry(t *testing.T) {
	// Negative control: the baseline (no Beldi) double-increments when the
	// client retries after a mid-body crash — the anomaly §2.1 describes.
	plan := &platform.CrashOnce{Function: "w", Label: "after-write"}
	f := newFixture(t, withMode(ModeBaseline), withFaults(plan))
	f.fn("w", func(e *Env, in Value) (Value, error) {
		v, err := e.Read("counter", "k")
		if err != nil {
			return dynamo.Null, err
		}
		if err := e.Write("counter", "k", dynamo.NInt(v.Int()+1)); err != nil {
			return dynamo.Null, err
		}
		e.crash("after-write")
		return dynamo.S("done"), nil
	}, "counter")
	if _, err := f.invoke("w", dynamo.Null); !errors.Is(err, platform.ErrCrashed) {
		t.Fatalf("first attempt: %v", err)
	}
	// Client retry (what a provider's automatic retry would do).
	f.mustInvoke("w", dynamo.Null)
	if got := f.readData("w", "counter", "k"); got.Int() != 2 {
		t.Errorf("baseline counter = %v (double execution expected: the write landed twice)", got)
	}
}

func TestCallbackAblationReproducesFigure9Anomaly(t *testing.T) {
	// With callbacks disabled (ablation), kill the callee after it marks
	// done but before returning. The caller's invoke log never gets the
	// result, so its re-execution re-invokes the callee; once the callee's
	// GC has collected the intent, the callee re-executes and the effect
	// duplicates — exactly the Figure 9 scenario the callback prevents.
	// Without callbacks the caller's invoke log never records the callee's
	// result. Kill the caller right after its callee ("mid") completes;
	// once mid's GC collects the finished intent and invoke log (its own
	// collector runs "at its own pace", §4.5), the caller's re-execution
	// finds no result and re-invokes mid — whose intent is gone — so mid
	// re-executes, mints a FRESH instance id for its own callee (its invoke
	// log was collected), and the leaf's counter duplicates. This is
	// Figure 9's anomaly, reproduced by ablating the callback.
	plan := &platform.CrashOnce{Function: "caller", Label: "body:done"}
	cfg := Config{RowCap: 4, T: time.Millisecond, ICMinAge: time.Millisecond, DisableCallbacks: true}
	f := newFixture(t, withConfig(cfg), withFaults(plan))
	f.fn("leaf", counterBody, "counter")
	f.fn("mid", func(e *Env, in Value) (Value, error) {
		return e.SyncInvoke("leaf", dynamo.S("k"))
	})
	f.fn("caller", func(e *Env, in Value) (Value, error) {
		return e.SyncInvoke("mid", dynamo.Null)
	})
	_, err := f.invoke("caller", dynamo.Null)
	if !errors.Is(err, platform.ErrCrashed) {
		t.Fatalf("caller should crash after the invoke, got %v", err)
	}
	if got := f.readData("leaf", "counter", "k"); got.Int() != 1 {
		t.Fatalf("counter = %v before GC", got)
	}
	// Let mid's GC collect the completed intent and its invoke log.
	time.Sleep(5 * time.Millisecond)
	if _, err := f.rts["mid"].RunGarbageCollector(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := f.rts["mid"].RunGarbageCollector(); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.store.TableItemCount(f.rts["mid"].intentTable); n != 0 {
		t.Fatalf("%d mid intents survived GC", n)
	}
	// The caller's IC re-executes the caller; its invoke log has no result.
	f.recoverAll()
	if got := f.readData("leaf", "counter", "k"); got.Int() != 2 {
		t.Errorf("counter = %v; expected the ablation to double-execute (=2)", got)
	}
}

func TestCallbackPreventsFigure9Anomaly(t *testing.T) {
	// Same scenario with callbacks ON: the caller holds the result before
	// the callee marks done, so recovery returns the logged result and the
	// counter stays at 1.
	plan := &platform.CrashOnce{Function: "caller", Label: "body:done"}
	cfg := Config{RowCap: 4, T: time.Millisecond, ICMinAge: time.Millisecond}
	f := newFixture(t, withConfig(cfg), withFaults(plan))
	f.fn("leaf", counterBody, "counter")
	f.fn("mid", func(e *Env, in Value) (Value, error) {
		return e.SyncInvoke("leaf", dynamo.S("k"))
	})
	f.fn("caller", func(e *Env, in Value) (Value, error) {
		return e.SyncInvoke("mid", dynamo.Null)
	})
	_, err := f.invoke("caller", dynamo.Null)
	if !errors.Is(err, platform.ErrCrashed) {
		t.Fatalf("caller should crash after the invoke, got %v", err)
	}
	time.Sleep(5 * time.Millisecond)
	f.rts["mid"].RunGarbageCollector()
	time.Sleep(5 * time.Millisecond)
	f.rts["mid"].RunGarbageCollector()
	f.recoverAll()
	if got := f.readData("leaf", "counter", "k"); got.Int() != 1 {
		t.Errorf("counter = %v, want 1 (callback should prevent re-execution)", got)
	}
}

func TestConcurrentDuplicateRestartsConverge(t *testing.T) {
	// Even if the "IC" floods the system with duplicate restarts of a live
	// instance, at-most-once per step holds.
	f := newFixture(t)
	f.fn("w", counterBody, "counter")
	ev := envelope{Kind: kindCall, InstanceID: "dup-1", Input: dynamo.S("k")}
	done := make(chan error, 10)
	for i := 0; i < 10; i++ {
		go func() {
			_, err := f.plat.Invoke("w", ev.encode())
			done <- err
		}()
	}
	for i := 0; i < 10; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := f.readData("w", "counter", "k"); got.Int() != 1 {
		t.Errorf("counter = %v after 10 duplicate executions, want 1", got)
	}
}

func TestChaoticCrashStorm(t *testing.T) {
	// Probabilistic chaos: 30 workflow requests under a 2% per-op crash
	// rate across all functions; after recovery, counters must equal the
	// request count exactly.
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	plan := &platform.CrashProb{P: 0.02, Seed: 7}
	f := newFixture(t, withFaults(plan))
	f.fn("back", counterBody, "counter")
	f.fn("front", func(e *Env, in Value) (Value, error) {
		if _, err := e.SyncInvoke("back", dynamo.S("total")); err != nil {
			return dynamo.Null, err
		}
		v, err := e.Read("state", "n")
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.Null, e.Write("state", "n", dynamo.NInt(v.Int()+1))
	}, "state")
	// Each request carries a stable instance id, modelling a provider
	// request id that survives client retries: a crash before the intent is
	// even logged is the retry's job; everything after is Beldi's.
	const reqs = 30
	for i := 0; i < reqs; i++ {
		ev := envelope{Kind: kindCall, InstanceID: fmt.Sprintf("storm-%03d", i), Input: dynamo.Null}
		for attempt := 0; attempt < 20; attempt++ {
			if _, err := f.plat.Invoke("front", ev.encode()); err == nil {
				break
			}
		}
	}
	f.plat.Drain()
	plan.P = 0 // stop the storm so recovery can make progress
	f.recoverAll()
	if got := f.readData("back", "counter", "total"); got.Int() != reqs {
		t.Errorf("backend total = %v, want %d", got, reqs)
	}
	if got := f.readData("front", "state", "n"); got.Int() != reqs {
		t.Errorf("front n = %v, want %d", got, reqs)
	}
}

func TestICRestartsOnlyStaleInstances(t *testing.T) {
	f := newFixture(t, withConfig(Config{RowCap: 4, T: time.Hour, ICMinAge: time.Hour}))
	var fail atomic.Bool
	fail.Store(true)
	f.fn("flaky", func(e *Env, in Value) (Value, error) {
		if fail.Load() {
			return dynamo.Null, errors.New("boom")
		}
		return dynamo.S("ok"), nil
	})
	f.invoke("flaky", dynamo.Null) //nolint:errcheck
	fail.Store(false)
	// ICMinAge is an hour: a fresh failure is not restarted yet.
	if n, _ := f.rts["flaky"].RunIntentCollector(); n != 0 {
		t.Errorf("IC restarted %d fresh instances", n)
	}
}

func TestICClaimPreventsDoubleRestart(t *testing.T) {
	f := newFixture(t)
	var fail atomic.Bool
	fail.Store(true)
	f.fn("flaky", func(e *Env, in Value) (Value, error) {
		if fail.Load() {
			return dynamo.Null, errors.New("boom")
		}
		return dynamo.S("ok"), nil
	})
	f.invoke("flaky", dynamo.Null) //nolint:errcheck
	fail.Store(false)
	time.Sleep(2 * time.Millisecond)
	// Two collectors race: only one restart total may be issued.
	rt := f.rts["flaky"]
	n1, err1 := rt.RunIntentCollector()
	n2, err2 := rt.RunIntentCollector()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if n1+n2 != 1 {
		t.Errorf("restarts = %d + %d, want exactly 1", n1, n2)
	}
	f.plat.Drain()
}

func TestTimeoutedInstanceIsRecovered(t *testing.T) {
	// An instance that exceeds its platform timeout dies at the next op
	// boundary; the IC finishes the job.
	f := newFixture(t)
	var slow atomic.Bool
	slow.Store(true)
	f.fn("slow", func(e *Env, in Value) (Value, error) {
		v, err := e.Read("counter", "k")
		if err != nil {
			return dynamo.Null, err
		}
		if slow.Load() {
			time.Sleep(50 * time.Millisecond)
		}
		if err := e.Write("counter", "k", dynamo.NInt(v.Int()+1)); err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("done"), nil
	}, "counter")
	// Re-register with a short timeout.
	f.plat.Register("slow", f.rts["slow"].Handler(), 10*time.Millisecond)
	if _, err := f.invoke("slow", dynamo.Null); !errors.Is(err, platform.ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	slow.Store(false)
	f.recoverAll()
	if got := f.readData("slow", "counter", "k"); got.Int() != 1 {
		t.Errorf("counter = %v, want 1", got)
	}
}

func TestSeqSourceIsolationBetweenRuntimes(t *testing.T) {
	// Sanity: distinct runtimes mint ids from distinct prefixes, so callee
	// ids never collide across SSFs in the fixtures.
	a := &uuid.Seq{Prefix: "a"}
	b := &uuid.Seq{Prefix: "b"}
	if a.NewString() == b.NewString() {
		t.Error("collision")
	}
}
