package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// The cross-table-transaction comparator (§7.3) must provide the same
// guarantees as the linked DAAL through a different storage layout. These
// tests re-run the load-bearing scenarios in ModeCrossTable.

func TestCrossTableReadWriteCondWrite(t *testing.T) {
	f := newFixture(t, withMode(ModeCrossTable))
	f.fn("w", func(e *Env, in Value) (Value, error) {
		v, err := e.Read("kv", "k")
		if err != nil {
			return dynamo.Null, err
		}
		if err := e.Write("kv", "k", dynamo.NInt(v.Int()+1)); err != nil {
			return dynamo.Null, err
		}
		ok, err := e.CondWrite("kv", "cap", dynamo.S("set"),
			dynamo.Or(dynamo.NotExists(dynamo.A(attrValue)), dynamo.Eq(dynamo.A(attrValue), dynamo.Null)))
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.Bool(ok), nil
	}, "kv")
	out1 := f.mustInvoke("w", dynamo.Null)
	out2 := f.mustInvoke("w", dynamo.Null)
	if !out1.BoolVal() || out2.BoolVal() {
		t.Errorf("condWrite outcomes: %v %v", out1, out2)
	}
	if got := f.readData("w", "kv", "k"); got.Int() != 2 {
		t.Errorf("k = %v", got)
	}
}

func TestCrossTableExactlyOnceCrashSweep(t *testing.T) {
	build := func(f *fixture) {
		f.fn("back", counterBody, "counter")
		f.fn("front", func(e *Env, in Value) (Value, error) {
			out, err := e.SyncInvoke("back", dynamo.S("k"))
			if err != nil {
				return dynamo.Null, err
			}
			return out, e.Write("state", "last", out)
		}, "state")
	}
	workload := func(f *fixture) error {
		_, err := f.invoke("front", dynamo.Null)
		if err != nil && !errors.Is(err, platform.ErrCrashed) && !errors.Is(err, platform.ErrTimeout) {
			return err
		}
		return nil
	}
	check := func(f *fixture, label string) {
		if got := f.readData("back", "counter", "k"); got.Int() != 1 {
			t.Errorf("%s: counter = %v, want 1", label, got)
		}
	}
	// Reuse the sweep helper with the cross-table mode injected.
	counter := &platform.OpCounter{}
	probe := newFixture(t, withMode(ModeCrossTable), withFaults(counter))
	build(probe)
	if err := workload(probe); err != nil {
		t.Fatal(err)
	}
	probe.plat.Drain()
	check(probe, "crash-free")
	for _, fn := range []string{"front", "back"} {
		for n := 1; n <= counter.Max(fn); n++ {
			plan := &platform.CrashNthOp{Function: fn, N: n}
			f := newFixture(t, withMode(ModeCrossTable), withFaults(plan))
			build(f)
			workload(f) //nolint:errcheck
			f.plat.Drain()
			f.recoverAll()
			check(f, label(fn, n))
		}
	}
}

func label(fn string, n int) string { return fn + "@op" + string(rune('0'+n%10)) }

func TestCrossTableTransactionCommitAbort(t *testing.T) {
	f := newFixture(t, withMode(ModeCrossTable))
	f.fn("bank", transferBody, "acct")
	rt := f.rts["bank"]
	// Seed directly through the layer.
	for k, v := range map[string]int64{"a": 100, "b": 50} {
		if _, err := rt.layer().loggedMutate("acct", k, "seed#"+k, mutation{setVal: valPtr(dynamo.NInt(v))}); err != nil {
			t.Fatal(err)
		}
	}
	out := f.mustInvoke("bank", dynamo.M(map[string]Value{
		"from": dynamo.S("a"), "to": dynamo.S("b"), "amount": dynamo.NInt(30),
	}))
	if out.Str() != "ok" {
		t.Fatalf("transfer: %v", out)
	}
	if a := f.readData("bank", "acct", "a"); a.Int() != 70 {
		t.Errorf("a = %v", a)
	}
	// Insufficient: no change.
	out = f.mustInvoke("bank", dynamo.M(map[string]Value{
		"from": dynamo.S("a"), "to": dynamo.S("b"), "amount": dynamo.NInt(1000),
	}))
	if out.Str() != "insufficient" {
		t.Fatalf("transfer: %v", out)
	}
	if a := f.readData("bank", "acct", "a"); a.Int() != 70 {
		t.Errorf("a = %v after insufficient", a)
	}
}

func TestCrossTableGCPrunesWriteLogs(t *testing.T) {
	f := newFixture(t, withMode(ModeCrossTable),
		withConfig(Config{RowCap: 2, T: 5 * time.Millisecond, ICMinAge: time.Millisecond}))
	f.fn("w", counterBody, "counter")
	rt := f.rts["w"]
	for i := 0; i < 10; i++ {
		f.mustInvoke("w", dynamo.S("k"))
	}
	if n, _ := f.store.TableItemCount(rt.writeLogTable("counter")); n != 10 {
		t.Fatalf("write log rows = %d", n)
	}
	for pass := 0; pass < 3; pass++ {
		time.Sleep(8 * time.Millisecond)
		if _, err := rt.RunGarbageCollector(); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := f.store.TableItemCount(rt.writeLogTable("counter")); n != 0 {
		t.Errorf("%d write log rows survive GC", n)
	}
	if got := f.readData("w", "counter", "k"); got.Int() != 10 {
		t.Errorf("counter = %v", got)
	}
}

func TestCrossTableUsesTransactWriteNotDAAL(t *testing.T) {
	// Structural check for the §7.3 comparison: cross-table mode issues
	// store transactions; Beldi mode never does.
	for _, mode := range []Mode{ModeCrossTable, ModeBeldi} {
		f := newFixture(t, withMode(mode))
		f.fn("w", counterBody, "counter")
		before := f.store.Metrics().Snapshot()
		f.mustInvoke("w", dynamo.S("k"))
		diff := f.store.Metrics().Snapshot().Sub(before)
		tx := diff.Ops["txwrite"]
		if mode == ModeCrossTable && tx == 0 {
			t.Error("cross-table mode issued no store transactions")
		}
		if mode == ModeBeldi && tx != 0 {
			t.Errorf("beldi mode issued %d store transactions", tx)
		}
	}
}
