package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dynamo"
)

// This file implements the linked DAAL (§4.1, Figure 4): a per-item linked
// list of rows, each row holding the item's key, a value, lock-owner
// metadata, a bounded write log, and a pointer to the next row. Log/update
// pairs are applied atomically within one row — the store's atomicity scope
// — and new rows are appended when the tail's log fills, so the structure
// works on databases whose atomicity scope is far smaller than Olive's
// DAAL assumed.
//
// Row ids are deterministic ("r00000000" for the head, then r00000001, ...):
// concurrent appenders race to create the *same* successor row with a
// conditional put, so a lost race leaves no orphan rows behind. The paper
// tolerates orphans from failed appends (§4.1); deterministic ids make them
// impossible while preserving every observable property the protocols rely
// on, and the GC stays exactly as described.

// headRowID is the special row id of the never-collected head row.
const headRowID = "r00000000"

// nextRowID returns the deterministic successor id.
func nextRowID(id string) string {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "r"))
	if err != nil {
		// Corrupt row id: surface loudly, this is a programming error.
		panic(fmt.Sprintf("core: malformed DAAL row id %q", id))
	}
	return fmt.Sprintf("r%08d", n+1)
}

// daal operates on one physical linked-DAAL table.
type daal struct {
	rt    *Runtime
	table string
}

// daalRow is a decoded row.
type daalRow struct {
	key      string
	rowID    string
	value    Value
	lock     Value // Null or M{Id, Start}
	logSize  int
	recent   map[string]Value // logKey -> outcome
	recycled map[string]bool  // logKey -> marked recyclable by the GC
	next     string           // "" when this row is the tail
	dangle   int64            // 0 when not dangling
}

func decodeDAALRow(it dynamo.Item) daalRow {
	r := daalRow{
		key:   it[attrKey].Str(),
		rowID: it[attrRowID].Str(),
		value: it[attrValue],
		lock:  it[attrLockOwner],
	}
	r.logSize = int(it[attrLogSize].Int())
	if m := it[attrRecent].Map(); m != nil {
		r.recent = make(map[string]Value, len(m))
		for k, v := range m {
			r.recent[k] = v
		}
	}
	if m := it[attrRecycled].Map(); m != nil {
		r.recycled = make(map[string]bool, len(m))
		for k := range m {
			r.recycled[k] = true
		}
	}
	if v, ok := it[attrNextRow]; ok && !v.IsNull() {
		r.next = v.Str()
	}
	if v, ok := it[attrDangleTime]; ok {
		r.dangle = v.Int()
	}
	return r
}

// mutation describes what a logged conditional write does to the row: an
// optional guard over the row's Value/LockOwner and new values for either.
// Plain writes set value with a True guard; lock operations guard and set
// LockOwner (§6.1 stores lock ownership "alongside the data and logs").
type mutation struct {
	cond    dynamo.Cond // nil means unconditional
	setVal  *Value
	setLock *Value
	// replayed, when non-nil, is set true if the step's outcome turns out
	// to be already logged (case A) — the telemetry layer's replay marker.
	replayed *bool
}

// markReplayed flags the step as already-logged for the telemetry layer.
func (m mutation) markReplayed() {
	if m.replayed != nil {
		*m.replayed = true
	}
}

func (m mutation) guard() dynamo.Cond {
	if m.cond == nil {
		return dynamo.True()
	}
	return m.cond
}

func (m mutation) updates() []dynamo.Update {
	var ups []dynamo.Update
	if m.setVal != nil {
		ups = append(ups, dynamo.Set(dynamo.A(attrValue), *m.setVal))
	}
	if m.setLock != nil {
		ups = append(ups, dynamo.Set(dynamo.A(attrLockOwner), *m.setLock))
	}
	return ups
}

// skeleton is the locally reconstructed structure of a linked DAAL from one
// scan+projection round trip (§4.1): row ids, next pointers, and — when the
// scan projected a write-log entry — where that entry lives.
type skeleton struct {
	rows map[string]skelRow
}

type skelRow struct {
	next    string
	outcome Value
	hasLog  bool
}

// scanSkeleton queries every row of key's DAAL, projecting only RowId and
// NextRow (256 bits per row, §4.1) plus, when logKey is non-empty, that
// single write-log entry — the write path's "has this step already
// executed anywhere" check (§4.3).
func (d *daal) scanSkeleton(key, logKey string) (skeleton, error) {
	proj := []dynamo.Path{dynamo.A(attrRowID), dynamo.A(attrNextRow)}
	if logKey != "" {
		proj = append(proj, dynamo.AK(attrRecent, logKey))
	}
	items, err := d.rt.store.Query(d.table, dynamo.S(key), dynamo.QueryOpts{Projection: proj})
	if err != nil {
		return skeleton{}, err
	}
	sk := skeleton{rows: make(map[string]skelRow, len(items))}
	for _, it := range items {
		row := skelRow{}
		if v, ok := it[attrNextRow]; ok && !v.IsNull() {
			row.next = v.Str()
		}
		if out, ok := it.Get(dynamo.AK(attrRecent, logKey)); logKey != "" && ok {
			row.outcome = out
			row.hasLog = true
		}
		sk.rows[it[attrRowID].Str()] = row
	}
	return sk, nil
}

// tail walks the skeleton from the head to the first row without a next
// pointer. ok is false when the DAAL has no head yet (never-written key).
// Rows disconnected by the GC are unreachable from the head and therefore
// ignored, per §5.
func (sk skeleton) tail() (string, bool) {
	cur, ok := sk.rows[headRowID]
	if !ok {
		return "", false
	}
	id := headRowID
	for cur.next != "" {
		next, ok := sk.rows[cur.next]
		if !ok {
			// The pointer's target is missing from the snapshot; the store
			// scan is a consistent snapshot so this indicates the target was
			// GC-deleted — treat the current row as the effective end; the
			// conditional-write case analysis self-corrects from there.
			break
		}
		id, cur = cur.next, next
	}
	return id, true
}

// findLog reports whether logKey appeared in any scanned (reachable or
// orphaned) row, and its recorded outcome. Scans may return disconnected
// rows; finding the entry in any of them is sufficient for case A, because
// log entries are never moved between rows.
func (sk skeleton) findLog() (Value, bool) {
	for _, r := range sk.rows {
		if r.hasLog {
			return r.outcome, true
		}
	}
	return dynamo.Null, false
}

// readRow fetches one full row.
func (d *daal) readRow(key, rowID string) (daalRow, bool, error) {
	it, ok, err := d.rt.store.Get(d.table, dynamo.HSK(dynamo.S(key), dynamo.S(rowID)))
	if err != nil || !ok {
		return daalRow{}, false, err
	}
	return decodeDAALRow(it), true, nil
}

// ensureHead creates key's head row if missing. Losing the creation race is
// fine — the head then exists either way.
func (d *daal) ensureHead(key string) error {
	err := d.rt.store.Put(d.table, dynamo.Item{
		attrKey:     dynamo.S(key),
		attrRowID:   dynamo.S(headRowID),
		attrValue:   dynamo.Null,
		attrLogSize: dynamo.N(0),
	}, dynamo.NotExists(dynamo.A(attrKey)))
	if err != nil && !errors.Is(err, dynamo.ErrConditionFailed) {
		return err
	}
	return nil
}

// appendRow extends the DAAL past a full row (case D, §4.3). The new row
// carries the full row's value and lock owner — both immutable once the row
// filled, since every mutation is guarded by LogSize < N — so the tail
// always holds the item's most recent state.
func (d *daal) appendRow(prev daalRow) (string, error) {
	newID := nextRowID(prev.rowID)
	item := dynamo.Item{
		attrKey:     dynamo.S(prev.key),
		attrRowID:   dynamo.S(newID),
		attrValue:   prev.value,
		attrLogSize: dynamo.N(0),
	}
	if !prev.lock.IsNull() {
		item[attrLockOwner] = prev.lock
	}
	err := d.rt.store.Put(d.table, item, dynamo.NotExists(dynamo.A(attrKey)))
	if err != nil && !errors.Is(err, dynamo.ErrConditionFailed) {
		return "", err
	}
	// Link the predecessor. A conditional failure means a concurrent
	// appender already linked it — to the same deterministic id.
	err = d.rt.store.Update(d.table,
		dynamo.HSK(dynamo.S(prev.key), dynamo.S(prev.rowID)),
		dynamo.NotExists(dynamo.A(attrNextRow)),
		dynamo.Set(dynamo.A(attrNextRow), dynamo.S(newID)))
	if err != nil && !errors.Is(err, dynamo.ErrConditionFailed) {
		return "", err
	}
	return newID, nil
}

// loggedWrite performs the lock-free logged conditional write of §4.3/§4.4
// (Figures 6, 7, 17, 18): find the tail, check whether logKey already
// executed, atomically apply-and-log, appending rows as needed. It returns
// the operation's outcome — true when the mutation's guard held and the
// mutation was applied (now or by a previous execution of this step), false
// when the guard failed (recorded as a false conditional, case B2).
func (d *daal) loggedWrite(key, logKey string, mut mutation) (bool, error) {
	sk, err := d.scanSkeleton(key, logKey)
	if err != nil {
		return false, err
	}
	if out, found := sk.findLog(); found {
		d.rt.stats.Replays.Add(1)
		mut.markReplayed()
		return out.BoolVal(), nil // case A, resolved by the scan
	}
	tailID, ok := sk.tail()
	if !ok {
		if err := d.ensureHead(key); err != nil {
			return false, err
		}
		tailID = headRowID
	}
	return d.tryWrite(key, logKey, tailID, mut, 0)
}

// maxChainHops bounds tryWrite's walk; a DAAL under GC stays shallow, and a
// walk this long indicates a livelock-grade anomaly worth surfacing.
const maxChainHops = 1 << 16

func (d *daal) tryWrite(key, logKey, rowID string, mut mutation, depth int) (bool, error) {
	if depth > maxChainHops {
		return false, fmt.Errorf("core: %s/%s: DAAL chain walk exceeded %d hops", d.table, key, maxChainHops)
	}
	rowKey := dynamo.HSK(dynamo.S(key), dynamo.S(rowID))
	roomLeft := dynamo.And(
		dynamo.NotExists(dynamo.AK(attrRecent, logKey)),
		dynamo.Lt(dynamo.A(attrLogSize), dynamo.N(float64(d.rt.cfg.RowCap))),
		dynamo.NotExists(dynamo.A(attrNextRow)),
	)

	// Case B1: guard holds, space available — apply and log atomically.
	ups := append(mut.updates(),
		dynamo.Add(dynamo.A(attrLogSize), 1),
		dynamo.Set(dynamo.AK(attrRecent, logKey), dynamo.Bool(true)),
	)
	err := d.rt.store.Update(d.table, rowKey, dynamo.And(mut.guard(), roomLeft), ups...)
	if err == nil {
		return true, nil
	}
	if !errors.Is(err, dynamo.ErrConditionFailed) {
		return false, err
	}

	// Case B2: space available but the guard failed — record the false
	// conditional. Serialization point is the B1 attempt (§ Appendix A).
	// Skipped for unconditional mutations, whose guard cannot fail.
	if mut.cond != nil {
		err = d.rt.store.Update(d.table, rowKey, roomLeft,
			dynamo.Add(dynamo.A(attrLogSize), 1),
			dynamo.Set(dynamo.AK(attrRecent, logKey), dynamo.Bool(false)))
		if err == nil {
			return false, nil
		}
		if !errors.Is(err, dynamo.ErrConditionFailed) {
			return false, err
		}
	}

	// Cases A, C, D: inspect the row.
	row, ok, err := d.readRow(key, rowID)
	if err != nil {
		return false, err
	}
	if !ok {
		// The row vanished (GC of a dangling row we held a stale reference
		// to). Restart from a fresh scan; terminates because the chain only
		// grows forward.
		return d.loggedWrite(key, logKey, mut)
	}
	if out, done := row.recent[logKey]; done {
		d.rt.stats.Replays.Add(1)
		mut.markReplayed()
		return out.BoolVal(), nil // case A
	}
	next := row.next
	if next == "" { // case D: full tail — extend
		id, err := d.appendRow(row)
		if err != nil {
			return false, err
		}
		next = id
	}
	return d.tryWrite(key, logKey, next, mut, depth+1) // case C
}

// tailByPointerChase walks NextRow pointers with one read per row — the
// naive traversal §4.1 describes before introducing the scan+projection
// optimization. Kept as the ablation comparator (cost grows linearly with
// chain depth, one full-row round trip per hop, versus one scan).
func (d *daal) tailByPointerChase(key string) (daalRow, bool, error) {
	row, ok, err := d.readRow(key, headRowID)
	if err != nil || !ok {
		return daalRow{}, false, err
	}
	for hops := 0; row.next != ""; hops++ {
		if hops > maxChainHops {
			return daalRow{}, false, fmt.Errorf("core: %s/%s: pointer chase exceeded %d hops", d.table, key, maxChainHops)
		}
		next, ok, err := d.readRow(key, row.next)
		if err != nil {
			return daalRow{}, false, err
		}
		if !ok {
			// The successor was collected mid-walk; the row we hold is the
			// effective end of what we can see. Restart from the head.
			return d.tailByPointerChase(key)
		}
		row = next
	}
	return row, true, nil
}

// currentRow returns the tail row (the item's current state). ok is false
// for never-written keys.
func (d *daal) currentRow(key string) (daalRow, bool, error) {
	sk, err := d.scanSkeleton(key, "")
	if err != nil {
		return daalRow{}, false, err
	}
	tailID, ok := sk.tail()
	if !ok {
		return daalRow{}, false, nil
	}
	row, ok, err := d.readRow(key, tailID)
	if err != nil {
		return daalRow{}, false, err
	}
	if !ok {
		// Snapshot raced with GC deletion of a dangling row; retry once via
		// a fresh scan.
		return d.currentRow(key)
	}
	return row, true, nil
}

// chain returns key's rows indexed by id plus the head-reachable order —
// the GC's working view (§5). Full rows, not a projection: the GC inspects
// log contents.
func (d *daal) chain(key string) (map[string]daalRow, []string, error) {
	items, err := d.rt.store.Query(d.table, dynamo.S(key), dynamo.QueryOpts{})
	if err != nil {
		return nil, nil, err
	}
	rows := make(map[string]daalRow, len(items))
	for _, it := range items {
		r := decodeDAALRow(it)
		rows[r.rowID] = r
	}
	var order []string
	seen := make(map[string]bool)
	for id := headRowID; id != "" && !seen[id]; {
		r, ok := rows[id]
		if !ok {
			break
		}
		order = append(order, id)
		seen[id] = true
		id = r.next
	}
	return rows, order, nil
}

// keys lists the distinct item keys in this table (head rows only) — the
// GC's getAllDataKeys (Figure 10).
func (d *daal) keys() ([]string, error) {
	items, err := d.rt.store.Scan(d.table, dynamo.QueryOpts{
		Filter:     dynamo.Eq(dynamo.A(attrRowID), dynamo.S(headRowID)),
		Projection: []dynamo.Path{dynamo.A(attrKey)},
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, it[attrKey].Str())
	}
	return out, nil
}
