package core

import (
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// The intent collector (§3.3): a timer-triggered serverless function that
// finds this SSF's unfinished intents and re-executes them with their
// original instance id and arguments. Restarting a still-running instance
// is safe — every step is at-most-once — so the collector needs no failure
// detector; it only rate-limits restarts (ICMinAge) and pages its scan
// (ICPageLimit) to bound its own execution time (Appendix A).
//
// In a clustered deployment (internal/cluster) a CollectorGate scopes each
// worker's pass to the intent partitions its lease covers and fences every
// claim, so the one-logical-collector model becomes N cooperating shards
// with store-enforced ownership (see gate.go).

// icHandler is the collector's body, registered as "<fn>.ic".
func (rt *Runtime) icHandler(inv *platform.Invocation, _ Value) (Value, error) {
	n, err := rt.RunIntentCollector()
	if err != nil {
		return dynamo.Null, err
	}
	return dynamo.NInt(int64(n)), nil
}

// RunIntentCollector performs one collection pass, returning how many
// instances it restarted. Exposed for tests and for deployments that drive
// collection themselves.
func (rt *Runtime) RunIntentCollector() (int, error) {
	items, err := rt.store.QueryIndex(rt.intentTable, indexPending, dynamo.S(pendingMarker),
		dynamo.QueryOpts{Limit: rt.cfg.ICPageLimit})
	if err != nil {
		return 0, err
	}
	now := rt.now()
	minAge := rt.cfg.ICMinAge.Microseconds()
	gate := rt.collectorGate()
	restarted := 0
	for _, it := range items {
		rec := decodeIntent(it)
		if now-rec.lastLaunch < minAge {
			continue // launched recently; give it time (first IC optimization)
		}
		var fence []dynamo.TxOp
		if gate != nil {
			if !gate.OwnsIntent(rec.id) {
				continue // another worker's partition; its collector owns this
			}
			fence = gate.ClaimFence(rec.id)
		}
		claimed, err := rt.touchLaunchFenced(rec.id, rec.lastLaunch, now, fence)
		if err != nil {
			return restarted, err
		}
		if !claimed {
			continue // a concurrent collector (or the done-marking) won
		}
		ev := rec.args
		ev.InstanceID = rec.id
		if err := rt.plat.InvokeAsyncInternal(rt.fn, ev.encode()); err != nil {
			return restarted, err
		}
		rt.stats.Restarts.Add(1)
		restarted++
	}
	return restarted, nil
}

// StartCollectors begins the timer loops that trigger the intent collector
// and garbage collector through the platform (the paper triggers both every
// minute, AWS's finest timer resolution). Stop() ends them.
func (rt *Runtime) StartCollectors() {
	if rt.cfg.ICInterval > 0 {
		go rt.timerLoop(rt.cfg.ICInterval, rt.fn+".ic")
	}
	if rt.cfg.GCInterval > 0 {
		go rt.timerLoop(rt.cfg.GCInterval, rt.fn+".gc")
	}
}

func (rt *Runtime) timerLoop(period time.Duration, fn string) {
	for {
		select {
		case <-rt.stopCh:
			return
		case <-rt.clk.After(period):
		}
		// Collector failures are retried on the next tick; both collectors
		// are at-least-once by design (§5).
		rt.plat.InvokeInternal(fn, dynamo.Null) //nolint:errcheck
	}
}
