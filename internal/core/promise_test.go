package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// Durable promises: AsyncInvokePromise fans work out as registered intents
// whose completions post into the caller's mailbox; Await is a logged step.
// These tests pin the fan-out/fan-in exactly-once story across crashes on
// the awaiting side, the mailbox's single-assignment discipline, and the
// GC/fsck lifecycle of the cells.

// fanWorkerBody returns a worker that bumps a per-index counter (the
// exactly-once witness) and returns a value containing a token drawn from
// seq — unique per physical execution, so identical observed results can
// only come from the durable mailbox, never from silent re-execution.
func fanWorkerBody(seq *atomic.Int64) Body {
	return func(e *Env, in Value) (Value, error) {
		idx := in.Int()
		key := fmt.Sprintf("n%02d", idx)
		v, err := e.Read("count", key)
		if err != nil {
			return dynamo.Null, err
		}
		if err := e.Write("count", key, dynamo.NInt(v.Int()+1)); err != nil {
			return dynamo.Null, err
		}
		return dynamo.M(map[string]Value{
			"Idx":   dynamo.NInt(idx),
			"Token": dynamo.NInt(seq.Add(1)),
		}), nil
	}
}

func TestPromiseFanOutFanIn(t *testing.T) {
	f := newFixture(t)
	var seq atomic.Int64
	f.fn("work", fanWorkerBody(&seq), "count")
	const width = 8
	f.fn("driver", func(e *Env, in Value) (Value, error) {
		ps := make([]*Promise, width)
		for i := 0; i < width; i++ {
			p, err := e.AsyncInvokePromise("work", dynamo.NInt(int64(i)))
			if err != nil {
				return dynamo.Null, err
			}
			ps[i] = p
		}
		outs, err := e.AwaitAll(ps...)
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.L(outs...), nil
	})

	out := f.mustInvoke("driver", dynamo.Null)
	f.plat.Drain()
	l := out.List()
	if len(l) != width {
		t.Fatalf("awaited %d results, want %d: %v", len(l), width, out)
	}
	for i, v := range l {
		if idx, _ := v.MapGet("Idx"); idx.Int() != int64(i) {
			t.Errorf("result %d = %v (order broken)", i, v)
		}
	}
	for i := 0; i < width; i++ {
		if got := f.readData("work", "count", fmt.Sprintf("n%02d", i)); got.Int() != 1 {
			t.Errorf("worker %d ran %v times, want 1", i, got)
		}
	}
	for _, rt := range f.rts {
		if err := Fsck(rt); err != nil {
			t.Errorf("fsck %s: %v", rt.fn, err)
		}
	}
}

// TestPromiseCrashAndReplayExactlyOnce is the acceptance scenario: a
// workflow fans out 8 async invocations, crashes after awaiting some of
// them, and the collector-driven re-execution observes the identical
// promise results while every worker's effect lands exactly once.
func TestPromiseCrashAndReplayExactlyOnce(t *testing.T) {
	const width = 8
	// Crash the driver mid-fan-in at deterministic step boundaries: the
	// fan-out consumes step keys 1–8, so await i's logged step is key 9+i.
	// Crashing at await:pre of step 12 kills the driver after 3 awaits
	// resolved; await:mid of step 14 kills it with the 6th result fetched
	// but not yet logged; await:post of step 16 after the whole fan-in but
	// before the aggregate write.
	for _, label := range []string{"await:pre:0.000012", "await:mid:0.000014", "await:post:0.000016"} {
		t.Run(label, func(t *testing.T) {
			f := newFixture(t, withFaults(&platform.CrashOnce{Function: "driver", Label: label}))
			var seq atomic.Int64
			f.fn("work", fanWorkerBody(&seq), "count")

			// observed records, per driver execution, the results each Await
			// resolved — the cross-execution identity witness.
			var mu sync.Mutex
			observed := make(map[int][]Value) // await index -> one entry per execution that resolved it
			f.fn("driver", func(e *Env, in Value) (Value, error) {
				ps := make([]*Promise, width)
				for i := 0; i < width; i++ {
					p, err := e.AsyncInvokePromise("work", dynamo.NInt(int64(i)))
					if err != nil {
						return dynamo.Null, err
					}
					ps[i] = p
				}
				outs := make([]Value, width)
				for i, p := range ps {
					v, err := p.Await(e)
					if err != nil {
						return dynamo.Null, err
					}
					mu.Lock()
					observed[i] = append(observed[i], v)
					mu.Unlock()
					outs[i] = v
				}
				if err := e.Write("agg", "results", dynamo.L(outs...)); err != nil {
					return dynamo.Null, err
				}
				return dynamo.L(outs...), nil
			}, "agg")

			if _, err := f.invoke("driver", dynamo.Null); err == nil {
				t.Fatal("injected crash did not surface")
			}
			f.plat.Drain()
			f.recoverAll()

			// Every worker's effect exactly once.
			for i := 0; i < width; i++ {
				if got := f.readData("work", "count", fmt.Sprintf("n%02d", i)); got.Int() != 1 {
					t.Errorf("worker %d ran %v times, want 1", i, got)
				}
			}
			// Each award index resolved at least once across executions, at
			// least one index resolved twice (pre- and post-crash), and all
			// resolutions of one index saw the same token — the mailbox value,
			// not a re-computation.
			mu.Lock()
			replayedSome := false
			for i := 0; i < width; i++ {
				vals := observed[i]
				if len(vals) == 0 {
					t.Errorf("await %d never resolved", i)
					continue
				}
				if len(vals) > 1 {
					replayedSome = true
				}
				for _, v := range vals[1:] {
					if !v.Equal(vals[0]) {
						t.Errorf("await %d observed diverging results: %v vs %v", i, vals[0], v)
					}
				}
			}
			mu.Unlock()
			if !replayedSome {
				t.Error("crash injected but no await was replayed; crash point landed outside the fan-in")
			}
			// The aggregate write happened exactly once and matches what the
			// awaits observed.
			agg := f.readData("driver", "agg", "results")
			if len(agg.List()) != width {
				t.Errorf("aggregate = %v", agg)
			}
			mu.Lock()
			for i, v := range agg.List() {
				if len(observed[i]) > 0 && !v.Equal(observed[i][0]) {
					t.Errorf("aggregate[%d] = %v, observed %v", i, v, observed[i][0])
				}
			}
			mu.Unlock()
			for _, rt := range f.rts {
				if err := Fsck(rt); err != nil {
					t.Errorf("fsck %s: %v", rt.fn, err)
				}
			}
		})
	}
}

// TestPromiseCalleeCrashReposts crashes the CALLEE after its body but
// before the promise post; the callee's collector re-execution must replay
// the identical result, post it, and the awaiting caller must see exactly
// one value.
func TestPromiseCalleeCrashReposts(t *testing.T) {
	f := newFixture(t, withFaults(&platform.CrashOnce{Function: "work", Label: "body:done"}))
	var seq atomic.Int64
	f.fn("work", fanWorkerBody(&seq), "count")
	done := make(chan struct{})
	f.fn("driver", func(e *Env, in Value) (Value, error) {
		p, err := e.AsyncInvokePromise("work", dynamo.NInt(7))
		if err != nil {
			return dynamo.Null, err
		}
		// The callee crashes at body:done; its collector must finish it
		// before the await can resolve — drive collection from a helper
		// goroutine while this await polls.
		select {
		case done <- struct{}{}:
		default:
		}
		return p.Await(e)
	})

	var out Value
	var err error
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		out, err = f.invoke("driver", dynamo.Null)
	}()
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case <-finished:
		default:
			if time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
				for _, rt := range f.rts {
					rt.RunIntentCollector() //nolint:errcheck // next round retries
				}
				continue
			}
		}
		break
	}
	<-finished
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	if idx, _ := out.MapGet("Idx"); idx.Int() != 7 {
		t.Errorf("out = %v", out)
	}
	if got := f.readData("work", "count", "n07"); got.Int() != 1 {
		t.Errorf("worker effect ran %v times, want 1", got)
	}
}

// TestPromiseMailboxReapedWithOwner pins the cell lifecycle: cells survive
// while the owning intent lives (a replayed awaiter may still need them)
// and die in the same GC horizon as the owner.
func TestPromiseMailboxReapedWithOwner(t *testing.T) {
	f := newFixture(t, withConfig(Config{RowCap: 4, T: 30 * time.Millisecond, ICMinAge: time.Millisecond}))
	var seq atomic.Int64
	f.fn("work", fanWorkerBody(&seq), "count")
	f.fn("driver", func(e *Env, in Value) (Value, error) {
		p, err := e.AsyncInvokePromise("work", dynamo.NInt(1))
		if err != nil {
			return dynamo.Null, err
		}
		return p.Await(e)
	})
	f.mustInvoke("driver", dynamo.Null)
	f.plat.Drain()

	cells, err := f.rts["driver"].mailbox.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("cells after completion = %v, want 1", cells)
	}

	// Two GC passes past T: the first stamps finish times, the second (after
	// the horizon) recycles the intent and must take the cell with it.
	f.gcAll()
	time.Sleep(80 * time.Millisecond)
	st := f.gcAll()
	if st.MailboxReaped == 0 {
		t.Errorf("GC reaped no mailbox cells: %+v", st)
	}
	cells, err = f.rts["driver"].mailbox.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Errorf("cells after GC = %v, want none", cells)
	}
	for _, rt := range f.rts {
		if err := Fsck(rt); err != nil {
			t.Errorf("fsck %s: %v", rt.fn, err)
		}
	}
}

// TestAwaitTimeoutFailsInstance pins the bounded-poll behaviour: a promise
// whose callee never completes fails the awaiting instance with
// ErrAwaitTimeout instead of hanging it forever.
func TestAwaitTimeoutFailsInstance(t *testing.T) {
	f := newFixture(t, withConfig(Config{
		RowCap: 4, T: DefaultT, ICMinAge: time.Hour, // no collector rescue
		LockRetryBase: 100 * time.Microsecond, AwaitRetryMax: 3,
	}))
	block := make(chan struct{})
	f.fn("stuck", func(e *Env, in Value) (Value, error) {
		<-block
		return dynamo.Null, nil
	})
	f.fn("driver", func(e *Env, in Value) (Value, error) {
		p, err := e.AsyncInvokePromise("stuck", dynamo.Null)
		if err != nil {
			return dynamo.Null, err
		}
		return p.Await(e)
	})
	_, err := f.invoke("driver", dynamo.Null)
	if !errors.Is(err, ErrAwaitTimeout) {
		t.Errorf("err = %v, want ErrAwaitTimeout", err)
	}
	close(block)
	f.plat.Drain()
}
