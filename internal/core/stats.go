package core

import "sync/atomic"

// Stats counts a runtime's protocol activity: what the paper's cost model
// (§7.3) talks about per operation, surfaced as counters an operator can
// watch. All fields are updated atomically; read them live.
type Stats struct {
	// API operations executed by instances of this SSF.
	Reads      atomic.Int64
	Writes     atomic.Int64
	CondWrites atomic.Int64
	SyncCalls  atomic.Int64
	AsyncCalls atomic.Int64
	Locks      atomic.Int64
	Unlocks    atomic.Int64

	// Durable promises: promise-returning async invocations issued, awaits
	// resolved, and results posted into this SSF's mailbox.
	PromiseCalls atomic.Int64
	Awaits       atomic.Int64
	PromisePosts atomic.Int64

	// ChangeEvents counts table-change (CDC) events emitted: committed
	// writes to a watched table that fired a registered change handler (one
	// count per handler invocation issued).
	ChangeEvents atomic.Int64

	// Replays counts operations resolved from logs instead of executing —
	// the visible footprint of re-executions (each one is an effect the
	// protocol deduplicated).
	Replays atomic.Int64

	// Transactions.
	TxnBegun     atomic.Int64
	TxnCommitted atomic.Int64
	TxnAborted   atomic.Int64

	// Lifecycle.
	IntentsStarted   atomic.Int64
	IntentsCompleted atomic.Int64
	Restarts         atomic.Int64 // instances re-launched by the collector
	CallbacksIn      atomic.Int64
	SpuriousCallback atomic.Int64

	// Cluster-scoped collection (see CollectorGate): claims this runtime's
	// collector attempted but the store rejected because the worker's
	// authority had been fenced off — each one is a zombie write refused.
	FencedClaims atomic.Int64

	// Garbage collection accumulators.
	GCRuns         atomic.Int64
	GCIntents      atomic.Int64
	GCLogRows      atomic.Int64
	GCRowsDeleted  atomic.Int64
	GCDisconnected atomic.Int64
}

// StatsView is a point-in-time copy for reporting.
type StatsView struct {
	Reads, Writes, CondWrites, SyncCalls, AsyncCalls, Locks, Unlocks int64
	PromiseCalls, Awaits, PromisePosts                               int64
	ChangeEvents                                                     int64
	Replays                                                          int64
	TxnBegun, TxnCommitted, TxnAborted                               int64
	IntentsStarted, IntentsCompleted, Restarts                       int64
	CallbacksIn, SpuriousCallback, FencedClaims                      int64
	GCRuns, GCIntents, GCLogRows, GCRowsDeleted, GCDisconnected      int64
}

// Stats exposes the runtime's counters.
func (rt *Runtime) Stats() *Stats { return &rt.stats }

// StatsSnapshot copies the counters.
func (rt *Runtime) StatsSnapshot() StatsView { return rt.stats.Snapshot() }

// Snapshot copies the counters — the common snapshot shape every subsystem
// stats struct shares (see also dynamo.Metrics.Snapshot, queue, platform,
// walstore, cluster), which is what makes telemetry registration
// mechanical.
func (s *Stats) Snapshot() StatsView {
	return StatsView{
		Reads:            s.Reads.Load(),
		Writes:           s.Writes.Load(),
		CondWrites:       s.CondWrites.Load(),
		SyncCalls:        s.SyncCalls.Load(),
		AsyncCalls:       s.AsyncCalls.Load(),
		Locks:            s.Locks.Load(),
		Unlocks:          s.Unlocks.Load(),
		PromiseCalls:     s.PromiseCalls.Load(),
		Awaits:           s.Awaits.Load(),
		PromisePosts:     s.PromisePosts.Load(),
		ChangeEvents:     s.ChangeEvents.Load(),
		Replays:          s.Replays.Load(),
		TxnBegun:         s.TxnBegun.Load(),
		TxnCommitted:     s.TxnCommitted.Load(),
		TxnAborted:       s.TxnAborted.Load(),
		IntentsStarted:   s.IntentsStarted.Load(),
		IntentsCompleted: s.IntentsCompleted.Load(),
		Restarts:         s.Restarts.Load(),
		CallbacksIn:      s.CallbacksIn.Load(),
		SpuriousCallback: s.SpuriousCallback.Load(),
		FencedClaims:     s.FencedClaims.Load(),
		GCRuns:           s.GCRuns.Load(),
		GCIntents:        s.GCIntents.Load(),
		GCLogRows:        s.GCLogRows.Load(),
		GCRowsDeleted:    s.GCRowsDeleted.Load(),
		GCDisconnected:   s.GCDisconnected.Load(),
	}
}
