// Package core implements Beldi: exactly-once stateful serverless functions
// (SSFs) with locks and cross-SSF transactions, per "Fault-tolerant and
// Transactional Stateful Serverless Workflows" (OSDI 2020).
//
// Each SSF gets a Runtime bundling its own database tables (intent table,
// read log, invoke log, data tables stored as linked DAALs) and two
// timer-driven companions: an intent collector that re-executes unfinished
// instances and a garbage collector that prunes logs and DAAL rows. Data
// sovereignty (§2.2) falls out of the layout: every table belongs to exactly
// one SSF, and other SSFs interact with it only by invocation.
package core

import (
	"fmt"
	"sync"
	"time"

	"errors"

	"repro/internal/clock"
	"repro/internal/dynamo"
	"repro/internal/hist"
	"repro/internal/platform"
	"repro/internal/queue"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/uuid"
)

// Value aliases the store's value type; it flows end to end (inputs,
// outputs, stored state).
type Value = dynamo.Value

// Mode selects the storage/consistency machinery an SSF runs with. The
// paper's evaluation compares all three (§7.2–§7.3).
type Mode int

const (
	// ModeBeldi is the paper's system: linked-DAAL logging, exactly-once.
	ModeBeldi Mode = iota
	// ModeCrossTable logs writes to a separate table with cross-table
	// transactions instead of a linked DAAL (the §7.3 comparator). Same
	// guarantees, different cost profile.
	ModeCrossTable
	// ModeBaseline runs with no logging and no guarantees (the evaluation
	// baseline): raw reads/writes, raw invocations.
	ModeBaseline
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBeldi:
		return "beldi"
	case ModeCrossTable:
		return "crosstable"
	case ModeBaseline:
		return "baseline"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config tunes a Runtime.
type Config struct {
	// RowCap is N, the maximum number of write-log entries per DAAL row
	// (§4.3). DynamoDB's 400 KB row fits a few hundred; the default keeps
	// rows small so tests exercise row transitions. 0 means DefaultRowCap.
	RowCap int
	// T is the maximum lifetime of an SSF instance: the GC's synchrony
	// bound (§5). 0 means DefaultT.
	T time.Duration
	// ICInterval is the intent-collector timer period (the paper uses the
	// 1-minute AWS minimum). 0 disables the timer (RunOnce still works).
	ICInterval time.Duration
	// ICMinAge makes the collector restart an instance only when its last
	// launch is at least this old (§3.3's first IC optimization).
	// 0 means T.
	ICMinAge time.Duration
	// GCInterval is the garbage-collector timer period. 0 disables the
	// timer.
	GCInterval time.Duration
	// ICPageLimit bounds intents processed per collector run (Appendix A's
	// paging: collectors are themselves SSFs with execution timeouts, so
	// each run must be bounded; the next run continues where the last left
	// off). 0 means unlimited. The pending index is ordered by LastLaunch,
	// and restarting an instance advances its LastLaunch, so limited runs
	// resume at the next-oldest instance without an explicit cursor.
	ICPageLimit int
	// GCPageLimit bounds intents recycled per garbage-collector run (the
	// same Appendix A bounding); the remainder is reclaimed by subsequent
	// runs. 0 means unlimited.
	GCPageLimit int
	// DisableCallbacks turns off the §4.5 callback mechanism; only the
	// ablation tests use it, to reproduce the Figure 9 double-execution
	// anomaly.
	DisableCallbacks bool
	// LockRetryBase is the initial backoff between standalone lock
	// attempts. 0 means 1ms.
	LockRetryBase time.Duration
	// LockRetryMax bounds standalone-lock retries per Lock call; retries
	// consume log entries, so they are bounded. 0 means 50.
	LockRetryMax int
	// AwaitRetryMax bounds mailbox polls per Promise.Await before the await
	// gives up with ErrAwaitTimeout (the instance fails and the intent
	// collector retries it later). Await polls back off exponentially from
	// LockRetryBase, capped at 128×. 0 means 200.
	AwaitRetryMax int
	// TableShards is the shard count for this SSF's own tables — the DAAL
	// data tables where appends and lock rows live, the read/invoke logs,
	// the intent table, and the transaction bookkeeping tables. Striping
	// them lets concurrent instances log steps, register intents, and take
	// item locks without serializing on one table latch (the substrate-level
	// scaling lever; see ARCHITECTURE.md). 0 means the store's default shard
	// count, so existing deployments are unchanged.
	TableShards int
}

// Defaults for Config zero values.
const (
	DefaultRowCap = 8
	DefaultT      = 2 * time.Second
)

func (c Config) withDefaults() Config {
	if c.RowCap == 0 {
		c.RowCap = DefaultRowCap
	}
	if c.T == 0 {
		c.T = DefaultT
	}
	if c.ICMinAge == 0 {
		c.ICMinAge = c.T
	}
	if c.LockRetryBase == 0 {
		c.LockRetryBase = time.Millisecond
	}
	if c.LockRetryMax == 0 {
		c.LockRetryMax = 50
	}
	if c.AwaitRetryMax == 0 {
		c.AwaitRetryMax = 200
	}
	return c
}

// AsyncTransport delivers asynchronous run envelopes durably, decoupling
// AsyncInvoke's fire from the in-process platform handoff. Implementations
// (queue.Transport) must provide at-least-once delivery of payload to an
// eventual invocation of fn; Beldi's intent-table dedup turns that into
// exactly-once execution. Deliver is called from live instances and must be
// safe for concurrent use.
type AsyncTransport interface {
	Deliver(fn string, payload Value) error
}

// Runtime is the per-SSF infrastructure: its function name, its own
// database, the platform it runs on, and its configuration.
type Runtime struct {
	fn    string
	store storage.Backend
	plat  *platform.Platform
	cfg   Config
	mode  Mode
	clk   clock.Clock
	ids   uuid.Source

	transportMu sync.RWMutex
	transport   AsyncTransport

	gateMu sync.RWMutex
	gate   CollectorGate

	body Body

	intentTable string
	readLog     string
	invokeLog   string
	txCallees   string
	txLocks     string
	mailbox     *queue.Mailbox

	mu           sync.Mutex
	dataTables_  []string
	dataTableSet map[string]bool

	// cdc holds the table-change handler registry (see cdc.go).
	cdc cdcRegistry

	stats Stats

	// tel is the deployment's telemetry hub, nil when telemetry is off;
	// every producer site guards on the nil so a hub-less runtime pays only
	// an untaken branch. The histograms are resolved once at construction
	// (Registry.Histogram takes a lock) and cover this SSF's hot paths.
	tel      *telemetry.Hub
	histStep *hist.Histogram // step commit (logged write/condwrite/unlock)
	histLock *hist.Histogram // lock acquire, retries included
	histTxn  *hist.Histogram // transaction commit (finishTxnLocal on commit)
	stopCh   chan struct{}
}

// dataTables lists the logical data tables registered so far (the GC's
// getAllDataKeys universe, Figure 10).
func (rt *Runtime) dataTables() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, len(rt.dataTables_))
	copy(out, rt.dataTables_)
	return out
}

// RuntimeOptions configure NewRuntime.
type RuntimeOptions struct {
	// Function is the SSF's platform name. Required.
	Function string
	// Store is the SSF's own database — any storage.Backend (the in-memory
	// dynamo store, the durable walstore, …). Required. SSFs of the same
	// team may share a store; tables are namespaced by function name.
	Store storage.Backend
	// Platform hosts the SSF and its collectors. Required.
	Platform *platform.Platform
	// Mode selects Beldi / cross-table / baseline machinery.
	Mode Mode
	// Config tunes protocol parameters.
	Config Config
	// Clock defaults to the wall clock.
	Clock clock.Clock
	// IDs defaults to random UUIDs.
	IDs uuid.Source
	// AsyncTransport, when set, makes AsyncInvoke deliver its run envelope
	// through a durable queue instead of the platform's in-process async
	// handoff. Settable later with SetAsyncTransport.
	AsyncTransport AsyncTransport
	// Telemetry, when set, makes the runtime emit causal trace spans for
	// every logged step and invocation, and record hot-path latency
	// histograms under "core.<fn>.*". Nil disables all of it.
	Telemetry *telemetry.Hub
}

// NewRuntime creates the SSF's runtime and its backing tables.
func NewRuntime(opts RuntimeOptions) (*Runtime, error) {
	if opts.Function == "" || opts.Store == nil || opts.Platform == nil {
		return nil, fmt.Errorf("core: NewRuntime: Function, Store and Platform are required")
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	ids := opts.IDs
	if ids == nil {
		ids = uuid.Random{}
	}
	rt := &Runtime{
		fn:          opts.Function,
		store:       opts.Store,
		plat:        opts.Platform,
		cfg:         opts.Config.withDefaults(),
		mode:        opts.Mode,
		clk:         clk,
		ids:         ids,
		intentTable: opts.Function + ".intent",
		readLog:     opts.Function + ".readlog",
		invokeLog:   opts.Function + ".invokelog",
		txCallees:   opts.Function + ".txcallees",
		txLocks:     opts.Function + ".txlocks",
		transport:   opts.AsyncTransport,
		tel:         opts.Telemetry,
		stopCh:      make(chan struct{}),
	}
	if rt.tel != nil {
		rt.histStep = rt.tel.Registry.Histogram("core." + rt.fn + ".step_commit")
		rt.histLock = rt.tel.Registry.Histogram("core." + rt.fn + ".lock_acquire")
		rt.histTxn = rt.tel.Registry.Histogram("core." + rt.fn + ".txn_commit")
	}
	if rt.mode != ModeBaseline {
		if err := rt.createInfraTables(); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// MustNewRuntime is NewRuntime, panicking on error; for setup code.
func MustNewRuntime(opts RuntimeOptions) *Runtime {
	rt, err := NewRuntime(opts)
	if err != nil {
		panic(err)
	}
	return rt
}

func (rt *Runtime) createInfraTables() error {
	// Every hot-path table inherits the configured shard count: intent
	// registration, read/invoke-log appends, and transaction bookkeeping all
	// key by instance or transaction id, so striping spreads concurrent
	// instances across independent latches.
	n := rt.cfg.TableShards
	tables := []dynamo.Schema{
		{Name: rt.intentTable, HashKey: attrInstanceID, Shards: n,
			Indexes: []dynamo.IndexSchema{{Name: indexPending, HashKey: attrPending, SortKey: attrLastLaunch}}},
		{Name: rt.readLog, HashKey: attrID, SortKey: attrStep, Shards: n},
		{Name: rt.invokeLog, HashKey: attrID, SortKey: attrStep, Shards: n},
		{Name: rt.txCallees, HashKey: attrTxnID, SortKey: attrCallee, Shards: n},
		{Name: rt.txLocks, HashKey: attrTxnID, SortKey: attrTableKey, Shards: n},
	}
	for _, s := range tables {
		if err := rt.createOrAdopt(s); err != nil {
			return fmt.Errorf("core: %s: %w", rt.fn, err)
		}
	}
	// The promise mailbox: one durable result cell per promise this SSF's
	// instances fan out (reaped together with the owning intent).
	mb, err := queue.NewMailbox(rt.store, rt.fn+".mailbox", n)
	if err != nil {
		return fmt.Errorf("core: %s: %w", rt.fn, err)
	}
	rt.mailbox = mb
	return nil
}

// createOrAdopt creates one of the runtime's tables, adopting a table that
// already exists in the store. On an in-memory store a fresh runtime never
// collides; on a durable backend reopened from disk (walstore), the
// surviving tables — pending intents, logs, DAAL chains — are exactly the
// state a restarted deployment must recover, so existing tables are kept
// as-is (a table's layout is fixed at creation). Adoption is verified: the
// surviving table's keys and indexes must match what this runtime's mode
// would have created — reopening a directory with a different Mode (or a
// colliding function name whose tables have another shape) fails loudly
// instead of silently running the protocol on the wrong layout.
func (rt *Runtime) createOrAdopt(s dynamo.Schema) error {
	err := rt.store.CreateTable(s)
	if !errors.Is(err, dynamo.ErrTableExists) {
		return err
	}
	have, err := rt.store.TableSchema(s.Name)
	if err != nil {
		return err
	}
	if have.HashKey != s.HashKey || have.SortKey != s.SortKey || !sameIndexes(have.Indexes, s.Indexes) {
		return fmt.Errorf("core: adopt table %s: existing schema (hash %q, sort %q, %d indexes) does not match required (hash %q, sort %q, %d indexes); was the store written by a different mode or function?",
			s.Name, have.HashKey, have.SortKey, len(have.Indexes), s.HashKey, s.SortKey, len(s.Indexes))
	}
	return nil
}

// sameIndexes reports whether two index lists declare the same indexes (in
// the same order — creation order is deterministic per mode).
func sameIndexes(a, b []dynamo.IndexSchema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CreateDataTable declares a logical data table owned by this SSF, creating
// the physical table(s) the runtime's mode needs (a linked-DAAL table plus
// its shadow in Beldi mode; value + write-log + shadows in cross-table mode;
// one plain table in baseline mode).
func (rt *Runtime) CreateDataTable(logical string) error {
	// Data tables key by item, so DAAL appends and lock rows for different
	// items stripe across shards; all rows of one item's DAAL chain share a
	// shard (the item key is the hash key), keeping each chain's
	// scan+update protocol on a single latch.
	n := rt.cfg.TableShards
	switch rt.mode {
	case ModeBeldi:
		for _, name := range []string{rt.dataTable(logical), rt.shadowTable(logical)} {
			if err := rt.createOrAdopt(dynamo.Schema{
				Name: name, HashKey: attrKey, SortKey: attrRowID, Shards: n,
			}); err != nil {
				return err
			}
		}
	case ModeCrossTable:
		for _, name := range []string{rt.dataTable(logical), rt.shadowTable(logical)} {
			if err := rt.createOrAdopt(dynamo.Schema{Name: name, HashKey: attrKey, Shards: n}); err != nil {
				return err
			}
		}
		for _, name := range []string{rt.writeLogTable(logical), rt.shadowWriteLogTable(logical)} {
			if err := rt.createOrAdopt(dynamo.Schema{Name: name, HashKey: attrID, SortKey: attrStep, Shards: n}); err != nil {
				return err
			}
		}
	case ModeBaseline:
		if err := rt.createOrAdopt(dynamo.Schema{Name: rt.dataTable(logical), HashKey: attrKey, Shards: n}); err != nil {
			return err
		}
	}
	rt.mu.Lock()
	rt.dataTables_ = append(rt.dataTables_, logical)
	if rt.dataTableSet == nil {
		rt.dataTableSet = make(map[string]bool)
	}
	rt.dataTableSet[logical] = true
	rt.mu.Unlock()
	return nil
}

// resolveLogical maps a body-level table name to the effective logical
// table for the requesting application (§2.2 SSF reusability): when the
// SSF registered an app-scoped table "<app>:<logical>", requests carrying
// that app name use it; otherwise the shared table is used, which is how
// cross-application state stays possible.
func (rt *Runtime) resolveLogical(app, logical string) string {
	if app == "" {
		return logical
	}
	scoped := app + ":" + logical
	rt.mu.Lock()
	ok := rt.dataTableSet[scoped]
	rt.mu.Unlock()
	if ok {
		return scoped
	}
	return logical
}

// MustCreateDataTable is CreateDataTable, panicking on error.
func (rt *Runtime) MustCreateDataTable(logical string) {
	if err := rt.CreateDataTable(logical); err != nil {
		panic(err)
	}
}

// Physical table names. All tables of an SSF share its name as prefix: the
// unit of data sovereignty.
func (rt *Runtime) dataTable(logical string) string   { return rt.fn + ".data." + logical }
func (rt *Runtime) shadowTable(logical string) string { return rt.fn + ".data." + logical + ".shadow" }
func (rt *Runtime) writeLogTable(logical string) string {
	return rt.fn + ".data." + logical + ".wlog"
}
func (rt *Runtime) shadowWriteLogTable(logical string) string {
	return rt.fn + ".data." + logical + ".shadow.wlog"
}

// SetAsyncTransport installs (or clears, with nil) the durable async
// delivery path at runtime. Deployments call it when durable async is
// enabled after functions were registered.
func (rt *Runtime) SetAsyncTransport(t AsyncTransport) {
	rt.transportMu.Lock()
	rt.transport = t
	rt.transportMu.Unlock()
}

// asyncTransport returns the current durable delivery path, or nil.
func (rt *Runtime) asyncTransport() AsyncTransport {
	rt.transportMu.RLock()
	defer rt.transportMu.RUnlock()
	return rt.transport
}

// Function returns the SSF's platform name.
func (rt *Runtime) Function() string { return rt.fn }

// Mode returns the runtime's machinery mode.
func (rt *Runtime) Mode() Mode { return rt.mode }

// Store returns the SSF's database (tests and the figure harness inspect
// it). The returned value is the storage seam; use storage.AsDynamo to
// reach in-memory-specific knobs where a bench needs them.
func (rt *Runtime) Store() storage.Backend { return rt.store }

// Platform returns the platform hosting the SSF.
func (rt *Runtime) Platform() *platform.Platform { return rt.plat }

// Config returns the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// now returns the runtime's current time in microseconds since the epoch —
// the timestamp unit used throughout the intent table.
func (rt *Runtime) now() int64 { return rt.clk.Now().UnixMicro() }

// Telemetry returns the runtime's telemetry hub, nil when telemetry is off.
func (rt *Runtime) Telemetry() *telemetry.Hub { return rt.tel }

// spanClock returns the current span timestamp (UnixNano on the runtime's
// clock); 0 when telemetry is off, so producer sites can use it as both
// the guard and the start time.
func (rt *Runtime) spanClock() int64 {
	if rt.tel == nil {
		return 0
	}
	return rt.clk.Now().UnixNano()
}

// span records one trace span; a no-op without a hub.
func (rt *Runtime) span(s telemetry.Span) {
	if rt.tel == nil {
		return
	}
	rt.tel.Tracer.Record(s)
}

// TailValueByScan resolves the current value of key using the production
// traversal: one scan+projection to skeleton the linked DAAL, then one read
// of the tail (§4.1). Exposed for the traversal ablation benchmark.
func TailValueByScan(rt *Runtime, table, key string) (Value, error) {
	d := daal{rt: rt, table: rt.dataTable(table)}
	row, ok, err := d.currentRow(key)
	if err != nil || !ok {
		return dynamo.Null, err
	}
	return row.value, nil
}

// TailValueByPointerChase resolves the current value of key by walking
// NextRow pointers, one read per row — the §4.1 baseline the scan approach
// replaces. Exposed for the traversal ablation benchmark.
func TailValueByPointerChase(rt *Runtime, table, key string) (Value, error) {
	d := daal{rt: rt, table: rt.dataTable(table)}
	row, ok, err := d.tailByPointerChase(key)
	if err != nil || !ok {
		return dynamo.Null, err
	}
	return row.value, nil
}

// PeekState reads the SSF's current committed value for key in one of its
// logical tables, bypassing the instance machinery — an inspection aid for
// tests, examples and operations tooling. Never-written keys read as Null.
func (rt *Runtime) PeekState(table, key string) (Value, error) {
	if rt.mode == ModeBaseline {
		it, ok, err := rt.store.Get(rt.dataTable(table), dynamo.HK(dynamo.S(key)))
		if err != nil || !ok {
			return dynamo.Null, err
		}
		return it[attrValue], nil
	}
	val, _, _, err := rt.layer().stateRead(table, key)
	return val, err
}

// Stop halts the runtime's collector timers (if started).
func (rt *Runtime) Stop() {
	select {
	case <-rt.stopCh:
	default:
		close(rt.stopCh)
	}
}

// Attribute and table-schema names shared across the core.
const (
	attrInstanceID = "InstanceId"
	attrID         = "Id"
	attrStep       = "Step"
	attrKey        = "Key"
	attrRowID      = "RowId"
	attrValue      = "Value"
	attrLogSize    = "LogSize"
	attrRecent     = "RecentWrites"
	attrRecycled   = "Recycled"
	attrNextRow    = "NextRow"
	attrLockOwner  = "LockOwner"
	attrDangleTime = "DangleTime"
	attrDone       = "Done"
	attrPending    = "Pending"
	attrAsync      = "Async"
	attrArgs       = "Args"
	attrRet        = "Ret"
	attrStartTime  = "StartTime"
	attrLastLaunch = "LastLaunch"
	attrFinishTime = "FinishTime"
	attrCalleeID   = "CalleeId"
	attrResult     = "Result"
	attrTxnID      = "TxnId"
	attrCallee     = "Callee"
	attrTableKey   = "TableKey"
	attrOutcome    = "Outcome"

	indexPending = "pending"
)
