package core

import (
	"errors"
	"fmt"

	"repro/internal/dynamo"
)

// The intent table (§3.3, Figure 3) records every instance an SSF intends
// to execute: instance id, completion status, the full invocation envelope
// (so the intent collector can re-issue it verbatim), the return value, and
// timestamps. The "Pending" attribute exists only while the intent is
// unfinished, forming the sparse secondary index the collector queries
// (the paper's second IC optimization).

// pendingMarker is the index hash value for unfinished intents.
const pendingMarker = "1"

// intentRecord is a decoded intent row.
type intentRecord struct {
	id         string
	done       bool
	async      bool
	args       envelope
	ret        Value
	startTime  int64
	lastLaunch int64
	finishTime int64
	hasFinish  bool
	// fresh is true when ensureIntent created the row in this call — i.e.
	// this execution is the intent's first, not a replayed re-execution.
	// In-memory only (telemetry's restart marker), never stored.
	fresh bool
}

func decodeIntent(it dynamo.Item) *intentRecord {
	r := &intentRecord{
		id:         it[attrInstanceID].Str(),
		done:       it[attrDone].BoolVal(),
		async:      it[attrAsync].BoolVal(),
		ret:        it[attrRet],
		startTime:  it[attrStartTime].Int(),
		lastLaunch: it[attrLastLaunch].Int(),
	}
	if v, ok := it[attrArgs]; ok {
		r.args = decodeEnvelope(v)
	}
	if v, ok := it[attrFinishTime]; ok {
		r.finishTime = v.Int()
		r.hasFinish = true
	}
	return r
}

// ensureIntent makes the instance's intent row exist, creating it on first
// execution and reading it back on re-execution (the first operation of
// every Beldi SSF, §3.3). The returned record carries the authoritative
// start time — the wait-die priority — which is the *original* execution's,
// not the re-execution's.
func (rt *Runtime) ensureIntent(id string, ev envelope) (*intentRecord, error) {
	now := rt.now()
	item := dynamo.Item{
		attrInstanceID: dynamo.S(id),
		attrDone:       dynamo.Bool(false),
		attrPending:    dynamo.S(pendingMarker),
		attrArgs:       ev.encode(),
		attrAsync:      dynamo.Bool(ev.Async),
		attrStartTime:  dynamo.NInt(now),
		attrLastLaunch: dynamo.NInt(now),
	}
	err := rt.store.Put(rt.intentTable, item, dynamo.NotExists(dynamo.A(attrInstanceID)))
	if err == nil {
		rt.stats.IntentsStarted.Add(1)
		return &intentRecord{id: id, args: ev, async: ev.Async, startTime: now, lastLaunch: now, fresh: true}, nil
	}
	if !errors.Is(err, dynamo.ErrConditionFailed) {
		return nil, err
	}
	it, ok, err := rt.store.Get(rt.intentTable, dynamo.HK(dynamo.S(id)))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: %s: intent %s existed then vanished (GC raced a live instance?)", rt.fn, id)
	}
	return decodeIntent(it), nil
}

// markIntentDone finalizes the intent with its return value and drops it
// from the pending index, after which no collector will restart it (§5).
//
// The update is guarded on the row still existing: Update upserts, and an
// unconditional write here would let a straggler instance that outlives its
// GC'd intent resurrect a half-formed row (Done + Ret, no Args, no start
// time). In a single process the synchrony bound T makes that window
// unreachable, but with multiple workers over one backend a paused worker
// can finish arbitrarily late; the condition turns its late completion into
// a no-op (the work was already done and collected).
func (rt *Runtime) markIntentDone(id string, ret Value) error {
	guard := dynamo.Exists(dynamo.A(attrInstanceID))
	if FaultUnguardedIntentDone.Load() {
		guard = nil // reintroduce the zombie-upsert bug (see simfault.go)
	}
	err := rt.store.Update(rt.intentTable, dynamo.HK(dynamo.S(id)),
		guard,
		dynamo.Set(dynamo.A(attrDone), dynamo.Bool(true)),
		dynamo.Set(dynamo.A(attrRet), ret),
		dynamo.Remove(dynamo.A(attrPending)),
	)
	if errors.Is(err, dynamo.ErrConditionFailed) {
		return nil // intent already collected: a duplicate, late completion
	}
	if err == nil {
		rt.stats.IntentsCompleted.Add(1)
	}
	return err
}

// touchLaunch conditionally advances LastLaunch from its observed value —
// the claim step that keeps concurrent intent collectors from double-
// restarting the same instance.
func (rt *Runtime) touchLaunch(id string, observed, now int64) (bool, error) {
	err := rt.store.Update(rt.intentTable, dynamo.HK(dynamo.S(id)),
		dynamo.And(
			dynamo.Eq(dynamo.A(attrLastLaunch), dynamo.NInt(observed)),
			dynamo.Eq(dynamo.A(attrDone), dynamo.Bool(false)),
		),
		dynamo.Set(dynamo.A(attrLastLaunch), dynamo.NInt(now)))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, dynamo.ErrConditionFailed) {
		return false, nil
	}
	return false, err
}

// intentDone reads an intent's completion state (tests and the async-run
// stub use it).
func (rt *Runtime) intentDone(id string) (exists, done bool, ret Value, err error) {
	it, ok, err := rt.store.Get(rt.intentTable, dynamo.HK(dynamo.S(id)))
	if err != nil || !ok {
		return false, false, dynamo.Null, err
	}
	return true, it[attrDone].BoolVal(), it[attrRet], nil
}
