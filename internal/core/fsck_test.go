package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

func TestFsckCleanStatePasses(t *testing.T) {
	f := newFixture(t)
	f.fn("w", counterBody, "counter")
	for i := 0; i < 10; i++ {
		f.mustInvoke("w", dynamo.S("k"))
	}
	if err := Fsck(f.rts["w"]); err != nil {
		t.Errorf("clean state flagged: %v", err)
	}
}

func TestFsckPassesAfterChaosAndGC(t *testing.T) {
	plan := &platform.CrashProb{P: 0.02, Seed: 5}
	f := newFixture(t, withFaults(plan), withConfig(Config{
		RowCap: 4, T: 10 * time.Millisecond, ICMinAge: time.Millisecond,
	}))
	f.fn("w", counterBody, "counter")
	for i := 0; i < 25; i++ {
		f.invoke("w", dynamo.S("k")) //nolint:errcheck
	}
	plan.P = 0
	f.recoverAll()
	for pass := 0; pass < 3; pass++ {
		time.Sleep(12 * time.Millisecond)
		f.gcAll()
	}
	if err := Fsck(f.rts["w"]); err != nil {
		t.Errorf("post-chaos state flagged: %v", err)
	}
}

func TestFsckPassesAfterTransactions(t *testing.T) {
	f := newFixture(t, withConfig(Config{RowCap: 4, T: 5 * time.Millisecond, ICMinAge: time.Millisecond}))
	f.fn("bank", transferBody, "acct")
	seedAccounts(t, f, "bank", map[string]int64{"a": 100, "b": 100})
	for i := 0; i < 6; i++ {
		f.mustInvoke("bank", dynamo.M(map[string]Value{
			"from": dynamo.S("a"), "to": dynamo.S("b"), "amount": dynamo.NInt(5),
		}))
	}
	for pass := 0; pass < 3; pass++ {
		time.Sleep(8 * time.Millisecond)
		f.gcAll()
	}
	if err := Fsck(f.rts["bank"]); err != nil {
		t.Errorf("post-txn state flagged: %v", err)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	f := newFixture(t)
	f.fn("w", counterBody, "counter")
	for i := 0; i < 10; i++ { // fill > 1 row at cap 4
		f.mustInvoke("w", dynamo.S("k"))
	}
	rt := f.rts["w"]
	table := rt.dataTable("counter")

	// Corruption 1: break the LogSize invariant on the head.
	if err := f.store.Update(table, dynamo.HSK(dynamo.S("k"), dynamo.S(headRowID)), nil,
		dynamo.Set(dynamo.A(attrLogSize), dynamo.N(99))); err != nil {
		t.Fatal(err)
	}
	err := Fsck(rt)
	if err == nil || !strings.Contains(err.Error(), "LogSize") {
		t.Errorf("LogSize corruption not flagged: %v", err)
	}
	// Repair.
	if err := f.store.Update(table, dynamo.HSK(dynamo.S("k"), dynamo.S(headRowID)), nil,
		dynamo.Set(dynamo.A(attrLogSize), dynamo.N(4))); err != nil {
		t.Fatal(err)
	}
	if err := Fsck(rt); err != nil {
		t.Fatalf("state not clean after repair: %v", err)
	}

	// Corruption 2: a lock held by a completed intent. Only the chain tail's
	// lock is authoritative (filled rows legitimately retain stale owners),
	// so plant the stale owner there.
	items, _ := f.store.Scan(rt.intentTable, dynamo.QueryOpts{})
	doneID := items[0][attrInstanceID].Str()
	daalItems, _ := f.store.Scan(table, dynamo.QueryOpts{})
	rows := make(map[string]daalRow)
	for _, it := range daalItems {
		if r := decodeDAALRow(it); r.key == "k" {
			rows[r.rowID] = r
		}
	}
	chain := chainOrder(rows)
	tailID := chain[len(chain)-1]
	if tailID == headRowID {
		t.Fatal("test setup: expected the chain to have grown past the head")
	}
	if err := f.store.Update(table, dynamo.HSK(dynamo.S("k"), dynamo.S(tailID)), nil,
		dynamo.Set(dynamo.A(attrLockOwner), lockOwnerValue(doneID, 1))); err != nil {
		t.Fatal(err)
	}
	err = Fsck(rt)
	if err == nil || !strings.Contains(err.Error(), "lock held by completed intent") {
		t.Errorf("stale lock not flagged: %v", err)
	}
}

func TestFsckDetectsLogLeak(t *testing.T) {
	f := newFixture(t)
	f.fn("w", counterBody, "counter")
	f.mustInvoke("w", dynamo.S("k"))
	rt := f.rts["w"]
	// Simulate a GC bug: drop the intent but keep its read log.
	items, _ := f.store.Scan(rt.intentTable, dynamo.QueryOpts{})
	id := items[0][attrInstanceID].Str()
	if err := f.store.Delete(rt.intentTable, dynamo.HK(dynamo.S(id)), nil); err != nil {
		t.Fatal(err)
	}
	err := Fsck(rt)
	if err == nil || !strings.Contains(err.Error(), "leaked") {
		t.Errorf("log leak not flagged: %v", err)
	}
}

func TestFsckBaselineIsVacuous(t *testing.T) {
	f := newFixture(t, withMode(ModeBaseline))
	f.fn("w", counterBody, "counter")
	f.mustInvoke("w", dynamo.S("k"))
	if err := Fsck(f.rts["w"]); err != nil {
		t.Errorf("baseline fsck: %v", err)
	}
}
