package core

import (
	"errors"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// Baseline mode (§7.2): the same application bodies run against raw store
// and platform operations with no logging, no intent table, no callbacks,
// no locks and no transactions — and therefore none of Beldi's guarantees.
// A crashed instance leaves partial state behind; concurrent transactions
// interleave freely. The evaluation figures measure Beldi against exactly
// this configuration.

func (rt *Runtime) baselineHandler(inv *platform.Invocation, raw Value) (Value, error) {
	ev := decodeEnvelope(raw)
	env := &Env{rt: rt, inv: inv, instanceID: inv.RequestID, branch: "0",
		intent: &intentRecord{id: inv.RequestID}, shared: &envShared{app: ev.App}}
	return rt.body(env, ev.Input)
}

func (e *Env) baselineRead(table, key string) (Value, error) {
	e.crash("read")
	it, ok, err := e.rt.store.Get(e.rt.dataTable(table), dynamo.HK(dynamo.S(key)))
	if err != nil || !ok {
		return dynamo.Null, err
	}
	return it[attrValue], nil
}

func (e *Env) baselineWrite(table, key string, v Value) error {
	e.crash("write")
	return e.rt.store.Update(e.rt.dataTable(table), dynamo.HK(dynamo.S(key)), nil,
		dynamo.Set(dynamo.A(attrValue), v))
}

func (e *Env) baselineCondWrite(table, key string, v Value, cond dynamo.Cond) (bool, error) {
	e.crash("condwrite")
	err := e.rt.store.Update(e.rt.dataTable(table), dynamo.HK(dynamo.S(key)), cond,
		dynamo.Set(dynamo.A(attrValue), v))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, dynamo.ErrConditionFailed) {
		return false, nil
	}
	return false, err
}

func (e *Env) baselineSyncInvoke(callee string, input Value) (Value, error) {
	e.crash("invoke")
	return e.rt.plat.InvokeInternal(callee, envelope{Kind: kindCall, Input: input, App: e.shared.app}.encode())
}

func (e *Env) baselineAsyncInvoke(callee string, input Value) error {
	e.crash("ainvoke")
	return e.rt.plat.InvokeAsyncInternal(callee, envelope{Kind: kindCall, Input: input, App: e.shared.app}.encode())
}
