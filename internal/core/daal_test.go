package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dynamo"
)

func newDAAL(t *testing.T, rowCap int) (*daal, *fixture) {
	t.Helper()
	f := newFixture(t, withConfig(Config{RowCap: rowCap, T: DefaultT}))
	rt := f.fn("d", func(e *Env, in Value) (Value, error) { return dynamo.Null, nil }, "items")
	return &daal{rt: rt, table: rt.dataTable("items")}, f
}

func TestDAALFirstWriteCreatesHead(t *testing.T) {
	d, _ := newDAAL(t, 4)
	ok, err := d.loggedWrite("k", "i1#0.1", mutation{setVal: valPtr(dynamo.S("v1"))})
	if err != nil || !ok {
		t.Fatalf("write: %v %v", ok, err)
	}
	row, found, err := d.currentRow("k")
	if err != nil || !found {
		t.Fatalf("currentRow: %v %v", found, err)
	}
	if row.rowID != headRowID {
		t.Errorf("tail = %s, want head", row.rowID)
	}
	if row.value.Str() != "v1" {
		t.Errorf("value = %v", row.value)
	}
	if row.logSize != 1 || len(row.recent) != 1 {
		t.Errorf("log: size=%d entries=%d", row.logSize, len(row.recent))
	}
}

func TestDAALReplaySameLogKeyIsNoop(t *testing.T) {
	d, _ := newDAAL(t, 4)
	logKey := "i1#0.1"
	if _, err := d.loggedWrite("k", logKey, mutation{setVal: valPtr(dynamo.S("v1"))}); err != nil {
		t.Fatal(err)
	}
	// A different step writes v2; then the first step replays with v1 —
	// it must NOT re-apply (at-most-once).
	if _, err := d.loggedWrite("k", "i1#0.2", mutation{setVal: valPtr(dynamo.S("v2"))}); err != nil {
		t.Fatal(err)
	}
	ok, err := d.loggedWrite("k", logKey, mutation{setVal: valPtr(dynamo.S("v1"))})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("replay should report the recorded outcome (true)")
	}
	row, _, _ := d.currentRow("k")
	if row.value.Str() != "v2" {
		t.Errorf("replay re-applied: value = %v, want v2", row.value)
	}
}

func TestDAALAppendsRowsWhenFull(t *testing.T) {
	d, _ := newDAAL(t, 2)
	for i := 1; i <= 7; i++ {
		logKey := fmt.Sprintf("i1#0.%d", i)
		if _, err := d.loggedWrite("k", logKey, mutation{setVal: valPtr(dynamo.NInt(int64(i)))}); err != nil {
			t.Fatal(err)
		}
	}
	rows, order, err := d.chain("k")
	if err != nil {
		t.Fatal(err)
	}
	// 7 writes at cap 2: rows hold 2,2,2,1 entries → 4 rows.
	if len(order) != 4 {
		t.Fatalf("chain length = %d (%v)", len(order), order)
	}
	// Non-tail rows are full and immutable; tail has the latest value.
	for i, id := range order[:len(order)-1] {
		if rows[id].logSize != 2 {
			t.Errorf("row %d size = %d, want full", i, rows[id].logSize)
		}
		if rows[id].next == "" {
			t.Errorf("row %d has no next", i)
		}
	}
	tail := rows[order[len(order)-1]]
	if tail.value.Int() != 7 {
		t.Errorf("tail value = %v", tail.value)
	}
	// Every row carries the key; ids are the deterministic sequence.
	for i, id := range order {
		if want := fmt.Sprintf("r%08d", i); id != want {
			t.Errorf("row id %q, want %q", id, want)
		}
	}
}

func TestDAALCondWriteOutcomes(t *testing.T) {
	d, _ := newDAAL(t, 4)
	eq := func(v Value) dynamo.Cond { return dynamo.Eq(dynamo.A(attrValue), v) }
	if _, err := d.loggedWrite("k", "i#0.1", mutation{setVal: valPtr(dynamo.NInt(1))}); err != nil {
		t.Fatal(err)
	}
	// Condition true: applies.
	ok, err := d.loggedWrite("k", "i#0.2", mutation{cond: eq(dynamo.NInt(1)), setVal: valPtr(dynamo.NInt(2))})
	if err != nil || !ok {
		t.Fatalf("cond-true: %v %v", ok, err)
	}
	// Condition false: recorded, not applied (case B2).
	ok, err = d.loggedWrite("k", "i#0.3", mutation{cond: eq(dynamo.NInt(1)), setVal: valPtr(dynamo.NInt(99))})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("false condition reported applied")
	}
	row, _, _ := d.currentRow("k")
	if row.value.Int() != 2 {
		t.Errorf("value = %v, want 2", row.value)
	}
	// Replays return the recorded outcomes even though state has moved on.
	if ok, _ := d.loggedWrite("k", "i#0.3", mutation{cond: eq(dynamo.NInt(2)), setVal: valPtr(dynamo.NInt(99))}); ok {
		t.Error("B2 replay flipped to true")
	}
	if ok, _ := d.loggedWrite("k", "i#0.2", mutation{cond: eq(dynamo.NInt(777)), setVal: valPtr(dynamo.NInt(0))}); !ok {
		t.Error("B1 replay flipped to false")
	}
	// The false-condition entry still consumed log space.
	if row.logSize != 3 {
		t.Errorf("logSize = %d, want 3", row.logSize)
	}
}

func TestDAALCondWriteFalseAcrossFullRows(t *testing.T) {
	// A false conditional landing on a full tail must append a row and
	// record the false outcome there (cases C/D then B2).
	d, _ := newDAAL(t, 2)
	for i := 1; i <= 2; i++ {
		if _, err := d.loggedWrite("k", fmt.Sprintf("i#0.%d", i), mutation{setVal: valPtr(dynamo.NInt(int64(i)))}); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := d.loggedWrite("k", "i#0.3", mutation{
		cond:   dynamo.Eq(dynamo.A(attrValue), dynamo.NInt(42)),
		setVal: valPtr(dynamo.NInt(0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("condition should be false")
	}
	_, order, _ := d.chain("k")
	if len(order) != 2 {
		t.Fatalf("chain = %v", order)
	}
	row, _, _ := d.currentRow("k")
	if row.value.Int() != 2 {
		t.Errorf("value corrupted: %v", row.value)
	}
}

func TestDAALReadAcrossRows(t *testing.T) {
	d, _ := newDAAL(t, 2)
	for i := 1; i <= 5; i++ {
		if _, err := d.loggedWrite("k", fmt.Sprintf("i#0.%d", i), mutation{setVal: valPtr(dynamo.NInt(int64(i)))}); err != nil {
			t.Fatal(err)
		}
	}
	row, ok, err := d.currentRow("k")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if row.value.Int() != 5 {
		t.Errorf("read %v, want 5", row.value)
	}
	if _, ok, _ := d.currentRow("never-written"); ok {
		t.Error("found never-written key")
	}
}

func TestDAALLockColumnCarriedOnAppend(t *testing.T) {
	d, _ := newDAAL(t, 2)
	owner := lockOwnerValue("holder", 7)
	if _, err := d.loggedWrite("k", "h#0.1", mutation{cond: lockCond("holder"), setLock: &owner}); err != nil {
		t.Fatal(err)
	}
	// Fill the row and force appends; the lock must survive on the tail.
	for i := 2; i <= 6; i++ {
		if _, err := d.loggedWrite("k", fmt.Sprintf("w#0.%d", i), mutation{setVal: valPtr(dynamo.NInt(int64(i)))}); err != nil {
			t.Fatal(err)
		}
	}
	row, _, _ := d.currentRow("k")
	id, _ := row.lock.MapGet(attrID)
	if id.Str() != "holder" {
		t.Errorf("lock owner lost across append: %v", row.lock)
	}
	// Another owner's conditional acquisition must fail on the tail.
	other := lockOwnerValue("other", 9)
	ok, err := d.loggedWrite("k", "o#0.1", mutation{cond: lockCond("other"), setLock: &other})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("lock stolen")
	}
}

func TestDAALConcurrentDistinctWritersAllLogged(t *testing.T) {
	// 20 writers, distinct log keys, same item: every write must be logged
	// exactly once somewhere in the chain, the chain must be well formed,
	// and the tail value must be one of the written values.
	d, _ := newDAAL(t, 3)
	const writers = 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			logKey := fmt.Sprintf("i%d#0.1", w)
			if _, err := d.loggedWrite("k", logKey, mutation{setVal: valPtr(dynamo.NInt(int64(w)))}); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	rows, order, err := d.chain("k")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, id := range order {
		r := rows[id]
		if len(r.recent) > 3 {
			t.Errorf("row %s over capacity: %d", id, len(r.recent))
		}
		if r.logSize != len(r.recent) {
			t.Errorf("row %s logSize=%d entries=%d", id, r.logSize, len(r.recent))
		}
		for k := range r.recent {
			seen[k]++
		}
	}
	if len(seen) != writers {
		t.Errorf("logged %d distinct ops, want %d", len(seen), writers)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("logKey %s appears %d times", k, n)
		}
	}
	// All rows accounted for in the chain (deterministic ids → no orphans).
	if len(rows) != len(order) {
		t.Errorf("%d rows stored, %d reachable", len(rows), len(order))
	}
}

func TestDAALConcurrentSameLogKeyAppliesOnce(t *testing.T) {
	// The same (instance, step) raced by 10 executors must apply exactly
	// once — the at-most-once core of §3.1, under duplicate IC restarts.
	d, _ := newDAAL(t, 4)
	if _, err := d.loggedWrite("k", "seed#0.1", mutation{setVal: valPtr(dynamo.NInt(0))}); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 5; round++ {
		logKey := fmt.Sprintf("dup#0.%d", round)
		var wg sync.WaitGroup
		for g := 0; g < 10; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// increment-like mutation: all executors compute the same
				// target value (deterministic replay), so at-most-once is
				// what keeps the counter correct.
				v := dynamo.NInt(int64(round))
				if _, err := d.loggedWrite("k", logKey, mutation{setVal: &v}); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		row, _, _ := d.currentRow("k")
		if row.value.Int() != int64(round) {
			t.Fatalf("round %d: value %v", round, row.value)
		}
	}
	// Exactly 6 log entries total (seed + 5 rounds).
	rows, order, _ := d.chain("k")
	total := 0
	for _, id := range order {
		total += len(rows[id].recent)
	}
	if total != 6 {
		t.Errorf("total log entries = %d, want 6", total)
	}
}

func TestDAALSkeletonProjectionFindsLogAnywhere(t *testing.T) {
	d, _ := newDAAL(t, 2)
	for i := 1; i <= 5; i++ {
		if _, err := d.loggedWrite("k", fmt.Sprintf("i#0.%d", i), mutation{setVal: valPtr(dynamo.NInt(int64(i)))}); err != nil {
			t.Fatal(err)
		}
	}
	// Entry i#0.2 lives in the first row (cap 2); the skeleton scan keyed
	// on it must find it without reading full rows.
	sk, err := d.scanSkeleton("k", "i#0.2")
	if err != nil {
		t.Fatal(err)
	}
	if _, found := sk.findLog(); !found {
		t.Error("skeleton missed a log entry in a non-tail row")
	}
	sk, _ = d.scanSkeleton("k", "i#0.99")
	if _, found := sk.findLog(); found {
		t.Error("skeleton found a never-written entry")
	}
	tail, ok := sk.tail()
	if !ok || tail != "r00000002" {
		t.Errorf("tail = %s %v", tail, ok)
	}
}

func TestNextRowIDPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on malformed row id")
		}
	}()
	nextRowID("not-a-row")
}

func valPtr(v Value) *Value { return &v }
