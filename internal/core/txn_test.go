package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// transferBody moves amount from account "from" to "to" transactionally iff
// funds suffice; returns the decision.
func transferBody(e *Env, in Value) (Value, error) {
	m := in.Map()
	from, to := m["from"].Str(), m["to"].Str()
	amount := m["amount"].Int()
	committed := false
	err := e.Transaction(func() error {
		bal, err := e.Read("acct", from)
		if err != nil {
			return err
		}
		if bal.Int() < amount {
			return nil // insufficient: commit without changes
		}
		if err := e.Write("acct", from, dynamo.NInt(bal.Int()-amount)); err != nil {
			return err
		}
		toBal, err := e.Read("acct", to)
		if err != nil {
			return err
		}
		if err := e.Write("acct", to, dynamo.NInt(toBal.Int()+amount)); err != nil {
			return err
		}
		committed = true
		return nil
	})
	if errors.Is(err, ErrTxnAborted) {
		return dynamo.S("aborted"), nil
	}
	if err != nil {
		return dynamo.Null, err
	}
	if committed {
		return dynamo.S("ok"), nil
	}
	return dynamo.S("insufficient"), nil
}

func seedAccounts(t *testing.T, f *fixture, fn string, balances map[string]int64) {
	t.Helper()
	f.fn(fn+".seed", func(e *Env, in Value) (Value, error) {
		for k, v := range in.Map() {
			if err := e.Write("acct", k, v); err != nil {
				return dynamo.Null, err
			}
		}
		return dynamo.Null, nil
	})
	// The seeder writes through the owner's tables, so share the runtime's
	// store/table names by writing directly instead.
	rt := f.rts[fn]
	for k, v := range balances {
		d := daal{rt: rt, table: rt.dataTable("acct")}
		if _, err := d.loggedWrite(k, "seed#"+k, mutation{setVal: valPtr(dynamo.NInt(v))}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTransactionCommitSingleSSF(t *testing.T) {
	f := newFixture(t)
	f.fn("bank", transferBody, "acct")
	seedAccounts(t, f, "bank", map[string]int64{"a": 100, "b": 50})
	out := f.mustInvoke("bank", dynamo.M(map[string]Value{
		"from": dynamo.S("a"), "to": dynamo.S("b"), "amount": dynamo.NInt(30),
	}))
	if out.Str() != "ok" {
		t.Fatalf("transfer: %v", out)
	}
	if got := f.readData("bank", "acct", "a"); got.Int() != 70 {
		t.Errorf("a = %v", got)
	}
	if got := f.readData("bank", "acct", "b"); got.Int() != 80 {
		t.Errorf("b = %v", got)
	}
	// Locks released.
	_, lock, _, _ := f.rts["bank"].layer().stateRead("acct", "a")
	if !lock.IsNull() {
		t.Errorf("lock still held: %v", lock)
	}
}

func TestTransactionInsufficientFundsLeavesStateIntact(t *testing.T) {
	f := newFixture(t)
	f.fn("bank", transferBody, "acct")
	seedAccounts(t, f, "bank", map[string]int64{"a": 10, "b": 0})
	out := f.mustInvoke("bank", dynamo.M(map[string]Value{
		"from": dynamo.S("a"), "to": dynamo.S("b"), "amount": dynamo.NInt(30),
	}))
	if out.Str() != "insufficient" {
		t.Fatalf("transfer: %v", out)
	}
	if got := f.readData("bank", "acct", "a"); got.Int() != 10 {
		t.Errorf("a = %v", got)
	}
}

func TestTransactionAbortDiscardsShadow(t *testing.T) {
	f := newFixture(t)
	f.fn("bank", func(e *Env, in Value) (Value, error) {
		err := e.Transaction(func() error {
			if err := e.Write("acct", "a", dynamo.NInt(999)); err != nil {
				return err
			}
			return errors.New("deliberate abort")
		})
		if err == nil {
			return dynamo.Null, errors.New("abort did not surface")
		}
		return dynamo.S("aborted"), nil
	}, "acct")
	seedAccounts(t, f, "bank", map[string]int64{"a": 1})
	out := f.mustInvoke("bank", dynamo.Null)
	if out.Str() != "aborted" {
		t.Fatalf("out = %v", out)
	}
	if got := f.readData("bank", "acct", "a"); got.Int() != 1 {
		t.Errorf("abort leaked: a = %v", got)
	}
	_, lock, _, _ := f.rts["bank"].layer().stateRead("acct", "a")
	if !lock.IsNull() {
		t.Errorf("lock leaked after abort: %v", lock)
	}
}

func TestTransactionReadYourWrites(t *testing.T) {
	f := newFixture(t)
	f.fn("rw", func(e *Env, in Value) (Value, error) {
		var got Value
		err := e.Transaction(func() error {
			if err := e.Write("acct", "x", dynamo.NInt(42)); err != nil {
				return err
			}
			var err error
			got, err = e.Read("acct", "x")
			return err
		})
		return got, err
	}, "acct")
	if out := f.mustInvoke("rw", dynamo.Null); out.Int() != 42 {
		t.Errorf("read-your-writes = %v", out)
	}
}

func TestTransactionPanicAborts(t *testing.T) {
	// §6.2: the body runs in a goroutine to catch runtime exceptions; a
	// panic must abort, not crash the instance.
	f := newFixture(t)
	f.fn("p", func(e *Env, in Value) (Value, error) {
		err := e.Transaction(func() error {
			if err := e.Write("acct", "x", dynamo.NInt(1)); err != nil {
				return err
			}
			panic("division by zero, say")
		})
		if errors.Is(err, ErrTxnAborted) {
			return dynamo.S("aborted"), nil
		}
		return dynamo.Null, err
	}, "acct")
	if out := f.mustInvoke("p", dynamo.Null); out.Str() != "aborted" {
		t.Fatalf("out = %v", out)
	}
	if got := f.readData("p", "acct", "x"); !got.IsNull() {
		t.Errorf("panic leaked write: %v", got)
	}
}

func TestCrossSSFTransactionCommit(t *testing.T) {
	// The travel-reservation shape (§7.1): a coordinator reserves a hotel
	// and a flight in different SSFs inside one transaction; both must
	// commit atomically.
	f := newFixture(t)
	reserve := func(e *Env, in Value) (Value, error) {
		cap, err := e.Read("inv", "capacity")
		if err != nil {
			return dynamo.Null, err
		}
		if cap.Int() < 1 {
			return dynamo.Null, ErrTxnAborted
		}
		if err := e.Write("inv", "capacity", dynamo.NInt(cap.Int()-1)); err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("reserved"), nil
	}
	f.fn("hotel", reserve, "inv")
	f.fn("flight", reserve, "inv")
	f.fn("trip", func(e *Env, in Value) (Value, error) {
		err := e.Transaction(func() error {
			if _, err := e.SyncInvoke("hotel", dynamo.Null); err != nil {
				return err
			}
			_, err := e.SyncInvoke("flight", dynamo.Null)
			return err
		})
		if errors.Is(err, ErrTxnAborted) {
			return dynamo.S("aborted"), nil
		}
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("booked"), nil
	})
	seedCapacity(t, f, "hotel", 2)
	seedCapacity(t, f, "flight", 1)

	if out := f.mustInvoke("trip", dynamo.Null); out.Str() != "booked" {
		t.Fatalf("first trip: %v", out)
	}
	if got := f.readData("hotel", "inv", "capacity"); got.Int() != 1 {
		t.Errorf("hotel capacity = %v", got)
	}
	if got := f.readData("flight", "inv", "capacity"); got.Int() != 0 {
		t.Errorf("flight capacity = %v", got)
	}

	// Second trip: hotel has room, flight does not → whole txn aborts and
	// the hotel's decrement must NOT stick.
	if out := f.mustInvoke("trip", dynamo.Null); out.Str() != "aborted" {
		t.Fatalf("second trip: %v", out)
	}
	if got := f.readData("hotel", "inv", "capacity"); got.Int() != 1 {
		t.Errorf("hotel capacity leaked on abort: %v", got)
	}
	if got := f.readData("flight", "inv", "capacity"); got.Int() != 0 {
		t.Errorf("flight capacity = %v", got)
	}
	// All locks across both participants are released.
	for _, fn := range []string{"hotel", "flight"} {
		_, lock, _, _ := f.rts[fn].layer().stateRead("inv", "capacity")
		if !lock.IsNull() {
			t.Errorf("%s lock leaked: %v", fn, lock)
		}
	}
}

func seedCapacity(t *testing.T, f *fixture, fn string, n int64) {
	t.Helper()
	rt := f.rts[fn]
	d := daal{rt: rt, table: rt.dataTable("inv")}
	if _, err := d.loggedWrite("capacity", "seed#0.1", mutation{setVal: valPtr(dynamo.NInt(n))}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitDieYoungerAborts(t *testing.T) {
	// An older transaction holds the lock; a younger one must die, not
	// wait forever (Fig 11).
	f := newFixture(t)
	release := make(chan struct{})
	entered := make(chan struct{})
	f.fn("bank", func(e *Env, in Value) (Value, error) {
		role := in.Str()
		err := e.Transaction(func() error {
			if _, err := e.Read("acct", "hot"); err != nil {
				return err
			}
			if role == "older" {
				close(entered)
				<-release
			}
			return nil
		})
		if errors.Is(err, ErrTxnAborted) {
			return dynamo.S("aborted"), nil
		}
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("committed"), nil
	}, "acct")

	var older Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		older = f.mustInvoke("bank", dynamo.S("older"))
	}()
	<-entered
	// The younger transaction starts strictly later (timestamps are
	// microseconds; spin until distinct).
	time.Sleep(time.Millisecond)
	younger := f.mustInvoke("bank", dynamo.S("younger"))
	close(release)
	wg.Wait()
	if older.Str() != "committed" {
		t.Errorf("older = %v", older)
	}
	if younger.Str() != "aborted" {
		t.Errorf("younger = %v, want aborted (wait-die)", younger)
	}
}

func TestConcurrentTransfersConserveMoney(t *testing.T) {
	// Serializable isolation under contention: concurrent transfers between
	// three accounts never create or destroy money and never drive an
	// account negative.
	f := newFixture(t, withConfig(Config{RowCap: 8, T: DefaultT, LockRetryMax: 200}))
	f.fn("bank", transferBody, "acct")
	seedAccounts(t, f, "bank", map[string]int64{"a": 100, "b": 100, "c": 100})
	accounts := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from := accounts[i%3]
			to := accounts[(i+1)%3]
			f.invoke("bank", dynamo.M(map[string]Value{ //nolint:errcheck
				"from": dynamo.S(from), "to": dynamo.S(to), "amount": dynamo.NInt(int64(1 + i%5)),
			}))
		}(i)
	}
	wg.Wait()
	f.recoverAll() // finish any aborted-but-pending instances
	total := int64(0)
	for _, a := range accounts {
		v := f.readData("bank", "acct", a)
		if v.Int() < 0 {
			t.Errorf("account %s negative: %v", a, v)
		}
		total += v.Int()
	}
	if total != 300 {
		t.Errorf("total = %d, want 300 (money not conserved)", total)
	}
	// No lock survives.
	for _, a := range accounts {
		_, lock, _, _ := f.rts["bank"].layer().stateRead("acct", a)
		if !lock.IsNull() {
			t.Errorf("lock on %s leaked: %v", a, lock)
		}
	}
}

func TestTransactionCrashDuringCommitRecovers(t *testing.T) {
	// Kill the owner between shadow-flush and lock-release; the intent
	// collector must finish the commit (§6.2: "Beldi's exactly-once
	// semantics ensure that once the SSF instance is re-executed, it will
	// pick up from where it left off").
	plan := &platform.CrashOnce{Function: "bank", Label: "txnflush:post:0.000009"}
	f := newFixture(t, withFaults(plan))
	f.fn("bank", transferBody, "acct")
	seedAccounts(t, f, "bank", map[string]int64{"a": 100, "b": 50})
	in := dynamo.M(map[string]Value{"from": dynamo.S("a"), "to": dynamo.S("b"), "amount": dynamo.NInt(30)})
	_, err := f.invoke("bank", in)
	if err == nil {
		// The chosen label may not exist on this code path; require it to
		// have fired for the test to mean anything.
		if plan.Fired() {
			t.Fatal("crash fired but invocation succeeded")
		}
		t.Skip("crash label not reached; covered by the sweep test")
	}
	f.recoverAll()
	a := f.readData("bank", "acct", "a").Int()
	b := f.readData("bank", "acct", "b").Int()
	if a+b != 150 {
		t.Errorf("money not conserved after commit crash: a=%d b=%d", a, b)
	}
	if a != 70 || b != 80 {
		t.Errorf("commit incomplete: a=%d b=%d, want 70/80", a, b)
	}
}

func TestCrossSSFTransactionCrashSweep(t *testing.T) {
	// The heavyweight one: crash every op boundary of all three SSFs in a
	// cross-SSF transaction and require atomic commit after recovery.
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	build := func(f *fixture) {
		reserve := func(e *Env, in Value) (Value, error) {
			cap, err := e.Read("inv", "capacity")
			if err != nil {
				return dynamo.Null, err
			}
			if cap.Int() < 1 {
				return dynamo.Null, ErrTxnAborted
			}
			if err := e.Write("inv", "capacity", dynamo.NInt(cap.Int()-1)); err != nil {
				return dynamo.Null, err
			}
			return dynamo.S("reserved"), nil
		}
		f.fn("hotel", reserve, "inv")
		f.fn("flight", reserve, "inv")
		f.fn("trip", func(e *Env, in Value) (Value, error) {
			err := e.Transaction(func() error {
				if _, err := e.SyncInvoke("hotel", dynamo.Null); err != nil {
					return err
				}
				_, err := e.SyncInvoke("flight", dynamo.Null)
				return err
			})
			if errors.Is(err, ErrTxnAborted) {
				return dynamo.S("aborted"), nil
			}
			if err != nil {
				return dynamo.Null, err
			}
			return dynamo.S("booked"), nil
		})
		seedCapacity(t, f, "hotel", 5)
		seedCapacity(t, f, "flight", 5)
	}
	workload := func(f *fixture) error {
		ev := envelope{Kind: kindCall, InstanceID: "trip-1", Input: dynamo.Null}
		f.plat.Invoke("trip", ev.encode()) //nolint:errcheck // crash expected
		return nil
	}
	check := func(f *fixture, label string) {
		f.recoverAll()
		h := f.readData("hotel", "inv", "capacity").Int()
		fl := f.readData("flight", "inv", "capacity").Int()
		if h != 4 || fl != 4 {
			t.Errorf("%s: capacities h=%d f=%d, want 4/4 (atomicity violated)", label, h, fl)
		}
		for _, fn := range []string{"hotel", "flight"} {
			_, lock, _, _ := f.rts[fn].layer().stateRead("inv", "capacity")
			if !lock.IsNull() {
				t.Errorf("%s: %s lock leaked: %v", label, fn, lock)
			}
		}
	}
	crashSweep(t, []string{"trip", "hotel", "flight"}, build, workload, check)
}

func TestOpacityDoomedTransactionSeesConsistentSnapshot(t *testing.T) {
	// Figure 12's scenario: a transaction that reads x and y with the
	// invariant x == y must never observe a half-applied update, even if it
	// is doomed to abort. With 2PL both reads lock, so the half-state is
	// unobservable.
	f := newFixture(t, withConfig(Config{RowCap: 8, T: DefaultT, LockRetryMax: 400}))
	f.fn("inc", func(e *Env, in Value) (Value, error) {
		err := e.Transaction(func() error {
			x, err := e.Read("kv", "x")
			if err != nil {
				return err
			}
			y, err := e.Read("kv", "y")
			if err != nil {
				return err
			}
			if x.Int() != y.Int() {
				return fmt.Errorf("opacity violated: x=%d y=%d", x.Int(), y.Int())
			}
			if err := e.Write("kv", "x", dynamo.NInt(x.Int()+1)); err != nil {
				return err
			}
			return e.Write("kv", "y", dynamo.NInt(y.Int()+1))
		})
		if errors.Is(err, ErrTxnAborted) {
			return dynamo.S("aborted"), nil
		}
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("ok"), nil
	}, "kv")
	rt := f.rts["inc"]
	for _, k := range []string{"x", "y"} {
		d := daal{rt: rt, table: rt.dataTable("kv")}
		if _, err := d.loggedWrite(k, "seed#0.1", mutation{setVal: valPtr(dynamo.NInt(0))}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.invoke("inc", dynamo.Null) //nolint:errcheck // aborts are fine; inconsistency is not
		}()
	}
	wg.Wait()
	f.recoverAll()
	x := f.readData("inc", "kv", "x").Int()
	y := f.readData("inc", "kv", "y").Int()
	if x != y {
		t.Errorf("final x=%d y=%d", x, y)
	}
}

func TestNonTransactionalSSFInsideTransaction(t *testing.T) {
	// §6.2: an SSF with no begin/end of its own, invoked inside a
	// transaction, inherits the context and locks automatically.
	f := newFixture(t)
	f.fn("plain", func(e *Env, in Value) (Value, error) {
		v, err := e.Read("kv", "n")
		if err != nil {
			return dynamo.Null, err
		}
		if e.TxnID() == "" {
			return dynamo.Null, errors.New("context not inherited")
		}
		return dynamo.Null, e.Write("kv", "n", dynamo.NInt(v.Int()+1))
	}, "kv")
	f.fn("owner", func(e *Env, in Value) (Value, error) {
		err := e.Transaction(func() error {
			_, err := e.SyncInvoke("plain", dynamo.Null)
			return err
		})
		return dynamo.S("done"), err
	})
	f.mustInvoke("owner", dynamo.Null)
	if got := f.readData("plain", "kv", "n"); got.Int() != 1 {
		t.Errorf("n = %v", got)
	}
	_, lock, _, _ := f.rts["plain"].layer().stateRead("kv", "n")
	if !lock.IsNull() {
		t.Errorf("inherited txn leaked lock: %v", lock)
	}
}

func TestAsyncInvokeRejectedInTransaction(t *testing.T) {
	f := newFixture(t)
	f.fn("bg", counterBody, "counter")
	f.fn("owner", func(e *Env, in Value) (Value, error) {
		err := e.Transaction(func() error {
			return e.AsyncInvoke("bg", dynamo.Null)
		})
		if errors.Is(err, ErrTxnAborted) {
			return dynamo.S("aborted"), nil
		}
		return dynamo.Null, err
	})
	out := f.mustInvoke("owner", dynamo.Null)
	if out.Str() != "aborted" {
		t.Errorf("async-in-txn should abort the transaction, got %v", out)
	}
}

func TestSequentialTransactionsDistinctIDs(t *testing.T) {
	// Two transactions in one instance must get distinct ids (registries
	// and locks key on them).
	f := newFixture(t)
	var ids []string
	f.fn("twice", func(e *Env, in Value) (Value, error) {
		for i := 0; i < 2; i++ {
			err := e.Transaction(func() error {
				ids = append(ids, e.TxnID())
				return e.Write("kv", "k", dynamo.NInt(int64(i)))
			})
			if err != nil {
				return dynamo.Null, err
			}
		}
		return dynamo.S("done"), nil
	}, "kv")
	f.mustInvoke("twice", dynamo.Null)
	if len(ids) != 2 || ids[0] == ids[1] || ids[0] == "" {
		t.Errorf("txn ids = %v", ids)
	}
}
