package core

import (
	"testing"

	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
)

// Reproduce: lock held across a DAAL row transition leaves a stale LockOwner
// on the filled (immutable) row; fsck must not flag it once the owner
// completes.
func TestFsckLockAcrossRowTransition(t *testing.T) {
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{})
	rt := MustNewRuntime(RuntimeOptions{Function: "f", Store: store, Platform: plat, Config: Config{RowCap: 4}})
	rt.MustCreateDataTable("t")
	Register(rt, func(e *Env, in Value) (Value, error) {
		if err := e.Lock("t", "k"); err != nil {
			return dynamo.Null, err
		}
		for i := 0; i < 10; i++ {
			if err := e.Write("t", "k", dynamo.NInt(int64(i))); err != nil {
				return dynamo.Null, err
			}
		}
		if err := e.Unlock("t", "k"); err != nil {
			return dynamo.Null, err
		}
		return dynamo.Null, nil
	})
	if _, err := plat.Invoke("f", dynamo.Null); err != nil {
		t.Fatal(err)
	}
	if err := Fsck(rt); err != nil {
		t.Fatalf("fsck: %v", err)
	}
}
