package core

// Tests for the cluster seam: collector gating, fenced claims, and the
// claim-path fixes for assumptions that one process owns all tables.

import (
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// fakeGate is a scriptable CollectorGate.
type fakeGate struct {
	owns  func(id string) bool
	fence func(id string) []dynamo.TxOp
}

func (g *fakeGate) OwnsIntent(id string) bool { return g.owns(id) }
func (g *fakeGate) ClaimFence(id string) []dynamo.TxOp {
	if g.fence == nil {
		return nil
	}
	return g.fence(id)
}

func TestCollectorGateScopesScan(t *testing.T) {
	f := newFixture(t, withFaults(&platform.CrashNthOp{Function: "w", N: 1}))
	rt := f.fn("w", func(e *Env, _ Value) (Value, error) {
		if err := e.Write("state", "k", dynamo.NInt(1)); err != nil {
			return dynamo.Null, err
		}
		return dynamo.Null, nil
	}, "state")

	// Crash right after intent registration: one pending intent.
	if _, err := f.invoke("w", dynamo.Null); err == nil {
		t.Fatal("seed crash did not fire")
	}

	// A gate that owns nothing: the collector must not restart the intent.
	rt.SetCollectorGate(&fakeGate{owns: func(string) bool { return false }})
	time.Sleep(2 * time.Millisecond) // exceed ICMinAge
	n, err := rt.RunIntentCollector()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("gated-out collector restarted %d intents", n)
	}

	// A gate that owns everything (with no extra fence): normal collection.
	rt.SetCollectorGate(&fakeGate{owns: func(string) bool { return true }})
	f.recoverAll()
	v, err := rt.PeekState("state", "k")
	if err != nil || v.Int() != 1 {
		t.Fatalf("state after gated recovery = %v (%v)", v, err)
	}
}

func TestFencedClaimRejectedAndCounted(t *testing.T) {
	f := newFixture(t, withFaults(&platform.CrashNthOp{Function: "w", N: 1}))
	rt := f.fn("w", func(e *Env, _ Value) (Value, error) {
		return dynamo.Null, e.Write("state", "k", dynamo.NInt(1))
	}, "state")
	if _, err := f.invoke("w", dynamo.Null); err == nil {
		t.Fatal("seed crash did not fire")
	}
	time.Sleep(2 * time.Millisecond) // exceed ICMinAge

	// An authority table whose row no longer matches the worker's cached
	// epoch: every claim must fail atomically and count as fenced.
	if err := f.store.CreateTable(dynamo.Schema{Name: "auth", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	if err := f.store.Put("auth", dynamo.Item{"K": dynamo.S("p"), "Epoch": dynamo.NInt(7)}, nil); err != nil {
		t.Fatal(err)
	}
	rt.SetCollectorGate(&fakeGate{
		owns: func(string) bool { return true },
		fence: func(string) []dynamo.TxOp {
			return []dynamo.TxOp{{
				Table: "auth", Key: dynamo.HK(dynamo.S("p")),
				Cond:  dynamo.Eq(dynamo.A("Epoch"), dynamo.NInt(6)), // stale
				Check: true,
			}}
		},
	})
	n, err := rt.RunIntentCollector()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fenced collector restarted %d intents", n)
	}
	if got := rt.Stats().FencedClaims.Load(); got < 1 {
		t.Fatalf("FencedClaims = %d, want ≥ 1", got)
	}

	// With the fence current, the same claim goes through and the workflow
	// completes exactly once.
	rt.SetCollectorGate(&fakeGate{
		owns: func(string) bool { return true },
		fence: func(string) []dynamo.TxOp {
			return []dynamo.TxOp{{
				Table: "auth", Key: dynamo.HK(dynamo.S("p")),
				Cond:  dynamo.Eq(dynamo.A("Epoch"), dynamo.NInt(7)),
				Check: true,
			}}
		},
	})
	f.recoverAll()
	v, err := rt.PeekState("state", "k")
	if err != nil || v.Int() != 1 {
		t.Fatalf("state after fenced recovery = %v (%v)", v, err)
	}
	if err := Fsck(rt); err != nil {
		t.Errorf("fsck: %v", err)
	}
}

// TestLateCompletionDoesNotResurrectIntent is the multi-worker regression
// for markIntentDone: an instance that outlives its garbage-collected
// intent (possible once workers with independent clocks share a backend)
// must not upsert a half-formed intent row back into the table.
func TestLateCompletionDoesNotResurrectIntent(t *testing.T) {
	f := newFixture(t)
	rt := f.fn("w", func(e *Env, _ Value) (Value, error) {
		return dynamo.Null, nil
	}, "state")

	// The intent was completed and collected long ago; a zombie instance
	// now reports its (identical, deduplicated) completion.
	if err := rt.markIntentDone("ghost-instance", dynamo.S("late")); err != nil {
		t.Fatalf("late completion errored: %v", err)
	}
	if _, ok, err := f.store.Get(rt.intentTable, dynamo.HK(dynamo.S("ghost-instance"))); err != nil || ok {
		t.Fatalf("late completion resurrected the intent row (ok=%v err=%v)", ok, err)
	}
	// And the pending index stays empty: nothing for any collector to chew.
	items, err := f.store.QueryIndex(rt.intentTable, indexPending, dynamo.S(pendingMarker), dynamo.QueryOpts{})
	if err != nil || len(items) != 0 {
		t.Fatalf("pending index after late completion: %d rows (%v)", len(items), err)
	}
}
