package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// Context-first invocation: InvokeCtx's context flows into Env.Context and
// is observed inside every retry wait. Cancellation must abort promptly
// and cleanly — the canceled instance holds nothing, the intent stays
// pending, and the collectors finish the workflow exactly once.

func TestCancelMidLockLeavesNoLockBehind(t *testing.T) {
	f := newFixture(t, withConfig(Config{
		RowCap: 4, T: DefaultT, ICMinAge: time.Millisecond,
		LockRetryBase: 200 * time.Microsecond, LockRetryMax: 10000,
	}))
	// Locks are owned by intents within one SSF's tables, so the holder and
	// the waiter are two instances of the same function, told apart by
	// input.
	held := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	f.fn("locker", func(e *Env, in Value) (Value, error) {
		if err := e.Lock("kv", "m"); err != nil {
			return dynamo.Null, err
		}
		if in.Str() == "hold" {
			once.Do(func() { close(held) })
			<-release
		}
		if err := e.Write("kv", "data", in); err != nil {
			return dynamo.Null, err
		}
		return dynamo.Null, e.Unlock("kv", "m")
	}, "kv")

	go f.mustInvoke("locker", dynamo.S("hold"))
	<-held

	// The waiter queues behind the held lock; cancel it mid-wait.
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := f.plat.InvokeCtx(ctx, "locker", ClientEnvelope(dynamo.S("wait")))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter enter its backoff loop
	canceledAt := time.Now()
	cancel()
	var err error
	select {
	case err = <-errCh:
	case <-time.After(2 * time.Second):
		t.Fatal("canceled lock wait did not abort within 2s")
	}
	promptness := time.Since(canceledAt)
	if err == nil {
		t.Fatal("canceled invocation reported success")
	}
	if !errors.Is(err, platform.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want cancellation", err)
	}
	if promptness > 500*time.Millisecond {
		t.Errorf("cancellation took %v, want prompt abort", promptness)
	}

	// The canceled waiter holds nothing: the lock still belongs to the
	// holder's intent, untouched.
	_, lock, _, _ := f.rts["locker"].layer().stateRead("kv", "m")
	if lock.IsNull() {
		t.Error("lock vanished while held")
	}

	// Release the holder; the waiter's pending intent is resurrected by the
	// collector (with a background context) and completes exactly once.
	close(release)
	f.plat.Drain()
	f.recoverAll()
	if got := f.readData("locker", "kv", "data"); got.Str() != "wait" {
		t.Errorf("data = %v, want the collected waiter's write", got)
	}
	_, lock, _, _ = f.rts["locker"].layer().stateRead("kv", "m")
	if !lock.IsNull() {
		t.Errorf("lock leaked after recovery: %v", lock)
	}
	for _, rt := range f.rts {
		if err := Fsck(rt); err != nil {
			t.Errorf("fsck %s: %v", rt.fn, err)
		}
	}
}

func TestDeadlineExpiryBehavesLikeCancel(t *testing.T) {
	f := newFixture(t)
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	f.fn("slow", func(e *Env, in Value) (Value, error) {
		once.Do(func() { close(started) })
		<-block
		return e.Read("kv", "x") // first op after the deadline: dies here
	}, "kv")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := f.plat.InvokeCtx(ctx, "slow", ClientEnvelope(dynamo.Null))
		errCh <- err
	}()
	<-started
	err := <-errCh
	if !errors.Is(err, platform.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	close(block)
	f.plat.Drain()
	f.recoverAll()
	for _, rt := range f.rts {
		if err := Fsck(rt); err != nil {
			t.Errorf("fsck %s: %v", rt.fn, err)
		}
	}
}

func TestContextPropagatesDownSyncInvokeChain(t *testing.T) {
	f := newFixture(t)
	probe := make(chan context.Context, 1)
	f.fn("leaf", func(e *Env, in Value) (Value, error) {
		probe <- e.Context()
		return dynamo.S("ok"), nil
	})
	f.fn("root", func(e *Env, in Value) (Value, error) {
		return e.SyncInvoke("leaf", in)
	})
	type ctxKey struct{}
	ctx := context.WithValue(context.Background(), ctxKey{}, "marker")
	if _, err := f.plat.InvokeCtx(ctx, "root", ClientEnvelope(dynamo.Null)); err != nil {
		t.Fatal(err)
	}
	leafCtx := <-probe
	if leafCtx.Value(ctxKey{}) != "marker" {
		t.Error("caller context did not reach the leaf SSF")
	}
}

func TestEnvContextDefaultsToBackground(t *testing.T) {
	f := newFixture(t)
	f.fn("plain", func(e *Env, in Value) (Value, error) {
		if e.Context() == nil {
			return dynamo.Null, errors.New("nil context")
		}
		if e.Context().Done() != nil {
			return dynamo.Null, errors.New("context-free entry has a cancelable context")
		}
		return dynamo.Null, nil
	})
	f.mustInvoke("plain", dynamo.Null)
}

// TestParallelErrorAggregation pins Parallel's semantics: every branch
// runs to completion (no early cancellation of siblings), the returned
// error is the declaration-order-first one, and ErrTxnAborted outranks
// other errors regardless of position.
func TestParallelErrorAggregation(t *testing.T) {
	f := newFixture(t)
	errA := errors.New("branch A failed")
	errB := errors.New("branch B failed")
	f.fn("par", func(e *Env, in Value) (Value, error) {
		ran := make([]bool, 3)
		err := e.Parallel(
			func(sub *Env) error {
				ran[0] = true
				time.Sleep(5 * time.Millisecond) // errB happens first in time
				return errA
			},
			func(sub *Env) error {
				ran[1] = true
				return errB
			},
			func(sub *Env) error {
				ran[2] = true
				return sub.Write("kv", "c", dynamo.S("done"))
			},
		)
		for i, r := range ran {
			if !r {
				return dynamo.Null, fmt.Errorf("branch %d never ran", i)
			}
		}
		// Report the aggregated error as data so the instance completes.
		return dynamo.S(err.Error()), nil
	}, "kv")
	out := f.mustInvoke("par", dynamo.Null)
	if out.Str() != errA.Error() {
		t.Errorf("aggregated error = %q, want declaration-order-first %q", out.Str(), errA)
	}
	if got := f.readData("par", "kv", "c"); got.Str() != "done" {
		t.Error("successful branch's effect missing: siblings must not be cancelled")
	}

	f.fn("parAbort", func(e *Env, in Value) (Value, error) {
		err := e.Parallel(
			func(sub *Env) error { return errA },
			func(sub *Env) error {
				time.Sleep(2 * time.Millisecond)
				return ErrTxnAborted
			},
		)
		return dynamo.Bool(errors.Is(err, ErrTxnAborted)), nil
	})
	if out := f.mustInvoke("parAbort", dynamo.Null); !out.BoolVal() {
		t.Error("ErrTxnAborted did not outrank the declaration-order-first error")
	}
}
