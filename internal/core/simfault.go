package core

import "sync/atomic"

// Protocol fault hooks: switches that deliberately reintroduce historical
// protocol bugs so the deterministic simulator (internal/sim) can prove its
// sweeps catch them. They exist for meta-tests only — the simulator enables a
// hook, runs a sweep, and asserts the sweep fails with a reproducible seed.
// Production and ordinary test code must never set them.

// FaultUnguardedIntentDone, when true, drops the existence guard on
// markIntentDone, reintroducing the zombie-upsert bug: a straggler instance
// that outlives its GC'd intent resurrects a half-formed intent row (Done +
// Ret, no Args, no start time). Fsck flags such rows, which is how the
// simulator's sweep detects the regression.
var FaultUnguardedIntentDone atomic.Bool
