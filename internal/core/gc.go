package core

import (
	"errors"
	"sort"
	"strings"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// The garbage collector (§5, Figure 10): a timer-triggered serverless
// function that prunes the logs of long-finished intents and keeps every
// linked DAAL shallow, without blocking concurrent SSF, IC or other GC
// instances. Safety rests on the synchrony assumption that an SSF instance
// terminates within T (the platform enforces execution timeouts and Beldi's
// instances die at the next operation boundary past their deadline), so an
// intent that finished more than T ago can have no straggler instance left.
//
// The six phases:
//  1. stamp a finish time on newly done intents; intents whose stamp is
//     older than T become recyclable,
//  2. delete the read-log and invoke-log entries of recyclable intents,
//  3. mark recyclable write-log entries inside DAAL rows (persistently, in
//     the row's Recycled set, so rows that become non-tail later can still
//     be judged),
//  4. disconnect fully recycled non-head, non-tail rows and stamp them with
//     a dangling time,
//  5. delete dangling rows once they have dangled for T (stragglers
//     mid-traversal have terminated by then),
//  6. delete the recyclable intents themselves — last, so a GC crash leaves
//     re-runnable work, keeping the whole collector at-least-once.
//
// Shadow DAALs (transaction-local copies, §6.2) are collected "including
// the head and tail": a shadow chain dies once the transaction's settle
// claimant is itself recyclable and every entry in the chain is recyclable.
// Transaction registries (txCallees/txLocks) die under the same rule.

// GCStats reports one collection pass's work.
type GCStats struct {
	Recycled         int // intents recycled this pass
	LogRowsDeleted   int // read/invoke-log rows removed
	RowsMarked       int // DAAL rows that had entries marked
	RowsDisconnected int
	RowsDeleted      int
	IntentsDeleted   int
	MailboxReaped    int // promise mailbox cells removed
}

func (rt *Runtime) gcHandler(_ *platform.Invocation, _ Value) (Value, error) {
	st, err := rt.RunGarbageCollector()
	if err != nil {
		return dynamo.Null, err
	}
	return dynamo.NInt(int64(st.RowsDeleted)), nil
}

// RunGarbageCollector performs one pass. Exposed for tests and benchmarks;
// the "<fn>.gc" platform function wraps it.
func (rt *Runtime) RunGarbageCollector() (GCStats, error) {
	var st GCStats
	now := rt.now()
	tUs := rt.cfg.T.Microseconds()

	// Phase 1: finish-time stamping and recyclability.
	recyclable, err := rt.gcPhaseStamp(now, tUs, &st)
	if err != nil {
		return st, err
	}

	// Phase 2: read/invoke logs. Iteration is sorted so a pass issues the
	// same operation sequence on every run — the determinism the simulator's
	// replay-from-seed depends on.
	for _, id := range sortedIDs(recyclable) {
		for _, tbl := range []string{rt.readLog, rt.invokeLog} {
			n, err := rt.deletePartition(tbl, id)
			if err != nil {
				return st, err
			}
			st.LogRowsDeleted += n
		}
	}

	// Promise mailbox cells die with the awaiting intent: once the owner is
	// recyclable (or already collected — a cell a zombie post re-created
	// after its owner's reap), no straggler can still await the result.
	// Reaped before phase 6 so a GC crash leaves re-runnable work.
	if err := rt.gcMailbox(recyclable, &st); err != nil {
		return st, err
	}

	// Phases 3–5 per data table, real and shadow.
	settled, err := rt.settledClaimants()
	if err != nil {
		return st, err
	}
	for _, logical := range rt.dataTables() {
		switch rt.mode {
		case ModeBeldi:
			if err := rt.gcDAALTable(rt.dataTable(logical), recyclable, nil, now, tUs, &st); err != nil {
				return st, err
			}
			if err := rt.gcDAALTable(rt.shadowTable(logical), recyclable, settled, now, tUs, &st); err != nil {
				return st, err
			}
		case ModeCrossTable:
			if err := rt.gcCrossTable(logical, recyclable, settled, &st); err != nil {
				return st, err
			}
		}
	}

	// Transaction registries.
	if err := rt.gcTxnRegistries(recyclable, settled, &st); err != nil {
		return st, err
	}

	// Phase 6: the intents themselves (sorted — see phase 2).
	for _, id := range sortedIDs(recyclable) {
		if err := rt.store.Delete(rt.intentTable, dynamo.HK(dynamo.S(id)), nil); err != nil {
			return st, err
		}
		st.IntentsDeleted++
	}
	rt.stats.GCRuns.Add(1)
	rt.stats.GCIntents.Add(int64(st.IntentsDeleted))
	rt.stats.GCLogRows.Add(int64(st.LogRowsDeleted))
	rt.stats.GCRowsDeleted.Add(int64(st.RowsDeleted))
	rt.stats.GCDisconnected.Add(int64(st.RowsDisconnected))
	return st, nil
}

// gcMailbox removes promise result cells whose owning intent is recyclable
// this pass or no longer exists at all.
func (rt *Runtime) gcMailbox(recyclable map[string]bool, st *GCStats) error {
	cells, err := rt.mailbox.Cells()
	if err != nil {
		return err
	}
	if len(cells) == 0 {
		return nil
	}
	// One intent-table scan answers liveness for every cell; per-cell Gets
	// would charge a store round trip per outstanding promise each pass.
	items, err := rt.store.Scan(rt.intentTable, dynamo.QueryOpts{
		Projection: []dynamo.Path{dynamo.A(attrInstanceID)},
	})
	if err != nil {
		return err
	}
	live := make(map[string]bool, len(items))
	for _, it := range items {
		live[it[attrInstanceID].Str()] = true
	}
	for _, c := range cells {
		if !recyclable[c.Owner] && live[c.Owner] {
			continue
		}
		if err := rt.mailbox.Delete(c.ID); err != nil {
			return err
		}
		st.MailboxReaped++
	}
	return nil
}

func (rt *Runtime) gcPhaseStamp(now, tUs int64, st *GCStats) (map[string]bool, error) {
	items, err := rt.store.Scan(rt.intentTable, dynamo.QueryOpts{
		Filter: dynamo.Eq(dynamo.A(attrDone), dynamo.Bool(true)),
	})
	if err != nil {
		return nil, err
	}
	recyclable := make(map[string]bool)
	for _, it := range items {
		if rt.cfg.GCPageLimit > 0 && len(recyclable) >= rt.cfg.GCPageLimit {
			// Appendix A's bounding: collectors are SSFs with their own
			// execution timeouts, so each run reclaims a bounded batch and
			// the next run continues.
			break
		}
		rec := decodeIntent(it)
		switch {
		case !rec.hasFinish:
			// First sighting after completion: stamp. Conditional so a
			// concurrent GC's earlier stamp is never overwritten forward.
			err := rt.store.Update(rt.intentTable, dynamo.HK(dynamo.S(rec.id)),
				dynamo.And(dynamo.Eq(dynamo.A(attrDone), dynamo.Bool(true)),
					dynamo.NotExists(dynamo.A(attrFinishTime))),
				dynamo.Set(dynamo.A(attrFinishTime), dynamo.NInt(now)))
			if err != nil && !errors.Is(err, dynamo.ErrConditionFailed) {
				return nil, err
			}
		case now-rec.finishTime > tUs:
			recyclable[rec.id] = true
			st.Recycled++
		}
	}
	return recyclable, nil
}

// deletePartition removes every row of one hash partition, returning the
// count.
func (rt *Runtime) deletePartition(table, hash string) (int, error) {
	items, err := rt.store.Query(table, dynamo.S(hash), dynamo.QueryOpts{})
	if err != nil {
		return 0, err
	}
	sortAttr := attrStep
	if table == rt.txCallees {
		sortAttr = attrCallee
	}
	if table == rt.txLocks {
		sortAttr = attrTableKey
	}
	for _, it := range items {
		key := dynamo.HSK(dynamo.S(hash), it[sortAttr])
		if err := rt.store.Delete(table, key, nil); err != nil {
			return 0, err
		}
	}
	return len(items), nil
}

// gcDAALTable runs phases 3–5 on one DAAL table. settled is non-nil for
// shadow tables: the map of transaction id → recyclable settle claimant,
// enabling whole-chain (head and tail included) collection.
func (rt *Runtime) gcDAALTable(table string, recyclable map[string]bool, settled map[string]bool, now, tUs int64, st *GCStats) error {
	items, err := rt.store.Scan(table, dynamo.QueryOpts{})
	if err != nil {
		return err
	}
	byKey := make(map[string]map[string]daalRow)
	for _, it := range items {
		r := decodeDAALRow(it)
		if byKey[r.key] == nil {
			byKey[r.key] = make(map[string]daalRow)
		}
		byKey[r.key][r.rowID] = r
	}
	keys := make([]string, 0, len(byKey))
	for key := range byKey {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := rt.gcChain(table, key, byKey[key], recyclable, settled, now, tUs, st); err != nil {
			return err
		}
	}
	return nil
}

// sortedIDs returns a set's members in sorted order, for deterministic
// operation sequences (replay-from-seed simulation).
func sortedIDs(set map[string]bool) []string { return sortedKeys(set) }

// sortedKeys returns a map's keys in sorted order — every GC loop iterates
// maps through it so a pass issues an identical operation sequence on every
// run.
func sortedKeys[V any](m map[string]V) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (rt *Runtime) gcChain(table, key string, rows map[string]daalRow, recyclable, settled map[string]bool, now, tUs int64, st *GCStats) error {
	// Row iteration is sorted throughout this pass — see phase 2.
	rowIDs := make([]string, 0, len(rows))
	for id := range rows {
		rowIDs = append(rowIDs, id)
	}
	sort.Strings(rowIDs)
	// Phase 3: persist marks for recyclable log entries, in every row
	// (reachable or not).
	for _, id := range rowIDs {
		row := rows[id]
		var marks []dynamo.Update
		for _, logKey := range sortedKeys(row.recent) {
			intent, _ := splitLogKey(logKey)
			if recyclable[intent] && !row.recycled[logKey] {
				marks = append(marks, dynamo.Set(dynamo.AK(attrRecycled, logKey), dynamo.Bool(true)))
			}
		}
		if len(marks) == 0 {
			continue
		}
		if err := rt.store.Update(table, rowKeyOf(key, id), nil, marks...); err != nil {
			return err
		}
		if row.recycled == nil {
			row.recycled = make(map[string]bool)
		}
		for logKey := range row.recent {
			intent, _ := splitLogKey(logKey)
			if recyclable[intent] {
				row.recycled[logKey] = true
			}
		}
		rows[id] = row
		st.RowsMarked++
	}

	// Compute the reachable chain.
	chain := chainOrder(rows)

	// Shadow whole-chain collection: if the owning transaction's settle
	// claimant has been recycled and every entry of every row is recycled,
	// the chain (head and tail included) is dead — no straggler can need it.
	if settled != nil {
		txnID := key
		if i := strings.Index(key, "|"); i >= 0 {
			txnID = key[:i]
		}
		if settled[txnID] && allRowsRecycled(rows) {
			for _, id := range rowIDs {
				if err := rt.store.Delete(table, rowKeyOf(key, id), nil); err != nil {
					return err
				}
				st.RowsDeleted++
			}
			return nil
		}
	}

	// Phase 4: disconnect fully recycled middle rows (never the head, never
	// the tail).
	if len(chain) > 2 {
		lastKept := chain[0]
		for i := 1; i < len(chain)-1; i++ {
			row := rows[chain[i]]
			if !fullyRecycled(row) {
				lastKept = chain[i]
				continue
			}
			err := rt.store.Update(table, rowKeyOf(key, lastKept),
				dynamo.Eq(dynamo.A(attrNextRow), dynamo.S(row.rowID)),
				dynamo.Set(dynamo.A(attrNextRow), dynamo.S(row.next)))
			if err != nil {
				if errors.Is(err, dynamo.ErrConditionFailed) {
					// A concurrent GC rewired this link; let the next pass
					// handle it (§5's neighbouring-disconnect case).
					lastKept = chain[i]
					continue
				}
				return err
			}
			// Stamp the dangling time *after* a successful disconnect so
			// the T countdown starts at actual disconnection.
			if err := rt.store.Update(table, rowKeyOf(key, row.rowID), nil,
				dynamo.Set(dynamo.A(attrDangleTime), dynamo.NInt(now))); err != nil {
				return err
			}
			st.RowsDisconnected++
		}
	}

	// Recovery stamping: unreachable rows without a dangle stamp (a GC that
	// crashed between disconnect and stamp, §5) get one now.
	reachable := make(map[string]bool, len(chain))
	for _, id := range chain {
		reachable[id] = true
	}
	for _, id := range rowIDs {
		row := rows[id]
		if reachable[id] || row.dangle != 0 {
			continue
		}
		if err := rt.store.Update(table, rowKeyOf(key, id),
			dynamo.NotExists(dynamo.A(attrDangleTime)),
			dynamo.Set(dynamo.A(attrDangleTime), dynamo.NInt(now))); err != nil &&
			!errors.Is(err, dynamo.ErrConditionFailed) {
			return err
		}
	}

	// Phase 5: delete rows that have dangled for T and are (still) not
	// reachable.
	for _, id := range rowIDs {
		row := rows[id]
		if reachable[id] || row.dangle == 0 || now-row.dangle <= tUs {
			continue
		}
		if err := rt.store.Delete(table, rowKeyOf(key, id), nil); err != nil {
			return err
		}
		st.RowsDeleted++
	}
	return nil
}

func rowKeyOf(key, rowID string) dynamo.Key {
	return dynamo.HSK(dynamo.S(key), dynamo.S(rowID))
}

func chainOrder(rows map[string]daalRow) []string {
	var order []string
	seen := make(map[string]bool)
	for id := headRowID; id != "" && !seen[id]; {
		r, ok := rows[id]
		if !ok {
			break
		}
		order = append(order, id)
		seen[id] = true
		id = r.next
	}
	return order
}

func fullyRecycled(r daalRow) bool {
	if len(r.recent) == 0 {
		return true // an empty log needs no retention
	}
	for logKey := range r.recent {
		if !r.recycled[logKey] {
			return false
		}
	}
	return true
}

func allRowsRecycled(rows map[string]daalRow) bool {
	for _, r := range rows {
		if !fullyRecycled(r) {
			return false
		}
	}
	return true
}

// settledClaimants scans the transaction registries for settle markers
// whose claimant instance is itself done and finish-stamped older than T —
// the condition under which a transaction's shadow state and registries can
// never be needed again.
func (rt *Runtime) settledClaimants() (map[string]bool, error) {
	if rt.mode == ModeBaseline {
		return nil, nil
	}
	items, err := rt.store.Scan(rt.txCallees, dynamo.QueryOpts{
		Filter: dynamo.Eq(dynamo.A(attrCallee), dynamo.S(settleMarker)),
	})
	if err != nil {
		return nil, err
	}
	now := rt.now()
	tUs := rt.cfg.T.Microseconds()
	settled := make(map[string]bool)
	for _, it := range items {
		claimant := it[attrInstanceID].Str()
		rec, ok, err := rt.store.Get(rt.intentTable, dynamo.HK(dynamo.S(claimant)))
		if err != nil {
			return nil, err
		}
		if !ok {
			// Claimant intent already collected: it was recyclable.
			settled[it[attrTxnID].Str()] = true
			continue
		}
		r := decodeIntent(rec)
		if r.done && r.hasFinish && now-r.finishTime > tUs {
			settled[it[attrTxnID].Str()] = true
		}
	}
	return settled, nil
}

// gcTxnRegistries deletes the txCallees/txLocks partitions of settled
// transactions.
func (rt *Runtime) gcTxnRegistries(_ map[string]bool, settled map[string]bool, st *GCStats) error {
	for _, txnID := range sortedIDs(settled) {
		for _, tbl := range []string{rt.txCallees, rt.txLocks} {
			n, err := rt.deletePartition(tbl, txnID)
			if err != nil {
				return err
			}
			st.LogRowsDeleted += n
		}
	}
	return nil
}

// gcCrossTable prunes the cross-table layout: write-log rows of recyclable
// intents, and shadow data rows of settled transactions.
func (rt *Runtime) gcCrossTable(logical string, recyclable, settled map[string]bool, st *GCStats) error {
	for _, id := range sortedIDs(recyclable) {
		for _, tbl := range []string{rt.writeLogTable(logical), rt.shadowWriteLogTable(logical)} {
			n, err := rt.deletePartition(tbl, id)
			if err != nil {
				return err
			}
			st.LogRowsDeleted += n
		}
	}
	// Shadow data rows: key is "txnID|key".
	items, err := rt.store.Scan(rt.shadowTable(logical), dynamo.QueryOpts{
		Projection: []dynamo.Path{dynamo.A(attrKey)},
	})
	if err != nil {
		return err
	}
	for _, it := range items {
		key := it[attrKey].Str()
		txnID := key
		if i := strings.Index(key, "|"); i >= 0 {
			txnID = key[:i]
		}
		if settled[txnID] {
			if err := rt.store.Delete(rt.shadowTable(logical), dynamo.HK(dynamo.S(key)), nil); err != nil {
				return err
			}
			st.RowsDeleted++
		}
	}
	return nil
}
