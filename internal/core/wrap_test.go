package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/dynamo"
)

func TestSingleSSFReadWrite(t *testing.T) {
	f := newFixture(t)
	f.fn("counter", counterBody, "counter")
	for i := 1; i <= 3; i++ {
		out := f.mustInvoke("counter", dynamo.S("k"))
		if out.Int() != int64(i) {
			t.Fatalf("invocation %d returned %v", i, out)
		}
	}
	if got := f.readData("counter", "counter", "k"); got.Int() != 3 {
		t.Errorf("stored = %v", got)
	}
}

func TestReadOfNeverWrittenKeyIsNull(t *testing.T) {
	f := newFixture(t)
	f.fn("r", func(e *Env, in Value) (Value, error) {
		return e.Read("counter", "ghost")
	}, "counter")
	if out := f.mustInvoke("r", dynamo.Null); !out.IsNull() {
		t.Errorf("ghost read = %v", out)
	}
}

func TestCondWriteThroughEnv(t *testing.T) {
	f := newFixture(t)
	f.fn("cw", func(e *Env, in Value) (Value, error) {
		// Register-once semantics: succeed only if unset.
		ok, err := e.CondWrite("counter", "slot", in,
			dynamo.Or(dynamo.NotExists(dynamo.A(attrValue)), dynamo.Eq(dynamo.A(attrValue), dynamo.Null)))
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.Bool(ok), nil
	}, "counter")
	if out := f.mustInvoke("cw", dynamo.S("first")); !out.BoolVal() {
		t.Error("first claim failed")
	}
	if out := f.mustInvoke("cw", dynamo.S("second")); out.BoolVal() {
		t.Error("second claim succeeded")
	}
	if got := f.readData("cw", "counter", "slot"); got.Str() != "first" {
		t.Errorf("slot = %v", got)
	}
}

func TestSyncInvokeChain(t *testing.T) {
	// client → a → b → c, each adding its letter.
	f := newFixture(t)
	f.fn("c", func(e *Env, in Value) (Value, error) {
		return dynamo.S(in.Str() + "c"), nil
	})
	f.fn("b", func(e *Env, in Value) (Value, error) {
		out, err := e.SyncInvoke("c", dynamo.S(in.Str()+"b"))
		return out, err
	})
	f.fn("a", func(e *Env, in Value) (Value, error) {
		out, err := e.SyncInvoke("b", dynamo.S(in.Str()+"a"))
		return out, err
	})
	if out := f.mustInvoke("a", dynamo.S("·")); out.Str() != "·abc" {
		t.Errorf("chain = %q", out.Str())
	}
}

func TestSyncInvokeRecursion(t *testing.T) {
	// Workflows may contain cycles (§2.1): factorial by self-invocation.
	f := newFixture(t)
	f.fn("fact", func(e *Env, in Value) (Value, error) {
		n := in.Int()
		if n <= 1 {
			return dynamo.NInt(1), nil
		}
		sub, err := e.SyncInvoke("fact", dynamo.NInt(n-1))
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.NInt(n * sub.Int()), nil
	})
	if out := f.mustInvoke("fact", dynamo.NInt(5)); out.Int() != 120 {
		t.Errorf("5! = %v", out)
	}
}

func TestParallelBranchesDeterministicSteps(t *testing.T) {
	f := newFixture(t)
	f.fn("par", func(e *Env, in Value) (Value, error) {
		var a, b Value
		err := e.Parallel(
			func(sub *Env) error {
				var err error
				a, err = sub.SyncInvoke("leaf", dynamo.S("A"))
				return err
			},
			func(sub *Env) error {
				var err error
				b, err = sub.SyncInvoke("leaf", dynamo.S("B"))
				return err
			},
		)
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.S(a.Str() + b.Str()), nil
	})
	f.fn("leaf", func(e *Env, in Value) (Value, error) {
		return dynamo.S(in.Str() + "!"), nil
	})
	if out := f.mustInvoke("par", dynamo.Null); out.Str() != "A!B!" {
		t.Errorf("parallel = %q", out.Str())
	}
}

func TestAsyncInvokeRuns(t *testing.T) {
	f := newFixture(t)
	f.fn("bg", counterBody, "counter")
	f.fn("front", func(e *Env, in Value) (Value, error) {
		if err := e.AsyncInvoke("bg", dynamo.S("k")); err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("accepted"), nil
	})
	if out := f.mustInvoke("front", dynamo.Null); out.Str() != "accepted" {
		t.Fatalf("front = %v", out)
	}
	f.plat.Drain()
	if got := f.readData("bg", "counter", "k"); got.Int() != 1 {
		t.Errorf("async effect = %v, want 1", got)
	}
}

func TestAsyncRunDeliveredTwiceExecutesOnce(t *testing.T) {
	// Fig 20: the run stub skips completed intents, so duplicate deliveries
	// (or IC restarts racing the run) are harmless.
	f := newFixture(t)
	var bodies atomic.Int64
	f.fn("bg", func(e *Env, in Value) (Value, error) {
		bodies.Add(1)
		return counterBody(e, in)
	}, "counter")
	f.fn("front", func(e *Env, in Value) (Value, error) {
		return dynamo.Null, e.AsyncInvoke("bg", dynamo.S("k"))
	})
	f.mustInvoke("front", dynamo.Null)
	f.plat.Drain()
	// Manufacture a duplicate delivery of the same run envelope.
	rt := f.rts["bg"]
	items, err := rt.store.Scan(rt.intentTable, dynamo.QueryOpts{})
	if err != nil || len(items) == 0 {
		t.Fatalf("intents: %v %d", err, len(items))
	}
	id := items[0][attrInstanceID].Str()
	run := envelope{Kind: kindAsyncRun, InstanceID: id, Input: dynamo.S("k"), Async: true}
	if _, err := f.plat.Invoke("bg", run.encode()); err != nil {
		t.Fatal(err)
	}
	if got := f.readData("bg", "counter", "k"); got.Int() != 1 {
		t.Errorf("counter = %v after duplicate delivery", got)
	}
	if bodies.Load() != 1 {
		t.Errorf("body ran %d times", bodies.Load())
	}
}

func TestIntentRetReturnedOnReinvocation(t *testing.T) {
	// Re-invoking a completed intent (same instance id) returns the stored
	// result without re-running the body.
	f := newFixture(t)
	var bodies atomic.Int64
	f.fn("once", func(e *Env, in Value) (Value, error) {
		bodies.Add(1)
		return dynamo.S("result"), nil
	})
	ev := envelope{Kind: kindCall, InstanceID: "fixed-instance", Input: dynamo.Null}
	out1, err := f.plat.Invoke("once", ev.encode())
	if err != nil {
		t.Fatal(err)
	}
	out2, err := f.plat.Invoke("once", ev.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out1.Str() != "result" || out2.Str() != "result" {
		t.Errorf("outs = %v %v", out1, out2)
	}
	if bodies.Load() != 1 {
		t.Errorf("body ran %d times", bodies.Load())
	}
}

func TestBodyErrorLeavesIntentPending(t *testing.T) {
	f := newFixture(t)
	boom := errors.New("boom")
	var fail atomic.Bool
	fail.Store(true)
	f.fn("flaky", func(e *Env, in Value) (Value, error) {
		if fail.Load() {
			return dynamo.Null, boom
		}
		return dynamo.S("ok"), nil
	})
	ev := envelope{Kind: kindCall, InstanceID: "flaky-1", Input: dynamo.Null}
	if _, err := f.plat.Invoke("flaky", ev.encode()); !errors.Is(err, boom) {
		t.Fatalf("first: %v", err)
	}
	exists, done, _, err := f.rts["flaky"].intentDone("flaky-1")
	if err != nil || !exists || done {
		t.Fatalf("intent state: exists=%v done=%v err=%v", exists, done, err)
	}
	fail.Store(false)
	f.recoverAll()
	_, done, ret, _ := f.rts["flaky"].intentDone("flaky-1")
	if !done || ret.Str() != "ok" {
		t.Errorf("after recovery: done=%v ret=%v", done, ret)
	}
}

func TestWorkflowEntryAdoptsRequestID(t *testing.T) {
	f := newFixture(t)
	f.fn("entry", func(e *Env, in Value) (Value, error) {
		return dynamo.S(e.InstanceID()), nil
	})
	out := f.mustInvoke("entry", dynamo.Null)
	if out.Str() == "" {
		t.Fatal("no instance id")
	}
	// The platform's Seq source mints "req-..." ids.
	if got := out.Str(); got[:4] != "req-" {
		t.Errorf("instance id %q does not come from the platform request id", got)
	}
}

func TestDistinctInstanceIDsPerInvocationOfSameSSF(t *testing.T) {
	// §3.3: every instance gets a distinct id, even same SSF same workflow.
	f := newFixture(t)
	f.fn("leaf", func(e *Env, in Value) (Value, error) {
		return dynamo.S(e.InstanceID()), nil
	})
	f.fn("driver", func(e *Env, in Value) (Value, error) {
		a, err := e.SyncInvoke("leaf", dynamo.Null)
		if err != nil {
			return dynamo.Null, err
		}
		b, err := e.SyncInvoke("leaf", dynamo.Null)
		if err != nil {
			return dynamo.Null, err
		}
		if a.Str() == b.Str() {
			return dynamo.Null, fmt.Errorf("same callee id twice: %s", a.Str())
		}
		if a.Str() == e.InstanceID() || b.Str() == e.InstanceID() {
			return dynamo.Null, fmt.Errorf("callee inherited caller id")
		}
		return dynamo.S("ok"), nil
	})
	f.mustInvoke("driver", dynamo.Null)
}

func TestSpuriousCallbackIgnored(t *testing.T) {
	// §4.5: a callback for an invoke-log entry that does not exist must be
	// detected and ignored.
	f := newFixture(t)
	f.fn("caller", func(e *Env, in Value) (Value, error) { return dynamo.Null, nil })
	cb := envelope{
		Kind:           kindCallback,
		CallerInstance: "no-such-instance",
		CallerStep:     "0.000001",
		CalleeID:       "ghost",
		Result:         dynamo.S("stale"),
		HasRes:         true,
	}
	if _, err := f.plat.Invoke("caller", cb.encode()); err != nil {
		t.Fatalf("spurious callback errored: %v", err)
	}
	// No invoke-log rows materialized.
	n, _ := f.store.TableItemCount(f.rts["caller"].invokeLog)
	if n != 0 {
		t.Errorf("%d invoke log rows created by spurious callback", n)
	}
}
