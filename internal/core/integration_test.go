package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// End-to-end integration: a workflow under concurrent load with the intent
// collector, the garbage collector, and probabilistic crashes all running
// at once — the full Figure 1 architecture exercising every mechanism
// together. Invariants: per-key totals exactly match the acknowledged
// requests, logs stay bounded, and no lock survives.

func TestIntegrationEverythingAtOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	// T must exceed the longest possible instance lifetime (§5's synchrony
	// assumption) — the platform enforces it as the execution timeout, and
	// the GC's safety window is derived from it. Stragglers running past T
	// without enforcement could replay against already-collected logs. Like
	// the paper's 15-minute bound, T is far above any plausible instance
	// lifetime (including lock-contention waits).
	const maxLifetime = time.Second
	plan := &platform.CrashProb{P: 0.01, Seed: 3}
	f := newFixture(t, withFaults(plan), withConfig(Config{
		RowCap: 4, T: maxLifetime, ICMinAge: 5 * time.Millisecond,
		LockRetryMax: 400, LockRetryBase: 200 * time.Microsecond,
	}))
	f.fn("ledger", func(e *Env, in Value) (Value, error) {
		key := in.Map()["key"].Str()
		amt := in.Map()["amt"].Int()
		// Exactly-once makes each instance's effects happen once; making
		// concurrent read-modify-writes to the same key serializable is the
		// job of §6.1's locks — this is their canonical use.
		if err := e.Lock("acct", key); err != nil {
			return dynamo.Null, err
		}
		v, err := e.Read("acct", key)
		if err != nil {
			return dynamo.Null, err
		}
		if err := e.Write("acct", key, dynamo.NInt(v.Int()+amt)); err != nil {
			return dynamo.Null, err
		}
		if err := e.Unlock("acct", key); err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("ok"), nil
	}, "acct")
	f.fn("front", func(e *Env, in Value) (Value, error) {
		if _, err := e.SyncInvoke("ledger", in); err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("ack"), nil
	})
	// Enforce the execution timeout the synchrony assumption rests on.
	f.plat.Register("ledger", f.rts["ledger"].Handler(), maxLifetime)
	f.plat.Register("front", f.rts["front"].Handler(), maxLifetime)

	// Waves of concurrent requests bound the instantaneous lock contention
	// so no instance's lifetime approaches T. Collectors are pumped inline
	// at wave boundaries: crashed instances from wave N get collected while
	// waves N+1.. still load the system, without a background goroutine
	// racing the final recovery below (the old shape relaunched intents
	// concurrently with the quiescence check, which needed a bounded-retry
	// workaround and still flaked; the adversarial-interleaving version of
	// this test now lives in internal/sim's TestSimEverythingAtOnce, where
	// the schedule is seeded and replayable).
	const keys, requests, wave = 3, 60, 12
	expected := make([]int64, keys)
	rng := rand.New(rand.NewSource(17))
	for base := 0; base < requests; base += wave {
		var wg sync.WaitGroup
		for i := base; i < base+wave && i < requests; i++ {
			k := rng.Intn(keys)
			amt := int64(1 + rng.Intn(9))
			expected[k] += amt
			wg.Add(1)
			go func(i, k int, amt int64) {
				defer wg.Done()
				ev := envelope{Kind: kindCall, InstanceID: fmt.Sprintf("int-%03d", i),
					Input: dynamo.M(map[string]Value{
						"key": dynamo.S(fmt.Sprintf("k%d", k)),
						"amt": dynamo.NInt(amt),
					})}
				// Stable request id with bounded client retries: every
				// acknowledged (or eventually collected) request counts once.
				for attempt := 0; attempt < 30; attempt++ {
					if _, err := f.plat.Invoke("front", ev.encode()); err == nil {
						return
					}
					time.Sleep(time.Millisecond)
				}
			}(i, k, amt)
		}
		wg.Wait()
		for _, rt := range f.rts {
			rt.RunIntentCollector()  //nolint:errcheck // chaos is still armed
			rt.RunGarbageCollector() //nolint:errcheck
		}
	}
	f.plat.Drain()
	plan.P = 0
	// With the dice disarmed and no concurrent collector, recoverAll drives
	// collection to quiescence deterministically: each round relaunches
	// every pending intent synchronously and the round count is bounded.
	f.recoverAll()

	// Recovery must leave no pending intents before the GC assertions mean
	// anything — one strict scan, no retry loop.
	for _, rt := range f.rts {
		items, err := f.store.Scan(rt.intentTable, dynamo.QueryOpts{
			Filter: dynamo.Eq(dynamo.A(attrDone), dynamo.Bool(false)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 0 {
			t.Fatalf("%s: %d intents still pending after recovery", rt.fn, len(items))
		}
	}

	for k := 0; k < keys; k++ {
		got := f.readData("ledger", "acct", fmt.Sprintf("k%d", k))
		if got.Int() != expected[k] {
			t.Errorf("k%d = %v, want %d", k, got, expected[k])
		}
	}

	// After aging past T and two more GC passes, logs are bounded.
	time.Sleep(maxLifetime + 10*time.Millisecond)
	f.gcAll()
	time.Sleep(maxLifetime + 10*time.Millisecond)
	f.gcAll()
	for _, rt := range f.rts {
		for _, tbl := range []string{rt.readLog, rt.invokeLog, rt.intentTable} {
			n, _ := f.store.TableItemCount(tbl)
			if n != 0 {
				t.Errorf("%s: %d rows survive full collection", tbl, n)
			}
		}
	}
	// The DAAL stays shallow for every key.
	d := daal{rt: f.rts["ledger"], table: f.rts["ledger"].dataTable("acct")}
	for k := 0; k < keys; k++ {
		_, order, err := d.chain(fmt.Sprintf("k%d", k))
		if err != nil {
			t.Fatal(err)
		}
		if len(order) > 4 {
			t.Errorf("k%d chain = %d rows after GC", k, len(order))
		}
	}
	// Full structural audit of every runtime's durable state.
	for _, rt := range f.rts {
		if err := Fsck(rt); err != nil {
			t.Errorf("fsck after chaos: %v", err)
		}
	}
}

func TestIntegrationTimerDrivenCollectors(t *testing.T) {
	// StartCollectors' real timers drive recovery without manual pumping.
	f := newFixture(t, withConfig(Config{
		RowCap: 4, T: 10 * time.Millisecond,
		ICInterval: 5 * time.Millisecond, GCInterval: 5 * time.Millisecond,
		ICMinAge: 5 * time.Millisecond,
	}))
	var failOnce sync.Once
	shouldFail := func() (failed bool) {
		failOnce.Do(func() { failed = true })
		return
	}
	f.fn("flaky", func(e *Env, in Value) (Value, error) {
		if shouldFail() {
			return dynamo.Null, fmt.Errorf("transient")
		}
		return counterBody(e, in)
	}, "counter")
	for _, rt := range f.rts {
		rt.StartCollectors()
		defer rt.Stop()
	}
	f.invoke("flaky", dynamo.S("k")) //nolint:errcheck // first attempt fails
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := f.readData("flaky", "counter", "k"); got.Int() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timer-driven recovery never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
