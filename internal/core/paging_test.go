package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamo"
)

// Appendix A bounds the collectors' per-run work because they are SSFs with
// execution timeouts themselves: limited runs must make progress and later
// runs must finish the job.

func TestICPageLimitBoundsAndResumes(t *testing.T) {
	f := newFixture(t, withConfig(Config{
		RowCap: 4, T: time.Hour, ICMinAge: time.Millisecond, ICPageLimit: 2,
	}))
	var fail atomic.Bool
	fail.Store(true)
	f.fn("flaky", func(e *Env, in Value) (Value, error) {
		if fail.Load() {
			return dynamo.Null, errors.New("boom")
		}
		return counterBody(e, in)
	}, "counter")
	// Five failed instances pending, each incrementing its own key (page-
	// mates restart concurrently; exactly-once does not serialize them).
	for i := 0; i < 5; i++ {
		f.invoke("flaky", dynamo.S(fmt.Sprintf("k%d", i))) //nolint:errcheck
	}
	fail.Store(false)
	time.Sleep(2 * time.Millisecond)
	rt := f.rts["flaky"]
	n1, err := rt.RunIntentCollector()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 2 {
		t.Errorf("first page restarted %d, want 2", n1)
	}
	f.plat.Drain()
	// Subsequent pages finish the rest; pages bound the per-run work, and
	// later runs resume where earlier runs left off.
	recovered := func() int {
		n := 0
		for i := 0; i < 5; i++ {
			if f.readData("flaky", "counter", fmt.Sprintf("k%d", i)).Int() == 1 {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(5 * time.Second)
	for recovered() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/5 intents recovered via paged collection", recovered())
		}
		time.Sleep(2 * time.Millisecond)
		if _, err := rt.RunIntentCollector(); err != nil {
			t.Fatal(err)
		}
		f.plat.Drain()
	}
}

func TestGCPageLimitBoundsAndResumes(t *testing.T) {
	f := newFixture(t, withConfig(Config{
		RowCap: 4, T: 2 * time.Millisecond, ICMinAge: time.Millisecond, GCPageLimit: 3,
	}))
	f.fn("w", counterBody, "counter")
	rt := f.rts["w"]
	for i := 0; i < 8; i++ {
		f.mustInvoke("w", dynamo.S("k"))
	}
	// Stamp pass, then aged paged reclamation.
	if _, err := rt.RunGarbageCollector(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(4 * time.Millisecond)
	st, err := rt.RunGarbageCollector()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recycled != 3 {
		t.Errorf("first aged pass recycled %d, want page of 3", st.Recycled)
	}
	remaining := 8 - st.IntentsDeleted
	for i := 0; i < 10 && remaining > 0; i++ {
		time.Sleep(4 * time.Millisecond)
		st, err := rt.RunGarbageCollector()
		if err != nil {
			t.Fatal(err)
		}
		remaining -= st.IntentsDeleted
	}
	if n, _ := f.store.TableItemCount(rt.intentTable); n != 0 {
		t.Errorf("%d intents survive paged GC", n)
	}
	if got := f.readData("w", "counter", "k"); got.Int() != 8 {
		t.Errorf("counter = %v", got)
	}
}
