package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamo"
)

// gcFixture builds a single-SSF fixture with a tiny T so tests can age
// intents quickly.
func gcFixture(t *testing.T) *fixture {
	t.Helper()
	return newFixture(t, withConfig(Config{
		RowCap: 2, T: 5 * time.Millisecond, ICMinAge: time.Millisecond,
	}))
}

// age sleeps past T.
func age() { time.Sleep(8 * time.Millisecond) }

func TestGCRecyclesFinishedIntents(t *testing.T) {
	f := gcFixture(t)
	f.fn("w", counterBody, "counter")
	for i := 0; i < 3; i++ {
		f.mustInvoke("w", dynamo.S("k"))
	}
	rt := f.rts["w"]
	if n, _ := f.store.TableItemCount(rt.intentTable); n != 3 {
		t.Fatalf("%d intents", n)
	}
	// First pass stamps finish times; nothing recycled yet.
	st, err := rt.RunGarbageCollector()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recycled != 0 || st.IntentsDeleted != 0 {
		t.Errorf("first pass recycled %d deleted %d", st.Recycled, st.IntentsDeleted)
	}
	age()
	st, err = rt.RunGarbageCollector()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recycled != 3 || st.IntentsDeleted != 3 {
		t.Errorf("second pass recycled %d deleted %d, want 3/3", st.Recycled, st.IntentsDeleted)
	}
	if n, _ := f.store.TableItemCount(rt.intentTable); n != 0 {
		t.Errorf("%d intents survive", n)
	}
	if n, _ := f.store.TableItemCount(rt.readLog); n != 0 {
		t.Errorf("%d read log rows survive", n)
	}
}

func TestGCKeepsDAALShallow(t *testing.T) {
	// Sustained writes to one key with periodic GC: the chain length must
	// stay bounded near head+tail, while without GC it grows linearly —
	// the Figure 16 mechanism.
	f := gcFixture(t)
	f.fn("w", counterBody, "counter")
	rt := f.rts["w"]
	d := daal{rt: rt, table: rt.dataTable("counter")}

	for burst := 0; burst < 6; burst++ {
		for i := 0; i < 8; i++ {
			f.mustInvoke("w", dynamo.S("k"))
		}
		age()
		if _, err := rt.RunGarbageCollector(); err != nil {
			t.Fatal(err)
		}
		age()
		if _, err := rt.RunGarbageCollector(); err != nil {
			t.Fatal(err)
		}
		// A third pass deletes rows that became deletable after the second
		// pass's disconnects aged.
		age()
		if _, err := rt.RunGarbageCollector(); err != nil {
			t.Fatal(err)
		}
	}
	rows, order, err := d.chain("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(order) > 4 {
		t.Errorf("chain length %d after GC; rows=%d", len(order), len(rows))
	}
	if len(rows) > 6 {
		t.Errorf("%d physical rows survive (dangling not collected)", len(rows))
	}
	// The counter survived all collection.
	if got := f.readData("w", "counter", "k"); got.Int() != 48 {
		t.Errorf("counter = %v, want 48", got)
	}
}

func TestGCWithoutGCChainGrowsUnbounded(t *testing.T) {
	// Negative control for Figure 16: no GC → linear growth.
	f := gcFixture(t)
	f.fn("w", counterBody, "counter")
	rt := f.rts["w"]
	for i := 0; i < 20; i++ {
		f.mustInvoke("w", dynamo.S("k"))
	}
	d := daal{rt: rt, table: rt.dataTable("counter")}
	_, order, _ := d.chain("k")
	if len(order) < 10 {
		t.Errorf("chain = %d rows; expected unbounded growth at cap 2", len(order))
	}
}

func TestGCNeverCollectsHeadOrTail(t *testing.T) {
	f := gcFixture(t)
	f.fn("w", counterBody, "counter")
	rt := f.rts["w"]
	for i := 0; i < 10; i++ {
		f.mustInvoke("w", dynamo.S("k"))
	}
	for pass := 0; pass < 4; pass++ {
		age()
		if _, err := rt.RunGarbageCollector(); err != nil {
			t.Fatal(err)
		}
	}
	d := daal{rt: rt, table: rt.dataTable("counter")}
	rows, order, _ := d.chain("k")
	if len(order) < 1 || order[0] != headRowID {
		t.Fatalf("head missing: %v", order)
	}
	tail := rows[order[len(order)-1]]
	if tail.value.Int() != 10 {
		t.Errorf("tail value = %v", tail.value)
	}
}

func TestGCLeavesPendingIntentsAlone(t *testing.T) {
	f := gcFixture(t)
	var fail sync.Map
	fail.Store("x", true)
	f.fn("flaky", func(e *Env, in Value) (Value, error) {
		if _, bad := fail.Load("x"); bad {
			return dynamo.Null, fmt.Errorf("boom")
		}
		return counterBody(e, in)
	}, "counter")
	f.invoke("flaky", dynamo.S("k")) //nolint:errcheck
	rt := f.rts["flaky"]
	age()
	rt.RunGarbageCollector()
	age()
	st, _ := rt.RunGarbageCollector()
	if st.IntentsDeleted != 0 {
		t.Errorf("GC deleted %d pending intents", st.IntentsDeleted)
	}
	fail.Delete("x")
	f.recoverAll()
	if got := f.readData("flaky", "counter", "k"); got.Int() != 1 {
		t.Errorf("recovery after GC: %v", got)
	}
}

func TestGCConcurrentWithWriters(t *testing.T) {
	// GC races live writers on the same key: no write lost, chain well
	// formed, value equals the last writer's count.
	f := newFixture(t, withConfig(Config{RowCap: 2, T: 2 * time.Millisecond, ICMinAge: time.Millisecond}))
	f.fn("w", counterBody, "counter")
	rt := f.rts["w"]
	stop := make(chan struct{})
	var gcErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := rt.RunGarbageCollector(); err != nil {
				gcErr = err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	const writes = 60
	for i := 0; i < writes; i++ {
		f.mustInvoke("w", dynamo.S("k"))
		if i%10 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if gcErr != nil {
		t.Fatalf("gc error: %v", gcErr)
	}
	if got := f.readData("w", "counter", "k"); got.Int() != writes {
		t.Errorf("counter = %v, want %d (GC raced a write away)", got, writes)
	}
}

func TestGCConcurrentGCInstances(t *testing.T) {
	// Multiple GC instances run concurrently (§5): safety must hold and
	// the structure must converge.
	f := gcFixture(t)
	f.fn("w", counterBody, "counter")
	rt := f.rts["w"]
	for i := 0; i < 16; i++ {
		f.mustInvoke("w", dynamo.S("k"))
	}
	age()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				if _, err := rt.RunGarbageCollector(); err != nil {
					t.Errorf("gc: %v", err)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := f.readData("w", "counter", "k"); got.Int() != 16 {
		t.Errorf("counter = %v, want 16", got)
	}
	// Later writes still work.
	f.mustInvoke("w", dynamo.S("k"))
	if got := f.readData("w", "counter", "k"); got.Int() != 17 {
		t.Errorf("post-GC write: %v", got)
	}
}

func TestGCCollectsShadowAndRegistries(t *testing.T) {
	f := gcFixture(t)
	f.fn("bank", transferBody, "acct")
	seedAccounts(t, f, "bank", map[string]int64{"a": 100, "b": 0})
	f.mustInvoke("bank", dynamo.M(map[string]Value{
		"from": dynamo.S("a"), "to": dynamo.S("b"), "amount": dynamo.NInt(10),
	}))
	rt := f.rts["bank"]
	shadowRows := func() int {
		n, _ := f.store.TableItemCount(rt.shadowTable("acct"))
		return n
	}
	regRows := func() int {
		a, _ := f.store.TableItemCount(rt.txCallees)
		b, _ := f.store.TableItemCount(rt.txLocks)
		return a + b
	}
	if shadowRows() == 0 || regRows() == 0 {
		t.Fatalf("expected shadow (%d) and registry (%d) rows before GC", shadowRows(), regRows())
	}
	for pass := 0; pass < 3; pass++ {
		age()
		if _, err := rt.RunGarbageCollector(); err != nil {
			t.Fatal(err)
		}
	}
	if shadowRows() != 0 {
		t.Errorf("%d shadow rows survive", shadowRows())
	}
	if regRows() != 0 {
		t.Errorf("%d registry rows survive", regRows())
	}
	// State intact.
	if got := f.readData("bank", "acct", "a"); got.Int() != 90 {
		t.Errorf("a = %v", got)
	}
}

func TestGCDoesNotCollectInFlightTransactionShadow(t *testing.T) {
	// A transaction paused mid-execute must keep its shadow rows through
	// any number of GC passes (the settle claimant is not yet recyclable).
	f := gcFixture(t)
	enter := make(chan struct{})
	release := make(chan struct{})
	f.fn("slow", func(e *Env, in Value) (Value, error) {
		err := e.Transaction(func() error {
			if err := e.Write("acct", "x", dynamo.NInt(1)); err != nil {
				return err
			}
			close(enter)
			<-release
			return nil
		})
		return dynamo.S("done"), err
	}, "acct")
	done := make(chan Value, 1)
	go func() {
		out, _ := f.invoke("slow", dynamo.Null)
		done <- out
	}()
	<-enter
	rt := f.rts["slow"]
	for pass := 0; pass < 3; pass++ {
		age()
		if _, err := rt.RunGarbageCollector(); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := f.store.TableItemCount(rt.shadowTable("acct")); n == 0 {
		t.Error("GC collected an in-flight transaction's shadow rows")
	}
	close(release)
	if out := <-done; out.Str() != "done" {
		t.Fatalf("txn failed after GC passes: %v", out)
	}
	if got := f.readData("slow", "acct", "x"); got.Int() != 1 {
		t.Errorf("x = %v", got)
	}
}

func TestGCStorageShrinks(t *testing.T) {
	// The point of §5: storage stays bounded. Bytes after GC must be well
	// below bytes before.
	f := gcFixture(t)
	f.fn("w", counterBody, "counter")
	rt := f.rts["w"]
	for i := 0; i < 30; i++ {
		f.mustInvoke("w", dynamo.S("k"))
	}
	before, _ := f.store.TableBytes(rt.dataTable("counter"))
	for pass := 0; pass < 4; pass++ {
		age()
		if _, err := rt.RunGarbageCollector(); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := f.store.TableBytes(rt.dataTable("counter"))
	if after >= before/2 {
		t.Errorf("storage %d → %d; expected at least halving", before, after)
	}
}
