package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// Standalone locks (§6.1, outside transactions): owned by intents, so a
// crashed holder's re-execution resumes ownership instead of deadlocking.

func TestLockMutualExclusion(t *testing.T) {
	f := newFixture(t, withConfig(Config{RowCap: 8, T: DefaultT, LockRetryMax: 400, LockRetryBase: 100 * time.Microsecond}))
	f.fn("cs", func(e *Env, in Value) (Value, error) {
		if err := e.Lock("kv", "mutex"); err != nil {
			return dynamo.Null, err
		}
		// Non-atomic read-modify-write protected by the lock.
		v, err := e.Read("kv", "shared")
		if err != nil {
			return dynamo.Null, err
		}
		time.Sleep(time.Millisecond) // widen the race window
		if err := e.Write("kv", "shared", dynamo.NInt(v.Int()+1)); err != nil {
			return dynamo.Null, err
		}
		if err := e.Unlock("kv", "mutex"); err != nil {
			return dynamo.Null, err
		}
		return dynamo.Null, nil
	}, "kv")
	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.mustInvoke("cs", dynamo.Null)
		}()
	}
	wg.Wait()
	if got := f.readData("cs", "kv", "shared"); got.Int() != workers {
		t.Errorf("shared = %v, want %d (mutual exclusion violated)", got, workers)
	}
	_, lock, _, _ := f.rts["cs"].layer().stateRead("kv", "mutex")
	if !lock.IsNull() {
		t.Errorf("lock leaked: %v", lock)
	}
}

func TestLockReentrantForSameIntent(t *testing.T) {
	f := newFixture(t)
	f.fn("re", func(e *Env, in Value) (Value, error) {
		if err := e.Lock("kv", "m"); err != nil {
			return dynamo.Null, err
		}
		// Re-acquiring under the same intent succeeds (the §6.1 condition
		// admits the current owner) — this is what makes replay safe.
		if err := e.Lock("kv", "m"); err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("ok"), e.Unlock("kv", "m")
	}, "kv")
	if out := f.mustInvoke("re", dynamo.Null); out.Str() != "ok" {
		t.Fatalf("out = %v", out)
	}
}

func TestLockSurvivesHolderCrashAndRecovers(t *testing.T) {
	// The holder crashes inside the critical section; its re-execution
	// resumes ownership (locks-with-intent) and completes; the lock is
	// finally released and other instances proceed.
	plan := &platform.CrashOnce{Function: "cs", Label: "mid-critical"}
	f := newFixture(t, withFaults(plan),
		withConfig(Config{RowCap: 8, T: DefaultT, ICMinAge: time.Millisecond, LockRetryMax: 400}))
	f.fn("cs", func(e *Env, in Value) (Value, error) {
		if err := e.Lock("kv", "m"); err != nil {
			return dynamo.Null, err
		}
		e.crash("mid-critical")
		v, err := e.Read("kv", "n")
		if err != nil {
			return dynamo.Null, err
		}
		if err := e.Write("kv", "n", dynamo.NInt(v.Int()+1)); err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("ok"), e.Unlock("kv", "m")
	}, "kv")
	if _, err := f.invoke("cs", dynamo.Null); !errors.Is(err, platform.ErrCrashed) {
		t.Fatalf("first attempt: %v", err)
	}
	// The lock is held by the crashed intent.
	_, lock, _, _ := f.rts["cs"].layer().stateRead("kv", "m")
	if lock.IsNull() {
		t.Fatal("lock not held after crash")
	}
	f.recoverAll()
	if got := f.readData("cs", "kv", "n"); got.Int() != 1 {
		t.Errorf("n = %v, want 1", got)
	}
	_, lock, _, _ = f.rts["cs"].layer().stateRead("kv", "m")
	if !lock.IsNull() {
		t.Errorf("lock leaked after recovery: %v", lock)
	}
	// A fresh instance can now take the lock.
	if out := f.mustInvoke("cs", dynamo.Null); out.Str() != "ok" {
		t.Errorf("post-recovery: %v", out)
	}
}

func TestLockRetryBudgetExhausted(t *testing.T) {
	// Two instances of the same SSF contend: the second exhausts its
	// bounded retry budget (retries consume log entries, so Lock cannot
	// spin forever) and reports ErrLockUnavailable.
	f := newFixture(t, withConfig(Config{RowCap: 64, T: DefaultT, LockRetryMax: 3, LockRetryBase: 100 * time.Microsecond}))
	hold := make(chan struct{})
	entered := make(chan struct{})
	f.fn("cs", func(e *Env, in Value) (Value, error) {
		switch in.Str() {
		case "hold":
			if err := e.Lock("kv", "m"); err != nil {
				return dynamo.Null, err
			}
			close(entered)
			<-hold
			return dynamo.S("held"), e.Unlock("kv", "m")
		default: // try
			err := e.Lock("kv", "m")
			if errors.Is(err, ErrLockUnavailable) {
				return dynamo.S("gave up"), nil
			}
			if err != nil {
				return dynamo.Null, err
			}
			return dynamo.S("acquired"), e.Unlock("kv", "m")
		}
	}, "kv")
	done := make(chan struct{})
	go func() {
		f.mustInvoke("cs", dynamo.S("hold"))
		close(done)
	}()
	<-entered
	if out := f.mustInvoke("cs", dynamo.S("try")); out.Str() != "gave up" {
		t.Errorf("contender = %v, want gave up", out)
	}
	close(hold)
	<-done
	// With the lock free again, acquisition succeeds.
	if out := f.mustInvoke("cs", dynamo.S("try")); out.Str() != "acquired" {
		t.Errorf("after release = %v", out)
	}
}
