package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dynamo"
)

// kvLayer abstracts how an SSF's data tables store item state and write
// logs. Two implementations exist, matching the paper's §7.3 comparison:
// the linked DAAL (daalLayer) and a separate write-log table updated with
// cross-table transactions (crossTableLayer). The exactly-once read/invoke
// machinery above this interface is shared.
type kvLayer interface {
	// stateRead returns the item's current value and lock owner. found is
	// false for never-written keys (value Null).
	stateRead(logical, key string) (val, lock Value, found bool, err error)
	// loggedMutate atomically checks mut's guard, applies the mutation, and
	// records logKey in the item's write log — exactly once per logKey. It
	// returns the recorded outcome: true when the guard held (mutation
	// applied), false when it did not.
	loggedMutate(logical, key, logKey string, mut mutation) (bool, error)
	// shadow returns the layer over the shadow tables (transaction-local
	// copies, §6.2).
	shadow() kvLayer
}

// splitLogKey separates "instanceID#branch.step" into the intent id and the
// branch-qualified step, the write-log table coordinates used by the
// cross-table layer and the GC.
func splitLogKey(logKey string) (id, step string) {
	if i := strings.LastIndex(logKey, "#"); i >= 0 {
		return logKey[:i], logKey[i+1:]
	}
	return logKey, ""
}

// ----- linked DAAL layer (§4) -----

type daalLayer struct {
	rt       *Runtime
	isShadow bool
}

func (l daalLayer) physical(logical string) string {
	if l.isShadow {
		return l.rt.shadowTable(logical)
	}
	return l.rt.dataTable(logical)
}

func (l daalLayer) stateRead(logical, key string) (Value, Value, bool, error) {
	d := daal{rt: l.rt, table: l.physical(logical)}
	row, ok, err := d.currentRow(key)
	if err != nil || !ok {
		return dynamo.Null, dynamo.Null, false, err
	}
	return row.value, row.lock, true, nil
}

func (l daalLayer) loggedMutate(logical, key, logKey string, mut mutation) (bool, error) {
	d := daal{rt: l.rt, table: l.physical(logical)}
	return d.loggedWrite(key, logKey, mut)
}

func (l daalLayer) shadow() kvLayer { return daalLayer{rt: l.rt, isShadow: true} }

// ----- cross-table transaction layer (§7.3 comparator) -----
//
// Item state lives in a single row per key; each write-log entry is a row of
// a separate log table, written atomically with the data row via the store's
// multi-table transaction. Reads skip the DAAL scan (one Get), writes pay
// the transactional round trip — the cost trade Figure 13 measures.

type crossTableLayer struct {
	rt       *Runtime
	isShadow bool
}

func (l crossTableLayer) dataPhysical(logical string) string {
	if l.isShadow {
		return l.rt.shadowTable(logical)
	}
	return l.rt.dataTable(logical)
}

func (l crossTableLayer) logPhysical(logical string) string {
	if l.isShadow {
		return l.rt.shadowWriteLogTable(logical)
	}
	return l.rt.writeLogTable(logical)
}

func (l crossTableLayer) stateRead(logical, key string) (Value, Value, bool, error) {
	it, ok, err := l.rt.store.Get(l.dataPhysical(logical), dynamo.HK(dynamo.S(key)))
	if err != nil || !ok {
		return dynamo.Null, dynamo.Null, false, err
	}
	return it[attrValue], it[attrLockOwner], true, nil
}

func (l crossTableLayer) loggedMutate(logical, key, logKey string, mut mutation) (bool, error) {
	dataT, logT := l.dataPhysical(logical), l.logPhysical(logical)
	id, step := splitLogKey(logKey)
	logKeyD := dynamo.HSK(dynamo.S(id), dynamo.S(step))
	logCond := dynamo.NotExists(dynamo.A(attrID))
	dataKey := dynamo.HK(dynamo.S(key))

	// First attempt: guard holds and the step is new — apply and log
	// atomically across the two tables (the analogue of case B1).
	err := l.rt.store.TransactWrite([]dynamo.TxOp{
		{Table: dataT, Key: dataKey, Cond: mut.guard(), Updates: mut.updates()},
		{Table: logT, Key: logKeyD, Cond: logCond,
			Updates: []dynamo.Update{dynamo.Set(dynamo.A(attrOutcome), dynamo.Bool(true))}},
	})
	if err == nil {
		return true, nil
	}
	var canceled *dynamo.TxCanceledError
	if !errors.As(err, &canceled) {
		return false, err
	}
	if canceled.Reasons[1] != nil {
		// The log entry exists: this step already executed (case A);
		// return its recorded outcome.
		mut.markReplayed()
		return l.readOutcome(logT, logKeyD)
	}
	// The guard failed: record the false conditional (case B2). The first
	// attempt is the serialization point, so recording false remains valid
	// even if a concurrent mutation has since made the guard true
	// (Appendix A). A conditional failure here means a concurrent executor
	// of the same step won; adopt its outcome.
	err = l.rt.store.TransactWrite([]dynamo.TxOp{
		{Table: logT, Key: logKeyD, Cond: logCond,
			Updates: []dynamo.Update{dynamo.Set(dynamo.A(attrOutcome), dynamo.Bool(false))}},
	})
	if err == nil {
		return false, nil
	}
	if errors.Is(err, dynamo.ErrConditionFailed) {
		mut.markReplayed()
		return l.readOutcome(logT, logKeyD)
	}
	return false, err
}

func (l crossTableLayer) readOutcome(logT string, key dynamo.Key) (bool, error) {
	it, ok, err := l.rt.store.Get(logT, key)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("core: cross-table write log row vanished: %s %s", logT, key)
	}
	return it[attrOutcome].BoolVal(), nil
}

func (l crossTableLayer) shadow() kvLayer { return crossTableLayer{rt: l.rt, isShadow: true} }

// layer returns the runtime's kvLayer for its mode.
func (rt *Runtime) layer() kvLayer {
	switch rt.mode {
	case ModeCrossTable:
		return crossTableLayer{rt: rt}
	default:
		return daalLayer{rt: rt}
	}
}
