package core

import (
	"errors"
	"fmt"

	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// execObs observes one execution attempt of an intent for telemetry. A nil
// observer (telemetry off) no-ops. finish must run deferred: when the
// platform kills the worker mid-body, the panic unwinds through it and the
// attempt is recorded as crashed — which is exactly how a trace shows the
// pre-crash half of a recovered workflow.
type execObs struct {
	rt  *Runtime
	s   telemetry.Span
	ok  bool
	err error
}

// beginExec opens an exec span for one attempt; restart marks a
// re-execution of an already-created intent.
func (rt *Runtime) beginExec(id string, ev envelope, restart bool) *execObs {
	if rt.tel == nil {
		return nil
	}
	return &execObs{rt: rt, s: telemetry.Span{
		Intent: id, Kind: telemetry.KindExec, Fn: rt.fn,
		ParentIntent: ev.CallerInstance, ParentStep: ev.CallerStep,
		Replay: restart, Start: rt.clk.Now().UnixNano(),
	}}
}

// complete records the attempt's outcome; not calling it before finish
// (a kill panic skipped the return path) marks the attempt crashed.
func (o *execObs) complete(err error) {
	if o == nil {
		return
	}
	o.ok, o.err = err == nil, err
}

func (o *execObs) finish() {
	if o == nil {
		return
	}
	o.s.End = o.rt.clk.Now().UnixNano()
	if !o.ok {
		o.s.Err = "crashed"
		if o.err != nil {
			o.s.Err = o.err.Error()
		}
	}
	o.rt.tel.Tracer.Record(o.s)
}

// dedupExec records the zero-width exec span of a re-invocation that found
// its intent already done — an effect the protocol deduplicated.
func (rt *Runtime) dedupExec(id string, ev envelope) {
	if rt.tel == nil {
		return
	}
	now := rt.clk.Now().UnixNano()
	rt.tel.Tracer.Record(telemetry.Span{
		Intent: id, Kind: telemetry.KindExec, Fn: rt.fn, Name: "deduplicated",
		ParentIntent: ev.CallerInstance, ParentStep: ev.CallerStep,
		Replay: true, Start: now, End: now,
	})
}

// Register installs the SSF on its platform: the body is wrapped with
// Beldi's protocol actions — intent check/log on entry, replayed execution,
// callback delivery, and done-marking on exit (§3.2: "Beldi takes actions
// before and after the main body of the SSF"). It also registers the
// intent-collector and garbage-collector companion functions (§3.3).
func Register(rt *Runtime, body Body) {
	rt.body = body
	if rt.mode == ModeBaseline {
		rt.plat.Register(rt.fn, rt.baselineHandler, 0)
		return
	}
	rt.plat.Register(rt.fn, rt.handler, 0)
	rt.plat.Register(rt.fn+".ic", rt.icHandler, 0)
	rt.plat.Register(rt.fn+".gc", rt.gcHandler, 0)
}

// Handler exposes the wrapped platform handler, for deployments that
// register the function themselves (e.g. with a custom timeout).
func (rt *Runtime) Handler() platform.Handler {
	if rt.mode == ModeBaseline {
		return rt.baselineHandler
	}
	return rt.handler
}

// handler is the wrapped entry point for every invocation of the SSF,
// dispatching on the envelope kind.
func (rt *Runtime) handler(inv *platform.Invocation, raw Value) (Value, error) {
	ev := decodeEnvelope(raw)
	switch ev.Kind {
	case kindCallback:
		return rt.handleCallback(ev)
	case kindAsyncRegister:
		return rt.handleAsyncRegister(inv, ev)
	case kindAsyncRun:
		return rt.handleAsyncRun(inv, ev)
	case kindPromisePost:
		return rt.handlePromisePost(ev)
	default:
		ret, err := rt.handleCall(inv, ev)
		if err == nil && ev.CallerFn == "" {
			// Workflow entry reply: the only effect that leaves the store
			// entirely (every other effect — callbacks, mailbox posts, txn
			// records, queue acks — is itself a store write and rides the
			// speculation log in order). Under a speculation overlay the
			// reply must not be released until the steps it depends on are
			// durable; on synchronous backends this is a free no-op.
			if ferr := storage.Fence(rt.store); ferr != nil {
				return dynamo.Null, ferr
			}
		}
		return ret, err
	}
}

// handleCall runs a synchronous (or collector-restarted) execution.
func (rt *Runtime) handleCall(inv *platform.Invocation, ev envelope) (Value, error) {
	id := ev.InstanceID
	if id == "" {
		// Workflow entry: adopt the platform's request id (§3.3).
		id = inv.RequestID
		ev.InstanceID = id
	}

	// Commit/Abort phase of a distributed transaction: skip the body and
	// run the propagation protocol (§6.2), still as a first-class intent so
	// the phase itself is exactly-once.
	if ev.Txn != nil && ev.Txn.Mode != TxExecute {
		return rt.runTxnPhase(inv, id, ev)
	}

	intent, err := rt.ensureIntent(id, ev)
	if err != nil {
		return dynamo.Null, err
	}
	inv.CrashPoint("intent:logged")
	if intent.done {
		// A re-invocation of a completed intent: re-deliver the result via
		// the callback path so the caller's invoke log converges (Fig 19's
		// replay behaviour), then return the recorded value.
		rt.dedupExec(id, ev)
		if ev.CallerFn != "" && !rt.cfg.DisableCallbacks {
			if err := rt.issueCallback(ev.CallerFn, ev.CallerInstance, ev.CallerStep, id, intent.ret); err != nil {
				return dynamo.Null, err
			}
		}
		return intent.ret, nil
	}
	obs := rt.beginExec(id, ev, !intent.fresh)
	defer obs.finish()

	env := &Env{rt: rt, inv: inv, instanceID: id, branch: "0", intent: intent, shared: &envShared{app: ev.App}}
	if ev.Txn != nil {
		env.shared.txn = ev.Txn // inherited Execute-mode context (§6.2)
	}

	ret, err := rt.runBody(env, ev.Input)
	if err != nil {
		if errors.Is(err, ErrTxnAborted) {
			// The transaction died (wait-die or an application abort). The
			// abort protocol has already run — by the owner's Transaction
			// call, or it will be propagated by the owner once this abort
			// outcome reaches it (§6.2: "it returns to its caller with an
			// 'abort' outcome"). Either way this instance's execution is
			// complete, deterministically, so it finishes with the abort
			// marker as its result.
			ret = abortMarker()
		} else {
			// The instance failed; leave the intent pending for the
			// collector.
			obs.complete(err)
			return dynamo.Null, err
		}
	}
	inv.CrashPoint("body:done")

	// Callback before done-marking (Fig 9's ordering: the caller must hold
	// the result before this intent can be collected).
	if ev.CallerFn != "" && !rt.cfg.DisableCallbacks {
		if err := rt.issueCallback(ev.CallerFn, ev.CallerInstance, ev.CallerStep, id, ret); err != nil {
			cerr := fmt.Errorf("core: %s: callback to %s failed: %w", rt.fn, ev.CallerFn, err)
			obs.complete(cerr)
			return dynamo.Null, cerr
		}
		inv.CrashPoint("callback:sent")
	}
	if err := rt.markIntentDone(id, ret); err != nil {
		obs.complete(err)
		return dynamo.Null, err
	}
	inv.CrashPoint("done:marked")
	obs.complete(nil)
	return ret, nil
}

// runBody executes the application logic. Panics unwind to the platform's
// instance recovery (the worker dies, the intent stays pending, and the
// collector retries) — the same outcome a worker crash would have.
func (rt *Runtime) runBody(env *Env, input Value) (Value, error) {
	return rt.body(env, input)
}

// handleAsyncRegister is the callee side of asyncInvoke step 1 (Fig 20):
// log the intent (flagged async, carrying the run envelope for the intent
// collector), confirm to the caller via callback, and return.
func (rt *Runtime) handleAsyncRegister(inv *platform.Invocation, ev envelope) (Value, error) {
	// The stored run envelope keeps the app scope and the promise reply
	// coordinates, so a collector-restarted execution behaves exactly like
	// the directly fired one — including posting its result back.
	runEv := envelope{Kind: kindAsyncRun, InstanceID: ev.InstanceID, Input: ev.Input, Async: true,
		App: ev.App, ReplyFn: ev.ReplyFn, ReplyOwner: ev.ReplyOwner}
	if _, err := rt.ensureIntent(ev.InstanceID, runEv); err != nil {
		return dynamo.Null, err
	}
	inv.CrashPoint("async:registered")
	if !rt.cfg.DisableCallbacks {
		if err := rt.issueCallback(ev.CallerFn, ev.CallerInstance, ev.CallerStep, ev.InstanceID, dynamo.S("registered")); err != nil {
			return dynamo.Null, err
		}
	}
	return dynamo.Null, nil
}

// handleAsyncRun is the callee side of asyncInvoke step 2 (Fig 20): run the
// body only if the intent is registered and incomplete, so that re-deliveries
// and GC-pruned intents are skipped.
func (rt *Runtime) handleAsyncRun(inv *platform.Invocation, ev envelope) (Value, error) {
	exists, done, _, err := rt.intentDone(ev.InstanceID)
	if err != nil {
		return dynamo.Null, err
	}
	if !exists || done {
		return dynamo.Null, nil
	}
	intent, err := rt.ensureIntent(ev.InstanceID, ev) // reads the existing row
	if err != nil {
		return dynamo.Null, err
	}
	// The intent was registered by asyncInvoke step 1, so fresh never holds
	// here; a collector restart is visible as an advanced LastLaunch. The
	// causal parent of an async run is the promise's reply owner (plain
	// AsyncInvoke callees are linked through the caller's async span).
	parentEv := intent.args
	if parentEv.CallerInstance == "" && parentEv.ReplyOwner != "" {
		parentEv.CallerInstance = parentEv.ReplyOwner
	}
	obs := rt.beginExec(ev.InstanceID, parentEv, intent.lastLaunch > intent.startTime)
	defer obs.finish()
	env := &Env{rt: rt, inv: inv, instanceID: ev.InstanceID, branch: "0", intent: intent, shared: &envShared{app: ev.App}}
	ret, err := rt.runBody(env, ev.Input)
	if err != nil {
		obs.complete(err)
		return dynamo.Null, err
	}
	inv.CrashPoint("body:done")
	// Post the promise result BEFORE done-marking (the same Fig 9 ordering
	// as callbacks): once the intent is done it can be collected, so the
	// result must already sit durably in the caller's mailbox. A crash in
	// between re-runs this intent, which replays the identical result and
	// re-posts it into the already-won cell — a no-op.
	if ev.ReplyFn != "" {
		if err := rt.postPromise(ev.ReplyFn, ev.ReplyOwner, ev.InstanceID, ret); err != nil {
			perr := fmt.Errorf("core: %s: promise post to %s failed: %w", rt.fn, ev.ReplyFn, err)
			obs.complete(perr)
			return dynamo.Null, perr
		}
		inv.CrashPoint("promise:posted")
	}
	if err := rt.markIntentDone(ev.InstanceID, ret); err != nil {
		obs.complete(err)
		return dynamo.Null, err
	}
	obs.complete(nil)
	return ret, nil
}
