package core

import (
	"errors"
	"testing"

	"repro/internal/dynamo"
	"repro/internal/platform"
)

// cdcBuild registers the canonical CDC pair: "w" writes doc rows in its
// "state" table, and "audit" — subscribed to that table — counts the change
// events it sees per key (and checks the payload shape) in its own "log"
// table. Both sides use the Beldi API, so the fire count in "log" is itself
// exactly-once state.
func cdcBuild(f *fixture) {
	f.fn("audit", func(e *Env, in Value) (Value, error) {
		tbl, _ := in.MapGet(ChangeEvTable)
		fn, _ := in.MapGet(ChangeEvFn)
		key, _ := in.MapGet(ChangeEvKey)
		if tbl.Str() != "state" || fn.Str() != "w" || key.Str() == "" {
			return dynamo.Null, errors.New("malformed change event")
		}
		n, err := e.Read("log", key.Str())
		if err != nil {
			return dynamo.Null, err
		}
		if err := e.Write("log", key.Str(), dynamo.NInt(n.Int()+1)); err != nil {
			return dynamo.Null, err
		}
		return dynamo.Null, nil
	}, "log")
	f.fn("w", func(e *Env, in Value) (Value, error) {
		if err := e.Write("state", "doc", dynamo.S("v1")); err != nil {
			return dynamo.Null, err
		}
		return dynamo.S("done"), nil
	}, "state")
	f.rts["w"].RegisterChangeHandler("state", "audit")
}

func TestChangeHandlerFiresOncePerCommittedWrite(t *testing.T) {
	f := newFixture(t)
	cdcBuild(f)
	f.mustInvoke("w", dynamo.Null)
	f.mustInvoke("w", dynamo.Null)
	f.plat.Drain()
	if got := f.readData("audit", "log", "doc"); got.Int() != 2 {
		t.Fatalf("handler fire count = %v, want 2 (one per committed write)", got)
	}
	if n := f.rts["w"].Stats().ChangeEvents.Load(); n != 2 {
		t.Fatalf("ChangeEvents = %d, want 2", n)
	}
}

func TestChangeHandlerUntakenCondWriteEmitsNothing(t *testing.T) {
	f := newFixture(t)
	f.fn("audit", func(e *Env, in Value) (Value, error) {
		n, err := e.Read("log", "fires")
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.Null, e.Write("log", "fires", dynamo.NInt(n.Int()+1))
	}, "log")
	f.fn("w", func(e *Env, in Value) (Value, error) {
		// First claim takes; the repeat does not (value is no longer Null).
		taken, err := e.CondWrite("state", "slot", dynamo.S("claimed"),
			dynamo.Or(dynamo.NotExists(dynamo.A(attrValue)), dynamo.Eq(dynamo.A(attrValue), dynamo.Null)))
		if err != nil {
			return dynamo.Null, err
		}
		return dynamo.Bool(taken), nil
	}, "state")
	f.rts["w"].RegisterChangeHandler("state", "audit")

	if out := f.mustInvoke("w", dynamo.Null); !out.BoolVal() {
		t.Fatal("first CondWrite not taken")
	}
	if out := f.mustInvoke("w", dynamo.Null); out.BoolVal() {
		t.Fatal("second CondWrite unexpectedly taken")
	}
	f.plat.Drain()
	if got := f.readData("audit", "log", "fires"); got.Int() != 1 {
		t.Fatalf("handler fired %v times, want 1 (untaken CondWrite must not emit)", got)
	}
}

func TestChangeHandlerBaselineEmitsNothing(t *testing.T) {
	f := newFixture(t, withMode(ModeBaseline))
	f.fn("audit", func(e *Env, in Value) (Value, error) {
		return dynamo.Null, e.Write("log", "fires", dynamo.S("fired"))
	}, "log")
	f.fn("w", func(e *Env, in Value) (Value, error) {
		return dynamo.Null, e.Write("state", "doc", dynamo.S("v"))
	}, "state")
	f.rts["w"].RegisterChangeHandler("state", "audit")
	f.mustInvoke("w", dynamo.Null)
	f.plat.Drain()
	if got := f.readData("audit", "log", "fires"); !got.IsNull() {
		t.Fatalf("baseline write fired a change handler: %v", got)
	}
}

// TestChangeHandlerExactlyOnceCrashSweep crashes at every operation boundary
// of both the writing SSF and the change handler: after recovery the write
// landed once and the handler observed exactly one change event — the CDC
// fire is deduplicated through the invoke log like any §4.5 async edge.
func TestChangeHandlerExactlyOnceCrashSweep(t *testing.T) {
	workload := func(f *fixture) error {
		_, err := f.invoke("w", dynamo.Null)
		if err != nil && !errors.Is(err, platform.ErrCrashed) {
			return err
		}
		return nil
	}
	check := func(f *fixture, label string) {
		if got := f.readData("w", "state", "doc"); got.Str() != "v1" {
			t.Errorf("%s: doc = %v, want v1", label, got)
		}
		if got := f.readData("audit", "log", "doc"); got.Int() != 1 {
			t.Errorf("%s: handler fire count = %v, want exactly 1", label, got)
		}
	}
	crashSweep(t, []string{"w", "audit"}, cdcBuild, workload, check)
}
