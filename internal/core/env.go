package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamo"
	"repro/internal/hist"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// Errors surfaced by Env operations.
var (
	// ErrTxnAborted reports that the enclosing transaction died under
	// wait-die (§6.2) or was aborted by the application. Operation results
	// accompanying it are meaningless; the body should return it promptly.
	ErrTxnAborted = errors.New("core: transaction aborted")
	// ErrLockUnavailable reports that a standalone Lock exhausted its retry
	// budget.
	ErrLockUnavailable = errors.New("core: lock unavailable")
	// ErrAsyncInTxn reports AsyncInvoke inside a transaction, which Beldi
	// does not support (§6.2).
	ErrAsyncInTxn = errors.New("core: asyncInvoke is not supported inside transactions")
)

// Body is an SSF's application logic, written against Env's API exactly as a
// bare handler would be written against the provider SDK (§3.2). Bodies must
// be deterministic given their logged operation results.
type Body func(e *Env, input Value) (Value, error)

// Env is the per-instance execution context: Beldi's API (Figure 2). An Env
// carries the instance id and a step counter so every external operation
// gets the unique, deterministic (instance, step) log key that the replay
// protocols key on (§3.1).
type Env struct {
	rt         *Runtime
	inv        *platform.Invocation
	ctx        context.Context
	instanceID string
	branch     string
	steps      atomic.Int64
	children   int // sequential Parallel groups spawned by this branch
	intent     *intentRecord
	shared     *envShared
}

// envShared is instance-level state shared across Parallel branches.
type envShared struct {
	txn      *TxnContext
	txnOwner bool
	app      string // requesting application (§2.2 SSF reusability)
}

// table resolves a body-level table name for the requesting application.
func (e *Env) table(logical string) string {
	return e.rt.resolveLogical(e.shared.app, logical)
}

// App returns the requesting application's name, or "" for unscoped
// requests.
func (e *Env) App() string { return e.shared.app }

// InstanceID returns the instance id Beldi assigned to this execution intent
// (§3.3).
func (e *Env) InstanceID() string { return e.instanceID }

// Context returns the context this execution runs under: the caller's (an
// InvokeCtx entry or an SSF-to-SSF call carrying one), or
// context.Background() for context-free entries and collector restarts.
// Cancellation is observed at operation boundaries and inside every retry
// or poll wait (lock backoff, wait-die retries, promise awaits); it aborts
// the instance cleanly — the intent stays pending and the collector
// re-executes it later, with a fresh background context, so exactly-once is
// never weakened by giving up.
func (e *Env) Context() context.Context {
	if e.ctx != nil {
		return e.ctx
	}
	if e.inv != nil {
		return e.inv.Context()
	}
	return context.Background()
}

// waitRetry sleeps d on the runtime clock, returning early with the
// context's error if the execution's context ends first — the wait primitive
// under every retry loop (lock acquisition, wait-die backoff, Await polls).
func (e *Env) waitRetry(d time.Duration) error {
	ctx := e.Context()
	if ctx.Done() == nil {
		e.rt.clk.Sleep(d)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-e.rt.clk.After(d):
		return nil
	}
}

// Runtime returns the SSF's runtime.
func (e *Env) Runtime() *Runtime { return e.rt }

// TxnID returns the enclosing transaction id, or "" outside transactions.
func (e *Env) TxnID() string {
	if e.shared.txn == nil {
		return ""
	}
	return e.shared.txn.ID
}

// nextStepKey allocates this branch's next step key ("branch.step"), the
// sort-key half of a log key.
func (e *Env) nextStepKey() string {
	n := e.steps.Add(1)
	return fmt.Sprintf("%s.%06d", e.branch, n)
}

// logKey forms the full log key for a step.
func (e *Env) logKey(stepKey string) string { return e.instanceID + "#" + stepKey }

// crash marks an operation boundary for fault injection and timeout
// enforcement.
func (e *Env) crash(label string) {
	if e.inv != nil {
		e.inv.CrashPoint(label)
	}
}

// inExecute reports whether operations must follow transactional semantics.
func (e *Env) inExecute() bool {
	return e.shared.txn != nil && e.shared.txn.Mode == TxExecute
}

// stepSpan records one step's telemetry — a trace span plus, for fresh
// successful steps, an observation in h — and no-ops without a hub. t0 is
// rt.spanClock() taken before the operation.
func (e *Env) stepSpan(t0 int64, kind telemetry.Kind, stepKey, name string, replay bool, h *hist.Histogram, err error) {
	rt := e.rt
	if rt.tel == nil {
		return
	}
	end := rt.clk.Now().UnixNano()
	if h != nil && !replay && err == nil {
		h.Record(time.Duration(end - t0))
	}
	s := telemetry.Span{
		Intent: e.instanceID, Step: stepKey, Kind: kind, Fn: rt.fn,
		Name: name, Start: t0, End: end, Replay: replay,
	}
	if err != nil {
		s.Err = err.Error()
	}
	rt.span(s)
}

// stepMutation builds a step's mutation, attaching the telemetry replay
// flag when a hub is present.
func (e *Env) stepMutation(mut mutation, replay *bool) mutation {
	if e.rt.tel != nil {
		mut.replayed = replay
	}
	return mut
}

// Read returns the current value of key in the SSF's logical table (Fig 5).
// Never-written keys read as Null. Inside a transaction the key is locked
// and the transaction's own writes are visible (§6.2).
func (e *Env) Read(table, key string) (Value, error) {
	e.rt.stats.Reads.Add(1)
	table = e.table(table)
	if e.rt.mode == ModeBaseline {
		return e.baselineRead(table, key)
	}
	if e.inExecute() {
		return e.txnRead(table, key)
	}
	return e.loggedRead(e.rt.layer(), table, key)
}

// loggedRead implements Figure 5: fetch the current value, then log it in
// the ReadLog with an atomic conditional insert; a conflict means this step
// already ran, so its logged value is returned instead (the read itself has
// no external effect, so re-reading before the log is harmless).
func (e *Env) loggedRead(layer kvLayer, table, key string) (Value, error) {
	stepKey := e.nextStepKey()
	t0 := e.rt.spanClock()
	e.crash("read:pre:" + stepKey)
	val, _, _, err := layer.stateRead(table, key)
	if err != nil {
		return dynamo.Null, err
	}
	e.crash("read:mid:" + stepKey)
	out, replay, err := e.logRead(stepKey, val)
	e.stepSpan(t0, telemetry.KindRead, stepKey, table+"/"+key, replay, nil, err)
	e.crash("read:post:" + stepKey)
	return out, err
}

// logRead records val for this step, returning the previously recorded
// value (and replay true) when the step already ran.
func (e *Env) logRead(stepKey string, val Value) (Value, bool, error) {
	lk := dynamo.HSK(dynamo.S(e.instanceID), dynamo.S(stepKey))
	err := e.rt.store.Update(e.rt.readLog, lk,
		dynamo.NotExists(dynamo.A(attrID)),
		dynamo.Set(dynamo.A(attrValue), val))
	if err == nil {
		return val, false, nil
	}
	if !errors.Is(err, dynamo.ErrConditionFailed) {
		return dynamo.Null, false, err
	}
	e.rt.stats.Replays.Add(1)
	it, ok, err := e.rt.store.Get(e.rt.readLog, lk)
	if err != nil {
		return dynamo.Null, true, err
	}
	if !ok {
		return dynamo.Null, true, fmt.Errorf("core: read log row vanished: %s %s", e.instanceID, stepKey)
	}
	return it[attrValue], true, nil
}

// Write stores v at key with exactly-once semantics (Fig 6). Inside a
// transaction the write goes to the transaction's shadow copy.
func (e *Env) Write(table, key string, v Value) error {
	e.rt.stats.Writes.Add(1)
	logical := table
	table = e.table(table)
	if e.rt.mode == ModeBaseline {
		return e.baselineWrite(table, key, v)
	}
	if e.inExecute() {
		return e.txnWrite(table, key, v)
	}
	stepKey := e.nextStepKey()
	t0 := e.rt.spanClock()
	e.crash("write:pre:" + stepKey)
	var replay bool
	_, err := e.rt.layer().loggedMutate(table, key, e.logKey(stepKey),
		e.stepMutation(mutation{setVal: &v}, &replay))
	e.stepSpan(t0, telemetry.KindWrite, stepKey, table+"/"+key, replay, e.rt.histStep, err)
	e.crash("write:post:" + stepKey)
	if err != nil {
		return err
	}
	return e.emitChanges(logical, key, v)
}

// CondWrite stores v at key only if cond holds against the item's current
// row at write time (§4.4). cond is a condition over the attribute "Value"
// (use dynamo.Eq(dynamo.A("Value"), ...) and friends). It reports whether
// the write took effect; replays report the originally recorded outcome.
func (e *Env) CondWrite(table, key string, v Value, cond dynamo.Cond) (bool, error) {
	e.rt.stats.CondWrites.Add(1)
	logical := table
	table = e.table(table)
	if e.rt.mode == ModeBaseline {
		return e.baselineCondWrite(table, key, v, cond)
	}
	if e.inExecute() {
		return e.txnCondWrite(table, key, v, cond)
	}
	stepKey := e.nextStepKey()
	t0 := e.rt.spanClock()
	e.crash("condwrite:pre:" + stepKey)
	var replay bool
	ok, err := e.rt.layer().loggedMutate(table, key, e.logKey(stepKey),
		e.stepMutation(mutation{cond: cond, setVal: &v}, &replay))
	e.stepSpan(t0, telemetry.KindCondWrite, stepKey, table+"/"+key, replay, e.rt.histStep, err)
	e.crash("condwrite:post:" + stepKey)
	if err != nil || !ok {
		// An untaken CondWrite changed nothing; no event to emit. The
		// outcome is logged, so replays repeat the same (non-)emission.
		return ok, err
	}
	return ok, e.emitChanges(logical, key, v)
}

// lockOwnerValue builds the lock-owner column value: the owning intent and
// its creation time (wait-die priority).
func lockOwnerValue(id string, start int64) Value {
	return dynamo.M(map[string]Value{
		attrID:  dynamo.S(id),
		"Start": dynamo.NInt(start),
	})
}

// lockCond is the §6.1 acquisition guard: free, or already owned by this
// intent (locks are owned by intents, so a re-executed instance re-entering
// Lock sees its own ownership and continues).
func lockCond(ownerID string) dynamo.Cond {
	return dynamo.IsNullOr(dynamo.A(attrLockOwner),
		dynamo.Eq(dynamo.AK(attrLockOwner, attrID), dynamo.S(ownerID)))
}

// Lock acquires the mutual-exclusion lock on key, owned by this intent
// (§6.1, "locks with intent"): if the instance crashes while holding it,
// its re-execution resumes ownership rather than deadlocking. Standalone
// locks retry with backoff up to the configured budget. Inside transactions
// use Transaction, which locks implicitly with wait-die.
func (e *Env) Lock(table, key string) error {
	e.rt.stats.Locks.Add(1)
	table = e.table(table)
	if e.rt.mode == ModeBaseline {
		return nil // baseline offers no synchronization (§7.2)
	}
	ownerID := e.instanceID
	start := e.intent.startTime
	if e.inExecute() {
		return e.txnLock(table, key)
	}
	owner := lockOwnerValue(ownerID, start)
	backoff := e.rt.cfg.LockRetryBase
	t0 := e.rt.spanClock() // spans the whole acquisition, retries included
	var replay bool
	for attempt := 0; attempt < e.rt.cfg.LockRetryMax; attempt++ {
		stepKey := e.nextStepKey()
		e.crash("lock:pre:" + stepKey)
		replay = false
		ok, err := e.rt.layer().loggedMutate(table, key, e.logKey(stepKey),
			e.stepMutation(mutation{cond: lockCond(ownerID), setLock: &owner}, &replay))
		e.crash("lock:post:" + stepKey)
		if err != nil {
			e.stepSpan(t0, telemetry.KindLock, stepKey, table+"/"+key, replay, nil, err)
			return err
		}
		if ok {
			e.stepSpan(t0, telemetry.KindLock, stepKey, table+"/"+key, replay, e.rt.histLock, nil)
			return nil
		}
		if werr := e.waitRetry(backoff); werr != nil {
			// Canceled mid-wait: no lock is held (this attempt's acquisition
			// recorded false), so aborting here leaves nothing to release.
			e.stepSpan(t0, telemetry.KindLock, stepKey, table+"/"+key, false, nil, werr)
			return fmt.Errorf("core: lock %s/%s: %w", table, key, werr)
		}
		if backoff < 128*e.rt.cfg.LockRetryBase {
			backoff *= 2
		}
	}
	e.stepSpan(t0, telemetry.KindLock, "", table+"/"+key, false, nil, ErrLockUnavailable)
	return fmt.Errorf("%w: %s/%s after %d attempts", ErrLockUnavailable, table, key, e.rt.cfg.LockRetryMax)
}

// Unlock releases a lock held by this intent. Releasing an already-released
// lock is a no-op (the recorded false outcome), which makes replayed
// unlocks safe even after another intent has re-acquired the lock (§6.1).
func (e *Env) Unlock(table, key string) error {
	e.rt.stats.Unlocks.Add(1)
	table = e.table(table)
	if e.rt.mode == ModeBaseline {
		return nil
	}
	ownerID := e.instanceID
	if e.shared.txn != nil {
		ownerID = e.shared.txn.ID
	}
	return e.unlockAs(e.rt.layer(), table, key, ownerID)
}

func (e *Env) unlockAs(layer kvLayer, table, key, ownerID string) error {
	stepKey := e.nextStepKey()
	t0 := e.rt.spanClock()
	e.crash("unlock:pre:" + stepKey)
	null := dynamo.Null
	var replay bool
	_, err := layer.loggedMutate(table, key, e.logKey(stepKey), e.stepMutation(mutation{
		cond:    dynamo.Eq(dynamo.AK(attrLockOwner, attrID), dynamo.S(ownerID)),
		setLock: &null,
	}, &replay))
	e.stepSpan(t0, telemetry.KindUnlock, stepKey, table+"/"+key, replay, nil, err)
	e.crash("unlock:post:" + stepKey)
	return err
}

// Parallel runs branches concurrently, each with its own Env whose step
// keys live in a distinct, deterministic namespace — the §6.2 provision for
// SSFs that spawn threads issuing invocations. It waits for all branches
// and returns the first error (ErrTxnAborted wins over other errors so
// abort propagation is never masked).
func (e *Env) Parallel(branches ...func(*Env) error) error {
	errs := make([]error, len(branches))
	crashes := make([]any, len(branches))
	var wg sync.WaitGroup
	e.children++
	group := e.children
	for i, fn := range branches {
		// Branch names derive from declaration order within this branch's
		// own namespace, never from scheduling, so step keys replay
		// identically across re-executions.
		sub := &Env{
			rt:         e.rt,
			inv:        e.inv,
			ctx:        e.ctx,
			instanceID: e.instanceID,
			branch:     fmt.Sprintf("%s-%d-%d", e.branch, group, i),
			intent:     e.intent,
			shared:     e.shared,
		}
		wg.Add(1)
		go func(i int, fn func(*Env) error, sub *Env) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if platform.IsInjectedCrash(r) {
						// The worker is being killed; park the signal and
						// re-raise it on the parent goroutine after the
						// join, so the whole instance dies as one worker
						// would.
						crashes[i] = r
						return
					}
					errs[i] = fmt.Errorf("core: parallel branch panic: %v", r)
				}
			}()
			errs[i] = fn(sub)
		}(i, fn, sub)
	}
	wg.Wait()
	for _, c := range crashes {
		if c != nil {
			panic(c)
		}
	}
	var first error
	for _, err := range errs {
		if errors.Is(err, ErrTxnAborted) {
			return err
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sleep pauses the body (test/demo aid; uses the runtime clock).
func (e *Env) Sleep(d time.Duration) { e.rt.clk.Sleep(d) }
