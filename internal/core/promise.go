package core

import (
	"errors"
	"fmt"

	"repro/internal/dynamo"
	"repro/internal/telemetry"
)

// Durable promises extend the paper's fire-and-forget asyncInvoke (§4.5,
// Fig 20) into fan-out/fan-in: AsyncInvokePromise registers the callee
// intent exactly as AsyncInvoke does, but stamps reply coordinates on the
// registered envelope so that EVERY eventual execution of the callee —
// fired directly, redelivered by a durable queue, or restarted by its
// intent collector — posts its result into the caller SSF's mailbox (a
// single-assignment durable cell keyed by the promise id; see
// queue.Mailbox). Await is a logged step on the caller, so a crashed and
// re-executed awaiter observes the identical result, and a crashed callee
// re-posts the identical (deterministically replayed) value into a cell
// the first post already owns. Fan-out/fan-in therefore survives crashes
// on either side without ever weakening exactly-once.

// ErrAwaitTimeout reports that an Await exhausted its poll budget before
// the promise's result was posted. The awaiting instance fails; the intent
// collector re-executes it later, by which time the callee (driven by its
// own collector) has usually completed.
var ErrAwaitTimeout = errors.New("core: promise await: result not posted in time")

// Promise is a durable handle on an asynchronously invoked SSF's result.
// The id is the callee's instance id — minted exactly once in the caller's
// invoke log — so a re-executed caller reconstructs the same Promise and
// awaits the same cell. Promises are created by Env.AsyncInvokePromise and
// resolved by Promise.Await; they must be awaited by the instance that
// created them (the cell is reaped with the creator's intent).
type Promise struct {
	callee string
	id     string

	// Baseline mode has no durable machinery; the promise is an in-memory
	// future fed by a goroutine.
	ch <-chan baselineResult

	resolved bool
	val      Value
	err      error
}

type baselineResult struct {
	val Value
	err error
}

// ID returns the promise id (the callee's instance id), or "" for
// baseline-mode promises.
func (p *Promise) ID() string { return p.id }

// Callee returns the invoked function's name.
func (p *Promise) Callee() string { return p.callee }

// AsyncInvokePromise starts callee asynchronously, like AsyncInvoke, and
// returns a durable Promise for its result. The callee's registered intent
// carries this caller's reply coordinates, so completion posts the result
// into this SSF's mailbox no matter which execution path finishes the
// intent. Not supported inside transactions (AsyncInvoke's §6.2
// restriction applies unchanged). In ModeBaseline the promise is a plain
// in-memory future with none of the durability.
func (e *Env) AsyncInvokePromise(callee string, input Value) (*Promise, error) {
	e.rt.stats.PromiseCalls.Add(1)
	if e.rt.mode == ModeBaseline {
		ch := make(chan baselineResult, 1)
		e.crash("ainvoke")
		go func() {
			out, err := e.rt.plat.InvokeInternal(callee, envelope{Kind: kindCall, Input: input, App: e.shared.app}.encode())
			ch <- baselineResult{out, err}
		}()
		return &Promise{callee: callee, ch: ch}, nil
	}
	if e.inExecute() {
		return nil, ErrAsyncInTxn
	}
	id, err := e.asyncInvoke(callee, input, e.rt.fn, e.instanceID)
	if err != nil {
		return nil, err
	}
	return &Promise{callee: callee, id: id}, nil
}

// Await blocks until the promise's result is durably posted and returns it
// as a logged step: the first resolution records the value in the read log
// under this step's key, and every re-execution returns that recorded
// value. Polls respect the execution's context (Env.Context) and the
// platform's crash points, and give up with ErrAwaitTimeout after the
// configured budget (Config.AwaitRetryMax) — failing the instance, not the
// workflow: the intent collector retries the await later.
func (p *Promise) Await(e *Env) (Value, error) {
	e.rt.stats.Awaits.Add(1)
	if p.resolved {
		return p.val, p.err
	}
	if p.ch != nil {
		r := <-p.ch
		p.resolved, p.val, p.err = true, r.val, r.err
		return p.val, p.err
	}
	if p.id == "" {
		return dynamo.Null, fmt.Errorf("core: await: promise has no id (zero Promise?)")
	}

	stepKey := e.nextStepKey()
	t0 := e.rt.spanClock()
	e.crash("await:pre:" + stepKey)

	// Replay fast path: this await already resolved in a previous execution.
	lk := dynamo.HSK(dynamo.S(e.instanceID), dynamo.S(stepKey))
	it, ok, err := e.rt.store.Get(e.rt.readLog, lk)
	if err != nil {
		return dynamo.Null, err
	}
	if ok {
		e.rt.stats.Replays.Add(1)
		e.awaitSpan(t0, stepKey, p, true, nil)
		return it[attrValue], nil
	}

	// Wait for the callee's post. With a push-capable store the awaiter
	// subscribes to the cell's commit stream before the first fetch (so a
	// post landing between fetch and wait still wakes it) and blocks on the
	// subscription; the exponential-backoff timer stays armed underneath as
	// the liveness fallback, and each fallback expiry re-fetches — a lost or
	// coalesced wakeup costs one backoff period, never the result. Without
	// push the loop is the classic poll-with-backoff.
	sub, _ := e.rt.mailbox.Watch(p.id)
	if sub != nil {
		defer sub.Close()
	}
	backoff := e.rt.cfg.LockRetryBase
	for attempt := 0; attempt < e.rt.cfg.AwaitRetryMax; attempt++ {
		val, posted, err := e.rt.mailbox.Fetch(p.id)
		if err != nil {
			return dynamo.Null, err
		}
		if posted {
			e.crash("await:mid:" + stepKey)
			out, replay, err := e.logRead(stepKey, val)
			e.awaitSpan(t0, stepKey, p, replay, err)
			e.crash("await:post:" + stepKey)
			return out, err
		}
		e.crash("await:poll:" + stepKey)
		if sub != nil {
			if werr := e.Context().Err(); werr == nil {
				sub.Wait(backoff, e.Context().Done())
			}
			if werr := e.Context().Err(); werr != nil {
				// Canceled mid-wait: nothing was logged for this step, so the
				// re-execution repeats the await from scratch against the
				// same cell.
				e.awaitSpan(t0, stepKey, p, false, werr)
				return dynamo.Null, fmt.Errorf("core: await %s (%s): %w", p.id, p.callee, werr)
			}
		} else if werr := e.waitRetry(backoff); werr != nil {
			e.awaitSpan(t0, stepKey, p, false, werr)
			return dynamo.Null, fmt.Errorf("core: await %s (%s): %w", p.id, p.callee, werr)
		}
		if backoff < 128*e.rt.cfg.LockRetryBase {
			backoff *= 2
		}
	}
	e.awaitSpan(t0, stepKey, p, false, ErrAwaitTimeout)
	return dynamo.Null, fmt.Errorf("%w: %s (%s) after %d polls", ErrAwaitTimeout, p.id, p.callee, e.rt.cfg.AwaitRetryMax)
}

// awaitSpan records the telemetry span of one Await: the causal edge to
// the awaited promise's callee intent. No-op without a hub.
func (e *Env) awaitSpan(t0 int64, stepKey string, p *Promise, replay bool, err error) {
	if e.rt.tel == nil {
		return
	}
	s := telemetry.Span{
		Intent: e.instanceID, Step: stepKey, Kind: telemetry.KindAwait,
		Fn: e.rt.fn, Name: p.callee, Child: p.id,
		Start: t0, End: e.rt.clk.Now().UnixNano(), Replay: replay,
	}
	if err != nil {
		s.Err = err.Error()
	}
	e.rt.tel.Tracer.Record(s)
}

// AwaitAll resolves every promise, in order, and returns their values in
// the same order — the fan-in half of fan-out/fan-in. Resolution is
// sequential so the logged steps replay deterministically; the fan-out
// itself already runs concurrently. The first error aborts the remaining
// awaits.
func (e *Env) AwaitAll(ps ...*Promise) ([]Value, error) {
	outs := make([]Value, len(ps))
	for i, p := range ps {
		v, err := p.Await(e)
		if err != nil {
			return nil, err
		}
		outs[i] = v
	}
	return outs, nil
}

// postPromise delivers a completed async intent's result to the reply
// function's mailbox, as a promisePost invocation routed like a callback
// (§4.5): at-least-once delivery into a first-write-wins cell.
func (rt *Runtime) postPromise(replyFn, replyOwner, promiseID string, result Value) error {
	ev := envelope{
		Kind:       kindPromisePost,
		CalleeID:   promiseID,
		ReplyFn:    replyFn,
		ReplyOwner: replyOwner,
		Result:     result,
		HasRes:     true,
	}
	_, err := rt.plat.InvokeInternal(replyFn, ev.encode())
	return err
}

// handlePromisePost is the caller-side post handler: deposit the result in
// this SSF's mailbox, first write wins. Posts owned by an intent that no
// longer exists (already garbage-collected, so no awaiter can remain) are
// dropped like spurious callbacks; the GC also reaps any cell that slips
// through this check racily.
func (rt *Runtime) handlePromisePost(ev envelope) (Value, error) {
	exists, _, _, err := rt.intentDone(ev.ReplyOwner)
	if err != nil {
		return dynamo.Null, err
	}
	if !exists {
		rt.stats.SpuriousCallback.Add(1)
		return dynamo.Null, nil
	}
	if err := rt.mailbox.Post(ev.CalleeID, ev.ReplyOwner, ev.Result); err != nil {
		return dynamo.Null, err
	}
	rt.stats.PromisePosts.Add(1)
	return dynamo.Null, nil
}
