package storagetest

import (
	"net"
	"testing"

	"repro/internal/remote"
	"repro/internal/storage"
	"repro/internal/walstore"
)

func init() {
	RegisterBackend(BackendRemote, OpenRemote)
}

// OpenRemote builds the full out-of-process storage-plane stack inside the
// test: a walstore in a temp directory, a storaged wire server on a
// loopback listener, and a remote client dialing it — so every harness
// that runs with BELDI_BACKEND=remote exercises framing, pipelining, error
// mapping, and reconnect on its normal workload. Cleanup closes the client
// and server, then closes and Fsck-audits the store.
func OpenRemote(tb testing.TB) storage.Backend {
	tb.Helper()
	dir := tb.TempDir()
	ws, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		tb.Fatalf("storagetest: open walstore: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ws.Close()
		tb.Fatalf("storagetest: listen: %v", err)
	}
	srv := remote.NewServer(ws, remote.ServeOptions{})
	go srv.Serve(lis)
	client, err := remote.Dial(lis.Addr().String(), remote.Options{})
	if err != nil {
		srv.Close()
		ws.Close()
		tb.Fatalf("storagetest: dial storaged: %v", err)
	}
	tb.Cleanup(func() {
		client.Close()
		srv.Close()
		if err := ws.Close(); err != nil {
			tb.Errorf("storagetest: close walstore: %v", err)
		}
		if err := walstore.Fsck(dir); err != nil {
			tb.Errorf("storagetest: walstore fsck: %v", err)
		}
	})
	return client
}
